// Minimized reproductions of the engine bugs found by the differential
// plan fuzzer (tests/plan_fuzz_test.cc). Each test names the seed that
// first exposed the bug and pins the minimized plan shape deterministically
// so the regression stays covered even if the generator's grammar drifts.

#include <gtest/gtest.h>

#include "exec/driver.h"
#include "expr/builder.h"
#include "plan/logical_plan.h"
#include "testing/differ.h"
#include "types/decimal.h"

namespace photon {
namespace {

using eb::Lit;
using plan::PlanPtr;

exec::Driver* SharedDriver() {
  static exec::Driver driver(8);
  return &driver;
}

/// Sweeps the plan through all four fuzzer modes (baseline both join
/// impls, Photon single-task, Photon 8-thread, Photon tiny-budget spill)
/// and asserts zero diffs.
void ExpectAllModesAgree(const PlanPtr& p) {
  testing::DifferentialOptions opts;
  opts.spill_prefix = "fuzz-regression-spill";
  std::string diff = testing::RunDifferential(p, SharedDriver(), opts);
  EXPECT_EQ(diff, "") << diff;
}

Table MakeKv(const std::vector<std::pair<int64_t, int64_t>>& rows,
             const char* key_name, const char* val_name) {
  Schema schema({Field(key_name, DataType::Int64()),
                 Field(val_name, DataType::Int64())});
  TableBuilder b(schema);
  for (const auto& kv : rows) {
    b.AppendRow({Value::Int64(kv.first), Value::Int64(kv.second)});
  }
  return b.Finish();
}

Table MakeDecimals(const std::vector<int128_t>& unscaled, int precision,
                   int scale) {
  Schema schema({Field("g", DataType::Int64()),
                 Field("d", DataType::Decimal(precision, scale))});
  TableBuilder b(schema);
  for (int128_t v : unscaled) {
    b.AppendRow({Value::Int64(1), Value::Decimal(Decimal128(v))});
  }
  return b.Finish();
}

// Fuzz seeds 39/48/62: Photon's left-outer hash join ignored the residual
// entirely (it was only applied for inner joins), emitting every key-equal
// pair; the baseline shuffled-hash join in turn dropped left rows whose
// candidates all failed the residual instead of NULL-padding them. Correct
// semantics: emit residual-passing pairs; a probe row with key matches but
// zero residual-passing candidates is unmatched and gets one NULL-padded
// row.
TEST(FuzzRegressionTest, LeftOuterResidualAllCandidatesFailNullPads) {
  Table left = MakeKv({{1, 10}, {1, 20}, {2, 5}, {3, 40}}, "k", "v");
  Table right = MakeKv({{1, 100}, {1, 7}, {2, 5}}, "rk", "w");
  PlanPtr probe = plan::Scan(&left);
  PlanPtr build = plan::Scan(&right);
  // Residual over the combined (k, v, rk, w) row: w > 50. Key 1 has one
  // passing candidate (w=100) and one failing (w=7); key 2's only
  // candidate fails; key 3 has no candidate at all.
  PlanPtr j = plan::Join(
      probe, build, JoinType::kLeftOuter, {plan::ColOf(probe, "k")},
      {plan::ColOf(build, "rk")},
      eb::Gt(eb::Col(3, DataType::Int64(), "w"), Lit(int64_t{50})));

  Result<Table> photon = SharedDriver()->RunSingleTask(j);
  ASSERT_TRUE(photon.ok()) << photon.status().ToString();
  testing::CanonicalResult rows = testing::Canonicalize(*photon);
  // (1,10,1,100), (1,20,1,100), (2,5,∅,∅), (3,40,∅,∅)
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][3], "100");
  EXPECT_EQ(rows[1][3], "100");
  EXPECT_EQ(rows[2][2], "\xE2\x88\x85");  // NULL-padded build side
  EXPECT_EQ(rows[3][2], "\xE2\x88\x85");

  ExpectAllModesAgree(j);
}

// Fuzz seed 39 minimized further: a constant-false residual makes every
// left row unmatched — the join must degenerate to left-with-NULL-padding,
// not to an inner join ignoring the residual.
TEST(FuzzRegressionTest, LeftOuterConstantFalseResidualPadsEveryRow) {
  Table left = MakeKv({{1, 10}, {2, 20}, {2, 30}}, "k", "v");
  Table right = MakeKv({{1, 1}, {2, 2}, {2, 3}}, "rk", "w");
  PlanPtr probe = plan::Scan(&left);
  PlanPtr build = plan::Scan(&right);
  PlanPtr j = plan::Join(probe, build, JoinType::kLeftOuter,
                         {plan::ColOf(probe, "k")},
                         {plan::ColOf(build, "rk")},
                         eb::Gt(Lit(int64_t{0}), Lit(int64_t{1})));

  Result<Table> photon = SharedDriver()->RunSingleTask(j);
  ASSERT_TRUE(photon.ok()) << photon.status().ToString();
  testing::CanonicalResult rows = testing::Canonicalize(*photon);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_EQ(row[2], "\xE2\x88\x85") << "expected NULL-padded build side";
    EXPECT_EQ(row[3], "\xE2\x88\x85");
  }

  ExpectAllModesAgree(j);
}

// Residual-passing pairs must still flow through when mixed with failing
// ones across chained duplicate build keys (the hash-table chain path).
TEST(FuzzRegressionTest, LeftOuterResidualFiltersWithinChains) {
  std::vector<std::pair<int64_t, int64_t>> build_rows;
  for (int64_t i = 0; i < 40; i++) build_rows.push_back({7, i});
  Table left = MakeKv({{7, 1}, {8, 2}}, "k", "v");
  Table right = MakeKv(build_rows, "rk", "w");
  PlanPtr probe = plan::Scan(&left);
  PlanPtr build = plan::Scan(&right);
  PlanPtr j = plan::Join(
      probe, build, JoinType::kLeftOuter, {plan::ColOf(probe, "k")},
      {plan::ColOf(build, "rk")},
      eb::Lt(eb::Col(3, DataType::Int64(), "w"), Lit(int64_t{5})));

  Result<Table> photon = SharedDriver()->RunSingleTask(j);
  ASSERT_TRUE(photon.ok()) << photon.status().ToString();
  // Key 7: 5 of 40 candidates pass (w in 0..4); key 8: unmatched.
  EXPECT_EQ(photon->num_rows(), 6);

  ExpectAllModesAgree(j);
}

// Fuzz seeds 3/27: Photon's decimal sum wrapped its int128 accumulator
// silently past 38 digits where the baseline's exact BigDecimal sum
// finalizes to NULL (Spark non-ANSI overflow).
TEST(FuzzRegressionTest, DecimalSumOverflowFinalizesToNull) {
  int128_t max38 = Decimal128::MaxValueForPrecision(38);
  Table t = MakeDecimals({max38, max38, max38, max38}, 38, 6);
  PlanPtr p = plan::Scan(&t);
  p = plan::Aggregate(
      p, {}, {},
      {AggregateSpec{AggKind::kSum, plan::ColOf(p, "d"), "s"}});

  Result<Table> photon = SharedDriver()->RunSingleTask(p);
  ASSERT_TRUE(photon.ok()) << photon.status().ToString();
  testing::CanonicalResult rows = testing::Canonicalize(*photon);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "\xE2\x88\x85");

  ExpectAllModesAgree(p);
}

// Fuzz seed 32: mixed-sign near-max values wrap the int128 accumulator
// transiently but cancel back into range; because wrapping is arithmetic
// mod 2^128 the final accumulator value is exact, and the baseline's
// unbounded BigDecimal (which only checks the *final* value against 38
// digits) returns the true sum. A sticky overflow flag wrongly NULLed it.
TEST(FuzzRegressionTest, DecimalSumTransientWrapStaysExact) {
  int128_t max38 = Decimal128::MaxValueForPrecision(38);
  // Partial sums: max, 2*max (wraps +1), max (wraps back), 0, 123456.
  Table t = MakeDecimals({max38, max38, -max38, -max38, 123456}, 38, 6);
  PlanPtr p = plan::Scan(&t);
  p = plan::Aggregate(
      p, {}, {},
      {AggregateSpec{AggKind::kSum, plan::ColOf(p, "d"), "s"}});

  Result<Table> photon = SharedDriver()->RunSingleTask(p);
  ASSERT_TRUE(photon.ok()) << photon.status().ToString();
  testing::CanonicalResult rows = testing::Canonicalize(*photon);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_NE(rows[0][0], "\xE2\x88\x85") << "transient wrap must not NULL";
  EXPECT_EQ(rows[0][0], Value::Decimal(Decimal128(123456)).ToString());

  ExpectAllModesAgree(p);
}

// The companion case: the accumulator ends wrapped (sum of three ~0.9e38
// values exceeds int128 range) yet the true sum and the avg quotient are
// derivable exactly — the baseline divides the unbounded sum, so the
// vectorized engine must reconstruct wraps * 2^128 + sum before dividing.
TEST(FuzzRegressionTest, DecimalAvgOfWrappedSumStaysExact) {
  // 20000 rows of 9e33: the sum (1.8e38) exceeds int128 range so the
  // accumulator ends wrapped, while the avg — 9e33, which is 9e37 unscaled
  // at avg's widened scale (+4) — still fits 38 digits.
  int128_t v = Decimal128::PowerOfTen(33) * 9;
  Table t = MakeDecimals(std::vector<int128_t>(20000, v), 38, 6);
  PlanPtr p = plan::Scan(&t);
  p = plan::Aggregate(
      p, {}, {},
      {AggregateSpec{AggKind::kSum, plan::ColOf(p, "d"), "s"},
       AggregateSpec{AggKind::kAvg, plan::ColOf(p, "d"), "a"}});

  Result<Table> photon = SharedDriver()->RunSingleTask(p);
  ASSERT_TRUE(photon.ok()) << photon.status().ToString();
  testing::CanonicalResult rows = testing::Canonicalize(*photon);
  ASSERT_EQ(rows.size(), 1u);
  // Sum = 2.7e38 unscaled > 38 digits -> NULL; avg = 9e37 is in range.
  EXPECT_EQ(rows[0][0], "\xE2\x88\x85");
  EXPECT_NE(rows[0][1], "\xE2\x88\x85") << "avg of wrapped sum must be exact";

  ExpectAllModesAgree(p);
}

// Satellite: LimitOperator above a parallel stage must emit exactly
// `limit` rows regardless of thread count (morsel-parallel runs race to
// fill the limit).
TEST(FuzzRegressionTest, LimitExactRowCountAtAllThreadCounts) {
  std::vector<std::pair<int64_t, int64_t>> rows;
  for (int64_t i = 0; i < 10000; i++) rows.push_back({i % 97, i});
  Table t = MakeKv(rows, "k", "v");

  for (int64_t limit : {0, 37, 5000, 20000}) {
    PlanPtr p = plan::Limit(plan::Scan(&t), limit);
    int64_t expect = std::min<int64_t>(limit, t.num_rows());
    for (int threads : {1, 2, 8}) {
      exec::Driver d(threads);
      Result<Table> r = d.Run(p);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_EQ(r->num_rows(), expect)
          << "limit " << limit << " at " << threads << " threads";
    }
  }
}

// Fuzz seed 13 (differ mode 8, optimizer-on vs oracle): the optimizer
// pushed a constant-false filter below a zero-key aggregate. A scalar
// aggregate emits exactly one row even over empty input, so filtering
// before it yields 1 row where the unoptimized plan yields 0. No
// predicate — not even a constant — may sink past a zero-key aggregate.
TEST(FuzzRegressionTest, ConstantFilterMustNotSinkBelowScalarAggregate) {
  Table t = MakeKv({{1, 10}, {2, 20}, {3, 30}}, "k", "v");
  PlanPtr p = plan::Scan(&t);
  p = plan::Aggregate(
      p, {}, {},
      {AggregateSpec{AggKind::kCountStar, nullptr, "c"},
       AggregateSpec{AggKind::kSum, eb::Col(1, DataType::Int64(), "v"), "s"},
       AggregateSpec{AggKind::kMin, eb::Col(0, DataType::Int64(), "k"), "m"}});
  // Constant-false: -26752 BETWEEN 108 AND 305 (from the minimized plan).
  p = plan::Filter(p, eb::Between(Lit(int64_t{-26752}), Lit(int64_t{108}),
                                  Lit(int64_t{305})));

  ExecContext opt_on;
  opt_on.optimizer = OptimizerPolicy::kOn;
  Result<Table> photon = SharedDriver()->RunSingleTask(p, opt_on);
  ASSERT_TRUE(photon.ok()) << photon.status().ToString();
  EXPECT_EQ(photon->num_rows(), 0)
      << "constant filter leaked below the scalar aggregate";

  ExpectAllModesAgree(p);
}

// With a total sort underneath, Limit is fully deterministic: identical
// content at every thread count and across engines.
TEST(FuzzRegressionTest, LimitAboveTotalSortIsDeterministic) {
  std::vector<std::pair<int64_t, int64_t>> rows;
  for (int64_t i = 0; i < 4000; i++) rows.push_back({(i * 37) % 211, i});
  Table t = MakeKv(rows, "k", "v");

  PlanPtr p = plan::Scan(&t);
  p = plan::Sort(p, {SortKey{eb::Col(0, DataType::Int64(), "k"), true, true},
                     SortKey{eb::Col(1, DataType::Int64(), "v"), false,
                             false}});
  p = plan::Limit(p, 123);

  testing::CanonicalResult first;
  for (int threads : {1, 2, 8}) {
    exec::Driver d(threads);
    Result<Table> r = d.Run(p);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->num_rows(), 123);
    testing::CanonicalResult got = testing::Canonicalize(*r);
    if (threads == 1) {
      first = got;
    } else {
      EXPECT_EQ(got, first) << "limit content differs at " << threads
                            << " threads";
    }
  }
  ExpectAllModesAgree(p);
}

}  // namespace
}  // namespace photon
