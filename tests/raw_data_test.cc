#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "expr/builder.h"
#include "ops/scan.h"
#include "ops/shuffle.h"
#include "plan/logical_plan.h"

namespace photon {
namespace {

/// The paper's "Challenge 1" data shapes (§1): wide tables with hundreds
/// of columns (where the JVM engine's generated-method-size limits caused
/// performance cliffs, §3.2), very large string values, and denormalized
/// string data with placeholder values instead of NULLs. The engine must
/// stay correct — and the whole-stage Photon path must keep working — on
/// all of them.

TEST(RawDataTest, WideTableManyColumns) {
  constexpr int kCols = 150;
  Schema schema;
  for (int c = 0; c < kCols; c++) {
    schema.AddField(Field("c" + std::to_string(c), DataType::Int64()));
  }
  TableBuilder builder(schema);
  Rng rng(8);
  for (int r = 0; r < 2000; r++) {
    std::vector<Value> row;
    for (int c = 0; c < kCols; c++) {
      row.push_back(Value::Int64(rng.Uniform(0, 9)));
    }
    builder.AppendRow(row);
  }
  Table t = builder.Finish();

  // Sum every column in one aggregation — a 150-wide aggregate is exactly
  // the shape that blew Java method-size limits (§3.2); here it is just a
  // longer list of kernels.
  plan::PlanPtr p = plan::Scan(&t);
  std::vector<AggregateSpec> aggs;
  for (int c = 0; c < kCols; c++) {
    aggs.push_back(AggregateSpec{
        AggKind::kSum, plan::ColOf(p, "c" + std::to_string(c)),
        "s" + std::to_string(c)});
  }
  plan::PlanPtr agg = plan::Aggregate(p, {}, {}, aggs);

  Result<OperatorPtr> op = plan::CompilePhoton(agg);
  ASSERT_TRUE(op.ok());
  Result<Table> photon_result = CollectAll(op->get());
  ASSERT_TRUE(photon_result.ok());
  ASSERT_EQ(photon_result->num_rows(), 1);

  Result<baseline::RowOperatorPtr> base = plan::CompileBaseline(agg);
  ASSERT_TRUE(base.ok());
  Result<Table> base_result = baseline::CollectAllRows(base->get());
  ASSERT_TRUE(base_result.ok());
  EXPECT_EQ(photon_result->ToRows(), base_result->ToRows());
}

TEST(RawDataTest, LargeStringValues) {
  // Multi-hundred-KB strings flowing through filter, upper(), aggregation
  // and shuffle; the var-len arenas must grow chunk by chunk without
  // invalidating earlier refs (§4.5's "large input records").
  Schema schema({Field("k", DataType::Int64()),
                 Field("blob", DataType::String())});
  TableBuilder builder(schema);
  Rng rng(9);
  for (int i = 0; i < 40; i++) {
    builder.AppendRow(
        {Value::Int64(i % 4),
         Value::String(rng.NextAsciiString(
             static_cast<int>(rng.Uniform(100000, 400000))))});
  }
  Table t = builder.Finish();

  plan::PlanPtr p = plan::Scan(&t);
  p = plan::Project(
      p,
      {plan::ColOf(p, "k"), eb::Call("upper", {plan::ColOf(p, "blob")}),
       eb::Call("octet_length", {plan::ColOf(p, "blob")})},
      {"k", "BLOB", "len"});
  p = plan::Aggregate(
      p, {plan::ColOf(p, "k")}, {"k"},
      {AggregateSpec{AggKind::kMax, plan::ColOf(p, "BLOB"), "max_blob"},
       AggregateSpec{AggKind::kSum,
                     eb::Cast(plan::ColOf(p, "len"), DataType::Int64()),
                     "total_len"}});

  Result<OperatorPtr> op = plan::CompilePhoton(p);
  ASSERT_TRUE(op.ok());
  Result<Table> photon_result = CollectAll(op->get());
  ASSERT_TRUE(photon_result.ok()) << photon_result.status().ToString();
  EXPECT_EQ(photon_result->num_rows(), 4);

  Result<baseline::RowOperatorPtr> base = plan::CompileBaseline(p);
  ASSERT_TRUE(base.ok());
  Result<Table> base_result = baseline::CollectAllRows(base->get());
  ASSERT_TRUE(base_result.ok());
  // Compare totals (full blob compare would be slow; lengths pin it down).
  std::map<int64_t, int64_t> photon_lens, base_lens;
  for (auto& row : photon_result->ToRows()) {
    photon_lens[row[0].i64()] = row[2].i64();
  }
  for (auto& row : base_result->ToRows()) {
    base_lens[row[0].i64()] = row[2].i64();
  }
  EXPECT_EQ(photon_lens, base_lens);
}

TEST(RawDataTest, PlaceholderValuesNotNulls) {
  // Denormalized raw data uses 'N/A' placeholders instead of NULL (§1).
  // Queries must treat them as ordinary values; the adaptive int-string
  // shuffle encoding must correctly refuse columns containing them.
  Schema schema({Field("user_id_str", DataType::String())});
  TableBuilder builder(schema);
  Rng rng(10);
  for (int i = 0; i < 3000; i++) {
    builder.AppendRow({Value::String(
        i % 100 == 0 ? "N/A" : std::to_string(rng.Uniform(0, 1 << 20)))});
  }
  Table t = builder.Finish();

  ShuffleOptions options;
  options.num_partitions = 2;
  options.adaptive_encoding = true;
  auto write = std::make_unique<ShuffleWriteOperator>(
      std::make_unique<InMemoryScanOperator>(&t),
      std::vector<ExprPtr>{eb::Col(0, DataType::String())}, "raw-ph",
      options);
  ASSERT_TRUE(write->Open().ok());
  ASSERT_TRUE(write->GetNext().ok());
  auto read =
      std::make_unique<ShuffleReadOperator>(t.schema(), "raw-ph");
  Result<Table> round = CollectAll(read.get());
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->num_rows(), 3000);
  int na_count = 0;
  for (auto& row : round->ToRows()) {
    if (row[0].str() == "N/A") na_count++;
  }
  EXPECT_EQ(na_count, 30);  // placeholders survived byte-exactly
  DeleteShuffle("raw-ph");
}

TEST(RawDataTest, MostlyNullColumns) {
  // Sparse data: 95% NULL. The adaptive kernels must flip to the nullable
  // path and aggregates must ignore the NULLs.
  Schema schema({Field("v", DataType::Float64())});
  TableBuilder builder(schema);
  Rng rng(11);
  double expected_sum = 0;
  int expected_count = 0;
  for (int i = 0; i < 20000; i++) {
    if (rng.NextBool(0.95)) {
      builder.AppendRow({Value::Null()});
    } else {
      double v = rng.NextDouble();
      builder.AppendRow({Value::Float64(v)});
      expected_sum += v;
      expected_count++;
    }
  }
  Table t = builder.Finish();
  plan::PlanPtr p = plan::Scan(&t);
  p = plan::Aggregate(
      p, {}, {},
      {AggregateSpec{AggKind::kSum, plan::ColOf(p, "v"), "s"},
       AggregateSpec{AggKind::kCount, plan::ColOf(p, "v"), "c"}});
  Result<OperatorPtr> op = plan::CompilePhoton(p);
  ASSERT_TRUE(op.ok());
  Result<Table> result = CollectAll(op->get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->GetRow(0)[1], Value::Int64(expected_count));
  EXPECT_NEAR(result->GetRow(0)[0].f64(), expected_sum, 1e-9);
}

}  // namespace
}  // namespace photon
