// Tests for the src/io subsystem: BlockCache (sharded LRU + unified
// memory accounting), CachingStore (read-through, retry with backoff,
// single-flight), Prefetcher (async read-ahead, cancellation), and their
// wiring into FileScanOperator / DeltaTable / exec::StageInfo.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/driver.h"
#include "exec/thread_pool.h"
#include "expr/builder.h"
#include "io/block_cache.h"
#include "io/caching_store.h"
#include "io/prefetcher.h"
#include "ops/file_scan.h"
#include "storage/delta.h"
#include "storage/format.h"

namespace photon {
namespace {

std::shared_ptr<const std::string> Bytes(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

// --- BlockCache --------------------------------------------------------------

TEST(BlockCacheTest, InsertLookupAndLruEviction) {
  io::BlockCache::Options options;
  options.capacity_bytes = 3 * 200;  // room for ~2 entries + overhead
  options.num_shards = 1;            // deterministic LRU order
  io::BlockCache cache(options);

  cache.Insert("a", io::kWholeObject, Bytes(std::string(200, 'a')));
  cache.Insert("b", io::kWholeObject, Bytes(std::string(200, 'b')));
  ASSERT_NE(cache.Lookup("a"), nullptr);  // touch "a": "b" is now LRU
  cache.Insert("c", io::kWholeObject, Bytes(std::string(200, 'c')));

  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Lookup("b"), nullptr) << "LRU entry should be evicted";
  EXPECT_NE(cache.Lookup("c"), nullptr);

  io::BlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.inserts, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.misses, 0);
  EXPECT_GT(stats.bytes_cached, 0);
  EXPECT_GT(stats.bytes_evicted, 0);
}

TEST(BlockCacheTest, BlocksOfSameObjectAreDistinct) {
  io::BlockCache cache;
  cache.Insert("file", 0, Bytes("rg0"));
  cache.Insert("file", 1, Bytes("rg1"));
  auto rg0 = cache.Lookup("file", 0);
  auto rg1 = cache.Lookup("file", 1);
  ASSERT_NE(rg0, nullptr);
  ASSERT_NE(rg1, nullptr);
  EXPECT_EQ(*rg0, "rg0");
  EXPECT_EQ(*rg1, "rg1");
  EXPECT_EQ(cache.Lookup("file", io::kWholeObject), nullptr);
}

TEST(BlockCacheTest, PinnedEntriesSurviveEviction) {
  io::BlockCache::Options options;
  options.capacity_bytes = 3 * 200;
  options.num_shards = 1;
  io::BlockCache cache(options);

  cache.Insert("pinned", io::kWholeObject, Bytes(std::string(200, 'p')));
  ASSERT_TRUE(cache.Pin("pinned"));
  // Flood: the pinned entry is the coldest but must not be evicted.
  for (int i = 0; i < 5; i++) {
    cache.Insert("k" + std::to_string(i), io::kWholeObject,
                 Bytes(std::string(200, 'x')));
  }
  EXPECT_NE(cache.Lookup("pinned"), nullptr);
  cache.Unpin("pinned");
  EXPECT_FALSE(cache.Pin("absent"));
}

TEST(BlockCacheTest, ChargesMemoryManagerAndSpillsUnderPressure) {
  MemoryManager mgr(10000);
  io::BlockCache::Options options;
  options.capacity_bytes = 1 << 20;  // cache capacity >> memory budget
  options.num_shards = 1;
  options.memory_manager = &mgr;
  io::BlockCache cache(options);

  cache.Insert("a", io::kWholeObject, Bytes(std::string(3000, 'a')));
  cache.Insert("b", io::kWholeObject, Bytes(std::string(3000, 'b')));
  int64_t reserved = mgr.reserved();
  EXPECT_GT(reserved, 6000) << "cached bytes must be reserved";

  // Another consumer wants most of the budget: the manager must ask the
  // cache to spill, which evicts blocks and returns their reservation.
  class Greedy : public MemoryConsumer {
   public:
    Greedy() : MemoryConsumer("greedy") {}
    int64_t Spill(int64_t) override { return 0; }
  } greedy;
  mgr.RegisterConsumer(&greedy);
  ASSERT_TRUE(mgr.Reserve(&greedy, 8000).ok());

  EXPECT_GT(mgr.spill_count(), 0);
  EXPECT_GT(cache.stats().evictions, 0);
  EXPECT_LT(cache.reserved_bytes(), reserved);
  mgr.Release(&greedy, 8000);
  mgr.UnregisterConsumer(&greedy);
}

// --- CachingStore ------------------------------------------------------------

TEST(CachingStoreTest, RetriesTransientGetFailuresWithBackoff) {
  ObjectStore store;
  ASSERT_TRUE(store.Put("k", "payload").ok());

  io::IoOptions options;
  options.max_retries = 3;
  options.retry_backoff_us = 10;
  io::CachingStore io(&store, options);

  store.FailNextGets(2);
  Result<std::shared_ptr<const std::string>> r = io.Get("k");
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(**r, "payload");
  EXPECT_EQ(io.stats().retries, 2);
}

TEST(CachingStoreTest, GivesUpAfterMaxRetries) {
  ObjectStore store;
  ASSERT_TRUE(store.Put("k", "payload").ok());

  io::IoOptions options;
  options.max_retries = 2;
  options.retry_backoff_us = 10;
  io::CachingStore io(&store, options);

  store.FailNextGets(10);  // more failures than retries
  Result<std::shared_ptr<const std::string>> r = io.Get("k");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
  EXPECT_EQ(io.stats().retries, 2);
  store.FailNextGets(0);
}

TEST(CachingStoreTest, MissingKeyIsNotRetried) {
  ObjectStore store;
  io::CachingStore io(&store);
  Result<std::shared_ptr<const std::string>> r = io.Get("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
  EXPECT_EQ(io.stats().retries, 0) << "backoff cannot fix a missing object";
}

TEST(CachingStoreTest, SingleFlightCoalescesConcurrentMisses) {
  ObjectStore::Options store_options;
  store_options.get_latency_us = 2000;  // widen the race window
  ObjectStore store(store_options);
  ASSERT_TRUE(store.Put("hot", std::string(1000, 'h')).ok());

  io::BlockCache cache;
  io::IoOptions options;
  options.cache = &cache;
  io::CachingStore io(&store, options);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      Result<std::shared_ptr<const std::string>> r = io.Get("hot");
      if (r.ok() && (*r)->size() == 1000) ok++;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(store.num_gets(), 1)
      << "concurrent misses must coalesce into one store GET";
}

// --- Scan helpers ------------------------------------------------------------

Schema TestSchema() {
  return Schema(
      {Field("id", DataType::Int64()), Field("payload", DataType::String())});
}

/// Writes `num_files` files of `rows_per_file` rows each under `prefix`.
void WriteFiles(ObjectStore* store, const std::string& prefix, int num_files,
                int rows_per_file, std::vector<std::string>* keys) {
  Schema schema = TestSchema();
  for (int f = 0; f < num_files; f++) {
    TableBuilder builder(schema);
    for (int i = 0; i < rows_per_file; i++) {
      builder.AppendRow(
          {Value::Int64(f * rows_per_file + i),
           Value::String("row-" + std::to_string(i % 97))});
    }
    Table t = builder.Finish();
    std::string key = prefix + "/f" + std::to_string(f);
    ASSERT_TRUE(WriteTableToStore(t, store, key).ok());
    keys->push_back(key);
  }
}

// --- FileScan through the IO subsystem ---------------------------------------

TEST(FileScanIoTest, WarmRescanServesFromCacheWithoutStoreGets) {
  ObjectStore store;
  std::vector<std::string> keys;
  WriteFiles(&store, "warm", 4, 500, &keys);

  io::BlockCache cache;
  io::IoOptions io;
  io.cache = &cache;

  auto scan_once = [&]() -> int64_t {
    FileScanOperator scan(&store, keys, TestSchema(), {}, nullptr, io);
    Result<Table> result = CollectAll(&scan);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->num_rows() : -1;
  };

  EXPECT_EQ(scan_once(), 2000);  // cold
  int64_t gets_after_cold = store.num_gets();
  EXPECT_EQ(gets_after_cold, 4);

  EXPECT_EQ(scan_once(), 2000);  // warm
  EXPECT_EQ(store.num_gets(), gets_after_cold)
      << "warm scan must not touch the object store";

  // Operator-level counters on a fresh warm scan.
  FileScanOperator scan(&store, keys, TestSchema(), {}, nullptr, io);
  Result<Table> result = CollectAll(&scan);
  ASSERT_TRUE(result.ok());
  scan.PublishMetrics();
  EXPECT_EQ(scan.op_metrics().Value(obs::Metric::kFilesRead), 4);
  EXPECT_EQ(scan.op_metrics().Value(obs::Metric::kCacheHits), 4);
  EXPECT_GT(scan.op_metrics().Value(obs::Metric::kBytesRead), 0);
}

TEST(FileScanIoTest, PrefetchedScanMatchesSynchronousScan) {
  ObjectStore::Options store_options;
  store_options.get_latency_us = 1000;
  ObjectStore store(store_options);
  std::vector<std::string> keys;
  WriteFiles(&store, "pf", 6, 300, &keys);

  FileScanOperator sync_scan(&store, keys, TestSchema());
  Result<Table> expected = CollectAll(&sync_scan);
  ASSERT_TRUE(expected.ok());

  ThreadPool pool(3);
  io::BlockCache cache;
  io::IoOptions io;
  io.cache = &cache;
  io.prefetch_pool = &pool;
  io.prefetch_depth = 3;
  FileScanOperator scan(&store, keys, TestSchema(), {}, nullptr, io);
  Result<Table> result = CollectAll(&scan);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), expected->num_rows());
  scan.PublishMetrics();
  EXPECT_EQ(scan.op_metrics().Value(obs::Metric::kFilesRead), 6);
  EXPECT_GE(scan.op_metrics().Value(obs::Metric::kPrefetchWaitNs), 0);
}

TEST(FileScanIoTest, CloseCancelsOutstandingPrefetch) {
  ObjectStore::Options store_options;
  store_options.get_latency_us = 2000;
  ObjectStore store(store_options);
  std::vector<std::string> keys;
  WriteFiles(&store, "cancel", 8, 200, &keys);

  ThreadPool pool(2);
  io::IoOptions io;
  io.prefetch_pool = &pool;
  io.prefetch_depth = 4;
  auto scan =
      std::make_unique<FileScanOperator>(&store, keys, TestSchema(),
                                         std::vector<int>{}, nullptr, io);
  ASSERT_TRUE(scan->Open().ok());
  Result<ColumnBatch*> batch = scan->GetNext();
  ASSERT_TRUE(batch.ok());
  ASSERT_NE(*batch, nullptr);
  scan->Close();  // abandon mid-scan: must drain read-aheads, not hang
  scan.reset();
  // The pool outlives the scan; destruction must find no orphan tasks.
}

TEST(FileScanIoTest, StageInfoCarriesIoCounters) {
  ObjectStore store;
  std::vector<std::string> keys;
  WriteFiles(&store, "stage", 3, 400, &keys);

  io::BlockCache cache;
  io::IoOptions io;
  io.cache = &cache;

  // Warm the cache, then measure a warm scan's stage-level counters.
  {
    FileScanOperator warmup(&store, keys, TestSchema(), {}, nullptr, io);
    ASSERT_TRUE(CollectAll(&warmup).ok());
  }
  FileScanOperator scan(&store, keys, TestSchema(), {}, nullptr, io);
  ASSERT_TRUE(CollectAll(&scan).ok());

  // IO counters fold into a stage-style snapshot through the same
  // publish-and-merge path the driver uses at stage barriers.
  exec::StageInfo stage;
  CollectTreeMetrics(&scan, &stage.m);
  EXPECT_EQ(stage.files_read(), 3);
  EXPECT_EQ(stage.cache_hits(), 3);
  EXPECT_GT(stage.bytes_read(), 0);
  EXPECT_EQ(stage.prefetch_wait_ns(), 0);  // no prefetcher attached
}

// --- Concurrency: N threads, one shared cache --------------------------------

TEST(IoConcurrencyTest, SharedCacheConcurrentScansAreCorrectAndLoadOnce) {
  ObjectStore::Options store_options;
  store_options.get_latency_us = 500;  // give racing threads time to pile up
  ObjectStore store(store_options);
  std::vector<std::string> keys;
  WriteFiles(&store, "conc", 4, 500, &keys);

  io::BlockCache cache;
  io::IoOptions io;
  io.cache = &cache;

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> correct{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      FileScanOperator scan(&store, keys, TestSchema(), {}, nullptr, io);
      Result<Table> result = CollectAll(&scan);
      if (result.ok() && result->num_rows() == 2000) correct++;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(correct.load(), kThreads);
  EXPECT_EQ(store.num_gets(), 4)
      << "shared cache + single flight: each file loads exactly once";
}

TEST(IoConcurrencyTest, TinyCacheUnderConcurrencyStaysCorrect) {
  ObjectStore store;
  std::vector<std::string> keys;
  WriteFiles(&store, "tiny", 4, 500, &keys);

  io::BlockCache::Options cache_options;
  cache_options.capacity_bytes = 1024;  // smaller than any file: thrashes
  cache_options.num_shards = 2;
  io::BlockCache cache(cache_options);
  io::IoOptions io;
  io.cache = &cache;

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> correct{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      FileScanOperator scan(&store, keys, TestSchema(), {}, nullptr, io);
      Result<Table> result = CollectAll(&scan);
      if (result.ok() && result->num_rows() == 2000) correct++;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(correct.load(), kThreads);
  EXPECT_EQ(cache.stats().bytes_cached, 0) << "nothing fits in 1KB";
}

// --- Memory pressure mid-scan ------------------------------------------------

TEST(IoMemoryTest, BudgetShrinkMidScanEvictsCacheAndScanStaysCorrect) {
  ObjectStore store;
  std::vector<std::string> keys;
  WriteFiles(&store, "shrink", 4, 2000, &keys);
  int64_t file_bytes = store.bytes_written();

  MemoryManager mgr(file_bytes + 4096);  // fits all files, barely
  io::BlockCache::Options cache_options;
  cache_options.capacity_bytes = 4 * file_bytes;
  cache_options.memory_manager = &mgr;
  io::BlockCache cache(cache_options);
  io::IoOptions io;
  io.cache = &cache;

  FileScanOperator scan(&store, keys, TestSchema(), {}, nullptr, io);
  ASSERT_TRUE(scan.Open().ok());
  int64_t rows = 0;
  int batches = 0;
  class Greedy : public MemoryConsumer {
   public:
    Greedy() : MemoryConsumer("query") {}
    int64_t Spill(int64_t) override { return 0; }
  } greedy;
  mgr.RegisterConsumer(&greedy);
  bool squeezed = false;
  while (true) {
    Result<ColumnBatch*> batch = scan.GetNext();
    ASSERT_TRUE(batch.ok()) << batch.status().message();
    if (*batch == nullptr) break;
    rows += (*batch)->num_active();
    // Mid-scan, a "query operator" grabs most of the unified budget: the
    // manager must squeeze the cache, not fail the query.
    if (++batches == 2 && !squeezed) {
      squeezed = true;
      ASSERT_TRUE(mgr.Reserve(&greedy, file_bytes).ok());
      EXPECT_GT(cache.stats().evictions, 0)
          << "cache must give memory back under pressure";
    }
  }
  scan.Close();
  EXPECT_EQ(rows, 8000);
  EXPECT_TRUE(squeezed);
  EXPECT_LE(mgr.reserved(), mgr.limit());
  mgr.Release(&greedy, greedy.reserved_bytes());
  mgr.UnregisterConsumer(&greedy);
}

// --- Delta log replay through the cache --------------------------------------

TEST(DeltaIoTest, LogReplayIsCachedAcrossSnapshots) {
  ObjectStore store;
  Schema schema = TestSchema();
  Result<std::unique_ptr<DeltaTable>> table =
      DeltaTable::Create(&store, "tables/cached", schema);
  ASSERT_TRUE(table.ok());
  for (int commit = 0; commit < 3; commit++) {
    TableBuilder builder(schema);
    for (int i = 0; i < 100; i++) {
      builder.AppendRow({Value::Int64(commit * 100 + i), Value::String("x")});
    }
    ASSERT_TRUE((*table)->Append(builder.Finish()).ok());
  }

  io::BlockCache cache;
  (*table)->SetIoCache(&cache);

  Result<DeltaSnapshot> first = (*table)->Snapshot();
  ASSERT_TRUE(first.ok());
  int64_t gets_after_first = store.num_gets();

  Result<DeltaSnapshot> second = (*table)->Snapshot();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(store.num_gets(), gets_after_first)
      << "warm log replay must be served from the block cache";
  EXPECT_EQ(second->num_rows(), 300);
  EXPECT_EQ(second->version, first->version);

  // And the full Lakehouse read path: DeltaScan via the logical plan with
  // the same cache also avoids data-file re-reads when warm.
  io::IoOptions io;
  io.cache = &cache;
  exec::Driver driver(2);
  plan::PlanPtr plan = plan::DeltaScan(&store, *second, {}, nullptr, io);
  exec::StageInfo cold_stage;
  Result<Table> cold = driver.RunSingleTask(plan, {}, &cold_stage);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->num_rows(), 300);
  EXPECT_EQ(cold_stage.rows_out(), 300);
  EXPECT_EQ(cold_stage.cache_hits(), 0);

  int64_t gets_before_warm = store.num_gets();
  exec::StageInfo warm_stage;
  Result<Table> warm = driver.RunSingleTask(plan, {}, &warm_stage);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->num_rows(), 300);
  EXPECT_EQ(store.num_gets(), gets_before_warm);
  EXPECT_EQ(warm_stage.cache_hits(), warm_stage.files_read());
  EXPECT_GT(warm_stage.bytes_read(), 0);
}

}  // namespace
}  // namespace photon
