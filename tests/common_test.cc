#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/time_util.h"
#include "common/unicode.h"
#include "storage/compress.h"
#include "storage/object_store.h"

namespace photon {
namespace {

TEST(StringUtilTest, IsAsciiMatchesScalar) {
  Rng rng(1);
  for (int trial = 0; trial < 200; trial++) {
    int len = static_cast<int>(rng.Uniform(0, 100));
    std::string s(len, 0);
    bool force_non_ascii = rng.NextBool(0.5) && len > 0;
    for (int i = 0; i < len; i++) s[i] = static_cast<char>(rng.Uniform(1, 127));
    if (force_non_ascii) {
      s[rng.Uniform(0, len - 1)] = static_cast<char>(0x80 + rng.Uniform(0, 100));
    }
    EXPECT_EQ(IsAscii(s.data(), len), IsAsciiScalar(s.data(), len))
        << "len=" << len;
    EXPECT_EQ(IsAscii(s.data(), len), !force_non_ascii);
  }
}

TEST(StringUtilTest, AsciiCaseMapping) {
  std::string in = "Hello, World! 123 [\\]^_`{|}~";
  std::string up(in.size(), 0), down(in.size(), 0);
  AsciiToUpper(in.data(), up.data(), in.size());
  AsciiToLower(in.data(), down.data(), in.size());
  EXPECT_EQ(up, "HELLO, WORLD! 123 [\\]^_`{|}~");
  EXPECT_EQ(down, "hello, world! 123 [\\]^_`{|}~");
}

TEST(StringUtilTest, SqlLike) {
  EXPECT_TRUE(SqlLikeMatch("hello", "hello"));
  EXPECT_TRUE(SqlLikeMatch("hello", "h%"));
  EXPECT_TRUE(SqlLikeMatch("hello", "%llo"));
  EXPECT_TRUE(SqlLikeMatch("hello", "%ell%"));
  EXPECT_TRUE(SqlLikeMatch("hello", "h_llo"));
  EXPECT_TRUE(SqlLikeMatch("hello", "%"));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
  EXPECT_FALSE(SqlLikeMatch("", "_"));
  EXPECT_FALSE(SqlLikeMatch("hello", "h_llo_"));
  EXPECT_FALSE(SqlLikeMatch("hello", "ell"));
  EXPECT_TRUE(SqlLikeMatch("a%b", "a\x25"
                                  "b"));  // literal text with %
  EXPECT_TRUE(SqlLikeMatch("special offers include", "%special%offers%"));
  EXPECT_FALSE(SqlLikeMatch("special requests", "%special%offers%"));
}

TEST(UnicodeTest, DecodeEncodeRoundTrip) {
  for (uint32_t cp : {0x41u, 0x7Fu, 0x80u, 0x7FFu, 0x800u, 0xFFFFu, 0x10000u,
                      0x10FFFFu, 0x3B1u, 0x430u}) {
    char buf[4];
    int n = Utf8Encode(cp, buf);
    uint32_t back;
    EXPECT_EQ(Utf8Decode(buf, n, &back), n);
    EXPECT_EQ(back, cp);
  }
}

TEST(UnicodeTest, RejectsInvalidSequences) {
  uint32_t cp;
  // Lone continuation byte.
  EXPECT_EQ(Utf8Decode("\x80", 1, &cp), 0);
  // Truncated 2-byte sequence.
  EXPECT_EQ(Utf8Decode("\xC3", 1, &cp), 0);
  // Overlong encoding of '/'.
  EXPECT_EQ(Utf8Decode("\xC0\xAF", 2, &cp), 0);
}

TEST(UnicodeTest, CaseMappingCoverage) {
  EXPECT_EQ(Utf8ToUpper("caf\xC3\xA9"), "CAF\xC3\x89");          // é -> É
  EXPECT_EQ(Utf8ToLower("CAF\xC3\x89"), "caf\xC3\xA9");
  EXPECT_EQ(Utf8ToUpper("\xCE\xB1\xCE\xB2\xCF\x82"),
            "\xCE\x91\xCE\x92\xCE\xA3");  // αβς -> ΑΒΣ (final sigma)
  EXPECT_EQ(Utf8ToUpper("\xD0\xBC\xD0\xB8\xD1\x80"),
            "\xD0\x9C\xD0\x98\xD0\xA0");  // мир -> МИР
  // Unmapped codepoints pass through.
  EXPECT_EQ(Utf8ToUpper("\xE4\xB8\xAD"), "\xE4\xB8\xAD");  // 中
}

TEST(UnicodeTest, Utf8Length) {
  EXPECT_EQ(Utf8Length("abc"), 3);
  EXPECT_EQ(Utf8Length("caf\xC3\xA9"), 4);
  EXPECT_EQ(Utf8Length(""), 0);
  EXPECT_EQ(Utf8Length("\xF0\x9F\x98\x80"), 1);  // emoji, 4 bytes
}

TEST(TimeUtilTest, CivilConversionRoundTrip) {
  for (int32_t days : {0, 1, -1, 365, 19358, -719162, 2932896}) {
    CivilDate c = DaysToCivil(days);
    EXPECT_EQ(CivilToDays(c.year, c.month, c.day), days);
  }
  CivilDate epoch = DaysToCivil(0);
  EXPECT_EQ(epoch.year, 1970);
  EXPECT_EQ(epoch.month, 1);
  EXPECT_EQ(epoch.day, 1);
}

TEST(TimeUtilTest, ParseAndFormat) {
  int32_t days;
  ASSERT_TRUE(ParseDate("2023-06-15", &days));
  EXPECT_EQ(FormatDate(days), "2023-06-15");
  EXPECT_EQ(ExtractYear(days), 2023);
  EXPECT_EQ(ExtractMonth(days), 6);
  EXPECT_EQ(ExtractDay(days), 15);
  EXPECT_FALSE(ParseDate("not-a-date", &days));
  EXPECT_FALSE(ParseDate("2023-13-01", &days));
}

TEST(TimeUtilTest, LeapYears) {
  int32_t days;
  ASSERT_TRUE(ParseDate("2000-02-29", &days));
  EXPECT_EQ(FormatDate(days), "2000-02-29");
  EXPECT_EQ(FormatDate(days + 1), "2000-03-01");
  // 1900 is not a leap year.
  ASSERT_TRUE(ParseDate("1900-02-28", &days));
  EXPECT_EQ(FormatDate(days + 1), "1900-03-01");
}

TEST(TimeUtilTest, AddMonthsClampsDay) {
  int32_t days;
  ASSERT_TRUE(ParseDate("2023-01-31", &days));
  EXPECT_EQ(FormatDate(AddMonths(days, 1)), "2023-02-28");
  EXPECT_EQ(FormatDate(AddMonths(days, 3)), "2023-04-30");
  EXPECT_EQ(FormatDate(AddMonths(days, -1)), "2022-12-31");
  EXPECT_EQ(FormatDate(AddMonths(days, 12)), "2024-01-31");
}

TEST(HashTest, BytesHashStability) {
  // Same bytes -> same hash; differing bytes -> (overwhelmingly) different.
  std::string a = "the quick brown fox";
  std::string b = "the quick brown foy";
  EXPECT_EQ(HashBytes(a.data(), a.size()), HashBytes(a.data(), a.size()));
  EXPECT_NE(HashBytes(a.data(), a.size()), HashBytes(b.data(), b.size()));
  EXPECT_NE(HashBytes(a.data(), 5), HashBytes(a.data(), 6));
}

TEST(CompressTest, RoundTripRandomAndRepetitive) {
  Rng rng(2);
  // Highly compressible input.
  std::string rep;
  for (int i = 0; i < 1000; i++) rep += "abcabcabc-";
  std::string frame = Compress(rep, Codec::kLz);
  EXPECT_LT(frame.size(), rep.size() / 3);
  Result<std::string> back = Decompress(frame);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, rep);

  // Random (incompressible) input still round-trips.
  for (int trial = 0; trial < 20; trial++) {
    int len = static_cast<int>(rng.Uniform(0, 5000));
    std::string data(len, 0);
    for (int i = 0; i < len; i++) data[i] = static_cast<char>(rng.Next());
    Result<std::string> rt = Decompress(Compress(data, Codec::kLz));
    ASSERT_TRUE(rt.ok());
    EXPECT_EQ(*rt, data) << "len=" << len;
    // kNone codec too.
    rt = Decompress(Compress(data, Codec::kNone));
    ASSERT_TRUE(rt.ok());
    EXPECT_EQ(*rt, data);
  }
}

TEST(CompressTest, OverlappingMatchesRle) {
  std::string rle(10000, 'x');
  std::string frame = Compress(rle, Codec::kLz);
  EXPECT_LT(frame.size(), 200u);
  Result<std::string> back = Decompress(frame);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rle);
}

TEST(CompressTest, RejectsCorruptFrames) {
  std::string frame = Compress("hello world hello world", Codec::kLz);
  std::string truncated = frame.substr(0, frame.size() / 2);
  EXPECT_FALSE(Decompress(truncated).ok());
  EXPECT_FALSE(Decompress("").ok());
}

TEST(ObjectStoreTest, PutGetListDelete) {
  ObjectStore store;
  ASSERT_TRUE(store.Put("a/1", "one").ok());
  ASSERT_TRUE(store.Put("a/2", "two").ok());
  ASSERT_TRUE(store.Put("b/1", "three").ok());
  Result<std::string> got = store.Get("a/2");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "two");
  EXPECT_FALSE(store.Get("missing").ok());
  EXPECT_EQ(store.List("a/").size(), 2u);
  EXPECT_EQ(store.DeletePrefix("a/"), 2);
  EXPECT_EQ(store.List("a/").size(), 0u);
  EXPECT_TRUE(store.Exists("b/1"));
}

TEST(ObjectStoreTest, FailureInjection) {
  ObjectStore store;
  store.FailNextPuts(1);
  EXPECT_TRUE(store.Put("x", "1").IsIoError());
  EXPECT_TRUE(store.Put("x", "1").ok());
}

}  // namespace
}  // namespace photon
