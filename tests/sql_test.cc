#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/time_util.h"
#include "exec/dml.h"
#include "exec/driver.h"
#include "expr/builder.h"
#include "expr/program.h"
#include "plan/logical_plan.h"
#include "sql/analyzer.h"
#include "sql/catalog.h"
#include "sql/lexer.h"
#include "storage/delta.h"
#include "storage/object_store.h"
#include "sql/parser.h"
#include "types/decimal.h"
#include "vector/table.h"

namespace photon {
namespace sql {
namespace {

using eb::Col;
using eb::Lit;

Table MakeTable(const Schema& schema,
                const std::vector<std::vector<Value>>& rows) {
  TableBuilder builder(schema, 4);
  for (const auto& row : rows) builder.AppendRow(row);
  return builder.Finish();
}

Value Dec(const std::string& text, int scale) {
  Decimal128 d;
  PHOTON_CHECK(Decimal128::FromString(text, scale, &d));
  return Value::Decimal(d);
}

Value Date(const std::string& text) {
  int32_t days = 0;
  PHOTON_CHECK(ParseDate(text, &days));
  return Value::Date32(days);
}

/// Shared fixture: two small tables (`t` with one column of every major
/// type, `u` with integer keys) behind a catalog.
class SqlTest : public ::testing::Test {
 protected:
  SqlTest()
      : t_(MakeTable(
            Schema({Field("id", DataType::Int64()),
                    Field("v", DataType::Int32()),
                    Field("price", DataType::Decimal(12, 2)),
                    Field("name", DataType::String()),
                    Field("d", DataType::Date32()),
                    Field("x", DataType::Float64()),
                    Field("flag", DataType::Boolean())}),
            {{Value::Int64(1), Value::Int32(10), Dec("1.50", 2),
              Value::String("alpha"), Date("1995-01-01"), Value::Float64(0.5),
              Value::Boolean(true)},
             {Value::Int64(2), Value::Int32(20), Dec("2.25", 2),
              Value::String("beta"), Date("1996-06-15"), Value::Float64(1.5),
              Value::Boolean(false)},
             {Value::Int64(3), Value::Int32(20), Dec("3.00", 2),
              Value::String("gamma"), Date("1997-12-31"),
              Value::Float64(2.5), Value::Boolean(true)},
             {Value::Int64(4), Value::Int32(30), Dec("0.75", 2),
              Value::String("delta"), Date("1995-03-03"),
              Value::Float64(3.5), Value::Boolean(false)}})),
        u_(MakeTable(Schema({Field("id", DataType::Int64()),
                             Field("uv", DataType::Int64())}),
                     {{Value::Int64(1), Value::Int64(100)},
                      {Value::Int64(3), Value::Int64(300)},
                      {Value::Int64(3), Value::Int64(301)},
                      {Value::Int64(9), Value::Int64(900)}})) {
    catalog_.RegisterTable("t", &t_);
    catalog_.RegisterTable("u", &u_);
  }

  plan::PlanPtr Compile(const std::string& query) {
    Result<plan::PlanPtr> p = CompileSql(query, catalog_);
    EXPECT_TRUE(p.ok()) << query << "\n  -> " << p.status().message();
    return p.ok() ? *p : nullptr;
  }

  std::string CompileError(const std::string& query) {
    Result<plan::PlanPtr> p = CompileSql(query, catalog_);
    EXPECT_FALSE(p.ok()) << query << " unexpectedly compiled";
    return p.ok() ? "" : p.status().message();
  }

  Table Run(const std::string& query) {
    plan::PlanPtr p = Compile(query);
    PHOTON_CHECK(p != nullptr);
    exec::Driver driver(1);
    Result<Table> t = driver.RunSingleTask(p);
    PHOTON_CHECK(t.ok());
    return std::move(*t);
  }

  Table t_;
  Table u_;
  Catalog catalog_;
};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

TEST(SqlLexerTest, GoldenTokenStream) {
  Result<std::vector<Token>> r =
      Lex("SELECT a, 1.5 FROM t -- trailing comment\nWHERE s <> 'it''s'");
  ASSERT_TRUE(r.ok());
  const std::vector<Token>& toks = *r;
  ASSERT_EQ(toks.size(), 11u);
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_EQ(toks[0].offset, 0);
  EXPECT_EQ(toks[1].kind, TokenKind::kIdent);
  EXPECT_EQ(toks[1].text, "a");
  EXPECT_TRUE(toks[2].IsSymbol(","));
  EXPECT_EQ(toks[3].kind, TokenKind::kDecimalLit);
  EXPECT_EQ(toks[3].text, "1.5");
  EXPECT_TRUE(toks[4].IsKeyword("FROM"));
  EXPECT_EQ(toks[5].text, "t");
  EXPECT_TRUE(toks[6].IsKeyword("WHERE"));  // comment skipped
  EXPECT_EQ(toks[6].offset, 41);            // first char of line 2
  EXPECT_EQ(toks[7].text, "s");
  EXPECT_TRUE(toks[8].IsSymbol("<>"));
  EXPECT_EQ(toks[9].kind, TokenKind::kStringLit);
  EXPECT_EQ(toks[9].text, "it's");  // '' collapses to '
  EXPECT_EQ(toks[10].kind, TokenKind::kEnd);
}

TEST(SqlLexerTest, KeywordsAreCaseInsensitiveIdentsAreNot) {
  Result<std::vector<Token>> r = Lex("select FooBar");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*r)[1].kind, TokenKind::kIdent);
  EXPECT_EQ((*r)[1].text, "FooBar");
}

TEST(SqlLexerTest, NumericShapes) {
  Result<std::vector<Token>> r = Lex("1 12.50 3e2 4.5E-1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kIntLit);
  EXPECT_EQ((*r)[1].kind, TokenKind::kDecimalLit);
  EXPECT_EQ((*r)[2].kind, TokenKind::kFloatLit);
  EXPECT_EQ((*r)[3].kind, TokenKind::kFloatLit);
}

TEST(SqlLexerTest, UnterminatedStringHasLineColumn) {
  Result<std::vector<Token>> r = Lex("SELECT a\nFROM 'oops");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2 column 6"), std::string::npos)
      << r.status().message();
}

// ---------------------------------------------------------------------------
// Parse errors carry line:column
// ---------------------------------------------------------------------------

TEST_F(SqlTest, MissingExpressionError) {
  std::string msg = CompileError("SELECT a,\n FROM t");
  EXPECT_NE(msg.find("line 2 column 2"), std::string::npos) << msg;
}

TEST_F(SqlTest, TrailingTokensError) {
  std::string msg = CompileError("SELECT id FROM t extra junk");
  EXPECT_NE(msg.find("line 1 column"), std::string::npos) << msg;
}

TEST_F(SqlTest, UnknownTableError) {
  std::string msg = CompileError("SELECT id FROM nosuch");
  EXPECT_NE(msg.find("unknown table 'nosuch'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 1 column 16"), std::string::npos) << msg;
}

TEST_F(SqlTest, UnknownColumnError) {
  std::string msg = CompileError("SELECT zzz FROM t");
  EXPECT_NE(msg.find("unknown column 'zzz'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 1 column 8"), std::string::npos) << msg;
}

TEST_F(SqlTest, AmbiguousColumnError) {
  std::string msg =
      CompileError("SELECT id FROM t JOIN u ON t.id = u.id");
  EXPECT_NE(msg.find("ambiguous column 'id'"), std::string::npos) << msg;
}

TEST_F(SqlTest, ExpressionDepthLimitError) {
  std::string query = "SELECT ";
  for (int i = 0; i < kMaxSqlExprDepth + 50; i++) query += "(";
  query += "1";
  for (int i = 0; i < kMaxSqlExprDepth + 50; i++) query += ")";
  query += " FROM t";
  std::string msg = CompileError(query);
  EXPECT_NE(msg.find("depth limit"), std::string::npos) << msg;
}

TEST_F(SqlTest, AggregateOutsideGroupingError) {
  std::string msg = CompileError("SELECT id FROM t WHERE sum(v) > 1");
  EXPECT_NE(msg.find("aggregate function 'sum'"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// Typing and implicit casts: the lowered expression must be byte-identical
// (by canonical key) to the tree the eb:: builders produce by hand.
// ---------------------------------------------------------------------------

class SqlTypingTest : public SqlTest {
 protected:
  /// Canonical key of the first Project expression of `SELECT <expr> FROM t`.
  std::string ProjectCanon(const std::string& expr_sql) {
    plan::PlanPtr p = Compile("SELECT " + expr_sql + " FROM t");
    PHOTON_CHECK(p != nullptr);
    PHOTON_CHECK(p->kind == plan::PlanKind::kProject);
    return ExprCanonKey(*p->exprs[0]);
  }

  /// Canonical key of the Filter predicate of `SELECT id FROM t WHERE ...`.
  std::string WhereCanon(const std::string& pred_sql) {
    plan::PlanPtr p = Compile("SELECT id FROM t WHERE " + pred_sql);
    PHOTON_CHECK(p != nullptr);
    PHOTON_CHECK(p->kind == plan::PlanKind::kProject);
    PHOTON_CHECK(p->children[0]->kind == plan::PlanKind::kFilter);
    return ExprCanonKey(*p->children[0]->predicate);
  }

  ExprPtr id_ = Col(0, DataType::Int64(), "id");
  ExprPtr v_ = Col(1, DataType::Int32(), "v");
  ExprPtr price_ = Col(2, DataType::Decimal(12, 2), "price");
  ExprPtr name_ = Col(3, DataType::String(), "name");
  ExprPtr d_ = Col(4, DataType::Date32(), "d");
  ExprPtr x_ = Col(5, DataType::Float64(), "x");
  ExprPtr flag_ = Col(6, DataType::Boolean(), "flag");
};

TEST_F(SqlTypingTest, IntWidening) {
  EXPECT_EQ(ProjectCanon("v + id"), ExprCanonKey(*eb::Add(v_, id_)));
}

TEST_F(SqlTypingTest, DecimalIntArithmetic) {
  EXPECT_EQ(ProjectCanon("price * v"), ExprCanonKey(*eb::Mul(price_, v_)));
}

TEST_F(SqlTypingTest, FloatContagion) {
  EXPECT_EQ(ProjectCanon("x + v"), ExprCanonKey(*eb::Add(x_, v_)));
  EXPECT_EQ(ProjectCanon("price + x"), ExprCanonKey(*eb::Add(price_, x_)));
}

TEST_F(SqlTypingTest, StringLiteralComparedToDateParsesAsDate) {
  EXPECT_EQ(WhereCanon("d < '1996-01-01'"),
            ExprCanonKey(*eb::Lt(d_, Lit("1996-01-01"))));
}

TEST_F(SqlTypingTest, DateBetweenStrings) {
  EXPECT_EQ(WhereCanon("d BETWEEN '1995-01-01' AND '1995-12-31'"),
            ExprCanonKey(
                *eb::Between(d_, Lit("1995-01-01"), Lit("1995-12-31"))));
}

TEST_F(SqlTypingTest, DecimalLiteralShape) {
  // "0.05" lowers as DECIMAL(2,2), matching eb::DecimalLit.
  EXPECT_EQ(WhereCanon("price > 0.05"),
            ExprCanonKey(*eb::Gt(price_, eb::DecimalLit("0.05", 2, 2))));
}

TEST_F(SqlTypingTest, InListCoercesToValueType) {
  EXPECT_EQ(WhereCanon("id IN (1, 2)"),
            ExprCanonKey(
                *eb::In(id_, {Value::Int64(1), Value::Int64(2)})));
  EXPECT_EQ(WhereCanon("d IN ('1995-01-01')"),
            ExprCanonKey(*eb::In(d_, {Date("1995-01-01")})));
}

TEST_F(SqlTypingTest, CaseBranchesUnify) {
  // int32 THEN branch widens to the int64 ELSE branch.
  EXPECT_EQ(
      ProjectCanon("CASE WHEN flag THEN v ELSE id END"),
      ExprCanonKey(*eb::CaseWhen(
          {{flag_, eb::Cast(v_, DataType::Int64())}}, id_)));
}

TEST_F(SqlTypingTest, TypedLiterals) {
  EXPECT_EQ(WhereCanon("d < DATE '1996-01-01'"),
            ExprCanonKey(*eb::Lt(d_, eb::DateLit("1996-01-01"))));
  EXPECT_EQ(WhereCanon("price < DECIMAL(12,2) '2.00'"),
            ExprCanonKey(*eb::Lt(price_, eb::DecimalLit("2.00", 12, 2))));
  EXPECT_EQ(ProjectCanon("BIGINT '5'"), ExprCanonKey(*Lit(int64_t{5})));
}

TEST_F(SqlTypingTest, UnaryMinusFoldsIntoLiterals) {
  EXPECT_EQ(WhereCanon("v > -5"), ExprCanonKey(*eb::Gt(v_, Lit(-5))));
  EXPECT_EQ(ProjectCanon("-x"), ExprCanonKey(*eb::Sub(Lit(0.0), x_)));
}

TEST_F(SqlTypingTest, CastNullGetsRequestedType) {
  EXPECT_EQ(ProjectCanon("CAST(NULL AS BIGINT)"),
            ExprCanonKey(*eb::NullLit(DataType::Int64())));
}

TEST_F(SqlTypingTest, TypeErrors) {
  EXPECT_NE(CompileError("SELECT name + 1 FROM t").find("numeric"),
            std::string::npos);
  EXPECT_NE(CompileError("SELECT id FROM t WHERE name < 1")
                .find("cannot compare"),
            std::string::npos);
  EXPECT_NE(CompileError("SELECT NULL FROM t").find("CAST(NULL AS"),
            std::string::npos);
  EXPECT_NE(CompileError("SELECT id FROM t WHERE id % x > 0").find("'%'"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Lowering shapes
// ---------------------------------------------------------------------------

TEST_F(SqlTest, JoinLowersToHashJoinWithExtractedKeys) {
  plan::PlanPtr p =
      Compile("SELECT t.id, uv FROM t JOIN u ON t.id = u.id AND uv > 100");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind, plan::PlanKind::kProject);
  const plan::PlanNode& join = *p->children[0];
  ASSERT_EQ(join.kind, plan::PlanKind::kJoin);
  EXPECT_EQ(join.join_type, JoinType::kInner);
  ASSERT_EQ(join.left_keys.size(), 1u);
  EXPECT_EQ(ExprCanonKey(*join.left_keys[0]),
            ExprCanonKey(*Col(0, DataType::Int64(), "id")));
  EXPECT_EQ(ExprCanonKey(*join.right_keys[0]),
            ExprCanonKey(*Col(0, DataType::Int64(), "id")));
  ASSERT_NE(join.residual, nullptr);  // uv > 100 is not an equi-key
  EXPECT_EQ(join.children[0]->kind, plan::PlanKind::kScan);
  EXPECT_EQ(join.children[1]->kind, plan::PlanKind::kScan);
}

TEST_F(SqlTest, LeftOuterJoinKeepsProbeRows) {
  Table r = Run(
      "SELECT t.id, uv FROM t LEFT JOIN u ON t.id = u.id ORDER BY id, uv");
  ASSERT_EQ(r.num_rows(), 5);  // id=3 matches twice; 2 and 4 null-extend
  EXPECT_EQ(r.GetRow(1)[1], Value::Null());   // id=2
  EXPECT_EQ(r.GetRow(2)[1], Value::Int64(300));
}

TEST_F(SqlTest, InSubqueryLowersToSemiJoin) {
  plan::PlanPtr p =
      Compile("SELECT id FROM t WHERE id IN (SELECT id FROM u)");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind, plan::PlanKind::kProject);
  EXPECT_EQ(p->children[0]->kind, plan::PlanKind::kJoin);
  EXPECT_EQ(p->children[0]->join_type, JoinType::kLeftSemi);

  Table r = Run("SELECT id FROM t WHERE id IN (SELECT id FROM u) ORDER BY id");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(r.GetRow(0)[0], Value::Int64(1));
  EXPECT_EQ(r.GetRow(1)[0], Value::Int64(3));
}

TEST_F(SqlTest, NotInLowersToAntiJoin) {
  Table r = Run(
      "SELECT id FROM t WHERE id NOT IN (SELECT id FROM u) ORDER BY id");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(r.GetRow(0)[0], Value::Int64(2));
  EXPECT_EQ(r.GetRow(1)[0], Value::Int64(4));
}

TEST_F(SqlTest, CorrelatedExistsSplitsInnerAndJoinConjuncts) {
  plan::PlanPtr p = Compile(
      "SELECT id FROM t WHERE EXISTS "
      "(SELECT * FROM u WHERE u.id = t.id AND uv >= 300)");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind, plan::PlanKind::kProject);
  const plan::PlanNode& join = *p->children[0];
  ASSERT_EQ(join.kind, plan::PlanKind::kJoin);
  EXPECT_EQ(join.join_type, JoinType::kLeftSemi);
  ASSERT_EQ(join.left_keys.size(), 1u);
  // uv >= 300 is uncorrelated, so it filters the build side below the join.
  EXPECT_EQ(join.children[1]->kind, plan::PlanKind::kFilter);

  Table r = Run(
      "SELECT id FROM t WHERE EXISTS "
      "(SELECT * FROM u WHERE u.id = t.id AND uv >= 300)");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.GetRow(0)[0], Value::Int64(3));
}

TEST_F(SqlTest, ScalarSubqueryBroadcastsViaConstantKeyJoin) {
  Table r = Run(
      "SELECT id FROM t WHERE id * 100 >= (SELECT max(uv) FROM u) "
      "ORDER BY id");
  ASSERT_EQ(r.num_rows(), 0);  // max(uv)=900, ids reach 400
  Table r2 = Run(
      "SELECT id FROM t WHERE id * 100 >= (SELECT min(uv) FROM u) "
      "ORDER BY id");
  ASSERT_EQ(r2.num_rows(), 4);
}

TEST_F(SqlTest, GroupByWithoutProjectionIsBareAggregate) {
  plan::PlanPtr p =
      Compile("SELECT v, count(*) AS n, sum(id) AS s FROM t GROUP BY v");
  ASSERT_NE(p, nullptr);
  // SELECT list == aggregate output, so no Project is added on top.
  ASSERT_EQ(p->kind, plan::PlanKind::kAggregate);
  ASSERT_EQ(p->key_names.size(), 1u);
  EXPECT_EQ(p->key_names[0], "v");
  ASSERT_EQ(p->aggregates.size(), 2u);
  EXPECT_EQ(p->aggregates[0].name, "n");
  EXPECT_EQ(p->aggregates[1].name, "s");
  EXPECT_EQ(p->output_schema.field(1).name, "n");
}

TEST_F(SqlTest, GroupByExpressionMatchesSelectUsage) {
  Table r = Run(
      "SELECT v + 1 AS k, count(*) AS n FROM t GROUP BY v + 1 ORDER BY k");
  ASSERT_EQ(r.num_rows(), 3);
  EXPECT_EQ(r.GetRow(1)[0], Value::Int32(21));
  EXPECT_EQ(r.GetRow(1)[1], Value::Int64(2));
}

TEST_F(SqlTest, HavingFiltersAboveAggregate) {
  plan::PlanPtr p = Compile(
      "SELECT v, count(*) AS n FROM t GROUP BY v HAVING count(*) > 1");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind, plan::PlanKind::kFilter);
  EXPECT_EQ(p->children[0]->kind, plan::PlanKind::kAggregate);

  Table r = Run(
      "SELECT v, count(*) AS n FROM t GROUP BY v HAVING count(*) > 1");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.GetRow(0)[0], Value::Int32(20));
}

TEST_F(SqlTest, DistinctLowersToKeyOnlyAggregate) {
  plan::PlanPtr p = Compile("SELECT DISTINCT v FROM t");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind, plan::PlanKind::kAggregate);
  EXPECT_TRUE(p->aggregates.empty());
  Table r = Run("SELECT DISTINCT v FROM t ORDER BY v");
  ASSERT_EQ(r.num_rows(), 3);
}

TEST_F(SqlTest, OrderByLimitNest) {
  plan::PlanPtr p = Compile("SELECT id FROM t ORDER BY id DESC LIMIT 2");
  ASSERT_NE(p, nullptr);
  ASSERT_EQ(p->kind, plan::PlanKind::kLimit);
  EXPECT_EQ(p->limit, 2);
  ASSERT_EQ(p->children[0]->kind, plan::PlanKind::kSort);
  EXPECT_FALSE(p->children[0]->sort_keys[0].ascending);

  Table r = Run("SELECT id FROM t ORDER BY id DESC LIMIT 2");
  ASSERT_EQ(r.num_rows(), 2);
  EXPECT_EQ(r.GetRow(0)[0], Value::Int64(4));
  EXPECT_EQ(r.GetRow(1)[0], Value::Int64(3));
}

TEST_F(SqlTest, CteExpandsLikeAMacro) {
  Table r = Run(
      "WITH big AS (SELECT id, v FROM t WHERE v >= 20) "
      "SELECT count(*) AS n FROM big JOIN u ON big.id = u.id");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.GetRow(0)[0], Value::Int64(2));  // id=3 matches u twice
}

TEST_F(SqlTest, DerivedTableWithColumnAliases) {
  Table r = Run(
      "SELECT big_v FROM (SELECT id, v FROM t) AS s (big_id, big_v) "
      "WHERE big_id = 1");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.GetRow(0)[0], Value::Int32(10));
}

TEST_F(SqlTest, ScalarFunctionsResolveThroughRegistry) {
  Table r = Run("SELECT upper(name) AS un FROM t WHERE id = 1");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.GetRow(0)[0], Value::String("ALPHA"));
  std::string msg = CompileError("SELECT nosuchfn(id) FROM t");
  EXPECT_NE(msg.find("unknown function 'nosuchfn'"), std::string::npos);
}

TEST_F(SqlTest, LikeLowersToCall) {
  Table r = Run("SELECT name FROM t WHERE name LIKE '%et%'");
  ASSERT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.GetRow(0)[0], Value::String("beta"));
}

TEST_F(SqlTest, QueryDepthLimitStopsRecursiveCtes) {
  std::string msg = CompileError(
      "WITH r AS (SELECT id FROM r) SELECT id FROM r");
  EXPECT_NE(msg.find("depth limit"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// DML statements + time travel over a delta-backed catalog entry
// ---------------------------------------------------------------------------

/// Fixture with a writable delta table `kv(id, val)` (25 rows, ids 0..24,
/// val = id * 10) next to the read-only in-memory tables of SqlTest.
class SqlDmlTest : public ::testing::Test {
 protected:
  SqlDmlTest() : driver_(1) {
    auto created = DeltaTable::Create(
        &store_, "sql/kv",
        Schema({Field("id", DataType::Int64()),
                Field("val", DataType::Int64())}));
    PHOTON_CHECK(created.ok());
    kv_ = std::move(*created);
    TableBuilder b(Schema({Field("id", DataType::Int64()),
                           Field("val", DataType::Int64())}));
    for (int64_t i = 0; i < 25; i++) {
      b.AppendRow({Value::Int64(i), Value::Int64(i * 10)});
    }
    PHOTON_CHECK(kv_->Append(b.Finish()).ok());
    PHOTON_CHECK(catalog_.RegisterDeltaTable("kv", kv_.get()).ok());
    catalog_.RegisterTable("t", &t_);
  }

  CompiledStatement Stmt(const std::string& text) {
    Result<CompiledStatement> s = CompileStatement(text, catalog_);
    EXPECT_TRUE(s.ok()) << text << "\n  -> " << s.status().message();
    PHOTON_CHECK(s.ok());
    return *std::move(s);
  }

  std::string StmtError(const std::string& text) {
    Result<CompiledStatement> s = CompileStatement(text, catalog_);
    EXPECT_FALSE(s.ok()) << text << " unexpectedly compiled";
    return s.ok() ? "" : s.status().message();
  }

  dml::DmlResult Execute(const std::string& text) {
    CompiledStatement stmt = Stmt(text);
    ExecContext ctx;
    Result<dml::DmlResult> r = [&] {
      switch (stmt.kind) {
        case StatementKind::kDelete:
          return dml::ExecuteDelete(stmt.table, stmt.predicate, &driver_,
                                    ctx);
        case StatementKind::kUpdate:
          return dml::ExecuteUpdate(stmt.table, stmt.assignments,
                                    stmt.predicate, &driver_, ctx);
        default:
          return dml::ExecuteMerge(stmt.table, stmt.merge, &driver_, ctx);
      }
    }();
    PHOTON_CHECK(r.ok());
    // Advance the registered read snapshot like a client would.
    PHOTON_CHECK(catalog_.RegisterDeltaTable("kv", kv_.get()).ok());
    return *r;
  }

  Table Query(const std::string& text) {
    Result<CompiledStatement> s = CompileStatement(text, catalog_);
    PHOTON_CHECK(s.ok());
    PHOTON_CHECK(s->kind == StatementKind::kSelect);
    Result<Table> t = driver_.RunSingleTask(s->plan);
    PHOTON_CHECK(t.ok());
    return std::move(*t);
  }

  Table t_ = MakeTable(Schema({Field("id", DataType::Int64())}),
                       {{Value::Int64(1)}});
  ObjectStore store_;
  std::unique_ptr<DeltaTable> kv_;
  Catalog catalog_;
  exec::Driver driver_;
};

TEST_F(SqlDmlTest, DeleteCompilesToTypedPredicateAndExecutes) {
  CompiledStatement stmt = Stmt("DELETE FROM kv WHERE id < 5");
  EXPECT_EQ(stmt.kind, StatementKind::kDelete);
  EXPECT_EQ(stmt.table, kv_.get());
  ASSERT_NE(stmt.predicate, nullptr);
  EXPECT_EQ(stmt.predicate->type().id(), TypeId::kBoolean);

  dml::DmlResult r = Execute("DELETE FROM kv WHERE id < 5");
  EXPECT_EQ(r.rows_affected, 5);
  Table left = Query("SELECT count(id) AS n FROM kv");
  EXPECT_EQ(left.GetRow(0)[0], Value::Int64(20));
}

TEST_F(SqlDmlTest, UpdateCastsAssignmentsToColumnTypes) {
  // 3 (an Int32 literal after SQL typing) must be cast to the Int64
  // column; the predicate references the pre-update row.
  dml::DmlResult r = Execute("UPDATE kv SET val = 3 WHERE val >= 200");
  EXPECT_EQ(r.rows_affected, 5);  // ids 20..24
  Table n = Query("SELECT count(id) AS n FROM kv WHERE val = 3");
  EXPECT_EQ(n.GetRow(0)[0], Value::Int64(5));
}

TEST_F(SqlDmlTest, MergeExtractsKeysAndBothClauses) {
  CompiledStatement stmt = Stmt(
      "MERGE INTO kv USING (SELECT id, val FROM kv WHERE id >= 20) AS s "
      "ON kv.id = s.id "
      "WHEN MATCHED THEN UPDATE SET val = s.val + 1 "
      "WHEN NOT MATCHED THEN INSERT VALUES (s.id, s.val)");
  EXPECT_EQ(stmt.kind, StatementKind::kMerge);
  ASSERT_EQ(stmt.merge.target_keys, std::vector<int>{0});
  ASSERT_EQ(stmt.merge.source_keys, std::vector<int>{0});
  ASSERT_EQ(stmt.merge.matched_exprs.size(), 2u);
  ASSERT_EQ(stmt.merge.insert_exprs.size(), 2u);

  dml::DmlResult r = Execute(
      "MERGE INTO kv USING (SELECT id + 25 AS id, val FROM kv "
      "WHERE id >= 20) AS s ON kv.id = s.id "
      "WHEN MATCHED THEN UPDATE SET val = s.val + 1 "
      "WHEN NOT MATCHED THEN INSERT VALUES (s.id, s.val)");
  EXPECT_EQ(r.rows_affected, 0);  // shifted keys match nothing
  EXPECT_EQ(r.rows_inserted, 5);
  Table n = Query("SELECT count(id) AS n FROM kv");
  EXPECT_EQ(n.GetRow(0)[0], Value::Int64(30));
}

TEST_F(SqlDmlTest, VersionAsOfPinsThePreDmlSnapshot) {
  Execute("DELETE FROM kv WHERE id < 10");
  Table now = Query("SELECT count(id) AS n FROM kv");
  EXPECT_EQ(now.GetRow(0)[0], Value::Int64(15));
  // Version 1 is the seed append, before the delete.
  Table then = Query("SELECT count(id) AS n FROM kv VERSION AS OF 1");
  EXPECT_EQ(then.GetRow(0)[0], Value::Int64(25));
}

TEST_F(SqlDmlTest, DmlAndTimeTravelErrorsAreLocated) {
  EXPECT_NE(StmtError("DELETE FROM t WHERE id = 1").find("read-only"),
            std::string::npos);
  EXPECT_NE(StmtError("DELETE FROM missing").find("unknown table"),
            std::string::npos);
  EXPECT_NE(StmtError("UPDATE kv SET nope = 1").find("unknown column"),
            std::string::npos);
  EXPECT_NE(StmtError("UPDATE kv SET val = 1, val = 2").find("duplicate"),
            std::string::npos);
  EXPECT_NE(StmtError("MERGE INTO kv USING t AS s ON kv.id < s.id "
                      "WHEN MATCHED THEN UPDATE SET val = 0")
                .find("conjunction"),
            std::string::npos);
  EXPECT_NE(StmtError("MERGE INTO kv USING t AS s ON kv.id = s.id")
                .find("WHEN"),
            std::string::npos);
  EXPECT_NE(StmtError("SELECT id FROM t VERSION AS OF 0")
                .find("not a delta table"),
            std::string::npos);
  EXPECT_NE(
      StmtError("SELECT id FROM kv VERSION AS OF 99").find("VERSION AS OF"),
      std::string::npos);
  // Errors carry line:column attribution like every other SQL error.
  EXPECT_NE(StmtError("DELETE FROM missing").find("line 1 column"),
            std::string::npos);
}

}  // namespace
}  // namespace sql
}  // namespace photon
