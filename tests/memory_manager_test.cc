#include "memory/memory_manager.h"

#include <gtest/gtest.h>

namespace photon {
namespace {

/// A consumer that records spill requests and frees what it's told to.
class FakeConsumer : public MemoryConsumer {
 public:
  FakeConsumer(std::string name, MemoryManager* mgr)
      : MemoryConsumer(std::move(name)), mgr_(mgr) {}

  int64_t Spill(int64_t requested) override {
    spill_calls_++;
    last_requested_ = requested;
    int64_t freed = std::min(requested, reserved_bytes());
    if (!can_spill_) return 0;
    mgr_->Release(this, reserved_bytes());  // free everything, like a real op
    return freed > 0 ? freed : reserved_bytes();
  }

  Status Reserve(int64_t bytes) { return mgr_->Reserve(this, bytes); }

  int spill_calls_ = 0;
  int64_t last_requested_ = 0;
  bool can_spill_ = true;

 private:
  MemoryManager* mgr_;
};

TEST(MemoryManagerTest, ReserveWithinLimitSucceeds) {
  MemoryManager mgr(1000);
  FakeConsumer a("a", &mgr);
  mgr.RegisterConsumer(&a);
  EXPECT_TRUE(a.Reserve(600).ok());
  EXPECT_EQ(mgr.reserved(), 600);
  EXPECT_EQ(a.reserved_bytes(), 600);
  mgr.Release(&a, 600);
  mgr.UnregisterConsumer(&a);
}

TEST(MemoryManagerTest, SpillPolicyPicksSmallestSufficientConsumer) {
  // Paper §5.3: sort consumers ascending by allocation; spill the first
  // holding at least N bytes — minimizes spill count and volume.
  MemoryManager mgr(1000);
  FakeConsumer small("small", &mgr), big("big", &mgr), tiny("tiny", &mgr);
  mgr.RegisterConsumer(&small);
  mgr.RegisterConsumer(&big);
  mgr.RegisterConsumer(&tiny);
  ASSERT_TRUE(tiny.Reserve(50).ok());
  ASSERT_TRUE(small.Reserve(300).ok());
  ASSERT_TRUE(big.Reserve(600).ok());

  // Need 200 more: tiny (50) can't cover it; small (300) can.
  FakeConsumer requester("req", &mgr);
  mgr.RegisterConsumer(&requester);
  ASSERT_TRUE(requester.Reserve(200).ok());
  EXPECT_EQ(tiny.spill_calls_, 0);
  EXPECT_EQ(small.spill_calls_, 1);
  EXPECT_EQ(big.spill_calls_, 0);

  mgr.Release(&requester, 200);
  mgr.Release(&tiny, tiny.reserved_bytes());
  mgr.Release(&big, big.reserved_bytes());
  mgr.UnregisterConsumer(&requester);
  mgr.UnregisterConsumer(&small);
  mgr.UnregisterConsumer(&big);
  mgr.UnregisterConsumer(&tiny);
}

TEST(MemoryManagerTest, RequesterCanSelfSpill) {
  // "Recursive spill": the requester itself may be the victim (§5.3).
  MemoryManager mgr(1000);
  FakeConsumer a("a", &mgr);
  mgr.RegisterConsumer(&a);
  ASSERT_TRUE(a.Reserve(900).ok());
  ASSERT_TRUE(a.Reserve(500).ok());  // forces a to spill its 900
  EXPECT_EQ(a.spill_calls_, 1);
  EXPECT_EQ(a.reserved_bytes(), 500);
  mgr.Release(&a, a.reserved_bytes());
  mgr.UnregisterConsumer(&a);
}

TEST(MemoryManagerTest, OutOfMemoryWhenNothingSpillable) {
  MemoryManager mgr(100);
  FakeConsumer a("a", &mgr);
  mgr.RegisterConsumer(&a);
  Status st = a.Reserve(200);
  EXPECT_TRUE(st.IsOutOfMemory());
  mgr.UnregisterConsumer(&a);
}

TEST(MemoryManagerTest, FailsWhenVictimCannotFree) {
  MemoryManager mgr(100);
  FakeConsumer a("a", &mgr), b("b", &mgr);
  a.can_spill_ = false;
  mgr.RegisterConsumer(&a);
  mgr.RegisterConsumer(&b);
  ASSERT_TRUE(a.Reserve(90).ok());
  Status st = b.Reserve(50);
  EXPECT_TRUE(st.IsOutOfMemory());
  EXPECT_EQ(a.spill_calls_, 1);
  mgr.Release(&a, a.reserved_bytes());
  mgr.UnregisterConsumer(&a);
  mgr.UnregisterConsumer(&b);
}

TEST(MemoryManagerTest, SpillStatsTracked) {
  MemoryManager mgr(100);
  FakeConsumer a("a", &mgr), b("b", &mgr);
  mgr.RegisterConsumer(&a);
  mgr.RegisterConsumer(&b);
  ASSERT_TRUE(a.Reserve(80).ok());
  ASSERT_TRUE(b.Reserve(80).ok());
  EXPECT_EQ(mgr.spill_count(), 1);
  EXPECT_GT(mgr.spilled_bytes(), 0);
  mgr.Release(&b, b.reserved_bytes());
  mgr.UnregisterConsumer(&a);
  mgr.UnregisterConsumer(&b);
}

}  // namespace
}  // namespace photon
