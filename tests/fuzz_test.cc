#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/builder.h"
#include "expr/expr.h"
#include "vector/table.h"

namespace photon {
namespace {

/// Random expression/data fuzzing (§5.6's third testing layer): generate
/// random batches and random expression trees, evaluate them both
/// vectorized (Photon) and row-at-a-time (the baseline engine's
/// interpreter), and diff the results. Deterministic seeds so failures
/// reproduce.
class Fuzzer {
 public:
  explicit Fuzzer(uint64_t seed) : rng_(seed) {}

  Schema RandomSchema() {
    Schema schema;
    int n = static_cast<int>(rng_.Uniform(2, 5));
    for (int i = 0; i < n; i++) {
      DataType type;
      // Uniform() is inclusive, so 0..6 reaches every arm including the
      // default. The high-precision arms exist to push decimal arithmetic
      // into the precision-capped (overflow -> NULL) paths.
      switch (rng_.Uniform(0, 6)) {
        case 0:
          type = DataType::Int32();
          break;
        case 1:
          type = DataType::Int64();
          break;
        case 2:
          type = DataType::Float64();
          break;
        case 3:
          type = DataType::String();
          break;
        case 4:
          type = DataType::Decimal(20, 4);
          break;
        case 5:
          type = DataType::Decimal(38, 6);
          break;
        default:
          type = DataType::Decimal(12, 2);
          break;
      }
      schema.AddField(Field("c" + std::to_string(i), type));
    }
    return schema;
  }

  Value RandomValue(const DataType& type) {
    if (rng_.NextBool(0.15)) return Value::Null();
    switch (type.id()) {
      case TypeId::kInt32:
        return Value::Int32(static_cast<int32_t>(rng_.Uniform(-50, 50)));
      case TypeId::kInt64:
        return Value::Int64(rng_.Uniform(-1000, 1000));
      case TypeId::kFloat64:
        return Value::Float64((rng_.NextDouble() - 0.5) * 100);
      case TypeId::kString: {
        // Mix of ASCII and UTF-8 content.
        std::string s = rng_.NextAsciiString(
            static_cast<int>(rng_.Uniform(0, 12)));
        if (rng_.NextBool(0.2)) s += "\xC3\xA9";  // é
        return Value::String(std::move(s));
      }
      case TypeId::kDecimal128: {
        // Occasionally sit near the precision cap so arithmetic on
        // high-precision columns actually overflows (both engines must
        // agree on the resulting NULL).
        if (type.precision() >= 20 && rng_.NextBool(0.25)) {
          Decimal128 v(Decimal128::MaxValueForPrecision(type.precision()) -
                       rng_.Uniform(0, 1000));
          return Value::Decimal(rng_.NextBool() ? v : -v);
        }
        return Value::Decimal(
            Decimal128::FromInt64(rng_.Uniform(-100000, 100000)));
      }
      default:
        return Value::Null();
    }
  }

  std::vector<std::vector<Value>> RandomRows(const Schema& schema, int n) {
    std::vector<std::vector<Value>> rows;
    for (int i = 0; i < n; i++) {
      std::vector<Value> row;
      for (const Field& f : schema.fields()) {
        row.push_back(RandomValue(f.type));
      }
      rows.push_back(std::move(row));
    }
    return rows;
  }

  /// Random expression over the schema, depth-bounded.
  ExprPtr RandomExpr(const Schema& schema, int depth) {
    // Leaves.
    if (depth <= 0 || rng_.NextBool(0.3)) {
      if (rng_.NextBool(0.7)) {
        int c = static_cast<int>(
            rng_.Uniform(0, schema.num_fields() - 1));
        return eb::Col(c, schema.field(c).type);
      }
      switch (rng_.Uniform(0, 2)) {
        case 0:
          return eb::Lit(static_cast<int32_t>(rng_.Uniform(-20, 20)));
        case 1:
          return eb::Lit(rng_.NextDouble() * 10);
        default:
          return eb::Lit(rng_.NextAsciiString(3));
      }
    }
    // Combinators; regenerate until types line up.
    for (int attempt = 0; attempt < 20; attempt++) {
      ExprPtr a = RandomExpr(schema, depth - 1);
      ExprPtr b = RandomExpr(schema, depth - 1);
      bool a_num = a->type().id() != TypeId::kString &&
                   a->type().id() != TypeId::kBoolean;
      bool b_num = b->type().id() != TypeId::kString &&
                   b->type().id() != TypeId::kBoolean;
      switch (rng_.Uniform(0, 7)) {
        case 0:
          // Decimal included: overflow beyond the 38-digit cap must yield
          // NULL identically on both paths.
          if (a_num && b_num) return eb::Add(a, b);
          break;
        case 1:
          if (a_num && b_num) return eb::Mul(a, b);
          break;
        case 2:
          if (a->type().id() == b->type().id()) return eb::Lt(a, b);
          break;
        case 3:
          if (a->type().id() == b->type().id()) return eb::Eq(a, b);
          break;
        case 4:
          if (a->type().is_string()) return eb::Call("upper", {a});
          break;
        case 5:
          if (a->type().is_string()) return eb::Call("length", {a});
          break;
        case 6:
          if (a_num && b_num) return eb::Sub(a, b);
          break;
        case 7:
          return eb::IsNull(a);
      }
    }
    int c = static_cast<int>(rng_.Uniform(0, schema.num_fields() - 1));
    return eb::Col(c, schema.field(c).type);
  }

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

class ExprFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprFuzzTest, VectorizedMatchesRowInterpreter) {
  Fuzzer fuzz(GetParam());
  for (int round = 0; round < 40; round++) {
    Schema schema = fuzz.RandomSchema();
    auto rows = fuzz.RandomRows(schema, 64);
    ExprPtr expr = fuzz.RandomExpr(schema, 3);

    ColumnBatch batch(schema, 64);
    for (int i = 0; i < 64; i++) {
      for (int c = 0; c < schema.num_fields(); c++) {
        batch.column(c)->SetValue(i, rows[i][c]);
      }
    }
    batch.set_num_rows(64);
    // Random activity pattern.
    std::vector<int32_t> active;
    if (fuzz.rng().NextBool()) {
      for (int i = 0; i < 64; i++) {
        if (fuzz.rng().NextBool(0.6)) active.push_back(i);
      }
      if (active.empty()) active.push_back(0);
      std::memcpy(batch.mutable_pos_list(), active.data(),
                  active.size() * sizeof(int32_t));
      batch.SetActiveRows(static_cast<int>(active.size()));
    } else {
      batch.SetAllActive();
      for (int i = 0; i < 64; i++) active.push_back(i);
    }

    EvalContext ctx;
    Result<ColumnVector*> vec = expr->Evaluate(&batch, &ctx);
    ASSERT_TRUE(vec.ok()) << expr->ToString() << ": "
                          << vec.status().ToString();
    for (int32_t r : active) {
      Result<Value> oracle = expr->EvaluateRow(rows[r]);
      ASSERT_TRUE(oracle.ok());
      Value got = (*vec)->GetValue(r);
      ASSERT_TRUE(got.Equals(*oracle))
          << "seed " << GetParam() << " round " << round << " row " << r
          << "\nexpr: " << expr->ToString()
          << "\nvectorized: " << got.ToString()
          << "\noracle:     " << oracle->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace photon
