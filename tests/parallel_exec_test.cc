// Tests for morsel-parallel plan execution through the generalized Driver:
// result equivalence against single-task execution at 1/2/8 threads,
// memory-manager correctness under concurrent tasks (including spilling
// under pressure), and the stage-planner / morsel-queue building blocks.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/driver.h"
#include "exec/morsel.h"
#include "expr/builder.h"
#include "io/block_cache.h"
#include "memory/memory_manager.h"
#include "plan/logical_plan.h"
#include "plan/stage_planner.h"
#include "storage/delta.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace photon {
namespace {

std::vector<std::vector<Value>> Sorted(std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              for (size_t i = 0; i < a.size(); i++) {
                int c = (a[i].is_null() && b[i].is_null()) ? 0
                        : a[i].is_null()                   ? -1
                        : b[i].is_null()                   ? 1
                                         : a[i].Compare(b[i]);
                if (c != 0) return c < 0;
              }
              return false;
            });
  return rows;
}

/// (k, v, s): grouped key, unique value, low-cardinality string.
Table MakeTable(int rows, int batch_size, uint64_t seed = 7) {
  Schema schema({Field("k", DataType::Int64()), Field("v", DataType::Int64()),
                 Field("s", DataType::String())});
  TableBuilder builder(schema, batch_size);
  Rng rng(seed);
  for (int i = 0; i < rows; i++) {
    builder.AppendRow({Value::Int64(rng.Uniform(0, 99)), Value::Int64(i),
                       Value::String("s" + std::to_string(i % 37))});
  }
  return builder.Finish();
}

ExprPtr ColK() { return eb::Col(0, DataType::Int64(), "k"); }
ExprPtr ColV() { return eb::Col(1, DataType::Int64(), "v"); }
ExprPtr ColS() { return eb::Col(2, DataType::String(), "s"); }

/// Runs `plan` single-task and through parallel drivers at 1/2/8 threads;
/// asserts every parallel run matches the single-task row set and that all
/// parallel runs are bitwise-identical to each other (thread-count
/// independence, including row order).
void ExpectParallelMatchesSingle(const plan::PlanPtr& plan,
                                 ExecContext ctx = {}) {
  exec::Driver reference(1);
  Result<Table> single = reference.RunSingleTask(plan, ctx);
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  std::vector<std::vector<std::vector<Value>>> parallel_rows;
  for (int threads : {1, 2, 8}) {
    exec::Driver driver(threads);
    std::vector<exec::StageInfo> stages;
    Result<Table> out = driver.Run(plan, ctx, &stages);
    ASSERT_TRUE(out.ok()) << "threads=" << threads << ": "
                          << out.status().ToString();
    EXPECT_EQ(out->num_rows(), single->num_rows()) << "threads=" << threads;
    EXPECT_EQ(Sorted(out->ToRows()), Sorted(single->ToRows()))
        << "threads=" << threads;
    ASSERT_FALSE(stages.empty());
    for (const exec::StageInfo& s : stages) EXPECT_GE(s.num_tasks, 1);
    parallel_rows.push_back(out->ToRows());
  }
  // Morsel decomposition is input-derived, so thread count must not change
  // anything — not even row order.
  EXPECT_EQ(parallel_rows[0], parallel_rows[1]);
  EXPECT_EQ(parallel_rows[0], parallel_rows[2]);
}

// --- Building blocks --------------------------------------------------------

TEST(MorselTest, SplitIsInputDerived) {
  std::vector<exec::Morsel> m = exec::SplitMorsels(20, 8);
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(m[0].begin, 0);
  EXPECT_EQ(m[0].end, 8);
  EXPECT_EQ(m[2].begin, 16);
  EXPECT_EQ(m[2].end, 20);
  // Empty input still yields one (empty) morsel: stages always run a task.
  m = exec::SplitMorsels(0, 8);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].begin, m[0].end);
}

TEST(MorselTest, QueueHandsOutEachMorselExactlyOnce) {
  exec::MorselQueue queue(1000);
  std::vector<std::atomic<int>> claimed(1000);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&] {
      for (int m = queue.Next(); m >= 0; m = queue.Next()) {
        claimed[m].fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 1000; i++) EXPECT_EQ(claimed[i].load(), 1) << i;
}

TEST(StagePlannerTest, BreakerKinds) {
  EXPECT_TRUE(plan::IsPipelineBreaker(plan::PlanKind::kAggregate));
  EXPECT_TRUE(plan::IsPipelineBreaker(plan::PlanKind::kSort));
  EXPECT_TRUE(plan::IsPipelineBreaker(plan::PlanKind::kLimit));
  EXPECT_FALSE(plan::IsPipelineBreaker(plan::PlanKind::kScan));
  EXPECT_FALSE(plan::IsPipelineBreaker(plan::PlanKind::kFilter));
  EXPECT_FALSE(plan::IsPipelineBreaker(plan::PlanKind::kJoin));
}

TEST(StagePlannerTest, CutsThroughProbeSideAndStopsAtBreakers) {
  Table probe = MakeTable(100, 32);
  Table build = MakeTable(10, 32);
  plan::PlanPtr p = plan::Filter(
      plan::Join(plan::Filter(plan::Scan(&probe),
                              eb::Gt(ColV(), eb::Lit(int64_t{10}))),
                 plan::Scan(&build), JoinType::kInner, {ColK()}, {ColK()}),
      eb::Gt(eb::Col(1, DataType::Int64(), "v"), eb::Lit(int64_t{20})));
  plan::FragmentCut cut = plan::CutFragment(p);
  // Root-first chain: Filter, Join, Filter; leaf is the probe-side scan.
  ASSERT_EQ(cut.nodes.size(), 3u);
  EXPECT_EQ(cut.nodes[0]->kind, plan::PlanKind::kFilter);
  EXPECT_EQ(cut.nodes[1]->kind, plan::PlanKind::kJoin);
  EXPECT_EQ(cut.nodes[2]->kind, plan::PlanKind::kFilter);
  EXPECT_EQ(cut.leaf_kind, plan::FragmentLeaf::kTable);
  EXPECT_EQ(cut.leaf->table, &probe);

  // An aggregate below a filter becomes a staged input, not chain interior.
  plan::PlanPtr agg = plan::Aggregate(
      plan::Scan(&probe), {ColK()}, {"k"},
      {AggregateSpec{AggKind::kSum, ColV(), "sv"}});
  plan::PlanPtr above = plan::Filter(
      agg, eb::Gt(eb::Col(1, DataType::Int64(), "sv"), eb::Lit(int64_t{0})));
  cut = plan::CutFragment(above);
  ASSERT_EQ(cut.nodes.size(), 1u);
  EXPECT_EQ(cut.leaf_kind, plan::FragmentLeaf::kStage);
  EXPECT_EQ(cut.leaf.get(), agg.get());
}

// --- Equivalence: parallel vs single-task -----------------------------------

TEST(ParallelEquivalenceTest, GroupedAggregate) {
  Table t = MakeTable(20000, 256);  // 79 batches -> 10 morsels
  plan::PlanPtr p = plan::Aggregate(
      plan::Filter(plan::Scan(&t), eb::Gt(ColV(), eb::Lit(int64_t{1000}))),
      {ColK()}, {"k"},
      {AggregateSpec{AggKind::kSum, ColV(), "sv"},
       AggregateSpec{AggKind::kCountStar, nullptr, "n"},
       AggregateSpec{AggKind::kAvg, ColV(), "av"},
       AggregateSpec{AggKind::kMin, ColS(), "smin"},
       AggregateSpec{AggKind::kMax, ColS(), "smax"}});
  ExpectParallelMatchesSingle(p);
}

TEST(ParallelEquivalenceTest, ScalarAggregate) {
  Table t = MakeTable(20000, 256);
  plan::PlanPtr p = plan::Aggregate(
      plan::Scan(&t), {}, {},
      {AggregateSpec{AggKind::kCountStar, nullptr, "n"},
       AggregateSpec{AggKind::kSum, ColV(), "sv"},
       AggregateSpec{AggKind::kAvg, ColV(), "av"}});
  ExpectParallelMatchesSingle(p);
}

TEST(ParallelEquivalenceTest, ScalarAggregateOverEmptyInput) {
  Table t = MakeTable(1000, 256);
  // Nothing survives the filter; count must still be one row of 0.
  plan::PlanPtr p = plan::Aggregate(
      plan::Filter(plan::Scan(&t), eb::Gt(ColV(), eb::Lit(int64_t{1 << 30}))),
      {}, {}, {AggregateSpec{AggKind::kCountStar, nullptr, "n"}});
  exec::Driver driver(4);
  Result<Table> out = driver.Run(p);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->num_rows(), 1);
  EXPECT_EQ(out->GetRow(0)[0], Value::Int64(0));
}

TEST(ParallelEquivalenceTest, HashJoinSharedBuild) {
  Table probe = MakeTable(20000, 256, 7);
  Table build = MakeTable(500, 64, 11);
  plan::PlanPtr p = plan::Join(
      plan::Filter(plan::Scan(&probe), eb::Gt(ColV(), eb::Lit(int64_t{50}))),
      plan::Filter(plan::Scan(&build), eb::Lt(ColV(), eb::Lit(int64_t{400}))),
      JoinType::kInner, {ColK()}, {ColK()});
  ExpectParallelMatchesSingle(p);
}

TEST(ParallelEquivalenceTest, LeftOuterAndSemiJoins) {
  Table probe = MakeTable(8000, 128, 3);
  Table build = MakeTable(300, 64, 5);
  // Build keys cover only part of the probe key domain.
  plan::PlanPtr build_side =
      plan::Filter(plan::Scan(&build), eb::Lt(ColK(), eb::Lit(int64_t{40})));
  for (JoinType jt :
       {JoinType::kLeftOuter, JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    plan::PlanPtr p = plan::Join(plan::Scan(&probe), build_side, jt, {ColK()},
                                 {ColK()});
    ExpectParallelMatchesSingle(p);
  }
}

TEST(ParallelEquivalenceTest, SortedRunsMerge) {
  Table t = MakeTable(20000, 256);
  std::vector<SortKey> keys;
  keys.push_back(SortKey{ColK(), true, true});
  keys.push_back(SortKey{ColV(), false, true});  // v unique -> total order
  plan::PlanPtr p = plan::Sort(
      plan::Filter(plan::Scan(&t), eb::Gt(ColV(), eb::Lit(int64_t{100}))),
      keys);
  ExpectParallelMatchesSingle(p);

  // The merged output must actually be ordered.
  exec::Driver driver(8);
  Result<Table> out = driver.Run(p);
  ASSERT_TRUE(out.ok());
  std::vector<std::vector<Value>> rows = out->ToRows();
  for (size_t i = 1; i < rows.size(); i++) {
    int64_t k0 = rows[i - 1][0].i64(), k1 = rows[i][0].i64();
    ASSERT_LE(k0, k1) << "row " << i;
    if (k0 == k1) {
      ASSERT_GE(rows[i - 1][1].i64(), rows[i][1].i64());
    }
  }
}

TEST(ParallelEquivalenceTest, LimitOverSort) {
  Table t = MakeTable(20000, 256);
  std::vector<SortKey> keys;
  keys.push_back(SortKey{ColV(), false, true});  // unique key: stable prefix
  plan::PlanPtr p = plan::Limit(plan::Sort(plan::Scan(&t), keys), 100);
  exec::Driver reference(1);
  Result<Table> single = reference.RunSingleTask(p);
  ASSERT_TRUE(single.ok());
  for (int threads : {1, 2, 8}) {
    exec::Driver driver(threads);
    Result<Table> out = driver.Run(p);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->num_rows(), 100);
    EXPECT_EQ(out->ToRows(), single->ToRows()) << "threads=" << threads;
  }
}

TEST(ParallelEquivalenceTest, DeltaScanWithDataSkipping) {
  Schema schema(
      {Field("id", DataType::Int64()), Field("v", DataType::Int64())});
  ObjectStore store;
  Result<std::unique_ptr<DeltaTable>> dt =
      DeltaTable::Create(&store, "dl/t", schema);
  ASSERT_TRUE(dt.ok());
  Rng rng(13);
  for (int f = 0; f < 6; f++) {
    TableBuilder builder(schema, 512);
    for (int i = 0; i < 2000; i++) {
      builder.AppendRow({Value::Int64(f * 2000 + i),
                         Value::Int64(rng.Uniform(0, 999))});
    }
    FormatWriteOptions options;
    options.row_group_rows = 500;
    ASSERT_TRUE((*dt)->Append(builder.Finish(), options).ok());
  }
  Result<DeltaSnapshot> snap = (*dt)->Snapshot();
  ASSERT_TRUE(snap.ok());

  ThreadPool scan_pool(2);
  io::BlockCache cache;
  io::IoOptions io;
  io.cache = &cache;
  io.prefetch_pool = &scan_pool;  // driver reroutes to its own IO pool
  ExprPtr pred = eb::Between(eb::Col(0, DataType::Int64(), "id"),
                             eb::Lit(int64_t{3000}), eb::Lit(int64_t{8999}));
  plan::PlanPtr p = plan::Aggregate(
      plan::DeltaScan(&store, *snap, {}, pred, io), {}, {},
      {AggregateSpec{AggKind::kCountStar, nullptr, "n"},
       AggregateSpec{AggKind::kSum, eb::Col(1, DataType::Int64(), "v"),
                     "sv"}});
  ExpectParallelMatchesSingle(p);

  // File pruning + row-group skipping survive the parallel path: only the
  // 4 overlapping files are read, and the non-overlapping row groups of
  // the two boundary files are skipped.
  exec::Driver driver(4);
  std::vector<exec::StageInfo> stages;
  Result<Table> out = driver.Run(p, {}, &stages);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetRow(0)[0], Value::Int64(6000));
  int64_t files_read = 0, row_groups_skipped = 0;
  for (const exec::StageInfo& s : stages) {
    files_read += s.files_read();
    row_groups_skipped += s.row_groups_skipped();
  }
  EXPECT_EQ(files_read, 4);
  EXPECT_EQ(row_groups_skipped, 4);
}

/// Every TPC-H query at 1/2/8 threads must reproduce the single-task
/// result — the acceptance bar for the morsel-parallel driver.
class TpchParallelTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchParallelTest, MatchesSingleTask) {
  constexpr double kScale = 0.002;
  static const tpch::TpchData* data =
      new tpch::TpchData(tpch::GenerateTpch(kScale));
  int q = GetParam();
  Result<plan::PlanPtr> p = tpch::TpchQuery(q, *data, kScale);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  ExpectParallelMatchesSingle(*p);
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchParallelTest,
                         ::testing::Range(1, 23));

// --- Memory manager under concurrent tasks ----------------------------------

TEST(ParallelMemoryTest, ConcurrentAggregateSpillsUnderPressure) {
  Table t = MakeTable(60000, 512);
  plan::PlanPtr p = plan::Aggregate(
      plan::Scan(&t), {ColV()}, {"v"},  // v unique: 60k groups, real memory
      {AggregateSpec{AggKind::kSum, ColK(), "sk"},
       AggregateSpec{AggKind::kMax, ColS(), "smax"}});

  exec::Driver reference(1);
  Result<Table> unlimited = reference.RunSingleTask(p);
  ASSERT_TRUE(unlimited.ok());

  // Below a single morsel task's working set (~4k unique groups), so
  // spilling is forced regardless of how tasks overlap in time.
  MemoryManager mm(192 * 1024);
  ExecContext ctx;
  ctx.memory_manager = &mm;
  ctx.spill_prefix = "ptest/agg-pressure";
  exec::Driver driver(4);
  Result<Table> out = driver.Run(p, ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_rows(), unlimited->num_rows());
  EXPECT_EQ(Sorted(out->ToRows()), Sorted(unlimited->ToRows()));
  // The limit actually forced spilling, and every task released what it
  // reserved (no leaked reservations once the query is done).
  EXPECT_GT(mm.spill_count(), 0);
  EXPECT_EQ(mm.reserved(), 0);
}

TEST(ParallelMemoryTest, ConcurrentSortSpillsUnderPressure) {
  Table t = MakeTable(60000, 512);
  std::vector<SortKey> keys;
  keys.push_back(SortKey{ColV(), true, true});
  plan::PlanPtr p = plan::Sort(plan::Scan(&t), keys);

  exec::Driver reference(1);
  Result<Table> unlimited = reference.RunSingleTask(p);
  ASSERT_TRUE(unlimited.ok());

  // Below a single morsel task's materialized input, so every task spills
  // at least one run no matter the overlap.
  MemoryManager mm(128 * 1024);
  ExecContext ctx;
  ctx.memory_manager = &mm;
  ctx.spill_prefix = "ptest/sort-pressure";
  exec::Driver driver(4);
  Result<Table> out = driver.Run(p, ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_rows(), unlimited->num_rows());
  EXPECT_EQ(Sorted(out->ToRows()), Sorted(unlimited->ToRows()));
  EXPECT_GT(mm.spill_count(), 0);
  EXPECT_EQ(mm.reserved(), 0);
}

TEST(ParallelMemoryTest, TaskGroupsIsolateSpillVictims) {
  // Two consumers in different task groups: pressure from group 1 must
  // spill group-1 consumers (or spill-safe ones), never group 2's.
  MemoryManager mm(1000);

  class Recorder : public MemoryConsumer {
   public:
    Recorder(std::string name, MemoryManager* mm)
        : MemoryConsumer(std::move(name)), mm_(mm) {}
    int64_t Spill(int64_t) override {
      spilled = true;
      int64_t r = held;
      held = 0;
      mm_->Release(this, r);
      return r;
    }
    bool spilled = false;
    int64_t held = 0;

   private:
    MemoryManager* mm_;
  };

  Recorder own("own", &mm);
  own.set_task_group(1);
  Recorder other("other", &mm);
  other.set_task_group(2);
  mm.RegisterConsumer(&own);
  mm.RegisterConsumer(&other);
  ASSERT_TRUE(mm.Reserve(&own, 400).ok());
  own.held = 400;
  ASSERT_TRUE(mm.Reserve(&other, 400).ok());
  other.held = 400;

  Recorder requester("req", &mm);
  requester.set_task_group(1);
  mm.RegisterConsumer(&requester);
  // 200 free; needs 400 more -> must evict `own` (same group), not `other`.
  ASSERT_TRUE(mm.Reserve(&requester, 600).ok());
  EXPECT_TRUE(own.spilled);
  EXPECT_FALSE(other.spilled);

  mm.Release(&requester, 600);
  mm.Release(&other, 400);
  mm.UnregisterConsumer(&own);
  mm.UnregisterConsumer(&other);
  mm.UnregisterConsumer(&requester);
}

}  // namespace
}  // namespace photon
