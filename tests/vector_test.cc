#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/buffer_pool.h"
#include "vector/column_batch.h"
#include "vector/table.h"
#include "vector/vector_serde.h"

namespace photon {
namespace {

Schema TestSchema() {
  return Schema({Field("i", DataType::Int32()),
                 Field("s", DataType::String()),
                 Field("d", DataType::Float64())});
}

TEST(ColumnVectorTest, NullBytes) {
  ColumnVector v(DataType::Int32(), 8);
  EXPECT_FALSE(v.IsNull(0));
  v.SetNull(3);
  EXPECT_TRUE(v.IsNull(3));
  EXPECT_EQ(v.has_nulls(), TriState::kYes);
  v.SetNotNull(3);
  EXPECT_FALSE(v.IsNull(3));
}

TEST(ColumnVectorTest, ComputeHasNullsCachesResult) {
  ColumnVector v(DataType::Int32(), 8);
  for (int i = 0; i < 8; i++) v.data<int32_t>()[i] = i;
  EXPECT_FALSE(v.ComputeHasNulls(nullptr, 8, true));
  EXPECT_EQ(v.has_nulls(), TriState::kNo);
  // Cached: direct null write without metadata invalidation is not seen
  // (producers must reset metadata when mutating).
  v.nulls()[2] = 1;
  EXPECT_FALSE(v.ComputeHasNulls(nullptr, 8, true));
  v.ResetMetadata();
  EXPECT_TRUE(v.ComputeHasNulls(nullptr, 8, true));
}

TEST(ColumnVectorTest, ComputeHasNullsRespectsPositionList) {
  ColumnVector v(DataType::Int32(), 8);
  v.nulls()[5] = 1;
  int32_t pos[] = {0, 1, 2};
  EXPECT_FALSE(v.ComputeHasNulls(pos, 3, false));
  v.ResetMetadata();
  int32_t pos2[] = {0, 5};
  EXPECT_TRUE(v.ComputeHasNulls(pos2, 2, false));
}

TEST(ColumnVectorTest, AsciiMetadata) {
  ColumnVector v(DataType::String(), 4);
  v.SetString(0, "hello");
  v.SetString(1, "world");
  EXPECT_TRUE(v.ComputeAllAscii(nullptr, 2, true));
  v.ResetMetadata();
  v.SetString(2, "h\xC3\xA9llo");  // é
  EXPECT_FALSE(v.ComputeAllAscii(nullptr, 3, true));
}

TEST(ColumnBatchTest, PositionListFiltering) {
  ColumnBatch batch(TestSchema(), 8);
  for (int i = 0; i < 8; i++) {
    batch.column(0)->data<int32_t>()[i] = i;
    batch.column(1)->SetString(i, "row" + std::to_string(i));
    batch.column(2)->data<double>()[i] = i * 1.5;
  }
  batch.set_num_rows(8);
  batch.SetAllActive();
  EXPECT_EQ(batch.num_active(), 8);
  EXPECT_TRUE(batch.all_active());

  int32_t* pos = batch.mutable_pos_list();
  pos[0] = 1;
  pos[1] = 4;
  pos[2] = 7;
  batch.SetActiveRows(3);
  EXPECT_EQ(batch.num_active(), 3);
  EXPECT_EQ(batch.ActiveRow(0), 1);
  EXPECT_EQ(batch.ActiveRow(2), 7);
  EXPECT_DOUBLE_EQ(batch.Sparsity(), 3.0 / 8.0);
}

TEST(ColumnBatchTest, CompactBatchPreservesActiveRowsOnly) {
  ColumnBatch batch(TestSchema(), 8);
  for (int i = 0; i < 8; i++) {
    batch.column(0)->data<int32_t>()[i] = i * 10;
    batch.column(1)->SetString(i, "v" + std::to_string(i));
    batch.column(2)->data<double>()[i] = i;
  }
  batch.column(0)->SetNull(4);
  batch.set_num_rows(8);
  int32_t* pos = batch.mutable_pos_list();
  pos[0] = 2;
  pos[1] = 4;
  pos[2] = 6;
  batch.SetActiveRows(3);

  std::unique_ptr<ColumnBatch> dense = CompactBatch(batch);
  EXPECT_EQ(dense->num_rows(), 3);
  EXPECT_TRUE(dense->all_active());
  EXPECT_EQ(dense->column(0)->data<int32_t>()[0], 20);
  EXPECT_TRUE(dense->column(0)->IsNull(1));
  EXPECT_EQ(dense->column(0)->data<int32_t>()[2], 60);
  EXPECT_EQ(dense->column(1)->GetString(0).ToString(), "v2");
  EXPECT_EQ(dense->column(1)->GetString(2).ToString(), "v6");
}

TEST(BufferPoolTest, ReusesMostRecentlyReleased) {
  BufferPool pool;
  Buffer a = pool.Allocate(1000);
  uint8_t* a_ptr = a.data();
  pool.Release(std::move(a));
  Buffer b = pool.Allocate(1000);
  EXPECT_EQ(b.data(), a_ptr);  // MRU reuse
  EXPECT_EQ(pool.hits(), 1);
  EXPECT_EQ(pool.misses(), 1);
}

TEST(BufferPoolTest, SizeClassesDoNotMix) {
  BufferPool pool;
  Buffer small = pool.Allocate(100);
  pool.Release(std::move(small));
  Buffer big = pool.Allocate(100000);
  EXPECT_GE(big.capacity(), 100000u);
  EXPECT_EQ(pool.misses(), 2);
}

TEST(BufferPoolTest, TrimsOverCap) {
  BufferPool pool;
  pool.set_max_cached_bytes(4096);
  for (int i = 0; i < 10; i++) {
    pool.Release(Buffer(4096));
  }
  EXPECT_LE(pool.cached_bytes(), 4096u);
}

TEST(TableBuilderTest, BuildsBatches) {
  TableBuilder builder(TestSchema(), /*batch_size=*/4);
  for (int i = 0; i < 10; i++) {
    builder.AppendRow({Value::Int32(i), Value::String("s" + std::to_string(i)),
                       i % 3 == 0 ? Value::Null() : Value::Float64(i * 0.5)});
  }
  Table t = builder.Finish();
  EXPECT_EQ(t.num_rows(), 10);
  EXPECT_EQ(t.num_batches(), 3);  // 4 + 4 + 2
  std::vector<Value> row = t.GetRow(5);
  EXPECT_EQ(row[0], Value::Int32(5));
  EXPECT_EQ(row[1], Value::String("s5"));
  row = t.GetRow(6);
  EXPECT_TRUE(row[2].is_null());
}

// --- Serde -----------------------------------------------------------------

TEST(SerdeTest, RoundTripAllTypes) {
  Schema schema({Field("b", DataType::Boolean()),
                 Field("i32", DataType::Int32()),
                 Field("i64", DataType::Int64()),
                 Field("f", DataType::Float64()),
                 Field("s", DataType::String()),
                 Field("dec", DataType::Decimal(12, 2)),
                 Field("d", DataType::Date32())});
  TableBuilder builder(schema, 16);
  Rng rng(7);
  for (int i = 0; i < 16; i++) {
    Decimal128 dec;
    Decimal128::FromString(std::to_string(i) + ".25", 2, &dec);
    builder.AppendRow(
        {i % 4 == 0 ? Value::Null() : Value::Boolean(i % 2 == 0),
         Value::Int32(i * 7), Value::Int64(i * 1000000007LL),
         Value::Float64(i * 0.125), Value::String(rng.NextAsciiString(i)),
         Value::Decimal(dec), Value::Date32(19000 + i)});
  }
  Table t = builder.Finish();

  BinaryWriter writer;
  SerializeBatch(t.batch(0), {}, &writer);
  BinaryReader reader(writer.data().data(), writer.size());
  Result<std::unique_ptr<ColumnBatch>> result =
      DeserializeBatch(schema, &reader);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ColumnBatch& round = **result;
  ASSERT_EQ(round.num_rows(), 16);
  for (int i = 0; i < 16; i++) {
    for (int c = 0; c < schema.num_fields(); c++) {
      EXPECT_TRUE(t.batch(0).column(c)->GetValue(i).Equals(
          round.column(c)->GetValue(i)))
          << "row " << i << " col " << c;
    }
  }
}

TEST(SerdeTest, SerializesOnlyActiveRows) {
  Schema schema({Field("i", DataType::Int32())});
  ColumnBatch batch(schema, 8);
  for (int i = 0; i < 8; i++) batch.column(0)->data<int32_t>()[i] = i;
  batch.set_num_rows(8);
  int32_t* pos = batch.mutable_pos_list();
  pos[0] = 1;
  pos[1] = 6;
  batch.SetActiveRows(2);

  BinaryWriter writer;
  SerializeBatch(batch, {}, &writer);
  BinaryReader reader(writer.data().data(), writer.size());
  auto result = DeserializeBatch(schema, &reader);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->num_rows(), 2);
  EXPECT_EQ((*result)->column(0)->data<int32_t>()[0], 1);
  EXPECT_EQ((*result)->column(0)->data<int32_t>()[1], 6);
}

TEST(SerdeTest, UuidDetectionAndRoundTrip) {
  Schema schema({Field("u", DataType::String())});
  ColumnBatch batch(schema, 4);
  batch.column(0)->SetString(0, "123e4567-e89b-12d3-a456-426614174000");
  batch.column(0)->SetString(1, "00000000-0000-0000-0000-000000000000");
  batch.column(0)->SetNull(2);
  batch.column(0)->SetString(3, "FFFFFFFF-FFFF-FFFF-FFFF-FFFFFFFFFFFF");
  batch.set_num_rows(4);
  batch.SetAllActive();

  EXPECT_TRUE(DetectUuidColumn(batch, 0));
  std::vector<ColumnEncoding> encodings = ChooseAdaptiveEncodings(batch);
  EXPECT_EQ(encodings[0], ColumnEncoding::kUuid128);

  BinaryWriter writer;
  SerializeBatch(batch, encodings, &writer);
  BinaryReader reader(writer.data().data(), writer.size());
  auto result = DeserializeBatch(schema, &reader);
  ASSERT_TRUE(result.ok());
  // UUIDs come back canonicalized to lowercase.
  EXPECT_EQ((*result)->column(0)->GetString(0).ToString(),
            "123e4567-e89b-12d3-a456-426614174000");
  EXPECT_TRUE((*result)->column(0)->IsNull(2));
  EXPECT_EQ((*result)->column(0)->GetString(3).ToString(),
            "ffffffff-ffff-ffff-ffff-ffffffffffff");
}

TEST(SerdeTest, UuidEncodingShrinksData) {
  Schema schema({Field("u", DataType::String())});
  ColumnBatch batch(schema, 1024);
  Rng rng(3);
  for (int i = 0; i < 1024; i++) {
    uint8_t bin[16];
    for (int b = 0; b < 16; b++) bin[b] = static_cast<uint8_t>(rng.Next());
    char text[36];
    FormatUuid(bin, text);
    batch.column(0)->SetString(i, text, 36);
  }
  batch.set_num_rows(1024);
  batch.SetAllActive();

  BinaryWriter plain, adaptive;
  SerializeBatch(batch, {}, &plain);
  SerializeBatch(batch, ChooseAdaptiveEncodings(batch), &adaptive);
  // 36+1 bytes/row plain vs 16 bytes/row encoded: expect > 2x reduction.
  EXPECT_LT(adaptive.size() * 2, plain.size());
}

TEST(SerdeTest, IntStringEncoding) {
  Schema schema({Field("n", DataType::String())});
  ColumnBatch batch(schema, 4);
  batch.column(0)->SetString(0, "12345");
  batch.column(0)->SetString(1, "-99");
  batch.column(0)->SetString(2, "0");
  batch.column(0)->SetString(3, "9223372036854775807");
  batch.set_num_rows(4);
  batch.SetAllActive();

  EXPECT_FALSE(DetectUuidColumn(batch, 0));
  EXPECT_TRUE(DetectIntStringColumn(batch, 0));
  std::vector<ColumnEncoding> encodings = ChooseAdaptiveEncodings(batch);
  EXPECT_EQ(encodings[0], ColumnEncoding::kIntString);

  BinaryWriter writer;
  SerializeBatch(batch, encodings, &writer);
  BinaryReader reader(writer.data().data(), writer.size());
  auto result = DeserializeBatch(schema, &reader);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)->column(0)->GetString(0).ToString(), "12345");
  EXPECT_EQ((*result)->column(0)->GetString(1).ToString(), "-99");
  EXPECT_EQ((*result)->column(0)->GetString(3).ToString(),
            "9223372036854775807");
}

TEST(SerdeTest, NonUuidStringsStayPlain) {
  Schema schema({Field("s", DataType::String())});
  ColumnBatch batch(schema, 2);
  batch.column(0)->SetString(0, "123e4567-e89b-12d3-a456-426614174000");
  batch.column(0)->SetString(1, "not-a-uuid");
  batch.set_num_rows(2);
  batch.SetAllActive();
  EXPECT_FALSE(DetectUuidColumn(batch, 0));
  EXPECT_EQ(ChooseAdaptiveEncodings(batch)[0], ColumnEncoding::kPlain);
}

}  // namespace
}  // namespace photon
