// Tests for the multi-tenant query service (src/service/): fair
// cross-query task scheduling, FIFO-with-priority admission control,
// cooperative cancellation and deadlines, and resource cleanup —
// cancelled or failed sessions must leak no memory reservations, no
// spill artifacts, and no cache pins. Run under TSan (see ROADMAP.md):
// every concurrent path here is exercised with real thread interleaving.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/macros.h"
#include "common/rng.h"
#include "exec/driver.h"
#include "exec/task_scheduler.h"
#include "expr/builder.h"
#include "io/block_cache.h"
#include "memory/memory_manager.h"
#include "plan/logical_plan.h"
#include "service/admission.h"
#include "service/query_service.h"
#include "storage/delta.h"
#include "storage/object_store.h"

namespace photon {
namespace {

using service::AdmissionController;
using service::AdmissionOptions;
using service::QueryService;
using service::QuerySession;
using service::ServiceOptions;
using service::SessionOptions;
using service::SessionState;

/// (k, v, s): grouped key, unique value, low-cardinality string.
Table MakeTable(int rows, int batch_size, uint64_t seed = 7) {
  Schema schema({Field("k", DataType::Int64()), Field("v", DataType::Int64()),
                 Field("s", DataType::String())});
  TableBuilder builder(schema, batch_size);
  Rng rng(seed);
  for (int i = 0; i < rows; i++) {
    builder.AppendRow({Value::Int64(rng.Uniform(0, 99)), Value::Int64(i),
                       Value::String("s" + std::to_string(i % 37))});
  }
  return builder.Finish();
}

ExprPtr ColK() { return eb::Col(0, DataType::Int64(), "k"); }
ExprPtr ColV() { return eb::Col(1, DataType::Int64(), "v"); }

std::vector<std::vector<Value>> Sorted(std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              for (size_t i = 0; i < a.size(); i++) {
                int c = (a[i].is_null() && b[i].is_null()) ? 0
                        : a[i].is_null()                   ? -1
                        : b[i].is_null()                   ? 1
                                         : a[i].Compare(b[i]);
                if (c != 0) return c < 0;
              }
              return false;
            });
  return rows;
}

// --- TaskScheduler ----------------------------------------------------------

TEST(TaskSchedulerTest, RoundRobinAcrossQueries) {
  // One worker so execution order is exactly claim order. A blocker task
  // holds the worker while both queries' backlogs are enqueued; the claim
  // order afterwards must alternate between the queries even though q1
  // enqueued its whole backlog first.
  exec::TaskScheduler sched(1);
  int64_t q1 = sched.RegisterQuery();
  int64_t q2 = sched.RegisterQuery();

  std::mutex mu;
  std::vector<std::string> order;
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto record = [&](const char* tag) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(tag);
  };

  std::vector<std::future<void>> futures;
  futures.push_back(sched.Submit(q1, [&, opened] {
    opened.wait();
    record("q1.a");
  }));
  futures.push_back(sched.Submit(q1, [&] { record("q1.b"); }));
  futures.push_back(sched.Submit(q1, [&] { record("q1.c"); }));
  futures.push_back(sched.Submit(q2, [&] { record("q2.a"); }));
  futures.push_back(sched.Submit(q2, [&] { record("q2.b"); }));
  gate.set_value();
  for (auto& f : futures) f.get();

  // After q1.a the cursor moves past q1, so q2 gets every other slot
  // despite its later enqueue: no starvation behind q1's backlog.
  std::vector<std::string> expected = {"q1.a", "q2.a", "q1.b", "q2.b",
                                       "q1.c"};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(sched.tasks_executed(), 5);

  sched.UnregisterQuery(q1);
  sched.UnregisterQuery(q2);
}

TEST(TaskSchedulerTest, ManyQueriesManyWorkers) {
  exec::TaskScheduler sched(4);
  constexpr int kQueries = 6;
  constexpr int kTasksPer = 50;
  std::vector<int64_t> ids;
  for (int q = 0; q < kQueries; q++) ids.push_back(sched.RegisterQuery());

  std::atomic<int64_t> sum{0};
  std::vector<std::future<void>> futures;
  for (int q = 0; q < kQueries; q++) {
    for (int t = 0; t < kTasksPer; t++) {
      futures.push_back(sched.Submit(
          ids[q], [&sum, q, t] { sum.fetch_add(q * 1000 + t); }));
    }
  }
  for (auto& f : futures) f.get();
  int64_t expected = 0;
  for (int q = 0; q < kQueries; q++) {
    for (int t = 0; t < kTasksPer; t++) expected += q * 1000 + t;
  }
  EXPECT_EQ(sum.load(), expected);
  for (int64_t id : ids) sched.UnregisterQuery(id);
}

// --- AdmissionController ----------------------------------------------------

TEST(AdmissionTest, OversizeRejectedImmediately) {
  AdmissionOptions opts;
  opts.max_running = 2;
  opts.memory_budget_bytes = 100;
  AdmissionController adm(opts);
  Status s = adm.Admit(101, 0, nullptr);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(adm.rejected_total(), 1);
  EXPECT_EQ(adm.queued(), 0);
}

TEST(AdmissionTest, MemoryCapQueuesSecondQuery) {
  AdmissionOptions opts;
  opts.max_running = 8;  // memory, not slots, is the binding constraint
  opts.memory_budget_bytes = 100;
  AdmissionController adm(opts);
  ASSERT_TRUE(adm.Admit(60, 0, nullptr).ok());

  std::atomic<bool> second_in{false};
  std::thread t([&] {
    ASSERT_TRUE(adm.Admit(60, 0, nullptr).ok());
    second_in.store(true);
    adm.Release(60);
  });
  while (adm.queued() == 0) std::this_thread::yield();
  EXPECT_FALSE(second_in.load());
  EXPECT_EQ(adm.running(), 1);
  adm.Release(60);
  t.join();
  EXPECT_TRUE(second_in.load());
  EXPECT_EQ(adm.running(), 0);
  EXPECT_EQ(adm.reserved_bytes(), 0);
  EXPECT_GE(adm.waited_total(), 1);
}

TEST(AdmissionTest, PriorityOrdersQueueFifoWithinBand) {
  AdmissionOptions opts;
  opts.max_running = 1;
  opts.memory_budget_bytes = 1000;
  AdmissionController adm(opts);
  ASSERT_TRUE(adm.Admit(10, 0, nullptr).ok());  // occupy the only slot

  std::mutex mu;
  std::vector<std::string> admit_order;
  auto admit_and_hold = [&](const char* tag, int priority) {
    ASSERT_TRUE(adm.Admit(10, priority, nullptr).ok());
    {
      std::lock_guard<std::mutex> lock(mu);
      admit_order.push_back(tag);
    }
    adm.Release(10);
  };

  // Queue low-priority first, then high, then another low; admit order
  // must be high, low1, low2 (priority first, FIFO within a band).
  std::thread low1([&] { admit_and_hold("low1", 0); });
  while (adm.queued() < 1) std::this_thread::yield();
  std::thread high([&] { admit_and_hold("high", 5); });
  while (adm.queued() < 2) std::this_thread::yield();
  std::thread low2([&] { admit_and_hold("low2", 0); });
  while (adm.queued() < 3) std::this_thread::yield();

  adm.Release(10);  // free the slot; the queue drains one at a time
  low1.join();
  high.join();
  low2.join();
  std::vector<std::string> expected = {"high", "low1", "low2"};
  EXPECT_EQ(admit_order, expected);
  EXPECT_EQ(adm.admitted_total(), 4);
}

TEST(AdmissionTest, CancelWhileQueued) {
  AdmissionOptions opts;
  opts.max_running = 1;
  opts.memory_budget_bytes = 1000;
  AdmissionController adm(opts);
  ASSERT_TRUE(adm.Admit(10, 0, nullptr).ok());

  QueryControl control;
  std::thread t([&] {
    Status s = adm.Admit(10, 0, &control);
    EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  });
  while (adm.queued() == 0) std::this_thread::yield();
  control.Cancel();
  t.join();
  EXPECT_EQ(adm.queued(), 0);  // cancelled waiter left the queue
  adm.Release(10);
  EXPECT_EQ(adm.running(), 0);
}

TEST(AdmissionTest, DeadlineWhileQueued) {
  AdmissionOptions opts;
  opts.max_running = 1;
  opts.memory_budget_bytes = 1000;
  AdmissionController adm(opts);
  ASSERT_TRUE(adm.Admit(10, 0, nullptr).ok());

  QueryControl control;
  control.SetDeadlineAfterMs(20);
  Status s = adm.Admit(10, 0, &control);  // never admitted: slot is held
  EXPECT_TRUE(s.IsDeadlineExceeded()) << s.ToString();
  adm.Release(10);
}

// --- QueryService: correct results under concurrency ------------------------

TEST(QueryServiceTest, ConcurrentSessionsMatchSerialReference) {
  Table table = MakeTable(20000, 512);
  // More sessions than running slots, mixed plan shapes, tiny-ish memory:
  // queueing, fair scheduling and spilling all engage at once.
  std::vector<plan::PlanPtr> plans = {
      plan::Aggregate(plan::Scan(&table), {ColK()}, {"k"},
                      {AggregateSpec{AggKind::kSum, ColV(), "sv"},
                       AggregateSpec{AggKind::kCountStar, nullptr, "n"}}),
      plan::Sort(plan::Filter(plan::Scan(&table),
                              eb::Lt(ColV(), eb::Lit(int64_t{5000}))),
                 {SortKey{ColV(), /*ascending=*/false}}),
      plan::Aggregate(plan::Scan(&table), {}, {},
                      {AggregateSpec{AggKind::kMin, ColV(), "mn"},
                       AggregateSpec{AggKind::kMax, ColV(), "mx"}}),
      plan::Limit(plan::Sort(plan::Scan(&table), {SortKey{ColV(), true}}),
                  100),
  };

  // Serial references, single-task.
  std::vector<Table> expected;
  for (const auto& p : plans) {
    exec::Driver reference(1);
    Result<Table> r = reference.RunSingleTask(p);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    expected.push_back(std::move(*r));
  }

  ServiceOptions options;
  options.worker_threads = 4;
  options.max_concurrent_queries = 2;
  options.memory_limit_bytes = 64LL << 20;
  QueryService svc(options);
  std::vector<std::shared_ptr<QuerySession>> sessions;
  for (int rep = 0; rep < 3; rep++) {
    for (size_t i = 0; i < plans.size(); i++) {
      SessionOptions so;
      so.memory_bytes = 8LL << 20;
      sessions.push_back(svc.Submit(plans[i], so));
    }
  }
  for (size_t s = 0; s < sessions.size(); s++) {
    Status st = sessions[s]->Wait();
    ASSERT_TRUE(st.ok()) << "session " << s << ": " << st.ToString();
    EXPECT_EQ(sessions[s]->state(), SessionState::kSucceeded);
    const Table& got = sessions[s]->table();
    const Table& want = expected[s % plans.size()];
    EXPECT_EQ(got.num_rows(), want.num_rows()) << "session " << s;
    EXPECT_EQ(Sorted(got.ToRows()), Sorted(want.ToRows()))
        << "session " << s;
    // Profile came back under the session's id.
    EXPECT_EQ(sessions[s]->profile().query,
              "q" + std::to_string(sessions[s]->id()));
    EXPECT_GT(sessions[s]->profile().wall_ns, 0);
  }
  QueryService::Stats stats = svc.stats();
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(sessions.size()));
  EXPECT_EQ(stats.succeeded, static_cast<int64_t>(sessions.size()));
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.cancelled, 0);
  // All sessions finished: the shared pool holds no reservations and no
  // admission slots are occupied.
  EXPECT_EQ(svc.memory_manager()->reserved(), 0);
  EXPECT_EQ(svc.admission().running(), 0);
}

TEST(QueryServiceTest, OversizeSubmissionFailsCleanly) {
  Table table = MakeTable(100, 64);
  plan::PlanPtr p =
      plan::Aggregate(plan::Scan(&table), {}, {},
                      {AggregateSpec{AggKind::kCountStar, nullptr, "n"}});
  ServiceOptions options;
  options.memory_limit_bytes = 1 << 20;
  QueryService svc(options);
  SessionOptions so;
  so.memory_bytes = 2 << 20;  // more than the whole budget
  auto session = svc.Submit(p, so);
  Status st = session->Wait();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
  EXPECT_EQ(session->state(), SessionState::kFailed);
  EXPECT_EQ(svc.stats().failed, 1);
}

// --- Cancellation: no leaked reservations, spills, or pins ------------------

/// Delta-backed test fixture: 6 files of 2000 rows each, scanned through
/// a test-owned BlockCache so pin leaks are observable.
struct DeltaFixture {
  Schema schema{{Field("id", DataType::Int64()),
                 Field("v", DataType::Int64())}};
  ObjectStore store;
  std::unique_ptr<DeltaTable> delta;
  io::BlockCache cache;
  DeltaSnapshot snapshot;

  DeltaFixture() {
    auto dt = DeltaTable::Create(&store, "dl/t", schema);
    PHOTON_CHECK(dt.ok());
    delta = std::move(*dt);
    Rng rng(13);
    for (int f = 0; f < 6; f++) {
      TableBuilder builder(schema, 512);
      for (int i = 0; i < 2000; i++) {
        builder.AppendRow({Value::Int64(f * 2000 + i),
                           Value::Int64(rng.Uniform(0, 999))});
      }
      FormatWriteOptions options;
      options.row_group_rows = 500;
      PHOTON_CHECK(delta->Append(builder.Finish(), options).ok());
    }
    auto snap = delta->Snapshot();
    PHOTON_CHECK(snap.ok());
    snapshot = std::move(*snap);
  }

  plan::PlanPtr ScanAggPlan() {
    io::IoOptions io;
    io.cache = &cache;
    return plan::Aggregate(
        plan::DeltaScan(&store, snapshot, {}, nullptr, io), {}, {},
        {AggregateSpec{AggKind::kSum, eb::Col(1, DataType::Int64(), "v"),
                       "sv"},
         AggregateSpec{AggKind::kCountStar, nullptr, "n"}});
  }
};

/// Asserts the session released everything: no reservation left in the
/// service's memory pool, no spill artifacts under its prefix, no pinned
/// cache blocks, no admission slot held.
void ExpectNoLeaks(QueryService& svc, const QuerySession& session,
                   const io::BlockCache* cache) {
  EXPECT_EQ(svc.memory_manager()->reserved(), 0);
  EXPECT_EQ(svc.admission().running(), 0);
  std::string prefix = "service/q" + std::to_string(session.id()) + "/";
  EXPECT_TRUE(ObjectStore::Default().List(prefix).empty()) << prefix;
  if (cache != nullptr) EXPECT_EQ(cache->pinned_entries(), 0);
}

/// Sweeps CancelAfterChecks over a range of checkpoint counts, so the
/// cancel lands in a different phase of the query every iteration (during
/// admission, at a morsel claim, between batch pulls, at a barrier, past
/// the end). Every landing spot must yield a clean terminal state: either
/// kCancelled with nothing leaked, or — when the query outran the
/// trigger — kSucceeded with the reference result.
void SweepCancellationPoints(const plan::PlanPtr& plan, int worker_threads,
                             int64_t memory_limit,
                             const io::BlockCache* cache,
                             const Table* expected) {
  int completed = 0;
  int cancelled = 0;
  for (int checks = 1; checks <= 31; checks += 3) {
    ServiceOptions options;
    options.worker_threads = worker_threads;
    options.memory_limit_bytes = memory_limit;
    QueryService svc(options);
    SessionOptions so;
    so.memory_bytes = memory_limit / 2;
    auto session = svc.Submit(plan, so);
    session->control()->CancelAfterChecks(checks);
    Status st = session->Wait();
    if (st.ok()) {
      completed++;
      EXPECT_EQ(session->state(), SessionState::kSucceeded);
      if (expected != nullptr) {
        EXPECT_EQ(Sorted(session->table().ToRows()),
                  Sorted(expected->ToRows()))
            << "checks=" << checks;
      }
    } else {
      cancelled++;
      EXPECT_TRUE(st.IsCancelled()) << st.ToString();
      EXPECT_EQ(session->state(), SessionState::kCancelled);
    }
    svc.Drain();
    ExpectNoLeaks(svc, *session, cache);
  }
  // The sweep must actually exercise cancellation (short-trigger end) —
  // whether the longest trigger outruns the query is timing-dependent.
  EXPECT_GT(cancelled, 0) << "completed=" << completed;
}

TEST(CancellationTest, MidScanReleasesEverything) {
  DeltaFixture fx;
  plan::PlanPtr plan = fx.ScanAggPlan();
  exec::Driver reference(1);
  Result<Table> expected = reference.RunSingleTask(plan);
  ASSERT_TRUE(expected.ok());
  for (int threads : {1, 8}) {
    SweepCancellationPoints(plan, threads, 64LL << 20, &fx.cache,
                            &*expected);
  }
}

TEST(CancellationTest, MidBuildReleasesEverything) {
  // Join whose build side is large enough that its hash-table reservation
  // is live when the cancel lands.
  Table probe = MakeTable(8000, 512, /*seed=*/3);
  Table build = MakeTable(8000, 512, /*seed=*/4);
  plan::PlanPtr plan = plan::Aggregate(
      plan::Join(plan::Scan(&probe), plan::Scan(&build), JoinType::kInner,
                 {ColK()}, {ColK()}),
      {}, {}, {AggregateSpec{AggKind::kCountStar, nullptr, "n"}});
  exec::Driver reference(1);
  Result<Table> expected = reference.RunSingleTask(plan);
  ASSERT_TRUE(expected.ok());
  for (int threads : {1, 8}) {
    SweepCancellationPoints(plan, threads, 64LL << 20, nullptr, &*expected);
  }
}

TEST(CancellationTest, MidSpillReleasesEverything) {
  // Tiny memory pool: the sort spills runs, so cancels land while spill
  // artifacts exist under the session's prefix — all must be deleted.
  Table table = MakeTable(30000, 512, /*seed=*/5);
  plan::PlanPtr plan =
      plan::Sort(plan::Scan(&table), {SortKey{ColV(), true}});
  exec::Driver reference(1);
  Result<Table> expected = reference.RunSingleTask(plan);
  ASSERT_TRUE(expected.ok());
  for (int threads : {1, 8}) {
    SweepCancellationPoints(plan, threads, /*memory_limit=*/1 << 20,
                            nullptr, &*expected);
  }
}

TEST(CancellationTest, CancelFromAnotherThreadWhileRunning) {
  // Asynchronous cancel racing a running query (the production shape, vs
  // the deterministic check-counted sweeps above).
  Table table = MakeTable(50000, 512);
  plan::PlanPtr plan =
      plan::Sort(plan::Scan(&table), {SortKey{ColV(), true}});
  ServiceOptions options;
  options.worker_threads = 4;
  QueryService svc(options);
  for (int delay_us : {0, 50, 500, 5000}) {
    auto session = svc.Submit(plan);
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    session->Cancel();
    Status st = session->Wait();
    EXPECT_TRUE(st.ok() || st.IsCancelled()) << st.ToString();
    svc.Drain();
    ExpectNoLeaks(svc, *session, nullptr);
  }
}

TEST(CancellationTest, DeadlineCancelsSlowQuery) {
  Table table = MakeTable(50000, 512);
  plan::PlanPtr plan =
      plan::Sort(plan::Scan(&table), {SortKey{ColV(), true}});
  ServiceOptions options;
  options.worker_threads = 2;
  QueryService svc(options);

  SessionOptions tight;
  tight.deadline_ms = 1;
  auto slow = svc.Submit(plan, tight);
  Status st = slow->Wait();
  // 1ms is tight enough that the sort cannot finish; if a machine ever
  // does finish it, that's still a correct outcome.
  if (!st.ok()) {
    EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();
    EXPECT_EQ(slow->state(), SessionState::kCancelled);
  }
  svc.Drain();
  ExpectNoLeaks(svc, *slow, nullptr);

  SessionOptions loose;
  loose.deadline_ms = 60000;
  auto fast = svc.Submit(plan, loose);
  EXPECT_TRUE(fast->Wait().ok());
  EXPECT_EQ(fast->state(), SessionState::kSucceeded);
}

// --- Per-query reserve timeout (ExecContext override) -----------------------

namespace {

/// Consumer that cannot spill: its doomed reservations must resolve by
/// timeout, not by freeing memory.
class Unspillable : public MemoryConsumer {
 public:
  explicit Unspillable(const char* name) : MemoryConsumer(name) {}
  int64_t Spill(int64_t) override { return 0; }
};

}  // namespace

TEST(ReserveTimeoutTest, PerQueryOverrideBeatsManagerDefault) {
  MemoryManager mm(1000);
  mm.set_reserve_timeout_ms(10000);  // pathological global default

  Unspillable holder("holder");
  holder.set_task_group(1);
  mm.RegisterConsumer(&holder);
  ASSERT_TRUE(mm.Reserve(&holder, 900).ok());

  // Per-query override (the ExecContext::reserve_timeout_ms path): the
  // doomed reservation fails fast despite the 10s manager default.
  Unspillable fast("fast");
  fast.set_task_group(2);
  fast.set_reserve_timeout_ms(50);
  mm.RegisterConsumer(&fast);
  auto t0 = std::chrono::steady_clock::now();
  Status s = mm.Reserve(&fast, 500);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_TRUE(s.IsOutOfMemory()) << s.ToString();
  EXPECT_LT(elapsed.count(), 5000) << "override did not shorten the wait";

  // A cancelled query stops waiting on backpressure immediately.
  QueryControl control;
  Unspillable waiting("waiting");
  waiting.set_task_group(3);
  waiting.set_control(&control);
  mm.RegisterConsumer(&waiting);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    control.Cancel();
  });
  s = mm.Reserve(&waiting, 500);
  canceller.join();
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();

  mm.Release(&holder, 900);
  mm.UnregisterConsumer(&holder);
  mm.UnregisterConsumer(&fast);
  mm.UnregisterConsumer(&waiting);
  EXPECT_EQ(mm.reserved(), 0);
}

}  // namespace
}  // namespace photon
