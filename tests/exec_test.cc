#include <gtest/gtest.h>

#include <atomic>

#include "common/rng.h"
#include "exec/driver.h"
#include "exec/thread_pool.h"
#include "expr/builder.h"
#include "ops/file_scan.h"
#include "ops/filter.h"
#include "ops/hash_aggregate.h"
#include "ops/scan.h"
#include "plan/logical_plan.h"
#include "storage/format.h"

namespace photon {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; i++) {
    futures.push_back(pool.Submit([&counter, i] {
      counter.fetch_add(1);
      return i * 2;
    }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(sum, 99 * 100);  // 2 * (0 + 1 + ... + 99)
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  std::future<int> f =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; i++) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
  }  // join
  EXPECT_EQ(done.load(), 20);
}

// --- Per-operator metrics / explain (§3.3 observability) -------------------

TEST(MetricsTest, ExplainAnalyzeReportsPerOperatorCounts) {
  Schema schema({Field("x", DataType::Int64())});
  TableBuilder builder(schema);
  for (int i = 0; i < 1000; i++) builder.AppendRow({Value::Int64(i)});
  Table t = builder.Finish();

  auto scan = std::make_unique<InMemoryScanOperator>(&t);
  auto filter = std::make_unique<FilterOperator>(
      std::move(scan),
      eb::Lt(eb::Col(0, DataType::Int64(), "x"), eb::Lit(int64_t{100})));
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kCountStar, nullptr, "n"});
  auto agg = std::make_unique<HashAggregateOperator>(
      std::move(filter), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs));

  Result<Table> result = CollectAll(agg.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->GetRow(0)[0], Value::Int64(100));

  // Operator-level metrics survive because operator boundaries survive.
  EXPECT_EQ(agg->metrics().rows_out, 1);
  EXPECT_GT(agg->metrics().time_ns, 0);

  std::string explain = ExplainAnalyze(agg.get());
  EXPECT_NE(explain.find("PhotonHashAggregate"), std::string::npos);
}

// --- FileScan row-group skipping --------------------------------------------

TEST(FileScanTest, SkipsRowGroupsByStats) {
  // One file, clustered ids, small row groups -> the predicate should skip
  // most groups without decoding them.
  Schema schema({Field("id", DataType::Int64())});
  TableBuilder builder(schema);
  for (int64_t i = 0; i < 10000; i++) builder.AppendRow({Value::Int64(i)});
  Table t = builder.Finish();

  ObjectStore store;
  FormatWriteOptions options;
  options.row_group_rows = 1000;  // 10 groups
  Result<FileMeta> meta =
      WriteTableToStore(t, &store, "skip/test.pho", options);
  ASSERT_TRUE(meta.ok());

  ExprPtr pred = eb::Between(eb::Col(0, DataType::Int64(), "id"),
                             eb::Lit(int64_t{4500}), eb::Lit(int64_t{4600}));
  auto scan = std::make_unique<FileScanOperator>(
      &store, std::vector<std::string>{"skip/test.pho"}, schema,
      std::vector<int>{}, pred);
  Result<Table> result = CollectAll(scan.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 101);
  EXPECT_EQ(scan->op_metrics().Value(obs::Metric::kRowGroupsSkipped), 9)
      << "only group [4000,5000) should be read";
}

TEST(FileScanTest, MultipleFilesAndProjection) {
  Schema schema({Field("id", DataType::Int64()),
                 Field("payload", DataType::String())});
  ObjectStore store;
  for (int f = 0; f < 3; f++) {
    TableBuilder builder(schema);
    for (int i = 0; i < 100; i++) {
      builder.AppendRow({Value::Int64(f * 100 + i),
                         Value::String("p" + std::to_string(i))});
    }
    Table t = builder.Finish();
    ASSERT_TRUE(
        WriteTableToStore(t, &store, "multi/f" + std::to_string(f)).ok());
  }
  auto scan = std::make_unique<FileScanOperator>(
      &store,
      std::vector<std::string>{"multi/f0", "multi/f1", "multi/f2"}, schema,
      std::vector<int>{0});  // ids only
  Result<Table> result = CollectAll(scan.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 300);
  EXPECT_EQ(result->schema().num_fields(), 1);
  EXPECT_EQ(scan->op_metrics().Value(obs::Metric::kFilesRead), 3);
}

// --- Metrics through the driver ----------------------------------------------

TEST(DriverMetricsTest, StagesReportShuffleBytes) {
  Schema schema(
      {Field("k", DataType::Int64()), Field("v", DataType::Int64())});
  TableBuilder builder(schema);
  Rng rng(5);
  for (int i = 0; i < 10000; i++) {
    builder.AppendRow(
        {Value::Int64(rng.Uniform(0, 9)), Value::Int64(rng.Uniform(0, 99))});
  }
  Table t = builder.Finish();

  exec::Driver driver(2);
  plan::PlanPtr p = plan::Scan(&t);
  std::vector<exec::StageInfo> stages;
  Result<Table> result = driver.RunShuffledAggregate(
      t, {plan::ColOf(p, "k")}, {"k"},
      {AggregateSpec{AggKind::kSum, plan::ColOf(p, "v"), "s"}}, 4, &stages);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 10);
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_GT(stages[0].shuffle_bytes(), 0);
  EXPECT_GT(stages[0].wall_ns(), 0);
  EXPECT_GT(stages[1].wall_ns(), 0);
}

TEST(DriverShuffleTest, FailedMapTaskLeaksNoShuffleBlocks) {
  Schema schema(
      {Field("k", DataType::Int64()), Field("v", DataType::Int64())});
  TableBuilder builder(schema, 256);
  Rng rng(9);
  for (int i = 0; i < 4000; i++) {
    builder.AppendRow(
        {Value::Int64(rng.Uniform(0, 9)), Value::Int64(rng.Uniform(0, 99))});
  }
  Table t = builder.Finish();

  size_t blocks_before = ObjectStore::Default().List("shuffle/").size();
  ObjectStore::Default().FailNextPuts(1);  // first shuffle block write fails

  exec::Driver driver(2);
  plan::PlanPtr p = plan::Scan(&t);
  Result<Table> result = driver.RunShuffledAggregate(
      t, {plan::ColOf(p, "k")}, {"k"},
      {AggregateSpec{AggKind::kSum, plan::ColOf(p, "v"), "s"}}, 4);
  EXPECT_FALSE(result.ok());
  // The failed run must not leak shuffle blocks: every block the surviving
  // map tasks managed to write is deleted on the error path.
  EXPECT_EQ(ObjectStore::Default().List("shuffle/").size(), blocks_before);
}

}  // namespace
}  // namespace photon
