#include <gtest/gtest.h>

#include "exec/driver.h"
#include "plan/logical_plan.h"
#include "sql/printer.h"
#include "testing/differ.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"
#include "tpch/tpch_sql.h"

namespace photon {
namespace {

constexpr double kTestScale = 0.002;

const tpch::TpchData& Data() {
  static const tpch::TpchData* data =
      new tpch::TpchData(tpch::GenerateTpch(kTestScale));
  return *data;
}

/// Every TPC-H query shipped as a .sql file must lower to a plan that is
/// structurally identical (same fingerprint) to the hand-built plan in
/// tpch_queries.cc, and must produce checksum-identical results when
/// executed — single-task and morsel-parallel at 8 threads. This pins the
/// whole SQL front-end (lexer → parser → analyzer → lowering) against 22
/// non-trivial golden plans.
class TpchSqlTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchSqlTest, MatchesHandBuiltPlan) {
  int q = GetParam();
  Result<plan::PlanPtr> hand = tpch::TpchQuery(q, Data(), kTestScale);
  ASSERT_TRUE(hand.ok()) << hand.status().ToString();
  Result<plan::PlanPtr> from_sql = tpch::TpchSqlQuery(q, Data(), kTestScale);
  Result<std::string> text = tpch::TpchSqlText(q, kTestScale);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  ASSERT_TRUE(from_sql.ok()) << "Q" << q << ": " << from_sql.status().ToString()
                             << "\nSQL:\n"
                             << *text;

  EXPECT_EQ(sql::PlanFingerprint(*hand), sql::PlanFingerprint(*from_sql))
      << "Q" << q << " SQL plan diverges from the hand-built plan.\nSQL:\n"
      << *text;

  // Single-task execution.
  exec::Driver single(1);
  Result<Table> hand_result = single.RunSingleTask(*hand);
  ASSERT_TRUE(hand_result.ok()) << hand_result.status().ToString();
  Result<Table> sql_result = single.RunSingleTask(*from_sql);
  ASSERT_TRUE(sql_result.ok()) << sql_result.status().ToString();
  EXPECT_EQ(testing::Canonicalize(*hand_result),
            testing::Canonicalize(*sql_result))
      << "Q" << q << " single-task results diverge";

  // Morsel-parallel execution at 8 threads.
  exec::Driver parallel(8);
  Result<Table> sql_mt = parallel.Run(*from_sql);
  ASSERT_TRUE(sql_mt.ok()) << sql_mt.status().ToString();
  EXPECT_EQ(testing::Canonicalize(*hand_result), testing::Canonicalize(*sql_mt))
      << "Q" << q << " 8-thread results diverge";
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchSqlTest, ::testing::Range(1, 23));

TEST(TpchSqlTest, RejectsOutOfRangeQueryNumbers) {
  EXPECT_FALSE(tpch::TpchSqlText(0).ok());
  EXPECT_FALSE(tpch::TpchSqlText(23).ok());
}

}  // namespace
}  // namespace photon
