#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"
#include "expr/builder.h"
#include "ops/filter.h"
#include "ops/hash_aggregate.h"
#include "ops/hash_join.h"
#include "ops/limit.h"
#include "ops/project.h"
#include "ops/scan.h"
#include "ops/shuffle.h"
#include "ops/sort.h"
#include "vector/table.h"
#include "vector/vector_serde.h"

namespace photon {
namespace {

using eb::Col;
using eb::Lit;

Table MakeIntTable(const std::vector<std::pair<int64_t, int64_t>>& rows,
                   int batch_size = 4) {
  Schema schema(
      {Field("k", DataType::Int64()), Field("v", DataType::Int64())});
  TableBuilder builder(schema, batch_size);
  for (const auto& [k, v] : rows) {
    builder.AppendRow({Value::Int64(k), Value::Int64(v)});
  }
  return builder.Finish();
}

ExprPtr K() { return Col(0, DataType::Int64(), "k"); }
ExprPtr V() { return Col(1, DataType::Int64(), "v"); }

TEST(ScanFilterProjectTest, Pipeline) {
  Table t = MakeIntTable({{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}});
  auto scan = std::make_unique<InMemoryScanOperator>(&t);
  auto filter = std::make_unique<FilterOperator>(
      std::move(scan), eb::Gt(V(), Lit(int64_t{15})));
  std::vector<ExprPtr> exprs = {eb::Add(K(), V()),
                                eb::Mul(K(), Lit(int64_t{2}))};
  auto project = std::make_unique<ProjectOperator>(
      std::move(filter), exprs, std::vector<std::string>{"sum", "k2"});

  Result<Table> result = CollectAll(project.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 4);
  EXPECT_EQ(result->GetRow(0)[0], Value::Int64(22));
  EXPECT_EQ(result->GetRow(0)[1], Value::Int64(4));
  EXPECT_EQ(result->GetRow(3)[0], Value::Int64(55));
}

TEST(ScanTest, DoesNotMutateSourceTable) {
  Table t = MakeIntTable({{1, 1}, {2, 2}, {3, 3}});
  {
    auto scan = std::make_unique<InMemoryScanOperator>(&t);
    auto filter = std::make_unique<FilterOperator>(
        std::move(scan), eb::Eq(K(), Lit(int64_t{2})));
    Result<Table> r1 = CollectAll(filter.get());
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(r1->num_rows(), 1);
  }
  // Source still intact: scanning again yields all rows.
  auto scan2 = std::make_unique<InMemoryScanOperator>(&t);
  Result<Table> r2 = CollectAll(scan2.get());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->num_rows(), 3);
}

TEST(LimitTest, TruncatesAcrossBatches) {
  std::vector<std::pair<int64_t, int64_t>> rows;
  for (int i = 0; i < 20; i++) rows.push_back({i, i});
  Table t = MakeIntTable(rows, /*batch_size=*/6);
  auto scan = std::make_unique<InMemoryScanOperator>(&t);
  auto limit = std::make_unique<LimitOperator>(std::move(scan), 8);
  Result<Table> result = CollectAll(limit.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 8);
}

// --- Aggregation -----------------------------------------------------------

TEST(HashAggregateTest, GroupBySumCountMinMax) {
  Table t = MakeIntTable(
      {{1, 10}, {2, 20}, {1, 30}, {3, 5}, {2, 40}, {1, 2}});
  auto scan = std::make_unique<InMemoryScanOperator>(&t);
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kSum, V(), "sum_v"});
  aggs.push_back({AggKind::kCountStar, nullptr, "cnt"});
  aggs.push_back({AggKind::kMin, V(), "min_v"});
  aggs.push_back({AggKind::kMax, V(), "max_v"});
  aggs.push_back({AggKind::kAvg, V(), "avg_v"});
  auto agg = std::make_unique<HashAggregateOperator>(
      std::move(scan), std::vector<ExprPtr>{K()},
      std::vector<std::string>{"k"}, std::move(aggs));

  Result<Table> result = CollectAll(agg.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 3);
  std::map<int64_t, std::vector<Value>> by_key;
  for (auto& row : result->ToRows()) by_key[row[0].i64()] = row;
  EXPECT_EQ(by_key[1][1], Value::Int64(42));
  EXPECT_EQ(by_key[1][2], Value::Int64(3));
  EXPECT_EQ(by_key[1][3], Value::Int64(2));
  EXPECT_EQ(by_key[1][4], Value::Int64(30));
  EXPECT_EQ(by_key[1][5], Value::Float64(14.0));
  EXPECT_EQ(by_key[3][1], Value::Int64(5));
}

TEST(HashAggregateTest, ScalarAggregationEmptyInput) {
  Table t = MakeIntTable({});
  auto scan = std::make_unique<InMemoryScanOperator>(&t);
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kCountStar, nullptr, "cnt"});
  aggs.push_back({AggKind::kSum, V(), "sum_v"});
  auto agg = std::make_unique<HashAggregateOperator>(
      std::move(scan), std::vector<ExprPtr>{}, std::vector<std::string>{},
      std::move(aggs));
  Result<Table> result = CollectAll(agg.get());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 1);  // scalar agg yields one row even empty
  EXPECT_EQ(result->GetRow(0)[0], Value::Int64(0));
  EXPECT_TRUE(result->GetRow(0)[1].is_null());  // SUM over nothing is NULL
}

TEST(HashAggregateTest, NullKeysFormOneGroup) {
  Schema schema(
      {Field("k", DataType::Int64()), Field("v", DataType::Int64())});
  TableBuilder builder(schema, 4);
  builder.AppendRow({Value::Null(), Value::Int64(1)});
  builder.AppendRow({Value::Int64(7), Value::Int64(2)});
  builder.AppendRow({Value::Null(), Value::Int64(3)});
  Table t = builder.Finish();
  auto scan = std::make_unique<InMemoryScanOperator>(&t);
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kSum, V(), "s"});
  aggs.push_back({AggKind::kCount, V(), "c"});
  auto agg = std::make_unique<HashAggregateOperator>(
      std::move(scan), std::vector<ExprPtr>{K()},
      std::vector<std::string>{"k"}, std::move(aggs));
  Result<Table> result = CollectAll(agg.get());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2);
  for (auto& row : result->ToRows()) {
    if (row[0].is_null()) {
      EXPECT_EQ(row[1], Value::Int64(4));
      EXPECT_EQ(row[2], Value::Int64(2));
    } else {
      EXPECT_EQ(row[1], Value::Int64(2));
    }
  }
}

TEST(HashAggregateTest, CollectList) {
  Schema schema(
      {Field("k", DataType::Int64()), Field("s", DataType::String())});
  TableBuilder builder(schema, 4);
  builder.AppendRow({Value::Int64(1), Value::String("a")});
  builder.AppendRow({Value::Int64(2), Value::String("b")});
  builder.AppendRow({Value::Int64(1), Value::String("c")});
  builder.AppendRow({Value::Int64(1), Value::Null()});  // skipped
  Table t = builder.Finish();
  auto scan = std::make_unique<InMemoryScanOperator>(&t);
  std::vector<AggregateSpec> aggs;
  aggs.push_back(
      {AggKind::kCollectList, Col(1, DataType::String(), "s"), "lst"});
  auto agg = std::make_unique<HashAggregateOperator>(
      std::move(scan), std::vector<ExprPtr>{K()},
      std::vector<std::string>{"k"}, std::move(aggs));
  Result<Table> result = CollectAll(agg.get());
  ASSERT_TRUE(result.ok());
  std::map<int64_t, std::string> by_key;
  for (auto& row : result->ToRows()) by_key[row[0].i64()] = row[1].str();
  EXPECT_EQ(by_key[1], "[a, c]");
  EXPECT_EQ(by_key[2], "[b]");
}

TEST(HashAggregateTest, ManyGroupsAcrossBatches) {
  Rng rng(5);
  std::vector<std::pair<int64_t, int64_t>> rows;
  std::map<int64_t, int64_t> oracle;
  for (int i = 0; i < 10000; i++) {
    int64_t k = rng.Uniform(0, 999);
    int64_t v = rng.Uniform(-100, 100);
    rows.push_back({k, v});
    oracle[k] += v;
  }
  Table t = MakeIntTable(rows, kDefaultBatchSize);
  auto scan = std::make_unique<InMemoryScanOperator>(&t);
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kSum, V(), "s"});
  auto agg = std::make_unique<HashAggregateOperator>(
      std::move(scan), std::vector<ExprPtr>{K()},
      std::vector<std::string>{"k"}, std::move(aggs));
  Result<Table> result = CollectAll(agg.get());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), static_cast<int64_t>(oracle.size()));
  for (auto& row : result->ToRows()) {
    EXPECT_EQ(row[1].i64(), oracle[row[0].i64()]);
  }
}

TEST(HashAggregateTest, SpillingProducesSameResult) {
  // Force spilling with a tiny memory budget and check the merged output
  // matches the unspilled run.
  Rng rng(11);
  std::vector<std::pair<int64_t, int64_t>> rows;
  std::map<int64_t, int64_t> oracle;
  for (int i = 0; i < 20000; i++) {
    int64_t k = rng.Uniform(0, 4999);
    rows.push_back({k, 1});
    oracle[k] += 1;
  }
  Table t = MakeIntTable(rows, kDefaultBatchSize);

  MemoryManager mgr(600 * 1024);  // deliberately small
  ExecContext ectx;
  ectx.memory_manager = &mgr;
  ectx.spill_prefix = "test-spill-agg";
  auto scan = std::make_unique<InMemoryScanOperator>(&t);
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kSum, V(), "s"});
  aggs.push_back({AggKind::kCountStar, nullptr, "c"});
  auto agg = std::make_unique<HashAggregateOperator>(
      std::move(scan), std::vector<ExprPtr>{K()},
      std::vector<std::string>{"k"}, std::move(aggs), ectx);

  Result<Table> result = CollectAll(agg.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(agg->metrics().spill_count, 0) << "test must actually spill";
  ASSERT_EQ(result->num_rows(), static_cast<int64_t>(oracle.size()));
  for (auto& row : result->ToRows()) {
    EXPECT_EQ(row[1].i64(), oracle[row[0].i64()]) << row[0].i64();
    EXPECT_EQ(row[2].i64(), oracle[row[0].i64()]);
  }
}

// --- Hash join ---------------------------------------------------------------

Table MakeTable2(const Schema& schema,
                 const std::vector<std::vector<Value>>& rows,
                 int batch_size = 4) {
  TableBuilder builder(schema, batch_size);
  for (const auto& row : rows) builder.AppendRow(row);
  return builder.Finish();
}

TEST(HashJoinTest, InnerJoinWithDuplicates) {
  Schema bs({Field("bk", DataType::Int64()), Field("bv", DataType::String())});
  Schema ps({Field("pk", DataType::Int64()), Field("pv", DataType::Int64())});
  Table build = MakeTable2(bs, {{Value::Int64(1), Value::String("one")},
                                {Value::Int64(2), Value::String("two")},
                                {Value::Int64(2), Value::String("TWO")},
                                {Value::Int64(3), Value::String("three")}});
  Table probe = MakeTable2(ps, {{Value::Int64(2), Value::Int64(100)},
                                {Value::Int64(4), Value::Int64(200)},
                                {Value::Int64(1), Value::Int64(300)}});
  auto join = std::make_unique<HashJoinOperator>(
      std::make_unique<InMemoryScanOperator>(&build),
      std::make_unique<InMemoryScanOperator>(&probe),
      std::vector<ExprPtr>{Col(0, DataType::Int64(), "bk")},
      std::vector<ExprPtr>{Col(0, DataType::Int64(), "pk")},
      JoinType::kInner);
  Result<Table> result = CollectAll(join.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // pk=2 matches twice, pk=1 once, pk=4 none.
  ASSERT_EQ(result->num_rows(), 3);
  std::multimap<int64_t, std::string> got;
  for (auto& row : result->ToRows()) {
    got.emplace(row[0].i64(), row[3].str());
  }
  EXPECT_EQ(got.count(2), 2u);
  EXPECT_EQ(got.count(1), 1u);
  EXPECT_EQ(got.find(1)->second, "one");
}

TEST(HashJoinTest, LeftOuterEmitsUnmatchedWithNulls) {
  Schema bs({Field("bk", DataType::Int64()), Field("bv", DataType::Int64())});
  Schema ps({Field("pk", DataType::Int64())});
  Table build = MakeTable2(bs, {{Value::Int64(1), Value::Int64(11)}});
  Table probe =
      MakeTable2(ps, {{Value::Int64(1)}, {Value::Int64(2)}, {Value::Null()}});
  auto join = std::make_unique<HashJoinOperator>(
      std::make_unique<InMemoryScanOperator>(&build),
      std::make_unique<InMemoryScanOperator>(&probe),
      std::vector<ExprPtr>{Col(0, DataType::Int64())},
      std::vector<ExprPtr>{Col(0, DataType::Int64())},
      JoinType::kLeftOuter);
  Result<Table> result = CollectAll(join.get());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 3);
  int nulls = 0;
  for (auto& row : result->ToRows()) {
    if (row[2].is_null()) nulls++;
  }
  EXPECT_EQ(nulls, 2);  // pk=2 and pk=NULL have no match
}

TEST(HashJoinTest, SemiAndAnti) {
  Schema bs({Field("bk", DataType::Int64())});
  Schema ps({Field("pk", DataType::Int64())});
  Table build = MakeTable2(bs, {{Value::Int64(1)},
                                {Value::Int64(1)},  // dup should not dup semi
                                {Value::Int64(3)}});
  Table probe = MakeTable2(
      ps, {{Value::Int64(1)}, {Value::Int64(2)}, {Value::Int64(3)},
           {Value::Null()}});
  {
    auto semi = std::make_unique<HashJoinOperator>(
        std::make_unique<InMemoryScanOperator>(&build),
        std::make_unique<InMemoryScanOperator>(&probe),
        std::vector<ExprPtr>{Col(0, DataType::Int64())},
        std::vector<ExprPtr>{Col(0, DataType::Int64())},
        JoinType::kLeftSemi);
    Result<Table> result = CollectAll(semi.get());
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->num_rows(), 2);  // 1 and 3
  }
  {
    auto anti = std::make_unique<HashJoinOperator>(
        std::make_unique<InMemoryScanOperator>(&build),
        std::make_unique<InMemoryScanOperator>(&probe),
        std::vector<ExprPtr>{Col(0, DataType::Int64())},
        std::vector<ExprPtr>{Col(0, DataType::Int64())},
        JoinType::kLeftAnti);
    Result<Table> result = CollectAll(anti.get());
    ASSERT_TRUE(result.ok());
    // 2 and NULL (NULL never matches, so anti keeps it — Spark's
    // left_anti with null-safe-off semantics keeps null-keyed rows).
    ASSERT_EQ(result->num_rows(), 2);
  }
}

TEST(HashJoinTest, SemiWithResidualCondition) {
  // EXISTS (... AND l2.suppkey <> l1.suppkey) — the Q21 shape.
  Schema bs({Field("bo", DataType::Int64()), Field("bsupp", DataType::Int64())});
  Schema ps({Field("po", DataType::Int64()), Field("psupp", DataType::Int64())});
  Table build = MakeTable2(bs, {{Value::Int64(1), Value::Int64(10)},
                                {Value::Int64(1), Value::Int64(20)},
                                {Value::Int64(2), Value::Int64(10)}});
  Table probe = MakeTable2(ps, {{Value::Int64(1), Value::Int64(10)},
                                {Value::Int64(2), Value::Int64(10)},
                                {Value::Int64(3), Value::Int64(10)}});
  // Residual sees [probe cols..., build cols...] = [po, psupp, bo, bsupp].
  ExprPtr residual = eb::Ne(Col(3, DataType::Int64(), "bsupp"),
                            Col(1, DataType::Int64(), "psupp"));
  auto semi = std::make_unique<HashJoinOperator>(
      std::make_unique<InMemoryScanOperator>(&build),
      std::make_unique<InMemoryScanOperator>(&probe),
      std::vector<ExprPtr>{Col(0, DataType::Int64())},
      std::vector<ExprPtr>{Col(0, DataType::Int64())}, JoinType::kLeftSemi,
      ExecContext{}, residual);
  Result<Table> result = CollectAll(semi.get());
  ASSERT_TRUE(result.ok());
  // po=1: build has (1,20) with supp != 10 -> keep. po=2: only (2,10), same
  // supp -> drop. po=3: no match -> drop.
  ASSERT_EQ(result->num_rows(), 1);
  EXPECT_EQ(result->GetRow(0)[0], Value::Int64(1));
}

TEST(HashJoinTest, LargeJoinMatchesOracle) {
  Rng rng(21);
  Schema bs({Field("bk", DataType::Int64()), Field("bv", DataType::Int64())});
  Schema ps({Field("pk", DataType::Int64())});
  std::vector<std::vector<Value>> build_rows, probe_rows;
  std::multimap<int64_t, int64_t> oracle;
  for (int i = 0; i < 3000; i++) {
    int64_t k = rng.Uniform(0, 799);
    build_rows.push_back({Value::Int64(k), Value::Int64(i)});
    oracle.emplace(k, i);
  }
  int64_t expected_pairs = 0;
  for (int i = 0; i < 2000; i++) {
    int64_t k = rng.Uniform(0, 999);
    probe_rows.push_back({Value::Int64(k)});
    expected_pairs += static_cast<int64_t>(oracle.count(k));
  }
  Table build = MakeTable2(bs, build_rows, kDefaultBatchSize);
  Table probe = MakeTable2(ps, probe_rows, kDefaultBatchSize);
  auto join = std::make_unique<HashJoinOperator>(
      std::make_unique<InMemoryScanOperator>(&build),
      std::make_unique<InMemoryScanOperator>(&probe),
      std::vector<ExprPtr>{Col(0, DataType::Int64())},
      std::vector<ExprPtr>{Col(0, DataType::Int64())}, JoinType::kInner);
  Result<Table> result = CollectAll(join.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), expected_pairs);
}

TEST(HashJoinTest, CompactionTriggersOnSparseProbes) {
  // A selective filter upstream of the probe makes batches sparse; the
  // join should adaptively compact them (§4.6).
  std::vector<std::pair<int64_t, int64_t>> rows;
  for (int i = 0; i < 8192; i++) rows.push_back({i, i});
  Table big = MakeIntTable(rows, kDefaultBatchSize);
  Table small = MakeIntTable({{0, 0}, {64, 1}, {128, 2}});

  auto probe_scan = std::make_unique<InMemoryScanOperator>(&big);
  auto sparse_filter = std::make_unique<FilterOperator>(
      std::move(probe_scan),
      eb::Eq(eb::Mod(K(), Lit(int64_t{64})), Lit(int64_t{0})));
  auto join = std::make_unique<HashJoinOperator>(
      std::make_unique<InMemoryScanOperator>(&small),
      std::move(sparse_filter), std::vector<ExprPtr>{K()},
      std::vector<ExprPtr>{K()}, JoinType::kInner);
  HashJoinOperator* join_ptr = join.get();
  Result<Table> result = CollectAll(join.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3);
  EXPECT_GT(join_ptr->compacted_batches(), 0);
}

// --- Sort ------------------------------------------------------------------

TEST(SortTest, MultiKeyWithDirectionAndNulls) {
  Schema schema(
      {Field("a", DataType::Int64()), Field("b", DataType::String())});
  Table t = MakeTable2(schema, {{Value::Int64(2), Value::String("x")},
                                {Value::Int64(1), Value::String("z")},
                                {Value::Null(), Value::String("m")},
                                {Value::Int64(1), Value::String("a")},
                                {Value::Int64(2), Value::Null()}});
  std::vector<SortKey> keys;
  keys.push_back({Col(0, DataType::Int64(), "a"), /*asc=*/true,
                  /*nulls_first=*/true});
  keys.push_back({Col(1, DataType::String(), "b"), /*asc=*/false,
                  /*nulls_first=*/false});
  auto sort = std::make_unique<SortOperator>(
      std::make_unique<InMemoryScanOperator>(&t), std::move(keys));
  Result<Table> result = CollectAll(sort.get());
  ASSERT_TRUE(result.ok());
  auto rows = result->ToRows();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_TRUE(rows[0][0].is_null());                 // NULL first
  EXPECT_EQ(rows[1][1], Value::String("z"));         // a=1, b desc
  EXPECT_EQ(rows[2][1], Value::String("a"));
  EXPECT_EQ(rows[3][1], Value::String("x"));         // a=2, b desc, null last
  EXPECT_TRUE(rows[4][1].is_null());
}

TEST(SortTest, LargeSortMatchesStdSort) {
  Rng rng(77);
  std::vector<std::pair<int64_t, int64_t>> rows;
  for (int i = 0; i < 20000; i++) {
    rows.push_back({rng.Uniform(-10000, 10000), i});
  }
  Table t = MakeIntTable(rows, kDefaultBatchSize);
  std::vector<SortKey> keys;
  keys.push_back({K(), true, true});
  auto sort = std::make_unique<SortOperator>(
      std::make_unique<InMemoryScanOperator>(&t), std::move(keys));
  Result<Table> result = CollectAll(sort.get());
  ASSERT_TRUE(result.ok());
  std::vector<int64_t> expected;
  for (auto& [k, v] : rows) expected.push_back(k);
  std::sort(expected.begin(), expected.end());
  auto got = result->ToRows();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); i++) {
    EXPECT_EQ(got[i][0].i64(), expected[i]) << i;
  }
}

TEST(SortTest, SpillingExternalSortMatchesInMemory) {
  Rng rng(13);
  std::vector<std::pair<int64_t, int64_t>> rows;
  for (int i = 0; i < 20000; i++) rows.push_back({rng.Uniform(0, 1000000), i});
  Table t = MakeIntTable(rows, kDefaultBatchSize);

  MemoryManager mgr(200 * 1024);
  ExecContext ectx;
  ectx.memory_manager = &mgr;
  ectx.spill_prefix = "test-spill-sort";
  std::vector<SortKey> keys;
  keys.push_back({K(), true, true});
  auto sort = std::make_unique<SortOperator>(
      std::make_unique<InMemoryScanOperator>(&t), std::move(keys), ectx);
  SortOperator* sort_ptr = sort.get();
  Result<Table> result = CollectAll(sort.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(sort_ptr->metrics().spill_count, 0) << "must actually spill";
  ASSERT_EQ(result->num_rows(), 20000);
  auto got = result->ToRows();
  for (size_t i = 1; i < got.size(); i++) {
    EXPECT_LE(got[i - 1][0].i64(), got[i][0].i64()) << i;
  }
}

// --- Shuffle -----------------------------------------------------------------

TEST(ShuffleTest, WriteReadRoundTripPreservesRows) {
  Rng rng(31);
  std::vector<std::pair<int64_t, int64_t>> rows;
  std::map<int64_t, int64_t> oracle;
  for (int i = 0; i < 5000; i++) {
    int64_t k = rng.Uniform(0, 400);
    rows.push_back({k, 1});
    oracle[k]++;
  }
  Table t = MakeIntTable(rows, kDefaultBatchSize);
  ShuffleOptions options;
  options.num_partitions = 8;
  auto write = std::make_unique<ShuffleWriteOperator>(
      std::make_unique<InMemoryScanOperator>(&t), std::vector<ExprPtr>{K()},
      "test-shuffle-1", options);
  ASSERT_TRUE(write->Open().ok());
  Result<ColumnBatch*> sink = write->GetNext();
  ASSERT_TRUE(sink.ok()) << sink.status().ToString();
  EXPECT_EQ(*sink, nullptr);
  EXPECT_GT(write->blocks_written(), 0);

  // Each key lands in exactly one partition; reading all partitions
  // recovers every row.
  int64_t total = 0;
  std::map<int64_t, int64_t> got;
  std::map<int64_t, int> key_partition;
  for (int p = 0; p < 8; p++) {
    auto read = std::make_unique<ShuffleReadOperator>(t.schema(),
                                                      "test-shuffle-1", p);
    Result<Table> part = CollectAll(read.get());
    ASSERT_TRUE(part.ok());
    for (auto& row : part->ToRows()) {
      got[row[0].i64()]++;
      total += 1;
      auto it = key_partition.find(row[0].i64());
      if (it == key_partition.end()) {
        key_partition[row[0].i64()] = p;
      } else {
        EXPECT_EQ(it->second, p) << "key split across partitions";
      }
    }
  }
  EXPECT_EQ(total, 5000);
  EXPECT_EQ(got, oracle);
  DeleteShuffle("test-shuffle-1");
}

TEST(ShuffleTest, AdaptiveUuidEncodingShrinksShuffle) {
  Schema schema({Field("u", DataType::String())});
  TableBuilder builder(schema, kDefaultBatchSize);
  Rng rng(17);
  for (int i = 0; i < 4000; i++) {
    uint8_t bin[16];
    for (int b = 0; b < 16; b++) bin[b] = static_cast<uint8_t>(rng.Next());
    char text[36];
    FormatUuid(bin, text);
    builder.AppendRow({Value::String(std::string(text, 36))});
  }
  Table t = builder.Finish();

  auto run = [&](bool adaptive, const std::string& id) {
    ShuffleOptions options;
    options.num_partitions = 4;
    options.adaptive_encoding = adaptive;
    auto write = std::make_unique<ShuffleWriteOperator>(
        std::make_unique<InMemoryScanOperator>(&t),
        std::vector<ExprPtr>{Col(0, DataType::String(), "u")}, id, options);
    EXPECT_TRUE(write->Open().ok());
    EXPECT_TRUE(write->GetNext().ok());
    return write->bytes_written();
  };
  int64_t plain = run(false, "test-shuffle-plain");
  int64_t adaptive = run(true, "test-shuffle-adaptive");
  // Table 1 of the paper reports >2x data reduction; random UUIDs are
  // incompressible so the ratio here is driven purely by the encoding.
  EXPECT_LT(adaptive * 2, plain);

  // Round trip must still reproduce the strings.
  auto read = std::make_unique<ShuffleReadOperator>(schema,
                                                    "test-shuffle-adaptive");
  Result<Table> result = CollectAll(read.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 4000);
  DeleteShuffle("test-shuffle-plain");
  DeleteShuffle("test-shuffle-adaptive");
}

}  // namespace
}  // namespace photon
