#include "types/decimal.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "types/big_decimal.h"

namespace photon {
namespace {

TEST(Decimal128Test, FromStringBasic) {
  Decimal128 d;
  ASSERT_TRUE(Decimal128::FromString("12.34", 2, &d));
  EXPECT_EQ(d.value(), 1234);
  ASSERT_TRUE(Decimal128::FromString("-12.34", 2, &d));
  EXPECT_EQ(d.value(), -1234);
  ASSERT_TRUE(Decimal128::FromString("12", 2, &d));
  EXPECT_EQ(d.value(), 1200);
  ASSERT_TRUE(Decimal128::FromString("0.5", 2, &d));
  EXPECT_EQ(d.value(), 50);
  // Extra fractional digits are truncated.
  ASSERT_TRUE(Decimal128::FromString("1.239", 2, &d));
  EXPECT_EQ(d.value(), 123);
}

TEST(Decimal128Test, FromStringRejectsMalformed) {
  Decimal128 d;
  EXPECT_FALSE(Decimal128::FromString("", 2, &d));
  EXPECT_FALSE(Decimal128::FromString("abc", 2, &d));
  EXPECT_FALSE(Decimal128::FromString("1.2.3", 2, &d));
  EXPECT_FALSE(Decimal128::FromString("--5", 2, &d));
}

TEST(Decimal128Test, ToStringRoundTrip) {
  Decimal128 d;
  ASSERT_TRUE(Decimal128::FromString("1234.56", 2, &d));
  EXPECT_EQ(d.ToString(2), "1234.56");
  ASSERT_TRUE(Decimal128::FromString("-0.07", 2, &d));
  EXPECT_EQ(d.ToString(2), "-0.07");
  EXPECT_EQ(Decimal128(static_cast<int128_t>(0)).ToString(2), "0.00");
  EXPECT_EQ(Decimal128(static_cast<int128_t>(5)).ToString(0), "5");
}

TEST(Decimal128Test, RescaleUp) {
  Decimal128 d(static_cast<int128_t>(123));
  Decimal128 out;
  ASSERT_TRUE(d.Rescale(2, 4, &out));
  EXPECT_EQ(out.value(), 12300);
}

TEST(Decimal128Test, RescaleDownRounds) {
  Decimal128 out;
  // 1.25 at scale 2 -> scale 1 rounds half away from zero -> 1.3
  ASSERT_TRUE(Decimal128(static_cast<int128_t>(125)).Rescale(2, 1, &out));
  EXPECT_EQ(out.value(), 13);
  ASSERT_TRUE(Decimal128(static_cast<int128_t>(-125)).Rescale(2, 1, &out));
  EXPECT_EQ(out.value(), -13);
  ASSERT_TRUE(Decimal128(static_cast<int128_t>(124)).Rescale(2, 1, &out));
  EXPECT_EQ(out.value(), 12);
}

TEST(Decimal128Test, DivideRoundsHalfAwayFromZero) {
  // 1.00 / 3.00 at result scale 2 (shift 2): 100*100/300 = 33.33 -> 33
  Decimal128 q;
  ASSERT_TRUE(Decimal128::Divide(Decimal128(static_cast<int128_t>(100)),
                                 Decimal128(static_cast<int128_t>(300)), 2,
                                 &q));
  EXPECT_EQ(q.value(), 33);
  // 1.00 / 2.00 -> 0.50 exactly
  ASSERT_TRUE(Decimal128::Divide(Decimal128(static_cast<int128_t>(100)),
                                 Decimal128(static_cast<int128_t>(200)), 2,
                                 &q));
  EXPECT_EQ(q.value(), 50);
  // Negative: -1.00 / 3.00 -> -0.33
  ASSERT_TRUE(Decimal128::Divide(Decimal128(static_cast<int128_t>(-100)),
                                 Decimal128(static_cast<int128_t>(300)), 2,
                                 &q));
  EXPECT_EQ(q.value(), -33);
}

TEST(Decimal128Test, DivideByZeroFails) {
  Decimal128 q;
  EXPECT_FALSE(Decimal128::Divide(Decimal128(static_cast<int128_t>(1)),
                                  Decimal128(static_cast<int128_t>(0)), 2,
                                  &q));
}

TEST(Decimal128Test, Precision) {
  EXPECT_EQ(Decimal128(static_cast<int128_t>(0)).Precision(), 1);
  EXPECT_EQ(Decimal128(static_cast<int128_t>(9)).Precision(), 1);
  EXPECT_EQ(Decimal128(static_cast<int128_t>(10)).Precision(), 2);
  EXPECT_EQ(Decimal128(static_cast<int128_t>(-999)).Precision(), 3);
  EXPECT_EQ(Decimal128(Decimal128::PowerOfTen(37)).Precision(), 38);
}

TEST(BigDecimalTest, AddAlignsScales) {
  BigDecimal a, b;
  ASSERT_TRUE(BigDecimal::FromString("1.5", &a));
  ASSERT_TRUE(BigDecimal::FromString("2.25", &b));
  EXPECT_EQ(a.Add(b).ToString(), "3.75");
  EXPECT_EQ(b.Add(a).ToString(), "3.75");
}

TEST(BigDecimalTest, SubtractSigns) {
  BigDecimal a, b;
  ASSERT_TRUE(BigDecimal::FromString("1.00", &a));
  ASSERT_TRUE(BigDecimal::FromString("2.50", &b));
  EXPECT_EQ(a.Subtract(b).ToString(), "-1.50");
  EXPECT_EQ(b.Subtract(a).ToString(), "1.50");
  EXPECT_EQ(a.Subtract(a).ToString(), "0.00");
}

TEST(BigDecimalTest, Multiply) {
  BigDecimal a, b;
  ASSERT_TRUE(BigDecimal::FromString("12.34", &a));
  ASSERT_TRUE(BigDecimal::FromString("-5.6", &b));
  EXPECT_EQ(a.Multiply(b).ToString(), "-69.104");
}

TEST(BigDecimalTest, DivideRounds) {
  BigDecimal a, b;
  ASSERT_TRUE(BigDecimal::FromString("1", &a));
  ASSERT_TRUE(BigDecimal::FromString("3", &b));
  EXPECT_EQ(a.Divide(b, 4).ToString(), "0.3333");
  ASSERT_TRUE(BigDecimal::FromString("2", &b));
  EXPECT_EQ(a.Divide(b, 2).ToString(), "0.50");
}

TEST(BigDecimalTest, LargeMagnitudes) {
  BigDecimal a, b;
  ASSERT_TRUE(
      BigDecimal::FromString("123456789012345678901234567890.12", &a));
  ASSERT_TRUE(BigDecimal::FromString("1", &b));
  EXPECT_EQ(a.Add(b).ToString(), "123456789012345678901234567891.12");
}

TEST(BigDecimalTest, ToDecimal128RoundTrip) {
  BigDecimal a;
  ASSERT_TRUE(BigDecimal::FromString("-9876543.21", &a));
  Decimal128 d;
  ASSERT_TRUE(a.ToDecimal128(2, &d));
  EXPECT_EQ(d.ToString(2), "-9876543.21");
}

// Property test: BigDecimal arithmetic agrees with Decimal128 on random
// inputs that fit in both (this is the invariant that lets the baseline
// engine use BigDecimal while Photon uses native int128 — §5.6 semantics
// consistency).
TEST(BigDecimalTest, AgreesWithDecimal128OnRandomInputs) {
  Rng rng(42);
  for (int trial = 0; trial < 500; trial++) {
    int64_t av = rng.Uniform(-1000000000LL, 1000000000LL);
    int64_t bv = rng.Uniform(-1000000000LL, 1000000000LL);
    Decimal128 da = Decimal128::FromInt64(av);
    Decimal128 db = Decimal128::FromInt64(bv);
    BigDecimal ba = BigDecimal::FromDecimal128(da, 2);
    BigDecimal bb = BigDecimal::FromDecimal128(db, 2);

    // Add at aligned scale.
    Decimal128 native_sum = da + db;
    Decimal128 big_sum;
    ASSERT_TRUE(ba.Add(bb).ToDecimal128(2, &big_sum));
    EXPECT_EQ(native_sum.value(), big_sum.value()) << av << " + " << bv;

    // Multiply: scales add (2 + 2 = 4).
    Decimal128 native_mul = da * db;
    Decimal128 big_mul;
    ASSERT_TRUE(ba.Multiply(bb).ToDecimal128(4, &big_mul));
    EXPECT_EQ(native_mul.value(), big_mul.value()) << av << " * " << bv;

    // Divide at scale 6 (shift = 6 - 2 + 2).
    if (bv != 0) {
      Decimal128 native_div;
      ASSERT_TRUE(Decimal128::Divide(da, db, 6, &native_div));
      Decimal128 big_div;
      ASSERT_TRUE(bb.is_zero() ||
                  ba.Divide(bb, 6).ToDecimal128(6, &big_div));
      EXPECT_EQ(native_div.value(), big_div.value()) << av << " / " << bv;
    }
  }
}

}  // namespace
}  // namespace photon
