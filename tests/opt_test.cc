#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/compactor.h"
#include "exec/driver.h"
#include "expr/builder.h"
#include "opt/optimizer.h"
#include "opt/stats.h"
#include "plan/logical_plan.h"
#include "storage/ndv_sketch.h"
#include "testing/datagen.h"
#include "testing/differ.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_misordered.h"
#include "tpch/tpch_queries.h"
#include "tpch/tpch_sql.h"

namespace photon {
namespace {

constexpr double kTestScale = 0.002;

const tpch::TpchData& Data() {
  static const tpch::TpchData* data =
      new tpch::TpchData(tpch::GenerateTpch(kTestScale));
  return *data;
}

// ---------------------------------------------------------------------------
// Misordered-plan recovery: the optimizer must turn each deliberately
// pessimal Q3/Q5/Q9/Q10 join tree back into something that produces
// checksum-identical rows to the hand-ordered plan — single-task and
// morsel-parallel at 8 threads.
// ---------------------------------------------------------------------------

class MisorderedRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(MisorderedRecoveryTest, OptimizerRecoversHandOrderedResults) {
  int q = GetParam();
  Result<plan::PlanPtr> hand = tpch::TpchQuery(q, Data(), kTestScale);
  ASSERT_TRUE(hand.ok()) << hand.status().ToString();
  Result<plan::PlanPtr> mis = tpch::TpchMisorderedQuery(q, Data());
  ASSERT_TRUE(mis.ok()) << mis.status().ToString();

  exec::Driver single(1);
  Result<Table> want = single.RunSingleTask(*hand);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  // Sanity: the pessimal plan is *correct* even unoptimized.
  Result<Table> raw = single.RunSingleTask(*mis);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(testing::Canonicalize(*want), testing::Canonicalize(*raw))
      << "Q" << q << " misordered plan is not semantically equivalent";

  ExecContext ctx;
  ctx.optimizer = OptimizerPolicy::kOn;
  Result<Table> opt1 = single.RunSingleTask(*mis, ctx);
  ASSERT_TRUE(opt1.ok()) << opt1.status().ToString();
  EXPECT_EQ(testing::Canonicalize(*want), testing::Canonicalize(*opt1))
      << "Q" << q << " optimizer-recovered single-task results diverge";

  exec::Driver parallel(8);
  Result<Table> opt8 = parallel.Run(*mis, ctx);
  ASSERT_TRUE(opt8.ok()) << opt8.status().ToString();
  EXPECT_EQ(testing::Canonicalize(*want), testing::Canonicalize(*opt8))
      << "Q" << q << " optimizer-recovered 8-thread results diverge";
}

INSTANTIATE_TEST_SUITE_P(Queries, MisorderedRecoveryTest,
                         ::testing::Values(3, 5, 9, 10));

// ---------------------------------------------------------------------------
// All 22 hand-built TPC-H plans must be optimizer-invariant: optimizer on
// produces checksum-identical rows to optimizer off.
// ---------------------------------------------------------------------------

class TpchOptimizerInvarianceTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchOptimizerInvarianceTest, OptimizedPlanMatches) {
  int q = GetParam();
  Result<plan::PlanPtr> hand = tpch::TpchQuery(q, Data(), kTestScale);
  ASSERT_TRUE(hand.ok()) << hand.status().ToString();

  exec::Driver single(1);
  Result<Table> off = single.RunSingleTask(*hand);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  ExecContext ctx;
  ctx.optimizer = OptimizerPolicy::kOn;
  Result<Table> on = single.RunSingleTask(*hand, ctx);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_EQ(testing::Canonicalize(*off), testing::Canonicalize(*on))
      << "Q" << q << " diverges with the optimizer on";
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchOptimizerInvarianceTest,
                         ::testing::Range(1, 23));

// ---------------------------------------------------------------------------
// SQL-derived plans (whose join order is whatever the user typed) routed
// through the optimizer must also stay checksum-equal to the hand plans.
// ---------------------------------------------------------------------------

class TpchSqlOptimizerTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchSqlOptimizerTest, SqlPlanMatchesWithOptimizerOn) {
  int q = GetParam();
  Result<plan::PlanPtr> hand = tpch::TpchQuery(q, Data(), kTestScale);
  ASSERT_TRUE(hand.ok()) << hand.status().ToString();
  Result<plan::PlanPtr> from_sql = tpch::TpchSqlQuery(q, Data(), kTestScale);
  ASSERT_TRUE(from_sql.ok()) << from_sql.status().ToString();

  exec::Driver single(1);
  Result<Table> want = single.RunSingleTask(*hand);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  ExecContext ctx;
  ctx.optimizer = OptimizerPolicy::kOn;
  Result<Table> got = single.RunSingleTask(*from_sql, ctx);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(testing::Canonicalize(*want), testing::Canonicalize(*got))
      << "SQL Q" << q << " diverges with the optimizer on";
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchSqlOptimizerTest,
                         ::testing::Range(1, 23));

// ---------------------------------------------------------------------------
// Optimizer contract: purity and determinism.
// ---------------------------------------------------------------------------

TEST(OptimizerTest, PureAndDeterministic) {
  Result<plan::PlanPtr> mis = tpch::TpchMisorderedQuery(9, Data());
  ASSERT_TRUE(mis.ok());
  std::string before = (*mis)->ToString();
  plan::PlanPtr a = opt::Optimize(*mis);
  EXPECT_EQ(before, (*mis)->ToString()) << "Optimize mutated its input";
  plan::PlanPtr b = opt::Optimize(*mis);
  EXPECT_EQ(a->ToString(), b->ToString()) << "Optimize is nondeterministic";
  EXPECT_NE(a->ToString(), before) << "expected the pessimal Q9 to change";
}

TEST(OptimizerTest, PolicyOffLeavesPlanAlone) {
  Result<plan::PlanPtr> mis = tpch::TpchMisorderedQuery(3, Data());
  ASSERT_TRUE(mis.ok());
  opt::OptimizerOptions options;
  options.filter_pushdown = false;
  options.semi_join_reduction = false;
  options.join_reorder = false;
  options.prune_scan_columns = false;
  plan::PlanPtr out = opt::Optimize(*mis, options);
  EXPECT_EQ((*mis)->ToString(), out->ToString());
}

// ---------------------------------------------------------------------------
// Targeted rule checks over small hand-built plans.
// ---------------------------------------------------------------------------

/// Filters must never sink below a zero-key (scalar) aggregate: it emits
/// one row even over empty input. Found by differ mode 8 on the fuzz
/// corpus (seed 13); also pinned in fuzz_regression_test.cc.
TEST(OptimizerTest, ScalarAggregateBlocksPushdown) {
  const tpch::TpchData& d = Data();
  plan::PlanPtr scan = plan::Scan(&d.nation);
  plan::PlanPtr agg = plan::Aggregate(
      scan, {}, {},
      {AggregateSpec{AggKind::kCountStar, nullptr, "n"}});
  // Constant-false predicate above the scalar aggregate.
  plan::PlanPtr p = plan::Filter(
      agg, eb::Eq(eb::Lit(int64_t{1}), eb::Lit(int64_t{2})));

  exec::Driver single(1);
  Result<Table> off = single.RunSingleTask(p);
  ASSERT_TRUE(off.ok());
  ASSERT_EQ(off->num_rows(), 0);

  ExecContext ctx;
  ctx.optimizer = OptimizerPolicy::kOn;
  Result<Table> on = single.RunSingleTask(p, ctx);
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on->num_rows(), 0)
      << "constant filter leaked below a scalar aggregate";
}

TEST(OptimizerTest, PushdownMergesIntoDeltaScanPredicate) {
  ObjectStore store;
  testing::DataGen gen(42);
  Schema schema = gen.RandomSchema("t_", 3, 3);
  Table table = gen.RandomTable(schema, 500);
  auto snapshot = gen.WriteDelta(&store, "/opt/pushdown", table);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  plan::PlanPtr scan = plan::DeltaScan(&store, *snapshot);
  ExprPtr pred = eb::Le(eb::Col(0, scan->output_schema.field(0).type),
                        eb::Lit(int64_t{10}));
  plan::PlanPtr p = plan::Filter(scan, pred);

  plan::PlanPtr optimized = opt::Optimize(p);
  EXPECT_EQ(optimized->kind, plan::PlanKind::kDeltaScan)
      << "filter was not merged into the scan:\n"
      << optimized->ToString();
  EXPECT_NE(optimized->scan_predicate, nullptr);

  exec::Driver single(1);
  Result<Table> off = single.RunSingleTask(p);
  ASSERT_TRUE(off.ok());
  Result<Table> on = single.RunSingleTask(optimized);
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(testing::Canonicalize(*off), testing::Canonicalize(*on));
}

TEST(OptimizerTest, ProjectionNarrowsDeltaScanColumns) {
  ObjectStore store;
  testing::DataGen gen(7);
  Schema schema = gen.RandomSchema("t_", 5, 5);
  Table table = gen.RandomTable(schema, 300);
  auto snapshot = gen.WriteDelta(&store, "/opt/prune", table);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  plan::PlanPtr scan = plan::DeltaScan(&store, *snapshot);
  plan::PlanPtr p = plan::Project(
      scan, {eb::Col(1, scan->output_schema.field(1).type)}, {"only"});

  plan::PlanPtr optimized = opt::Optimize(p);
  const plan::PlanNode* node = optimized.get();
  while (node->kind != plan::PlanKind::kDeltaScan) {
    ASSERT_FALSE(node->children.empty());
    node = node->children[0].get();
  }
  EXPECT_EQ(node->scan_columns, std::vector<int>{1})
      << "scan not narrowed:\n"
      << optimized->ToString();

  exec::Driver single(1);
  Result<Table> off = single.RunSingleTask(p);
  ASSERT_TRUE(off.ok());
  Result<Table> on = single.RunSingleTask(optimized);
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(testing::Canonicalize(*off), testing::Canonicalize(*on));
}

// ---------------------------------------------------------------------------
// Statistics plumbing: NDV sketches and snapshot-derived TableStats.
// ---------------------------------------------------------------------------

TEST(NdvSketchTest, EstimatesWithinHllError) {
  NdvSketch sketch;
  Rng rng(99);
  constexpr int kDistinct = 5000;
  for (int i = 0; i < kDistinct; i++) {
    uint64_t h = rng.Next();
    sketch.Add(h);
    sketch.Add(h);  // duplicates must not move the estimate
  }
  double est = sketch.Estimate();
  // 256 registers -> ~6.5% standard error; allow 4 sigma.
  EXPECT_GT(est, kDistinct * 0.74);
  EXPECT_LT(est, kDistinct * 1.26);
}

TEST(NdvSketchTest, MergeMatchesUnion) {
  NdvSketch a, b, both;
  Rng rng(123);
  for (int i = 0; i < 2000; i++) {
    uint64_t h = rng.Next();
    if (i % 2 == 0) a.Add(h);
    if (i % 2 == 1) b.Add(h);
    both.Add(h);
  }
  a.Merge(b);
  EXPECT_EQ(a, both);
}

TEST(TableStatsTest, DeltaScanCarriesSnapshotStats) {
  ObjectStore store;
  testing::DataGen gen(5);
  Schema schema = gen.RandomSchema("t_", 3, 3);
  Table table = gen.RandomTable(schema, 400);
  auto snapshot = gen.WriteDelta(&store, "/opt/stats", table);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  plan::PlanPtr scan = plan::DeltaScan(&store, *snapshot);
  ASSERT_NE(scan->stats, nullptr);
  EXPECT_EQ(scan->stats->row_count, table.num_rows());
  ASSERT_EQ(static_cast<int>(scan->stats->columns.size()),
            scan->output_schema.num_fields());
  // Key column 0 is distinct-ish in generated tables; the sketch estimate
  // must at least be present and positive.
  EXPECT_GT(scan->stats->columns[0].ndv, 0);
  EXPECT_TRUE(scan->stats->columns[0].has_min_max);

  opt::PlanEstimate est = opt::EstimatePlan(*scan);
  EXPECT_EQ(est.rows, static_cast<double>(table.num_rows()));
}

TEST(TableStatsTest, CompactionPreservesSnapshotStats) {
  // Rewrite-path adds persist the same zone maps + HLL NDV sketches as
  // Append, so StatsFromSnapshot must reconstruct identical statistics
  // after the compactor has coalesced the small files (HLL register merge
  // is a pure function of the value set, so estimates match exactly).
  ObjectStore store;
  testing::DataGen gen(11);
  Schema schema = gen.RandomSchema("c_", 3, 3);
  auto created = DeltaTable::Create(&store, "/opt/compact-stats", schema);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  DeltaTable* table = created->get();
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(table->Append(gen.RandomTable(schema, 50)).ok());
  }
  auto before_snap = table->Snapshot();
  ASSERT_TRUE(before_snap.ok());
  plan::TableStatsPtr before = plan::StatsFromSnapshot(*before_snap);

  exec::Compactor::Options options;
  options.small_file_rows = 100;
  options.target_file_rows = 300;
  exec::Compactor compactor(table, options);
  ASSERT_TRUE(compactor.RunOncePass().ok());
  ASSERT_GT(compactor.stats().files_compacted, 0);

  auto after_snap = table->Snapshot();
  ASSERT_TRUE(after_snap.ok());
  ASSERT_LT(after_snap->files.size(), before_snap->files.size());
  plan::TableStatsPtr after = plan::StatsFromSnapshot(*after_snap);

  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->row_count, before->row_count);
  ASSERT_EQ(after->columns.size(), before->columns.size());
  for (size_t c = 0; c < before->columns.size(); c++) {
    const plan::ColumnStats& b = before->columns[c];
    const plan::ColumnStats& a = after->columns[c];
    EXPECT_EQ(a.ndv, b.ndv) << "column " << c;
    EXPECT_EQ(a.null_count, b.null_count) << "column " << c;
    EXPECT_EQ(a.has_min_max, b.has_min_max) << "column " << c;
    if (b.has_min_max) {
      EXPECT_TRUE(a.min.Equals(b.min)) << "column " << c;
      EXPECT_TRUE(a.max.Equals(b.max)) << "column " << c;
    }
  }
}

TEST(TableStatsTest, ComputeTableStatsIsExact) {
  const tpch::TpchData& d = Data();
  plan::TableStatsPtr stats = plan::ComputeTableStats(d.nation);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->row_count, d.nation.num_rows());
  // n_nationkey is unique.
  EXPECT_DOUBLE_EQ(stats->columns[0].ndv,
                   static_cast<double>(d.nation.num_rows()));
}

}  // namespace
}  // namespace photon
