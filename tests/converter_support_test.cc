#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/builder.h"
#include "expr/function_registry.h"
#include "plan/converter.h"
#include "plan/logical_plan.h"

namespace photon {
namespace {

/// Paper §3.5: "Photon features are being continuously added to reduce
/// these transitions." This suite sweeps support configurations and checks
/// the invariants of the conversion rule:
///   - results never change, whatever subset of operators is supported;
///   - transitions appear exactly at the photon/legacy boundaries;
///   - a Photon subtree always starts at a scan (no mid-plan conversion).
class SupportSweepTest : public ::testing::TestWithParam<int> {};

Table MakeData() {
  Schema schema({Field("g", DataType::Int64()),
                 Field("v", DataType::Int64()),
                 Field("s", DataType::String())});
  TableBuilder builder(schema);
  Rng rng(17);
  for (int i = 0; i < 3000; i++) {
    builder.AppendRow({Value::Int64(rng.Uniform(0, 20)),
                       Value::Int64(rng.Uniform(-50, 50)),
                       Value::String(rng.NextAsciiString(6))});
  }
  return builder.Finish();
}

plan::PlanPtr MakePlan(const Table* t) {
  plan::PlanPtr p = plan::Scan(t);
  p = plan::Filter(p, eb::Gt(plan::ColOf(p, "v"), eb::Lit(int64_t{-20})));
  p = plan::Project(
      p,
      {plan::ColOf(p, "g"), plan::ColOf(p, "v"),
       eb::Call("upper", {plan::ColOf(p, "s")})},
      {"g", "v", "S"});
  p = plan::Aggregate(
      p, {plan::ColOf(p, "g")}, {"g"},
      {AggregateSpec{AggKind::kSum, plan::ColOf(p, "v"), "sum_v"},
       AggregateSpec{AggKind::kMax, plan::ColOf(p, "S"), "max_s"}});
  p = plan::Sort(p, {SortKey{plan::ColOf(p, "g"), true, true}});
  p = plan::Limit(p, 15);
  return p;
}

TEST_P(SupportSweepTest, AnySupportSubsetPreservesResults) {
  // Bit i of the parameter disables support for plan kind i.
  int mask = GetParam();
  Table data = MakeData();
  plan::PlanPtr p = MakePlan(&data);

  Result<baseline::RowOperatorPtr> reference = plan::CompileBaseline(p);
  ASSERT_TRUE(reference.ok());
  Result<Table> expected = baseline::CollectAllRows(reference->get());
  ASSERT_TRUE(expected.ok());

  auto support = [mask](const plan::PlanNode& node) {
    return (mask & (1 << static_cast<int>(node.kind))) == 0;
  };
  Result<plan::ConversionResult> converted =
      plan::ConvertPlan(p, {}, support);
  ASSERT_TRUE(converted.ok());
  Result<Table> got = baseline::CollectAllRows(converted->root.get());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->ToRows(), expected->ToRows()) << "mask=" << mask;

  // Structural invariants.
  EXPECT_EQ(converted->photon_nodes + converted->legacy_nodes, 6);
  if (converted->photon_nodes == 0) {
    EXPECT_EQ(converted->transitions, 0);
    EXPECT_EQ(converted->adapters, 0);
  } else {
    EXPECT_GE(converted->transitions, 1);
    EXPECT_GE(converted->adapters, 1);
  }
  // A linear plan has at most one photon/legacy boundary.
  EXPECT_LE(converted->transitions, 1);
}

// Sweep disabling each single kind plus a few combinations. Kinds:
// kScan=0, kDeltaScan=1, kFilter=2, kProject=3, kAggregate=4, kJoin=5,
// kSort=6, kLimit=7.
INSTANTIATE_TEST_SUITE_P(
    Masks, SupportSweepTest,
    ::testing::Values(0, 1 << 0, 1 << 2, 1 << 3, 1 << 4, 1 << 6, 1 << 7,
                      (1 << 4) | (1 << 6), (1 << 2) | (1 << 7), 0xFF));

TEST(FunctionSupportTest, UnknownFunctionMeansFallback) {
  // The paper's conversion checks the function registry to decide support;
  // model that with a SupportFn that rejects projects using unregistered
  // functions. Here everything is registered, so assert the registry knows
  // the paper's headline expressions.
  FunctionRegistry& reg = FunctionRegistry::Instance();
  for (const char* fn :
       {"upper", "lower", "substr", "length", "concat", "like", "trim",
        "sqrt", "abs", "year", "month", "day", "date_add", "coalesce",
        "left", "right", "instr", "split_part", "initcap", "translate",
        "chr", "md5ish"}) {
    EXPECT_TRUE(reg.IsSupported(fn)) << fn;
  }
  EXPECT_GE(reg.FunctionNames().size(), 45u);
}

}  // namespace
}  // namespace photon
