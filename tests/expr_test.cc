#include "expr/expr.h"

#include <gtest/gtest.h>

#include <limits>

#include "expr/builder.h"
#include "expr/function_registry.h"
#include "vector/table.h"

namespace photon {
namespace {

using eb::Col;
using eb::Lit;

/// The expression-table unit testing framework from §5.6 of the paper: a
/// test specifies input rows and an expression; the framework loads the
/// rows into column vectors and evaluates the expression under every
/// specialization — all rows active and a strict subset active — comparing
/// the vectorized result against the row-at-a-time interpreter (which is
/// also the baseline engine's evaluator, so this doubles as the
/// Photon-vs-DBR consistency check). It also plants sentinel values at
/// inactive positions and verifies kernels never overwrite them.
class ExpressionTableTest {
 public:
  ExpressionTableTest(Schema schema, std::vector<std::vector<Value>> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  void Check(const ExprPtr& expr) {
    CheckWithActiveSet(expr, /*use_subset=*/false);
    if (rows_.size() >= 2) CheckWithActiveSet(expr, /*use_subset=*/true);
  }

 private:
  void CheckWithActiveSet(const ExprPtr& expr, bool use_subset) {
    int n = static_cast<int>(rows_.size());
    ColumnBatch batch(schema_, n);
    for (int i = 0; i < n; i++) {
      for (int c = 0; c < schema_.num_fields(); c++) {
        batch.column(c)->SetValue(i, rows_[i][c]);
      }
    }
    batch.set_num_rows(n);

    std::vector<int32_t> active;
    if (use_subset) {
      for (int i = 0; i < n; i += 2) active.push_back(i);  // evens only
      std::memcpy(batch.mutable_pos_list(), active.data(),
                  active.size() * sizeof(int32_t));
      batch.SetActiveRows(static_cast<int>(active.size()));
    } else {
      batch.SetAllActive();
      for (int i = 0; i < n; i++) active.push_back(i);
    }

    EvalContext ctx;
    Result<ColumnVector*> result = expr->Evaluate(&batch, &ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << " in "
                             << expr->ToString();
    ColumnVector* vec = *result;

    for (int32_t row : active) {
      Result<Value> oracle = expr->EvaluateRow(rows_[row]);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      Value got = vec->GetValue(row);
      EXPECT_TRUE(got.Equals(*oracle))
          << expr->ToString() << " row " << row << ": vectorized="
          << got.ToString() << " oracle=" << oracle->ToString();
    }
  }

  Schema schema_;
  std::vector<std::vector<Value>> rows_;
};

Schema NumSchema() {
  return Schema({Field("a", DataType::Int32()),
                 Field("b", DataType::Int32()),
                 Field("x", DataType::Float64()),
                 Field("s", DataType::String())});
}

std::vector<std::vector<Value>> NumRows() {
  return {
      {Value::Int32(1), Value::Int32(10), Value::Float64(2.0),
       Value::String("hello")},
      {Value::Int32(-5), Value::Int32(3), Value::Float64(-1.5),
       Value::String("WORLD")},
      {Value::Null(), Value::Int32(7), Value::Float64(0.0), Value::Null()},
      {Value::Int32(42), Value::Null(), Value::Null(),
       Value::String("Caf\xC3\xA9")},
      {Value::Int32(0), Value::Int32(0), Value::Float64(9.0),
       Value::String("")},
      {Value::Int32(100), Value::Int32(-100), Value::Float64(16.0),
       Value::String("photon")},
  };
}

ExprPtr A() { return Col(0, DataType::Int32(), "a"); }
ExprPtr B() { return Col(1, DataType::Int32(), "b"); }
ExprPtr X() { return Col(2, DataType::Float64(), "x"); }
ExprPtr S() { return Col(3, DataType::String(), "s"); }

TEST(ExprTest, Arithmetic) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Add(A(), B()));
  t.Check(eb::Sub(A(), B()));
  t.Check(eb::Mul(A(), B()));
  t.Check(eb::Div(A(), B()));  // includes div by zero -> NULL
  t.Check(eb::Mod(A(), B()));
  t.Check(eb::Add(X(), X()));
  t.Check(eb::Div(X(), X()));
  t.Check(eb::Add(A(), Lit(int32_t{7})));
  // Mixed types promote.
  t.Check(eb::Add(A(), Lit(1.5)));
}

TEST(ExprTest, Comparisons) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Eq(A(), B()));
  t.Check(eb::Ne(A(), B()));
  t.Check(eb::Lt(A(), B()));
  t.Check(eb::Le(A(), B()));
  t.Check(eb::Gt(A(), Lit(int32_t{0})));
  t.Check(eb::Ge(X(), Lit(0.0)));
  t.Check(eb::Eq(S(), Lit("hello")));
  t.Check(eb::Lt(S(), Lit("photon")));
}

TEST(ExprTest, BooleanLogicThreeValued) {
  ExpressionTableTest t(NumSchema(), NumRows());
  ExprPtr p = eb::Gt(A(), Lit(int32_t{0}));   // NULL on row 2
  ExprPtr q = eb::Gt(B(), Lit(int32_t{0}));   // NULL on row 3
  t.Check(eb::And(p, q));
  t.Check(eb::Or(p, q));
  t.Check(eb::Not(p));
  t.Check(eb::And(eb::Not(p), eb::Or(p, q)));
}

TEST(ExprTest, IsNull) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::IsNull(A()));
  t.Check(eb::IsNotNull(A()));
  t.Check(eb::IsNull(S()));
}

TEST(ExprTest, Between) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Between(A(), Lit(int32_t{0}), Lit(int32_t{50})));
  t.Check(eb::Between(A(), B(), Lit(int32_t{1000})));
  t.Check(eb::Between(X(), Lit(-2.0), Lit(3.0)));
  t.Check(eb::Between(S(), Lit("a"), Lit("z")));
}

TEST(ExprTest, CaseWhen) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::If(eb::Gt(A(), Lit(int32_t{0})), Lit("pos"), Lit("nonpos")));
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  branches.emplace_back(eb::Gt(A(), Lit(int32_t{50})), Lit(int32_t{2}));
  branches.emplace_back(eb::Gt(A(), Lit(int32_t{0})), Lit(int32_t{1}));
  t.Check(eb::CaseWhen(std::move(branches), Lit(int32_t{0})));
  // No ELSE -> NULL.
  std::vector<std::pair<ExprPtr, ExprPtr>> b2;
  b2.emplace_back(eb::Gt(A(), Lit(int32_t{0})), eb::Add(A(), B()));
  t.Check(eb::CaseWhen(std::move(b2), nullptr));
}

TEST(ExprTest, InList) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::In(A(), {Value::Int32(1), Value::Int32(42)}));
  t.Check(eb::In(A(), {Value::Int32(999)}));
  t.Check(eb::In(A(), {Value::Int32(1), Value::Null()}));
  t.Check(eb::In(S(), {Value::String("hello"), Value::String("photon")}));
}

TEST(ExprTest, StringFunctions) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Call("upper", {S()}));
  t.Check(eb::Call("lower", {S()}));
  t.Check(eb::Call("upper_generic", {S()}));
  t.Check(eb::Call("length", {S()}));
  t.Check(eb::Call("octet_length", {S()}));
  t.Check(eb::Call("trim", {S()}));
  t.Check(eb::Call("reverse", {S()}));
  t.Check(eb::Call("substr", {S(), Lit(int32_t{2}), Lit(int32_t{3})}));
  t.Check(eb::Call("substr", {S(), Lit(int32_t{-3})}));
  t.Check(eb::Call("concat", {S(), Lit("!"), S()}));
  t.Check(eb::Like(S(), "h%o"));
  t.Check(eb::Like(S(), "%orl%"));
  t.Check(eb::Like(S(), "_ello"));
  t.Check(eb::Call("starts_with", {S(), Lit("he")}));
  t.Check(eb::Call("ends_with", {S(), Lit("o")}));
  t.Check(eb::Call("contains", {S(), Lit("or")}));
  t.Check(eb::Call("replace", {S(), Lit("l"), Lit("L")}));
  t.Check(eb::Call("lpad", {S(), Lit(int32_t{10}), Lit("*")}));
  t.Check(eb::Call("rpad", {S(), Lit(int32_t{3}), Lit("*")}));
  t.Check(eb::Call("repeat", {S(), Lit(int32_t{2})}));
  t.Check(eb::Call("ascii", {S()}));
}

TEST(ExprTest, UpperMatchesGenericOnAsciiAndUnicode) {
  // The adaptive ASCII path and the generic codepoint path must agree.
  ExpressionTableTest t(
      Schema({Field("s", DataType::String())}),
      {{Value::String("all ascii text")},
       {Value::String("MiXeD CaSe 123!")},
       {Value::String("caf\xC3\xA9")},            // é -> É
       {Value::String("\xCE\xB1\xCE\xB2")},       // αβ -> ΑΒ
       {Value::String("\xD0\xBF\xD1\x80")},       // Cyrillic
       {Value::Null()}});
  ExprPtr s = Col(0, DataType::String(), "s");
  t.Check(eb::Call("upper", {s}));
  t.Check(eb::Call("lower", {eb::Call("upper", {s})}));
}

TEST(ExprTest, MathFunctions) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Call("sqrt", {eb::Call("abs", {X()})}));
  t.Check(eb::Call("abs", {A()}));
  t.Check(eb::Call("negate", {A()}));
  t.Check(eb::Call("floor", {X()}));
  t.Check(eb::Call("ceil", {X()}));
  t.Check(eb::Call("round", {X()}));
  t.Check(eb::Call("exp", {X()}));
  t.Check(eb::Call("sign", {X()}));
  t.Check(eb::Call("pow", {X(), Lit(2.0)}));
}

TEST(ExprTest, DateFunctions) {
  Schema schema({Field("d", DataType::Date32())});
  std::vector<std::vector<Value>> rows = {
      {Value::Date32(0)},       // 1970-01-01
      {Value::Date32(19358)},   // 2023-01-01
      {Value::Date32(-1)},      // 1969-12-31
      {Value::Null()},
      {Value::Date32(11016)},   // 2000-02-29 (leap)
  };
  ExpressionTableTest t(schema, rows);
  ExprPtr d = Col(0, DataType::Date32(), "d");
  t.Check(eb::Call("year", {d}));
  t.Check(eb::Call("month", {d}));
  t.Check(eb::Call("day", {d}));
  t.Check(eb::Call("date_add", {d, Lit(int32_t{30})}));
  t.Check(eb::Call("date_sub", {d, Lit(int32_t{365})}));
  t.Check(eb::Call("add_months", {d, Lit(int32_t{13})}));
  t.Check(eb::Call("datediff", {d, eb::DateLit("2020-06-15")}));
  t.Check(eb::Call("date_format", {d}));
  t.Check(eb::Ge(d, eb::DateLit("1999-12-31")));
  t.Check(eb::Between(d, eb::DateLit("1970-01-01"), eb::DateLit("2024-01-01")));
}

TEST(ExprTest, Casts) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Cast(A(), DataType::Int64()));
  t.Check(eb::Cast(A(), DataType::Float64()));
  t.Check(eb::Cast(X(), DataType::Int32()));
  t.Check(eb::Cast(X(), DataType::Int64()));
  t.Check(eb::Cast(A(), DataType::String()));
  t.Check(eb::Cast(A(), DataType::Decimal(12, 2)));
  t.Check(eb::Cast(S(), DataType::Int32()));  // non-numeric -> NULL
}

TEST(ExprTest, DecimalArithmetic) {
  Schema schema({Field("p", DataType::Decimal(12, 2)),
                 Field("q", DataType::Decimal(12, 2))});
  auto dec = [](const std::string& s) {
    Decimal128 d;
    PHOTON_CHECK(Decimal128::FromString(s, 2, &d));
    return Value::Decimal(d);
  };
  std::vector<std::vector<Value>> rows = {
      {dec("10.00"), dec("3.00")},   {dec("-5.25"), dec("2.50")},
      {dec("0.00"), dec("0.00")},    {Value::Null(), dec("1.00")},
      {dec("999999.99"), dec("0.01")},
  };
  ExpressionTableTest t(schema, rows);
  ExprPtr p = Col(0, DataType::Decimal(12, 2), "p");
  ExprPtr q = Col(1, DataType::Decimal(12, 2), "q");
  t.Check(eb::Add(p, q));
  t.Check(eb::Sub(p, q));
  t.Check(eb::Mul(p, q));
  t.Check(eb::Div(p, q));  // includes 0/0 -> NULL
  t.Check(eb::Eq(p, q));
  t.Check(eb::Lt(p, q));
  // Decimal with int literal: int is widened.
  t.Check(eb::Mul(p, eb::Sub(Lit(int32_t{1}), q)));
  // TPC-H Q1 shape: l_extendedprice * (1 - l_discount) * (1 + l_tax).
  t.Check(eb::Mul(eb::Mul(p, eb::Sub(Lit(int32_t{1}), q)),
                  eb::Add(Lit(int32_t{1}), q)));
}

TEST(ExprTest, DecimalHighPrecisionUsesBigDecimalPathConsistently) {
  // Result precision > 18 forces the row oracle (baseline) through
  // BigDecimal; results must still match the vectorized int128 path.
  Schema schema({Field("p", DataType::Decimal(22, 4)),
                 Field("q", DataType::Decimal(22, 4))});
  auto dec = [](const std::string& s) {
    Decimal128 d;
    PHOTON_CHECK(Decimal128::FromString(s, 4, &d));
    return Value::Decimal(d);
  };
  std::vector<std::vector<Value>> rows = {
      {dec("123456789012345.6789"), dec("987654321.1234")},
      {dec("-999999999999.9999"), dec("0.0001")},
      {dec("1.0000"), dec("3.0000")},
      {Value::Null(), dec("2.0000")},
  };
  ExpressionTableTest t(schema, rows);
  ExprPtr p = Col(0, DataType::Decimal(22, 4), "p");
  ExprPtr q = Col(1, DataType::Decimal(22, 4), "q");
  t.Check(eb::Add(p, q));
  t.Check(eb::Sub(p, q));
  t.Check(eb::Div(p, q));
}

TEST(ExprTest, FilterBatchNarrowsPositionList) {
  Schema schema({Field("a", DataType::Int32())});
  ColumnBatch batch(schema, 8);
  for (int i = 0; i < 8; i++) batch.column(0)->data<int32_t>()[i] = i;
  batch.column(0)->SetNull(6);
  batch.set_num_rows(8);
  batch.SetAllActive();

  EvalContext ctx;
  ExprPtr pred = eb::Ge(Col(0, DataType::Int32()), Lit(int32_t{3}));
  Result<int> n = FilterBatch(*pred, &batch, &ctx);
  ASSERT_TRUE(n.ok());
  // rows 3,4,5,7 pass; row 6 is NULL -> dropped.
  EXPECT_EQ(*n, 4);
  EXPECT_EQ(batch.ActiveRow(0), 3);
  EXPECT_EQ(batch.ActiveRow(3), 7);

  // Filtering an already-filtered batch composes.
  ExprPtr pred2 = eb::Lt(Col(0, DataType::Int32()), Lit(int32_t{5}));
  n = FilterBatch(*pred2, &batch, &ctx);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2);  // rows 3, 4
}

TEST(ExprTest, InactiveRowsNeverOverwritten) {
  // §4.3: kernels must not write at inactive positions, since those may
  // hold live data for other consumers.
  Schema schema({Field("a", DataType::Int32())});
  ColumnBatch batch(schema, 8);
  for (int i = 0; i < 8; i++) batch.column(0)->data<int32_t>()[i] = i;
  batch.set_num_rows(8);
  int32_t* pos = batch.mutable_pos_list();
  pos[0] = 1;
  pos[1] = 3;
  batch.SetActiveRows(2);

  EvalContext ctx;
  ExprPtr expr = eb::Add(Col(0, DataType::Int32()), Lit(int32_t{100}));
  Result<ColumnVector*> result = expr->Evaluate(&batch, &ctx);
  ASSERT_TRUE(result.ok());
  ColumnVector* vec = *result;
  // Plant sentinels at inactive positions of the output, re-evaluate with
  // the same context (vector is recycled), and check sentinels survive.
  // Here we directly verify: only rows 1 and 3 were written.
  EXPECT_EQ(vec->data<int32_t>()[1], 101);
  EXPECT_EQ(vec->data<int32_t>()[3], 103);
  // Inactive positions hold whatever the fresh buffer held; write
  // sentinels and evaluate CASE WHEN through the same rows to double-check
  // the conditional path too.
  vec->data<int32_t>()[0] = -777;
  ExprPtr cw = eb::If(eb::Gt(Col(0, DataType::Int32()), Lit(int32_t{2})),
                      Lit(int32_t{1}), Lit(int32_t{0}));
  Result<ColumnVector*> r2 = cw->Evaluate(&batch, &ctx);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(vec->data<int32_t>()[0], -777);
}

TEST(ExprTest, Coalesce) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Call("coalesce", {A(), B()}));
  t.Check(eb::Call("coalesce", {A(), Lit(int32_t{-1})}));
  t.Check(eb::Call("nullif", {A(), Lit(int32_t{42})}));
}

// Integer overflow/edge semantics must be identical between the vectorized
// kernels and the row oracle (which doubles as the baseline engine):
// Java-style wrapping add/sub/mul, guarded INT64_MIN / -1, x % -1 == 0,
// and NULL on division or modulo by zero.
TEST(ExprTest, IntegerOverflowEdges) {
  Schema schema(
      {Field("a", DataType::Int64()), Field("b", DataType::Int64())});
  int64_t min64 = std::numeric_limits<int64_t>::min();
  int64_t max64 = std::numeric_limits<int64_t>::max();
  std::vector<std::vector<Value>> rows = {
      {Value::Int64(max64), Value::Int64(1)},
      {Value::Int64(min64), Value::Int64(-1)},
      {Value::Int64(min64), Value::Int64(min64)},
      {Value::Int64(max64), Value::Int64(max64)},
      {Value::Int64(min64), Value::Int64(0)},
      {Value::Int64(7), Value::Int64(-1)},
      {Value::Null(), Value::Int64(-1)},
  };
  ExpressionTableTest t(schema, rows);
  ExprPtr a = Col(0, DataType::Int64(), "a");
  ExprPtr b = Col(1, DataType::Int64(), "b");
  t.Check(eb::Add(a, b));  // INT64_MAX + 1 wraps
  t.Check(eb::Sub(a, b));  // INT64_MIN - 1 wraps
  t.Check(eb::Mul(a, b));
  t.Check(eb::Div(a, b));  // x / 0 -> NULL; INT64_MIN / -1 must not SIGFPE
  t.Check(eb::Mod(a, b));  // x % 0 -> NULL; x % -1 == 0

  auto row_val = [&](const ExprPtr& e, int64_t x, int64_t y) {
    Result<Value> v = e->EvaluateRow({Value::Int64(x), Value::Int64(y)});
    PHOTON_CHECK(v.ok());
    return *v;
  };
  EXPECT_EQ(row_val(eb::Add(a, b), max64, 1).i64(), min64);
  EXPECT_EQ(row_val(eb::Sub(a, b), min64, 1).i64(), max64);
  EXPECT_EQ(row_val(eb::Div(a, b), min64, -1).i64(), min64);  // wraps
  EXPECT_EQ(row_val(eb::Mod(a, b), min64, -1).i64(), 0);
  EXPECT_TRUE(row_val(eb::Div(a, b), 5, 0).is_null());
  EXPECT_TRUE(row_val(eb::Mod(a, b), 5, 0).is_null());
}

// Decimal arithmetic past 38 digits of precision finalizes to NULL (Spark
// non-ANSI) on both paths — the vectorized engine routes these shapes
// through the checked BigDecimal fallback rather than wrapping int128.
TEST(ExprTest, DecimalOverflowEdgesAreNull) {
  Schema schema({Field("p", DataType::Decimal(38, 2)),
                 Field("q", DataType::Decimal(38, 2))});
  Value near_max =
      Value::Decimal(Decimal128(Decimal128::MaxValueForPrecision(38) - 7));
  Value big = Value::Decimal(Decimal128(Decimal128::PowerOfTen(30)));
  Value cent = Value::Decimal(Decimal128(1));  // 0.01 at scale 2
  std::vector<std::vector<Value>> rows = {
      {near_max, near_max},
      {near_max, cent},
      {big, big},
      {near_max, Value::Decimal(Decimal128(-Decimal128::PowerOfTen(20)))},
      {Value::Null(), near_max},
  };
  ExpressionTableTest t(schema, rows);
  ExprPtr p = Col(0, DataType::Decimal(38, 2), "p");
  ExprPtr q = Col(1, DataType::Decimal(38, 2), "q");
  t.Check(eb::Add(p, q));
  t.Check(eb::Sub(p, q));
  t.Check(eb::Mul(p, q));
  t.Check(eb::Div(p, q));

  auto null_row = [&](const ExprPtr& e, const Value& x, const Value& y) {
    Result<Value> v = e->EvaluateRow({x, y});
    PHOTON_CHECK(v.ok());
    return v->is_null();
  };
  EXPECT_TRUE(null_row(eb::Add(p, q), near_max, near_max));
  // 1e28 * 1e28 = 1e56: far past int128 range, exercising the multiply
  // wraparound guard in BigDecimal::ToDecimal128.
  EXPECT_TRUE(null_row(eb::Mul(p, q), big, big));
  EXPECT_TRUE(null_row(eb::Div(p, q), near_max, cent));
  EXPECT_FALSE(null_row(eb::Sub(p, q), near_max, near_max));  // zero: fine
}

// substr follows Spark's UTF8String.substringSQL: 1-based, start 0 behaves
// like start 1, negative start counts from the end, begin+len wraps in
// 32-bit arithmetic (INT32_MAX means "to the end"), and offsets count
// codepoints, not bytes.
TEST(ExprTest, SubstrSparkSemantics) {
  auto sub3 = [](const char* s, int32_t start, int32_t len) {
    ExprPtr e = eb::Call("substr", {Lit(s), Lit(start), Lit(len)});
    Result<Value> v = e->EvaluateRow({});
    PHOTON_CHECK(v.ok());
    return v->str();
  };
  auto sub2 = [](const char* s, int32_t start) {
    ExprPtr e = eb::Call("substr", {Lit(s), Lit(start)});
    Result<Value> v = e->EvaluateRow({});
    PHOTON_CHECK(v.ok());
    return v->str();
  };
  EXPECT_EQ(sub3("hello", 1, 3), "hel");
  EXPECT_EQ(sub3("hello", 0, 3), "hel");  // start 0: length still from pos 1
  EXPECT_EQ(sub2("hello", 2), "ello");
  EXPECT_EQ(sub2("hello", -3), "llo");
  EXPECT_EQ(sub3("hello", -3, 2), "ll");
  EXPECT_EQ(sub3("hello", -10, 3), "");   // begin deep below the start
  EXPECT_EQ(sub3("hello", 7, 2), "");     // start past the end
  EXPECT_EQ(sub3("hello", 3, -1), "");    // non-positive length
  EXPECT_EQ(sub3("hello", 3, 0), "");
  int32_t max32 = std::numeric_limits<int32_t>::max();
  EXPECT_EQ(sub3("hello", 2, max32), "ello");      // sentinel: to the end
  EXPECT_EQ(sub3("hello", 3, max32 - 1), "");      // begin+len wraps int32
  // Multi-byte codepoints: "Café€" is 5 chars in 8 bytes.
  const char* cafe = "Caf\xC3\xA9\xE2\x82\xAC";
  EXPECT_EQ(sub3(cafe, 4, 2), "\xC3\xA9\xE2\x82\xAC");
  EXPECT_EQ(sub3(cafe, -2, 1), "\xC3\xA9");
  EXPECT_EQ(sub2(cafe, -1), "\xE2\x82\xAC");
}

TEST(FunctionRegistryTest, KnowsItsFunctions) {
  FunctionRegistry& reg = FunctionRegistry::Instance();
  EXPECT_TRUE(reg.IsSupported("upper"));
  EXPECT_TRUE(reg.IsSupported("sqrt"));
  EXPECT_TRUE(reg.IsSupported("date_add"));
  EXPECT_FALSE(reg.IsSupported("no_such_function"));
  // The registry drives Photon-support decisions for plan conversion, so
  // it must expose its full catalog.
  EXPECT_GE(reg.FunctionNames().size(), 30u);
}

TEST(EvalContextTest, RecyclesScratchVectors) {
  EvalContext ctx;
  ColumnVector* v1 = ctx.NewVector(DataType::Int32(), 1024);
  ctx.ResetPerBatch();
  ColumnVector* v2 = ctx.NewVector(DataType::Int32(), 1024);
  EXPECT_EQ(v1, v2);  // §4.5: fixed allocation count per batch -> reuse
  EXPECT_EQ(ctx.pool_hits(), 1);
  EXPECT_EQ(ctx.pool_misses(), 1);
  // Different shape -> different vector.
  ColumnVector* v3 = ctx.NewVector(DataType::Int64(), 1024);
  EXPECT_NE(static_cast<void*>(v2), static_cast<void*>(v3));
}

}  // namespace
}  // namespace photon
