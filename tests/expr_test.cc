#include "expr/expr.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "expr/builder.h"
#include "expr/function_registry.h"
#include "expr/fusion.h"
#include "plan/logical_plan.h"
#include "vector/table.h"

namespace photon {
namespace {

using eb::Col;
using eb::Lit;

/// The expression-table unit testing framework from §5.6 of the paper: a
/// test specifies input rows and an expression; the framework loads the
/// rows into column vectors and evaluates the expression under every
/// specialization — all rows active and a strict subset active — comparing
/// the vectorized result against the row-at-a-time interpreter (which is
/// also the baseline engine's evaluator, so this doubles as the
/// Photon-vs-DBR consistency check). It also plants sentinel values at
/// inactive positions and verifies kernels never overwrite them.
class ExpressionTableTest {
 public:
  ExpressionTableTest(Schema schema, std::vector<std::vector<Value>> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  void Check(const ExprPtr& expr) {
    CheckWithActiveSet(expr, /*use_subset=*/false);
    if (rows_.size() >= 2) CheckWithActiveSet(expr, /*use_subset=*/true);
  }

 private:
  void CheckWithActiveSet(const ExprPtr& expr, bool use_subset) {
    int n = static_cast<int>(rows_.size());
    ColumnBatch batch(schema_, n);
    for (int i = 0; i < n; i++) {
      for (int c = 0; c < schema_.num_fields(); c++) {
        batch.column(c)->SetValue(i, rows_[i][c]);
      }
    }
    batch.set_num_rows(n);

    std::vector<int32_t> active;
    if (use_subset) {
      for (int i = 0; i < n; i += 2) active.push_back(i);  // evens only
      std::memcpy(batch.mutable_pos_list(), active.data(),
                  active.size() * sizeof(int32_t));
      batch.SetActiveRows(static_cast<int>(active.size()));
    } else {
      batch.SetAllActive();
      for (int i = 0; i < n; i++) active.push_back(i);
    }

    EvalContext ctx;
    Result<ColumnVector*> result = expr->Evaluate(&batch, &ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString() << " in "
                             << expr->ToString();
    ColumnVector* vec = *result;

    for (int32_t row : active) {
      Result<Value> oracle = expr->EvaluateRow(rows_[row]);
      ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
      Value got = vec->GetValue(row);
      EXPECT_TRUE(got.Equals(*oracle))
          << expr->ToString() << " row " << row << ": vectorized="
          << got.ToString() << " oracle=" << oracle->ToString();
    }
  }

  Schema schema_;
  std::vector<std::vector<Value>> rows_;
};

Schema NumSchema() {
  return Schema({Field("a", DataType::Int32()),
                 Field("b", DataType::Int32()),
                 Field("x", DataType::Float64()),
                 Field("s", DataType::String())});
}

std::vector<std::vector<Value>> NumRows() {
  return {
      {Value::Int32(1), Value::Int32(10), Value::Float64(2.0),
       Value::String("hello")},
      {Value::Int32(-5), Value::Int32(3), Value::Float64(-1.5),
       Value::String("WORLD")},
      {Value::Null(), Value::Int32(7), Value::Float64(0.0), Value::Null()},
      {Value::Int32(42), Value::Null(), Value::Null(),
       Value::String("Caf\xC3\xA9")},
      {Value::Int32(0), Value::Int32(0), Value::Float64(9.0),
       Value::String("")},
      {Value::Int32(100), Value::Int32(-100), Value::Float64(16.0),
       Value::String("photon")},
  };
}

ExprPtr A() { return Col(0, DataType::Int32(), "a"); }
ExprPtr B() { return Col(1, DataType::Int32(), "b"); }
ExprPtr X() { return Col(2, DataType::Float64(), "x"); }
ExprPtr S() { return Col(3, DataType::String(), "s"); }

TEST(ExprTest, Arithmetic) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Add(A(), B()));
  t.Check(eb::Sub(A(), B()));
  t.Check(eb::Mul(A(), B()));
  t.Check(eb::Div(A(), B()));  // includes div by zero -> NULL
  t.Check(eb::Mod(A(), B()));
  t.Check(eb::Add(X(), X()));
  t.Check(eb::Div(X(), X()));
  t.Check(eb::Add(A(), Lit(int32_t{7})));
  // Mixed types promote.
  t.Check(eb::Add(A(), Lit(1.5)));
}

TEST(ExprTest, Comparisons) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Eq(A(), B()));
  t.Check(eb::Ne(A(), B()));
  t.Check(eb::Lt(A(), B()));
  t.Check(eb::Le(A(), B()));
  t.Check(eb::Gt(A(), Lit(int32_t{0})));
  t.Check(eb::Ge(X(), Lit(0.0)));
  t.Check(eb::Eq(S(), Lit("hello")));
  t.Check(eb::Lt(S(), Lit("photon")));
}

TEST(ExprTest, BooleanLogicThreeValued) {
  ExpressionTableTest t(NumSchema(), NumRows());
  ExprPtr p = eb::Gt(A(), Lit(int32_t{0}));   // NULL on row 2
  ExprPtr q = eb::Gt(B(), Lit(int32_t{0}));   // NULL on row 3
  t.Check(eb::And(p, q));
  t.Check(eb::Or(p, q));
  t.Check(eb::Not(p));
  t.Check(eb::And(eb::Not(p), eb::Or(p, q)));
}

TEST(ExprTest, IsNull) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::IsNull(A()));
  t.Check(eb::IsNotNull(A()));
  t.Check(eb::IsNull(S()));
}

TEST(ExprTest, Between) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Between(A(), Lit(int32_t{0}), Lit(int32_t{50})));
  t.Check(eb::Between(A(), B(), Lit(int32_t{1000})));
  t.Check(eb::Between(X(), Lit(-2.0), Lit(3.0)));
  t.Check(eb::Between(S(), Lit("a"), Lit("z")));
}

TEST(ExprTest, CaseWhen) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::If(eb::Gt(A(), Lit(int32_t{0})), Lit("pos"), Lit("nonpos")));
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  branches.emplace_back(eb::Gt(A(), Lit(int32_t{50})), Lit(int32_t{2}));
  branches.emplace_back(eb::Gt(A(), Lit(int32_t{0})), Lit(int32_t{1}));
  t.Check(eb::CaseWhen(std::move(branches), Lit(int32_t{0})));
  // No ELSE -> NULL.
  std::vector<std::pair<ExprPtr, ExprPtr>> b2;
  b2.emplace_back(eb::Gt(A(), Lit(int32_t{0})), eb::Add(A(), B()));
  t.Check(eb::CaseWhen(std::move(b2), nullptr));
}

TEST(ExprTest, InList) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::In(A(), {Value::Int32(1), Value::Int32(42)}));
  t.Check(eb::In(A(), {Value::Int32(999)}));
  t.Check(eb::In(A(), {Value::Int32(1), Value::Null()}));
  t.Check(eb::In(S(), {Value::String("hello"), Value::String("photon")}));
}

TEST(ExprTest, StringFunctions) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Call("upper", {S()}));
  t.Check(eb::Call("lower", {S()}));
  t.Check(eb::Call("upper_generic", {S()}));
  t.Check(eb::Call("length", {S()}));
  t.Check(eb::Call("octet_length", {S()}));
  t.Check(eb::Call("trim", {S()}));
  t.Check(eb::Call("reverse", {S()}));
  t.Check(eb::Call("substr", {S(), Lit(int32_t{2}), Lit(int32_t{3})}));
  t.Check(eb::Call("substr", {S(), Lit(int32_t{-3})}));
  t.Check(eb::Call("concat", {S(), Lit("!"), S()}));
  t.Check(eb::Like(S(), "h%o"));
  t.Check(eb::Like(S(), "%orl%"));
  t.Check(eb::Like(S(), "_ello"));
  t.Check(eb::Call("starts_with", {S(), Lit("he")}));
  t.Check(eb::Call("ends_with", {S(), Lit("o")}));
  t.Check(eb::Call("contains", {S(), Lit("or")}));
  t.Check(eb::Call("replace", {S(), Lit("l"), Lit("L")}));
  t.Check(eb::Call("lpad", {S(), Lit(int32_t{10}), Lit("*")}));
  t.Check(eb::Call("rpad", {S(), Lit(int32_t{3}), Lit("*")}));
  t.Check(eb::Call("repeat", {S(), Lit(int32_t{2})}));
  t.Check(eb::Call("ascii", {S()}));
}

TEST(ExprTest, UpperMatchesGenericOnAsciiAndUnicode) {
  // The adaptive ASCII path and the generic codepoint path must agree.
  ExpressionTableTest t(
      Schema({Field("s", DataType::String())}),
      {{Value::String("all ascii text")},
       {Value::String("MiXeD CaSe 123!")},
       {Value::String("caf\xC3\xA9")},            // é -> É
       {Value::String("\xCE\xB1\xCE\xB2")},       // αβ -> ΑΒ
       {Value::String("\xD0\xBF\xD1\x80")},       // Cyrillic
       {Value::Null()}});
  ExprPtr s = Col(0, DataType::String(), "s");
  t.Check(eb::Call("upper", {s}));
  t.Check(eb::Call("lower", {eb::Call("upper", {s})}));
}

TEST(ExprTest, MathFunctions) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Call("sqrt", {eb::Call("abs", {X()})}));
  t.Check(eb::Call("abs", {A()}));
  t.Check(eb::Call("negate", {A()}));
  t.Check(eb::Call("floor", {X()}));
  t.Check(eb::Call("ceil", {X()}));
  t.Check(eb::Call("round", {X()}));
  t.Check(eb::Call("exp", {X()}));
  t.Check(eb::Call("sign", {X()}));
  t.Check(eb::Call("pow", {X(), Lit(2.0)}));
}

TEST(ExprTest, DateFunctions) {
  Schema schema({Field("d", DataType::Date32())});
  std::vector<std::vector<Value>> rows = {
      {Value::Date32(0)},       // 1970-01-01
      {Value::Date32(19358)},   // 2023-01-01
      {Value::Date32(-1)},      // 1969-12-31
      {Value::Null()},
      {Value::Date32(11016)},   // 2000-02-29 (leap)
  };
  ExpressionTableTest t(schema, rows);
  ExprPtr d = Col(0, DataType::Date32(), "d");
  t.Check(eb::Call("year", {d}));
  t.Check(eb::Call("month", {d}));
  t.Check(eb::Call("day", {d}));
  t.Check(eb::Call("date_add", {d, Lit(int32_t{30})}));
  t.Check(eb::Call("date_sub", {d, Lit(int32_t{365})}));
  t.Check(eb::Call("add_months", {d, Lit(int32_t{13})}));
  t.Check(eb::Call("datediff", {d, eb::DateLit("2020-06-15")}));
  t.Check(eb::Call("date_format", {d}));
  t.Check(eb::Ge(d, eb::DateLit("1999-12-31")));
  t.Check(eb::Between(d, eb::DateLit("1970-01-01"), eb::DateLit("2024-01-01")));
}

TEST(ExprTest, Casts) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Cast(A(), DataType::Int64()));
  t.Check(eb::Cast(A(), DataType::Float64()));
  t.Check(eb::Cast(X(), DataType::Int32()));
  t.Check(eb::Cast(X(), DataType::Int64()));
  t.Check(eb::Cast(A(), DataType::String()));
  t.Check(eb::Cast(A(), DataType::Decimal(12, 2)));
  t.Check(eb::Cast(S(), DataType::Int32()));  // non-numeric -> NULL
}

TEST(ExprTest, DecimalArithmetic) {
  Schema schema({Field("p", DataType::Decimal(12, 2)),
                 Field("q", DataType::Decimal(12, 2))});
  auto dec = [](const std::string& s) {
    Decimal128 d;
    PHOTON_CHECK(Decimal128::FromString(s, 2, &d));
    return Value::Decimal(d);
  };
  std::vector<std::vector<Value>> rows = {
      {dec("10.00"), dec("3.00")},   {dec("-5.25"), dec("2.50")},
      {dec("0.00"), dec("0.00")},    {Value::Null(), dec("1.00")},
      {dec("999999.99"), dec("0.01")},
  };
  ExpressionTableTest t(schema, rows);
  ExprPtr p = Col(0, DataType::Decimal(12, 2), "p");
  ExprPtr q = Col(1, DataType::Decimal(12, 2), "q");
  t.Check(eb::Add(p, q));
  t.Check(eb::Sub(p, q));
  t.Check(eb::Mul(p, q));
  t.Check(eb::Div(p, q));  // includes 0/0 -> NULL
  t.Check(eb::Eq(p, q));
  t.Check(eb::Lt(p, q));
  // Decimal with int literal: int is widened.
  t.Check(eb::Mul(p, eb::Sub(Lit(int32_t{1}), q)));
  // TPC-H Q1 shape: l_extendedprice * (1 - l_discount) * (1 + l_tax).
  t.Check(eb::Mul(eb::Mul(p, eb::Sub(Lit(int32_t{1}), q)),
                  eb::Add(Lit(int32_t{1}), q)));
}

TEST(ExprTest, DecimalHighPrecisionUsesBigDecimalPathConsistently) {
  // Result precision > 18 forces the row oracle (baseline) through
  // BigDecimal; results must still match the vectorized int128 path.
  Schema schema({Field("p", DataType::Decimal(22, 4)),
                 Field("q", DataType::Decimal(22, 4))});
  auto dec = [](const std::string& s) {
    Decimal128 d;
    PHOTON_CHECK(Decimal128::FromString(s, 4, &d));
    return Value::Decimal(d);
  };
  std::vector<std::vector<Value>> rows = {
      {dec("123456789012345.6789"), dec("987654321.1234")},
      {dec("-999999999999.9999"), dec("0.0001")},
      {dec("1.0000"), dec("3.0000")},
      {Value::Null(), dec("2.0000")},
  };
  ExpressionTableTest t(schema, rows);
  ExprPtr p = Col(0, DataType::Decimal(22, 4), "p");
  ExprPtr q = Col(1, DataType::Decimal(22, 4), "q");
  t.Check(eb::Add(p, q));
  t.Check(eb::Sub(p, q));
  t.Check(eb::Div(p, q));
}

TEST(ExprTest, FilterBatchNarrowsPositionList) {
  Schema schema({Field("a", DataType::Int32())});
  ColumnBatch batch(schema, 8);
  for (int i = 0; i < 8; i++) batch.column(0)->data<int32_t>()[i] = i;
  batch.column(0)->SetNull(6);
  batch.set_num_rows(8);
  batch.SetAllActive();

  EvalContext ctx;
  ExprPtr pred = eb::Ge(Col(0, DataType::Int32()), Lit(int32_t{3}));
  Result<int> n = FilterBatch(*pred, &batch, &ctx);
  ASSERT_TRUE(n.ok());
  // rows 3,4,5,7 pass; row 6 is NULL -> dropped.
  EXPECT_EQ(*n, 4);
  EXPECT_EQ(batch.ActiveRow(0), 3);
  EXPECT_EQ(batch.ActiveRow(3), 7);

  // Filtering an already-filtered batch composes.
  ExprPtr pred2 = eb::Lt(Col(0, DataType::Int32()), Lit(int32_t{5}));
  n = FilterBatch(*pred2, &batch, &ctx);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2);  // rows 3, 4
}

TEST(ExprTest, InactiveRowsNeverOverwritten) {
  // §4.3: kernels must not write at inactive positions, since those may
  // hold live data for other consumers.
  Schema schema({Field("a", DataType::Int32())});
  ColumnBatch batch(schema, 8);
  for (int i = 0; i < 8; i++) batch.column(0)->data<int32_t>()[i] = i;
  batch.set_num_rows(8);
  int32_t* pos = batch.mutable_pos_list();
  pos[0] = 1;
  pos[1] = 3;
  batch.SetActiveRows(2);

  EvalContext ctx;
  ExprPtr expr = eb::Add(Col(0, DataType::Int32()), Lit(int32_t{100}));
  Result<ColumnVector*> result = expr->Evaluate(&batch, &ctx);
  ASSERT_TRUE(result.ok());
  ColumnVector* vec = *result;
  // Plant sentinels at inactive positions of the output, re-evaluate with
  // the same context (vector is recycled), and check sentinels survive.
  // Here we directly verify: only rows 1 and 3 were written.
  EXPECT_EQ(vec->data<int32_t>()[1], 101);
  EXPECT_EQ(vec->data<int32_t>()[3], 103);
  // Inactive positions hold whatever the fresh buffer held; write
  // sentinels and evaluate CASE WHEN through the same rows to double-check
  // the conditional path too.
  vec->data<int32_t>()[0] = -777;
  ExprPtr cw = eb::If(eb::Gt(Col(0, DataType::Int32()), Lit(int32_t{2})),
                      Lit(int32_t{1}), Lit(int32_t{0}));
  Result<ColumnVector*> r2 = cw->Evaluate(&batch, &ctx);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(vec->data<int32_t>()[0], -777);
}

TEST(ExprTest, Coalesce) {
  ExpressionTableTest t(NumSchema(), NumRows());
  t.Check(eb::Call("coalesce", {A(), B()}));
  t.Check(eb::Call("coalesce", {A(), Lit(int32_t{-1})}));
  t.Check(eb::Call("nullif", {A(), Lit(int32_t{42})}));
}

// Integer overflow/edge semantics must be identical between the vectorized
// kernels and the row oracle (which doubles as the baseline engine):
// Java-style wrapping add/sub/mul, guarded INT64_MIN / -1, x % -1 == 0,
// and NULL on division or modulo by zero.
TEST(ExprTest, IntegerOverflowEdges) {
  Schema schema(
      {Field("a", DataType::Int64()), Field("b", DataType::Int64())});
  int64_t min64 = std::numeric_limits<int64_t>::min();
  int64_t max64 = std::numeric_limits<int64_t>::max();
  std::vector<std::vector<Value>> rows = {
      {Value::Int64(max64), Value::Int64(1)},
      {Value::Int64(min64), Value::Int64(-1)},
      {Value::Int64(min64), Value::Int64(min64)},
      {Value::Int64(max64), Value::Int64(max64)},
      {Value::Int64(min64), Value::Int64(0)},
      {Value::Int64(7), Value::Int64(-1)},
      {Value::Null(), Value::Int64(-1)},
  };
  ExpressionTableTest t(schema, rows);
  ExprPtr a = Col(0, DataType::Int64(), "a");
  ExprPtr b = Col(1, DataType::Int64(), "b");
  t.Check(eb::Add(a, b));  // INT64_MAX + 1 wraps
  t.Check(eb::Sub(a, b));  // INT64_MIN - 1 wraps
  t.Check(eb::Mul(a, b));
  t.Check(eb::Div(a, b));  // x / 0 -> NULL; INT64_MIN / -1 must not SIGFPE
  t.Check(eb::Mod(a, b));  // x % 0 -> NULL; x % -1 == 0

  auto row_val = [&](const ExprPtr& e, int64_t x, int64_t y) {
    Result<Value> v = e->EvaluateRow({Value::Int64(x), Value::Int64(y)});
    PHOTON_CHECK(v.ok());
    return *v;
  };
  EXPECT_EQ(row_val(eb::Add(a, b), max64, 1).i64(), min64);
  EXPECT_EQ(row_val(eb::Sub(a, b), min64, 1).i64(), max64);
  EXPECT_EQ(row_val(eb::Div(a, b), min64, -1).i64(), min64);  // wraps
  EXPECT_EQ(row_val(eb::Mod(a, b), min64, -1).i64(), 0);
  EXPECT_TRUE(row_val(eb::Div(a, b), 5, 0).is_null());
  EXPECT_TRUE(row_val(eb::Mod(a, b), 5, 0).is_null());
}

// Decimal arithmetic past 38 digits of precision finalizes to NULL (Spark
// non-ANSI) on both paths — the vectorized engine routes these shapes
// through the checked BigDecimal fallback rather than wrapping int128.
TEST(ExprTest, DecimalOverflowEdgesAreNull) {
  Schema schema({Field("p", DataType::Decimal(38, 2)),
                 Field("q", DataType::Decimal(38, 2))});
  Value near_max =
      Value::Decimal(Decimal128(Decimal128::MaxValueForPrecision(38) - 7));
  Value big = Value::Decimal(Decimal128(Decimal128::PowerOfTen(30)));
  Value cent = Value::Decimal(Decimal128(1));  // 0.01 at scale 2
  std::vector<std::vector<Value>> rows = {
      {near_max, near_max},
      {near_max, cent},
      {big, big},
      {near_max, Value::Decimal(Decimal128(-Decimal128::PowerOfTen(20)))},
      {Value::Null(), near_max},
  };
  ExpressionTableTest t(schema, rows);
  ExprPtr p = Col(0, DataType::Decimal(38, 2), "p");
  ExprPtr q = Col(1, DataType::Decimal(38, 2), "q");
  t.Check(eb::Add(p, q));
  t.Check(eb::Sub(p, q));
  t.Check(eb::Mul(p, q));
  t.Check(eb::Div(p, q));

  auto null_row = [&](const ExprPtr& e, const Value& x, const Value& y) {
    Result<Value> v = e->EvaluateRow({x, y});
    PHOTON_CHECK(v.ok());
    return v->is_null();
  };
  EXPECT_TRUE(null_row(eb::Add(p, q), near_max, near_max));
  // 1e28 * 1e28 = 1e56: far past int128 range, exercising the multiply
  // wraparound guard in BigDecimal::ToDecimal128.
  EXPECT_TRUE(null_row(eb::Mul(p, q), big, big));
  EXPECT_TRUE(null_row(eb::Div(p, q), near_max, cent));
  EXPECT_FALSE(null_row(eb::Sub(p, q), near_max, near_max));  // zero: fine
}

// substr follows Spark's UTF8String.substringSQL: 1-based, start 0 behaves
// like start 1, negative start counts from the end, begin+len wraps in
// 32-bit arithmetic (INT32_MAX means "to the end"), and offsets count
// codepoints, not bytes.
TEST(ExprTest, SubstrSparkSemantics) {
  auto sub3 = [](const char* s, int32_t start, int32_t len) {
    ExprPtr e = eb::Call("substr", {Lit(s), Lit(start), Lit(len)});
    Result<Value> v = e->EvaluateRow({});
    PHOTON_CHECK(v.ok());
    return v->str();
  };
  auto sub2 = [](const char* s, int32_t start) {
    ExprPtr e = eb::Call("substr", {Lit(s), Lit(start)});
    Result<Value> v = e->EvaluateRow({});
    PHOTON_CHECK(v.ok());
    return v->str();
  };
  EXPECT_EQ(sub3("hello", 1, 3), "hel");
  EXPECT_EQ(sub3("hello", 0, 3), "hel");  // start 0: length still from pos 1
  EXPECT_EQ(sub2("hello", 2), "ello");
  EXPECT_EQ(sub2("hello", -3), "llo");
  EXPECT_EQ(sub3("hello", -3, 2), "ll");
  EXPECT_EQ(sub3("hello", -10, 3), "");   // begin deep below the start
  EXPECT_EQ(sub3("hello", 7, 2), "");     // start past the end
  EXPECT_EQ(sub3("hello", 3, -1), "");    // non-positive length
  EXPECT_EQ(sub3("hello", 3, 0), "");
  int32_t max32 = std::numeric_limits<int32_t>::max();
  EXPECT_EQ(sub3("hello", 2, max32), "ello");      // sentinel: to the end
  EXPECT_EQ(sub3("hello", 3, max32 - 1), "");      // begin+len wraps int32
  // Multi-byte codepoints: "Café€" is 5 chars in 8 bytes.
  const char* cafe = "Caf\xC3\xA9\xE2\x82\xAC";
  EXPECT_EQ(sub3(cafe, 4, 2), "\xC3\xA9\xE2\x82\xAC");
  EXPECT_EQ(sub3(cafe, -2, 1), "\xC3\xA9");
  EXPECT_EQ(sub2(cafe, -1), "\xE2\x82\xAC");
}

TEST(FunctionRegistryTest, KnowsItsFunctions) {
  FunctionRegistry& reg = FunctionRegistry::Instance();
  EXPECT_TRUE(reg.IsSupported("upper"));
  EXPECT_TRUE(reg.IsSupported("sqrt"));
  EXPECT_TRUE(reg.IsSupported("date_add"));
  EXPECT_FALSE(reg.IsSupported("no_such_function"));
  // The registry drives Photon-support decisions for plan conversion, so
  // it must expose its full catalog.
  EXPECT_GE(reg.FunctionNames().size(), 30u);
}

TEST(EvalContextTest, RecyclesScratchVectors) {
  EvalContext ctx;
  ColumnVector* v1 = ctx.NewVector(DataType::Int32(), 1024);
  ctx.ResetPerBatch();
  ColumnVector* v2 = ctx.NewVector(DataType::Int32(), 1024);
  EXPECT_EQ(v1, v2);  // §4.5: fixed allocation count per batch -> reuse
  EXPECT_EQ(ctx.pool_hits(), 1);
  EXPECT_EQ(ctx.pool_misses(), 1);
  // Different shape -> different vector.
  ColumnVector* v3 = ctx.NewVector(DataType::Int64(), 1024);
  EXPECT_NE(static_cast<void*>(v2), static_cast<void*>(v3));
}

// ---------------------------------------------------------------------------
// Tier parity (DESIGN.md §12): one filter→project chain evaluated under
// every expression policy — interpreted tree, fused interpreter, compiled
// kernels, adaptive — must keep the same rows and produce the same values.
// ---------------------------------------------------------------------------

/// NULL-aware value equality. Doubles compare by bit pattern so NaN == NaN
/// and +0.0 != -0.0: tiers must be bit-identical, not just numerically
/// close.
bool TierValueEq(TypeId tid, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() == b.is_null();
  if (tid == TypeId::kFloat64) {
    double x = a.f64(), y = b.f64();
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  }
  return a.Equals(b);
}

class TierParityTest {
 public:
  TierParityTest(Schema schema, std::vector<std::vector<Value>> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  void Check(const ExprPtr& predicate, const std::vector<ExprPtr>& exprs) {
    std::vector<FusedStage> stages;
    if (predicate != nullptr) {
      FusedStage f;
      f.is_filter = true;
      f.predicate = predicate;
      stages.push_back(std::move(f));
    }
    if (!exprs.empty()) {
      FusedStage p;
      p.is_filter = false;
      p.exprs = exprs;
      for (size_t i = 0; i < exprs.size(); i++) {
        p.names.push_back("o" + std::to_string(i));
      }
      stages.push_back(std::move(p));
    }
    Result<std::shared_ptr<const FusedUnit>> unit =
        FusedUnit::Compile(stages, schema_);
    ASSERT_TRUE(unit.ok()) << unit.status().ToString();
    const Schema& out_schema = (*unit)->output_schema();
    auto out_tid = [&](size_t i) {
      return out_schema.field(static_cast<int>(i)).type.id();
    };

    struct TierRun {
      std::vector<int32_t> pos;
      std::vector<std::vector<Value>> vals;  // [output][surviving row]
    };
    const struct {
      ExprPolicy policy;
      const char* name;
    } kTiers[] = {{ExprPolicy::kTreeOnly, "tree"},
                  {ExprPolicy::kFusedOnly, "fused"},
                  {ExprPolicy::kCompiledOnly, "compiled"},
                  {ExprPolicy::kAdaptive, "adaptive"}};
    std::vector<TierRun> runs;
    for (const auto& tier : kTiers) {
      FusedUnitState state(*unit, tier.policy);
      EvalContext ctx;
      TierRun first;
      // Several batches per tier: the adaptive state times the fused pass
      // first, then the compiled one, then probes — every repetition must
      // still agree with the first.
      for (int rep = 0; rep < 4; rep++) {
        ColumnBatch batch(schema_, static_cast<int>(rows_.size()));
        for (size_t r = 0; r < rows_.size(); r++) {
          for (int c = 0; c < schema_.num_fields(); c++) {
            batch.column(c)->SetValue(static_cast<int>(r), rows_[r][c]);
          }
        }
        batch.set_num_rows(static_cast<int>(rows_.size()));
        batch.SetAllActive();
        ctx.ResetPerBatch();
        Result<int> active = state.Eval(&batch, &ctx);
        ASSERT_TRUE(active.ok())
            << tier.name << ": " << active.status().ToString();
        TierRun run;
        if (batch.all_active()) {
          for (int i = 0; i < batch.num_rows(); i++) run.pos.push_back(i);
        } else {
          run.pos.assign(batch.pos_list(),
                         batch.pos_list() + batch.num_active());
        }
        for (size_t i = 0; i < (*unit)->outputs().size(); i++) {
          ColumnVector* out = state.Output(i, &batch);
          std::vector<Value> col;
          col.reserve(run.pos.size());
          for (int32_t row : run.pos) col.push_back(out->GetValue(row));
          run.vals.push_back(std::move(col));
        }
        if (rep == 0) {
          first = std::move(run);
        } else {
          ASSERT_EQ(first.pos, run.pos)
              << tier.name << " diverged from itself at rep " << rep;
          for (size_t i = 0; i < first.vals.size(); i++) {
            for (size_t r = 0; r < first.pos.size(); r++) {
              ASSERT_TRUE(
                  TierValueEq(out_tid(i), first.vals[i][r], run.vals[i][r]))
                  << tier.name << " rep " << rep << " output " << i
                  << " row " << first.pos[r];
            }
          }
        }
      }
      runs.push_back(std::move(first));
    }

    // Every tier keeps exactly the rows the tree tier keeps, with the
    // same output values.
    for (size_t t = 1; t < runs.size(); t++) {
      ASSERT_EQ(runs[0].pos, runs[t].pos) << kTiers[t].name << " vs tree";
      for (size_t i = 0; i < runs[0].vals.size(); i++) {
        for (size_t r = 0; r < runs[0].pos.size(); r++) {
          EXPECT_TRUE(TierValueEq(out_tid(i), runs[0].vals[i][r],
                                  runs[t].vals[i][r]))
              << kTiers[t].name << " output " << i << " row "
              << runs[0].pos[r] << ": tree="
              << runs[0].vals[i][r].ToString() << " got="
              << runs[t].vals[i][r].ToString();
        }
      }
    }

    // Ground truth: surviving rows match the row-at-a-time oracle on the
    // original (pre-fusion) expressions.
    for (size_t r = 0; r < runs[0].pos.size(); r++) {
      int32_t row = runs[0].pos[r];
      if (predicate != nullptr) {
        Result<Value> keep = predicate->EvaluateRow(rows_[row]);
        ASSERT_TRUE(keep.ok());
        EXPECT_TRUE(!keep->is_null() && keep->boolean())
            << "row " << row << " kept but oracle predicate says drop";
      }
      for (size_t i = 0; i < exprs.size(); i++) {
        Result<Value> oracle = exprs[i]->EvaluateRow(rows_[row]);
        ASSERT_TRUE(oracle.ok());
        EXPECT_TRUE(TierValueEq(out_tid(i), runs[0].vals[i][r], *oracle))
            << "output " << i << " row " << row << ": got "
            << runs[0].vals[i][r].ToString() << " oracle "
            << oracle->ToString();
      }
    }
  }

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
};

TEST(TierParityTest, NullPropagationAcrossTiers) {
  Schema schema({Field("a", DataType::Int64()), Field("b", DataType::Int64()),
                 Field("x", DataType::Float64())});
  std::vector<std::vector<Value>> rows = {
      {Value::Int64(10), Value::Int64(3), Value::Float64(1.5)},
      {Value::Null(), Value::Int64(5), Value::Float64(-2.0)},
      {Value::Int64(7), Value::Null(), Value::Null()},
      {Value::Null(), Value::Null(), Value::Float64(0.0)},
      {Value::Int64(-4), Value::Int64(8), Value::Float64(3.25)},
      {Value::Int64(0), Value::Int64(0), Value::Float64(-0.0)},
  };
  TierParityTest t(schema, rows);
  ExprPtr a = Col(0, DataType::Int64(), "a");
  ExprPtr b = Col(1, DataType::Int64(), "b");
  ExprPtr x = Col(2, DataType::Float64(), "x");
  // NULL in any operand nulls the row; NULL predicate drops the row.
  t.Check(eb::Gt(a, Lit(int64_t{-10})),
          {eb::Add(a, b), eb::Mul(eb::Add(a, b), eb::Sub(a, b)),
           eb::Mul(x, x)});
  t.Check(nullptr, {eb::Add(eb::Mul(a, b), eb::Mul(a, b)),
                    eb::Sub(a, eb::NullLit(DataType::Int64()))});
}

TEST(TierParityTest, IntegerDivisionEdgesAcrossTiers) {
  int64_t min64 = std::numeric_limits<int64_t>::min();
  Schema schema(
      {Field("a", DataType::Int64()), Field("b", DataType::Int64())});
  std::vector<std::vector<Value>> rows = {
      {Value::Int64(min64), Value::Int64(-1)},  // wraps, must not SIGFPE
      {Value::Int64(10), Value::Int64(0)},      // div by zero -> NULL
      {Value::Int64(min64), Value::Int64(0)},
      {Value::Int64(22), Value::Int64(7)},
      {Value::Null(), Value::Int64(2)},
      {Value::Int64(min64), Value::Int64(1)},
      {Value::Int64(-9), Value::Int64(-1)},
  };
  TierParityTest t(schema, rows);
  ExprPtr a = Col(0, DataType::Int64(), "a");
  ExprPtr b = Col(1, DataType::Int64(), "b");
  t.Check(nullptr, {eb::Div(a, b), eb::Mod(a, b),
                    eb::Add(eb::Div(a, b), eb::Mod(a, b))});
  // Division inside a filtered chain: errors-to-NULL must not depend on
  // which rows the predicate already dropped.
  t.Check(eb::Ne(b, Lit(int64_t{7})), {eb::Div(a, b)});
}

TEST(TierParityTest, DecimalOverflowRoutingAcrossTiers) {
  // Regular shapes compile; near-overflow products at precision 38 route
  // through the irregular BigDecimal path, which the compiled tier must
  // leave to the interpreter — all tiers still agree (overflow -> NULL).
  Schema schema({Field("p", DataType::Decimal(38, 2)),
                 Field("q", DataType::Decimal(38, 2))});
  Value near_max =
      Value::Decimal(Decimal128(Decimal128::MaxValueForPrecision(38) - 7));
  Value big = Value::Decimal(Decimal128(Decimal128::PowerOfTen(30)));
  std::vector<std::vector<Value>> rows = {
      {near_max, near_max},
      {big, big},
      {Value::Decimal(Decimal128(150)), Value::Decimal(Decimal128(25))},
      {Value::Null(), near_max},
      {near_max, Value::Decimal(Decimal128(-1))},
  };
  TierParityTest t(schema, rows);
  ExprPtr p = Col(0, DataType::Decimal(38, 2), "p");
  ExprPtr q = Col(1, DataType::Decimal(38, 2), "q");
  t.Check(nullptr, {eb::Add(p, q), eb::Sub(p, q), eb::Mul(p, q)});
  t.Check(eb::Lt(q, eb::DecimalLit("10.00", 38, 2)), {eb::Add(p, q)});
}

TEST(TierParityTest, Q6ShapeCompiledTermParity) {
  // TPC-H Q6's comparison-chain filter over a decimal/float mix, with NaN
  // and boundary values planted to stress the compiled position-list
  // terms' comparison semantics.
  double nan = std::numeric_limits<double>::quiet_NaN();
  Schema schema({Field("qty", DataType::Float64()),
                 Field("disc", DataType::Float64()),
                 Field("price", DataType::Float64())});
  std::vector<std::vector<Value>> rows = {
      {Value::Float64(23.0), Value::Float64(0.06), Value::Float64(100.0)},
      {Value::Float64(24.0), Value::Float64(0.05), Value::Float64(50.0)},
      {Value::Float64(nan), Value::Float64(0.06), Value::Float64(10.0)},
      {Value::Float64(1.0), Value::Float64(nan), Value::Float64(20.0)},
      {Value::Null(), Value::Float64(0.07), Value::Float64(30.0)},
      {Value::Float64(23.9), Value::Null(), Value::Float64(40.0)},
      {Value::Float64(-0.0), Value::Float64(0.05), Value::Float64(60.0)},
  };
  TierParityTest t(schema, rows);
  ExprPtr qty = Col(0, DataType::Float64(), "qty");
  ExprPtr disc = Col(1, DataType::Float64(), "disc");
  ExprPtr price = Col(2, DataType::Float64(), "price");
  ExprPtr pred = eb::And(
      eb::Lt(qty, Lit(24.0)),
      eb::And(eb::Ge(disc, Lit(0.05)), eb::Le(disc, Lit(0.07))));
  t.Check(pred, {eb::Mul(price, disc)});
  // Mirrored literal-on-the-left comparisons hit MirrorCmp.
  t.Check(eb::Gt(Lit(24.0), qty), {eb::Mul(price, disc)});
}

TEST(TierParityTest, ConstantFoldingAndCseKeepParity) {
  // Literal-only subtrees fold at compile time and duplicate
  // subexpressions share one program slot; results must be unchanged.
  Schema schema({Field("a", DataType::Int64())});
  std::vector<std::vector<Value>> rows = {
      {Value::Int64(1)}, {Value::Int64(-3)}, {Value::Null()},
      {Value::Int64(1000)},
  };
  TierParityTest t(schema, rows);
  ExprPtr a = Col(0, DataType::Int64(), "a");
  ExprPtr two_plus_three = eb::Add(Lit(int64_t{2}), Lit(int64_t{3}));
  t.Check(eb::Gt(a, eb::Sub(Lit(int64_t{2}), Lit(int64_t{4}))),
          {eb::Mul(a, two_plus_three),
           eb::Add(eb::Mul(a, two_plus_three), eb::Mul(a, two_plus_three))});
  // A predicate that folds to constant false drops every row in all tiers.
  t.Check(eb::Lt(Lit(int64_t{5}), Lit(int64_t{2})), {eb::Add(a, a)});
}

TEST(TierParityTest, Q9ProfitShapeNestedFusionParity) {
  // TPC-H Q9's profit expression price*(1-disc) - cost*qty: the inner
  // Mul absorbs its single-use (1-disc) operand into a two-op compiled
  // step, and the outer Sub then sees that Mul as a single-use operand
  // too. Absorbing it again would orphan the (1-disc) register (regression
  // test: the compiled tier read a never-computed register here).
  Schema schema({Field("price", DataType::Decimal(10, 2)),
                 Field("disc", DataType::Decimal(4, 2)),
                 Field("cost", DataType::Decimal(10, 2)),
                 Field("qty", DataType::Decimal(4, 2))});
  auto dec = [](int64_t unscaled) {
    return Value::Decimal(Decimal128(unscaled));
  };
  std::vector<std::vector<Value>> rows = {
      {dec(10000), dec(6), dec(2000), dec(300)},
      {dec(50000), dec(0), dec(100000), dec(100)},
      {Value::Null(), dec(5), dec(1), dec(1)},
      {dec(123456), Value::Null(), dec(999), dec(200)},
      {dec(-777), dec(10), Value::Null(), Value::Null()},
      {dec(1), dec(99), dec(1), dec(9999)},
  };
  TierParityTest t(schema, rows);
  ExprPtr price = Col(0, DataType::Decimal(10, 2), "price");
  ExprPtr disc = Col(1, DataType::Decimal(4, 2), "disc");
  ExprPtr cost = Col(2, DataType::Decimal(10, 2), "cost");
  ExprPtr qty = Col(3, DataType::Decimal(4, 2), "qty");
  ExprPtr revenue = eb::Mul(price, eb::Sub(Lit(int32_t{1}), disc));
  ExprPtr supply = eb::Mul(cost, qty);
  t.Check(nullptr, {eb::Sub(revenue, supply)});
  // Same shape on int64: the nested-fusion guard is type-generic.
  Schema ischema({Field("a", DataType::Int64()), Field("b", DataType::Int64()),
                  Field("c", DataType::Int64()),
                  Field("d", DataType::Int64())});
  std::vector<std::vector<Value>> irows = {
      {Value::Int64(10), Value::Int64(3), Value::Int64(4), Value::Int64(5)},
      {Value::Int64(-2), Value::Int64(0), Value::Int64(7), Value::Null()},
      {Value::Null(), Value::Int64(1), Value::Int64(2), Value::Int64(3)},
  };
  TierParityTest ti(ischema, irows);
  ExprPtr a = Col(0, DataType::Int64(), "a");
  ExprPtr b = Col(1, DataType::Int64(), "b");
  ExprPtr c = Col(2, DataType::Int64(), "c");
  ExprPtr d = Col(3, DataType::Int64(), "d");
  ti.Check(nullptr, {eb::Sub(eb::Mul(a, eb::Sub(Lit(int64_t{1}), b)),
                             eb::Mul(c, d))});
}

TEST(ExprDepthLimitTest, DeepTreesErrorCleanlyInsteadOfOverflowing) {
  // Built iteratively; the guard that rejects it must be iterative too, or
  // the check would overflow on the very input it exists to refuse.
  ExprPtr flag = Col(0, DataType::Boolean(), "flag");
  ExprPtr deep = flag;
  for (int i = 0; i < 2000; i++) deep = std::make_shared<NotExpr>(deep);
  Status st = CheckExpressionDepth(*deep);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("nested deeper"), std::string::npos);

  // Right at the limit is still accepted.
  ExprPtr at_limit = flag;
  for (int i = 0; i < kMaxExprDepth - 1; i++) {
    at_limit = std::make_shared<NotExpr>(at_limit);
  }
  EXPECT_TRUE(CheckExpressionDepth(*at_limit).ok());

  // Both engine compilers refuse the plan up front, before any recursive
  // walker (canonicalization, fusion, tree Evaluate) can touch the tree.
  Schema schema({Field("flag", DataType::Boolean())});
  TableBuilder tb(schema, 16);
  tb.AppendRow({Value::Boolean(true)});
  Table table = tb.Finish();
  plan::PlanPtr p = plan::Filter(plan::Scan(&table), deep);
  Result<OperatorPtr> photon = plan::CompilePhoton(p);
  ASSERT_FALSE(photon.ok());
  EXPECT_NE(photon.status().ToString().find("nested deeper"),
            std::string::npos);
  EXPECT_FALSE(plan::CompileBaseline(p).ok());
}

}  // namespace
}  // namespace photon
