#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "exec/driver.h"
#include "expr/builder.h"
#include "plan/converter.h"
#include "plan/logical_plan.h"

namespace photon {
namespace {

using eb::Col;
using eb::Lit;
using plan::PlanPtr;

Table MakeSales(int n, uint64_t seed = 7) {
  Schema schema({Field("store", DataType::Int64()),
                 Field("item", DataType::String()),
                 Field("amount", DataType::Decimal(12, 2)),
                 Field("qty", DataType::Int32())});
  TableBuilder builder(schema);
  Rng rng(seed);
  for (int i = 0; i < n; i++) {
    builder.AppendRow(
        {Value::Int64(rng.Uniform(0, 20)),
         Value::String("item-" + std::to_string(rng.Uniform(0, 50))),
         rng.Uniform(0, 20) == 0
             ? Value::Null()
             : Value::Decimal(Decimal128::FromInt64(rng.Uniform(1, 99999))),
         Value::Int32(static_cast<int32_t>(rng.Uniform(1, 10)))});
  }
  return builder.Finish();
}

std::vector<std::vector<Value>> Sorted(std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              for (size_t i = 0; i < a.size(); i++) {
                int c = (a[i].is_null() && b[i].is_null()) ? 0
                        : a[i].is_null()                   ? -1
                        : b[i].is_null()                   ? 1
                                         : a[i].Compare(b[i]);
                if (c != 0) return c < 0;
              }
              return false;
            });
  return rows;
}

/// Runs a plan through both engines and asserts identical result sets.
/// This is the end-to-end consistency testing of §5.6.
void ExpectEnginesAgree(const PlanPtr& p) {
  Result<OperatorPtr> photon_op = plan::CompilePhoton(p);
  ASSERT_TRUE(photon_op.ok()) << photon_op.status().ToString();
  Result<Table> photon_result = CollectAll(photon_op->get());
  ASSERT_TRUE(photon_result.ok()) << photon_result.status().ToString();

  for (plan::BaselineJoinImpl impl : {plan::BaselineJoinImpl::kSortMerge,
                                      plan::BaselineJoinImpl::kShuffledHash}) {
    Result<baseline::RowOperatorPtr> base_op = plan::CompileBaseline(p, impl);
    ASSERT_TRUE(base_op.ok()) << base_op.status().ToString();
    Result<Table> base_result = baseline::CollectAllRows(base_op->get());
    ASSERT_TRUE(base_result.ok()) << base_result.status().ToString();

    EXPECT_EQ(photon_result->num_rows(), base_result->num_rows());
    EXPECT_EQ(Sorted(photon_result->ToRows()), Sorted(base_result->ToRows()))
        << "engines diverge (join impl " << static_cast<int>(impl) << ")";
  }
}

TEST(PlanConsistencyTest, FilterProjectAggregate) {
  Table sales = MakeSales(5000);
  PlanPtr p = plan::Scan(&sales);
  p = plan::Filter(p, eb::Gt(plan::ColOf(p, "qty"), Lit(int32_t{2})));
  p = plan::Aggregate(
      p, {plan::ColOf(p, "store")}, {"store"},
      {AggregateSpec{AggKind::kSum, plan::ColOf(p, "amount"), "total"},
       AggregateSpec{AggKind::kCountStar, nullptr, "n"},
       AggregateSpec{AggKind::kMax, plan::ColOf(p, "item"), "max_item"},
       AggregateSpec{AggKind::kAvg, plan::ColOf(p, "qty"), "avg_qty"}});
  ExpectEnginesAgree(p);
}

TEST(PlanConsistencyTest, JoinShapes) {
  Table sales = MakeSales(2000, 1);
  Table dim = MakeSales(300, 2);
  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter,
                        JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    PlanPtr probe = plan::Scan(&sales);
    PlanPtr build = plan::Scan(&dim);
    // Rename build columns so inner/louter output names stay unique.
    build = plan::Project(
        build, {plan::ColOf(build, "store"), plan::ColOf(build, "qty")},
        {"d_store", "d_qty"});
    PlanPtr j = plan::Join(probe, build, type,
                           {plan::ColOf(probe, "store")},
                           {plan::ColOf(build, "d_store")});
    ExpectEnginesAgree(j);
  }
}

TEST(PlanConsistencyTest, SortWithExpressionsAndStrings) {
  Table sales = MakeSales(1500, 3);
  PlanPtr p = plan::Scan(&sales);
  std::vector<SortKey> keys;
  keys.push_back({plan::ColOf(p, "item"), true, true});
  keys.push_back({plan::ColOf(p, "amount"), false, false});
  p = plan::Sort(p, std::move(keys));
  p = plan::Limit(p, 100);
  // Limit after a total sort is deterministic (ties broken by stable sort
  // over identical input order in both engines).
  Result<OperatorPtr> photon_op = plan::CompilePhoton(p);
  ASSERT_TRUE(photon_op.ok());
  Result<Table> a = CollectAll(photon_op->get());
  ASSERT_TRUE(a.ok());
  Result<baseline::RowOperatorPtr> base_op = plan::CompileBaseline(p);
  ASSERT_TRUE(base_op.ok());
  Result<Table> b = baseline::CollectAllRows(base_op->get());
  ASSERT_TRUE(b.ok());
  // Compare *in order*: sort output order must match.
  EXPECT_EQ(a->ToRows(), b->ToRows());
}

TEST(PlanConsistencyTest, StringExpressionsThroughProject) {
  Table sales = MakeSales(1000, 4);
  PlanPtr p = plan::Scan(&sales);
  p = plan::Project(
      p,
      {eb::Call("upper", {plan::ColOf(p, "item")}),
       eb::Call("substr",
                {plan::ColOf(p, "item"), Lit(int32_t{1}), Lit(int32_t{4})}),
       eb::If(eb::Like(plan::ColOf(p, "item"), "item-1%"), Lit("one"),
              Lit("other"))},
      {"u", "s", "c"});
  ExpectEnginesAgree(p);
}

// --- Plan conversion (§5.1/§5.2) -------------------------------------------

TEST(ConverterTest, FullPhotonPlanGetsOneTransition) {
  Table sales = MakeSales(500, 5);
  PlanPtr p = plan::Scan(&sales);
  p = plan::Filter(p, eb::Gt(plan::ColOf(p, "qty"), Lit(int32_t{5})));
  p = plan::Aggregate(p, {plan::ColOf(p, "store")}, {"store"},
                      {AggregateSpec{AggKind::kCountStar, nullptr, "n"}});
  Result<plan::ConversionResult> converted = plan::ConvertPlan(p);
  ASSERT_TRUE(converted.ok());
  EXPECT_EQ(converted->photon_nodes, 3);
  EXPECT_EQ(converted->legacy_nodes, 0);
  EXPECT_EQ(converted->transitions, 1);
  EXPECT_EQ(converted->adapters, 1);

  Result<Table> mixed = baseline::CollectAllRows(converted->root.get());
  ASSERT_TRUE(mixed.ok());

  Result<baseline::RowOperatorPtr> pure = plan::CompileBaseline(p);
  ASSERT_TRUE(pure.ok());
  Result<Table> expected = baseline::CollectAllRows(pure->get());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(Sorted(mixed->ToRows()), Sorted(expected->ToRows()));
}

TEST(ConverterTest, UnsupportedNodeFallsBackAboveTransition) {
  Table sales = MakeSales(500, 6);
  PlanPtr p = plan::Scan(&sales);
  p = plan::Filter(p, eb::Gt(plan::ColOf(p, "qty"), Lit(int32_t{3})));
  p = plan::Aggregate(p, {plan::ColOf(p, "store")}, {"store"},
                      {AggregateSpec{AggKind::kSum, plan::ColOf(p, "qty"),
                                     "total"}});
  p = plan::Sort(p, {SortKey{plan::ColOf(p, "store"), true, true}});

  // Photon "does not support" aggregation in this configuration (§3.5's
  // partial rollout): the scan+filter run in Photon, a transition pivots,
  // and aggregate+sort run in the legacy engine.
  auto support = [](const plan::PlanNode& node) {
    return node.kind != plan::PlanKind::kAggregate;
  };
  Result<plan::ConversionResult> converted = plan::ConvertPlan(p, {}, support);
  ASSERT_TRUE(converted.ok());
  EXPECT_EQ(converted->photon_nodes, 2);   // scan, filter
  EXPECT_EQ(converted->legacy_nodes, 2);   // aggregate, sort
  EXPECT_EQ(converted->transitions, 1);

  Result<Table> mixed = baseline::CollectAllRows(converted->root.get());
  ASSERT_TRUE(mixed.ok());
  Result<baseline::RowOperatorPtr> pure = plan::CompileBaseline(p);
  ASSERT_TRUE(pure.ok());
  Result<Table> expected = baseline::CollectAllRows(pure->get());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(mixed->ToRows(), expected->ToRows());
}

TEST(ConverterTest, NothingSupportedMeansPureLegacy) {
  Table sales = MakeSales(100, 8);
  PlanPtr p = plan::Scan(&sales);
  p = plan::Limit(p, 10);
  auto support = [](const plan::PlanNode&) { return false; };
  Result<plan::ConversionResult> converted = plan::ConvertPlan(p, {}, support);
  ASSERT_TRUE(converted.ok());
  EXPECT_EQ(converted->photon_nodes, 0);
  EXPECT_EQ(converted->transitions, 0);
  EXPECT_EQ(converted->adapters, 0);
  Result<Table> result = baseline::CollectAllRows(converted->root.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 10);
}

// --- Driver / stages ----------------------------------------------------------

TEST(DriverTest, ShuffledAggregateMatchesSingleTask) {
  Table sales = MakeSales(20000, 9);
  exec::Driver driver(4);

  PlanPtr p = plan::Scan(&sales);
  std::vector<ExprPtr> keys = {plan::ColOf(p, "store")};
  std::vector<AggregateSpec> aggs = {
      AggregateSpec{AggKind::kSum, plan::ColOf(p, "amount"), "total"},
      AggregateSpec{AggKind::kCountStar, nullptr, "n"}};

  std::vector<exec::StageInfo> stages;
  Result<Table> distributed = driver.RunShuffledAggregate(
      sales, keys, {"store"}, aggs, /*num_partitions=*/8, &stages);
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_GT(stages[0].num_tasks, 1);
  EXPECT_GT(stages[0].shuffle_bytes(), 0);
  EXPECT_EQ(stages[1].num_tasks, 8);

  PlanPtr agg_plan = plan::Aggregate(p, keys, {"store"}, aggs);
  Result<Table> single = driver.RunSingleTask(agg_plan);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(Sorted(distributed->ToRows()), Sorted(single->ToRows()));
}

}  // namespace
}  // namespace photon
