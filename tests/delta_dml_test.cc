// Concurrency tests for the writable lakehouse: the optimistic commit
// protocol (no lost commits, exactly one winner per log version), DML
// conflict-retry convergence, compaction racing writers, and time-travel
// reads staying pinned across DML history. The interesting assertions run
// multi-threaded — this test is on the TSan verify line (ROADMAP.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "exec/compactor.h"
#include "exec/dml.h"
#include "exec/driver.h"
#include "expr/builder.h"
#include "service/query_service.h"
#include "storage/delta.h"
#include "storage/object_store.h"

namespace photon {
namespace {

using eb::Col;
using eb::Lit;

Schema KvSchema() {
  return Schema({Field("id", DataType::Int64()),
                 Field("val", DataType::Int64())});
}

Table KvTable(int64_t begin, int64_t end, int64_t val_bias = 0) {
  TableBuilder builder(KvSchema());
  for (int64_t i = begin; i < end; i++) {
    builder.AppendRow({Value::Int64(i), Value::Int64(i + val_bias)});
  }
  return builder.Finish();
}

ExprPtr IdCol() { return Col(0, DataType::Int64(), "id"); }
ExprPtr ValCol() { return Col(1, DataType::Int64(), "val"); }

/// Sorted (id, val) pairs of the table at `version` (-1 = latest).
std::vector<std::pair<int64_t, int64_t>> ScanRows(DeltaTable* table,
                                                  exec::Driver* driver,
                                                  int64_t version = -1) {
  auto snapshot = table->Snapshot(version);
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  auto result = driver->RunSingleTask(
      plan::DeltaScan(table->store(), *std::move(snapshot)));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::vector<std::pair<int64_t, int64_t>> rows;
  for (const std::vector<Value>& row : result->ToRows()) {
    rows.emplace_back(row[0].i64(), row[1].i64());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Every data-file key referenced by any committed version. After all
/// writers finish, the store must hold exactly these keys under data/ —
/// anything extra is a staged file some aborted transaction leaked.
std::set<std::string> CommittedDataKeys(DeltaTable* table) {
  std::set<std::string> keys;
  auto latest = table->LatestVersion();
  EXPECT_TRUE(latest.ok());
  for (int64_t v = 0; v <= *latest; v++) {
    auto snap = table->Snapshot(v);
    EXPECT_TRUE(snap.ok());
    for (const DeltaFileEntry& f : snap->files) keys.insert(f.key);
  }
  return keys;
}

void ExpectNoLeakedDataFiles(ObjectStore* store, DeltaTable* table) {
  std::set<std::string> committed = CommittedDataKeys(table);
  for (const std::string& key : store->List(table->path() + "/data/")) {
    EXPECT_TRUE(committed.count(key)) << "leaked staged file: " << key;
  }
}

// --- Commit protocol ---------------------------------------------------------

TEST(DeltaCommitTest, CreateRaceHasExactlyOneWinner) {
  ObjectStore store;
  constexpr int kThreads = 8;
  std::atomic<int> winners{0};
  std::atomic<int> losers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      auto table = DeltaTable::Create(&store, "tables/race", KvSchema());
      if (table.ok()) {
        winners.fetch_add(1);
      } else {
        EXPECT_TRUE(table.status().IsInvalidArgument())
            << table.status().ToString();
        losers.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(losers.load(), kThreads - 1);
  // The winner's table is intact and writable.
  auto table = DeltaTable::Open(&store, "tables/race");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*table)->Append(KvTable(0, 10)).ok());
}

TEST(DeltaCommitTest, AppendSchemaMismatchIsInvalidArgument) {
  ObjectStore store;
  auto table = DeltaTable::Create(&store, "tables/schema", KvSchema());
  ASSERT_TRUE(table.ok());
  TableBuilder builder(Schema({Field("other", DataType::Int32())}));
  builder.AppendRow({Value::Int32(1)});
  Table wrong = builder.Finish();
  auto version = (*table)->Append(wrong);
  ASSERT_FALSE(version.ok());
  EXPECT_TRUE(version.status().IsInvalidArgument())
      << version.status().ToString();
}

TEST(DeltaCommitTest, ConcurrentAppendsLoseNoCommits) {
  ObjectStore store;
  ASSERT_TRUE(DeltaTable::Create(&store, "tables/appends", KvSchema()).ok());
  constexpr int kThreads = 8;
  constexpr int kAppendsEach = 4;
  constexpr int kRowsEach = 10;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // Separate handle per thread: commits race across handles too.
      auto table = DeltaTable::Open(&store, "tables/appends");
      ASSERT_TRUE(table.ok());
      for (int a = 0; a < kAppendsEach; a++) {
        int64_t base = (t * kAppendsEach + a) * kRowsEach;
        auto version = (*table)->Append(KvTable(base, base + kRowsEach));
        ASSERT_TRUE(version.ok()) << version.status().ToString();
      }
    });
  }
  for (auto& t : threads) t.join();

  auto table = DeltaTable::Open(&store, "tables/appends");
  ASSERT_TRUE(table.ok());
  // Exactly one commit per version: the log is contiguous and every
  // append landed (the lost-commit bug dropped versions silently).
  auto latest = (*table)->LatestVersion();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, kThreads * kAppendsEach);
  auto snapshot = (*table)->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_rows(), kThreads * kAppendsEach * kRowsEach);
  // Row counts grow monotonically version to version (each append +10).
  for (int64_t v = 1; v <= *latest; v++) {
    auto s = (*table)->Snapshot(v);
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s->num_rows(), v * kRowsEach);
  }
}

TEST(DeltaCommitTest, RacingRewritesOfOneFileHaveOneWinner) {
  ObjectStore store;
  auto created = DeltaTable::Create(&store, "tables/rw", KvSchema());
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE((*created)->Append(KvTable(0, 100)).ok());
  auto snapshot = (*created)->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const std::string key = snapshot->files[0].key;

  constexpr int kThreads = 6;
  std::atomic<int> winners{0};
  std::atomic<int> conflicts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      auto table = DeltaTable::Open(&store, "tables/rw");
      ASSERT_TRUE(table.ok());
      auto version = (*table)->Rewrite({key}, KvTable(0, 100, 1000 + t));
      if (version.ok()) {
        winners.fetch_add(1);
      } else {
        EXPECT_TRUE(version.status().IsCommitConflict())
            << version.status().ToString();
        conflicts.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // remove/remove: exactly one rewrite of the same file can win.
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(conflicts.load(), kThreads - 1);
  auto table = DeltaTable::Open(&store, "tables/rw");
  ASSERT_TRUE(table.ok());
  ExpectNoLeakedDataFiles(&store, table->get());
}

// --- DML semantics -----------------------------------------------------------

class DmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto created = DeltaTable::Create(&store_, "tables/dml", KvSchema());
    ASSERT_TRUE(created.ok());
    table_ = std::move(*created);
  }

  ObjectStore store_;
  std::unique_ptr<DeltaTable> table_;
  exec::Driver driver_{2};
  ExecContext ctx_;
};

TEST_F(DmlTest, DeleteRewritesOnlyMatchingFiles) {
  ASSERT_TRUE(table_->Append(KvTable(0, 100)).ok());
  ASSERT_TRUE(table_->Append(KvTable(100, 200)).ok());
  ASSERT_TRUE(table_->Append(KvTable(200, 300)).ok());

  auto result = dml::ExecuteDelete(table_.get(),
                                   eb::Lt(IdCol(), Lit(int64_t{50})),
                                   &driver_, ctx_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_affected, 50);
  EXPECT_EQ(result->files_rewritten, 1);
  // Zone maps prove files 2 and 3 hold no id < 50.
  EXPECT_EQ(result->files_pruned, 2);
  EXPECT_EQ(result->version, 4);

  auto rows = ScanRows(table_.get(), &driver_);
  ASSERT_EQ(rows.size(), 250u);
  EXPECT_EQ(rows.front().first, 50);
  EXPECT_EQ(rows.back().first, 299);
  ExpectNoLeakedDataFiles(&store_, table_.get());
}

TEST_F(DmlTest, DeleteMatchingNothingCommitsNothing) {
  ASSERT_TRUE(table_->Append(KvTable(0, 100)).ok());
  auto result = dml::ExecuteDelete(table_.get(),
                                   eb::Gt(IdCol(), Lit(int64_t{1000})),
                                   &driver_, ctx_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 0);
  EXPECT_EQ(result->version, 1);  // snapshot version, no new commit
  auto latest = table_->LatestVersion();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 1);
}

TEST_F(DmlTest, DeleteOfEveryRowInAFileDropsTheFile) {
  ASSERT_TRUE(table_->Append(KvTable(0, 50)).ok());
  ASSERT_TRUE(table_->Append(KvTable(50, 100)).ok());
  auto result = dml::ExecuteDelete(table_.get(),
                                   eb::Lt(IdCol(), Lit(int64_t{50})),
                                   &driver_, ctx_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 50);
  auto snapshot = table_->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  // The emptied file is removed without a replacement add.
  EXPECT_EQ(snapshot->files.size(), 1u);
  EXPECT_EQ(snapshot->num_rows(), 50);
}

TEST_F(DmlTest, UpdateAppliesAssignmentsToMatchedRowsOnly) {
  ASSERT_TRUE(table_->Append(KvTable(0, 100)).ok());
  // UPDATE dml SET val = val + 1000 WHERE id >= 90
  std::vector<dml::UpdateAssignment> set;
  set.push_back({1, eb::Add(ValCol(), Lit(int64_t{1000}))});
  auto result = dml::ExecuteUpdate(table_.get(), set,
                                   eb::Ge(IdCol(), Lit(int64_t{90})),
                                   &driver_, ctx_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_affected, 10);
  EXPECT_EQ(result->files_rewritten, 1);

  auto rows = ScanRows(table_.get(), &driver_);
  ASSERT_EQ(rows.size(), 100u);
  for (const auto& [id, val] : rows) {
    EXPECT_EQ(val, id >= 90 ? id + 1000 : id) << "id " << id;
  }
}

TEST_F(DmlTest, UnqualifiedUpdateTouchesEveryRow) {
  ASSERT_TRUE(table_->Append(KvTable(0, 30)).ok());
  ASSERT_TRUE(table_->Append(KvTable(30, 60)).ok());
  std::vector<dml::UpdateAssignment> set;
  set.push_back({1, Lit(int64_t{7})});
  auto result = dml::ExecuteUpdate(table_.get(), set, nullptr, &driver_,
                                   ctx_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows_affected, 60);
  EXPECT_EQ(result->files_rewritten, 2);
  for (const auto& [id, val] : ScanRows(table_.get(), &driver_)) {
    EXPECT_EQ(val, 7) << "id " << id;
  }
}

TEST_F(DmlTest, MergeUpdatesMatchesAndInsertsRest) {
  ASSERT_TRUE(table_->Append(KvTable(0, 50)).ok());
  ASSERT_TRUE(table_->Append(KvTable(50, 100)).ok());
  // Source: ids 90..110 → 10 matched (90..99), 10 inserted (100..109),
  // all with val = id + 5000.
  Table source = KvTable(90, 110, 5000);

  dml::MergeSpec spec;
  spec.source = plan::Scan(&source);
  spec.target_keys = {0};
  spec.source_keys = {0};
  // WHEN MATCHED THEN UPDATE SET val = source.val: exprs over
  // [target id, target val, source id, source val].
  spec.matched_exprs = {Col(0, DataType::Int64(), "id"),
                        Col(3, DataType::Int64(), "val")};
  // WHEN NOT MATCHED THEN INSERT (id, val) VALUES (s.id, s.val): over the
  // source columns.
  spec.insert_exprs = {Col(0, DataType::Int64(), "id"),
                       Col(1, DataType::Int64(), "val")};
  auto result = dml::ExecuteMerge(table_.get(), spec, &driver_, ctx_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows_affected, 10);
  EXPECT_EQ(result->rows_inserted, 10);
  EXPECT_EQ(result->files_rewritten, 1);  // only the 50..100 file matched

  auto rows = ScanRows(table_.get(), &driver_);
  ASSERT_EQ(rows.size(), 110u);
  for (const auto& [id, val] : rows) {
    EXPECT_EQ(val, id >= 90 ? id + 5000 : id) << "id " << id;
  }
  ExpectNoLeakedDataFiles(&store_, table_.get());
}

TEST_F(DmlTest, CancelledDmlStagesNothing) {
  ASSERT_TRUE(table_->Append(KvTable(0, 100)).ok());
  QueryControl control;
  control.Cancel();
  ExecContext ctx = ctx_;
  ctx.control = &control;
  auto result = dml::ExecuteDelete(table_.get(),
                                   eb::Lt(IdCol(), Lit(int64_t{50})),
                                   &driver_, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled());
  auto latest = table_->LatestVersion();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, 1);  // nothing committed
  ExpectNoLeakedDataFiles(&store_, table_.get());
}

TEST_F(DmlTest, FailedStagingWriteReleasesAndSurfacesError) {
  ASSERT_TRUE(table_->Append(KvTable(0, 100)).ok());
  store_.FailNextPuts(1);
  auto result = dml::ExecuteDelete(table_.get(),
                                   eb::Lt(IdCol(), Lit(int64_t{50})),
                                   &driver_, ctx_);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError()) << result.status().ToString();
  ExpectNoLeakedDataFiles(&store_, table_.get());
}

// --- Conflict retry convergence ---------------------------------------------

TEST(DeltaDmlRaceTest, DisjointDeletesAllConvergeUnderRetry) {
  ObjectStore store;
  {
    auto created = DeltaTable::Create(&store, "tables/deletes", KvSchema());
    ASSERT_TRUE(created.ok());
    // One wide file every DELETE touches: every pair of deletes conflicts
    // (remove/remove) and must converge through retries.
    ASSERT_TRUE((*created)->Append(KvTable(0, 400)).ok());
  }
  constexpr int kThreads = 4;
  std::atomic<int64_t> retries{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      auto table = DeltaTable::Open(&store, "tables/deletes");
      ASSERT_TRUE(table.ok());
      exec::Driver driver(1);
      // DELETE WHERE id in [t*100, t*100+50): disjoint row ranges, same
      // physical file.
      ExprPtr pred = eb::And(eb::Ge(IdCol(), Lit(int64_t{t * 100})),
                             eb::Lt(IdCol(), Lit(int64_t{t * 100 + 50})));
      dml::DmlOptions options;
      options.max_retries = 32;
      auto result =
          dml::ExecuteDelete(table->get(), pred, &driver,
                             ExecContext{}, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->rows_affected, 50);
      retries.fetch_add(result->conflicts_retried);
    });
  }
  for (auto& t : threads) t.join();

  auto table = DeltaTable::Open(&store, "tables/deletes");
  ASSERT_TRUE(table.ok());
  exec::Driver driver(1);
  auto rows = ScanRows(table->get(), &driver);
  ASSERT_EQ(rows.size(), 200u);
  for (const auto& [id, val] : rows) {
    EXPECT_GE(id % 100, 50) << "id " << id << " should have been deleted";
  }
  ExpectNoLeakedDataFiles(&store, table->get());
}

// --- Compaction --------------------------------------------------------------

TEST(CompactorTest, CoalescesSmallFilesWithoutChangingRows) {
  ObjectStore store;
  auto created = DeltaTable::Create(&store, "tables/compact", KvSchema());
  ASSERT_TRUE(created.ok());
  DeltaTable* table = created->get();
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(table->Append(KvTable(i * 10, (i + 1) * 10)).ok());
  }
  exec::Driver driver(1);
  auto before = ScanRows(table, &driver);

  exec::Compactor::Options options;
  options.small_file_rows = 100;
  options.target_file_rows = 40;
  exec::Compactor compactor(table, options);
  ASSERT_TRUE(compactor.RunOncePass().ok());

  auto snapshot = table->Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->files.size(), 2u);  // 8 × 10 rows → 2 × 40 rows
  EXPECT_EQ(ScanRows(table, &driver), before);
  EXPECT_EQ(compactor.stats().commits, 2);
  EXPECT_EQ(compactor.stats().files_compacted, 8);
}

TEST(CompactorTest, BackgroundCompactionCoexistsWithWriters) {
  ObjectStore store;
  ASSERT_TRUE(DeltaTable::Create(&store, "tables/bg", KvSchema()).ok());
  auto handle = DeltaTable::Open(&store, "tables/bg");
  ASSERT_TRUE(handle.ok());

  exec::Compactor::Options options;
  options.small_file_rows = 1000;
  options.target_file_rows = 200;
  options.interval_ms = 1;
  exec::Compactor compactor(handle->get(), options);
  compactor.Start();

  constexpr int kThreads = 4;
  constexpr int kAppendsEach = 8;
  constexpr int kRows = 10;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; t++) {
    writers.emplace_back([&, t] {
      auto table = DeltaTable::Open(&store, "tables/bg");
      ASSERT_TRUE(table.ok());
      for (int a = 0; a < kAppendsEach; a++) {
        int64_t base = (t * kAppendsEach + a) * kRows;
        ASSERT_TRUE((*table)->Append(KvTable(base, base + kRows)).ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  // A few more passes so the tail of small files coalesces too.
  ASSERT_TRUE(compactor.RunOncePass().ok());
  compactor.Stop();

  exec::Driver driver(1);
  auto rows = ScanRows(handle->get(), &driver);
  ASSERT_EQ(rows.size(),
            static_cast<size_t>(kThreads * kAppendsEach * kRows));
  for (size_t i = 0; i < rows.size(); i++) {
    EXPECT_EQ(rows[i].first, static_cast<int64_t>(i));
  }
  ExpectNoLeakedDataFiles(&store, handle->get());
}

// --- Time travel across DML history ------------------------------------------

TEST(DeltaTimeTravelTest, VersionsStayPinnedAcrossDmlHistory) {
  ObjectStore store;
  auto created = DeltaTable::Create(&store, "tables/tt", KvSchema());
  ASSERT_TRUE(created.ok());
  DeltaTable* table = created->get();
  exec::Driver driver(2);
  ExecContext ctx;

  // Build a history: append, append, delete, update, merge — recording
  // the full table contents at every committed version.
  std::vector<std::vector<std::pair<int64_t, int64_t>>> history;
  auto record = [&] { history.push_back(ScanRows(table, &driver)); };

  ASSERT_TRUE(table->Append(KvTable(0, 50)).ok());
  record();
  ASSERT_TRUE(table->Append(KvTable(50, 100)).ok());
  record();
  ASSERT_TRUE(dml::ExecuteDelete(table, eb::Lt(IdCol(), Lit(int64_t{10})),
                                 &driver, ctx)
                  .ok());
  record();
  std::vector<dml::UpdateAssignment> set;
  set.push_back({1, eb::Mul(ValCol(), Lit(int64_t{2}))});
  ASSERT_TRUE(dml::ExecuteUpdate(table, set,
                                 eb::Ge(IdCol(), Lit(int64_t{95})), &driver,
                                 ctx)
                  .ok());
  record();
  Table source = KvTable(98, 105, 9000);
  dml::MergeSpec spec;
  spec.source = plan::Scan(&source);
  spec.target_keys = {0};
  spec.source_keys = {0};
  spec.matched_exprs = {Col(0, DataType::Int64(), "id"),
                        Col(3, DataType::Int64(), "val")};
  spec.insert_exprs = {Col(0, DataType::Int64(), "id"),
                       Col(1, DataType::Int64(), "val")};
  ASSERT_TRUE(dml::ExecuteMerge(table, spec, &driver, ctx).ok());
  record();

  // Every recorded version still reads exactly what it read then.
  auto latest = table->LatestVersion();
  ASSERT_TRUE(latest.ok());
  ASSERT_EQ(*latest, static_cast<int64_t>(history.size()));
  for (size_t i = 0; i < history.size(); i++) {
    EXPECT_EQ(ScanRows(table, &driver, static_cast<int64_t>(i + 1)),
              history[i])
        << "version " << (i + 1) << " drifted";
  }
}

// --- DML through the query service -------------------------------------------

TEST(ServiceWriteTest, DmlRunsAsWriteSessionWithCancellation) {
  ObjectStore store;
  auto created = DeltaTable::Create(&store, "tables/svc", KvSchema());
  ASSERT_TRUE(created.ok());
  DeltaTable* table = created->get();
  ASSERT_TRUE(table->Append(KvTable(0, 100)).ok());

  service::QueryService svc;
  auto session = svc.SubmitWrite(
      [table](exec::Driver* driver, const ExecContext& ctx)
          -> Result<Table> {
        PHOTON_ASSIGN_OR_RETURN(
            dml::DmlResult result,
            dml::ExecuteDelete(table, eb::Lt(IdCol(), Lit(int64_t{20})),
                               driver, ctx));
        TableBuilder out(Schema({Field("rows_affected",
                                       DataType::Int64())}));
        out.AppendRow({Value::Int64(result.rows_affected)});
        return out.Finish();
      });
  ASSERT_TRUE(session->Wait().ok());
  EXPECT_EQ(session->table().ToRows()[0][0].i64(), 20);

  // A cancelled write session unwinds without committing or leaking.
  auto cancelled = svc.SubmitWrite(
      [table](exec::Driver* driver, const ExecContext& ctx)
          -> Result<Table> {
        PHOTON_ASSIGN_OR_RETURN(
            dml::DmlResult result,
            dml::ExecuteDelete(table, eb::Ge(IdCol(), Lit(int64_t{50})),
                               driver, ctx));
        (void)result;
        return Table(Schema());
      },
      [] {
        service::SessionOptions o;
        o.deadline_ms = 0;  // expires immediately
        return o;
      }());
  Status status = cancelled->Wait();
  if (!status.ok()) {
    EXPECT_TRUE(status.IsCancelled() || status.IsDeadlineExceeded())
        << status.ToString();
  }
  svc.Drain();
  ExpectNoLeakedDataFiles(&store, table);
}

}  // namespace
}  // namespace photon
