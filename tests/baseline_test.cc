#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/row_agg.h"
#include "baseline/row_join.h"
#include "baseline/row_ops.h"
#include "baseline/row_shuffle.h"
#include "baseline/row_sort.h"
#include "common/rng.h"
#include "expr/builder.h"
#include "vector/table.h"

namespace photon {
namespace baseline {
namespace {

using eb::Col;
using eb::Lit;

Table MakeTable(const Schema& schema,
                const std::vector<std::vector<Value>>& rows) {
  TableBuilder builder(schema, 4);
  for (const auto& row : rows) builder.AppendRow(row);
  return builder.Finish();
}

Schema KV() {
  return Schema(
      {Field("k", DataType::Int64()), Field("v", DataType::Int64())});
}

/// Sorts boxed row sets for order-insensitive comparison.
std::vector<std::vector<Value>> Sorted(std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              for (size_t i = 0; i < a.size(); i++) {
                int c = (a[i].is_null() && b[i].is_null()) ? 0
                        : a[i].is_null()                   ? -1
                        : b[i].is_null()                   ? 1
                                         : a[i].Compare(b[i]);
                if (c != 0) return c < 0;
              }
              return false;
            });
  return rows;
}

TEST(RowOpsTest, ScanFilterProject) {
  Table t = MakeTable(KV(), {{Value::Int64(1), Value::Int64(10)},
                             {Value::Int64(2), Value::Int64(20)},
                             {Value::Int64(3), Value::Int64(30)}});
  auto scan = std::make_unique<RowScanOperator>(&t);
  auto filter = std::make_unique<RowFilterOperator>(
      std::move(scan),
      eb::Ge(Col(1, DataType::Int64(), "v"), Lit(int64_t{20})));
  std::vector<ExprPtr> exprs = {
      eb::Add(Col(0, DataType::Int64()), Col(1, DataType::Int64()))};
  auto project = std::make_unique<RowProjectOperator>(
      std::move(filter), exprs, std::vector<std::string>{"s"});
  Result<Table> result = CollectAllRows(project.get());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2);
  EXPECT_EQ(result->GetRow(0)[0], Value::Int64(22));
  EXPECT_EQ(result->GetRow(1)[0], Value::Int64(33));
}

TEST(RowAggTest, MatchesExpectations) {
  Table t = MakeTable(KV(), {{Value::Int64(1), Value::Int64(5)},
                             {Value::Int64(2), Value::Int64(7)},
                             {Value::Int64(1), Value::Null()},
                             {Value::Int64(1), Value::Int64(3)}});
  std::vector<AggregateSpec> aggs;
  aggs.push_back({AggKind::kSum, Col(1, DataType::Int64(), "v"), "s"});
  aggs.push_back({AggKind::kCount, Col(1, DataType::Int64(), "v"), "c"});
  aggs.push_back({AggKind::kCountStar, nullptr, "cs"});
  auto agg = std::make_unique<RowHashAggregateOperator>(
      std::make_unique<RowScanOperator>(&t),
      std::vector<ExprPtr>{Col(0, DataType::Int64(), "k")},
      std::vector<std::string>{"k"}, std::move(aggs));
  Result<Table> result = CollectAllRows(agg.get());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_rows(), 2);
  for (auto& row : result->ToRows()) {
    if (row[0].i64() == 1) {
      EXPECT_EQ(row[1], Value::Int64(8));
      EXPECT_EQ(row[2], Value::Int64(2));
      EXPECT_EQ(row[3], Value::Int64(3));
    } else {
      EXPECT_EQ(row[1], Value::Int64(7));
    }
  }
}

class BaselineJoinTest : public ::testing::TestWithParam<bool> {};

TEST_P(BaselineJoinTest, AllJoinTypesMatchNaiveOracle) {
  bool use_smj = GetParam();
  Rng rng(404);
  Schema ls({Field("lk", DataType::Int64()), Field("lv", DataType::Int64())});
  Schema rs({Field("rk", DataType::Int64()), Field("rv", DataType::Int64())});
  std::vector<std::vector<Value>> lrows, rrows;
  for (int i = 0; i < 200; i++) {
    lrows.push_back({rng.Uniform(0, 9) == 0 ? Value::Null()
                                            : Value::Int64(rng.Uniform(0, 30)),
                     Value::Int64(i)});
  }
  for (int i = 0; i < 150; i++) {
    rrows.push_back({rng.Uniform(0, 9) == 0 ? Value::Null()
                                            : Value::Int64(rng.Uniform(0, 30)),
                     Value::Int64(1000 + i)});
  }
  Table lt = MakeTable(ls, lrows);
  Table rt = MakeTable(rs, rrows);

  for (JoinType type : {JoinType::kInner, JoinType::kLeftOuter,
                        JoinType::kLeftSemi, JoinType::kLeftAnti}) {
    auto make_join = [&]() -> RowOperatorPtr {
      auto l = std::make_unique<RowScanOperator>(&lt);
      auto r = std::make_unique<RowScanOperator>(&rt);
      std::vector<ExprPtr> lk = {Col(0, DataType::Int64(), "lk")};
      std::vector<ExprPtr> rk = {Col(0, DataType::Int64(), "rk")};
      if (use_smj) {
        return std::make_unique<RowSortMergeJoinOperator>(
            std::move(l), std::move(r), lk, rk, type);
      }
      return std::make_unique<RowShuffledHashJoinOperator>(
          std::move(l), std::move(r), lk, rk, type);
    };
    RowOperatorPtr join = make_join();
    Result<Table> result = CollectAllRows(join.get());
    ASSERT_TRUE(result.ok());

    // Naive nested-loop oracle.
    std::vector<std::vector<Value>> expected;
    for (const auto& lr : lrows) {
      bool matched = false;
      for (const auto& rr : rrows) {
        if (lr[0].is_null() || rr[0].is_null()) continue;
        if (lr[0].Equals(rr[0])) {
          matched = true;
          if (type == JoinType::kInner || type == JoinType::kLeftOuter) {
            expected.push_back({lr[0], lr[1], rr[0], rr[1]});
          }
        }
      }
      if (!matched && type == JoinType::kLeftOuter) {
        expected.push_back({lr[0], lr[1], Value::Null(), Value::Null()});
      }
      if (matched && type == JoinType::kLeftSemi) expected.push_back(lr);
      if (!matched && type == JoinType::kLeftAnti) expected.push_back(lr);
    }
    EXPECT_EQ(Sorted(result->ToRows()), Sorted(expected))
        << "join type " << static_cast<int>(type) << " smj=" << use_smj;
  }
}

INSTANTIATE_TEST_SUITE_P(SmjAndShj, BaselineJoinTest,
                         ::testing::Values(true, false));

TEST(RowSortTest, OrdersRows) {
  Table t = MakeTable(KV(), {{Value::Int64(3), Value::Int64(1)},
                             {Value::Null(), Value::Int64(2)},
                             {Value::Int64(1), Value::Int64(3)}});
  std::vector<SortKey> keys;
  keys.push_back({Col(0, DataType::Int64(), "k"), true, false});  // nulls last
  auto sort = std::make_unique<RowSortOperator>(
      std::make_unique<RowScanOperator>(&t), std::move(keys));
  Result<Table> result = CollectAllRows(sort.get());
  ASSERT_TRUE(result.ok());
  auto rows = result->ToRows();
  EXPECT_EQ(rows[0][0], Value::Int64(1));
  EXPECT_EQ(rows[1][0], Value::Int64(3));
  EXPECT_TRUE(rows[2][0].is_null());
}

TEST(RowShuffleTest, RoundTrip) {
  Rng rng(77);
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 3000; i++) {
    rows.push_back({Value::Int64(rng.Uniform(0, 50)), Value::Int64(i)});
  }
  Table t = MakeTable(KV(), rows);
  auto write = std::make_unique<RowShuffleWriteOperator>(
      std::make_unique<RowScanOperator>(&t),
      std::vector<ExprPtr>{Col(0, DataType::Int64(), "k")}, "bl-rt", 4);
  ASSERT_TRUE(write->Open().ok());
  Row sink;
  Result<bool> done = write->Next(&sink);
  ASSERT_TRUE(done.ok());
  EXPECT_FALSE(*done);
  EXPECT_GT(write->bytes_written(), 0);

  int64_t total = 0;
  for (int p = 0; p < 4; p++) {
    auto read = std::make_unique<RowShuffleReadOperator>(KV(), "bl-rt", p);
    Result<Table> part = CollectAllRows(read.get());
    ASSERT_TRUE(part.ok());
    total += part->num_rows();
  }
  EXPECT_EQ(total, 3000);
  ObjectStore::Default().DeletePrefix("rowshuffle/bl-rt/");
}

}  // namespace
}  // namespace baseline
}  // namespace photon
