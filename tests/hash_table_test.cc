#include "ht/vectorized_hash_table.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"

namespace photon {
namespace {

/// Builds a single-column int64 batch.
std::unique_ptr<ColumnBatch> IntBatch(const std::vector<int64_t>& values,
                                      const std::vector<int>& null_rows = {}) {
  Schema schema({Field("k", DataType::Int64())});
  auto batch = std::make_unique<ColumnBatch>(
      schema, std::max<int>(static_cast<int>(values.size()), 1));
  for (size_t i = 0; i < values.size(); i++) {
    batch->column(0)->data<int64_t>()[i] = values[i];
  }
  for (int r : null_rows) batch->column(0)->SetNull(r);
  batch->set_num_rows(static_cast<int>(values.size()));
  batch->SetAllActive();
  return batch;
}

TEST(VectorizedHashTableTest, LookupOrInsertGroups) {
  VectorizedHashTable ht({DataType::Int64()}, 8, /*match_null_keys=*/true);
  auto batch = IntBatch({1, 2, 1, 3, 2, 1});
  std::vector<const ColumnVector*> keys = {batch->column(0)};
  std::vector<uint64_t> hashes(6);
  VectorizedHashTable::HashKeys(keys, *batch, hashes.data());
  std::vector<uint8_t*> entries(6);
  auto inserted = std::make_unique<bool[]>(6);
  ASSERT_TRUE(ht.LookupOrInsert(keys, *batch, hashes.data(), entries.data(),
                                inserted.get())
                  .ok());
  EXPECT_EQ(ht.num_entries(), 3);
  EXPECT_TRUE(inserted[0]);
  EXPECT_TRUE(inserted[1]);
  EXPECT_FALSE(inserted[2]);
  EXPECT_EQ(entries[0], entries[2]);
  EXPECT_EQ(entries[0], entries[5]);
  EXPECT_EQ(entries[1], entries[4]);
  EXPECT_NE(entries[0], entries[3]);
}

TEST(VectorizedHashTableTest, NullKeysGroupTogetherUnderGroupSemantics) {
  VectorizedHashTable ht({DataType::Int64()}, 8, /*match_null_keys=*/true);
  auto batch = IntBatch({0, 0, 5}, /*null_rows=*/{0, 1});
  std::vector<const ColumnVector*> keys = {batch->column(0)};
  std::vector<uint64_t> hashes(3);
  VectorizedHashTable::HashKeys(keys, *batch, hashes.data());
  std::vector<uint8_t*> entries(3);
  auto inserted = std::make_unique<bool[]>(3);
  ASSERT_TRUE(ht.LookupOrInsert(keys, *batch, hashes.data(), entries.data(),
                                inserted.get())
                  .ok());
  EXPECT_EQ(ht.num_entries(), 2);
  EXPECT_EQ(entries[0], entries[1]);  // NULL == NULL for GROUP BY
  EXPECT_TRUE(ht.KeyIsNull(entries[0], 0));
}

TEST(VectorizedHashTableTest, NullKeysNeverMatchUnderJoinSemantics) {
  VectorizedHashTable ht({DataType::Int64()}, 8, /*match_null_keys=*/false);
  auto batch = IntBatch({0, 7}, /*null_rows=*/{0});
  std::vector<const ColumnVector*> keys = {batch->column(0)};
  std::vector<uint64_t> hashes(2);
  VectorizedHashTable::HashKeys(keys, *batch, hashes.data());
  std::vector<uint8_t*> entries(2);
  auto inserted = std::make_unique<bool[]>(2);
  ASSERT_TRUE(ht.LookupOrInsert(keys, *batch, hashes.data(), entries.data(),
                                inserted.get())
                  .ok());
  EXPECT_EQ(entries[0], nullptr);  // NULL key row is skipped
  EXPECT_NE(entries[1], nullptr);
  EXPECT_EQ(ht.num_entries(), 1);

  // Lookup of a NULL key also misses.
  ht.Lookup(keys, *batch, hashes.data(), entries.data());
  EXPECT_EQ(entries[0], nullptr);
  EXPECT_NE(entries[1], nullptr);
}

TEST(VectorizedHashTableTest, CompositeAndStringKeys) {
  Schema schema({Field("k1", DataType::Int32()),
                 Field("k2", DataType::String())});
  ColumnBatch batch(schema, 4);
  batch.column(0)->data<int32_t>()[0] = 1;
  batch.column(1)->SetString(0, "alpha");
  batch.column(0)->data<int32_t>()[1] = 1;
  batch.column(1)->SetString(1, "beta");
  batch.column(0)->data<int32_t>()[2] = 2;
  batch.column(1)->SetString(2, "alpha");
  batch.column(0)->data<int32_t>()[3] = 1;
  batch.column(1)->SetString(3, "alpha");
  batch.set_num_rows(4);
  batch.SetAllActive();

  VectorizedHashTable ht({DataType::Int32(), DataType::String()}, 0, true);
  std::vector<const ColumnVector*> keys = {batch.column(0), batch.column(1)};
  std::vector<uint64_t> hashes(4);
  VectorizedHashTable::HashKeys(keys, batch, hashes.data());
  std::vector<uint8_t*> entries(4);
  auto inserted = std::make_unique<bool[]>(4);
  ASSERT_TRUE(ht.LookupOrInsert(keys, batch, hashes.data(), entries.data(),
                                inserted.get())
                  .ok());
  EXPECT_EQ(ht.num_entries(), 3);
  EXPECT_EQ(entries[0], entries[3]);
  EXPECT_NE(entries[0], entries[1]);
  EXPECT_NE(entries[0], entries[2]);
  EXPECT_EQ(ht.GetKeyValue(entries[1], 1), Value::String("beta"));
}

TEST(VectorizedHashTableTest, ChainedDuplicates) {
  VectorizedHashTable ht({DataType::Int64()}, 8, false);
  auto batch = IntBatch({42});
  std::vector<const ColumnVector*> keys = {batch->column(0)};
  uint64_t hash;
  VectorizedHashTable::HashKeys(keys, *batch, &hash);
  uint8_t* entry;
  bool inserted;
  ASSERT_TRUE(
      ht.LookupOrInsert(keys, *batch, &hash, &entry, &inserted).ok());
  ASSERT_TRUE(inserted);
  uint8_t* dup1 = ht.InsertChained(entry);
  uint8_t* dup2 = ht.InsertChained(entry);
  EXPECT_EQ(ht.num_entries(), 3);
  // Chain: entry -> dup2 -> dup1.
  EXPECT_EQ(VectorizedHashTable::next(entry), dup2);
  EXPECT_EQ(VectorizedHashTable::next(dup2), dup1);
  EXPECT_EQ(VectorizedHashTable::next(dup1), nullptr);
  // Chained entries carry the same key.
  EXPECT_EQ(ht.GetKeyValue(dup1, 0), Value::Int64(42));

  int count = 0;
  ht.ForEachEntryWithChains([&](uint8_t*) { count++; });
  EXPECT_EQ(count, 3);
  count = 0;
  ht.ForEachEntry([&](uint8_t*) { count++; });
  EXPECT_EQ(count, 1);
}

TEST(VectorizedHashTableTest, GrowPreservesEntries) {
  VectorizedHashTable ht({DataType::Int64()}, 8, true);
  constexpr int kN = 10000;
  std::vector<int64_t> values(kN);
  for (int i = 0; i < kN; i++) values[i] = i;
  auto batch = IntBatch(values);
  std::vector<const ColumnVector*> keys = {batch->column(0)};
  std::vector<uint64_t> hashes(kN);
  VectorizedHashTable::HashKeys(keys, *batch, hashes.data());
  std::vector<uint8_t*> entries(kN);
  auto inserted = std::make_unique<bool[]>(kN);
  ASSERT_TRUE(ht.LookupOrInsert(keys, *batch, hashes.data(), entries.data(),
                                inserted.get())
                  .ok());
  EXPECT_EQ(ht.num_entries(), kN);
  EXPECT_GT(ht.num_resizes(), 0);
  // All keys still found after growth; entry pointers were never moved.
  std::vector<uint8_t*> found(kN);
  ht.Lookup(keys, *batch, hashes.data(), found.data());
  for (int i = 0; i < kN; i++) {
    EXPECT_EQ(found[i], entries[i]) << "key " << i;
  }
}

// Property test: hash table agrees with std::unordered_map on a random
// mixed workload (group counting).
TEST(VectorizedHashTableTest, MatchesUnorderedMapOracle) {
  Rng rng(99);
  VectorizedHashTable ht({DataType::Int64()}, sizeof(int64_t), true);
  std::unordered_map<int64_t, int64_t> oracle;

  for (int round = 0; round < 50; round++) {
    constexpr int kBatch = 512;
    std::vector<int64_t> values(kBatch);
    for (int i = 0; i < kBatch; i++) {
      values[i] = rng.Uniform(0, 300);  // heavy duplication
    }
    auto batch = IntBatch(values);
    std::vector<const ColumnVector*> keys = {batch->column(0)};
    std::vector<uint64_t> hashes(kBatch);
    VectorizedHashTable::HashKeys(keys, *batch, hashes.data());
    std::vector<uint8_t*> entries(kBatch);
    auto inserted = std::make_unique<bool[]>(kBatch);
    ASSERT_TRUE(ht.LookupOrInsert(keys, *batch, hashes.data(),
                                  entries.data(), inserted.get())
                    .ok());
    for (int i = 0; i < kBatch; i++) {
      if (inserted[i]) {
        *reinterpret_cast<int64_t*>(ht.payload(entries[i])) = 0;
      }
      (*reinterpret_cast<int64_t*>(ht.payload(entries[i])))++;
      oracle[values[i]]++;
    }
  }

  EXPECT_EQ(ht.num_entries(), static_cast<int64_t>(oracle.size()));
  ht.ForEachEntry([&](uint8_t* entry) {
    Value key = ht.GetKeyValue(entry, 0);
    int64_t count = *reinterpret_cast<int64_t*>(ht.payload(entry));
    auto it = oracle.find(key.i64());
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(count, it->second) << "key " << key.i64();
  });
}

TEST(VectorizedHashTableTest, SparseBatchProbes) {
  // Probing with a position list only touches active rows.
  VectorizedHashTable ht({DataType::Int64()}, 0, false);
  auto build = IntBatch({10, 20, 30});
  std::vector<const ColumnVector*> bkeys = {build->column(0)};
  std::vector<uint64_t> bh(3);
  VectorizedHashTable::HashKeys(bkeys, *build, bh.data());
  std::vector<uint8_t*> be(3);
  auto bi = std::make_unique<bool[]>(3);
  ASSERT_TRUE(
      ht.LookupOrInsert(bkeys, *build, bh.data(), be.data(), bi.get()).ok());

  auto probe = IntBatch({10, 999, 30, 999});
  int32_t* pos = probe->mutable_pos_list();
  pos[0] = 0;
  pos[1] = 2;
  probe->SetActiveRows(2);
  std::vector<const ColumnVector*> pkeys = {probe->column(0)};
  std::vector<uint64_t> ph(2);
  VectorizedHashTable::HashKeys(pkeys, *probe, ph.data());
  std::vector<uint8_t*> pe(2);
  ht.Lookup(pkeys, *probe, ph.data(), pe.data());
  EXPECT_EQ(pe[0], be[0]);
  EXPECT_EQ(pe[1], be[2]);
}

}  // namespace
}  // namespace photon
