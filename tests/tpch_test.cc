#include <gtest/gtest.h>

#include <algorithm>

#include "plan/logical_plan.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"

namespace photon {
namespace {

constexpr double kTestScale = 0.002;  // ~12k lineitems: fast but non-trivial

const tpch::TpchData& Data() {
  static const tpch::TpchData* data =
      new tpch::TpchData(tpch::GenerateTpch(kTestScale));
  return *data;
}

std::vector<std::vector<Value>> Sorted(std::vector<std::vector<Value>> rows) {
  std::sort(rows.begin(), rows.end(),
            [](const std::vector<Value>& a, const std::vector<Value>& b) {
              for (size_t i = 0; i < a.size(); i++) {
                int c = (a[i].is_null() && b[i].is_null()) ? 0
                        : a[i].is_null()                   ? -1
                        : b[i].is_null()                   ? 1
                                         : a[i].Compare(b[i]);
                if (c != 0) return c < 0;
              }
              return false;
            });
  return rows;
}

TEST(TpchGenTest, TableCardinalities) {
  const tpch::TpchData& d = Data();
  EXPECT_EQ(d.region.num_rows(), 5);
  EXPECT_EQ(d.nation.num_rows(), 25);
  EXPECT_GT(d.supplier.num_rows(), 0);
  EXPECT_EQ(d.partsupp.num_rows(), d.part.num_rows() * 4);
  EXPECT_GT(d.lineitem.num_rows(), d.orders.num_rows());
  // Lineitem count averages ~4 per order.
  EXPECT_LT(d.lineitem.num_rows(), d.orders.num_rows() * 8);
}

TEST(TpchGenTest, Deterministic) {
  tpch::TpchData a = tpch::GenerateTpch(0.001, 42);
  tpch::TpchData b = tpch::GenerateTpch(0.001, 42);
  EXPECT_EQ(a.lineitem.num_rows(), b.lineitem.num_rows());
  EXPECT_EQ(a.lineitem.GetRow(100), b.lineitem.GetRow(100));
  tpch::TpchData c = tpch::GenerateTpch(0.001, 43);
  EXPECT_NE(a.lineitem.GetRow(100), c.lineitem.GetRow(100));
}

/// Every TPC-H query must produce identical results from Photon and from
/// the baseline engine — the full-plan version of §5.6's end-to-end tests,
/// and the precondition for Figure 8 being meaningful.
class TpchConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(TpchConsistencyTest, PhotonMatchesBaseline) {
  int q = GetParam();
  Result<plan::PlanPtr> p = tpch::TpchQuery(q, Data(), kTestScale);
  ASSERT_TRUE(p.ok()) << p.status().ToString();

  Result<OperatorPtr> photon_op = plan::CompilePhoton(*p);
  ASSERT_TRUE(photon_op.ok()) << photon_op.status().ToString();
  Result<Table> photon_result = CollectAll(photon_op->get());
  ASSERT_TRUE(photon_result.ok()) << photon_result.status().ToString();

  Result<baseline::RowOperatorPtr> base_op = plan::CompileBaseline(*p);
  ASSERT_TRUE(base_op.ok()) << base_op.status().ToString();
  Result<Table> base_result = baseline::CollectAllRows(base_op->get());
  ASSERT_TRUE(base_result.ok()) << base_result.status().ToString();

  ASSERT_EQ(photon_result->num_rows(), base_result->num_rows())
      << "Q" << q << " row counts diverge";
  // Queries ending in Limit after a sort with ties may legitimately pick
  // different tied rows; compare as sets, which the spec's validation also
  // effectively does at this granularity.
  EXPECT_EQ(Sorted(photon_result->ToRows()), Sorted(base_result->ToRows()))
      << "Q" << q << " results diverge";
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchConsistencyTest,
                         ::testing::Range(1, 23));

TEST(TpchResultTest, Q1ShapeIsSane) {
  Result<plan::PlanPtr> p = tpch::TpchQuery(1, Data(), kTestScale);
  ASSERT_TRUE(p.ok());
  Result<OperatorPtr> op = plan::CompilePhoton(*p);
  ASSERT_TRUE(op.ok());
  Result<Table> r = CollectAll(op->get());
  ASSERT_TRUE(r.ok());
  // Q1 groups by (returnflag, linestatus): at most 2x3 combinations exist
  // in generated data (A/F, N/F, N/O, R/F).
  EXPECT_GE(r->num_rows(), 3);
  EXPECT_LE(r->num_rows(), 6);
  // Every aggregate column is non-null and positive.
  for (auto& row : r->ToRows()) {
    EXPECT_FALSE(row[2].is_null());  // sum_qty
    EXPECT_GT(row[9].i64(), 0);      // count_order
  }
}

TEST(TpchResultTest, Q6ReturnsSingleScalar) {
  Result<plan::PlanPtr> p = tpch::TpchQuery(6, Data(), kTestScale);
  ASSERT_TRUE(p.ok());
  Result<OperatorPtr> op = plan::CompilePhoton(*p);
  ASSERT_TRUE(op.ok());
  Result<Table> r = CollectAll(op->get());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_rows(), 1);
}

}  // namespace
}  // namespace photon
