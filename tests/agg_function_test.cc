#include "expr/agg_function.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/table.h"

namespace photon {
namespace {

/// Drives one aggregate function directly: feeds it batches, optionally
/// round-trips the state through Serialize/Deserialize and Merge, then
/// finalizes. Exercises the state machinery the HashAggregate operator
/// relies on, in isolation.
class AggHarness {
 public:
  AggHarness(AggKind kind, DataType arg_type) : arg_type_(arg_type) {
    Result<std::unique_ptr<AggregateFunction>> fn =
        MakeAggregateFunction(kind, arg_type);
    PHOTON_CHECK(fn.ok());
    fn_ = std::move(fn).ValueOrDie();
    fn_->set_arena(&arena_);
    state_.assign(fn_->state_bytes() + 16, 0);
    fn_->Init(state());
  }

  uint8_t* state() {
    // 16-align within the backing buffer (decimal states hold __int128).
    return reinterpret_cast<uint8_t*>(
        (reinterpret_cast<uintptr_t>(state_.data()) + 15) & ~uintptr_t{15});
  }

  void Update(const std::vector<Value>& values) {
    Schema schema({Field("x", arg_type_)});
    ColumnBatch batch(schema, std::max<int>(1, values.size()));
    for (size_t i = 0; i < values.size(); i++) {
      batch.column(0)->SetValue(static_cast<int>(i), values[i]);
    }
    batch.set_num_rows(static_cast<int>(values.size()));
    batch.SetAllActive();
    std::vector<uint8_t*> states(values.size(), state());
    fn_->Update(batch.column(0), batch, states.data());
  }

  Value Finalize() {
    ColumnVector out(fn_->result_type(), 1);
    fn_->Finalize(state(), &out, 0);
    return out.GetValue(0);
  }

  /// Serialize -> fresh state -> Deserialize -> Merge into another fresh
  /// state; returns the merged finalize. Mimics the spill-merge path.
  Value RoundTripAndFinalize() {
    BinaryWriter w;
    fn_->Serialize(state(), &w);
    std::vector<uint8_t> buf_a(fn_->state_bytes() + 16, 0),
        buf_b(fn_->state_bytes() + 16, 0);
    auto align = [](std::vector<uint8_t>& v) {
      return reinterpret_cast<uint8_t*>(
          (reinterpret_cast<uintptr_t>(v.data()) + 15) & ~uintptr_t{15});
    };
    uint8_t* restored = align(buf_a);
    uint8_t* merged = align(buf_b);
    fn_->Init(restored);
    BinaryReader r(w.data().data(), w.size());
    PHOTON_CHECK(fn_->Deserialize(&r, restored).ok());
    fn_->Init(merged);
    fn_->Merge(merged, restored);
    ColumnVector out(fn_->result_type(), 1);
    fn_->Finalize(merged, &out, 0);
    return out.GetValue(0);
  }

 private:
  DataType arg_type_;
  std::unique_ptr<AggregateFunction> fn_;
  VarLenPool arena_;
  std::vector<uint8_t> state_;
};

TEST(AggFunctionTest, CountSkipsNulls) {
  AggHarness h(AggKind::kCount, DataType::Int64());
  h.Update({Value::Int64(1), Value::Null(), Value::Int64(3)});
  EXPECT_EQ(h.Finalize(), Value::Int64(2));
  EXPECT_EQ(h.RoundTripAndFinalize(), Value::Int64(2));
}

TEST(AggFunctionTest, CountStarCountsNulls) {
  AggHarness h(AggKind::kCountStar, DataType::Int64());
  h.Update({Value::Int64(1), Value::Null(), Value::Int64(3)});
  EXPECT_EQ(h.Finalize(), Value::Int64(3));
}

TEST(AggFunctionTest, SumInt64) {
  AggHarness h(AggKind::kSum, DataType::Int64());
  h.Update({Value::Int64(10), Value::Int64(-3), Value::Null()});
  h.Update({Value::Int64(5)});
  EXPECT_EQ(h.Finalize(), Value::Int64(12));
  EXPECT_EQ(h.RoundTripAndFinalize(), Value::Int64(12));
}

TEST(AggFunctionTest, SumAllNullIsNull) {
  AggHarness h(AggKind::kSum, DataType::Int64());
  h.Update({Value::Null(), Value::Null()});
  EXPECT_TRUE(h.Finalize().is_null());
  EXPECT_TRUE(h.RoundTripAndFinalize().is_null());
}

TEST(AggFunctionTest, SumDecimalKeepsScale) {
  AggHarness h(AggKind::kSum, DataType::Decimal(12, 2));
  h.Update({Value::Decimal(Decimal128::FromInt64(1050)),   // 10.50
            Value::Decimal(Decimal128::FromInt64(275))});  // 2.75
  Value v = h.Finalize();
  EXPECT_EQ(v.decimal().ToString(2), "13.25");
  EXPECT_EQ(h.RoundTripAndFinalize().decimal().ToString(2), "13.25");
}

TEST(AggFunctionTest, AvgDecimalWidensScale) {
  // avg over decimal(12,2) yields decimal(16,6): 1.00+2.00 / 2 = 1.500000.
  AggHarness h(AggKind::kAvg, DataType::Decimal(12, 2));
  h.Update({Value::Decimal(Decimal128::FromInt64(100)),
            Value::Decimal(Decimal128::FromInt64(200))});
  EXPECT_EQ(h.Finalize().decimal().ToString(6), "1.500000");
}

TEST(AggFunctionTest, AvgInt32IsDouble) {
  AggHarness h(AggKind::kAvg, DataType::Int32());
  h.Update({Value::Int32(1), Value::Int32(2)});
  EXPECT_EQ(h.Finalize(), Value::Float64(1.5));
}

TEST(AggFunctionTest, MinMaxStrings) {
  AggHarness lo(AggKind::kMin, DataType::String());
  AggHarness hi(AggKind::kMax, DataType::String());
  std::vector<Value> vals = {Value::String("pear"), Value::Null(),
                             Value::String("apple"), Value::String("plum")};
  lo.Update(vals);
  hi.Update(vals);
  EXPECT_EQ(lo.Finalize(), Value::String("apple"));
  EXPECT_EQ(hi.Finalize(), Value::String("plum"));
  EXPECT_EQ(lo.RoundTripAndFinalize(), Value::String("apple"));
  EXPECT_EQ(hi.RoundTripAndFinalize(), Value::String("plum"));
}

TEST(AggFunctionTest, MinMaxDates) {
  AggHarness lo(AggKind::kMin, DataType::Date32());
  lo.Update({Value::Date32(100), Value::Date32(-5), Value::Date32(50)});
  EXPECT_EQ(lo.Finalize(), Value::Date32(-5));
}

TEST(AggFunctionTest, CollectListPreservesOrderAndSkipsNulls) {
  AggHarness h(AggKind::kCollectList, DataType::String());
  h.Update({Value::String("a"), Value::Null(), Value::String("b")});
  h.Update({Value::String("c")});
  EXPECT_EQ(h.Finalize(), Value::String("[a, b, c]"));
  EXPECT_EQ(h.RoundTripAndFinalize(), Value::String("[a, b, c]"));
}

TEST(AggFunctionTest, CollectListEmpty) {
  AggHarness h(AggKind::kCollectList, DataType::String());
  EXPECT_EQ(h.Finalize(), Value::String("[]"));
}

TEST(AggFunctionTest, ResultTypes) {
  auto rt = [](AggKind k, DataType t) {
    Result<DataType> r = AggResultType(k, t);
    PHOTON_CHECK(r.ok());
    return *r;
  };
  EXPECT_EQ(rt(AggKind::kSum, DataType::Int32()), DataType::Int64());
  EXPECT_EQ(rt(AggKind::kSum, DataType::Float64()), DataType::Float64());
  EXPECT_EQ(rt(AggKind::kSum, DataType::Decimal(12, 2)),
            DataType::Decimal(22, 2));
  EXPECT_EQ(rt(AggKind::kSum, DataType::Decimal(35, 2)),
            DataType::Decimal(38, 2));
  EXPECT_EQ(rt(AggKind::kAvg, DataType::Int64()), DataType::Float64());
  EXPECT_EQ(rt(AggKind::kAvg, DataType::Decimal(12, 2)),
            DataType::Decimal(16, 6));
  EXPECT_EQ(rt(AggKind::kMin, DataType::String()), DataType::String());
  EXPECT_EQ(rt(AggKind::kCount, DataType::String()), DataType::Int64());
  EXPECT_FALSE(AggResultType(AggKind::kSum, DataType::String()).ok());
  EXPECT_FALSE(AggResultType(AggKind::kCollectList, DataType::Int32()).ok());
}

/// Property: sum/count/min/max agree with a scalar fold on random input,
/// including through the serialize-merge path.
TEST(AggFunctionTest, RandomizedAgainstFold) {
  Rng rng(12);
  for (int trial = 0; trial < 30; trial++) {
    std::vector<Value> values;
    int64_t sum = 0, count = 0;
    int64_t lo = INT64_MAX, hi = INT64_MIN;
    int n = static_cast<int>(rng.Uniform(0, 200));
    for (int i = 0; i < n; i++) {
      if (rng.NextBool(0.2)) {
        values.push_back(Value::Null());
        continue;
      }
      int64_t v = rng.Uniform(-1000, 1000);
      values.push_back(Value::Int64(v));
      sum += v;
      count++;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    AggHarness hs(AggKind::kSum, DataType::Int64());
    AggHarness hc(AggKind::kCount, DataType::Int64());
    AggHarness hmin(AggKind::kMin, DataType::Int64());
    AggHarness hmax(AggKind::kMax, DataType::Int64());
    hs.Update(values);
    hc.Update(values);
    hmin.Update(values);
    hmax.Update(values);
    EXPECT_EQ(hc.Finalize(), Value::Int64(count));
    if (count == 0) {
      EXPECT_TRUE(hs.Finalize().is_null());
      EXPECT_TRUE(hmin.Finalize().is_null());
    } else {
      EXPECT_EQ(hs.RoundTripAndFinalize(), Value::Int64(sum));
      EXPECT_EQ(hmin.Finalize(), Value::Int64(lo));
      EXPECT_EQ(hmax.RoundTripAndFinalize(), Value::Int64(hi));
    }
  }
}

}  // namespace
}  // namespace photon
