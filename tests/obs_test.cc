// Tests for the query-profile observability subsystem (src/obs): metric
// counters and their merge semantics, trace spans and Chrome-trace export,
// profile-tree assembly, registry behavior under concurrent task updates
// (the TSan target), and end-to-end QueryProfile emission for every TPC-H
// plan — including the thread-count-independence regression: a plan's
// profile must report identical rows/batches per operator at 1 and 8
// threads.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/driver.h"
#include "expr/builder.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "plan/logical_plan.h"
#include "tpch/tpch_gen.h"
#include "tpch/tpch_queries.h"
#include "vector/table.h"

namespace photon {
namespace {

using obs::Metric;

// --- Metric counters ---------------------------------------------------------

TEST(MetricSetTest, AddSetMaxAndValue) {
  obs::MetricSet s;
  s.Add(Metric::kRowsOut, 10);
  s.Add(Metric::kRowsOut, 5);
  s.SetMax(Metric::kPeakReservedBytes, 100);
  s.SetMax(Metric::kPeakReservedBytes, 40);  // lower: must not regress
  s.SetMax(Metric::kPeakReservedBytes, 250);
  EXPECT_EQ(s.Value(Metric::kRowsOut), 15);
  EXPECT_EQ(s.Value(Metric::kPeakReservedBytes), 250);
  EXPECT_EQ(s.Value(Metric::kSpillBytes), 0);
}

TEST(MetricSetTest, MergeSumsFlowAndMaxesPeak) {
  obs::MetricSet a;
  obs::MetricSet b;
  a.Add(Metric::kRowsOut, 100);
  a.SetMax(Metric::kPeakReservedBytes, 70);
  b.Add(Metric::kRowsOut, 50);
  b.SetMax(Metric::kPeakReservedBytes, 90);
  a.MergeFrom(b);
  EXPECT_EQ(a.Value(Metric::kRowsOut), 150);
  EXPECT_EQ(a.Value(Metric::kPeakReservedBytes), 90)
      << "peaks merge by max, not sum";
}

TEST(MetricSetTest, ResourceMergeSkipsFlowMetrics) {
  obs::MetricSet op;
  op.Add(Metric::kRowsOut, 1000);   // flow: per-operator only
  op.Add(Metric::kWallNs, 12345);   // flow: would double-count in a tree
  op.Add(Metric::kBytesRead, 4096); // resource: folds into stage totals
  op.Add(Metric::kSpillBytes, 512);
  op.SetMax(Metric::kPeakReservedBytes, 777);

  obs::MetricSnapshot stage;
  stage.MergeResourceFrom(op);
  EXPECT_EQ(stage[Metric::kRowsOut], 0);
  EXPECT_EQ(stage[Metric::kWallNs], 0);
  EXPECT_EQ(stage[Metric::kBytesRead], 4096);
  EXPECT_EQ(stage[Metric::kSpillBytes], 512);
  EXPECT_EQ(stage[Metric::kPeakReservedBytes], 777);
}

TEST(MetricSetTest, EveryMetricHasAUniqueName) {
  std::vector<std::string> names;
  for (int m = 0; m < obs::kNumMetrics; m++) {
    const char* name = obs::MetricName(static_cast<Metric>(m));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
    for (const std::string& prev : names) EXPECT_NE(prev, name);
    names.push_back(name);
  }
}

// 8 tasks hammering one shared MetricSet plus per-task ProfileBuilder
// shards: the TSan-verified concurrency contract of the registry.
TEST(MetricSetTest, ConcurrentUpdatesFromEightTasks) {
  constexpr int kTasks = 8;
  constexpr int kIters = 20000;
  obs::MetricSet shared;
  obs::ProfileBuilder builder;
  int node = builder.AddNode("Shared", -1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kTasks; t++) {
    threads.emplace_back([&, t] {
      int64_t task = builder.NewTaskId();
      obs::MetricSet* shard = builder.TaskShard(node, task);
      for (int i = 0; i < kIters; i++) {
        shared.Add(Metric::kRowsOut, 1);
        shared.SetMax(Metric::kPeakReservedBytes, t * kIters + i);
        shard->Add(Metric::kRowsOut, 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(shared.Value(Metric::kRowsOut), kTasks * kIters);
  EXPECT_EQ(shared.Value(Metric::kPeakReservedBytes),
            (kTasks - 1) * kIters + kIters - 1);
  obs::QueryProfile profile = builder.Finish(1, kTasks);
  EXPECT_EQ(profile.root.Sum(Metric::kRowsOut), kTasks * kIters);
  EXPECT_EQ(profile.root.num_tasks, kTasks);
  EXPECT_EQ(profile.root.metrics[0].min, kIters);
  EXPECT_EQ(profile.root.metrics[0].max, kIters);
}

// --- Trace spans -------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  obs::Tracer::SetEnabled(false);
  obs::Tracer::Reset();
  { obs::TraceSpan span("ignored", 1); }
  obs::Tracer::Record("also-ignored", 2, 0, 10);
  EXPECT_TRUE(obs::Tracer::Snapshot().empty());
}

TEST(TracerTest, NestedSpansRecordWithContainment) {
  obs::Tracer::SetEnabled(true);
  obs::Tracer::Reset();
  {
    obs::TraceSpan outer("outer", 1);
    {
      obs::TraceSpan inner("inner", 2);
    }
  }
  obs::Tracer::SetEnabled(false);
  std::vector<obs::TraceEvent> events = obs::Tracer::Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start: outer starts first, and the inner span nests inside.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_GE(events[1].start_ns, events[0].start_ns);
  EXPECT_LE(events[1].start_ns + events[1].dur_ns,
            events[0].start_ns + events[0].dur_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(TracerTest, ChromeTraceJsonShape) {
  obs::Tracer::SetEnabled(true);
  obs::Tracer::Reset();
  const char* interned = obs::Tracer::InternName(std::string("morsel"));
  obs::Tracer::Record(interned, 3, 1000, 2000);
  obs::Tracer::SetEnabled(false);
  std::string json = obs::Tracer::ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"morsel\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
}

TEST(TracerTest, InternedNamesAreStableAcrossCopies) {
  std::string name = "operator-name";
  const char* a = obs::Tracer::InternName(name);
  name[0] = 'X';  // mutate the source string
  const char* b = obs::Tracer::InternName(std::string("operator-name"));
  EXPECT_EQ(a, b) << "same content must intern to the same pointer";
  EXPECT_STREQ(a, "operator-name");
}

// --- Profile tree assembly ---------------------------------------------------

TEST(ProfileBuilderTest, TaskShardsFoldIntoMinMaxSum) {
  obs::ProfileBuilder builder;
  int root = builder.AddNode("Agg", -1);
  int scan = builder.AddNode("Scan", root);
  builder.SetStage(root, 0);
  builder.SetStage(scan, 0);
  // Three tasks with skewed row counts.
  for (int64_t rows : {10, 20, 70}) {
    int64_t task = builder.NewTaskId();
    builder.TaskShard(scan, task)->Add(Metric::kRowsOut, rows);
    builder.TaskShard(scan, task)->SetMax(Metric::kPeakReservedBytes,
                                          rows * 8);
    builder.TaskShard(root, task)->Add(Metric::kRowsOut, 1);
  }
  obs::QueryProfile profile = builder.Finish(555, 3);
  EXPECT_EQ(profile.wall_ns, 555);
  EXPECT_EQ(profile.num_threads, 3);
  ASSERT_EQ(profile.root.children.size(), 1u);
  const obs::ProfileNode& scan_node = profile.root.children[0];
  EXPECT_EQ(scan_node.name, "Scan");
  EXPECT_EQ(scan_node.num_tasks, 3);
  EXPECT_EQ(scan_node.Sum(Metric::kRowsOut), 100);
  const obs::ProfileMetric& rows =
      scan_node.metrics[static_cast<int>(Metric::kRowsOut)];
  EXPECT_EQ(rows.min, 10);
  EXPECT_EQ(rows.max, 70);
  // Peak is max-aggregated: the skewed task's peak, not the sum.
  EXPECT_EQ(scan_node.Sum(Metric::kPeakReservedBytes), 560);
  // rows_in of the parent = children's rows_out.
  EXPECT_EQ(profile.root.rows_in, 100);
  EXPECT_EQ(profile.root.Sum(Metric::kRowsOut), 3);
}

TEST(ProfileBuilderTest, DetachedNodesLinkOnceParented) {
  obs::ProfileBuilder builder;
  int child = builder.AddNode("Filter", obs::ProfileBuilder::kDetached);
  int leaf = builder.AddNode("Scan", child);
  int root = builder.AddNode("Sort", -1);
  builder.SetParent(child, root);
  builder.TaskShard(leaf, builder.NewTaskId())->Add(Metric::kRowsOut, 5);
  obs::QueryProfile profile = builder.Finish(1, 1);
  ASSERT_EQ(profile.root.name, "Sort");
  ASSERT_EQ(profile.root.children.size(), 1u);
  ASSERT_EQ(profile.root.children[0].name, "Filter");
  ASSERT_EQ(profile.root.children[0].children.size(), 1u);
  EXPECT_EQ(profile.root.children[0].children[0].name, "Scan");
}

TEST(ProfileBuilderTest, JsonExportCarriesVocabulary) {
  obs::ProfileBuilder builder;
  int root = builder.AddNode("HashAggregate", -1);
  int64_t task = builder.NewTaskId();
  builder.TaskShard(root, task)->Add(Metric::kRowsOut, 42);
  builder.TaskShard(root, task)->Add(Metric::kBatches, 2);
  builder.TaskShard(root, task)->Add(Metric::kBatchRows, 60);
  builder.TaskShard(root, task)->Add(Metric::kWallNs, 1000);
  builder.TaskShard(root, task)->Add(Metric::kSpillBytes, 77);
  builder.TaskShard(root, task)->SetMax(Metric::kPeakReservedBytes, 4096);
  obs::QueryProfile profile = builder.Finish(2000, 4);
  profile.query = "q1";
  std::string json = profile.ToJson();
  for (const char* key :
       {"\"query\":\"q1\"", "\"wall_ns\":2000", "\"num_threads\":4",
        "\"name\":\"HashAggregate\"", "\"rows_out\":42",
        "\"peak_reserved_bytes\":4096", "\"spill_bytes\":77",
        "\"active_row_fraction\":0.7000", "\"metrics\"", "\"children\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key
                                                 << " in " << json;
  }
}

// --- End-to-end: Driver::Run profiles ---------------------------------------

Table MakeKvTable(int rows, int batch_size) {
  Schema schema(
      {Field("k", DataType::Int64()), Field("v", DataType::Int64())});
  TableBuilder builder(schema, batch_size);
  Rng rng(11);
  for (int i = 0; i < rows; i++) {
    builder.AppendRow(
        {Value::Int64(rng.Uniform(0, 9)), Value::Int64(i)});
  }
  return builder.Finish();
}

TEST(QueryProfileTest, AggregatePlanProducesPartialFinalTree) {
  Table t = MakeKvTable(20000, 512);  // 40 batches -> multiple morsels
  plan::PlanPtr p = plan::Aggregate(
      plan::Filter(plan::Scan(&t),
                   eb::Gt(eb::Col(1, DataType::Int64(), "v"),
                          eb::Lit(int64_t{100}))),
      {eb::Col(0, DataType::Int64(), "k")}, {"k"},
      {AggregateSpec{AggKind::kSum, eb::Col(1, DataType::Int64(), "v"),
                     "sv"}});
  exec::Driver driver(4);
  obs::QueryProfile profile;
  Result<Table> out = driver.Run(p, {}, nullptr, &profile);
  ASSERT_TRUE(out.ok());

  // Final <- Partial <- Filter <- TableScan, rows threading down the tree.
  const obs::ProfileNode& final_node = profile.root;
  EXPECT_EQ(final_node.name, "HashAggregateFinal");
  EXPECT_EQ(final_node.Sum(Metric::kRowsOut), out->num_rows());
  ASSERT_EQ(final_node.children.size(), 1u);
  const obs::ProfileNode& partial = final_node.children[0];
  EXPECT_EQ(partial.name, "HashAggregatePartial");
  EXPECT_GT(partial.num_tasks, 0);
  ASSERT_EQ(partial.children.size(), 1u);
  const obs::ProfileNode& filter = partial.children[0];
  EXPECT_EQ(filter.name, "Filter");
  EXPECT_EQ(filter.Sum(Metric::kRowsOut), 20000 - 101);
  ASSERT_EQ(filter.children.size(), 1u);
  const obs::ProfileNode& scan = filter.children[0];
  EXPECT_EQ(scan.name, "TableScan");
  EXPECT_EQ(scan.Sum(Metric::kRowsOut), 20000);
  EXPECT_EQ(filter.rows_in, 20000);
  // The filter's batches stay full-width; its active-row fraction reflects
  // the rows it passed.
  EXPECT_GT(filter.Sum(Metric::kBatchRows), 0);
  EXPECT_LT(filter.ActiveRowFraction(), 1.0);
  // Stages assigned: partial stage differs from the final-merge stage.
  EXPECT_GE(partial.stage_id, 0);
  EXPECT_GE(final_node.stage_id, 0);
  EXPECT_NE(partial.stage_id, final_node.stage_id);
  EXPECT_GT(profile.wall_ns, 0);
  EXPECT_EQ(profile.num_threads, 4);
}

/// Per-node (name, rows_out, batches, child-shape) fingerprint, excluding
/// wall/cpu/memory, which legitimately vary run to run.
void ExpectSameFlowProfile(const obs::ProfileNode& a,
                           const obs::ProfileNode& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.Sum(Metric::kRowsOut), b.Sum(Metric::kRowsOut))
      << "node " << a.name;
  EXPECT_EQ(a.Sum(Metric::kBatches), b.Sum(Metric::kBatches))
      << "node " << a.name;
  EXPECT_EQ(a.Sum(Metric::kBatchRows), b.Sum(Metric::kBatchRows))
      << "node " << a.name;
  EXPECT_EQ(a.rows_in, b.rows_in) << "node " << a.name;
  ASSERT_EQ(a.children.size(), b.children.size()) << "node " << a.name;
  for (size_t i = 0; i < a.children.size(); i++) {
    ExpectSameFlowProfile(a.children[i], b.children[i]);
  }
}

/// Satellite regression: the profile's flow counters are a function of the
/// plan and input only — 1 thread and 8 threads must report identical
/// rows/batches on every node (wall time excluded by construction).
TEST(QueryProfileTest, FlowCountersIdenticalAcrossThreadCounts) {
  constexpr double kScale = 0.002;
  static const tpch::TpchData* data =
      new tpch::TpchData(tpch::GenerateTpch(kScale));
  for (int q : {1, 3, 6, 18}) {
    Result<plan::PlanPtr> p = tpch::TpchQuery(q, *data, kScale);
    ASSERT_TRUE(p.ok()) << p.status().ToString();
    exec::Driver one(1);
    exec::Driver eight(8);
    obs::QueryProfile profile1;
    obs::QueryProfile profile8;
    Result<Table> out1 = one.Run(*p, {}, nullptr, &profile1);
    Result<Table> out8 = eight.Run(*p, {}, nullptr, &profile8);
    ASSERT_TRUE(out1.ok()) << "q" << q;
    ASSERT_TRUE(out8.ok()) << "q" << q;
    SCOPED_TRACE("q" + std::to_string(q));
    ExpectSameFlowProfile(profile1.root, profile8.root);
  }
}

TEST(QueryProfileTest, AllTpchPlansEmitProfiles) {
  constexpr double kScale = 0.002;
  static const tpch::TpchData* data =
      new tpch::TpchData(tpch::GenerateTpch(kScale));
  exec::Driver driver(4);
  for (int q = 1; q <= 22; q++) {
    Result<plan::PlanPtr> p = tpch::TpchQuery(q, *data, kScale);
    ASSERT_TRUE(p.ok()) << "q" << q << ": " << p.status().ToString();
    std::vector<exec::StageInfo> stages;
    obs::QueryProfile profile;
    Result<Table> out = driver.Run(*p, {}, &stages, &profile);
    ASSERT_TRUE(out.ok()) << "q" << q << ": " << out.status().ToString();
    // The root operator's rows are the query result's rows, and the stage
    // list agrees with the profile's flow totals.
    EXPECT_EQ(profile.root.Sum(Metric::kRowsOut), out->num_rows())
        << "q" << q << " root=" << profile.root.name;
    EXPECT_GT(profile.wall_ns, 0) << "q" << q;
    ASSERT_FALSE(stages.empty()) << "q" << q;
    for (const exec::StageInfo& s : stages) {
      EXPECT_GT(s.num_tasks, 0) << "q" << q;
      EXPECT_GT(s.wall_ns(), 0) << "q" << q;
    }
    std::string json = profile.ToJson();
    EXPECT_NE(json.find("\"rows_out\""), std::string::npos) << "q" << q;
    EXPECT_NE(json.find("\"wall_ns\""), std::string::npos) << "q" << q;
  }
}

TEST(QueryProfileTest, ProfileAndTraceFilesAreWritten) {
  Table t = MakeKvTable(5000, 256);
  plan::PlanPtr p = plan::Aggregate(
      plan::Scan(&t), {eb::Col(0, DataType::Int64(), "k")}, {"k"},
      {AggregateSpec{AggKind::kCountStar, nullptr, "n"}});
  exec::Driver driver(4);
  obs::Tracer::SetEnabled(true);
  obs::Tracer::Reset();
  obs::QueryProfile profile;
  Result<Table> out = driver.Run(p, {}, nullptr, &profile);
  obs::Tracer::SetEnabled(false);
  ASSERT_TRUE(out.ok());

  // Span capture saw the driver's instrumentation points.
  std::vector<obs::TraceEvent> events = obs::Tracer::Snapshot();
  bool saw_morsel = false, saw_operator = false;
  for (const obs::TraceEvent& ev : events) {
    if (std::string(ev.name) == "morsel") saw_morsel = true;
    if (std::string(ev.name) == "PhotonHashAggregate") saw_operator = true;
  }
  EXPECT_TRUE(saw_morsel);
  EXPECT_TRUE(saw_operator);

  std::string dir = ::testing::TempDir();
  std::string profile_path = dir + "/photon_profile.json";
  std::string trace_path = dir + "/photon_trace.json";
  ASSERT_TRUE(profile.WriteJson(profile_path));
  ASSERT_TRUE(obs::Tracer::WriteChromeTrace(trace_path));
  for (const std::string& path : {profile_path, trace_path}) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr) << path;
    std::fseek(f, 0, SEEK_END);
    EXPECT_GT(std::ftell(f), 2) << path;
    std::fclose(f);
  }
  std::remove(profile_path.c_str());
  std::remove(trace_path.c_str());
}

}  // namespace
}  // namespace photon
