#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/driver.h"
#include "storage/object_store.h"
#include "testing/datagen.h"
#include "testing/differ.h"
#include "testing/minimizer.h"
#include "testing/plangen.h"

namespace pt = photon::testing;

namespace {

/// Differential plan fuzzing (DESIGN.md §10, the paper's §5.6 end-to-end
/// layer): per seed, generate random tables (one also written out as a
/// Delta table), generate random logical plans over them, and execute each
/// plan through the four modes in pt::RunDifferential. Any divergence is
/// minimized to a reproducer and reported with the seed, so a failure
/// line is sufficient to replay:
///   ./plan_fuzz_test --gtest_filter='*PlanFuzzTest.*/<seed-1>'
std::string RunSeed(uint64_t seed, int rounds, photon::exec::Driver* driver) {
  photon::ObjectStore store;
  pt::DataGen gen(seed * 7919 + 1);

  photon::Schema fact_schema = gen.RandomSchema("f_", 3, 6);
  photon::Table fact = gen.RandomTable(
      fact_schema, static_cast<int>(gen.rng().Uniform(600, 1500)));
  photon::Schema dim_schema = gen.RandomSchema("d_", 2, 4);
  photon::Table dim = gen.RandomTable(
      dim_schema, static_cast<int>(gen.rng().Uniform(100, 400)));

  pt::FuzzInput fact_input;
  fact_input.name = "fact";
  fact_input.table = &fact;
  auto snapshot = gen.WriteDelta(&store, "/fuzz/fact", fact);
  if (!snapshot.ok()) {
    return "WriteDelta failed: " + snapshot.status().ToString();
  }
  fact_input.store = &store;
  fact_input.delta = *snapshot;

  pt::FuzzInput dim_input;
  dim_input.name = "dim";
  dim_input.table = &dim;

  pt::PlanGen plangen(seed, {&fact_input, &dim_input});
  pt::DifferentialOptions opts;
  opts.fault_store = &store;
  opts.spill_prefix = "fuzz-spill/" + std::to_string(seed);
  // Mode 9: three generative SQL mutants per plan, seeded by the fuzz seed
  // so every finding replays from the seed alone.
  opts.sql_mutants = 3;
  opts.mutant_seed = seed;

  for (int round = 0; round < rounds; round++) {
    photon::plan::PlanPtr p = plangen.RandomPlan();
    std::string diff = pt::RunDifferential(p, driver, opts);
    if (diff.empty()) continue;
    // Shrink before reporting: the minimized plan plus the seed is the
    // checked-in reproducer for the finding.
    photon::plan::PlanPtr minimized = pt::MinimizePlan(
        p, [&](const photon::plan::PlanPtr& candidate) {
          return !pt::RunDifferential(candidate, driver, opts).empty();
        });
    return "seed " + std::to_string(seed) + " round " +
           std::to_string(round) + ": " + diff + "\nminimized plan:\n" +
           minimized->ToString();
  }
  return "";
}

class PlanFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanFuzzTest, EnginesAgreeUnderAllModes) {
  static photon::exec::Driver driver(8);
  std::string failure = RunSeed(GetParam(), /*rounds=*/3, &driver);
  EXPECT_TRUE(failure.empty()) << failure;
}

// The fixed 64-seed tier-1 corpus (--soak N extends it arbitrarily).
INSTANTIATE_TEST_SUITE_P(Seeds, PlanFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{65}));

/// Mode 5 (concurrent differential): the generated inputs of one fuzz
/// seed, pinned in place so the plans' raw table/store pointers stay
/// valid while sessions run.
struct SeedInputs {
  photon::ObjectStore store;
  photon::Table fact{photon::Schema()};
  photon::Table dim{photon::Schema()};
  pt::FuzzInput fact_input;
  pt::FuzzInput dim_input;

  /// Null on data-generation failure (reported by the caller).
  static std::unique_ptr<SeedInputs> Make(uint64_t seed) {
    pt::DataGen gen(seed * 7919 + 1);
    auto in = std::make_unique<SeedInputs>();
    photon::Schema fact_schema = gen.RandomSchema("f_", 3, 6);
    in->fact = gen.RandomTable(
        fact_schema, static_cast<int>(gen.rng().Uniform(600, 1500)));
    photon::Schema dim_schema = gen.RandomSchema("d_", 2, 4);
    in->dim = gen.RandomTable(
        dim_schema, static_cast<int>(gen.rng().Uniform(100, 400)));
    in->fact_input.name = "fact";
    in->fact_input.table = &in->fact;
    auto snapshot = gen.WriteDelta(&in->store, "/fuzz/fact", in->fact);
    if (!snapshot.ok()) return nullptr;
    in->fact_input.store = &in->store;
    in->fact_input.delta = *snapshot;
    in->dim_input.name = "dim";
    in->dim_input.table = &in->dim;
    return in;
  }
};

/// K seeds in flight: each group runs plans from kSeedsPerGroup distinct
/// seeds concurrently through one QueryService and diffs every result
/// against its serial single-task run (pt::RunConcurrentDifferential).
/// Groups cover the same 1..64 seed range as the serial corpus.
class ConcurrentPlanFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrentPlanFuzzTest, ConcurrentMatchesSerial) {
  constexpr int kSeedsPerGroup = 4;
  constexpr int kPlansPerSeed = 2;
  uint64_t base = GetParam() * kSeedsPerGroup + 1;

  std::vector<std::unique_ptr<SeedInputs>> inputs;
  std::vector<photon::plan::PlanPtr> plans;
  for (int s = 0; s < kSeedsPerGroup; s++) {
    uint64_t seed = base + s;
    std::unique_ptr<SeedInputs> in = SeedInputs::Make(seed);
    ASSERT_NE(in, nullptr) << "WriteDelta failed for seed " << seed;
    pt::PlanGen plangen(seed, {&in->fact_input, &in->dim_input});
    for (int round = 0; round < kPlansPerSeed; round++) {
      plans.push_back(plangen.RandomPlan());
    }
    inputs.push_back(std::move(in));
  }

  pt::ConcurrentDifferentialOptions opts;
  std::string failure = pt::RunConcurrentDifferential(plans, opts);
  EXPECT_TRUE(failure.empty()) << "seed group starting at " << base << ": "
                               << failure;
}

// 16 groups x 4 seeds = the same tier-1-sized corpus, concurrently.
INSTANTIATE_TEST_SUITE_P(SeedGroups, ConcurrentPlanFuzzTest,
                         ::testing::Range(uint64_t{0}, uint64_t{16}));

/// Mode 10 (lakehouse differential): per seed, concurrent DML writers, a
/// background compactor, and analytics readers race on one Delta table;
/// afterwards every committed version's scan must checksum-equal a serial
/// re-execution of the committed transaction order. Catches lost commits,
/// broken read-set validation, non-atomic rewrites, and staged-file leaks.
class LakehouseFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LakehouseFuzzTest, CommittedVersionsAreSerialEquivalent) {
  std::string failure = pt::RunLakehouseDifferential(GetParam());
  EXPECT_TRUE(failure.empty()) << "seed " << GetParam() << ": " << failure;
}

// The same fixed 64-seed tier-1 corpus as the plan fuzzer.
INSTANTIATE_TEST_SUITE_P(Seeds, LakehouseFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{65}));

}  // namespace

/// Overrides gtest_main: `--soak N` loops seeds 1..N outside gtest for
/// long fuzzing runs (bench/bench_fuzz_soak.cc wraps the same loop with
/// wall-clock reporting); otherwise behaves exactly like gtest_main.
int main(int argc, char** argv) {
  long soak = 0;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--soak") == 0 && i + 1 < argc) {
      soak = std::atol(argv[i + 1]);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  if (soak > 0) {
    photon::exec::Driver driver(8);
    int failures = 0;
    for (long seed = 1; seed <= soak; seed++) {
      std::string failure =
          RunSeed(static_cast<uint64_t>(seed), /*rounds=*/3, &driver);
      if (!failure.empty()) {
        failures++;
        std::fprintf(stderr, "FAIL %s\n", failure.c_str());
      }
      failure = pt::RunLakehouseDifferential(static_cast<uint64_t>(seed));
      if (!failure.empty()) {
        failures++;
        std::fprintf(stderr, "FAIL lakehouse seed %ld: %s\n", seed,
                     failure.c_str());
      }
      if (seed % 32 == 0) {
        std::fprintf(stderr, "soak: %ld/%ld seeds, %d failures\n", seed,
                     soak, failures);
      }
    }
    std::fprintf(stderr, "soak done: %ld seeds, %d failures\n", soak,
                 failures);
    return failures == 0 ? 0 : 1;
  }
  return RUN_ALL_TESTS();
}
