#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "exec/driver.h"
#include "storage/object_store.h"
#include "testing/datagen.h"
#include "testing/differ.h"
#include "testing/minimizer.h"
#include "testing/plangen.h"

namespace pt = photon::testing;

namespace {

/// Differential plan fuzzing (DESIGN.md §10, the paper's §5.6 end-to-end
/// layer): per seed, generate random tables (one also written out as a
/// Delta table), generate random logical plans over them, and execute each
/// plan through the four modes in pt::RunDifferential. Any divergence is
/// minimized to a reproducer and reported with the seed, so a failure
/// line is sufficient to replay:
///   ./plan_fuzz_test --gtest_filter='*PlanFuzzTest.*/<seed-1>'
std::string RunSeed(uint64_t seed, int rounds, photon::exec::Driver* driver) {
  photon::ObjectStore store;
  pt::DataGen gen(seed * 7919 + 1);

  photon::Schema fact_schema = gen.RandomSchema("f_", 3, 6);
  photon::Table fact = gen.RandomTable(
      fact_schema, static_cast<int>(gen.rng().Uniform(600, 1500)));
  photon::Schema dim_schema = gen.RandomSchema("d_", 2, 4);
  photon::Table dim = gen.RandomTable(
      dim_schema, static_cast<int>(gen.rng().Uniform(100, 400)));

  pt::FuzzInput fact_input;
  fact_input.name = "fact";
  fact_input.table = &fact;
  auto snapshot = gen.WriteDelta(&store, "/fuzz/fact", fact);
  if (!snapshot.ok()) {
    return "WriteDelta failed: " + snapshot.status().ToString();
  }
  fact_input.store = &store;
  fact_input.delta = *snapshot;

  pt::FuzzInput dim_input;
  dim_input.name = "dim";
  dim_input.table = &dim;

  pt::PlanGen plangen(seed, {&fact_input, &dim_input});
  pt::DifferentialOptions opts;
  opts.fault_store = &store;
  opts.spill_prefix = "fuzz-spill/" + std::to_string(seed);

  for (int round = 0; round < rounds; round++) {
    photon::plan::PlanPtr p = plangen.RandomPlan();
    std::string diff = pt::RunDifferential(p, driver, opts);
    if (diff.empty()) continue;
    // Shrink before reporting: the minimized plan plus the seed is the
    // checked-in reproducer for the finding.
    photon::plan::PlanPtr minimized = pt::MinimizePlan(
        p, [&](const photon::plan::PlanPtr& candidate) {
          return !pt::RunDifferential(candidate, driver, opts).empty();
        });
    return "seed " + std::to_string(seed) + " round " +
           std::to_string(round) + ": " + diff + "\nminimized plan:\n" +
           minimized->ToString();
  }
  return "";
}

class PlanFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanFuzzTest, EnginesAgreeUnderAllModes) {
  static photon::exec::Driver driver(8);
  std::string failure = RunSeed(GetParam(), /*rounds=*/3, &driver);
  EXPECT_TRUE(failure.empty()) << failure;
}

// The fixed 64-seed tier-1 corpus (--soak N extends it arbitrarily).
INSTANTIATE_TEST_SUITE_P(Seeds, PlanFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{65}));

}  // namespace

/// Overrides gtest_main: `--soak N` loops seeds 1..N outside gtest for
/// long fuzzing runs (bench/bench_fuzz_soak.cc wraps the same loop with
/// wall-clock reporting); otherwise behaves exactly like gtest_main.
int main(int argc, char** argv) {
  long soak = 0;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--soak") == 0 && i + 1 < argc) {
      soak = std::atol(argv[i + 1]);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  if (soak > 0) {
    photon::exec::Driver driver(8);
    int failures = 0;
    for (long seed = 1; seed <= soak; seed++) {
      std::string failure =
          RunSeed(static_cast<uint64_t>(seed), /*rounds=*/3, &driver);
      if (!failure.empty()) {
        failures++;
        std::fprintf(stderr, "FAIL %s\n", failure.c_str());
      }
      if (seed % 32 == 0) {
        std::fprintf(stderr, "soak: %ld/%ld seeds, %d failures\n", seed,
                     soak, failures);
      }
    }
    std::fprintf(stderr, "soak done: %ld seeds, %d failures\n", soak,
                 failures);
    return failures == 0 ? 0 : 1;
  }
  return RUN_ALL_TESTS();
}
