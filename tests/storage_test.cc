#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/builder.h"
#include "ops/file_scan.h"
#include "storage/baseline_file_writer.h"
#include "storage/bitpack.h"
#include "storage/delta.h"
#include "storage/format.h"

namespace photon {
namespace {

using eb::Col;
using eb::Lit;

// --- Bit packing -------------------------------------------------------------

class BitpackWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(BitpackWidthTest, RoundTripAndSlowEquivalence) {
  int bit_width = GetParam();
  Rng rng(bit_width);
  for (int n : {0, 1, 7, 64, 100, 1000}) {
    std::vector<uint32_t> values(n);
    uint64_t mask = bit_width == 32 ? 0xFFFFFFFFu
                                    : ((1u << bit_width) - 1);
    for (int i = 0; i < n; i++) {
      values[i] = static_cast<uint32_t>(rng.Next() & mask);
    }
    BinaryWriter fast, slow;
    BitPack(values.data(), n, bit_width, &fast);
    BitPackSlow(values.data(), n, bit_width, &slow);
    ASSERT_EQ(fast.data(), slow.data())
        << "fast/slow bytes differ at width " << bit_width << " n " << n;

    std::vector<uint32_t> out(n);
    BinaryReader reader(fast.data().data(), fast.size());
    ASSERT_TRUE(BitUnpack(&reader, n, bit_width, out.data()).ok());
    EXPECT_EQ(values, out);

    std::vector<uint32_t> out2(n);
    BinaryReader reader2(slow.data().data(), slow.size());
    ASSERT_TRUE(BitUnpackSlow(&reader2, n, bit_width, out2.data()).ok());
    EXPECT_EQ(values, out2);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, BitpackWidthTest,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 11, 13, 16, 17,
                                           20, 24, 31, 32));

TEST(BitpackTest, BitWidthFor) {
  EXPECT_EQ(BitWidthFor(0), 1);
  EXPECT_EQ(BitWidthFor(1), 1);
  EXPECT_EQ(BitWidthFor(2), 2);
  EXPECT_EQ(BitWidthFor(255), 8);
  EXPECT_EQ(BitWidthFor(256), 9);
  EXPECT_EQ(BitWidthFor(65535), 16);
}

// --- File format -------------------------------------------------------------

Table MixedTable(int rows, uint64_t seed = 9) {
  Schema schema({Field("i", DataType::Int32()),
                 Field("l", DataType::Int64()),
                 Field("d", DataType::Date32()),
                 Field("t", DataType::Timestamp()),
                 Field("s", DataType::String()),
                 Field("b", DataType::Boolean()),
                 Field("f", DataType::Float64()),
                 Field("m", DataType::Decimal(12, 2))});
  TableBuilder builder(schema);
  Rng rng(seed);
  for (int i = 0; i < rows; i++) {
    builder.AppendRow(
        {i % 13 == 0 ? Value::Null() : Value::Int32(static_cast<int32_t>(
                                           rng.Uniform(-100, 100))),
         Value::Int64(rng.Uniform(0, 1LL << 40)),
         Value::Date32(static_cast<int32_t>(rng.Uniform(8000, 10000))),
         Value::Timestamp(rng.Uniform(0, 1LL << 48)),
         // Low-cardinality strings: exercises dictionary encoding.
         Value::String("city-" + std::to_string(rng.Uniform(0, 20))),
         Value::Boolean(rng.NextBool()),
         Value::Float64(rng.NextDouble() * 100),
         Value::Decimal(Decimal128::FromInt64(rng.Uniform(0, 100000)))});
  }
  return builder.Finish();
}

TEST(FileFormatTest, WriteReadRoundTrip) {
  Table t = MixedTable(5000);
  FormatWriteOptions options;
  options.row_group_rows = 1500;  // multiple row groups
  FileWriter writer(t.schema(), options);
  for (int b = 0; b < t.num_batches(); b++) {
    ASSERT_TRUE(writer.WriteBatch(t.batch(b)).ok());
  }
  Result<std::string> bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_GT(writer.stats().dictionary_chunks, 0);  // "s" should dict-encode

  Result<std::unique_ptr<FileReader>> reader = FileReader::Open(*bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->meta().num_rows(), 5000);
  EXPECT_EQ((*reader)->num_row_groups(), 4);  // ceil(5000/1500)

  auto original = t.ToRows();
  int64_t row = 0;
  for (int rg = 0; rg < (*reader)->num_row_groups(); rg++) {
    Result<std::unique_ptr<ColumnBatch>> batch =
        (*reader)->ReadRowGroup(rg, {});
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    for (int i = 0; i < (*batch)->num_rows(); i++, row++) {
      for (int c = 0; c < t.schema().num_fields(); c++) {
        EXPECT_TRUE(
            (*batch)->column(c)->GetValue(i).Equals(original[row][c]))
            << "row " << row << " col " << c;
      }
    }
  }
  EXPECT_EQ(row, 5000);
}

TEST(FileFormatTest, BaselineWriterProducesReadableFiles) {
  Table t = MixedTable(3000, 123);
  FormatWriteOptions options;
  options.row_group_rows = 1024;
  BaselineFileWriter writer(t.schema(), options);
  for (const auto& row : t.ToRows()) {
    ASSERT_TRUE(writer.WriteRow(row).ok());
  }
  Result<std::string> bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());

  Result<std::unique_ptr<FileReader>> reader = FileReader::Open(*bytes);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto original = t.ToRows();
  int64_t row = 0;
  for (int rg = 0; rg < (*reader)->num_row_groups(); rg++) {
    auto batch = (*reader)->ReadRowGroup(rg, {});
    ASSERT_TRUE(batch.ok());
    for (int i = 0; i < (*batch)->num_rows(); i++, row++) {
      for (int c = 0; c < t.schema().num_fields(); c++) {
        EXPECT_TRUE(
            (*batch)->column(c)->GetValue(i).Equals(original[row][c]))
            << "row " << row << " col " << c;
      }
    }
  }
  EXPECT_EQ(row, 3000);
}

TEST(FileFormatTest, PhotonAndBaselineWritersAgreeOnStats) {
  Table t = MixedTable(2000, 55);
  FileWriter fast(t.schema());
  for (int b = 0; b < t.num_batches(); b++) {
    ASSERT_TRUE(fast.WriteBatch(t.batch(b)).ok());
  }
  ASSERT_TRUE(fast.Finish().ok());
  BaselineFileWriter slow(t.schema());
  for (const auto& row : t.ToRows()) {
    ASSERT_TRUE(slow.WriteRow(row).ok());
  }
  ASSERT_TRUE(slow.Finish().ok());

  ASSERT_EQ(fast.meta().row_groups.size(), slow.meta().row_groups.size());
  for (size_t rg = 0; rg < fast.meta().row_groups.size(); rg++) {
    for (int c = 0; c < t.schema().num_fields(); c++) {
      const ColumnChunkMeta& a = fast.meta().row_groups[rg].columns[c];
      const ColumnChunkMeta& b = slow.meta().row_groups[rg].columns[c];
      EXPECT_EQ(a.null_count, b.null_count) << c;
      EXPECT_EQ(a.has_min_max, b.has_min_max) << c;
      if (a.has_min_max) {
        EXPECT_TRUE(a.min.Equals(b.min)) << "col " << c;
        EXPECT_TRUE(a.max.Equals(b.max)) << "col " << c;
      }
    }
  }
}

TEST(FileFormatTest, ColumnProjection) {
  Table t = MixedTable(1000);
  Result<FileMeta> meta = WriteTableToStore(t, &ObjectStore::Default(),
                                            "test-fmt/proj.pho");
  ASSERT_TRUE(meta.ok());
  Result<std::unique_ptr<FileReader>> reader =
      FileReader::OpenFromStore(&ObjectStore::Default(), "test-fmt/proj.pho");
  ASSERT_TRUE(reader.ok());
  auto batch = (*reader)->ReadRowGroup(0, {4, 0});  // s, i
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ((*batch)->num_columns(), 2);
  EXPECT_EQ((*batch)->schema().field(0).name, "s");
  EXPECT_EQ((*batch)->schema().field(1).name, "i");
  ObjectStore::Default().DeletePrefix("test-fmt/");
}

TEST(FileFormatTest, RejectsCorruptFiles) {
  EXPECT_FALSE(FileReader::Open("garbage").ok());
  Table t = MixedTable(100);
  FileWriter writer(t.schema());
  ASSERT_TRUE(writer.WriteBatch(t.batch(0)).ok());
  Result<std::string> bytes = writer.Finish();
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = *bytes;
  corrupt.resize(corrupt.size() / 2);
  EXPECT_FALSE(FileReader::Open(corrupt).ok());
}

// --- Delta -------------------------------------------------------------------

Table SmallTable(int lo, int hi) {
  Schema schema({Field("id", DataType::Int64()),
                 Field("v", DataType::String())});
  TableBuilder builder(schema);
  for (int i = lo; i < hi; i++) {
    builder.AppendRow({Value::Int64(i), Value::String("v" + std::to_string(i))});
  }
  return builder.Finish();
}

TEST(DeltaTest, CreateAppendSnapshot) {
  ObjectStore store;
  Schema schema({Field("id", DataType::Int64()),
                 Field("v", DataType::String())});
  auto table = DeltaTable::Create(&store, "tables/t1", schema);
  ASSERT_TRUE(table.ok()) << table.status().ToString();

  Result<int64_t> v1 = (*table)->Append(SmallTable(0, 100));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1);
  Result<int64_t> v2 = (*table)->Append(SmallTable(100, 250));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2);

  Result<DeltaSnapshot> snap = (*table)->Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->version, 2);
  EXPECT_EQ(snap->files.size(), 2u);
  EXPECT_EQ(snap->num_rows(), 250);

  // Time travel: version 1 sees only the first file.
  Result<DeltaSnapshot> old = (*table)->Snapshot(1);
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(old->files.size(), 1u);
  EXPECT_EQ(old->num_rows(), 100);

  // Creating over an existing table fails.
  EXPECT_FALSE(DeltaTable::Create(&store, "tables/t1", schema).ok());
  // Opening works.
  EXPECT_TRUE(DeltaTable::Open(&store, "tables/t1").ok());
  EXPECT_FALSE(DeltaTable::Open(&store, "tables/none").ok());
}

TEST(DeltaTest, RewriteRemovesFiles) {
  ObjectStore store;
  Schema schema({Field("id", DataType::Int64()),
                 Field("v", DataType::String())});
  auto table = DeltaTable::Create(&store, "tables/t2", schema);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Append(SmallTable(0, 50)).ok());
  Result<DeltaSnapshot> snap = (*table)->Snapshot();
  ASSERT_TRUE(snap.ok());
  std::string old_key = snap->files[0].key;

  ASSERT_TRUE((*table)->Rewrite({old_key}, SmallTable(0, 80)).ok());
  snap = (*table)->Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->files.size(), 1u);
  EXPECT_NE(snap->files[0].key, old_key);
  EXPECT_EQ(snap->num_rows(), 80);
}

TEST(DeltaTest, DataSkippingPrunesFiles) {
  ObjectStore store;
  Schema schema({Field("id", DataType::Int64()),
                 Field("v", DataType::String())});
  auto table = DeltaTable::Create(&store, "tables/t3", schema);
  ASSERT_TRUE(table.ok());
  // Three files with disjoint id ranges (well-clustered data).
  ASSERT_TRUE((*table)->Append(SmallTable(0, 100)).ok());
  ASSERT_TRUE((*table)->Append(SmallTable(100, 200)).ok());
  ASSERT_TRUE((*table)->Append(SmallTable(200, 300)).ok());
  Result<DeltaSnapshot> snap = (*table)->Snapshot();
  ASSERT_TRUE(snap.ok());

  ExprPtr pred = eb::Eq(Col(0, DataType::Int64(), "id"),
                        eb::Lit(int64_t{150}));
  std::vector<DeltaFileEntry> pruned = DeltaTable::PruneFiles(*snap, pred);
  ASSERT_EQ(pruned.size(), 1u);  // only the middle file can match

  pred = eb::Gt(Col(0, DataType::Int64(), "id"), eb::Lit(int64_t{150}));
  pruned = DeltaTable::PruneFiles(*snap, pred);
  EXPECT_EQ(pruned.size(), 2u);

  // AND of conjuncts prunes with both.
  pred = eb::And(eb::Gt(Col(0, DataType::Int64(), "id"),
                        eb::Lit(int64_t{110})),
                 eb::Lt(Col(0, DataType::Int64(), "id"),
                        eb::Lit(int64_t{190})));
  pruned = DeltaTable::PruneFiles(*snap, pred);
  EXPECT_EQ(pruned.size(), 1u);

  // Unprunable predicate keeps everything.
  pred = eb::Like(Col(1, DataType::String(), "v"), "v1%");
  pruned = DeltaTable::PruneFiles(*snap, pred);
  EXPECT_EQ(pruned.size(), 3u);
}

TEST(DeltaScanTest, EndToEndWithSkipping) {
  ObjectStore store;
  Schema schema({Field("id", DataType::Int64()),
                 Field("v", DataType::String())});
  auto table = DeltaTable::Create(&store, "tables/t4", schema);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Append(SmallTable(0, 1000)).ok());
  ASSERT_TRUE((*table)->Append(SmallTable(1000, 2000)).ok());
  Result<DeltaSnapshot> snap = (*table)->Snapshot();
  ASSERT_TRUE(snap.ok());

  ExprPtr pred = eb::Between(Col(0, DataType::Int64(), "id"),
                             eb::Lit(int64_t{1500}), eb::Lit(int64_t{1509}));
  auto scan = std::make_unique<DeltaScanOperator>(&store, *snap,
                                                  std::vector<int>{}, pred);
  Result<Table> result = CollectAll(scan.get());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 10);
  EXPECT_EQ(result->GetRow(0)[0], Value::Int64(1500));
}

TEST(DeltaScanTest, SurfacesInjectedWriteFailures) {
  ObjectStore store;
  Schema schema({Field("id", DataType::Int64()),
                 Field("v", DataType::String())});
  auto table = DeltaTable::Create(&store, "tables/t5", schema);
  ASSERT_TRUE(table.ok());
  store.FailNextPuts(1);
  Status st = (*table)->Append(SmallTable(0, 10)).status();
  EXPECT_TRUE(st.IsIoError());
  // Failed append must not appear in the snapshot.
  Result<DeltaSnapshot> snap = (*table)->Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->files.size(), 0u);
}

}  // namespace
}  // namespace photon
