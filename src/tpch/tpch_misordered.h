#ifndef PHOTON_TPCH_TPCH_MISORDERED_H_
#define PHOTON_TPCH_TPCH_MISORDERED_H_

#include "plan/logical_plan.h"
#include "tpch/tpch_gen.h"

namespace photon {
namespace tpch {

/// Deliberately pessimal — but semantically equivalent — plans for TPC-H
/// Q3, Q5, Q9, and Q10: every selective filter is hoisted to the top of
/// the join tree, lineitem (the largest input) is placed on hash-join
/// build sides, and the semi-join reducers run last instead of first.
/// They are the recovery benchmark for the cost-based optimizer
/// (src/opt): running one of these with the optimizer on must produce
/// checksum-identical rows to the hand-ordered TpchQuery plan, roughly as
/// fast; running it with the optimizer off shows the slowdown a naive
/// planner would eat. Supported q values: 3, 5, 9, 10.
Result<plan::PlanPtr> TpchMisorderedQuery(int q, const TpchData& data);

}  // namespace tpch
}  // namespace photon

#endif  // PHOTON_TPCH_TPCH_MISORDERED_H_
