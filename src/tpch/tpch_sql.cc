#include "tpch/tpch_sql.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sql/analyzer.h"

// Absolute path of the .sql files, baked in by src/CMakeLists.txt so tests
// and examples find them regardless of the working directory.
#ifndef PHOTON_TPCH_SQL_DIR
#define PHOTON_TPCH_SQL_DIR "src/tpch/sql"
#endif

namespace photon {
namespace tpch {

sql::Catalog TpchCatalog(const TpchData& data) {
  sql::Catalog catalog;
  catalog.RegisterTable("region", &data.region);
  catalog.RegisterTable("nation", &data.nation);
  catalog.RegisterTable("supplier", &data.supplier);
  catalog.RegisterTable("customer", &data.customer);
  catalog.RegisterTable("part", &data.part);
  catalog.RegisterTable("partsupp", &data.partsupp);
  catalog.RegisterTable("orders", &data.orders);
  catalog.RegisterTable("lineitem", &data.lineitem);
  return catalog;
}

Result<std::string> TpchSqlText(int q, double scale_factor) {
  if (q < 1 || q > 22) {
    return Status::InvalidArgument("TPC-H query number must be 1..22");
  }
  std::string path =
      std::string(PHOTON_TPCH_SQL_DIR) + "/q" + std::to_string(q) + ".sql";
  std::ifstream in(path);
  if (!in) {
    return Status::Internal("cannot open TPC-H SQL file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();

  // Q11's selectivity threshold scales with the data; substitute the same
  // clamped fraction Q11() in tpch_queries.cc computes.
  const std::string kPlaceholder = "{{fraction}}";
  size_t pos = text.find(kPlaceholder);
  if (pos != std::string::npos) {
    double fraction = 0.0001 / std::max(scale_factor, 1e-4);
    double mean_share = 1.0 / std::max<double>(20, 200000 * scale_factor);
    fraction = std::min(fraction, 2.0 * mean_share);
    char frac_text[32];
    std::snprintf(frac_text, sizeof(frac_text), "%.6f", fraction);
    do {
      text.replace(pos, kPlaceholder.size(), frac_text);
      pos = text.find(kPlaceholder, pos);
    } while (pos != std::string::npos);
  }
  return text;
}

Result<plan::PlanPtr> TpchSqlQuery(int q, const TpchData& data,
                                   double scale_factor) {
  PHOTON_ASSIGN_OR_RETURN(std::string text, TpchSqlText(q, scale_factor));
  sql::Catalog catalog = TpchCatalog(data);
  return sql::CompileSql(text, catalog);
}

}  // namespace tpch
}  // namespace photon
