#ifndef PHOTON_TPCH_TPCH_SQL_H_
#define PHOTON_TPCH_TPCH_SQL_H_

#include <string>

#include "plan/logical_plan.h"
#include "sql/catalog.h"
#include "tpch/tpch_gen.h"

namespace photon {
namespace tpch {

/// A Catalog with the eight TPC-H tables registered under their standard
/// names (region, nation, supplier, customer, part, partsupp, orders,
/// lineitem), each bound to the corresponding Table in `data`. Plans
/// compiled from SQL through this catalog scan the identical Table objects
/// as the hand-built plans from TpchQuery(), which is what makes their
/// fingerprints comparable.
sql::Catalog TpchCatalog(const TpchData& data);

/// The SQL text of query `q` (1..22), read from the .sql files shipped
/// under src/tpch/sql/. `scale_factor` substitutes Q11's {{fraction}}
/// placeholder with the same scale-clamped threshold the hand-built plan
/// computes; the other queries ignore it.
Result<std::string> TpchSqlText(int q, double scale_factor = 0.01);

/// TpchSqlText compiled against TpchCatalog(data): the SQL twin of
/// TpchQuery(). The returned plan is asserted (in tpch_sql_test.cc) to
/// fingerprint-equal and checksum-match the hand-built plan for all 22
/// queries.
Result<plan::PlanPtr> TpchSqlQuery(int q, const TpchData& data,
                                   double scale_factor = 0.01);

}  // namespace tpch
}  // namespace photon

#endif  // PHOTON_TPCH_TPCH_SQL_H_
