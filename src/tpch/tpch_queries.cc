#include "tpch/tpch_queries.h"

#include "expr/builder.h"

namespace photon {
namespace tpch {
namespace {

using plan::ColOf;
using plan::PlanPtr;

// Terse aliases for plan/expression building.
PlanPtr F(PlanPtr p, ExprPtr pred) { return plan::Filter(std::move(p), pred); }

ExprPtr C(const PlanPtr& p, const std::string& name) { return ColOf(p, name); }

/// Projects the named columns; "old:new" renames.
PlanPtr Keep(PlanPtr p, const std::vector<std::string>& cols) {
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (const std::string& spec : cols) {
    size_t colon = spec.find(':');
    std::string src = colon == std::string::npos ? spec : spec.substr(0, colon);
    std::string dst = colon == std::string::npos ? spec : spec.substr(colon + 1);
    exprs.push_back(ColOf(p, src));
    names.push_back(dst);
  }
  return plan::Project(std::move(p), std::move(exprs), std::move(names));
}

ExprPtr DL(const std::string& text, int scale = 2) {
  return eb::DecimalLit(text, 12, scale);
}

/// revenue term: l_extendedprice * (1 - l_discount).
ExprPtr Revenue(const PlanPtr& p, const std::string& price = "l_extendedprice",
                const std::string& disc = "l_discount") {
  return eb::Mul(C(p, price), eb::Sub(eb::Lit(int32_t{1}), C(p, disc)));
}

AggregateSpec Agg(AggKind kind, ExprPtr arg, std::string name) {
  return AggregateSpec{kind, std::move(arg), std::move(name)};
}

SortKey Asc(ExprPtr e) { return SortKey{std::move(e), true, true}; }
SortKey Desc(ExprPtr e) { return SortKey{std::move(e), false, true}; }

/// Typed zero matching an expression's decimal type, for CASE ELSE arms.
ExprPtr ZeroLike(const ExprPtr& e) {
  return eb::Cast(eb::Lit(int32_t{0}), e->type());
}

// ---------------------------------------------------------------------------
// Individual queries. Each returns a complete logical plan.
// ---------------------------------------------------------------------------

PlanPtr Q1(const TpchData& d) {
  PlanPtr l = plan::Scan(&d.lineitem);
  l = F(l, eb::Le(C(l, "l_shipdate"), eb::DateLit("1998-09-02")));
  ExprPtr disc_price = Revenue(l);
  ExprPtr charge =
      eb::Mul(Revenue(l), eb::Add(eb::Lit(int32_t{1}), C(l, "l_tax")));
  PlanPtr agg = plan::Aggregate(
      l, {C(l, "l_returnflag"), C(l, "l_linestatus")},
      {"l_returnflag", "l_linestatus"},
      {Agg(AggKind::kSum, C(l, "l_quantity"), "sum_qty"),
       Agg(AggKind::kSum, C(l, "l_extendedprice"), "sum_base_price"),
       Agg(AggKind::kSum, disc_price, "sum_disc_price"),
       Agg(AggKind::kSum, charge, "sum_charge"),
       Agg(AggKind::kAvg, C(l, "l_quantity"), "avg_qty"),
       Agg(AggKind::kAvg, C(l, "l_extendedprice"), "avg_price"),
       Agg(AggKind::kAvg, C(l, "l_discount"), "avg_disc"),
       Agg(AggKind::kCountStar, nullptr, "count_order")});
  return plan::Sort(agg, {Asc(C(agg, "l_returnflag")),
                          Asc(C(agg, "l_linestatus"))});
}

/// partsupp joined with EUROPE suppliers; shared by Q2's outer and inner.
PlanPtr Q2EuropeSupply(const TpchData& d) {
  PlanPtr r = F(plan::Scan(&d.region),
                eb::Eq(ColOf(plan::Scan(&d.region), "r_name"),
                       eb::Lit("EUROPE")));
  PlanPtr n = plan::Scan(&d.nation);
  PlanPtr nr = plan::Join(n, Keep(r, {"r_regionkey"}), JoinType::kInner,
                          {C(n, "n_regionkey")},
                          {ColOf(Keep(r, {"r_regionkey"}), "r_regionkey")});
  nr = Keep(nr, {"n_nationkey", "n_name"});
  PlanPtr s = plan::Scan(&d.supplier);
  PlanPtr sn = plan::Join(s, nr, JoinType::kInner, {C(s, "s_nationkey")},
                          {C(nr, "n_nationkey")});
  sn = Keep(sn, {"s_suppkey", "s_name", "s_address", "s_phone", "s_acctbal",
                 "s_comment", "n_name"});
  PlanPtr ps = plan::Scan(&d.partsupp);
  PlanPtr out = plan::Join(ps, sn, JoinType::kInner, {C(ps, "ps_suppkey")},
                           {C(sn, "s_suppkey")});
  return out;
}

PlanPtr Q2(const TpchData& d) {
  PlanPtr supply = Q2EuropeSupply(d);
  PlanPtr min_cost = plan::Aggregate(
      Q2EuropeSupply(d), {C(supply, "ps_partkey")}, {"mc_partkey"},
      {Agg(AggKind::kMin, C(supply, "ps_supplycost"), "min_cost")});
  PlanPtr p = plan::Scan(&d.part);
  p = F(p, eb::And(eb::Eq(C(p, "p_size"), eb::Lit(int32_t{15})),
                   eb::Like(C(p, "p_type"), "%BRASS")));
  p = Keep(p, {"p_partkey", "p_mfgr"});

  PlanPtr j = plan::Join(supply, min_cost, JoinType::kInner,
                         {C(supply, "ps_partkey"), C(supply, "ps_supplycost")},
                         {C(min_cost, "mc_partkey"), C(min_cost, "min_cost")});
  j = plan::Join(j, p, JoinType::kInner, {C(j, "ps_partkey")},
                 {C(p, "p_partkey")});
  j = Keep(j, {"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr",
               "s_address", "s_phone", "s_comment"});
  j = plan::Sort(j, {Desc(C(j, "s_acctbal")), Asc(C(j, "n_name")),
                     Asc(C(j, "s_name")), Asc(C(j, "p_partkey"))});
  return plan::Limit(j, 100);
}

PlanPtr Q3(const TpchData& d) {
  PlanPtr c = F(plan::Scan(&d.customer),
                eb::Eq(ColOf(plan::Scan(&d.customer), "c_mktsegment"),
                       eb::Lit("BUILDING")));
  c = Keep(c, {"c_custkey"});
  PlanPtr o = F(plan::Scan(&d.orders),
                eb::Lt(ColOf(plan::Scan(&d.orders), "o_orderdate"),
                       eb::DateLit("1995-03-15")));
  PlanPtr oc = plan::Join(o, c, JoinType::kLeftSemi, {C(o, "o_custkey")},
                          {C(c, "c_custkey")});
  oc = Keep(oc, {"o_orderkey", "o_orderdate", "o_shippriority"});
  PlanPtr l = F(plan::Scan(&d.lineitem),
                eb::Gt(ColOf(plan::Scan(&d.lineitem), "l_shipdate"),
                       eb::DateLit("1995-03-15")));
  PlanPtr j = plan::Join(l, oc, JoinType::kInner, {C(l, "l_orderkey")},
                         {C(oc, "o_orderkey")});
  PlanPtr agg = plan::Aggregate(
      j, {C(j, "l_orderkey"), C(j, "o_orderdate"), C(j, "o_shippriority")},
      {"l_orderkey", "o_orderdate", "o_shippriority"},
      {Agg(AggKind::kSum, Revenue(j), "revenue")});
  agg = plan::Sort(agg,
                   {Desc(C(agg, "revenue")), Asc(C(agg, "o_orderdate"))});
  return plan::Limit(agg, 10);
}

PlanPtr Q4(const TpchData& d) {
  PlanPtr o = plan::Scan(&d.orders);
  o = F(o, eb::And(eb::Ge(C(o, "o_orderdate"), eb::DateLit("1993-07-01")),
                   eb::Lt(C(o, "o_orderdate"), eb::DateLit("1993-10-01"))));
  PlanPtr l = plan::Scan(&d.lineitem);
  l = F(l, eb::Lt(C(l, "l_commitdate"), C(l, "l_receiptdate")));
  l = Keep(l, {"l_orderkey"});
  PlanPtr semi = plan::Join(o, l, JoinType::kLeftSemi, {C(o, "o_orderkey")},
                            {C(l, "l_orderkey")});
  PlanPtr agg = plan::Aggregate(
      semi, {C(semi, "o_orderpriority")}, {"o_orderpriority"},
      {Agg(AggKind::kCountStar, nullptr, "order_count")});
  return plan::Sort(agg, {Asc(C(agg, "o_orderpriority"))});
}

PlanPtr Q5(const TpchData& d) {
  PlanPtr r = plan::Scan(&d.region);
  r = Keep(F(r, eb::Eq(C(r, "r_name"), eb::Lit("ASIA"))), {"r_regionkey"});
  PlanPtr n = plan::Scan(&d.nation);
  PlanPtr nr = plan::Join(n, r, JoinType::kLeftSemi, {C(n, "n_regionkey")},
                          {C(r, "r_regionkey")});
  nr = Keep(nr, {"n_nationkey", "n_name"});
  PlanPtr c = plan::Scan(&d.customer);
  PlanPtr cn = plan::Join(c, nr, JoinType::kInner, {C(c, "c_nationkey")},
                          {C(nr, "n_nationkey")});
  cn = Keep(cn, {"c_custkey", "c_nationkey", "n_name"});
  PlanPtr o = plan::Scan(&d.orders);
  o = F(o, eb::And(eb::Ge(C(o, "o_orderdate"), eb::DateLit("1994-01-01")),
                   eb::Lt(C(o, "o_orderdate"), eb::DateLit("1995-01-01"))));
  PlanPtr oc = plan::Join(o, cn, JoinType::kInner, {C(o, "o_custkey")},
                          {C(cn, "c_custkey")});
  oc = Keep(oc, {"o_orderkey", "c_nationkey", "n_name"});
  PlanPtr l = plan::Scan(&d.lineitem);
  PlanPtr lo = plan::Join(l, oc, JoinType::kInner, {C(l, "l_orderkey")},
                          {C(oc, "o_orderkey")});
  lo = Keep(lo, {"l_suppkey", "l_extendedprice", "l_discount", "c_nationkey",
                 "n_name"});
  PlanPtr s = Keep(plan::Scan(&d.supplier), {"s_suppkey", "s_nationkey"});
  // Join on supplier key AND matching nation (the spec's
  // s_nationkey = c_nationkey condition) as a composite key.
  PlanPtr j = plan::Join(lo, s, JoinType::kInner,
                         {C(lo, "l_suppkey"), C(lo, "c_nationkey")},
                         {C(s, "s_suppkey"), C(s, "s_nationkey")});
  PlanPtr agg =
      plan::Aggregate(j, {C(j, "n_name")}, {"n_name"},
                      {Agg(AggKind::kSum, Revenue(j), "revenue")});
  return plan::Sort(agg, {Desc(C(agg, "revenue"))});
}

PlanPtr Q6(const TpchData& d) {
  PlanPtr l = plan::Scan(&d.lineitem);
  l = F(l,
        eb::And(
            eb::And(eb::Ge(C(l, "l_shipdate"), eb::DateLit("1994-01-01")),
                    eb::Lt(C(l, "l_shipdate"), eb::DateLit("1995-01-01"))),
            eb::And(eb::Between(C(l, "l_discount"), DL("0.05"), DL("0.07")),
                    eb::Lt(C(l, "l_quantity"), DL("24")))));
  return plan::Aggregate(
      l, {}, {},
      {Agg(AggKind::kSum, eb::Mul(C(l, "l_extendedprice"), C(l, "l_discount")),
           "revenue")});
}

PlanPtr Q7(const TpchData& d) {
  auto nation_named = [&](const std::string& alias) {
    PlanPtr n = plan::Scan(&d.nation);
    n = F(n, eb::Or(eb::Eq(C(n, "n_name"), eb::Lit("FRANCE")),
                    eb::Eq(C(n, "n_name"), eb::Lit("GERMANY"))));
    return Keep(n, {"n_nationkey:" + alias + "_key",
                    "n_name:" + alias + "_name"});
  };
  PlanPtr s = plan::Scan(&d.supplier);
  PlanPtr n1 = nation_named("n1");
  PlanPtr sn = plan::Join(s, n1, JoinType::kInner, {C(s, "s_nationkey")},
                          {C(n1, "n1_key")});
  sn = Keep(sn, {"s_suppkey", "n1_name:supp_nation"});
  PlanPtr c = plan::Scan(&d.customer);
  PlanPtr n2 = nation_named("n2");
  PlanPtr cn = plan::Join(c, n2, JoinType::kInner, {C(c, "c_nationkey")},
                          {C(n2, "n2_key")});
  cn = Keep(cn, {"c_custkey", "n2_name:cust_nation"});

  PlanPtr l = plan::Scan(&d.lineitem);
  l = F(l, eb::Between(C(l, "l_shipdate"), eb::DateLit("1995-01-01"),
                       eb::DateLit("1996-12-31")));
  PlanPtr o = Keep(plan::Scan(&d.orders), {"o_orderkey", "o_custkey"});
  PlanPtr j = plan::Join(l, o, JoinType::kInner, {C(l, "l_orderkey")},
                         {C(o, "o_orderkey")});
  j = plan::Join(j, cn, JoinType::kInner, {C(j, "o_custkey")},
                 {C(cn, "c_custkey")});
  j = plan::Join(j, sn, JoinType::kInner, {C(j, "l_suppkey")},
                 {C(sn, "s_suppkey")});
  j = F(j, eb::Or(eb::And(eb::Eq(C(j, "supp_nation"), eb::Lit("FRANCE")),
                          eb::Eq(C(j, "cust_nation"), eb::Lit("GERMANY"))),
                  eb::And(eb::Eq(C(j, "supp_nation"), eb::Lit("GERMANY")),
                          eb::Eq(C(j, "cust_nation"), eb::Lit("FRANCE")))));
  PlanPtr proj = plan::Project(
      j,
      {C(j, "supp_nation"), C(j, "cust_nation"),
       eb::Call("year", {C(j, "l_shipdate")}), Revenue(j)},
      {"supp_nation", "cust_nation", "l_year", "volume"});
  PlanPtr agg = plan::Aggregate(
      proj,
      {C(proj, "supp_nation"), C(proj, "cust_nation"), C(proj, "l_year")},
      {"supp_nation", "cust_nation", "l_year"},
      {Agg(AggKind::kSum, C(proj, "volume"), "revenue")});
  return plan::Sort(agg, {Asc(C(agg, "supp_nation")),
                          Asc(C(agg, "cust_nation")), Asc(C(agg, "l_year"))});
}

PlanPtr Q8(const TpchData& d) {
  PlanPtr p = plan::Scan(&d.part);
  p = Keep(F(p, eb::Eq(C(p, "p_type"), eb::Lit("ECONOMY ANODIZED STEEL"))),
           {"p_partkey"});
  PlanPtr l = plan::Scan(&d.lineitem);
  PlanPtr j = plan::Join(l, p, JoinType::kLeftSemi, {C(l, "l_partkey")},
                         {C(p, "p_partkey")});
  j = Keep(j, {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"});
  PlanPtr o = plan::Scan(&d.orders);
  o = F(o, eb::Between(C(o, "o_orderdate"), eb::DateLit("1995-01-01"),
                       eb::DateLit("1996-12-31")));
  o = Keep(o, {"o_orderkey", "o_custkey", "o_orderdate"});
  j = plan::Join(j, o, JoinType::kInner, {C(j, "l_orderkey")},
                 {C(o, "o_orderkey")});
  PlanPtr c = Keep(plan::Scan(&d.customer), {"c_custkey", "c_nationkey"});
  j = plan::Join(j, c, JoinType::kInner, {C(j, "o_custkey")},
                 {C(c, "c_custkey")});
  // Customer nation must be in AMERICA.
  PlanPtr r = plan::Scan(&d.region);
  r = Keep(F(r, eb::Eq(C(r, "r_name"), eb::Lit("AMERICA"))), {"r_regionkey"});
  PlanPtr n1 = plan::Scan(&d.nation);
  n1 = plan::Join(n1, r, JoinType::kLeftSemi, {C(n1, "n_regionkey")},
                  {C(r, "r_regionkey")});
  n1 = Keep(n1, {"n_nationkey:n1_key"});
  j = plan::Join(j, n1, JoinType::kLeftSemi, {C(j, "c_nationkey")},
                 {C(n1, "n1_key")});
  // Supplier nation name becomes the CASE discriminator.
  PlanPtr s = Keep(plan::Scan(&d.supplier), {"s_suppkey", "s_nationkey"});
  j = plan::Join(j, s, JoinType::kInner, {C(j, "l_suppkey")},
                 {C(s, "s_suppkey")});
  PlanPtr n2 = Keep(plan::Scan(&d.nation),
                    {"n_nationkey:n2_key", "n_name:nation"});
  j = plan::Join(j, n2, JoinType::kInner, {C(j, "s_nationkey")},
                 {C(n2, "n2_key")});

  ExprPtr volume = Revenue(j);
  PlanPtr proj = plan::Project(
      j,
      {eb::Call("year", {C(j, "o_orderdate")}), volume,
       eb::If(eb::Eq(C(j, "nation"), eb::Lit("BRAZIL")), volume,
              ZeroLike(volume))},
      {"o_year", "volume", "brazil_volume"});
  PlanPtr agg = plan::Aggregate(
      proj, {C(proj, "o_year")}, {"o_year"},
      {Agg(AggKind::kSum, C(proj, "brazil_volume"), "sum_brazil"),
       Agg(AggKind::kSum, C(proj, "volume"), "sum_all")});
  PlanPtr share = plan::Project(
      agg,
      {C(agg, "o_year"),
       eb::Div(eb::Cast(C(agg, "sum_brazil"), DataType::Float64()),
               eb::Cast(C(agg, "sum_all"), DataType::Float64()))},
      {"o_year", "mkt_share"});
  return plan::Sort(share, {Asc(C(share, "o_year"))});
}

PlanPtr Q9(const TpchData& d) {
  PlanPtr p = plan::Scan(&d.part);
  p = Keep(F(p, eb::Like(C(p, "p_name"), "%green%")), {"p_partkey"});
  PlanPtr l = plan::Scan(&d.lineitem);
  PlanPtr j = plan::Join(l, p, JoinType::kLeftSemi, {C(l, "l_partkey")},
                         {C(p, "p_partkey")});
  PlanPtr ps = Keep(plan::Scan(&d.partsupp),
                    {"ps_partkey", "ps_suppkey", "ps_supplycost"});
  j = plan::Join(j, ps, JoinType::kInner,
                 {C(j, "l_partkey"), C(j, "l_suppkey")},
                 {C(ps, "ps_partkey"), C(ps, "ps_suppkey")});
  PlanPtr s = Keep(plan::Scan(&d.supplier), {"s_suppkey", "s_nationkey"});
  j = plan::Join(j, s, JoinType::kInner, {C(j, "l_suppkey")},
                 {C(s, "s_suppkey")});
  PlanPtr n = Keep(plan::Scan(&d.nation), {"n_nationkey", "n_name"});
  j = plan::Join(j, n, JoinType::kInner, {C(j, "s_nationkey")},
                 {C(n, "n_nationkey")});
  PlanPtr o = Keep(plan::Scan(&d.orders), {"o_orderkey", "o_orderdate"});
  j = plan::Join(j, o, JoinType::kInner, {C(j, "l_orderkey")},
                 {C(o, "o_orderkey")});
  ExprPtr amount = eb::Sub(
      Revenue(j), eb::Mul(C(j, "ps_supplycost"), C(j, "l_quantity")));
  PlanPtr proj = plan::Project(
      j, {C(j, "n_name"), eb::Call("year", {C(j, "o_orderdate")}), amount},
      {"nation", "o_year", "amount"});
  PlanPtr agg = plan::Aggregate(
      proj, {C(proj, "nation"), C(proj, "o_year")}, {"nation", "o_year"},
      {Agg(AggKind::kSum, C(proj, "amount"), "sum_profit")});
  return plan::Sort(agg, {Asc(C(agg, "nation")), Desc(C(agg, "o_year"))});
}

PlanPtr Q10(const TpchData& d) {
  PlanPtr o = plan::Scan(&d.orders);
  o = F(o, eb::And(eb::Ge(C(o, "o_orderdate"), eb::DateLit("1993-10-01")),
                   eb::Lt(C(o, "o_orderdate"), eb::DateLit("1994-01-01"))));
  o = Keep(o, {"o_orderkey", "o_custkey"});
  PlanPtr l = plan::Scan(&d.lineitem);
  l = F(l, eb::Eq(C(l, "l_returnflag"), eb::Lit("R")));
  PlanPtr j = plan::Join(l, o, JoinType::kInner, {C(l, "l_orderkey")},
                         {C(o, "o_orderkey")});
  j = Keep(j, {"o_custkey", "l_extendedprice", "l_discount"});
  PlanPtr c = plan::Scan(&d.customer);
  j = plan::Join(j, c, JoinType::kInner, {C(j, "o_custkey")},
                 {C(c, "c_custkey")});
  PlanPtr n = Keep(plan::Scan(&d.nation), {"n_nationkey", "n_name"});
  j = plan::Join(j, n, JoinType::kInner, {C(j, "c_nationkey")},
                 {C(n, "n_nationkey")});
  PlanPtr agg = plan::Aggregate(
      j,
      {C(j, "c_custkey"), C(j, "c_name"), C(j, "c_acctbal"), C(j, "c_phone"),
       C(j, "n_name"), C(j, "c_address"), C(j, "c_comment")},
      {"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address",
       "c_comment"},
      {Agg(AggKind::kSum, Revenue(j), "revenue")});
  agg = plan::Sort(agg, {Desc(C(agg, "revenue"))});
  return plan::Limit(agg, 20);
}

/// German partsupp values, shared by Q11's outer query and total subquery.
PlanPtr Q11Values(const TpchData& d) {
  PlanPtr n = plan::Scan(&d.nation);
  n = Keep(F(n, eb::Eq(C(n, "n_name"), eb::Lit("GERMANY"))),
           {"n_nationkey"});
  PlanPtr s = plan::Scan(&d.supplier);
  s = plan::Join(s, n, JoinType::kLeftSemi, {C(s, "s_nationkey")},
                 {C(n, "n_nationkey")});
  s = Keep(s, {"s_suppkey"});
  PlanPtr ps = plan::Scan(&d.partsupp);
  ps = plan::Join(ps, s, JoinType::kLeftSemi, {C(ps, "ps_suppkey")},
                  {C(s, "s_suppkey")});
  return plan::Project(
      ps,
      {C(ps, "ps_partkey"),
       eb::Mul(C(ps, "ps_supplycost"),
               eb::Cast(C(ps, "ps_availqty"), DataType::Decimal(10, 0)))},
      {"ps_partkey", "value"});
}

PlanPtr Q11(const TpchData& d, double scale_factor) {
  PlanPtr values = Q11Values(d);
  PlanPtr by_part = plan::Aggregate(
      values, {C(values, "ps_partkey")}, {"ps_partkey"},
      {Agg(AggKind::kSum, C(values, "value"), "value")});
  PlanPtr total = plan::Aggregate(
      Q11Values(d), {}, {},
      {Agg(AggKind::kSum, C(values, "value"), "total")});
  // Cross join (constant key) then HAVING value > total * fraction.
  PlanPtr j =
      plan::Join(by_part, total, JoinType::kInner,
                 {eb::Lit(int32_t{1})}, {eb::Lit(int32_t{1})});
  // Spec: fraction = 0.0001 / SF. At tiny scale factors that threshold
  // exceeds every part's share, so clamp it to half the mean per-part
  // share; the query then selects the heavy tail like it does at SF >= 1.
  double fraction = 0.0001 / std::max(scale_factor, 1e-4);
  double mean_share = 1.0 / std::max<double>(20, 200000 * scale_factor);
  fraction = std::min(fraction, 2.0 * mean_share);
  char frac_text[32];
  std::snprintf(frac_text, sizeof(frac_text), "%.6f", fraction);
  PlanPtr filtered =
      F(j, eb::Gt(C(j, "value"),
                  eb::Mul(C(j, "total"), eb::DecimalLit(frac_text, 12, 6))));
  PlanPtr out = Keep(filtered, {"ps_partkey", "value"});
  return plan::Sort(out, {Desc(C(out, "value"))});
}

PlanPtr Q12(const TpchData& d) {
  PlanPtr l = plan::Scan(&d.lineitem);
  l = F(l, eb::And(
               eb::And(eb::In(C(l, "l_shipmode"),
                              {Value::String("MAIL"), Value::String("SHIP")}),
                       eb::Lt(C(l, "l_commitdate"), C(l, "l_receiptdate"))),
               eb::And(eb::Lt(C(l, "l_shipdate"), C(l, "l_commitdate")),
                       eb::And(eb::Ge(C(l, "l_receiptdate"),
                                      eb::DateLit("1994-01-01")),
                               eb::Lt(C(l, "l_receiptdate"),
                                      eb::DateLit("1995-01-01"))))));
  l = Keep(l, {"l_orderkey", "l_shipmode"});
  PlanPtr o = Keep(plan::Scan(&d.orders), {"o_orderkey", "o_orderpriority"});
  PlanPtr j = plan::Join(l, o, JoinType::kInner, {C(l, "l_orderkey")},
                         {C(o, "o_orderkey")});
  ExprPtr is_high =
      eb::Or(eb::Eq(C(j, "o_orderpriority"), eb::Lit("1-URGENT")),
             eb::Eq(C(j, "o_orderpriority"), eb::Lit("2-HIGH")));
  PlanPtr proj = plan::Project(
      j,
      {C(j, "l_shipmode"),
       eb::If(is_high, eb::Lit(int32_t{1}), eb::Lit(int32_t{0})),
       eb::If(is_high, eb::Lit(int32_t{0}), eb::Lit(int32_t{1}))},
      {"l_shipmode", "high", "low"});
  PlanPtr agg = plan::Aggregate(
      proj, {C(proj, "l_shipmode")}, {"l_shipmode"},
      {Agg(AggKind::kSum, C(proj, "high"), "high_line_count"),
       Agg(AggKind::kSum, C(proj, "low"), "low_line_count")});
  return plan::Sort(agg, {Asc(C(agg, "l_shipmode"))});
}

PlanPtr Q13(const TpchData& d) {
  PlanPtr o = plan::Scan(&d.orders);
  o = F(o, eb::Not(eb::Like(C(o, "o_comment"), "%special%requests%")));
  o = Keep(o, {"o_orderkey", "o_custkey"});
  PlanPtr c = Keep(plan::Scan(&d.customer), {"c_custkey"});
  PlanPtr loj = plan::Join(c, o, JoinType::kLeftOuter, {C(c, "c_custkey")},
                           {C(o, "o_custkey")});
  PlanPtr per_cust = plan::Aggregate(
      loj, {C(loj, "c_custkey")}, {"c_custkey"},
      {Agg(AggKind::kCount, C(loj, "o_orderkey"), "c_count")});
  PlanPtr dist = plan::Aggregate(
      per_cust, {C(per_cust, "c_count")}, {"c_count"},
      {Agg(AggKind::kCountStar, nullptr, "custdist")});
  return plan::Sort(dist,
                    {Desc(C(dist, "custdist")), Desc(C(dist, "c_count"))});
}

PlanPtr Q14(const TpchData& d) {
  PlanPtr l = plan::Scan(&d.lineitem);
  l = F(l, eb::And(eb::Ge(C(l, "l_shipdate"), eb::DateLit("1995-09-01")),
                   eb::Lt(C(l, "l_shipdate"), eb::DateLit("1995-10-01"))));
  PlanPtr p = Keep(plan::Scan(&d.part), {"p_partkey", "p_type"});
  PlanPtr j = plan::Join(l, p, JoinType::kInner, {C(l, "l_partkey")},
                         {C(p, "p_partkey")});
  ExprPtr rev = Revenue(j);
  PlanPtr proj = plan::Project(
      j,
      {eb::If(eb::Like(C(j, "p_type"), "PROMO%"), rev, ZeroLike(rev)), rev},
      {"promo", "total"});
  PlanPtr agg = plan::Aggregate(
      proj, {}, {},
      {Agg(AggKind::kSum, C(proj, "promo"), "sum_promo"),
       Agg(AggKind::kSum, C(proj, "total"), "sum_total")});
  return plan::Project(
      agg,
      {eb::Div(eb::Mul(eb::Lit(100.0), eb::Cast(C(agg, "sum_promo"),
                                                DataType::Float64())),
               eb::Cast(C(agg, "sum_total"), DataType::Float64()))},
      {"promo_revenue"});
}

PlanPtr Q15Revenue(const TpchData& d) {
  PlanPtr l = plan::Scan(&d.lineitem);
  l = F(l, eb::And(eb::Ge(C(l, "l_shipdate"), eb::DateLit("1996-01-01")),
                   eb::Lt(C(l, "l_shipdate"), eb::DateLit("1996-04-01"))));
  return plan::Aggregate(l, {C(l, "l_suppkey")}, {"supplier_no"},
                         {Agg(AggKind::kSum, Revenue(l), "total_revenue")});
}

PlanPtr Q15(const TpchData& d) {
  PlanPtr rev = Q15Revenue(d);
  PlanPtr max_rev = plan::Aggregate(
      Q15Revenue(d), {}, {},
      {Agg(AggKind::kMax, C(rev, "total_revenue"), "max_revenue")});
  PlanPtr j = plan::Join(rev, max_rev, JoinType::kInner,
                         {C(rev, "total_revenue")},
                         {C(max_rev, "max_revenue")});
  PlanPtr s = Keep(plan::Scan(&d.supplier),
                   {"s_suppkey", "s_name", "s_address", "s_phone"});
  j = plan::Join(j, s, JoinType::kInner, {C(j, "supplier_no")},
                 {C(s, "s_suppkey")});
  j = Keep(j, {"s_suppkey", "s_name", "s_address", "s_phone",
               "total_revenue"});
  return plan::Sort(j, {Asc(C(j, "s_suppkey"))});
}

PlanPtr Q16(const TpchData& d) {
  PlanPtr p = plan::Scan(&d.part);
  p = F(p, eb::And(
               eb::And(eb::Ne(C(p, "p_brand"), eb::Lit("Brand#45")),
                       eb::Not(eb::Like(C(p, "p_type"), "MEDIUM POLISHED%"))),
               eb::In(C(p, "p_size"),
                      {Value::Int32(49), Value::Int32(14), Value::Int32(23),
                       Value::Int32(45), Value::Int32(19), Value::Int32(3),
                       Value::Int32(36), Value::Int32(9)})));
  p = Keep(p, {"p_partkey", "p_brand", "p_type", "p_size"});
  PlanPtr ps = Keep(plan::Scan(&d.partsupp), {"ps_partkey", "ps_suppkey"});
  PlanPtr j = plan::Join(ps, p, JoinType::kInner, {C(ps, "ps_partkey")},
                         {C(p, "p_partkey")});
  PlanPtr bad = plan::Scan(&d.supplier);
  bad = Keep(F(bad, eb::Like(C(bad, "s_comment"), "%Customer%Complaints%")),
             {"s_suppkey"});
  j = plan::Join(j, bad, JoinType::kLeftAnti, {C(j, "ps_suppkey")},
                 {C(bad, "s_suppkey")});
  // count(distinct ps_suppkey): dedup then count.
  PlanPtr dedup = plan::Aggregate(
      j,
      {C(j, "p_brand"), C(j, "p_type"), C(j, "p_size"), C(j, "ps_suppkey")},
      {"p_brand", "p_type", "p_size", "ps_suppkey"},
      {Agg(AggKind::kCountStar, nullptr, "ignored")});
  PlanPtr agg = plan::Aggregate(
      dedup, {C(dedup, "p_brand"), C(dedup, "p_type"), C(dedup, "p_size")},
      {"p_brand", "p_type", "p_size"},
      {Agg(AggKind::kCountStar, nullptr, "supplier_cnt")});
  return plan::Sort(agg, {Desc(C(agg, "supplier_cnt")),
                          Asc(C(agg, "p_brand")), Asc(C(agg, "p_type")),
                          Asc(C(agg, "p_size"))});
}

PlanPtr Q17(const TpchData& d) {
  PlanPtr p = plan::Scan(&d.part);
  p = Keep(F(p, eb::And(eb::Eq(C(p, "p_brand"), eb::Lit("Brand#23")),
                        eb::Eq(C(p, "p_container"), eb::Lit("MED BOX")))),
           {"p_partkey"});
  PlanPtr l = plan::Scan(&d.lineitem);
  PlanPtr j = plan::Join(l, p, JoinType::kLeftSemi, {C(l, "l_partkey")},
                         {C(p, "p_partkey")});
  j = Keep(j, {"l_partkey", "l_quantity", "l_extendedprice"});
  PlanPtr all_lines = plan::Scan(&d.lineitem);
  PlanPtr avg_qty = plan::Aggregate(
      all_lines, {C(all_lines, "l_partkey")}, {"aq_partkey"},
      {Agg(AggKind::kAvg, C(all_lines, "l_quantity"), "avg_qty")});
  j = plan::Join(j, avg_qty, JoinType::kInner, {C(j, "l_partkey")},
                 {C(avg_qty, "aq_partkey")});
  j = F(j, eb::Lt(C(j, "l_quantity"),
                  eb::Mul(eb::DecimalLit("0.2", 12, 1), C(j, "avg_qty"))));
  PlanPtr agg = plan::Aggregate(
      j, {}, {},
      {Agg(AggKind::kSum, C(j, "l_extendedprice"), "sum_price")});
  return plan::Project(
      agg,
      {eb::Div(eb::Cast(C(agg, "sum_price"), DataType::Float64()),
               eb::Lit(7.0))},
      {"avg_yearly"});
}

PlanPtr Q18(const TpchData& d) {
  PlanPtr l0 = plan::Scan(&d.lineitem);
  PlanPtr big = plan::Aggregate(
      l0, {C(l0, "l_orderkey")}, {"bo_orderkey"},
      {Agg(AggKind::kSum, C(l0, "l_quantity"), "sum_qty")});
  big = Keep(F(big, eb::Gt(C(big, "sum_qty"), DL("300"))), {"bo_orderkey"});
  PlanPtr o = plan::Scan(&d.orders);
  o = plan::Join(o, big, JoinType::kLeftSemi, {C(o, "o_orderkey")},
                 {C(big, "bo_orderkey")});
  o = Keep(o, {"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"});
  PlanPtr c = Keep(plan::Scan(&d.customer), {"c_custkey", "c_name"});
  PlanPtr oc = plan::Join(o, c, JoinType::kInner, {C(o, "o_custkey")},
                          {C(c, "c_custkey")});
  PlanPtr l = Keep(plan::Scan(&d.lineitem), {"l_orderkey", "l_quantity"});
  PlanPtr j = plan::Join(l, oc, JoinType::kInner, {C(l, "l_orderkey")},
                         {C(oc, "o_orderkey")});
  PlanPtr agg = plan::Aggregate(
      j,
      {C(j, "c_name"), C(j, "c_custkey"), C(j, "o_orderkey"),
       C(j, "o_orderdate"), C(j, "o_totalprice")},
      {"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice"},
      {Agg(AggKind::kSum, C(j, "l_quantity"), "sum_qty")});
  agg = plan::Sort(agg, {Desc(C(agg, "o_totalprice")),
                         Asc(C(agg, "o_orderdate"))});
  return plan::Limit(agg, 100);
}

PlanPtr Q19(const TpchData& d) {
  PlanPtr l = plan::Scan(&d.lineitem);
  l = F(l, eb::And(eb::Eq(C(l, "l_shipinstruct"),
                          eb::Lit("DELIVER IN PERSON")),
                   eb::In(C(l, "l_shipmode"), {Value::String("AIR"),
                                               Value::String("REG AIR")})));
  PlanPtr p = Keep(plan::Scan(&d.part),
                   {"p_partkey", "p_brand", "p_container", "p_size"});
  PlanPtr j = plan::Join(l, p, JoinType::kInner, {C(l, "l_partkey")},
                         {C(p, "p_partkey")});
  auto bracket = [&](const char* brand, std::vector<Value> containers,
                     const char* qlo, const char* qhi, int size_hi) {
    return eb::And(
        eb::And(eb::Eq(C(j, "p_brand"), eb::Lit(brand)),
                eb::In(C(j, "p_container"), std::move(containers))),
        eb::And(eb::Between(C(j, "l_quantity"), DL(qlo), DL(qhi)),
                eb::Between(C(j, "p_size"), eb::Lit(int32_t{1}),
                            eb::Lit(size_hi))));
  };
  ExprPtr cond = eb::Or(
      eb::Or(bracket("Brand#12",
                     {Value::String("SM CASE"), Value::String("SM BOX"),
                      Value::String("SM PACK"), Value::String("SM PKG")},
                     "1", "11", 5),
             bracket("Brand#23",
                     {Value::String("MED BAG"), Value::String("MED BOX"),
                      Value::String("MED PKG"), Value::String("MED PACK")},
                     "10", "20", 10)),
      bracket("Brand#34",
              {Value::String("LG CASE"), Value::String("LG BOX"),
               Value::String("LG PACK"), Value::String("LG PKG")},
              "20", "30", 15));
  j = F(j, cond);
  return plan::Aggregate(j, {}, {},
                         {Agg(AggKind::kSum, Revenue(j), "revenue")});
}

PlanPtr Q20(const TpchData& d) {
  PlanPtr p = plan::Scan(&d.part);
  p = Keep(F(p, eb::Like(C(p, "p_name"), "forest%")), {"p_partkey"});
  PlanPtr l = plan::Scan(&d.lineitem);
  l = F(l, eb::And(eb::Ge(C(l, "l_shipdate"), eb::DateLit("1994-01-01")),
                   eb::Lt(C(l, "l_shipdate"), eb::DateLit("1995-01-01"))));
  PlanPtr qty = plan::Aggregate(
      l, {C(l, "l_partkey"), C(l, "l_suppkey")}, {"lq_partkey", "lq_suppkey"},
      {Agg(AggKind::kSum, C(l, "l_quantity"), "sum_qty")});
  PlanPtr ps = plan::Scan(&d.partsupp);
  ps = plan::Join(ps, p, JoinType::kLeftSemi, {C(ps, "ps_partkey")},
                  {C(p, "p_partkey")});
  ps = plan::Join(ps, qty, JoinType::kInner,
                  {C(ps, "ps_partkey"), C(ps, "ps_suppkey")},
                  {C(qty, "lq_partkey"), C(qty, "lq_suppkey")});
  ps = F(ps, eb::Gt(C(ps, "ps_availqty"),
                    eb::Mul(eb::DecimalLit("0.5", 12, 1), C(ps, "sum_qty"))));
  ps = Keep(ps, {"ps_suppkey"});
  PlanPtr n = plan::Scan(&d.nation);
  n = Keep(F(n, eb::Eq(C(n, "n_name"), eb::Lit("CANADA"))), {"n_nationkey"});
  PlanPtr s = plan::Scan(&d.supplier);
  s = plan::Join(s, n, JoinType::kLeftSemi, {C(s, "s_nationkey")},
                 {C(n, "n_nationkey")});
  s = plan::Join(s, ps, JoinType::kLeftSemi, {C(s, "s_suppkey")},
                 {C(ps, "ps_suppkey")});
  s = Keep(s, {"s_name", "s_address"});
  return plan::Sort(s, {Asc(C(s, "s_name"))});
}

PlanPtr Q21(const TpchData& d) {
  PlanPtr l1 = plan::Scan(&d.lineitem);
  l1 = F(l1, eb::Gt(C(l1, "l_receiptdate"), C(l1, "l_commitdate")));
  l1 = Keep(l1, {"l_orderkey", "l_suppkey"});
  PlanPtr o = plan::Scan(&d.orders);
  o = Keep(F(o, eb::Eq(C(o, "o_orderstatus"), eb::Lit("F"))),
           {"o_orderkey"});
  PlanPtr j = plan::Join(l1, o, JoinType::kLeftSemi, {C(l1, "l_orderkey")},
                         {C(o, "o_orderkey")});

  // exists l2: same order, different supplier.
  PlanPtr l2 = Keep(plan::Scan(&d.lineitem),
                    {"l_orderkey:l2_orderkey", "l_suppkey:l2_suppkey"});
  // Residual over [probe cols(l_orderkey,l_suppkey), build cols(l2_*)].
  ExprPtr l2_residual =
      eb::Ne(std::make_shared<ColumnRefExpr>(3, DataType::Int64(),
                                             "l2_suppkey"),
             std::make_shared<ColumnRefExpr>(1, DataType::Int64(),
                                             "l_suppkey"));
  j = plan::Join(j, l2, JoinType::kLeftSemi, {C(j, "l_orderkey")},
                 {C(l2, "l2_orderkey")}, l2_residual);

  // not exists l3: same order, different supplier, late receipt.
  PlanPtr l3 = plan::Scan(&d.lineitem);
  l3 = F(l3, eb::Gt(C(l3, "l_receiptdate"), C(l3, "l_commitdate")));
  l3 = Keep(l3, {"l_orderkey:l3_orderkey", "l_suppkey:l3_suppkey"});
  ExprPtr l3_residual =
      eb::Ne(std::make_shared<ColumnRefExpr>(3, DataType::Int64(),
                                             "l3_suppkey"),
             std::make_shared<ColumnRefExpr>(1, DataType::Int64(),
                                             "l_suppkey"));
  j = plan::Join(j, l3, JoinType::kLeftAnti, {C(j, "l_orderkey")},
                 {C(l3, "l3_orderkey")}, l3_residual);

  PlanPtr n = plan::Scan(&d.nation);
  n = Keep(F(n, eb::Eq(C(n, "n_name"), eb::Lit("SAUDI ARABIA"))),
           {"n_nationkey"});
  PlanPtr s = plan::Scan(&d.supplier);
  s = plan::Join(s, n, JoinType::kLeftSemi, {C(s, "s_nationkey")},
                 {C(n, "n_nationkey")});
  s = Keep(s, {"s_suppkey", "s_name"});
  j = plan::Join(j, s, JoinType::kInner, {C(j, "l_suppkey")},
                 {C(s, "s_suppkey")});
  PlanPtr agg =
      plan::Aggregate(j, {C(j, "s_name")}, {"s_name"},
                      {Agg(AggKind::kCountStar, nullptr, "numwait")});
  agg = plan::Sort(agg, {Desc(C(agg, "numwait")), Asc(C(agg, "s_name"))});
  return plan::Limit(agg, 100);
}

PlanPtr Q22Customers(const TpchData& d) {
  PlanPtr c = plan::Scan(&d.customer);
  ExprPtr code =
      eb::Call("substr", {C(c, "c_phone"), eb::Lit(int32_t{1}),
                          eb::Lit(int32_t{2})});
  return F(c, eb::In(code, {Value::String("13"), Value::String("31"),
                            Value::String("23"), Value::String("29"),
                            Value::String("30"), Value::String("18"),
                            Value::String("17")}));
}

PlanPtr Q22(const TpchData& d) {
  PlanPtr c = Q22Customers(d);
  PlanPtr avg_bal = plan::Aggregate(
      F(Q22Customers(d), eb::Gt(ColOf(Q22Customers(d), "c_acctbal"),
                                DL("0.00"))),
      {}, {}, {Agg(AggKind::kAvg, ColOf(Q22Customers(d), "c_acctbal"),
                   "avg_bal")});
  PlanPtr j = plan::Join(c, avg_bal, JoinType::kInner, {eb::Lit(int32_t{1})},
                         {eb::Lit(int32_t{1})});
  j = F(j, eb::Gt(C(j, "c_acctbal"), C(j, "avg_bal")));
  PlanPtr o = Keep(plan::Scan(&d.orders), {"o_custkey"});
  j = plan::Join(j, o, JoinType::kLeftAnti, {C(j, "c_custkey")},
                 {C(o, "o_custkey")});
  PlanPtr proj = plan::Project(
      j,
      {eb::Call("substr", {C(j, "c_phone"), eb::Lit(int32_t{1}),
                           eb::Lit(int32_t{2})}),
       C(j, "c_acctbal")},
      {"cntrycode", "c_acctbal"});
  PlanPtr agg = plan::Aggregate(
      proj, {C(proj, "cntrycode")}, {"cntrycode"},
      {Agg(AggKind::kCountStar, nullptr, "numcust"),
       Agg(AggKind::kSum, C(proj, "c_acctbal"), "totacctbal")});
  return plan::Sort(agg, {Asc(C(agg, "cntrycode"))});
}

}  // namespace

Result<plan::PlanPtr> TpchQuery(int q, const TpchData& d,
                                double scale_factor) {
  switch (q) {
    case 1:
      return Q1(d);
    case 2:
      return Q2(d);
    case 3:
      return Q3(d);
    case 4:
      return Q4(d);
    case 5:
      return Q5(d);
    case 6:
      return Q6(d);
    case 7:
      return Q7(d);
    case 8:
      return Q8(d);
    case 9:
      return Q9(d);
    case 10:
      return Q10(d);
    case 11:
      return Q11(d, scale_factor);
    case 12:
      return Q12(d);
    case 13:
      return Q13(d);
    case 14:
      return Q14(d);
    case 15:
      return Q15(d);
    case 16:
      return Q16(d);
    case 17:
      return Q17(d);
    case 18:
      return Q18(d);
    case 19:
      return Q19(d);
    case 20:
      return Q20(d);
    case 21:
      return Q21(d);
    case 22:
      return Q22(d);
    default:
      return Status::InvalidArgument("TPC-H query number must be 1..22");
  }
}

}  // namespace tpch
}  // namespace photon
