-- TPC-H Q17: small-quantity-order revenue. The per-part average quantity is
-- computed over the full lineitem table and joined back.
SELECT CAST(sum_price AS DOUBLE) / DOUBLE '7' AS avg_yearly
FROM (SELECT sum(l_extendedprice) AS sum_price
      FROM (SELECT l_partkey, l_quantity, l_extendedprice
            FROM lineitem
            LEFT SEMI JOIN (SELECT p_partkey FROM part
                            WHERE p_brand = 'Brand#23'
                              AND p_container = 'MED BOX') AS p
            ON l_partkey = p.p_partkey) AS l
      JOIN (SELECT l_partkey AS aq_partkey, avg(l_quantity) AS avg_qty
            FROM lineitem
            GROUP BY l_partkey) AS aq
      ON l.l_partkey = aq.aq_partkey
      WHERE l_quantity < DECIMAL(12,1) '0.2' * avg_qty) AS t
