-- TPC-H Q15: top supplier. The revenue CTE expands twice, like the two
-- Q15Revenue() calls in the hand-built plan. total_revenue = max_revenue is
-- a decimal equality, so it lowers to a constant-key join with a residual;
-- the hand-built plan uses the decimals as hash keys directly, but the two
-- forms normalize to the same fingerprint and select the same rows.
WITH revenue AS (
  SELECT l_suppkey AS supplier_no,
         sum(l_extendedprice * (1 - l_discount)) AS total_revenue
  FROM (SELECT * FROM lineitem
        WHERE l_shipdate >= DATE '1996-01-01'
          AND l_shipdate < DATE '1996-04-01') AS l
  GROUP BY l_suppkey
)
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM revenue AS r
JOIN (SELECT max(total_revenue) AS max_revenue FROM revenue) AS m
ON r.total_revenue = m.max_revenue
JOIN (SELECT s_suppkey, s_name, s_address, s_phone FROM supplier) AS s
ON r.supplier_no = s.s_suppkey
ORDER BY s_suppkey
