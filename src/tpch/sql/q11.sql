-- TPC-H Q11: important stock identification. {{fraction}} is substituted by
-- the loader with the same scale-clamped threshold the hand-built plan
-- computes (see Q11 in tpch_queries.cc). The CROSS JOIN broadcasts the
-- single-row total, mirroring the constant-key join in the hand-built plan.
WITH value_by AS (
  SELECT ps_partkey, ps_supplycost * CAST(ps_availqty AS DECIMAL(10,0)) AS val
  FROM partsupp
  LEFT SEMI JOIN (SELECT s_suppkey
                  FROM supplier
                  LEFT SEMI JOIN (SELECT n_nationkey FROM nation
                                  WHERE n_name = 'GERMANY') AS n
                  ON s_nationkey = n.n_nationkey) AS s
  ON ps_suppkey = s.s_suppkey
)
SELECT ps_partkey, val
FROM (SELECT ps_partkey, sum(val) AS val FROM value_by GROUP BY ps_partkey)
     AS by_part
CROSS JOIN (SELECT sum(val) AS total FROM value_by) AS t
WHERE val > total * DECIMAL(12,6) '{{fraction}}'
ORDER BY val DESC
