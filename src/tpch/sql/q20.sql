-- TPC-H Q20: potential part promotion. Suppliers are reduced by two stacked
-- left-semi joins (CANADA nation, then excess-stock partsupp).
SELECT s_name, s_address
FROM supplier
LEFT SEMI JOIN (SELECT n_nationkey FROM nation WHERE n_name = 'CANADA') AS n
ON s_nationkey = n.n_nationkey
LEFT SEMI JOIN (SELECT ps_suppkey
                FROM partsupp
                LEFT SEMI JOIN (SELECT p_partkey FROM part
                                WHERE p_name LIKE 'forest%') AS p
                ON ps_partkey = p.p_partkey
                JOIN (SELECT l_partkey AS lq_partkey,
                             l_suppkey AS lq_suppkey,
                             sum(l_quantity) AS sum_qty
                      FROM (SELECT * FROM lineitem
                            WHERE l_shipdate >= DATE '1994-01-01'
                              AND l_shipdate < DATE '1995-01-01') AS l
                      GROUP BY l_partkey, l_suppkey) AS q
                ON ps_partkey = q.lq_partkey AND ps_suppkey = q.lq_suppkey
                WHERE ps_availqty > DECIMAL(12,1) '0.5' * sum_qty) AS ps
ON s_suppkey = ps.ps_suppkey
ORDER BY s_name
