-- TPC-H Q10: returned item reporting.
SELECT c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment,
       sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM (SELECT o_custkey, l_extendedprice, l_discount
      FROM (SELECT * FROM lineitem WHERE l_returnflag = 'R') AS l
      JOIN (SELECT o_orderkey, o_custkey
            FROM orders
            WHERE o_orderdate >= DATE '1993-10-01'
              AND o_orderdate < DATE '1994-01-01') AS o
      ON l.l_orderkey = o.o_orderkey) AS j
JOIN customer ON j.o_custkey = c_custkey
JOIN (SELECT n_nationkey, n_name FROM nation) AS n
ON c_nationkey = n.n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC
LIMIT 20
