-- TPC-H Q12: shipping modes and order priority. The two CASE expressions
-- share the same discriminator, like the reused is_high expression in the
-- hand-built plan (expression canons are structural, so sharing is moot).
SELECT l_shipmode, sum(high) AS high_line_count, sum(low) AS low_line_count
FROM (SELECT l_shipmode,
             CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                  THEN 1 ELSE 0 END AS high,
             CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
                  THEN 0 ELSE 1 END AS low
      FROM (SELECT l_orderkey, l_shipmode
            FROM lineitem
            WHERE (l_shipmode IN ('MAIL', 'SHIP')
                   AND l_commitdate < l_receiptdate)
              AND (l_shipdate < l_commitdate
                   AND (l_receiptdate >= DATE '1994-01-01'
                        AND l_receiptdate < DATE '1995-01-01'))) AS l
      JOIN (SELECT o_orderkey, o_orderpriority FROM orders) AS o
      ON l.l_orderkey = o.o_orderkey) AS flagged
GROUP BY l_shipmode
ORDER BY l_shipmode
