-- TPC-H Q8: national market share. The CASE ELSE arm casts int 0 to the
-- revenue expression's decimal type (26,4), matching ZeroLike() in the
-- hand-built plan.
SELECT o_year,
       CAST(sum_brazil AS DOUBLE) / CAST(sum_all AS DOUBLE) AS mkt_share
FROM (SELECT o_year,
             sum(brazil_volume) AS sum_brazil,
             sum(volume) AS sum_all
      FROM (SELECT year(o_orderdate) AS o_year,
                   l_extendedprice * (1 - l_discount) AS volume,
                   CASE WHEN n2.n_name = 'BRAZIL'
                        THEN l_extendedprice * (1 - l_discount)
                        ELSE CAST(0 AS DECIMAL(26,4))
                   END AS brazil_volume
            FROM (SELECT l_orderkey, l_suppkey, l_extendedprice, l_discount
                  FROM lineitem
                  LEFT SEMI JOIN (SELECT p_partkey FROM part
                                  WHERE p_type = 'ECONOMY ANODIZED STEEL') AS p
                  ON l_partkey = p.p_partkey) AS l
            JOIN (SELECT o_orderkey, o_custkey, o_orderdate
                  FROM (SELECT * FROM orders
                        WHERE o_orderdate BETWEEN DATE '1995-01-01'
                                              AND DATE '1996-12-31') AS o0) AS o
            ON l.l_orderkey = o.o_orderkey
            JOIN (SELECT c_custkey, c_nationkey FROM customer) AS c
            ON o.o_custkey = c.c_custkey
            LEFT SEMI JOIN (SELECT n_nationkey
                            FROM nation
                            LEFT SEMI JOIN (SELECT r_regionkey FROM region
                                            WHERE r_name = 'AMERICA') AS r
                            ON n_regionkey = r.r_regionkey) AS n1
            ON c_nationkey = n1.n_nationkey
            JOIN (SELECT s_suppkey, s_nationkey FROM supplier) AS s
            ON l.l_suppkey = s.s_suppkey
            JOIN (SELECT n_nationkey, n_name FROM nation) AS n2
            ON s_nationkey = n2.n_nationkey) AS v
      GROUP BY o_year) AS a
ORDER BY o_year
