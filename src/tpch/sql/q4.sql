-- TPC-H Q4: order priority checking. The EXISTS subquery is written as an
-- explicit left-semi join, exactly how the hand-built plan decorrelates it.
SELECT o_orderpriority, count(*) AS order_count
FROM (SELECT * FROM orders
      WHERE o_orderdate >= DATE '1993-07-01'
        AND o_orderdate < DATE '1993-10-01') AS o
LEFT SEMI JOIN (SELECT l_orderkey FROM lineitem
                WHERE l_commitdate < l_receiptdate) AS l
ON o.o_orderkey = l.l_orderkey
GROUP BY o_orderpriority
ORDER BY o_orderpriority
