-- TPC-H Q18: large volume customers. The big CTE is the decorrelated HAVING
-- subquery; SELECT * on the orders-customer join avoids a projection node,
-- matching the hand-built plan's bare join.
WITH big AS (
  SELECT bo_orderkey
  FROM (SELECT l_orderkey AS bo_orderkey, sum(l_quantity) AS sum_qty
        FROM lineitem
        GROUP BY l_orderkey) AS t
  WHERE sum_qty > DECIMAL(12,2) '300'
)
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity) AS sum_qty
FROM (SELECT l_orderkey, l_quantity FROM lineitem) AS l
JOIN (SELECT *
      FROM (SELECT o_orderkey, o_custkey, o_orderdate, o_totalprice
            FROM orders
            LEFT SEMI JOIN big ON o_orderkey = big.bo_orderkey) AS o
      JOIN (SELECT c_custkey, c_name FROM customer) AS c
      ON o.o_custkey = c.c_custkey) AS oc
ON l.l_orderkey = oc.o_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100
