-- TPC-H Q13: customer distribution. Left-outer join keeps customers with no
-- orders; count(o_orderkey) ignores the NULL-padded rows.
SELECT c_count, count(*) AS custdist
FROM (SELECT c_custkey, count(o_orderkey) AS c_count
      FROM (SELECT c_custkey FROM customer) AS c
      LEFT OUTER JOIN (SELECT o_orderkey, o_custkey
                       FROM orders
                       WHERE NOT (o_comment LIKE '%special%requests%')) AS o
      ON c.c_custkey = o.o_custkey
      GROUP BY c_custkey) AS per_cust
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC
