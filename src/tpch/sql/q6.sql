-- TPC-H Q6: forecasting revenue change. The parentheses pin the AND-tree
-- shape to the hand-built And(And(date range), And(discount, quantity));
-- typed decimal literals pin the exact literal types the eb:: builders use.
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM (SELECT * FROM lineitem
      WHERE (l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01')
        AND (l_discount BETWEEN DECIMAL(12,2) '0.05' AND DECIMAL(12,2) '0.07'
             AND l_quantity < DECIMAL(12,2) '24')) AS l
