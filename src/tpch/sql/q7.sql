-- TPC-H Q7: volume shipping between FRANCE and GERMANY.
SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue
FROM (SELECT supp_nation, cust_nation, year(l_shipdate) AS l_year,
             l_extendedprice * (1 - l_discount) AS volume
      FROM (SELECT * FROM lineitem
            WHERE l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31') AS l
      JOIN (SELECT o_orderkey, o_custkey FROM orders) AS o
      ON l.l_orderkey = o.o_orderkey
      JOIN (SELECT c_custkey, n2_name AS cust_nation
            FROM customer
            JOIN (SELECT n_nationkey AS n2_key, n_name AS n2_name
                  FROM nation
                  WHERE n_name = 'FRANCE' OR n_name = 'GERMANY') AS n2
            ON c_nationkey = n2.n2_key) AS cn
      ON o.o_custkey = cn.c_custkey
      JOIN (SELECT s_suppkey, n1_name AS supp_nation
            FROM supplier
            JOIN (SELECT n_nationkey AS n1_key, n_name AS n1_name
                  FROM nation
                  WHERE n_name = 'FRANCE' OR n_name = 'GERMANY') AS n1
            ON s_nationkey = n1.n1_key) AS sn
      ON l.l_suppkey = sn.s_suppkey
      WHERE (supp_nation = 'FRANCE' AND cust_nation = 'GERMANY')
         OR (supp_nation = 'GERMANY' AND cust_nation = 'FRANCE')) AS shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year
