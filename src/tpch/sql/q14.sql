-- TPC-H Q14: promotion effect. DOUBLE '100' pins the float64 literal the
-- hand-built plan uses (a plain 100.0 would lex as DECIMAL(4,1)).
SELECT DOUBLE '100' * CAST(sum_promo AS DOUBLE) / CAST(sum_total AS DOUBLE)
           AS promo_revenue
FROM (SELECT sum(promo) AS sum_promo, sum(total) AS sum_total
      FROM (SELECT CASE WHEN p_type LIKE 'PROMO%'
                        THEN l_extendedprice * (1 - l_discount)
                        ELSE CAST(0 AS DECIMAL(26,4))
                   END AS promo,
                   l_extendedprice * (1 - l_discount) AS total
            FROM (SELECT * FROM lineitem
                  WHERE l_shipdate >= DATE '1995-09-01'
                    AND l_shipdate < DATE '1995-10-01') AS l
            JOIN (SELECT p_partkey, p_type FROM part) AS p
            ON l.l_partkey = p.p_partkey) AS flagged) AS t
