-- TPC-H Q1: pricing summary report.
-- Written to lower to exactly the plan tpch_queries.cc builds by hand:
-- Filter(Scan(lineitem)) -> Aggregate -> Sort. Typed literals pin the
-- decimal/date types the eb:: builders produce.
SELECT l_returnflag, l_linestatus,
       sum(l_quantity) AS sum_qty,
       sum(l_extendedprice) AS sum_base_price,
       sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       avg(l_quantity) AS avg_qty,
       avg(l_extendedprice) AS avg_price,
       avg(l_discount) AS avg_disc,
       count(*) AS count_order
FROM (SELECT * FROM lineitem WHERE l_shipdate <= DATE '1998-09-02') AS l
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
