-- TPC-H Q16: parts/supplier relationship. count(distinct ps_suppkey) is a
-- two-level aggregate: dedup on (brand, type, size, suppkey), then count.
SELECT p_brand, p_type, p_size, count(*) AS supplier_cnt
FROM (SELECT p_brand, p_type, p_size, ps_suppkey, count(*) AS ignored
      FROM (SELECT ps_partkey, ps_suppkey FROM partsupp) AS ps
      JOIN (SELECT p_partkey, p_brand, p_type, p_size
            FROM part
            WHERE (p_brand <> 'Brand#45'
                   AND NOT (p_type LIKE 'MEDIUM POLISHED%'))
              AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)) AS p
      ON ps.ps_partkey = p.p_partkey
      LEFT ANTI JOIN (SELECT s_suppkey FROM supplier
                      WHERE s_comment LIKE '%Customer%Complaints%') AS bad
      ON ps_suppkey = bad.s_suppkey
      GROUP BY p_brand, p_type, p_size, ps_suppkey) AS dedup
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size
