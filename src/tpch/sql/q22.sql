-- TPC-H Q22: global sales opportunity. The cust CTE expands twice (outer
-- query + average-balance subquery); the CROSS JOIN broadcasts the one-row
-- average so the balance filter can sit between the two joins, exactly
-- where the hand-built plan places it.
WITH cust AS (
  SELECT * FROM customer
  WHERE substr(c_phone, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17')
)
SELECT cntrycode, count(*) AS numcust, sum(c_acctbal) AS totacctbal
FROM (SELECT substr(c_phone, 1, 2) AS cntrycode, c_acctbal
      FROM (SELECT *
            FROM cust
            CROSS JOIN (SELECT avg(c_acctbal) AS avg_bal
                        FROM (SELECT * FROM cust
                              WHERE c_acctbal > DECIMAL(12,2) '0.00') AS cb)
                       AS ab
            WHERE c_acctbal > avg_bal) AS x
      LEFT ANTI JOIN (SELECT o_custkey FROM orders) AS o
      ON x.c_custkey = o.o_custkey) AS flagged
GROUP BY cntrycode
ORDER BY cntrycode
