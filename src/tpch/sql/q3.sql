-- TPC-H Q3: shipping priority. BUILDING customers reduce orders via a
-- left-semi join; SELECT items are grouping keys first, then aggregates, so
-- the aggregate needs no post-projection (matching the hand-built plan).
SELECT l_orderkey, o_orderdate, o_shippriority,
       sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM (SELECT * FROM lineitem WHERE l_shipdate > DATE '1995-03-15') AS l
JOIN (SELECT o_orderkey, o_orderdate, o_shippriority
      FROM (SELECT * FROM orders WHERE o_orderdate < DATE '1995-03-15') AS o
      LEFT SEMI JOIN (SELECT c_custkey FROM customer
                      WHERE c_mktsegment = 'BUILDING') AS c
      ON o.o_custkey = c.c_custkey) AS oc
ON l.l_orderkey = oc.o_orderkey
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
