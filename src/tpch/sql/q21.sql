-- TPC-H Q21: suppliers who kept orders waiting. The "other supplier"
-- inequalities ride the semi/anti joins as residual conditions, with the
-- build-side operand written first to match the hand-built residual exprs.
SELECT s_name, count(*) AS numwait
FROM (SELECT l_orderkey, l_suppkey FROM lineitem
      WHERE l_receiptdate > l_commitdate) AS l1
LEFT SEMI JOIN (SELECT o_orderkey FROM orders
                WHERE o_orderstatus = 'F') AS o
ON l1.l_orderkey = o.o_orderkey
LEFT SEMI JOIN (SELECT l_orderkey AS l2_orderkey, l_suppkey AS l2_suppkey
                FROM lineitem) AS l2
ON l1.l_orderkey = l2.l2_orderkey AND l2.l2_suppkey <> l1.l_suppkey
LEFT ANTI JOIN (SELECT l_orderkey AS l3_orderkey, l_suppkey AS l3_suppkey
                FROM lineitem
                WHERE l_receiptdate > l_commitdate) AS l3
ON l1.l_orderkey = l3.l3_orderkey AND l3.l3_suppkey <> l1.l_suppkey
JOIN (SELECT s_suppkey, s_name
      FROM supplier
      LEFT SEMI JOIN (SELECT n_nationkey FROM nation
                      WHERE n_name = 'SAUDI ARABIA') AS n
      ON s_nationkey = n.n_nationkey) AS s
ON l1.l_suppkey = s.s_suppkey
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100
