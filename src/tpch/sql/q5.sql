-- TPC-H Q5: local supplier volume. The supplier join carries a composite key
-- (l_suppkey = s_suppkey AND c_nationkey = s_nationkey), so the nation match
-- rides in the hash key rather than a post-filter.
SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM (SELECT l_suppkey, l_extendedprice, l_discount, c_nationkey, n_name
      FROM lineitem
      JOIN (SELECT o_orderkey, c_nationkey, n_name
            FROM (SELECT * FROM orders
                  WHERE o_orderdate >= DATE '1994-01-01'
                    AND o_orderdate < DATE '1995-01-01') AS o
            JOIN (SELECT c_custkey, c_nationkey, n_name
                  FROM customer
                  JOIN (SELECT n_nationkey, n_name
                        FROM nation
                        LEFT SEMI JOIN (SELECT r_regionkey FROM region
                                        WHERE r_name = 'ASIA') AS r
                        ON n_regionkey = r.r_regionkey) AS nr
                  ON c_nationkey = nr.n_nationkey) AS cn
            ON o.o_custkey = cn.c_custkey) AS oc
      ON l_orderkey = oc.o_orderkey) AS lo
JOIN (SELECT s_suppkey, s_nationkey FROM supplier) AS s
ON lo.l_suppkey = s.s_suppkey AND lo.c_nationkey = s.s_nationkey
GROUP BY n_name
ORDER BY revenue DESC
