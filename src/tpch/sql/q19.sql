-- TPC-H Q19: discounted revenue. Three brand/container/quantity brackets
-- OR-ed together; parentheses shape each bracket as
-- And(And(brand, container), And(quantity, size)) like the hand-built plan.
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM (SELECT * FROM lineitem
      WHERE l_shipinstruct = 'DELIVER IN PERSON'
        AND l_shipmode IN ('AIR', 'REG AIR')) AS l
JOIN (SELECT p_partkey, p_brand, p_container, p_size FROM part) AS p
ON l.l_partkey = p.p_partkey
WHERE (p_brand = 'Brand#12'
       AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG'))
      AND (l_quantity BETWEEN DECIMAL(12,2) '1' AND DECIMAL(12,2) '11'
           AND p_size BETWEEN 1 AND 5)
   OR (p_brand = 'Brand#23'
       AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK'))
      AND (l_quantity BETWEEN DECIMAL(12,2) '10' AND DECIMAL(12,2) '20'
           AND p_size BETWEEN 1 AND 10)
   OR (p_brand = 'Brand#34'
       AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG'))
      AND (l_quantity BETWEEN DECIMAL(12,2) '20' AND DECIMAL(12,2) '30'
           AND p_size BETWEEN 1 AND 15)
