-- TPC-H Q2: minimum cost supplier.
-- The europe_supply CTE expands twice (outer query + min-cost aggregate),
-- mirroring the two Q2EuropeSupply() calls in tpch_queries.cc. The
-- ps_supplycost = min_cost conjunct lowers to a join residual; the hand-built
-- plan makes it a second hash key, but PlanFingerprint normalizes key pairs
-- and residual equalities identically, so the plans are equivalent.
WITH europe_supply AS (
  SELECT *
  FROM partsupp
  JOIN (SELECT s_suppkey, s_name, s_address, s_phone, s_acctbal, s_comment,
               n_name
        FROM supplier
        JOIN (SELECT n_nationkey, n_name
              FROM nation
              JOIN (SELECT r_regionkey FROM region WHERE r_name = 'EUROPE') AS r
              ON n_regionkey = r.r_regionkey) AS nr
        ON s_nationkey = nr.n_nationkey) AS sn
  ON ps_suppkey = sn.s_suppkey
)
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone,
       s_comment
FROM europe_supply AS supply
JOIN (SELECT ps_partkey AS mc_partkey, min(ps_supplycost) AS min_cost
      FROM europe_supply
      GROUP BY ps_partkey) AS mc
ON supply.ps_partkey = mc.mc_partkey AND supply.ps_supplycost = mc.min_cost
JOIN (SELECT p_partkey, p_mfgr
      FROM part
      WHERE p_size = 15 AND p_type LIKE '%BRASS') AS p
ON supply.ps_partkey = p.p_partkey
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
LIMIT 100
