-- TPC-H Q9: product type profit measure.
SELECT nation, o_year, sum(amount) AS sum_profit
FROM (SELECT n_name AS nation, year(o_orderdate) AS o_year,
             l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity
                 AS amount
      FROM lineitem
      LEFT SEMI JOIN (SELECT p_partkey FROM part
                      WHERE p_name LIKE '%green%') AS p
      ON l_partkey = p.p_partkey
      JOIN (SELECT ps_partkey, ps_suppkey, ps_supplycost FROM partsupp) AS ps
      ON l_partkey = ps.ps_partkey AND l_suppkey = ps.ps_suppkey
      JOIN (SELECT s_suppkey, s_nationkey FROM supplier) AS s
      ON l_suppkey = s.s_suppkey
      JOIN (SELECT n_nationkey, n_name FROM nation) AS n
      ON s_nationkey = n.n_nationkey
      JOIN (SELECT o_orderkey, o_orderdate FROM orders) AS o
      ON l_orderkey = o.o_orderkey) AS profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC
