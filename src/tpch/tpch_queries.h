#ifndef PHOTON_TPCH_TPCH_QUERIES_H_
#define PHOTON_TPCH_TPCH_QUERIES_H_

#include "plan/logical_plan.h"
#include "tpch/tpch_gen.h"

namespace photon {
namespace tpch {

/// Builds TPC-H query `q` (1..22) as an engine-neutral logical plan over
/// the given data, using the spec's default substitution parameters.
/// `scale_factor` parameterizes the few predicates the spec scales (Q11's
/// fraction). The same plan compiles to Photon and to the baseline engine,
/// which is how Figure 8's head-to-head comparison is reproduced.
Result<plan::PlanPtr> TpchQuery(int q, const TpchData& data,
                                double scale_factor = 0.01);

}  // namespace tpch
}  // namespace photon

#endif  // PHOTON_TPCH_TPCH_QUERIES_H_
