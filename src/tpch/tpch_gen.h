#ifndef PHOTON_TPCH_TPCH_GEN_H_
#define PHOTON_TPCH_TPCH_GEN_H_

#include <cstdint>

#include "vector/table.h"

namespace photon {
namespace tpch {

/// All eight TPC-H base tables, in-memory columnar.
struct TpchData {
  Table region;
  Table nation;
  Table supplier;
  Table customer;
  Table part;
  Table partsupp;
  Table orders;
  Table lineitem;

  TpchData();
};

/// dbgen-style deterministic generator (see TPC-H spec §4.2), scaled by
/// `scale_factor` (1.0 = 6M lineitems; benchmarks here use 0.01–0.1).
/// Value distributions follow the spec closely enough that the 22 queries
/// are selective in the intended ways: dates span 1992-01-01..1998-08-02,
/// discounts 0.00..0.10, the comment text pools contain the phrases the
/// LIKE predicates probe for, etc. Monetary columns are decimal(12,2).
TpchData GenerateTpch(double scale_factor, uint64_t seed = 19711025);

/// Schemas (column order matters: queries reference fields by name).
Schema RegionSchema();
Schema NationSchema();
Schema SupplierSchema();
Schema CustomerSchema();
Schema PartSchema();
Schema PartsuppSchema();
Schema OrdersSchema();
Schema LineitemSchema();

}  // namespace tpch
}  // namespace photon

#endif  // PHOTON_TPCH_TPCH_GEN_H_
