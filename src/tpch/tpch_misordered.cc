#include "tpch/tpch_misordered.h"

#include "expr/builder.h"

namespace photon {
namespace tpch {
namespace {

using plan::ColOf;
using plan::PlanPtr;

PlanPtr F(PlanPtr p, ExprPtr pred) { return plan::Filter(std::move(p), pred); }

ExprPtr C(const PlanPtr& p, const std::string& name) { return ColOf(p, name); }

PlanPtr Keep(PlanPtr p, const std::vector<std::string>& cols) {
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (const std::string& name : cols) {
    exprs.push_back(ColOf(p, name));
    names.push_back(name);
  }
  return plan::Project(std::move(p), std::move(exprs), std::move(names));
}

ExprPtr Revenue(const PlanPtr& p) {
  return eb::Mul(C(p, "l_extendedprice"),
                 eb::Sub(eb::Lit(int32_t{1}), C(p, "l_discount")));
}

AggregateSpec Agg(AggKind kind, ExprPtr arg, std::string name) {
  return AggregateSpec{kind, std::move(arg), std::move(name)};
}

SortKey Asc(ExprPtr e) { return SortKey{std::move(e), true, true}; }
SortKey Desc(ExprPtr e) { return SortKey{std::move(e), false, true}; }

// Every query below keeps its aggregate/sort/limit tail identical to the
// hand-ordered tpch_queries.cc version — only the join tree underneath is
// pessimized — so recovered results are directly checksum-comparable.
// Inner-join build sides deliberately scan full-width tables (comment
// strings included): a naive planner would not prune them either, and the
// wide high-cardinality hash builds are most of the penalty the optimizer
// recovers.

/// Q3: orders⋈lineitem with unfiltered lineitem as build, both date
/// filters above the join, BUILDING-segment semi-join at the very top.
PlanPtr Q3Misordered(const TpchData& d) {
  PlanPtr o = plan::Scan(&d.orders);
  PlanPtr l = plan::Scan(&d.lineitem);
  PlanPtr j = plan::Join(o, l, JoinType::kInner, {C(o, "o_orderkey")},
                         {C(l, "l_orderkey")});
  j = F(j, eb::And(eb::Lt(C(j, "o_orderdate"), eb::DateLit("1995-03-15")),
                   eb::Gt(C(j, "l_shipdate"), eb::DateLit("1995-03-15"))));
  PlanPtr c = plan::Scan(&d.customer);
  c = Keep(F(c, eb::Eq(C(c, "c_mktsegment"), eb::Lit("BUILDING"))),
           {"c_custkey"});
  j = plan::Join(j, c, JoinType::kLeftSemi, {C(j, "o_custkey")},
                 {C(c, "c_custkey")});
  PlanPtr agg = plan::Aggregate(
      j, {C(j, "l_orderkey"), C(j, "o_orderdate"), C(j, "o_shippriority")},
      {"l_orderkey", "o_orderdate", "o_shippriority"},
      {Agg(AggKind::kSum, Revenue(j), "revenue")});
  agg = plan::Sort(agg,
                   {Desc(C(agg, "revenue")), Asc(C(agg, "o_orderdate"))});
  return plan::Limit(agg, 10);
}

/// Q5: the whole five-way chain joined before any predicate applies —
/// lineitem as the first build side, the order-date filter above four
/// joins, and the ASIA region reduction as a top-level semi-join.
PlanPtr Q5Misordered(const TpchData& d) {
  PlanPtr o = plan::Scan(&d.orders);
  PlanPtr l = plan::Scan(&d.lineitem);
  PlanPtr j = plan::Join(o, l, JoinType::kInner, {C(o, "o_orderkey")},
                         {C(l, "l_orderkey")});
  PlanPtr s = plan::Scan(&d.supplier);
  j = plan::Join(j, s, JoinType::kInner, {C(j, "l_suppkey")},
                 {C(s, "s_suppkey")});
  // The spec's s_nationkey = c_nationkey condition rides the customer join
  // as a composite key, exactly as in the hand-ordered plan.
  PlanPtr c = plan::Scan(&d.customer);
  j = plan::Join(j, c, JoinType::kInner,
                 {C(j, "o_custkey"), C(j, "s_nationkey")},
                 {C(c, "c_custkey"), C(c, "c_nationkey")});
  PlanPtr n = plan::Scan(&d.nation);
  j = plan::Join(j, n, JoinType::kInner, {C(j, "c_nationkey")},
                 {C(n, "n_nationkey")});
  j = F(j, eb::And(eb::Ge(C(j, "o_orderdate"), eb::DateLit("1994-01-01")),
                   eb::Lt(C(j, "o_orderdate"), eb::DateLit("1995-01-01"))));
  PlanPtr r = plan::Scan(&d.region);
  r = Keep(F(r, eb::Eq(C(r, "r_name"), eb::Lit("ASIA"))), {"r_regionkey"});
  j = plan::Join(j, r, JoinType::kLeftSemi, {C(j, "n_regionkey")},
                 {C(r, "r_regionkey")});
  PlanPtr agg =
      plan::Aggregate(j, {C(j, "n_name")}, {"n_name"},
                      {Agg(AggKind::kSum, Revenue(j), "revenue")});
  return plan::Sort(agg, {Desc(C(agg, "revenue"))});
}

/// Q9: partsupp⋈lineitem first with lineitem as build, then orders,
/// supplier, and nation stacked on top, with the %green% part reduction
/// applied last.
PlanPtr Q9Misordered(const TpchData& d) {
  PlanPtr ps = plan::Scan(&d.partsupp);
  PlanPtr l = plan::Scan(&d.lineitem);
  PlanPtr j = plan::Join(ps, l, JoinType::kInner,
                         {C(ps, "ps_partkey"), C(ps, "ps_suppkey")},
                         {C(l, "l_partkey"), C(l, "l_suppkey")});
  PlanPtr o = plan::Scan(&d.orders);
  j = plan::Join(j, o, JoinType::kInner, {C(j, "l_orderkey")},
                 {C(o, "o_orderkey")});
  PlanPtr s = plan::Scan(&d.supplier);
  j = plan::Join(j, s, JoinType::kInner, {C(j, "l_suppkey")},
                 {C(s, "s_suppkey")});
  PlanPtr n = plan::Scan(&d.nation);
  j = plan::Join(j, n, JoinType::kInner, {C(j, "s_nationkey")},
                 {C(n, "n_nationkey")});
  PlanPtr p = plan::Scan(&d.part);
  p = Keep(F(p, eb::Like(C(p, "p_name"), "%green%")), {"p_partkey"});
  j = plan::Join(j, p, JoinType::kLeftSemi, {C(j, "l_partkey")},
                 {C(p, "p_partkey")});
  ExprPtr amount = eb::Sub(
      Revenue(j), eb::Mul(C(j, "ps_supplycost"), C(j, "l_quantity")));
  PlanPtr proj = plan::Project(
      j, {C(j, "n_name"), eb::Call("year", {C(j, "o_orderdate")}), amount},
      {"nation", "o_year", "amount"});
  PlanPtr agg = plan::Aggregate(
      proj, {C(proj, "nation"), C(proj, "o_year")}, {"nation", "o_year"},
      {Agg(AggKind::kSum, C(proj, "amount"), "sum_profit")});
  return plan::Sort(agg, {Asc(C(agg, "nation")), Desc(C(agg, "o_year"))});
}

/// Q10: customer⋈nation, then unfiltered orders and lineitem as
/// successive build sides, with both selective filters (order-date
/// window, returnflag = 'R') above the complete join tree.
PlanPtr Q10Misordered(const TpchData& d) {
  PlanPtr c = plan::Scan(&d.customer);
  PlanPtr n = plan::Scan(&d.nation);
  PlanPtr j = plan::Join(c, n, JoinType::kInner, {C(c, "c_nationkey")},
                         {C(n, "n_nationkey")});
  PlanPtr o = plan::Scan(&d.orders);
  j = plan::Join(j, o, JoinType::kInner, {C(j, "c_custkey")},
                 {C(o, "o_custkey")});
  PlanPtr l = plan::Scan(&d.lineitem);
  j = plan::Join(j, l, JoinType::kInner, {C(j, "o_orderkey")},
                 {C(l, "l_orderkey")});
  j = F(j, eb::And(
               eb::And(eb::Ge(C(j, "o_orderdate"), eb::DateLit("1993-10-01")),
                       eb::Lt(C(j, "o_orderdate"), eb::DateLit("1994-01-01"))),
               eb::Eq(C(j, "l_returnflag"), eb::Lit("R"))));
  PlanPtr agg = plan::Aggregate(
      j,
      {C(j, "c_custkey"), C(j, "c_name"), C(j, "c_acctbal"), C(j, "c_phone"),
       C(j, "n_name"), C(j, "c_address"), C(j, "c_comment")},
      {"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address",
       "c_comment"},
      {Agg(AggKind::kSum, Revenue(j), "revenue")});
  agg = plan::Sort(agg, {Desc(C(agg, "revenue"))});
  return plan::Limit(agg, 20);
}

}  // namespace

Result<plan::PlanPtr> TpchMisorderedQuery(int q, const TpchData& d) {
  switch (q) {
    case 3:
      return Q3Misordered(d);
    case 5:
      return Q5Misordered(d);
    case 9:
      return Q9Misordered(d);
    case 10:
      return Q10Misordered(d);
    default:
      return Status::InvalidArgument(
          "no misordered variant for TPC-H query " + std::to_string(q));
  }
}

}  // namespace tpch
}  // namespace photon
