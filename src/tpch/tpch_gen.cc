#include "tpch/tpch_gen.h"

#include <cstdio>

#include "common/rng.h"
#include "common/time_util.h"

namespace photon {
namespace tpch {
namespace {

DataType Money() { return DataType::Decimal(12, 2); }

Value Dec(int64_t cents) {
  return Value::Decimal(Decimal128::FromInt64(cents));
}

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};

struct NationDef {
  const char* name;
  int region;
};
const NationDef kNations[25] = {
    {"ALGERIA", 0},      {"ARGENTINA", 1},  {"BRAZIL", 1},
    {"CANADA", 1},       {"EGYPT", 4},      {"ETHIOPIA", 0},
    {"FRANCE", 3},       {"GERMANY", 3},    {"INDIA", 2},
    {"INDONESIA", 2},    {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},        {"JORDAN", 4},     {"KENYA", 0},
    {"MOROCCO", 0},      {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},        {"ROMANIA", 3},    {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},      {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kInstructs[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                            "TAKE BACK RETURN"};
const char* kModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                        "FOB"};
const char* kContainers1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainers2[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK",
                              "CAN", "DRUM"};
const char* kTypes1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                         "PROMO"};
const char* kTypes2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                         "BRUSHED"};
const char* kTypes3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kColors[] = {
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
    "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
    "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
    "green", "grey", "honeydew", "hot", "hotpink", "indian", "ivory",
    "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime", "linen",
    "magenta", "maroon", "medium", "metallic", "midnight", "mint", "misty",
    "moccasin", "navajo", "navy", "olive", "orange", "orchid", "pale",
    "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple",
    "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
    "sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan",
    "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow"};
const char* kWords[] = {
    "packages", "requests",  "accounts",  "deposits",   "foxes",
    "ideas",    "theodolites", "pinto",   "beans",      "instructions",
    "dependencies", "excuses", "platelets", "asymptotes", "courts",
    "dolphins", "multipliers", "sauternes", "warthogs",  "frets",
    "dinos",    "attainments", "somas",   "braids",     "hockey",
    "players",  "realms",    "sentiments", "waters",    "sheaves",
    "ironic",   "final",     "bold",      "furious",    "express",
    "special",  "pending",   "regular",   "even",       "silent",
    "slyly",    "carefully", "quickly",   "blithely",   "furiously"};

std::string RandomWords(Rng* rng, int count) {
  std::string out;
  for (int i = 0; i < count; i++) {
    if (i > 0) out += ' ';
    out += kWords[rng->Uniform(0, 44)];
  }
  return out;
}

std::string Phone(Rng* rng, int nation) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d", 10 + nation,
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(1000, 9999)));
  return buf;
}

}  // namespace

Schema RegionSchema() {
  return Schema({Field("r_regionkey", DataType::Int64(), false),
                 Field("r_name", DataType::String(), false),
                 Field("r_comment", DataType::String())});
}

Schema NationSchema() {
  return Schema({Field("n_nationkey", DataType::Int64(), false),
                 Field("n_name", DataType::String(), false),
                 Field("n_regionkey", DataType::Int64(), false),
                 Field("n_comment", DataType::String())});
}

Schema SupplierSchema() {
  return Schema({Field("s_suppkey", DataType::Int64(), false),
                 Field("s_name", DataType::String(), false),
                 Field("s_address", DataType::String()),
                 Field("s_nationkey", DataType::Int64(), false),
                 Field("s_phone", DataType::String()),
                 Field("s_acctbal", Money()),
                 Field("s_comment", DataType::String())});
}

Schema CustomerSchema() {
  return Schema({Field("c_custkey", DataType::Int64(), false),
                 Field("c_name", DataType::String(), false),
                 Field("c_address", DataType::String()),
                 Field("c_nationkey", DataType::Int64(), false),
                 Field("c_phone", DataType::String()),
                 Field("c_acctbal", Money()),
                 Field("c_mktsegment", DataType::String()),
                 Field("c_comment", DataType::String())});
}

Schema PartSchema() {
  return Schema({Field("p_partkey", DataType::Int64(), false),
                 Field("p_name", DataType::String(), false),
                 Field("p_mfgr", DataType::String()),
                 Field("p_brand", DataType::String()),
                 Field("p_type", DataType::String()),
                 Field("p_size", DataType::Int32()),
                 Field("p_container", DataType::String()),
                 Field("p_retailprice", Money()),
                 Field("p_comment", DataType::String())});
}

Schema PartsuppSchema() {
  return Schema({Field("ps_partkey", DataType::Int64(), false),
                 Field("ps_suppkey", DataType::Int64(), false),
                 Field("ps_availqty", DataType::Int32()),
                 Field("ps_supplycost", Money()),
                 Field("ps_comment", DataType::String())});
}

Schema OrdersSchema() {
  return Schema({Field("o_orderkey", DataType::Int64(), false),
                 Field("o_custkey", DataType::Int64(), false),
                 Field("o_orderstatus", DataType::String()),
                 Field("o_totalprice", Money()),
                 Field("o_orderdate", DataType::Date32()),
                 Field("o_orderpriority", DataType::String()),
                 Field("o_clerk", DataType::String()),
                 Field("o_shippriority", DataType::Int32()),
                 Field("o_comment", DataType::String())});
}

Schema LineitemSchema() {
  return Schema({Field("l_orderkey", DataType::Int64(), false),
                 Field("l_partkey", DataType::Int64(), false),
                 Field("l_suppkey", DataType::Int64(), false),
                 Field("l_linenumber", DataType::Int32()),
                 Field("l_quantity", Money()),
                 Field("l_extendedprice", Money()),
                 Field("l_discount", Money()),
                 Field("l_tax", Money()),
                 Field("l_returnflag", DataType::String()),
                 Field("l_linestatus", DataType::String()),
                 Field("l_shipdate", DataType::Date32()),
                 Field("l_commitdate", DataType::Date32()),
                 Field("l_receiptdate", DataType::Date32()),
                 Field("l_shipinstruct", DataType::String()),
                 Field("l_shipmode", DataType::String()),
                 Field("l_comment", DataType::String())});
}

TpchData::TpchData()
    : region(RegionSchema()),
      nation(NationSchema()),
      supplier(SupplierSchema()),
      customer(CustomerSchema()),
      part(PartSchema()),
      partsupp(PartsuppSchema()),
      orders(OrdersSchema()),
      lineitem(LineitemSchema()) {}

TpchData GenerateTpch(double scale_factor, uint64_t seed) {
  Rng rng(seed);
  TpchData data;

  const int64_t num_suppliers =
      std::max<int64_t>(10, static_cast<int64_t>(10000 * scale_factor));
  const int64_t num_parts =
      std::max<int64_t>(20, static_cast<int64_t>(200000 * scale_factor));
  const int64_t num_customers =
      std::max<int64_t>(15, static_cast<int64_t>(150000 * scale_factor));
  const int64_t num_orders =
      std::max<int64_t>(15, static_cast<int64_t>(1500000 * scale_factor));

  int32_t start_date = 0, end_date = 0, current_date = 0;
  PHOTON_CHECK(ParseDate("1992-01-01", &start_date));
  PHOTON_CHECK(ParseDate("1998-08-02", &end_date));
  PHOTON_CHECK(ParseDate("1995-06-17", &current_date));

  // ---- region / nation ----------------------------------------------------
  {
    TableBuilder b(RegionSchema());
    for (int r = 0; r < 5; r++) {
      b.AppendRow({Value::Int64(r), Value::String(kRegions[r]),
                   Value::String(RandomWords(&rng, 6))});
    }
    data.region = b.Finish();
  }
  {
    TableBuilder b(NationSchema());
    for (int n = 0; n < 25; n++) {
      b.AppendRow({Value::Int64(n), Value::String(kNations[n].name),
                   Value::Int64(kNations[n].region),
                   Value::String(RandomWords(&rng, 6))});
    }
    data.nation = b.Finish();
  }

  // ---- supplier -------------------------------------------------------------
  {
    TableBuilder b(SupplierSchema());
    for (int64_t s = 1; s <= num_suppliers; s++) {
      char name[32];
      std::snprintf(name, sizeof(name), "Supplier#%09lld",
                    static_cast<long long>(s));
      int nation = static_cast<int>(rng.Uniform(0, 24));
      // ~1% of suppliers have the Q16 "Customer ... Complaints" comment.
      std::string comment = RandomWords(&rng, 5);
      if (rng.Uniform(0, 99) == 0) {
        comment += " Customer smart Complaints " + RandomWords(&rng, 2);
      }
      b.AppendRow({Value::Int64(s), Value::String(name),
                   Value::String(RandomWords(&rng, 3)), Value::Int64(nation),
                   Value::String(Phone(&rng, nation)),
                   Dec(rng.Uniform(-99999, 999999)),
                   Value::String(comment)});
    }
    data.supplier = b.Finish();
  }

  // ---- part + partsupp ------------------------------------------------------
  std::vector<int64_t> retail_cents(num_parts + 1);
  {
    TableBuilder pb(PartSchema());
    TableBuilder psb(PartsuppSchema());
    for (int64_t p = 1; p <= num_parts; p++) {
      std::string name;
      for (int w = 0; w < 5; w++) {
        if (w > 0) name += ' ';
        name += kColors[rng.Uniform(0, 92)];
      }
      int m = static_cast<int>(rng.Uniform(1, 5));
      char mfgr[24], brand[16];
      std::snprintf(mfgr, sizeof(mfgr), "Manufacturer#%d", m);
      std::snprintf(brand, sizeof(brand), "Brand#%d%d", m,
                    static_cast<int>(rng.Uniform(1, 5)));
      std::string type = std::string(kTypes1[rng.Uniform(0, 5)]) + " " +
                         kTypes2[rng.Uniform(0, 4)] + " " +
                         kTypes3[rng.Uniform(0, 4)];
      int size = static_cast<int>(rng.Uniform(1, 50));
      std::string container = std::string(kContainers1[rng.Uniform(0, 4)]) +
                              " " + kContainers2[rng.Uniform(0, 7)];
      // Retail price formula from the spec (in cents).
      int64_t price =
          90000 + ((p / 10) % 20001) + 100 * (p % 1000);
      retail_cents[p] = price;
      pb.AppendRow({Value::Int64(p), Value::String(name),
                    Value::String(mfgr), Value::String(brand),
                    Value::String(type), Value::Int32(size),
                    Value::String(container), Dec(price),
                    Value::String(RandomWords(&rng, 4))});
      for (int i = 0; i < 4; i++) {
        int64_t s = (p + i * (num_suppliers / 4 + (p - 1) / num_suppliers)) %
                        num_suppliers +
                    1;
        psb.AppendRow({Value::Int64(p), Value::Int64(s),
                       Value::Int32(static_cast<int32_t>(
                           rng.Uniform(1, 9999))),
                       Dec(rng.Uniform(100, 100000)),
                       Value::String(RandomWords(&rng, 8))});
      }
    }
    data.part = pb.Finish();
    data.partsupp = psb.Finish();
  }

  // ---- customer -------------------------------------------------------------
  {
    TableBuilder b(CustomerSchema());
    for (int64_t c = 1; c <= num_customers; c++) {
      char name[32];
      std::snprintf(name, sizeof(name), "Customer#%09lld",
                    static_cast<long long>(c));
      int nation = static_cast<int>(rng.Uniform(0, 24));
      b.AppendRow({Value::Int64(c), Value::String(name),
                   Value::String(RandomWords(&rng, 3)), Value::Int64(nation),
                   Value::String(Phone(&rng, nation)),
                   Dec(rng.Uniform(-99999, 999999)),
                   Value::String(kSegments[rng.Uniform(0, 4)]),
                   Value::String(RandomWords(&rng, 8))});
    }
    data.customer = b.Finish();
  }

  // ---- orders + lineitem ------------------------------------------------------
  {
    TableBuilder ob(OrdersSchema());
    TableBuilder lb(LineitemSchema());
    for (int64_t o = 1; o <= num_orders; o++) {
      // Sparse order keys (spec: 8 of every 32 keys used).
      int64_t orderkey = ((o - 1) / 8) * 32 + ((o - 1) % 8) + 1;
      // Customers with custkey % 3 == 0 place no orders (spec).
      int64_t custkey;
      do {
        custkey = rng.Uniform(1, num_customers);
      } while (custkey % 3 == 0);
      int32_t orderdate = static_cast<int32_t>(
          rng.Uniform(start_date, end_date - 151));
      int num_lines = static_cast<int>(rng.Uniform(1, 7));
      int64_t total = 0;
      int lines_f = 0;
      for (int line = 1; line <= num_lines; line++) {
        int64_t partkey = rng.Uniform(1, num_parts);
        int64_t suppkey =
            (partkey + (line - 1) * (num_suppliers / 4 +
                                     (partkey - 1) / num_suppliers)) %
                num_suppliers +
            1;
        int64_t qty = rng.Uniform(1, 50);
        int64_t extprice = qty * retail_cents[partkey];
        int64_t discount = rng.Uniform(0, 10);  // 0.00 .. 0.10
        int64_t tax = rng.Uniform(0, 8);
        int32_t shipdate =
            orderdate + static_cast<int32_t>(rng.Uniform(1, 121));
        int32_t commitdate =
            orderdate + static_cast<int32_t>(rng.Uniform(30, 90));
        int32_t receiptdate =
            shipdate + static_cast<int32_t>(rng.Uniform(1, 30));
        const char* returnflag;
        if (receiptdate <= current_date) {
          returnflag = rng.NextBool() ? "R" : "A";
        } else {
          returnflag = "N";
        }
        const char* linestatus = shipdate > current_date ? "O" : "F";
        if (linestatus[0] == 'F') lines_f++;
        total += extprice;
        lb.AppendRow(
            {Value::Int64(orderkey), Value::Int64(partkey),
             Value::Int64(suppkey), Value::Int32(line),
             Dec(qty * 100), Dec(extprice), Dec(discount),
             Dec(tax), Value::String(returnflag),
             Value::String(linestatus), Value::Date32(shipdate),
             Value::Date32(commitdate), Value::Date32(receiptdate),
             Value::String(kInstructs[rng.Uniform(0, 3)]),
             Value::String(kModes[rng.Uniform(0, 6)]),
             Value::String(RandomWords(&rng, 4))});
      }
      const char* status = lines_f == num_lines ? "F"
                           : lines_f == 0       ? "O"
                                                : "P";
      char clerk[24];
      std::snprintf(clerk, sizeof(clerk), "Clerk#%09lld",
                    static_cast<long long>(
                        rng.Uniform(1, std::max<int64_t>(1, num_orders / 1000))));
      // ~1% of order comments carry the Q13 "special ... requests" phrase.
      std::string comment = RandomWords(&rng, 6);
      if (rng.Uniform(0, 99) == 0) {
        comment += " special deposits requests " + RandomWords(&rng, 2);
      }
      ob.AppendRow({Value::Int64(orderkey), Value::Int64(custkey),
                    Value::String(status), Dec(total),
                    Value::Date32(orderdate),
                    Value::String(kPriorities[rng.Uniform(0, 4)]),
                    Value::String(clerk), Value::Int32(0),
                    Value::String(comment)});
    }
    data.orders = ob.Finish();
    data.lineitem = lb.Finish();
  }
  return data;
}

}  // namespace tpch
}  // namespace photon
