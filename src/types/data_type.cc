#include "types/data_type.h"

#include <cstdio>

namespace photon {

std::string DataType::ToString() const {
  switch (id_) {
    case TypeId::kBoolean:
      return "boolean";
    case TypeId::kInt32:
      return "int32";
    case TypeId::kInt64:
      return "int64";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kDate32:
      return "date32";
    case TypeId::kTimestamp:
      return "timestamp";
    case TypeId::kString:
      return "string";
    case TypeId::kDecimal128: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "decimal(%d,%d)", precision_, scale_);
      return buf;
    }
  }
  return "unknown";
}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); i++) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::string out = "schema{";
  for (int i = 0; i < num_fields(); i++) {
    if (i > 0) out += ", ";
    out += fields_[i].name + ": " + fields_[i].type.ToString();
    if (!fields_[i].nullable) out += " NOT NULL";
  }
  out += "}";
  return out;
}

}  // namespace photon
