#include "types/big_decimal.h"

#include <algorithm>

#include "common/macros.h"
#include "types/decimal.h"

namespace photon {

void BigDecimal::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

BigDecimal BigDecimal::FromInt64(int64_t v, int scale) {
  BigDecimal out;
  out.scale_ = scale;
  out.negative_ = v < 0;
  uint64_t mag = out.negative_ ? static_cast<uint64_t>(-(v + 1)) + 1
                               : static_cast<uint64_t>(v);
  while (mag != 0) {
    out.limbs_.push_back(static_cast<uint32_t>(mag % kBase));
    mag /= kBase;
  }
  return out;
}

BigDecimal BigDecimal::FromDecimal128(const Decimal128& v, int scale) {
  BigDecimal out;
  out.scale_ = scale;
  int128_t val = v.value();
  out.negative_ = val < 0;
  uint128_t mag = out.negative_ ? static_cast<uint128_t>(-val)
                                : static_cast<uint128_t>(val);
  while (mag != 0) {
    out.limbs_.push_back(static_cast<uint32_t>(mag % kBase));
    mag /= kBase;
  }
  return out;
}

bool BigDecimal::FromString(const std::string& s, BigDecimal* out) {
  // Parse into digits, then build limbs by repeated multiply-add (this is
  // what BigInteger(String) does, cost included).
  const char* p = s.c_str();
  bool neg = false;
  if (*p == '-') {
    neg = true;
    p++;
  } else if (*p == '+') {
    p++;
  }
  BigDecimal r;
  int scale = 0;
  bool in_frac = false;
  bool saw_digit = false;
  for (; *p; p++) {
    if (*p == '.') {
      if (in_frac) return false;
      in_frac = true;
      continue;
    }
    if (*p < '0' || *p > '9') return false;
    saw_digit = true;
    if (in_frac) scale++;
    // r = r * 10 + digit
    uint32_t carry = static_cast<uint32_t>(*p - '0');
    for (size_t i = 0; i < r.limbs_.size(); i++) {
      uint64_t cur = static_cast<uint64_t>(r.limbs_[i]) * 10 + carry;
      r.limbs_[i] = static_cast<uint32_t>(cur % kBase);
      carry = static_cast<uint32_t>(cur / kBase);
    }
    if (carry) r.limbs_.push_back(carry);
  }
  if (!saw_digit) return false;
  r.negative_ = neg;
  r.scale_ = scale;
  r.Normalize();
  *out = r;
  return true;
}

int BigDecimal::CompareMagnitude(const std::vector<uint32_t>& a,
                                 const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> BigDecimal::AddMagnitude(
    const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  uint32_t carry = 0;
  for (size_t i = 0; i < std::max(a.size(), b.size()); i++) {
    uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<uint32_t>(sum % kBase));
    carry = static_cast<uint32_t>(sum / kBase);
  }
  if (carry) out.push_back(carry);
  return out;
}

std::vector<uint32_t> BigDecimal::SubMagnitude(
    const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  // Requires |a| >= |b|.
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); i++) {
    int64_t cur = static_cast<int64_t>(a[i]) - borrow -
                  (i < b.size() ? b[i] : 0);
    if (cur < 0) {
      cur += kBase;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(cur));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint32_t> BigDecimal::MulMagnitude(
    const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint64_t> acc(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); i++) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); j++) {
      uint64_t cur =
          acc[i + j] + static_cast<uint64_t>(a[i]) * b[j] + carry;
      acc[i + j] = cur % kBase;
      carry = cur / kBase;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = acc[k] + carry;
      acc[k] = cur % kBase;
      carry = cur / kBase;
      k++;
    }
  }
  std::vector<uint32_t> out(acc.size());
  for (size_t i = 0; i < acc.size(); i++) out[i] = static_cast<uint32_t>(acc[i]);
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

BigDecimal BigDecimal::ShiftScale(int digits) const {
  PHOTON_CHECK(digits >= 0);
  BigDecimal out = *this;
  for (int d = 0; d < digits; d++) {
    uint32_t carry = 0;
    for (size_t i = 0; i < out.limbs_.size(); i++) {
      uint64_t cur = static_cast<uint64_t>(out.limbs_[i]) * 10 + carry;
      out.limbs_[i] = static_cast<uint32_t>(cur % kBase);
      carry = static_cast<uint32_t>(cur / kBase);
    }
    if (carry) out.limbs_.push_back(carry);
  }
  return out;
}

BigDecimal BigDecimal::Add(const BigDecimal& other) const {
  // Align scales (like java.math.BigDecimal.add).
  const BigDecimal* a = this;
  const BigDecimal* b = &other;
  BigDecimal at, bt;
  if (a->scale_ < b->scale_) {
    at = a->ShiftScale(b->scale_ - a->scale_);
    at.scale_ = b->scale_;
    a = &at;
  } else if (b->scale_ < a->scale_) {
    bt = b->ShiftScale(a->scale_ - b->scale_);
    bt.scale_ = a->scale_;
    b = &bt;
  }
  BigDecimal out;
  out.scale_ = a->scale_;
  if (a->negative_ == b->negative_) {
    out.limbs_ = AddMagnitude(a->limbs_, b->limbs_);
    out.negative_ = a->negative_;
  } else {
    int cmp = CompareMagnitude(a->limbs_, b->limbs_);
    if (cmp == 0) {
      out.negative_ = false;
    } else if (cmp > 0) {
      out.limbs_ = SubMagnitude(a->limbs_, b->limbs_);
      out.negative_ = a->negative_;
    } else {
      out.limbs_ = SubMagnitude(b->limbs_, a->limbs_);
      out.negative_ = b->negative_;
    }
  }
  out.Normalize();
  return out;
}

BigDecimal BigDecimal::Subtract(const BigDecimal& other) const {
  BigDecimal neg = other;
  if (!neg.is_zero()) neg.negative_ = !neg.negative_;
  return Add(neg);
}

BigDecimal BigDecimal::Multiply(const BigDecimal& other) const {
  BigDecimal out;
  out.limbs_ = MulMagnitude(limbs_, other.limbs_);
  out.negative_ = !out.limbs_.empty() && (negative_ != other.negative_);
  out.scale_ = scale_ + other.scale_;
  return out;
}

BigDecimal BigDecimal::Divide(const BigDecimal& other, int result_scale) const {
  PHOTON_CHECK(!other.is_zero());
  // Compute round(this * 10^(result_scale + other.scale - this.scale) /
  // other) by long division on limbs. We shift the dividend so the quotient
  // lands at result_scale, with one extra digit for rounding.
  int shift = result_scale + other.scale_ - scale_ + 1;
  BigDecimal dividend = shift >= 0 ? ShiftScale(shift) : *this;
  PHOTON_CHECK(shift >= 0);  // engine always widens scale on divide

  // Schoolbook long division: repeatedly bring in one base-1e9 limb.
  std::vector<uint32_t> quotient(dividend.limbs_.size(), 0);
  std::vector<uint32_t> rem;  // little-endian current remainder
  for (size_t i = dividend.limbs_.size(); i-- > 0;) {
    rem.insert(rem.begin(), dividend.limbs_[i]);
    while (!rem.empty() && rem.back() == 0) rem.pop_back();
    // Binary-search the quotient digit in [0, base).
    uint32_t lo = 0, hi = kBase - 1, q = 0;
    while (lo <= hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      std::vector<uint32_t> prod =
          MulMagnitude(other.limbs_, std::vector<uint32_t>{mid});
      if (CompareMagnitude(prod, rem) <= 0) {
        q = mid;
        lo = mid + 1;
      } else {
        if (mid == 0) break;
        hi = mid - 1;
      }
    }
    quotient[i] = q;
    if (q != 0) {
      std::vector<uint32_t> prod =
          MulMagnitude(other.limbs_, std::vector<uint32_t>{q});
      rem = SubMagnitude(rem, prod);
    }
  }
  BigDecimal out;
  out.limbs_ = quotient;
  out.Normalize();
  out.negative_ = !out.limbs_.empty() && (negative_ != other.negative_);
  out.scale_ = result_scale + 1;
  return out.SetScale(result_scale);
}

BigDecimal BigDecimal::SetScale(int new_scale) const {
  if (new_scale == scale_) return *this;
  if (new_scale > scale_) {
    BigDecimal out = ShiftScale(new_scale - scale_);
    out.scale_ = new_scale;
    return out;
  }
  // Reduce scale: divide magnitude by 10^(scale-new_scale), rounding half
  // away from zero.
  int drop = scale_ - new_scale;
  BigDecimal out = *this;
  uint32_t last_digit = 0;
  for (int d = 0; d < drop; d++) {
    uint64_t rem = 0;
    for (size_t i = out.limbs_.size(); i-- > 0;) {
      uint64_t cur = rem * kBase + out.limbs_[i];
      out.limbs_[i] = static_cast<uint32_t>(cur / 10);
      rem = cur % 10;
    }
    last_digit = static_cast<uint32_t>(rem);
    while (!out.limbs_.empty() && out.limbs_.back() == 0) out.limbs_.pop_back();
  }
  if (last_digit >= 5) {
    out.limbs_ = AddMagnitude(out.limbs_, {1});
  }
  out.scale_ = new_scale;
  out.Normalize();
  return out;
}

int BigDecimal::Compare(const BigDecimal& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  // Align scales for magnitude comparison.
  BigDecimal a = *this, b = other;
  if (a.scale_ < b.scale_) a = a.ShiftScale(b.scale_ - a.scale_);
  if (b.scale_ < a.scale_) b = b.ShiftScale(a.scale_ - b.scale_);
  int cmp = CompareMagnitude(a.limbs_, b.limbs_);
  return negative_ ? -cmp : cmp;
}

std::string BigDecimal::ToString() const {
  // Render the magnitude in base 10, then insert sign and decimal point.
  std::string digits;
  if (limbs_.empty()) {
    digits = "0";
  } else {
    char buf[16];
    for (size_t i = limbs_.size(); i-- > 0;) {
      if (i + 1 == limbs_.size()) {
        std::snprintf(buf, sizeof(buf), "%u", limbs_[i]);
      } else {
        std::snprintf(buf, sizeof(buf), "%09u", limbs_[i]);
      }
      digits += buf;
    }
  }
  while (static_cast<int>(digits.size()) <= scale_) digits.insert(0, "0");
  std::string out;
  if (negative_) out = "-";
  out += digits.substr(0, digits.size() - scale_);
  if (scale_ > 0) {
    out += ".";
    out += digits.substr(digits.size() - scale_);
  }
  return out;
}

double BigDecimal::ToDouble() const {
  double v = 0;
  for (size_t i = limbs_.size(); i-- > 0;) v = v * kBase + limbs_[i];
  for (int i = 0; i < scale_; i++) v /= 10.0;
  return negative_ ? -v : v;
}

bool BigDecimal::ToDecimal128(int scale, Decimal128* out) const {
  BigDecimal scaled = SetScale(scale);
  const uint128_t max =
      static_cast<uint128_t>(Decimal128::MaxValueForPrecision(38));
  uint128_t mag = 0;
  for (size_t i = scaled.limbs_.size(); i-- > 0;) {
    // Guard before multiplying: mag * kBase can wrap uint128 (the old
    // `next < mag` test only catches additive wrap, so magnitudes in
    // (max38, 2^128) could sneak through as their mod-2^128 residue).
    if (mag > max / kBase) return false;
    mag = mag * kBase + scaled.limbs_[i];
    if (mag > max) return false;
  }
  int128_t v = static_cast<int128_t>(mag);
  *out = Decimal128(scaled.negative_ ? -v : v);
  return true;
}

}  // namespace photon
