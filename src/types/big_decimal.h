#ifndef PHOTON_TYPES_BIG_DECIMAL_H_
#define PHOTON_TYPES_BIG_DECIMAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace photon {

class Decimal128;

/// Arbitrary-precision signed decimal, deliberately modeled on
/// java.math.BigDecimal: heap-allocated magnitude, digit-limb arithmetic,
/// immutable-value semantics. The baseline ("DBR") engine uses this for all
/// decimal arithmetic above 18 digits of precision, exactly like Spark —
/// this is the cost the paper's Q1 experiment attributes its 23x to.
class BigDecimal {
 public:
  BigDecimal() : negative_(false), scale_(0) {}

  static BigDecimal FromInt64(int64_t v, int scale);
  static BigDecimal FromDecimal128(const Decimal128& v, int scale);
  static bool FromString(const std::string& s, BigDecimal* out);

  int scale() const { return scale_; }
  bool is_zero() const { return limbs_.empty(); }

  BigDecimal Add(const BigDecimal& other) const;
  BigDecimal Subtract(const BigDecimal& other) const;
  BigDecimal Multiply(const BigDecimal& other) const;
  /// Divide producing `result_scale` fractional digits, rounding half-up.
  BigDecimal Divide(const BigDecimal& other, int result_scale) const;

  /// Changes scale, rounding half away from zero when reducing.
  BigDecimal SetScale(int new_scale) const;

  int Compare(const BigDecimal& other) const;
  bool operator==(const BigDecimal& other) const {
    return Compare(other) == 0;
  }

  std::string ToString() const;
  double ToDouble() const;

  /// Converts to a Decimal128 at the given scale; false if > 38 digits.
  bool ToDecimal128(int scale, Decimal128* out) const;

 private:
  // Unscaled magnitude, base 1e9 limbs, little-endian, no trailing zeros.
  std::vector<uint32_t> limbs_;
  bool negative_;
  int scale_;

  static constexpr uint32_t kBase = 1000000000u;

  void Normalize();
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  BigDecimal ShiftScale(int digits) const;  // multiply magnitude by 10^digits
};

}  // namespace photon

#endif  // PHOTON_TYPES_BIG_DECIMAL_H_
