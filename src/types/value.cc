#include "types/value.h"
#include <cmath>
#include <cstring>

#include "common/hash.h"

#include <cstdio>

namespace photon {

bool Value::Equals(const Value& other) const {
  if (repr_.index() != other.repr_.index()) return false;
  // NaN equals NaN here (Spark's equality semantics for grouping/sorting);
  // std::variant's operator== would say false.
  if (const double* a = std::get_if<double>(&repr_)) {
    double b = std::get<double>(other.repr_);
    if (std::isnan(*a) && std::isnan(b)) return true;
  }
  return repr_ == other.repr_;
}

int Value::Compare(const Value& other) const {
  if (is_null() && other.is_null()) return 0;
  if (is_null()) return -1;
  if (other.is_null()) return 1;
  PHOTON_CHECK(repr_.index() == other.repr_.index());
  return std::visit(
      [&](const auto& a) -> int {
        using T = std::decay_t<decltype(a)>;
        const T& b = std::get<T>(other.repr_);
        if constexpr (std::is_same_v<T, NullTag>) {
          return 0;
        } else if constexpr (std::is_same_v<T, DateTag>) {
          return a.days < b.days ? -1 : (a.days > b.days ? 1 : 0);
        } else if constexpr (std::is_same_v<T, TimestampTag>) {
          return a.micros < b.micros ? -1 : (a.micros > b.micros ? 1 : 0);
        } else if constexpr (std::is_same_v<T, Decimal128>) {
          return a < b ? -1 : (b < a ? 1 : 0);
        } else {
          return a < b ? -1 : (b < a ? 1 : 0);
        }
      },
      repr_);
}

uint64_t Value::HashCode() const {
  return std::visit(
      [](const auto& v) -> uint64_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, NullTag>) {
          return 0x9D5E350AFD3CB6D1ULL;
        } else if constexpr (std::is_same_v<T, bool>) {
          return HashMix64(v ? 1 : 0);
        } else if constexpr (std::is_same_v<T, int32_t>) {
          return HashMix64(static_cast<uint64_t>(v));
        } else if constexpr (std::is_same_v<T, int64_t>) {
          return HashMix64(static_cast<uint64_t>(v));
        } else if constexpr (std::is_same_v<T, double>) {
          double d = v == 0.0 ? 0.0 : v;
          uint64_t bits;
          std::memcpy(&bits, &d, sizeof(bits));
          return HashMix64(bits);
        } else if constexpr (std::is_same_v<T, DateTag>) {
          return HashMix64(static_cast<uint64_t>(v.days));
        } else if constexpr (std::is_same_v<T, TimestampTag>) {
          return HashMix64(static_cast<uint64_t>(v.micros));
        } else if constexpr (std::is_same_v<T, std::string>) {
          return HashBytes(v.data(), v.size());
        } else if constexpr (std::is_same_v<T, Decimal128>) {
          uint128_t u = static_cast<uint128_t>(v.value());
          return HashMix64(static_cast<uint64_t>(u) ^
                           HashMix64(static_cast<uint64_t>(u >> 64)));
        }
      },
      repr_);
}

std::string Value::ToString() const {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, NullTag>) {
          return "NULL";
        } else if constexpr (std::is_same_v<T, bool>) {
          return v ? "true" : "false";
        } else if constexpr (std::is_same_v<T, int32_t>) {
          return std::to_string(v);
        } else if constexpr (std::is_same_v<T, int64_t>) {
          return std::to_string(v);
        } else if constexpr (std::is_same_v<T, double>) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%g", v);
          return buf;
        } else if constexpr (std::is_same_v<T, DateTag>) {
          return "date(" + std::to_string(v.days) + ")";
        } else if constexpr (std::is_same_v<T, TimestampTag>) {
          return "ts(" + std::to_string(v.micros) + ")";
        } else if constexpr (std::is_same_v<T, std::string>) {
          return "\"" + v + "\"";
        } else if constexpr (std::is_same_v<T, Decimal128>) {
          return v.ToString(0) + "e?";  // scale unknown without type
        }
      },
      repr_);
}

std::string Value::ToString(const DataType& type) const {
  if (is_null()) return "NULL";
  if (type.is_decimal()) return decimal().ToString(type.scale());
  return ToString();
}

}  // namespace photon
