#ifndef PHOTON_TYPES_DATA_TYPE_H_
#define PHOTON_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"

namespace photon {

/// Physical type ids supported by the engine. The set mirrors what the
/// paper's workloads need: numeric, boolean, temporal, decimal, and string.
enum class TypeId : uint8_t {
  kBoolean = 0,
  kInt32 = 1,
  kInt64 = 2,
  kFloat64 = 3,
  kDate32 = 4,      // days since 1970-01-01 (int32)
  kTimestamp = 5,   // microseconds since epoch, UTC (int64)
  kString = 6,      // UTF-8 bytes
  kDecimal128 = 7,  // 128-bit integer with precision/scale
};

/// A logical data type: TypeId plus decimal precision/scale. Copyable value
/// type; equality includes the decimal parameters.
class DataType {
 public:
  DataType() : id_(TypeId::kInt32) {}
  explicit DataType(TypeId id) : id_(id) { PHOTON_DCHECK(id != TypeId::kDecimal128); }
  DataType(TypeId id, int precision, int scale)
      : id_(id), precision_(precision), scale_(scale) {}

  static DataType Boolean() { return DataType(TypeId::kBoolean); }
  static DataType Int32() { return DataType(TypeId::kInt32); }
  static DataType Int64() { return DataType(TypeId::kInt64); }
  static DataType Float64() { return DataType(TypeId::kFloat64); }
  static DataType Date32() { return DataType(TypeId::kDate32); }
  static DataType Timestamp() { return DataType(TypeId::kTimestamp); }
  static DataType String() { return DataType(TypeId::kString); }
  static DataType Decimal(int precision, int scale) {
    PHOTON_CHECK(precision >= 1 && precision <= 38);
    PHOTON_CHECK(scale >= 0 && scale <= precision);
    return DataType(TypeId::kDecimal128, precision, scale);
  }

  TypeId id() const { return id_; }
  int precision() const { return precision_; }
  int scale() const { return scale_; }

  bool is_decimal() const { return id_ == TypeId::kDecimal128; }
  bool is_string() const { return id_ == TypeId::kString; }
  bool is_var_len() const { return is_string(); }

  /// True for types whose values are fixed-size primitives in memory.
  bool is_fixed_width() const { return !is_var_len(); }

  /// Byte width of the in-memory value representation.
  int byte_width() const {
    switch (id_) {
      case TypeId::kBoolean:
        return 1;
      case TypeId::kInt32:
      case TypeId::kDate32:
        return 4;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
      case TypeId::kFloat64:
        return 8;
      case TypeId::kDecimal128:
        return 16;
      case TypeId::kString:
        return 16;  // StringRef {pointer, length}
    }
    return 0;
  }

  bool operator==(const DataType& other) const {
    if (id_ != other.id_) return false;
    if (id_ == TypeId::kDecimal128) {
      return precision_ == other.precision_ && scale_ == other.scale_;
    }
    return true;
  }
  bool operator!=(const DataType& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  TypeId id_;
  int precision_ = 0;
  int scale_ = 0;
};

/// A named, nullable column in a schema.
struct Field {
  std::string name;
  DataType type;
  bool nullable = true;

  Field() = default;
  Field(std::string name_in, DataType type_in, bool nullable_in = true)
      : name(std::move(name_in)), type(type_in), nullable(nullable_in) {}

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }
};

/// An ordered collection of fields.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with the given name, or -1.
  int FieldIndex(const std::string& name) const;

  void AddField(Field field) { fields_.push_back(std::move(field)); }

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// String-ref view into variable-length data: the in-vector representation
/// of a string value (§4.1). Points into a VarLenPool arena or other stable
/// storage; not owning.
struct StringRef {
  const char* data = nullptr;
  int32_t len = 0;

  StringRef() = default;
  StringRef(const char* d, int32_t l) : data(d), len(l) {}

  std::string ToString() const { return std::string(data, len); }
  bool operator==(const StringRef& other) const {
    if (len != other.len) return false;
    return len == 0 || __builtin_memcmp(data, other.data, len) == 0;
  }
};

static_assert(sizeof(StringRef) == 16, "StringRef must be 16 bytes");

}  // namespace photon

#endif  // PHOTON_TYPES_DATA_TYPE_H_
