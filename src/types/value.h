#ifndef PHOTON_TYPES_VALUE_H_
#define PHOTON_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/macros.h"
#include "types/data_type.h"
#include "types/decimal.h"

namespace photon {

/// A single scalar datum: NULL or a value of one of the engine's types.
/// Used for literals in expression trees, for the row-oriented baseline
/// engine, and as the lingua franca of test oracles. Column data never uses
/// Value — vectors store unboxed primitives.
class Value {
 public:
  Value() : repr_(NullTag{}) {}

  static Value Null() { return Value(); }
  static Value Boolean(bool v) { return Value(Repr(v)); }
  static Value Int32(int32_t v) { return Value(Repr(v)); }
  static Value Int64(int64_t v) { return Value(Repr(v)); }
  static Value Float64(double v) { return Value(Repr(v)); }
  static Value Date32(int32_t v) { return Value(Repr(DateTag{v})); }
  static Value Timestamp(int64_t v) { return Value(Repr(TimestampTag{v})); }
  static Value String(std::string v) { return Value(Repr(std::move(v))); }
  static Value Decimal(Decimal128 v) { return Value(Repr(v)); }

  bool is_null() const { return std::holds_alternative<NullTag>(repr_); }

  bool boolean() const { return std::get<bool>(repr_); }
  int32_t i32() const {
    if (auto* d = std::get_if<DateTag>(&repr_)) return d->days;
    return std::get<int32_t>(repr_);
  }
  int64_t i64() const {
    if (auto* t = std::get_if<TimestampTag>(&repr_)) return t->micros;
    return std::get<int64_t>(repr_);
  }
  double f64() const { return std::get<double>(repr_); }
  const std::string& str() const { return std::get<std::string>(repr_); }
  Decimal128 decimal() const { return std::get<Decimal128>(repr_); }

  bool is_date() const { return std::holds_alternative<DateTag>(repr_); }
  bool is_timestamp() const {
    return std::holds_alternative<TimestampTag>(repr_);
  }
  bool is_string() const {
    return std::holds_alternative<std::string>(repr_);
  }

  /// Structural equality (NULL == NULL here; SQL null semantics live in the
  /// expression layer, not in this container).
  bool operator==(const Value& other) const { return Equals(other); }
  bool Equals(const Value& other) const;

  /// Total order for sorting/oracles; NULLs first. Values must share a type.
  int Compare(const Value& other) const;

  /// Hash consistent with Equals (used by the baseline engine's boxed hash
  /// maps and partitioning).
  uint64_t HashCode() const;

  std::string ToString() const;
  std::string ToString(const DataType& type) const;

 private:
  struct NullTag {
    bool operator==(const NullTag&) const { return true; }
  };
  struct DateTag {
    int32_t days;
    bool operator==(const DateTag& o) const { return days == o.days; }
  };
  struct TimestampTag {
    int64_t micros;
    bool operator==(const TimestampTag& o) const {
      return micros == o.micros;
    }
  };
  using Repr = std::variant<NullTag, bool, int32_t, int64_t, double, DateTag,
                            TimestampTag, std::string, Decimal128>;

  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

}  // namespace photon

#endif  // PHOTON_TYPES_VALUE_H_
