#include "types/decimal.h"

#include <cstdlib>

namespace photon {

int128_t Decimal128::PowerOfTen(int exp) {
  PHOTON_CHECK(exp >= 0 && exp <= 38);
  int128_t v = 1;
  for (int i = 0; i < exp; i++) v *= 10;
  return v;
}

bool Decimal128::FromString(const std::string& s, int scale,
                            Decimal128* out) {
  const char* p = s.c_str();
  bool neg = false;
  if (*p == '-') {
    neg = true;
    p++;
  } else if (*p == '+') {
    p++;
  }
  int128_t value = 0;
  int digits = 0;
  bool saw_any = false;
  while (*p >= '0' && *p <= '9') {
    value = value * 10 + (*p - '0');
    digits++;
    saw_any = true;
    if (digits > 38) return false;
    p++;
  }
  int frac_digits = 0;
  if (*p == '.') {
    p++;
    while (*p >= '0' && *p <= '9' && frac_digits < scale) {
      value = value * 10 + (*p - '0');
      frac_digits++;
      digits++;
      saw_any = true;
      if (digits > 38) return false;
      p++;
    }
    // Truncate extra fractional digits.
    while (*p >= '0' && *p <= '9') p++;
  }
  if (!saw_any || *p != '\0') return false;
  // Pad to the target scale.
  for (; frac_digits < scale; frac_digits++) value *= 10;
  *out = Decimal128(neg ? -value : value);
  return true;
}

std::string Decimal128::ToString(int scale) const {
  uint128_t mag =
      value_ < 0 ? static_cast<uint128_t>(-value_) : static_cast<uint128_t>(value_);
  char digits[64];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + static_cast<int>(mag % 10));
    mag /= 10;
  } while (mag != 0);
  while (n <= scale) digits[n++] = '0';  // Ensure an integer digit exists.

  std::string out;
  if (value_ < 0) out.push_back('-');
  for (int i = n - 1; i >= 0; i--) {
    if (i == scale - 1 && scale > 0) {
      // about to emit the first fractional digit
    }
    out.push_back(digits[i]);
    if (i == scale && scale > 0) out.push_back('.');
  }
  return out;
}

double Decimal128::ToDouble(int scale) const {
  // Single division by 10^scale (exactly representable for scale <= 22),
  // so vectorized and row-at-a-time casts round identically.
  return static_cast<double>(value_) /
         static_cast<double>(PowerOfTen(scale));
}

int Decimal128::Precision() const {
  uint128_t mag =
      value_ < 0 ? static_cast<uint128_t>(-value_) : static_cast<uint128_t>(value_);
  int digits = 1;
  while (mag >= 10) {
    mag /= 10;
    digits++;
  }
  return digits;
}

bool Decimal128::Rescale(int from_scale, int to_scale, Decimal128* out) const {
  if (from_scale == to_scale) {
    *out = *this;
    return true;
  }
  if (to_scale > from_scale) {
    int shift = to_scale - from_scale;
    if (shift > 38) return false;
    int128_t mult = PowerOfTen(shift);
    int128_t v = value_ * mult;
    if (value_ != 0 && v / mult != value_) return false;  // overflow
    *out = Decimal128(v);
    return true;
  }
  int shift = from_scale - to_scale;
  if (shift > 38) {
    *out = Decimal128(static_cast<int128_t>(0));
    return true;
  }
  int128_t div = PowerOfTen(shift);
  int128_t q = value_ / div;
  int128_t r = value_ % div;
  // Round half away from zero.
  if (r >= (div >> 1) + (div & 1)) q += 1;
  if (-r >= (div >> 1) + (div & 1)) q -= 1;
  *out = Decimal128(q);
  return true;
}

bool Decimal128::Divide(const Decimal128& dividend, const Decimal128& divisor,
                        int shift, Decimal128* out) {
  if (divisor.value_ == 0) return false;
  PHOTON_CHECK(shift >= 0 && shift <= 38);
  int128_t scaled = dividend.value_ * PowerOfTen(shift);
  // Note: can overflow for extreme inputs; the expression layer bounds
  // operand precision so `dividend` has headroom for `shift` digits.
  int128_t q = scaled / divisor.value_;
  int128_t r = scaled % divisor.value_;
  int128_t abs_r = r < 0 ? -r : r;
  int128_t abs_d = divisor.value_ < 0 ? -divisor.value_ : divisor.value_;
  if (2 * abs_r >= abs_d) {
    bool result_neg = (scaled < 0) != (divisor.value_ < 0);
    q += result_neg ? -1 : 1;
  }
  *out = Decimal128(q);
  return true;
}

}  // namespace photon
