#ifndef PHOTON_TYPES_DECIMAL_H_
#define PHOTON_TYPES_DECIMAL_H_

#include <cstdint>
#include <string>

#include "common/macros.h"

namespace photon {

using int128_t = __int128;
using uint128_t = unsigned __int128;

/// Fixed-point decimal backed by a native 128-bit integer. This is Photon's
/// decimal representation: all arithmetic stays in machine integers, which
/// is what gives the paper's Q1 its 23x speedup over the baseline engine's
/// arbitrary-precision BigDecimal (§6.2).
///
/// The scale is carried by the enclosing DataType; Decimal128 itself is just
/// the unscaled 128-bit value plus arithmetic helpers.
class Decimal128 {
 public:
  Decimal128() : value_(0) {}
  explicit Decimal128(int128_t value) : value_(value) {}
  Decimal128(int64_t high, uint64_t low)
      : value_((static_cast<int128_t>(high) << 64) |
               static_cast<int128_t>(low)) {}

  int128_t value() const { return value_; }

  static Decimal128 FromInt64(int64_t v) {
    return Decimal128(static_cast<int128_t>(v));
  }

  /// 10^exp as an int128 (exp in [0, 38]).
  static int128_t PowerOfTen(int exp);

  /// Maximum unscaled value representable at the given precision.
  static int128_t MaxValueForPrecision(int precision) {
    return PowerOfTen(precision) - 1;
  }

  /// Parses "[-]digits[.digits]" with the given target scale. Returns false
  /// on malformed input or overflow of 38 digits.
  static bool FromString(const std::string& s, int scale, Decimal128* out);

  /// Renders with a decimal point at `scale` digits.
  std::string ToString(int scale) const;

  double ToDouble(int scale) const;

  /// Number of decimal digits in the magnitude (>= 1).
  int Precision() const;

  Decimal128 operator+(const Decimal128& o) const {
    return Decimal128(value_ + o.value_);
  }
  Decimal128 operator-(const Decimal128& o) const {
    return Decimal128(value_ - o.value_);
  }
  Decimal128 operator*(const Decimal128& o) const {
    return Decimal128(value_ * o.value_);
  }
  Decimal128 operator-() const { return Decimal128(-value_); }

  bool operator==(const Decimal128& o) const { return value_ == o.value_; }
  bool operator!=(const Decimal128& o) const { return value_ != o.value_; }
  bool operator<(const Decimal128& o) const { return value_ < o.value_; }
  bool operator<=(const Decimal128& o) const { return value_ <= o.value_; }
  bool operator>(const Decimal128& o) const { return value_ > o.value_; }
  bool operator>=(const Decimal128& o) const { return value_ >= o.value_; }

  /// Rescales the unscaled value from `from_scale` to `to_scale`, rounding
  /// half away from zero when reducing scale. Returns false on overflow.
  bool Rescale(int from_scale, int to_scale, Decimal128* out) const;

  /// Divides by `divisor` producing a result at `result_scale` given inputs
  /// already aligned: computes round(this * 10^shift / divisor).
  static bool Divide(const Decimal128& dividend, const Decimal128& divisor,
                     int shift, Decimal128* out);

 private:
  int128_t value_;
};

}  // namespace photon

#endif  // PHOTON_TYPES_DECIMAL_H_
