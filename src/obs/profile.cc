#include "obs/profile.h"

#include <cassert>
#include <functional>

#include "common/json_writer.h"

namespace photon {
namespace obs {

double ProfileNode::ActiveRowFraction() const {
  int64_t batch_rows = Sum(Metric::kBatchRows);
  if (batch_rows <= 0) return 0.0;
  return static_cast<double>(Sum(Metric::kRowsOut)) / batch_rows;
}

int ProfileBuilder::AddNode(std::string name, int parent) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeRec rec;
  rec.name = std::move(name);
  rec.parent = parent;
  nodes_.push_back(std::move(rec));
  return static_cast<int>(nodes_.size()) - 1;
}

void ProfileBuilder::SetParent(int node, int parent) {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_[node].parent = parent;
}

void ProfileBuilder::SetStage(int node, int stage_id) {
  std::lock_guard<std::mutex> lock(mu_);
  nodes_[node].stage_id = stage_id;
}

MetricSet* ProfileBuilder::TaskShard(int node, int64_t task) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<MetricSet>& shard = nodes_[node].shards[task];
  if (shard == nullptr) shard = std::make_unique<MetricSet>();
  return shard.get();
}

MetricSet* ProfileBuilder::NodeSet(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<MetricSet>& set = nodes_[node].node_set;
  if (set == nullptr) set = std::make_unique<MetricSet>();
  return set.get();
}

MetricSet* ProfileBuilder::StageSet(int stage_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<MetricSet>& set = stage_sets_[stage_id];
  if (set == nullptr) set = std::make_unique<MetricSet>();
  return set.get();
}

MetricSnapshot ProfileBuilder::StageSnapshot(int stage_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stage_sets_.find(stage_id);
  if (it == stage_sets_.end()) return MetricSnapshot{};
  return it->second->Snapshot();
}

QueryProfile ProfileBuilder::Finish(int64_t wall_ns, int num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  QueryProfile profile;
  profile.wall_ns = wall_ns;
  profile.num_threads = num_threads;

  // Aggregate every node's task shards into ProfileMetrics.
  std::vector<ProfileNode> flat(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); i++) {
    const NodeRec& rec = nodes_[i];
    ProfileNode& node = flat[i];
    node.name = rec.name;
    node.id = static_cast<int>(i);
    node.stage_id = rec.stage_id;
    node.num_tasks = static_cast<int>(rec.shards.size());
    for (int m = 0; m < kNumMetrics; m++) {
      Metric metric = static_cast<Metric>(m);
      ProfileMetric& pm = node.metrics[m];
      bool first = true;
      for (const auto& [task, shard] : rec.shards) {
        int64_t v = shard->Value(metric);
        if (IsMaxAggregated(metric)) {
          if (v > pm.sum) pm.sum = v;
        } else {
          pm.sum += v;
        }
        if (first || v < pm.min) pm.min = v;
        if (first || v > pm.max) pm.max = v;
        first = false;
      }
      if (rec.node_set != nullptr) {
        int64_t v = rec.node_set->Value(metric);
        if (IsMaxAggregated(metric)) {
          if (v > pm.sum) pm.sum = v;
        } else {
          pm.sum += v;
        }
      }
    }
  }

  // Link children (preserving creation order) and find the root.
  std::vector<std::vector<int>> kids(nodes_.size());
  int root = -1;
  for (size_t i = 0; i < nodes_.size(); i++) {
    int parent = nodes_[i].parent;
    if (parent >= 0) {
      kids[parent].push_back(static_cast<int>(i));
    } else if (parent == -1 && root == -1) {
      root = static_cast<int>(i);
    }
  }
  std::function<ProfileNode(int)> build = [&](int idx) {
    ProfileNode node = std::move(flat[idx]);
    for (int child : kids[idx]) {
      node.children.push_back(build(child));
      node.rows_in += node.children.back().Sum(Metric::kRowsOut);
    }
    return node;
  };
  if (root >= 0) profile.root = build(root);
  return profile;
}

namespace {

void WriteNode(const ProfileNode& node, JsonWriter* json) {
  json->BeginObject();
  json->Field("name", node.name);
  json->Field("stage", node.stage_id);
  json->Field("tasks", node.num_tasks);
  json->Field("rows_in", node.rows_in);
  json->Field("rows_out", node.Sum(Metric::kRowsOut));
  json->Field("batches", node.Sum(Metric::kBatches));
  json->Field("wall_ns", node.Sum(Metric::kWallNs));
  json->Field("peak_reserved_bytes", node.Sum(Metric::kPeakReservedBytes));
  json->Field("spill_bytes", node.Sum(Metric::kSpillBytes));
  if (node.Sum(Metric::kBatchRows) > 0) {
    json->Field("active_row_fraction", node.ActiveRowFraction());
  }
  json->BeginObject("metrics");
  for (int m = 0; m < kNumMetrics; m++) {
    const ProfileMetric& pm = node.metrics[m];
    if (pm.sum == 0 && pm.min == 0 && pm.max == 0) continue;
    json->BeginObject(MetricName(static_cast<Metric>(m)));
    json->Field("sum", pm.sum);
    json->Field("min", pm.min);
    json->Field("max", pm.max);
    json->EndObject();
  }
  json->EndObject();
  json->BeginArray("children");
  for (const ProfileNode& child : node.children) {
    WriteNode(child, json);
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace

std::string QueryProfile::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  if (!query.empty()) json.Field("query", query);
  json.Field("wall_ns", wall_ns);
  json.Field("num_threads", num_threads);
  JsonWriter node_json;
  WriteNode(root, &node_json);
  json.Raw("root", node_json.str());
  json.EndObject();
  return json.str();
}

bool QueryProfile::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace obs
}  // namespace photon
