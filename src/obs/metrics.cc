#include "obs/metrics.h"

#include <chrono>
#include <ctime>

namespace photon {
namespace obs {

const char* MetricName(Metric m) {
  switch (m) {
    case Metric::kRowsOut:
      return "rows_out";
    case Metric::kBatches:
      return "batches";
    case Metric::kBatchRows:
      return "batch_rows";
    case Metric::kWallNs:
      return "wall_ns";
    case Metric::kCpuNs:
      return "cpu_ns";
    case Metric::kExprFusedBatches:
      return "expr_fused_batches";
    case Metric::kExprCompiledBatches:
      return "expr_compiled_batches";
    case Metric::kExprTierSwitches:
      return "expr_tier_switches";
    case Metric::kScratchPoolHits:
      return "scratch_pool_hits";
    case Metric::kScratchPoolMisses:
      return "scratch_pool_misses";
    case Metric::kPeakReservedBytes:
      return "peak_reserved_bytes";
    case Metric::kSpillCount:
      return "spill_count";
    case Metric::kSpillBytes:
      return "spill_bytes";
    case Metric::kReserveWaitNs:
      return "reserve_wait_ns";
    case Metric::kReserveWaits:
      return "reserve_waits";
    case Metric::kBytesRead:
      return "bytes_read";
    case Metric::kCacheHits:
      return "cache_hits";
    case Metric::kPrefetchWaitNs:
      return "prefetch_wait_ns";
    case Metric::kFilesRead:
      return "files_read";
    case Metric::kRowGroupsSkipped:
      return "row_groups_skipped";
    case Metric::kFilesPruned:
      return "files_pruned";
    case Metric::kShuffleBytes:
      return "shuffle_bytes";
  }
  return "unknown";
}

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t ThreadCpuNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
  }
#endif
  return 0;
}

void MetricSet::MergeFrom(const MetricSet& other) {
  for (int i = 0; i < kNumMetrics; i++) {
    Metric m = static_cast<Metric>(i);
    int64_t v = other.Value(m);
    if (IsMaxAggregated(m)) {
      SetMax(m, v);
    } else if (v != 0) {
      Add(m, v);
    }
  }
}

void MetricSet::MergeResourceFrom(const MetricSet& other) {
  for (int i = 0; i < kNumMetrics; i++) {
    Metric m = static_cast<Metric>(i);
    if (!IsResourceMetric(m)) continue;
    int64_t v = other.Value(m);
    if (IsMaxAggregated(m)) {
      SetMax(m, v);
    } else if (v != 0) {
      Add(m, v);
    }
  }
}

MetricSnapshot MetricSet::Snapshot() const {
  MetricSnapshot snap;
  for (int i = 0; i < kNumMetrics; i++) {
    snap.v[i] = v_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void MetricSet::Reset() {
  for (int i = 0; i < kNumMetrics; i++) {
    v_[i].store(0, std::memory_order_relaxed);
  }
}

void MetricSnapshot::MergeFrom(const MetricSnapshot& other) {
  for (int i = 0; i < kNumMetrics; i++) {
    Metric m = static_cast<Metric>(i);
    if (IsMaxAggregated(m)) {
      if (other.v[i] > v[i]) v[i] = other.v[i];
    } else {
      v[i] += other.v[i];
    }
  }
}

void MetricSnapshot::MergeResourceFrom(const MetricSet& other) {
  for (int i = 0; i < kNumMetrics; i++) {
    Metric m = static_cast<Metric>(i);
    if (!IsResourceMetric(m)) continue;
    int64_t ov = other.Value(m);
    if (IsMaxAggregated(m)) {
      if (ov > v[i]) v[i] = ov;
    } else {
      v[i] += ov;
    }
  }
}

}  // namespace obs
}  // namespace photon
