#ifndef PHOTON_OBS_PROFILE_H_
#define PHOTON_OBS_PROFILE_H_

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace photon {
namespace obs {

/// One metric aggregated across a node's tasks: total plus per-task
/// min/max to expose skew (a node whose max task did 10x the min task's
/// rows is a skewed stage, whatever the total says). For max-aggregated
/// metrics (peak bytes) `sum` is also the max.
struct ProfileMetric {
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
};

/// One plan operator in one stage, aggregated across the tasks that ran it.
struct ProfileNode {
  std::string name;
  int id = -1;
  int stage_id = -1;
  int num_tasks = 0;
  int64_t rows_in = 0;  // sum of children's rows_out
  std::array<ProfileMetric, kNumMetrics> metrics = {};
  std::vector<ProfileNode> children;

  int64_t Sum(Metric m) const {
    return metrics[static_cast<int>(m)].sum;
  }
  /// rows_out / batch_rows — the paper's measure of batch density after
  /// filtering (§5.2); 0 when the node emitted no batches.
  double ActiveRowFraction() const;
};

/// The assembled per-query profile: the operator tree with per-node
/// task-aggregated metrics, exportable as structured JSON. (The matching
/// Chrome/Perfetto trace comes from Tracer::WriteChromeTrace, which dumps
/// the span ring buffers recorded during the same run.)
struct QueryProfile {
  std::string query;
  int64_t wall_ns = 0;
  int num_threads = 0;
  ProfileNode root;

  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;
};

/// Collects per-task metric shards while a query runs and folds them into
/// a QueryProfile at the end. The driver creates one node per plan
/// operator per stage up front; each task that instantiates an operator
/// chain gets its own shard per node (TaskShard), so the hot path stays
/// relaxed atomics on memory no other task touches. Node/shard creation
/// and Finish take a lock — both are off the per-batch path.
class ProfileBuilder {
 public:
  /// Parent sentinel for nodes created before their parent exists (the
  /// driver builds fragments leaf-last); attach later with SetParent.
  static constexpr int kDetached = -2;

  /// Adds a node; parent -1 makes it the root, kDetached defers linking.
  int AddNode(std::string name, int parent);
  void SetParent(int node, int parent);
  void SetStage(int node, int stage_id);

  /// The metric shard for (node, task). Created on first use; subsequent
  /// calls with the same pair return the same shard.
  MetricSet* TaskShard(int node, int64_t task);
  /// Node-level extras with no task attribution (e.g. files_pruned counted
  /// at plan time). Folded into the node's sums only.
  MetricSet* NodeSet(int node);
  /// Stage-level totals (driver-recorded wall/cpu/rows at barriers).
  MetricSet* StageSet(int stage_id);

  int64_t NewTaskId() {
    return next_task_.fetch_add(1, std::memory_order_relaxed);
  }

  MetricSnapshot StageSnapshot(int stage_id);

  /// Folds all shards into the final tree. The root is the unique node
  /// with parent -1.
  QueryProfile Finish(int64_t wall_ns, int num_threads);

 private:
  struct NodeRec {
    std::string name;
    int parent = kDetached;
    int stage_id = -1;
    std::map<int64_t, std::unique_ptr<MetricSet>> shards;
    std::unique_ptr<MetricSet> node_set;
  };

  std::mutex mu_;
  std::vector<NodeRec> nodes_;
  std::map<int, std::unique_ptr<MetricSet>> stage_sets_;
  std::atomic<int64_t> next_task_{0};
};

}  // namespace obs
}  // namespace photon

#endif  // PHOTON_OBS_PROFILE_H_
