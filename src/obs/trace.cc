#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <unordered_set>

namespace photon {
namespace obs {

namespace {

constexpr size_t kRingCapacity = 1 << 14;

// A per-thread ring of the most recent spans. The owning thread is the
// only writer; the mutex exists for the cold paths (Snapshot/Reset from
// another thread) and because span capture is investigation-mode anyway —
// uncontended lock cost is irrelevant next to the two clock reads.
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;  // ring storage, up to kRingCapacity
  size_t next = 0;                 // ring write position
  bool wrapped = false;
  int tid = 0;

  void Record(const TraceEvent& ev) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < kRingCapacity) {
      events.push_back(ev);
    } else {
      events[next] = ev;
      wrapped = true;
    }
    next = (next + 1) % kRingCapacity;
  }
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
  std::unordered_set<std::string> names;
  int next_tid = 0;

  static TraceRegistry& Get() {
    static TraceRegistry* reg = new TraceRegistry();
    return *reg;
  }

  TraceBuffer* NewBuffer() {
    std::lock_guard<std::mutex> lock(mu);
    buffers.push_back(std::make_unique<TraceBuffer>());
    buffers.back()->tid = next_tid++;
    return buffers.back().get();
  }
};

TraceBuffer* ThreadBuffer() {
  thread_local TraceBuffer* buf = TraceRegistry::Get().NewBuffer();
  return buf;
}

}  // namespace

std::atomic<bool> Tracer::enabled_{false};

void Tracer::SetEnabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::Record(const char* name, int64_t id, int64_t start_ns,
                    int64_t dur_ns) {
  if (!enabled()) return;
  TraceBuffer* buf = ThreadBuffer();
  TraceEvent ev;
  ev.name = name;
  ev.id = id;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.tid = buf->tid;
  buf->Record(ev);
}

const char* Tracer::InternName(const std::string& name) {
  TraceRegistry& reg = TraceRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  // unordered_set is node-based: c_str() stays stable across rehashes.
  return reg.names.insert(name).first->c_str();
}

void Tracer::Reset() {
  TraceRegistry& reg = TraceRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> block(buf->mu);
    buf->events.clear();
    buf->next = 0;
    buf->wrapped = false;
  }
}

std::vector<TraceEvent> Tracer::Snapshot() {
  std::vector<TraceEvent> out;
  TraceRegistry& reg = TraceRegistry::Get();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& buf : reg.buffers) {
    std::lock_guard<std::mutex> block(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

std::string Tracer::ChromeTraceJson() {
  std::vector<TraceEvent> events = Snapshot();
  int64_t base_ns = events.empty() ? 0 : events.front().start_ns;
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ',';
    first = false;
    // Complete ("X") events; chrome://tracing timestamps are in us.
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"photon\",\"ph\":\"X\","
                  "\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f",
                  ev.name == nullptr ? "?" : ev.name, ev.tid,
                  (ev.start_ns - base_ns) / 1000.0, ev.dur_ns / 1000.0);
    out += buf;
    if (ev.id >= 0) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"id\":%lld}",
                    static_cast<long long>(ev.id));
      out += buf;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) {
  std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace obs
}  // namespace photon
