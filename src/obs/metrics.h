#ifndef PHOTON_OBS_METRICS_H_
#define PHOTON_OBS_METRICS_H_

#include <atomic>
#include <cstdint>

namespace photon {
namespace obs {

/// The fixed metric vocabulary every operator (Photon and baseline), the
/// driver, the memory manager, and the IO layer report into — the
/// miniature analogue of Photon's integration with Spark's metrics system
/// (§5.2): rows, batches, time, peak memory, and spill activity for every
/// operator, uniformly. A small closed enum keeps a counter update one
/// relaxed atomic add on a task-local shard: no maps, no strings, no locks
/// on the hot path.
///
/// Ordering matters: metrics at or after kPeakReservedBytes are "resource"
/// metrics (IO, memory, spill) that roll up across a whole operator tree
/// into stage totals; metrics before it are per-operator flow metrics
/// (rows/batches/time) where summing across tree levels would double-count.
enum class Metric : uint8_t {
  kRowsOut = 0,        // active rows emitted
  kBatches,            // batches emitted
  kBatchRows,          // total batch slots incl. filtered-out rows; the
                       // paper's active-row fraction = rows_out/batch_rows
  kWallNs,             // wall time inside GetNext (includes children)
  kCpuNs,              // thread CPU time (recorded per task by the driver)
  kExprFusedBatches,   // batches run on the fused-interpreter expr tier
  kExprCompiledBatches,  // batches run on the compiled expr tier
  kExprTierSwitches,   // adaptive fused<->compiled preference flips
  kScratchPoolHits,    // EvalContext scratch vectors served from the pool
  kScratchPoolMisses,  // EvalContext scratch vectors freshly allocated
  // -- resource metrics (tree-foldable) from here down ----------------------
  kPeakReservedBytes,  // max-aggregated everywhere (never summed)
  kSpillCount,
  kSpillBytes,
  kReserveWaitNs,      // time blocked in MemoryManager::Reserve on other
                       // task groups' releases (§5.3 backpressure)
  kReserveWaits,
  kBytesRead,          // file payload pulled into scans (cache or store)
  kCacheHits,          // fetches served by the BlockCache
  kPrefetchWaitNs,     // time a scan blocked on an in-flight read-ahead
  kFilesRead,
  kRowGroupsSkipped,   // min/max stats skipping at row-group granularity
  kFilesPruned,        // Delta snapshot file pruning
  kShuffleBytes,
};

inline constexpr int kNumMetrics =
    static_cast<int>(Metric::kShuffleBytes) + 1;

/// Stable snake_case name used in exported JSON profiles.
const char* MetricName(Metric m);

/// Metrics merged by max instead of sum (a peak summed over tasks or tree
/// levels is meaningless).
inline constexpr bool IsMaxAggregated(Metric m) {
  return m == Metric::kPeakReservedBytes;
}

/// Metrics that fold across an operator tree into stage/query totals.
inline constexpr bool IsResourceMetric(Metric m) {
  return static_cast<int>(m) >= static_cast<int>(Metric::kPeakReservedBytes);
}

/// Monotonic wall clock in ns (steady_clock).
int64_t WallNowNs();

/// Per-thread CPU time in ns (CLOCK_THREAD_CPUTIME_ID; 0 where
/// unavailable). A syscall-priced clock, so it is sampled per task/morsel
/// by the driver, not per operator call.
int64_t ThreadCpuNs();

struct MetricSnapshot;

/// One shard of counters: a fixed array of relaxed atomics. Each operator
/// instance owns one (its task-local shard under morsel parallelism, since
/// operator chains are per-morsel), so updates never contend; merging
/// happens at stage barriers after the owning task finished. Atomics keep
/// concurrent readers (live metrics, TSan) safe without any locking.
class MetricSet {
 public:
  MetricSet() = default;
  MetricSet(const MetricSet&) = delete;
  MetricSet& operator=(const MetricSet&) = delete;

  void Add(Metric m, int64_t delta) {
    v_[static_cast<int>(m)].fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raises the metric to at least `value` (for peaks/gauges).
  void SetMax(Metric m, int64_t value) {
    std::atomic<int64_t>& a = v_[static_cast<int>(m)];
    int64_t cur = a.load(std::memory_order_relaxed);
    while (value > cur &&
           !a.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  int64_t Value(Metric m) const {
    return v_[static_cast<int>(m)].load(std::memory_order_relaxed);
  }

  /// Folds `other` in: sum per metric, max for max-aggregated ones.
  void MergeFrom(const MetricSet& other);
  /// Folds only the resource metrics of `other` in (stage/tree roll-ups).
  void MergeResourceFrom(const MetricSet& other);

  MetricSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<int64_t> v_[kNumMetrics] = {};
};

/// A plain (non-atomic, copyable) view of a MetricSet — what StageInfo and
/// exported profiles carry once a stage's shards have been merged.
struct MetricSnapshot {
  int64_t v[kNumMetrics] = {};

  int64_t operator[](Metric m) const { return v[static_cast<int>(m)]; }
  int64_t& operator[](Metric m) { return v[static_cast<int>(m)]; }

  void MergeFrom(const MetricSnapshot& other);
  void MergeResourceFrom(const MetricSet& other);
};

}  // namespace obs
}  // namespace photon

#endif  // PHOTON_OBS_METRICS_H_
