#ifndef PHOTON_OBS_TRACE_H_
#define PHOTON_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace photon {
namespace obs {

/// One completed span. `name` must outlive the tracer (string literal or a
/// string interned via Tracer::InternName — operator names are owned by
/// operators that die before the trace is exported).
struct TraceEvent {
  const char* name = nullptr;
  int64_t id = -1;     // optional correlator (stage id, morsel index, ...)
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  int tid = 0;         // dense per-thread id assigned at first record
};

/// Process-wide span recorder. Spans land in per-thread ring buffers
/// (fixed capacity; wrapping keeps the most recent events), so recording
/// never contends across threads. Recording is gated by a runtime flag and
/// compiles down to one relaxed load when disabled — span capture is for
/// investigation runs, not the always-on metric path.
class Tracer {
 public:
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on);

  /// Records a completed span on the calling thread's ring buffer.
  /// No-op while disabled.
  static void Record(const char* name, int64_t id, int64_t start_ns,
                     int64_t dur_ns);

  /// Copies `name` into a process-lifetime intern table and returns a
  /// stable pointer, so spans can safely reference operator-owned names.
  static const char* InternName(const std::string& name);

  /// Drops all recorded events (thread buffers stay registered).
  static void Reset();

  /// All buffered events, across threads, sorted by start time.
  static std::vector<TraceEvent> Snapshot();

  /// Chrome trace-event JSON (chrome://tracing / Perfetto "complete"
  /// events, phase "X", microsecond timestamps relative to first event).
  static std::string ChromeTraceJson();
  static bool WriteChromeTrace(const std::string& path);

 private:
  static std::atomic<bool> enabled_;
};

/// RAII span: measures construction→destruction and records it. Cheap to
/// place on any path — when tracing is disabled neither clock is read.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, int64_t id = -1)
      : name_(name), id_(id),
        start_ns_(Tracer::enabled() ? WallNowNs() : -1) {}

  ~TraceSpan() {
    if (start_ns_ >= 0 && Tracer::enabled()) {
      Tracer::Record(name_, id_, start_ns_, WallNowNs() - start_ns_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int64_t id_;
  int64_t start_ns_;
};

}  // namespace obs
}  // namespace photon

#endif  // PHOTON_OBS_TRACE_H_
