#ifndef PHOTON_TESTING_MINIMIZER_H_
#define PHOTON_TESTING_MINIMIZER_H_

#include <functional>

#include "plan/logical_plan.h"

namespace photon {
namespace testing {

/// Returns true when the candidate plan still reproduces the divergence.
using PlanOracle = std::function<bool(const plan::PlanPtr&)>;

/// Greedy delta-debugging over the plan tree: repeatedly tries
///   (a) promoting any subtree to be the whole plan, and
///   (b) splicing out schema-preserving unary nodes (Filter/Sort/Limit)
/// keeping a reduction whenever the oracle still fires, until no further
/// reduction reproduces. The result, with the generating seed, is the
/// checked-in reproducer for a fuzzer finding.
plan::PlanPtr MinimizePlan(plan::PlanPtr p, const PlanOracle& diverges);

}  // namespace testing
}  // namespace photon

#endif  // PHOTON_TESTING_MINIMIZER_H_
