#include "testing/datagen.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "types/decimal.h"

namespace photon {
namespace testing {

Schema DataGen::RandomSchema(const std::string& prefix, int min_cols,
                             int max_cols) {
  Schema schema;
  // Column 0: the join-key column. Small domain so equi-joins over two
  // independently generated tables produce both matches and misses.
  schema.AddField(Field(prefix + "k", DataType::Int64()));
  int n = static_cast<int>(rng_.Uniform(min_cols, max_cols));
  for (int i = 1; i < n; i++) {
    DataType type;
    switch (rng_.Uniform(0, 7)) {
      case 0:
        type = DataType::Int32();
        break;
      case 1:
        type = DataType::Int64();
        break;
      case 2:
        type = DataType::Float64();
        break;
      case 3:
        type = DataType::String();
        break;
      case 4:
        type = DataType::Decimal(20, 4);
        break;
      case 5:
        type = DataType::Decimal(38, 6);
        break;
      case 6:
        type = DataType::Date32();
        break;
      default:
        type = DataType::Decimal(12, 2);
        break;
    }
    schema.AddField(Field(prefix + "c" + std::to_string(i), type));
  }
  return schema;
}

Value DataGen::RandomValue(const DataType& type) {
  if (rng_.NextBool(0.12)) return Value::Null();
  switch (type.id()) {
    case TypeId::kBoolean:
      return Value::Boolean(rng_.NextBool());
    case TypeId::kInt32:
      return Value::Int32(static_cast<int32_t>(rng_.Uniform(-1000, 1000)));
    case TypeId::kInt64:
      return Value::Int64(rng_.Uniform(-100000, 100000));
    case TypeId::kFloat64:
      return Value::Float64((rng_.NextDouble() - 0.5) * 2000.0);
    case TypeId::kDate32:
      return Value::Date32(static_cast<int32_t>(rng_.Uniform(0, 20000)));
    case TypeId::kString: {
      // Small domain (group-by/join friendly) with occasional UTF-8 tails
      // so string kernels see multi-byte codepoints.
      std::string s = "s-" + std::to_string(rng_.Uniform(0, 60));
      if (rng_.NextBool(0.15)) s += "\xC3\xA9\xE2\x82\xAC";  // é€
      return Value::String(std::move(s));
    }
    case TypeId::kDecimal128: {
      // High-precision columns occasionally sit near the 38-digit cap so
      // generated arithmetic actually overflows (overflow -> NULL must
      // agree across engines).
      if (type.precision() >= 20 && rng_.NextBool(0.1)) {
        Decimal128 v(Decimal128::MaxValueForPrecision(type.precision()) -
                     rng_.Uniform(0, 1000));
        return Value::Decimal(rng_.NextBool() ? v : -v);
      }
      return Value::Decimal(
          Decimal128::FromInt64(rng_.Uniform(-1000000, 1000000)));
    }
    default:
      return Value::Null();
  }
}

Table DataGen::RandomTable(const Schema& schema, int num_rows) {
  TableBuilder builder(schema);
  for (int i = 0; i < num_rows; i++) {
    std::vector<Value> row;
    row.reserve(schema.num_fields());
    // Join key: non-null small domain.
    row.push_back(Value::Int64(rng_.Uniform(0, 40)));
    for (int c = 1; c < schema.num_fields(); c++) {
      row.push_back(RandomValue(schema.field(c).type));
    }
    builder.AppendRow(row);
  }
  return builder.Finish();
}

Result<DeltaSnapshot> DataGen::WriteDelta(ObjectStore* store,
                                          const std::string& path,
                                          const Table& data) {
  PHOTON_ASSIGN_OR_RETURN(std::unique_ptr<DeltaTable> table,
                          DeltaTable::Create(store, path, data.schema()));
  FormatWriteOptions options;
  options.row_group_rows = 128;
  // Append in slices: each Append commits one data file, and multiple
  // small files give the parallel driver real morsel decomposition (and
  // the fault injector multiple Gets to fail).
  std::vector<std::vector<Value>> rows = data.ToRows();
  const size_t kRowsPerFile = 400;
  for (size_t begin = 0; begin < rows.size(); begin += kRowsPerFile) {
    TableBuilder slice(data.schema());
    size_t end = std::min(begin + kRowsPerFile, rows.size());
    for (size_t r = begin; r < end; r++) slice.AppendRow(rows[r]);
    Table t = slice.Finish();
    PHOTON_RETURN_NOT_OK(table->Append(t, options).status());
  }
  return table->Snapshot();
}

}  // namespace testing
}  // namespace photon
