#include "testing/sql_mutator.h"

#include <cctype>

#include "common/rng.h"

namespace photon {
namespace testing {

std::vector<std::string> TokenizeSql(const std::string& sql) {
  std::vector<std::string> tokens;
  size_t i = 0;
  size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    if (c == '\'') {
      // String literal; '' is the escaped quote.
      size_t j = i + 1;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            j += 2;
            continue;
          }
          j++;
          break;
        }
        j++;
      }
      tokens.push_back(sql.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_' || sql[j] == '.')) {
        j++;
      }
      tokens.push_back(sql.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.')) {
        j++;
      }
      tokens.push_back(sql.substr(i, j - i));
      i = j;
      continue;
    }
    // Multi-char operators the grammar knows; else one char of punctuation.
    if (i + 1 < n) {
      std::string two = sql.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
          two == "||") {
        tokens.push_back(two);
        i += 2;
        continue;
      }
    }
    tokens.push_back(std::string(1, c));
    i++;
  }
  return tokens;
}

namespace {

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  size_t i = 0;
  for (; i < a.size() && b[i] != '\0'; i++) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return i == a.size() && b[i] == '\0';
}

bool IsComparisonOp(const std::string& t) {
  return t == "=" || t == "<" || t == "<=" || t == ">" || t == ">=" ||
         t == "<>";
}

bool IsNumber(const std::string& t) {
  return !t.empty() && std::isdigit(static_cast<unsigned char>(t[0]));
}

/// Index of the ')' matching tokens[open], or -1.
int MatchingParen(const std::vector<std::string>& tokens, int open) {
  int depth = 0;
  for (int i = open; i < static_cast<int>(tokens.size()); i++) {
    if (tokens[i] == "(") depth++;
    if (tokens[i] == ")") {
      depth--;
      if (depth == 0) return i;
    }
  }
  return -1;
}

}  // namespace

std::string MutateSql(const std::string& sql, uint64_t seed, int edits) {
  std::vector<std::string> tokens = TokenizeSql(sql);
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);

  static const char* kCmpOps[] = {"=", "<", "<=", ">", ">=", "<>"};

  for (int e = 0; e < edits && tokens.size() >= 2; e++) {
    // Each attempt picks a kind, then a position; inapplicable picks retry
    // so short inputs still mutate.
    bool applied = false;
    for (int attempt = 0; attempt < 12 && !applied; attempt++) {
      int kind = static_cast<int>(rng.Uniform(0, 6));
      int n = static_cast<int>(tokens.size());
      int pos = static_cast<int>(rng.Uniform(0, n - 1));
      switch (kind) {
        case 0: {  // comparison-operator substitution
          if (!IsComparisonOp(tokens[pos])) break;
          std::string repl = kCmpOps[rng.Uniform(0, 5)];
          if (repl == tokens[pos]) break;
          tokens[pos] = repl;
          applied = true;
          break;
        }
        case 1: {  // AND <-> OR
          if (EqualsIgnoreCase(tokens[pos], "AND")) {
            tokens[pos] = "OR";
            applied = true;
          } else if (EqualsIgnoreCase(tokens[pos], "OR")) {
            tokens[pos] = "AND";
            applied = true;
          }
          break;
        }
        case 2: {  // matched-paren deletion: the precedence trap
          if (tokens[pos] != "(") break;
          int close = MatchingParen(tokens, pos);
          if (close < 0) break;
          tokens.erase(tokens.begin() + close);
          tokens.erase(tokens.begin() + pos);
          applied = true;
          break;
        }
        case 3: {  // adjacent-token swap (clause / operand reshuffle)
          if (pos + 1 >= n) break;
          if (tokens[pos] == tokens[pos + 1]) break;
          std::swap(tokens[pos], tokens[pos + 1]);
          applied = true;
          break;
        }
        case 4: {  // numeric-literal perturbation
          if (!IsNumber(tokens[pos])) break;
          switch (rng.Uniform(0, 2)) {
            case 0:
              tokens[pos] += "0";
              break;
            case 1:
              tokens[pos] = "0";
              break;
            default:
              tokens[pos] = "1" + tokens[pos];
              break;
          }
          applied = true;
          break;
        }
        case 5: {  // token duplication
          tokens.insert(tokens.begin() + pos, tokens[pos]);
          applied = true;
          break;
        }
        default: {  // token deletion
          tokens.erase(tokens.begin() + pos);
          applied = true;
          break;
        }
      }
    }
  }

  std::string out;
  for (size_t i = 0; i < tokens.size(); i++) {
    if (i > 0) out += ' ';
    out += tokens[i];
  }
  return out;
}

}  // namespace testing
}  // namespace photon
