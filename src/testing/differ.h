#ifndef PHOTON_TESTING_DIFFER_H_
#define PHOTON_TESTING_DIFFER_H_

#include <string>
#include <vector>

#include "exec/driver.h"
#include "plan/logical_plan.h"
#include "storage/object_store.h"
#include "vector/table.h"

namespace photon {
namespace testing {

/// A result table reduced to engine-neutral form: every cell rendered to a
/// string (doubles via %.17g so NaN/±0 compare textually), rows sorted.
/// Two engines agree iff their canonical forms are equal.
using CanonicalResult = std::vector<std::vector<std::string>>;

CanonicalResult Canonicalize(const Table& table);

/// Human-readable first-difference report; empty string when equal.
std::string DiffCanonical(const CanonicalResult& a, const CanonicalResult& b,
                          const std::string& label_a,
                          const std::string& label_b);

struct DifferentialOptions {
  int num_threads = 8;
  /// Memory budget for the forced-spill mode. Doubled and retried on
  /// OutOfMemory (hash-join builds cannot spill), up to 4 attempts.
  int64_t spill_budget_bytes = 192 * 1024;
  /// Number of ObjectStore::Get faults injected into `fault_store` right
  /// before the forced-spill run (scan retries must absorb them).
  int fault_gets = 3;
  ObjectStore* fault_store = nullptr;
  /// Unique-per-call spill key prefix (cleaned up afterwards).
  std::string spill_prefix = "fuzz-spill";
  /// Mode 9: number of generative SQL mutants derived from the plan's
  /// printed SQL (0 = off). Each mutant must either fail to compile
  /// cleanly or execute identically across baseline, Photon, and Photon
  /// with the optimizer on.
  int sql_mutants = 0;
  /// Seed for mutant generation; combine with the fuzz seed so corpora
  /// stay replayable.
  uint64_t mutant_seed = 0;
};

/// Runs `p` through every differential mode — baseline row engine (both
/// join impls), Photon single-task, Photon morsel-parallel at
/// `num_threads`, Photon under a tiny memory budget with injected scan
/// faults, Photon once per forced expression tier (tree-only / fused
/// interpreter / compiled kernels, mode 6), a SQL print→parse round trip
/// (mode 7), the cost-based optimizer single-task and parallel (mode 8),
/// and optional generative SQL mutants (mode 9) — and diffs the
/// canonicalized results cell-by-cell.
/// Returns "" when all modes agree, else a report naming the diverging
/// mode and first differing cell. Engine errors (compile or execution)
/// are reported as divergences too, except that mode 4 skips plans whose
/// build sides genuinely cannot fit the budget (OutOfMemory after
/// retries) and mode 9 treats a mutant's compile error as a pass.
std::string RunDifferential(const plan::PlanPtr& p, exec::Driver* driver,
                            const DifferentialOptions& opts);

struct ConcurrentDifferentialOptions {
  int worker_threads = 4;
  /// Admission cap: fewer running slots than plans forces queueing.
  int max_concurrent_queries = 3;
  int64_t memory_limit_bytes = 256LL << 20;
};

/// Mode 5, the concurrency analogue of RunDifferential: executes all of
/// `plans` in flight at once through one multi-tenant QueryService
/// (shared scheduler, memory pool, admission queue) and diffs every
/// result against its own serial single-task run. Serial modes cannot see
/// cross-query interference — scheduler fairness bugs, task-group or
/// shuffle-id collisions, shared-pool backpressure — this mode exists to.
/// Returns "" when every concurrent result matches its serial reference,
/// else a report naming the diverging plan.
std::string RunConcurrentDifferential(
    const std::vector<plan::PlanPtr>& plans,
    const ConcurrentDifferentialOptions& opts);

struct LakehouseDifferentialOptions {
  /// Concurrent DML writers (each owns a driver and an Open()ed handle).
  int writer_threads = 3;
  /// Randomized DELETE/UPDATE/MERGE/append operations per writer.
  int ops_per_writer = 5;
  /// Concurrent analytics readers scanning while the writers commit.
  int reader_threads = 2;
  /// Run the background compactor against the same table.
  bool compact = true;
};

/// Mode 10: seeded mixed lakehouse workload — concurrent DML writers
/// (DELETE/UPDATE/MERGE/append through the executors), a background
/// compactor, and analytics readers all racing on one Delta table — then
/// a serial-equivalence check: every version is re-executed in committed
/// transaction order against a fresh table (compactions replay as
/// logical no-ops) and each committed version's full scan must equal the
/// serial re-execution's content at that point. One recorded writer per
/// version (a duplicate means a lost commit), pinned reader snapshots
/// must rescan identically, and staged files from aborted transactions
/// must not leak. Returns "" on agreement, else a report naming the
/// diverging version or invariant.
std::string RunLakehouseDifferential(
    uint64_t seed, const LakehouseDifferentialOptions& opts = {});

}  // namespace testing
}  // namespace photon

#endif  // PHOTON_TESTING_DIFFER_H_
