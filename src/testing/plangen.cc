#include "testing/plangen.h"

#include <algorithm>
#include <string>
#include <utility>

#include "expr/builder.h"

namespace photon {
namespace testing {
namespace {

bool IsNumeric(const DataType& t) {
  return t.id() == TypeId::kInt32 || t.id() == TypeId::kInt64 ||
         t.id() == TypeId::kFloat64 || t.is_decimal();
}

bool IsIntegral(const DataType& t) {
  return t.id() == TypeId::kInt32 || t.id() == TypeId::kInt64;
}

/// Whether MakeCmp can align the two operand types.
bool Comparable(const DataType& a, const DataType& b) {
  if (a.id() == b.id() && !a.is_decimal()) return true;
  if (a.is_decimal() && b.is_decimal()) return true;
  return IsNumeric(a) && IsNumeric(b);
}

}  // namespace

ExprPtr PlanGen::RandomLiteral() {
  switch (rng_.Uniform(0, 3)) {
    case 0:
      return eb::Lit(static_cast<int32_t>(rng_.Uniform(-500, 500)));
    case 1:
      return eb::Lit(rng_.Uniform(-100000, 100000));
    case 2:
      return eb::Lit((rng_.NextDouble() - 0.5) * 1000.0);
    default:
      return eb::DecimalLit(std::to_string(rng_.Uniform(-9999, 9999)) + ".5",
                            12, 2);
  }
}

ExprPtr PlanGen::RandomLeaf(const Schema& schema) {
  if (schema.num_fields() > 0 && !rng_.NextBool(0.2)) {
    int c = static_cast<int>(rng_.Uniform(0, schema.num_fields() - 1));
    return eb::Col(c, schema.field(c).type);
  }
  return RandomLiteral();
}

ExprPtr PlanGen::RandomExpr(const Schema& schema, int depth, bool want_bool) {
  if (!want_bool && (depth <= 0 || rng_.NextBool(0.35))) {
    return RandomLeaf(schema);
  }
  for (int attempt = 0; attempt < 24; attempt++) {
    if (want_bool) {
      switch (rng_.Uniform(0, 6)) {
        case 0: {  // comparison
          ExprPtr a = RandomExpr(schema, depth - 1, false);
          ExprPtr b = RandomExpr(schema, depth - 1, false);
          if (!Comparable(a->type(), b->type())) break;
          switch (rng_.Uniform(0, 5)) {
            case 0:
              return eb::Lt(a, b);
            case 1:
              return eb::Le(a, b);
            case 2:
              return eb::Gt(a, b);
            case 3:
              return eb::Eq(a, b);
            default:
              return eb::Ne(a, b);
          }
        }
        case 1: {
          if (depth <= 1) break;
          ExprPtr a = RandomExpr(schema, depth - 1, true);
          ExprPtr b = RandomExpr(schema, depth - 1, true);
          return rng_.NextBool() ? eb::And(a, b) : eb::Or(a, b);
        }
        case 2:
          if (depth <= 1) break;
          return eb::Not(RandomExpr(schema, depth - 1, true));
        case 3: {
          ExprPtr a = RandomExpr(schema, depth - 1, false);
          return rng_.NextBool() ? eb::IsNull(a) : eb::IsNotNull(a);
        }
        case 4: {  // LIKE over a string column
          ExprPtr a = RandomLeaf(schema);
          if (!a->type().is_string()) break;
          return eb::Like(a, rng_.NextBool() ? "s-1%" : "%2%");
        }
        default: {  // BETWEEN over integral operands
          ExprPtr v = RandomLeaf(schema);
          if (!IsIntegral(v->type())) break;
          int64_t lo = rng_.Uniform(-400, 200);
          return eb::Between(v, eb::Lit(lo),
                             eb::Lit(lo + rng_.Uniform(0, 500)));
        }
      }
      continue;
    }
    // Scalar position.
    ExprPtr a = RandomExpr(schema, depth - 1, false);
    ExprPtr b = RandomExpr(schema, depth - 1, false);
    switch (rng_.Uniform(0, 7)) {
      case 0:
        if (IsNumeric(a->type()) && IsNumeric(b->type())) {
          switch (rng_.Uniform(0, 3)) {
            case 0:
              return eb::Add(a, b);
            case 1:
              return eb::Sub(a, b);
            default:
              return eb::Mul(a, b);
          }
        }
        break;
      case 1:  // div/mod: div-by-zero -> NULL must agree across engines
        if (IsIntegral(a->type()) && IsIntegral(b->type())) {
          return rng_.NextBool() ? eb::Div(a, b) : eb::Mod(a, b);
        }
        if (a->type().is_decimal() && b->type().is_decimal()) {
          return eb::Div(a, b);
        }
        break;
      case 2:
        if (a->type().is_string()) {
          return eb::Call(rng_.NextBool() ? "upper" : "lower", {a});
        }
        break;
      case 3:
        if (a->type().is_string()) return eb::Call("length", {a});
        break;
      case 4:  // substr with adversarial start/len (incl. negatives)
        if (a->type().is_string()) {
          return eb::Call(
              "substr",
              {a, eb::Lit(static_cast<int32_t>(rng_.Uniform(-6, 8))),
               eb::Lit(static_cast<int32_t>(rng_.Uniform(-2, 10)))});
        }
        break;
      case 5:
        if (a->type().is_string() && b->type().is_string()) {
          return eb::Call("concat", {a, b});
        }
        break;
      default:
        if (a->type() == b->type() && depth > 1) {
          return eb::If(RandomExpr(schema, depth - 1, true), a, b);
        }
        break;
    }
  }
  // Fallback leaves.
  if (want_bool) return eb::IsNotNull(RandomLeaf(schema));
  return RandomLeaf(schema);
}

plan::PlanPtr PlanGen::RandomSource() {
  const FuzzInput* input =
      inputs_[rng_.Uniform(0, static_cast<int64_t>(inputs_.size()) - 1)];
  if (input->delta.has_value() && rng_.NextBool(0.5)) {
    // Lakehouse path: optionally push a key-range predicate down so file
    // skipping (zone maps) participates in the differential check. The
    // pushdown is only a *skipping hint* — engines may differ on which
    // non-matching rows survive it — so the same predicate is applied as
    // a real Filter above the scan, like a planner would.
    ExprPtr pushdown;
    if (rng_.NextBool(0.3)) {
      const Schema& s = input->delta->schema;
      pushdown = eb::Le(eb::Col(0, s.field(0).type), eb::Lit(int64_t{30}));
    }
    plan::PlanPtr scan =
        plan::DeltaScan(input->store, *input->delta, {}, pushdown);
    if (pushdown != nullptr) {
      const Schema& s = scan->output_schema;
      scan = plan::Filter(
          scan, eb::Le(eb::Col(0, s.field(0).type), eb::Lit(int64_t{30})));
    }
    return scan;
  }
  plan::PlanPtr scan = plan::Scan(input->table);
  plan::TableStatsPtr& stats = stats_cache_[input->table];
  if (stats == nullptr) stats = plan::ComputeTableStats(*input->table);
  scan->stats = stats;
  return scan;
}

plan::PlanPtr PlanGen::RandomUnaryChain(plan::PlanPtr p, int max_ops) {
  int ops = static_cast<int>(rng_.Uniform(0, max_ops));
  for (int i = 0; i < ops; i++) {
    if (rng_.NextBool(0.55)) {
      p = plan::Filter(p, RandomExpr(p->output_schema, 2, true));
    } else {
      // Projection keeps a prefix of pass-through columns (so joins above
      // still find key columns) and appends 1-2 computed columns.
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      int keep = static_cast<int>(
          rng_.Uniform(1, p->output_schema.num_fields()));
      for (int c = 0; c < keep; c++) {
        exprs.push_back(eb::Col(c, p->output_schema.field(c).type));
        names.push_back(p->output_schema.field(c).name);
      }
      int computed = static_cast<int>(rng_.Uniform(1, 2));
      for (int c = 0; c < computed; c++) {
        exprs.push_back(RandomExpr(p->output_schema, 2, false));
        names.push_back("x" + std::to_string(name_seq_++));
      }
      p = plan::Project(p, std::move(exprs), std::move(names));
    }
  }
  return p;
}

plan::PlanPtr PlanGen::RandomAggregate(plan::PlanPtr p, bool join_free) {
  const Schema& s = p->output_schema;
  std::vector<ExprPtr> keys;
  std::vector<std::string> key_names;
  int num_keys = static_cast<int>(rng_.Uniform(0, 2));
  std::vector<int> key_cols;
  for (int k = 0; k < num_keys; k++) {
    int c = static_cast<int>(rng_.Uniform(0, s.num_fields() - 1));
    // A duplicate key column adds no grouping power and breaks the SQL
    // round trip's structural identity (the analyzer canonicalizes it
    // away), so keep keys distinct.
    if (std::find(key_cols.begin(), key_cols.end(), c) != key_cols.end()) {
      continue;
    }
    key_cols.push_back(c);
    keys.push_back(eb::Col(c, s.field(c).type));
    key_names.push_back("g" + std::to_string(name_seq_++));
  }
  std::vector<AggregateSpec> aggs;
  aggs.push_back(AggregateSpec{AggKind::kCountStar, nullptr,
                               "n" + std::to_string(name_seq_++)});
  int extra = static_cast<int>(rng_.Uniform(1, 3));
  for (int a = 0; a < extra; a++) {
    int c = static_cast<int>(rng_.Uniform(0, s.num_fields() - 1));
    ExprPtr arg = eb::Col(c, s.field(c).type);
    const DataType& t = arg->type();
    std::vector<AggKind> viable = {AggKind::kCount, AggKind::kMin,
                                   AggKind::kMax};
    // Exclude float sum/avg: per-morsel partial sums are not bit-identical
    // to the sequential sum (FP non-associativity), which would be a
    // harness false positive, not an engine bug.
    if (IsIntegral(t) || t.is_decimal()) {
      viable.push_back(AggKind::kSum);
      viable.push_back(AggKind::kAvg);
    }
    // collect_list is order-sensitive: only valid where the input row
    // order is engine-deterministic, i.e. not downstream of a join (the
    // two baseline join impls emit matches in different orders).
    if (t.is_string() && join_free) viable.push_back(AggKind::kCollectList);
    AggKind kind =
        viable[rng_.Uniform(0, static_cast<int64_t>(viable.size()) - 1)];
    // Skip duplicate (kind, column) specs for the same reason as duplicate
    // keys: SQL names one aggregate per distinct call.
    bool duplicate = false;
    for (const AggregateSpec& existing : aggs) {
      auto* col = dynamic_cast<ColumnRefExpr*>(existing.arg.get());
      if (existing.kind == kind && col != nullptr && col->index() == c) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    aggs.push_back(
        AggregateSpec{kind, arg, "a" + std::to_string(name_seq_++)});
  }
  return plan::Aggregate(p, std::move(keys), std::move(key_names),
                         std::move(aggs));
}

plan::PlanPtr PlanGen::RandomSide(int depth) {
  plan::PlanPtr p = RandomUnaryChain(RandomSource(), 2);
  if (depth > 0 && rng_.NextBool(0.2)) {
    p = RandomAggregate(p, /*join_free=*/true);  // subplan under a join
  }
  return p;
}

plan::PlanPtr PlanGen::MaybeSortLimit(plan::PlanPtr p) {
  if (!rng_.NextBool(0.5)) return p;
  const Schema& s = p->output_schema;
  bool total = rng_.NextBool(0.5);
  std::vector<SortKey> keys;
  if (total) {
    // Sort on every column: a total order (up to fully duplicate rows),
    // which makes a Limit above it engine-deterministic.
    for (int c = 0; c < s.num_fields(); c++) {
      keys.push_back(
          SortKey{eb::Col(c, s.field(c).type), rng_.NextBool(), rng_.NextBool()});
    }
  } else {
    int n = static_cast<int>(rng_.Uniform(1, std::min(2, s.num_fields())));
    for (int k = 0; k < n; k++) {
      int c = static_cast<int>(rng_.Uniform(0, s.num_fields() - 1));
      keys.push_back(
          SortKey{eb::Col(c, s.field(c).type), rng_.NextBool(), rng_.NextBool()});
    }
  }
  p = plan::Sort(p, std::move(keys));
  if (total && rng_.NextBool(0.6)) {
    p = plan::Limit(p, rng_.Uniform(0, 200));
  }
  return p;
}

plan::PlanPtr PlanGen::RandomPlan() {
  plan::PlanPtr p;
  bool has_join = false;
  if (rng_.NextBool(0.55)) {
    has_join = true;
    // Join plan: equi-join on each side's leading Int64 key column (the
    // generator guarantees column 0 survives RandomSide's projections).
    plan::PlanPtr left = RandomSide(1);
    plan::PlanPtr right = RandomSide(1);
    JoinType types[] = {JoinType::kInner, JoinType::kLeftOuter,
                        JoinType::kLeftSemi, JoinType::kLeftAnti};
    JoinType jt = types[rng_.Uniform(0, 3)];
    ExprPtr lk = eb::Col(0, left->output_schema.field(0).type);
    ExprPtr rk = eb::Col(0, right->output_schema.field(0).type);
    if (!IsIntegral(lk->type()) ||
        lk->type().id() != rk->type().id()) {
      // An aggregate side may have replaced the key column with its group
      // key or an aggregate result, leaving a non-integral type — or two
      // integral columns of different widths, which the engines do not
      // coerce (an int64-vs-int32 equi-join is ill-typed; found by soak
      // seed 136). Fall back to plain sources so both keys are the int64
      // leading key column.
      left = RandomUnaryChain(RandomSource(), 1);
      right = RandomSource();
      lk = eb::Col(0, left->output_schema.field(0).type);
      rk = eb::Col(0, right->output_schema.field(0).type);
    }
    ExprPtr residual;
    if (rng_.NextBool(0.25) && jt != JoinType::kLeftSemi &&
        jt != JoinType::kLeftAnti) {
      // Residual over [left cols, right cols].
      Schema combined = left->output_schema;
      for (const Field& f : right->output_schema.fields()) {
        combined.AddField(f);
      }
      residual = RandomExpr(combined, 2, true);
    }
    p = plan::Join(left, right, jt, {lk}, {rk}, residual);
    p = RandomUnaryChain(p, 2);
  } else {
    p = RandomUnaryChain(RandomSource(), 3);
  }
  if (rng_.NextBool(0.45)) {
    p = RandomAggregate(p, /*join_free=*/!has_join);
    p = RandomUnaryChain(p, 1);
  }
  return MaybeSortLimit(p);
}

}  // namespace testing
}  // namespace photon
