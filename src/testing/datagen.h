#ifndef PHOTON_TESTING_DATAGEN_H_
#define PHOTON_TESTING_DATAGEN_H_

#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "storage/delta.h"
#include "storage/object_store.h"
#include "vector/table.h"

namespace photon {
namespace testing {

/// Seeded generator of random schemas and tables for the differential plan
/// fuzzer (DESIGN.md §10). Column 0 is always a small-domain Int64 named
/// "<prefix>k" so any two generated tables can be equi-joined with real
/// match/miss mix; the remaining columns draw from the full type lattice
/// (ints, float, string, decimals up to the 38-digit cap) with NULLs.
class DataGen {
 public:
  explicit DataGen(uint64_t seed) : rng_(seed) {}

  /// `prefix` namespaces column names so join outputs stay unambiguous.
  Schema RandomSchema(const std::string& prefix, int min_cols = 3,
                      int max_cols = 6);

  Table RandomTable(const Schema& schema, int num_rows);

  /// One random cell of the given type (nullable).
  Value RandomValue(const DataType& type);

  /// Writes `data` out as a Delta table (multiple small data files so
  /// lakehouse scans decompose into several morsels) and returns the
  /// committed snapshot.
  Result<DeltaSnapshot> WriteDelta(ObjectStore* store, const std::string& path,
                                   const Table& data);

  Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

}  // namespace testing
}  // namespace photon

#endif  // PHOTON_TESTING_DATAGEN_H_
