#ifndef PHOTON_TESTING_PLANGEN_H_
#define PHOTON_TESTING_PLANGEN_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "plan/logical_plan.h"
#include "storage/delta.h"
#include "vector/table.h"

namespace photon {
namespace testing {

/// One base table the generator may scan: always available in memory, and
/// optionally also written out as a Delta table (in which case the fuzzer
/// randomly picks the lakehouse path — exercising the src/io scan stack —
/// or the in-memory path for the same data).
struct FuzzInput {
  std::string name;
  const Table* table = nullptr;
  ObjectStore* store = nullptr;             // set when delta has a value
  std::optional<DeltaSnapshot> delta;
};

/// Seeded random logical-plan generator (DESIGN.md §10). Grammar:
///
///   source  := Scan | DeltaScan, then 0-2 of {Filter, Project}
///   side    := source | Aggregate(source)          (nested subplan)
///   plan    := side
///            | Join(side, side) [+ residual], then 0-2 of {Filter, Project}
///            | Aggregate(plan)                     (all agg kinds)
///   root    := plan [Sort [Limit]]
///
/// Generated plans are always type-correct (joins equi-match on the Int64
/// key column every input carries; expressions are built bottom-up from
/// the visible schema), so both engines must compile and agree on results.
/// Limit only ever appears above a total Sort, keeping it deterministic.
class PlanGen {
 public:
  PlanGen(uint64_t seed, std::vector<const FuzzInput*> inputs)
      : rng_(seed), inputs_(std::move(inputs)) {}

  plan::PlanPtr RandomPlan();

  /// Random scalar expression over `schema` with the given result class.
  /// `want_bool` = predicate position (filters, residuals).
  ExprPtr RandomExpr(const Schema& schema, int depth, bool want_bool);

  Rng& rng() { return rng_; }

 private:
  plan::PlanPtr RandomSource();
  plan::PlanPtr RandomUnaryChain(plan::PlanPtr p, int max_ops);
  plan::PlanPtr RandomSide(int depth);
  plan::PlanPtr RandomAggregate(plan::PlanPtr p, bool join_free);
  plan::PlanPtr MaybeSortLimit(plan::PlanPtr p);
  ExprPtr RandomLeaf(const Schema& schema);
  ExprPtr RandomLiteral();

  Rng rng_;
  std::vector<const FuzzInput*> inputs_;
  /// Exact TableStats per in-memory input, computed on first scan so every
  /// generated kScan leaf carries statistics for the cost-based optimizer
  /// (Delta leaves get theirs from the snapshot inside plan::DeltaScan).
  std::unordered_map<const Table*, plan::TableStatsPtr> stats_cache_;
  /// Monotonic suffix for generated column names, so projections, group
  /// keys, and agg outputs never collide across join sides.
  int64_t name_seq_ = 0;
};

}  // namespace testing
}  // namespace photon

#endif  // PHOTON_TESTING_PLANGEN_H_
