#include "testing/minimizer.h"

#include <memory>
#include <vector>

namespace photon {
namespace testing {
namespace {

using plan::PlanKind;
using plan::PlanNode;
using plan::PlanPtr;

/// All subtrees in pre-order (root first).
void CollectSubtrees(const PlanPtr& p, std::vector<PlanPtr>* out) {
  out->push_back(p);
  for (const PlanPtr& child : p->children) CollectSubtrees(child, out);
}

bool SchemaPreserving(const PlanNode& node) {
  return node.kind == PlanKind::kFilter || node.kind == PlanKind::kSort ||
         node.kind == PlanKind::kLimit;
}

/// Rebuilds `root` with `target` replaced by `replacement`. Nodes off the
/// path to `target` are shared, nodes on it are shallow-copied, so the
/// original plan stays intact for the next candidate.
PlanPtr Replace(const PlanPtr& root, const PlanNode* target,
                PlanPtr replacement) {
  if (root.get() == target) return replacement;
  for (size_t i = 0; i < root->children.size(); i++) {
    PlanPtr rebuilt = Replace(root->children[i], target, replacement);
    if (rebuilt != root->children[i]) {
      PlanPtr copy = std::make_shared<PlanNode>(*root);
      copy->children[i] = std::move(rebuilt);
      return copy;
    }
  }
  return root;
}

}  // namespace

PlanPtr MinimizePlan(PlanPtr p, const PlanOracle& diverges) {
  bool reduced = true;
  // Each accepted reduction strictly shrinks the tree, so this terminates.
  while (reduced) {
    reduced = false;
    std::vector<PlanPtr> subtrees;
    CollectSubtrees(p, &subtrees);
    // (a) Promote a proper subtree to the root.
    for (size_t i = 1; i < subtrees.size(); i++) {
      if (diverges(subtrees[i])) {
        p = subtrees[i];
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    // (b) Splice out a schema-preserving unary node anywhere in the tree.
    for (const PlanPtr& node : subtrees) {
      if (!SchemaPreserving(*node)) continue;
      PlanPtr candidate = Replace(p, node.get(), node->children[0]);
      if (candidate != p && diverges(candidate)) {
        p = candidate;
        reduced = true;
        break;
      }
    }
  }
  return p;
}

}  // namespace testing
}  // namespace photon
