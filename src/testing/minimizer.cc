#include "testing/minimizer.h"

#include <memory>
#include <vector>

namespace photon {
namespace testing {
namespace {

using plan::PlanKind;
using plan::PlanNode;
using plan::PlanPtr;

/// All subtrees, root first. Explicit worklist rather than recursion: the
/// minimizer runs on fuzzer output, which can nest plans arbitrarily deep,
/// and a diagnostic tool must not crash on the inputs it exists to shrink.
void CollectSubtrees(const PlanPtr& p, std::vector<PlanPtr>* out) {
  std::vector<PlanPtr> stack = {p};
  while (!stack.empty()) {
    PlanPtr node = std::move(stack.back());
    stack.pop_back();
    for (auto it = node->children.rbegin(); it != node->children.rend();
         ++it) {
      stack.push_back(*it);
    }
    out->push_back(std::move(node));
  }
}

bool SchemaPreserving(const PlanNode& node) {
  return node.kind == PlanKind::kFilter || node.kind == PlanKind::kSort ||
         node.kind == PlanKind::kLimit;
}

/// Rebuilds `root` with `target` replaced by `replacement`. Nodes off the
/// path to `target` are shared, nodes on it are shallow-copied, so the
/// original plan stays intact for the next candidate. Iterative (find the
/// path, then rebuild it bottom-up) for the same reason as CollectSubtrees.
PlanPtr Replace(const PlanPtr& root, const PlanNode* target,
                PlanPtr replacement) {
  if (root.get() == target) return replacement;
  // DFS for the path root → target. `child` is the index of the NEXT child
  // to try, so once the path is found, frame i descended into child
  // `path[i].child - 1`.
  struct Frame {
    const PlanPtr* node;
    size_t child;
  };
  std::vector<Frame> path = {{&root, 0}};
  bool found = false;
  while (!path.empty()) {
    Frame& f = path.back();
    const PlanPtr& n = *f.node;
    if (n.get() == target) {
      found = true;
      break;
    }
    if (f.child >= n->children.size()) {
      path.pop_back();
      continue;
    }
    const PlanPtr* next = &n->children[f.child];
    f.child++;
    path.push_back({next, 0});
  }
  if (!found) return root;
  PlanPtr rebuilt = std::move(replacement);
  for (size_t i = path.size() - 1; i > 0; i--) {
    const PlanPtr& parent = *path[i - 1].node;
    PlanPtr copy = std::make_shared<PlanNode>(*parent);
    copy->children[path[i - 1].child - 1] = std::move(rebuilt);
    rebuilt = std::move(copy);
  }
  return rebuilt;
}

}  // namespace

PlanPtr MinimizePlan(PlanPtr p, const PlanOracle& diverges) {
  bool reduced = true;
  // Each accepted reduction strictly shrinks the tree, so this terminates.
  while (reduced) {
    reduced = false;
    std::vector<PlanPtr> subtrees;
    CollectSubtrees(p, &subtrees);
    // (a) Promote a proper subtree to the root.
    for (size_t i = 1; i < subtrees.size(); i++) {
      if (diverges(subtrees[i])) {
        p = subtrees[i];
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    // (b) Splice out a schema-preserving unary node anywhere in the tree.
    for (const PlanPtr& node : subtrees) {
      if (!SchemaPreserving(*node)) continue;
      PlanPtr candidate = Replace(p, node.get(), node->children[0]);
      if (candidate != p && diverges(candidate)) {
        p = candidate;
        reduced = true;
        break;
      }
    }
  }
  return p;
}

}  // namespace testing
}  // namespace photon
