#ifndef PHOTON_TESTING_SQL_MUTATOR_H_
#define PHOTON_TESTING_SQL_MUTATOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace photon {
namespace testing {

/// Lexes `sql` into the token stream the mutator edits: string literals
/// ('...'), numbers, identifiers/keywords, and multi-char operators each
/// come out as one token. Exposed for tests; MutateSql wraps it.
std::vector<std::string> TokenizeSql(const std::string& sql);

/// Generative SQL fuzzing (differ mode 9): applies `edits` seeded
/// token-level mutations to printer-emitted SQL and rejoins the tokens.
/// Edit kinds: comparison-operator substitution (= → <, >= → <, ...),
/// AND/OR swaps, matched-paren deletion (precedence traps), adjacent-token
/// swaps (clause reshuffles), numeric-literal perturbation, token
/// duplication, and token deletion. The result is often invalid SQL —
/// the invariant the caller enforces is parse-error-or-agree, never that
/// the mutant means what the original meant. Deterministic in (sql, seed,
/// edits).
std::string MutateSql(const std::string& sql, uint64_t seed, int edits);

}  // namespace testing
}  // namespace photon

#endif  // PHOTON_TESTING_SQL_MUTATOR_H_
