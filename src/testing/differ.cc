#include "testing/differ.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "baseline/row_operator.h"
#include "common/rng.h"
#include "exec/compactor.h"
#include "exec/dml.h"
#include "expr/builder.h"
#include "memory/memory_manager.h"
#include "service/query_service.h"
#include "sql/analyzer.h"
#include "sql/catalog.h"
#include "sql/printer.h"
#include "storage/delta.h"
#include "testing/sql_mutator.h"

namespace photon {
namespace testing {

// Doubles render at full %.17g precision: both engines compute per-row
// IEEE ops in the same order, so agreement is textual equality, and
// NaN/-0.0 (which Value::Equals rejects) compare fine as text.
CanonicalResult Canonicalize(const Table& table) {
  const Schema& schema = table.schema();
  std::vector<std::vector<Value>> rows = table.ToRows();
  CanonicalResult out;
  out.reserve(rows.size());
  for (const std::vector<Value>& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (size_t c = 0; c < row.size(); c++) {
      const Value& v = row[c];
      if (v.is_null()) {
        cells.push_back("∅");
      } else if (schema.field(static_cast<int>(c)).type.id() ==
                 TypeId::kFloat64) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v.f64());
        cells.push_back(buf);
      } else {
        cells.push_back(v.ToString());
      }
    }
    out.push_back(std::move(cells));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string DiffCanonical(const CanonicalResult& a, const CanonicalResult& b,
                          const std::string& label_a,
                          const std::string& label_b) {
  std::ostringstream msg;
  if (a.size() != b.size()) {
    msg << label_a << " returned " << a.size() << " rows, " << label_b
        << " returned " << b.size() << " rows";
    return msg.str();
  }
  for (size_t r = 0; r < a.size(); r++) {
    if (a[r] == b[r]) continue;
    size_t c = 0;
    while (c < a[r].size() && c < b[r].size() && a[r][c] == b[r][c]) c++;
    msg << "first diff at sorted row " << r << " col " << c << ": " << label_a
        << "=[";
    for (size_t i = 0; i < a[r].size(); i++) {
      msg << (i ? ", " : "") << a[r][i];
    }
    msg << "] " << label_b << "=[";
    for (size_t i = 0; i < b[r].size(); i++) {
      msg << (i ? ", " : "") << b[r][i];
    }
    msg << "]";
    return msg.str();
  }
  return "";
}

namespace {

struct ModeResult {
  std::string label;
  Status status = Status::OK();
  CanonicalResult rows;
  bool skipped = false;
};

ModeResult RunBaseline(const plan::PlanPtr& p, plan::BaselineJoinImpl impl,
                       const std::string& label) {
  ModeResult mode;
  mode.label = label;
  Result<baseline::RowOperatorPtr> op = plan::CompileBaseline(p, impl);
  if (!op.ok()) {
    mode.status = op.status();
    return mode;
  }
  Result<Table> t = baseline::CollectAllRows(op->get());
  if (!t.ok()) {
    mode.status = t.status();
    return mode;
  }
  mode.rows = Canonicalize(*t);
  return mode;
}

/// True when a plan's canonicalized result is engine-deterministic, so two
/// runs may be diffed cell-by-cell. Generated plans satisfy this by
/// construction (plangen), but mode 9's mutated SQL can legally express
/// order-sensitive shapes: collect_list downstream of a join, float
/// sum/avg (non-associative accumulation), or LIMIT without a total sort
/// underneath. Those mutants still run (crash-freedom is the property) but
/// skip the comparison.
bool ResultIsDeterministic(const plan::PlanPtr& p) {
  if (p->kind == plan::PlanKind::kAggregate) {
    for (const AggregateSpec& agg : p->aggregates) {
      if (agg.kind == AggKind::kCollectList) return false;
      if ((agg.kind == AggKind::kSum || agg.kind == AggKind::kAvg) &&
          agg.arg != nullptr && agg.arg->type().id() == TypeId::kFloat64) {
        return false;
      }
    }
  }
  if (p->kind == plan::PlanKind::kLimit) {
    const plan::PlanPtr& child = p->children[0];
    if (child->kind != plan::PlanKind::kSort) return false;
    // Total sort: plain column keys covering every output column.
    std::vector<bool> covered(child->output_schema.num_fields(), false);
    for (const SortKey& k : child->sort_keys) {
      const auto* col = dynamic_cast<const ColumnRefExpr*>(k.expr.get());
      if (col == nullptr) continue;
      if (col->index() >= 0 &&
          col->index() < static_cast<int>(covered.size())) {
        covered[col->index()] = true;
      }
    }
    for (bool c : covered) {
      if (!c) return false;
    }
  }
  for (const plan::PlanPtr& child : p->children) {
    if (!ResultIsDeterministic(child)) return false;
  }
  return true;
}

}  // namespace

std::string RunDifferential(const plan::PlanPtr& p, exec::Driver* driver,
                            const DifferentialOptions& opts) {
  // Mode 1: baseline row engine — the oracle (both join implementations).
  ModeResult oracle =
      RunBaseline(p, plan::BaselineJoinImpl::kSortMerge, "baseline/sort-merge");
  if (!oracle.status.ok()) {
    return "baseline failed: " + oracle.status.ToString() + "\nplan:\n" +
           p->ToString();
  }

  std::vector<ModeResult> modes;
  modes.push_back(RunBaseline(p, plan::BaselineJoinImpl::kShuffledHash,
                              "baseline/shuffled-hash"));

  {  // Mode 2: Photon, one task, one thread.
    ModeResult mode;
    mode.label = "photon/single-task";
    Result<Table> t = driver->RunSingleTask(p);
    if (!t.ok()) {
      mode.status = t.status();
    } else {
      mode.rows = Canonicalize(*t);
    }
    modes.push_back(std::move(mode));
  }

  {  // Mode 3: Photon, morsel-parallel.
    ModeResult mode;
    mode.label = "photon/parallel";
    Result<Table> t = driver->Run(p);
    if (!t.ok()) {
      mode.status = t.status();
    } else {
      mode.rows = Canonicalize(*t);
    }
    modes.push_back(std::move(mode));
  }

  {  // Mode 4: Photon under memory pressure + injected scan faults.
    ModeResult mode;
    mode.label = "photon/spill+fault";
    int64_t budget = opts.spill_budget_bytes;
    for (int attempt = 0; attempt < 4; attempt++) {
      MemoryManager mm(budget);
      ExecContext ctx;
      ctx.memory_manager = &mm;
      ctx.spill_prefix = opts.spill_prefix;
      // Tiny budgets hit genuine OOM by design; don't let each doomed
      // reservation block the full production backpressure window. Set
      // through the per-query ExecContext override (not the manager
      // default) so the fuzz corpus exercises that path.
      ctx.reserve_timeout_ms = 50;
      if (opts.fault_store != nullptr) {
        opts.fault_store->FailNextGets(opts.fault_gets);
      }
      Result<Table> t = driver->Run(p, ctx);
      ObjectStore::Default().DeletePrefix(opts.spill_prefix);
      if (t.ok()) {
        mode.rows = Canonicalize(*t);
        mode.status = Status::OK();
        break;
      }
      mode.status = t.status();
      if (!t.status().IsOutOfMemory()) break;
      // Unspillable state (hash-join build) legitimately exceeds tiny
      // budgets; give it geometric headroom before declaring the plan
      // unrunnable in this mode.
      budget *= 2;
    }
    if (mode.status.IsOutOfMemory()) mode.skipped = true;
    modes.push_back(std::move(mode));
  }

  // Mode 6: forced expression tiers. The adaptive runs above pick tiers by
  // observed cost, so a slow-but-wrong tier could hide behind a fast
  // correct one; pinning the policy makes every tier answer for itself.
  struct TierMode {
    ExprPolicy policy;
    const char* label;
  };
  constexpr TierMode kTiers[] = {
      {ExprPolicy::kTreeOnly, "photon/expr-tree"},
      {ExprPolicy::kFusedOnly, "photon/expr-fused"},
      {ExprPolicy::kCompiledOnly, "photon/expr-compiled"},
  };
  for (const TierMode& tier : kTiers) {
    ModeResult mode;
    mode.label = tier.label;
    ExecContext ctx;
    ctx.expr_policy = tier.policy;
    Result<Table> t = driver->RunSingleTask(p, ctx);
    if (!t.ok()) {
      mode.status = t.status();
    } else {
      mode.rows = Canonicalize(*t);
    }
    modes.push_back(std::move(mode));
  }

  // Leaf catalog shared by the SQL-based modes (7 and 9): register every
  // distinct leaf node so printed SQL can name it and re-analyzed plans
  // reuse the identical Table* / snapshot.
  sql::Catalog catalog;
  {
    int next_source = 0;
    const std::function<void(const plan::PlanPtr&)> collect =
        [&](const plan::PlanPtr& node) {
          if (node->kind == plan::PlanKind::kScan ||
              node->kind == plan::PlanKind::kDeltaScan) {
            if (catalog.NameOf(node.get()).empty()) {
              catalog.Register("src" + std::to_string(next_source++), node);
            }
            return;
          }
          for (const plan::PlanPtr& child : node->children) collect(child);
        };
    collect(p);
  }
  Result<std::string> sql_text = sql::PlanToSql(p, catalog);

  {  // Mode 7: SQL round trip — pretty-print the plan, re-parse and
    // re-analyze it, require a structurally identical plan (by
    // fingerprint), then execute the round-tripped plan.
    ModeResult mode;
    mode.label = "sql/round-trip";
    if (!sql_text.ok()) {
      mode.status = sql_text.status();
    } else {
      Result<plan::PlanPtr> round = sql::CompileSql(*sql_text, catalog);
      if (!round.ok()) {
        mode.status = Status::InvalidArgument(
            "printed SQL failed to re-compile: " +
            round.status().ToString() + "\nsql: " + *sql_text);
      } else if (sql::PlanFingerprint(p) != sql::PlanFingerprint(*round)) {
        mode.status = Status::InvalidArgument(
            "round-tripped plan differs structurally\nsql: " + *sql_text +
            "\noriginal:   " + sql::PlanFingerprint(p) +
            "\nround-trip: " + sql::PlanFingerprint(*round));
      } else {
        Result<Table> t = driver->RunSingleTask(*round);
        if (!t.ok()) {
          mode.status = Status::InvalidArgument(
              "round-tripped plan failed to execute: " +
              t.status().ToString() + "\nsql: " + *sql_text);
        } else {
          mode.rows = Canonicalize(*t);
        }
      }
    }
    modes.push_back(std::move(mode));
  }

  // Mode 8: cost-based optimizer on. The optimizer rewrites the plan
  // (pushdown, semi-join sinking, join reordering, scan pruning) before
  // execution; the rewritten plan must still produce the oracle's rows,
  // single-task and morsel-parallel.
  {
    struct OptMode {
      bool parallel;
      const char* label;
    };
    constexpr OptMode kOptModes[] = {
        {false, "photon/opt-1task"},
        {true, "photon/opt-parallel"},
    };
    for (const OptMode& om : kOptModes) {
      ModeResult mode;
      mode.label = om.label;
      ExecContext ctx;
      ctx.optimizer = OptimizerPolicy::kOn;
      Result<Table> t = om.parallel ? driver->Run(p, ctx)
                                    : driver->RunSingleTask(p, ctx);
      if (!t.ok()) {
        mode.status = t.status();
      } else {
        mode.rows = Canonicalize(*t);
      }
      modes.push_back(std::move(mode));
    }
  }

  for (const ModeResult& mode : modes) {
    if (mode.skipped) continue;
    if (!mode.status.ok()) {
      return mode.label + " failed where baseline succeeded: " +
             mode.status.ToString() + "\nplan:\n" + p->ToString();
    }
    std::string diff = DiffCanonical(oracle.rows, mode.rows, oracle.label,
                                     mode.label);
    if (!diff.empty()) {
      return mode.label + " diverges from baseline: " + diff + "\nplan:\n" +
             p->ToString();
    }
  }

  // Mode 9: generative SQL fuzzing. Mutants of the printed SQL define new
  // (usually invalid) queries; the invariant is parse-error-or-agree:
  // every mutant must either fail to compile with a clean error, or — if
  // it compiles — execute identically on the baseline, Photon, and Photon
  // with the optimizer on. No mode may crash regardless.
  if (opts.sql_mutants > 0 && sql_text.ok()) {
    for (int m = 0; m < opts.sql_mutants; m++) {
      uint64_t seed = opts.mutant_seed * 1000003ULL +
                      static_cast<uint64_t>(m) * 2654435761ULL;
      int edits = 1 + static_cast<int>(seed % 3);
      std::string mutated = MutateSql(*sql_text, seed, edits);
      Result<plan::PlanPtr> compiled = sql::CompileSql(mutated, catalog);
      if (!compiled.ok()) continue;  // clean parse/analyze error = pass
      const plan::PlanPtr& mp = *compiled;

      ModeResult mutant_oracle = RunBaseline(
          mp, plan::BaselineJoinImpl::kSortMerge, "mutant/baseline");
      Result<Table> photon_off = driver->RunSingleTask(mp);
      ExecContext opt_ctx;
      opt_ctx.optimizer = OptimizerPolicy::kOn;
      Result<Table> photon_on = driver->RunSingleTask(mp, opt_ctx);

      // A mutant may legitimately fail at runtime (overflow, bad cast);
      // only a baseline success obligates the Photon runs to agree.
      if (!mutant_oracle.status.ok()) continue;
      std::string prefix = "sql-mutant " + std::to_string(m) + " (seed " +
                           std::to_string(seed) + ")";
      std::string context =
          "\noriginal sql: " + *sql_text + "\nmutated sql:  " + mutated;
      if (!photon_off.ok()) {
        return prefix + ": photon failed where baseline succeeded: " +
               photon_off.status().ToString() + context;
      }
      if (!photon_on.ok()) {
        return prefix + ": photon/opt failed where baseline succeeded: " +
               photon_on.status().ToString() + context;
      }
      if (!ResultIsDeterministic(mp)) continue;  // ran crash-free; no diff
      std::string diff =
          DiffCanonical(mutant_oracle.rows, Canonicalize(*photon_off),
                        "mutant/baseline", "mutant/photon");
      if (diff.empty()) {
        diff = DiffCanonical(mutant_oracle.rows, Canonicalize(*photon_on),
                             "mutant/baseline", "mutant/photon-opt");
      }
      if (!diff.empty()) {
        return prefix + " diverges: " + diff + context + "\nmutant plan:\n" +
               mp->ToString();
      }
    }
  }
  return "";
}

std::string RunConcurrentDifferential(
    const std::vector<plan::PlanPtr>& plans,
    const ConcurrentDifferentialOptions& opts) {
  // Serial references first: single task, unlimited memory — pure
  // sequential execution with nothing shared.
  std::vector<CanonicalResult> expected;
  expected.reserve(plans.size());
  exec::Driver reference(1);
  for (size_t i = 0; i < plans.size(); i++) {
    Result<Table> t = reference.RunSingleTask(plans[i]);
    if (!t.ok()) {
      return "serial reference failed for plan " + std::to_string(i) + ": " +
             t.status().ToString() + "\nplan:\n" + plans[i]->ToString();
    }
    expected.push_back(Canonicalize(*t));
  }

  service::ServiceOptions service_options;
  service_options.worker_threads = opts.worker_threads;
  service_options.memory_limit_bytes = opts.memory_limit_bytes;
  service_options.max_concurrent_queries = opts.max_concurrent_queries;
  service::QueryService svc(service_options);
  service::SessionOptions session_options;
  // Declared memory sized so a full running set stays within budget:
  // submissions beyond the cap queue instead of overcommitting.
  session_options.memory_bytes =
      opts.memory_limit_bytes / opts.max_concurrent_queries;
  std::vector<std::shared_ptr<service::QuerySession>> sessions;
  sessions.reserve(plans.size());
  for (const plan::PlanPtr& p : plans) {
    sessions.push_back(svc.Submit(p, session_options));
  }
  for (size_t i = 0; i < sessions.size(); i++) {
    Status st = sessions[i]->Wait();
    if (!st.ok()) {
      return "concurrent run failed for plan " + std::to_string(i) +
             " where serial succeeded: " + st.ToString() + "\nplan:\n" +
             plans[i]->ToString();
    }
    std::string diff =
        DiffCanonical(expected[i], Canonicalize(sessions[i]->table()),
                      "serial", "concurrent");
    if (!diff.empty()) {
      return "concurrent run diverges from serial for plan " +
             std::to_string(i) + ": " + diff + "\nplan:\n" +
             plans[i]->ToString();
    }
  }
  return "";
}

// ---------------------------------------------------------------------------
// Mode 10: mixed lakehouse workload, serial-equivalence over the Delta log
// ---------------------------------------------------------------------------

namespace {

Schema LakeSchema() {
  return Schema({Field("id", DataType::Int64()),
                 Field("val", DataType::Int64())});
}

Table LakeRows(int64_t begin, int64_t end, int64_t bias) {
  TableBuilder b(LakeSchema());
  for (int64_t i = begin; i < end; i++) {
    b.AppendRow({Value::Int64(i), Value::Int64(i + bias)});
  }
  return b.Finish();
}

/// One logical transaction of the workload, recorded against the version
/// it committed as and replayed verbatim by the serial check. Compaction
/// is content-preserving, so its replay is a no-op.
struct LakeOp {
  enum Kind { kAppend, kDelete, kUpdate, kMerge, kCompact };
  Kind kind = Kind::kCompact;
  int64_t lo = 0;    // predicate id range [lo, hi)
  int64_t hi = 0;
  int64_t bias = 0;  // append/merge value bias; update delta
  /// Pinned append rows / merge source, so replay sees byte-identical
  /// input regardless of what the live table looked like.
  std::shared_ptr<Table> rows;
};

ExprPtr LakeIdCol() { return eb::Col(0, DataType::Int64(), "id"); }
ExprPtr LakeValCol() { return eb::Col(1, DataType::Int64(), "val"); }

ExprPtr LakeRangePredicate(int64_t lo, int64_t hi) {
  return eb::And(eb::Ge(LakeIdCol(), eb::Lit(lo)),
                 eb::Lt(LakeIdCol(), eb::Lit(hi)));
}

dml::MergeSpec LakeMergeSpec(const LakeOp& op) {
  dml::MergeSpec spec;
  spec.source = plan::Scan(op.rows.get());
  spec.target_keys = {0};
  spec.source_keys = {0};
  // Matched rows take the source's val; inserts copy the source row.
  // Combined row layout is [target id, target val, source id, source val].
  spec.matched_exprs = {LakeIdCol(),
                        eb::Col(3, DataType::Int64(), "val")};
  spec.insert_exprs = {LakeIdCol(), LakeValCol()};
  return spec;
}

/// Applies one recorded op to `table`. An op that matches nothing on the
/// replay table commits nothing, which is exactly the content-preserving
/// behavior the equivalence check wants.
Status ReplayLakeOp(const LakeOp& op, DeltaTable* table,
                    exec::Driver* driver) {
  ExecContext ctx;
  switch (op.kind) {
    case LakeOp::Kind::kAppend:
      return table->Append(*op.rows).status();
    case LakeOp::Kind::kDelete:
      return dml::ExecuteDelete(table, LakeRangePredicate(op.lo, op.hi),
                                driver, ctx)
          .status();
    case LakeOp::Kind::kUpdate: {
      std::vector<dml::UpdateAssignment> set;
      set.push_back({1, eb::Add(LakeValCol(), eb::Lit(op.bias))});
      return dml::ExecuteUpdate(table, set,
                                LakeRangePredicate(op.lo, op.hi), driver,
                                ctx)
          .status();
    }
    case LakeOp::Kind::kMerge:
      return dml::ExecuteMerge(table, LakeMergeSpec(op), driver, ctx)
          .status();
    case LakeOp::Kind::kCompact:
      return Status::OK();
  }
  return Status::OK();
}

Result<Table> ScanLakeVersion(DeltaTable* table, int64_t version,
                              exec::Driver* driver) {
  PHOTON_ASSIGN_OR_RETURN(DeltaSnapshot snapshot, table->Snapshot(version));
  return driver->RunSingleTask(
      plan::DeltaScan(table->store(), std::move(snapshot)), ExecContext{});
}

}  // namespace

std::string RunLakehouseDifferential(
    uint64_t seed, const LakehouseDifferentialOptions& opts) {
  constexpr int64_t kIdDomain = 240;
  const std::string path = "lake/mix";
  ObjectStore store;

  auto created = DeltaTable::Create(&store, path, LakeSchema());
  if (!created.ok()) {
    return "Create failed: " + created.status().ToString();
  }
  DeltaTable* table = created->get();

  // Recorded transaction log: version → the op that committed it. A
  // version recorded twice means two writers claimed the same commit slot
  // — the lost-commit race mode 10 exists to catch.
  std::mutex mu;
  std::map<int64_t, LakeOp> log;
  std::string failure;
  auto record = [&](int64_t version, LakeOp op) {
    std::lock_guard<std::mutex> lock(mu);
    if (log.count(version)) {
      if (failure.empty()) {
        failure = "version " + std::to_string(version) +
                  " committed by two transactions (lost commit)";
      }
      return;
    }
    log.emplace(version, std::move(op));
  };
  auto fail = [&](const std::string& msg) {
    std::lock_guard<std::mutex> lock(mu);
    if (failure.empty()) failure = msg;
  };

  // Seed data: two files so DML and compaction race from the start.
  for (int i = 0; i < 2; i++) {
    LakeOp op;
    op.kind = LakeOp::Kind::kAppend;
    op.rows = std::make_shared<Table>(
        LakeRows(i * 60, (i + 1) * 60, /*bias=*/0));
    auto version = table->Append(*op.rows);
    if (!version.ok()) {
      return "seed append failed: " + version.status().ToString();
    }
    record(*version, std::move(op));
  }

  exec::Compactor::Options compactor_options;
  compactor_options.small_file_rows = 200;
  compactor_options.target_file_rows = 150;
  compactor_options.interval_ms = 1;
  exec::Compactor compactor(table, compactor_options);
  compactor.set_commit_listener([&](int64_t version) {
    LakeOp op;
    op.kind = LakeOp::Kind::kCompact;
    record(version, std::move(op));
  });
  if (opts.compact) compactor.Start();

  std::atomic<bool> writers_done{false};

  // Analytics readers race the writers: latest-snapshot scans must always
  // succeed, and a pinned version must rescan to identical content.
  std::vector<std::thread> readers;
  for (int r = 0; r < opts.reader_threads; r++) {
    readers.emplace_back([&, r] {
      exec::Driver driver(1, 1);
      auto handle = DeltaTable::Open(&store, path);
      if (!handle.ok()) {
        fail("reader open failed: " + handle.status().ToString());
        return;
      }
      int64_t pinned = -1;
      CanonicalResult pinned_content;
      while (!writers_done.load(std::memory_order_acquire)) {
        auto latest = (*handle)->LatestVersion();
        if (!latest.ok()) {
          fail("reader LatestVersion failed: " + latest.status().ToString());
          return;
        }
        Result<Table> scan = ScanLakeVersion(handle->get(), *latest, &driver);
        if (!scan.ok()) {
          fail("reader scan of version " + std::to_string(*latest) +
               " failed: " + scan.status().ToString());
          return;
        }
        if (pinned < 0 && *latest >= 2 && r % 2 == 0) {
          pinned = *latest;
          pinned_content = Canonicalize(*scan);
        } else if (pinned >= 0) {
          Result<Table> again =
              ScanLakeVersion(handle->get(), pinned, &driver);
          if (!again.ok()) {
            fail("pinned version " + std::to_string(pinned) +
                 " became unreadable: " + again.status().ToString());
            return;
          }
          std::string diff =
              DiffCanonical(pinned_content, Canonicalize(*again),
                            "first read", "re-read");
          if (!diff.empty()) {
            fail("pinned version " + std::to_string(pinned) +
                 " changed under a reader: " + diff);
            return;
          }
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < opts.writer_threads; w++) {
    writers.emplace_back([&, w] {
      Rng rng(seed * 0x9E37 + static_cast<uint64_t>(w) * 7919 + 17);
      exec::Driver driver(2, 1);
      auto handle = DeltaTable::Open(&store, path);
      if (!handle.ok()) {
        fail("writer open failed: " + handle.status().ToString());
        return;
      }
      dml::DmlOptions dml_options;
      dml_options.max_retries = 64;
      ExecContext ctx;
      for (int i = 0; i < opts.ops_per_writer; i++) {
        LakeOp op;
        int64_t lo = rng.Uniform(0, kIdDomain - 40);
        op.lo = lo;
        op.hi = lo + rng.Uniform(10, 40);
        op.bias = rng.Uniform(1, 1000);
        int kind = static_cast<int>(rng.Uniform(0, 99));
        Result<dml::DmlResult> result = dml::DmlResult{};
        if (kind < 30) {
          op.kind = LakeOp::Kind::kDelete;
          result = dml::ExecuteDelete(handle->get(),
                                      LakeRangePredicate(op.lo, op.hi),
                                      &driver, ctx, dml_options);
        } else if (kind < 60) {
          op.kind = LakeOp::Kind::kUpdate;
          std::vector<dml::UpdateAssignment> set;
          set.push_back({1, eb::Add(LakeValCol(), eb::Lit(op.bias))});
          result = dml::ExecuteUpdate(handle->get(), set,
                                      LakeRangePredicate(op.lo, op.hi),
                                      &driver, ctx, dml_options);
        } else if (kind < 85) {
          op.kind = LakeOp::Kind::kMerge;
          op.rows =
              std::make_shared<Table>(LakeRows(op.lo, op.hi, op.bias));
          result = dml::ExecuteMerge(handle->get(), LakeMergeSpec(op),
                                     &driver, ctx, dml_options);
        } else {
          op.kind = LakeOp::Kind::kAppend;
          op.rows =
              std::make_shared<Table>(LakeRows(op.lo, op.hi, op.bias));
          auto version = (*handle)->Append(*op.rows);
          if (!version.ok()) {
            fail("append failed: " + version.status().ToString());
            return;
          }
          record(*version, std::move(op));
          continue;
        }
        if (!result.ok()) {
          fail("writer " + std::to_string(w) + " op " + std::to_string(i) +
               " failed: " + result.status().ToString());
          return;
        }
        // A statement that matched nothing committed nothing — there is
        // no version to record.
        if (result->rows_affected > 0 || result->rows_inserted > 0) {
          record(result->version, std::move(op));
        }
      }
    });
  }

  for (auto& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  if (opts.compact) {
    Status s = compactor.RunOncePass();
    if (!s.ok()) fail("final compaction pass failed: " + s.ToString());
    compactor.Stop();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    if (!failure.empty()) return failure;
  }

  // Serial re-execution: apply the recorded ops in committed order to a
  // fresh table; after each version the concurrent table's scan at that
  // version must equal the serial table's content.
  auto latest = table->LatestVersion();
  if (!latest.ok()) {
    return "LatestVersion failed: " + latest.status().ToString();
  }
  ObjectStore replay_store;
  auto replay_created =
      DeltaTable::Create(&replay_store, path, LakeSchema());
  if (!replay_created.ok()) {
    return "replay Create failed: " + replay_created.status().ToString();
  }
  DeltaTable* replay = replay_created->get();
  exec::Driver driver(2, 1);
  for (int64_t v = 1; v <= *latest; v++) {
    auto it = log.find(v);
    if (it == log.end()) {
      return "version " + std::to_string(v) +
             " exists in the log but no transaction recorded committing "
             "it";
    }
    Status s = ReplayLakeOp(it->second, replay, &driver);
    if (!s.ok()) {
      return "replay of version " + std::to_string(v) +
             " failed: " + s.ToString();
    }
    Result<Table> concurrent = ScanLakeVersion(table, v, &driver);
    if (!concurrent.ok()) {
      return "scan of committed version " + std::to_string(v) +
             " failed: " + concurrent.status().ToString();
    }
    auto replay_latest = replay->LatestVersion();
    if (!replay_latest.ok()) {
      return "replay LatestVersion failed: " +
             replay_latest.status().ToString();
    }
    Result<Table> serial = ScanLakeVersion(replay, *replay_latest, &driver);
    if (!serial.ok()) {
      return "replay scan failed: " + serial.status().ToString();
    }
    std::string diff = DiffCanonical(Canonicalize(*serial),
                                     Canonicalize(*concurrent), "serial",
                                     "concurrent");
    if (!diff.empty()) {
      return "committed version " + std::to_string(v) +
             " diverges from serial re-execution (" +
             (it->second.kind == LakeOp::Kind::kCompact
                  ? std::string("compaction")
                  : "dml") +
             "): " + diff;
    }
  }

  // No staged file from any aborted transaction may survive in the store.
  std::set<std::string> committed;
  for (int64_t v = 0; v <= *latest; v++) {
    auto snapshot = table->Snapshot(v);
    if (!snapshot.ok()) {
      return "snapshot " + std::to_string(v) +
             " failed: " + snapshot.status().ToString();
    }
    for (const DeltaFileEntry& f : snapshot->files) committed.insert(f.key);
  }
  for (const std::string& key : store.List(path + "/data/")) {
    if (!committed.count(key)) {
      return "aborted transaction leaked staged file: " + key;
    }
  }
  return "";
}

}  // namespace testing
}  // namespace photon
