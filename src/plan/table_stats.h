#ifndef PHOTON_PLAN_TABLE_STATS_H_
#define PHOTON_PLAN_TABLE_STATS_H_

#include <memory>
#include <vector>

#include "storage/delta.h"
#include "types/value.h"
#include "vector/table.h"

namespace photon {
namespace plan {

/// Per-column statistics for a scan leaf, consumed by the cost model in
/// src/opt. All fields are estimates; `ndv < 0` means unknown.
struct ColumnStats {
  double ndv = -1;  // estimated distinct non-null values
  int64_t null_count = 0;
  bool has_min_max = false;
  Value min;
  Value max;
};

/// Table-level statistics attached to scan leaves. For kDeltaScan nodes the
/// builder derives these from the snapshot's zone maps and NDV sketches;
/// for in-memory kScan leaves the catalog path (plangen, tests, benches)
/// attaches them explicitly via ComputeTableStats.
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;  // one per schema field; may be empty
};

using TableStatsPtr = std::shared_ptr<const TableStats>;

/// Exact statistics for an in-memory table (full scan; NDV counted from
/// 64-bit value hashes, so collisions can undercount negligibly).
TableStatsPtr ComputeTableStats(const Table& table);

/// Statistics reconstructed from a Delta snapshot's per-file stats and NDV
/// sketches, without reading data files. `columns` selects a projection
/// (empty = all columns, in schema order).
TableStatsPtr StatsFromSnapshot(const DeltaSnapshot& snapshot,
                                const std::vector<int>& columns = {});

}  // namespace plan
}  // namespace photon

#endif  // PHOTON_PLAN_TABLE_STATS_H_
