#include "plan/converter.h"

#include "baseline/row_agg.h"
#include "baseline/row_join.h"
#include "baseline/row_ops.h"
#include "baseline/row_sort.h"
#include "ops/file_scan.h"
#include "ops/filter.h"
#include "ops/limit.h"
#include "ops/project.h"
#include "ops/scan.h"

namespace photon {
namespace plan {
namespace {

struct Piece {
  OperatorPtr photon;              // set when is_photon
  baseline::RowOperatorPtr legacy;  // set otherwise
  bool is_photon = false;
};

class Converter {
 public:
  Converter(ExecContext ctx, const SupportFn& supported,
            BaselineJoinImpl legacy_join, ConversionResult* result)
      : ctx_(ctx),
        supported_(supported),
        legacy_join_(legacy_join),
        result_(result) {}

  Result<Piece> Convert(const PlanPtr& node) {
    std::vector<Piece> children;
    for (const PlanPtr& child : node->children) {
      PHOTON_ASSIGN_OR_RETURN(Piece piece, Convert(child));
      children.push_back(std::move(piece));
    }
    bool children_photon = true;
    for (const Piece& c : children) children_photon &= c.is_photon;

    if (supported_(*node) && children_photon) {
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr op,
                              MakePhotonNode(*node, &children));
      result_->photon_nodes++;
      Piece out;
      out.photon = std::move(op);
      out.is_photon = true;
      return out;
    }

    // Legacy node: photon children fall back through transitions.
    std::vector<baseline::RowOperatorPtr> legacy_children;
    for (Piece& c : children) {
      if (c.is_photon) {
        legacy_children.push_back(baseline::RowOperatorPtr(
            new TransitionOperator(std::move(c.photon))));
        result_->transitions++;
      } else {
        legacy_children.push_back(std::move(c.legacy));
      }
    }
    PHOTON_ASSIGN_OR_RETURN(
        baseline::RowOperatorPtr op,
        MakeLegacyNode(*node, std::move(legacy_children)));
    result_->legacy_nodes++;
    Piece out;
    out.legacy = std::move(op);
    out.is_photon = false;
    return out;
  }

 private:
  Result<OperatorPtr> MakePhotonNode(const PlanNode& node,
                                     std::vector<Piece>* children) {
    auto child = [&](int i) { return std::move((*children)[i].photon); };
    switch (node.kind) {
      case PlanKind::kScan: {
        // Adapter between the columnar scan and Photon (§5.2).
        result_->adapters++;
        return OperatorPtr(new AdapterOperator(
            OperatorPtr(new InMemoryScanOperator(node.table))));
      }
      case PlanKind::kDeltaScan: {
        result_->adapters++;
        return OperatorPtr(new AdapterOperator(OperatorPtr(
            new DeltaScanOperator(node.store, node.snapshot,
                                  node.scan_columns, node.scan_predicate,
                                  node.scan_io))));
      }
      case PlanKind::kFilter:
        return OperatorPtr(new FilterOperator(child(0), node.predicate));
      case PlanKind::kProject:
        return OperatorPtr(
            new ProjectOperator(child(0), node.exprs, node.names));
      case PlanKind::kAggregate:
        return OperatorPtr(new HashAggregateOperator(
            child(0), node.group_keys, node.key_names, node.aggregates,
            ctx_));
      case PlanKind::kJoin:
        return OperatorPtr(new HashJoinOperator(
            child(1), child(0), node.right_keys, node.left_keys,
            node.join_type, ctx_, node.residual));
      case PlanKind::kSort:
        return OperatorPtr(new SortOperator(child(0), node.sort_keys, ctx_));
      case PlanKind::kLimit:
        return OperatorPtr(new LimitOperator(child(0), node.limit));
    }
    return Status::Internal("bad plan kind");
  }

  Result<baseline::RowOperatorPtr> MakeLegacyNode(
      const PlanNode& node,
      std::vector<baseline::RowOperatorPtr> children) {
    using baseline::RowOperatorPtr;
    switch (node.kind) {
      case PlanKind::kScan:
        return RowOperatorPtr(new baseline::RowScanOperator(node.table));
      case PlanKind::kDeltaScan:
        return RowOperatorPtr(new TransitionOperator(OperatorPtr(
            new DeltaScanOperator(node.store, node.snapshot,
                                  node.scan_columns, node.scan_predicate,
                                  node.scan_io))));
      case PlanKind::kFilter:
        return RowOperatorPtr(new baseline::RowFilterOperator(
            std::move(children[0]), node.predicate));
      case PlanKind::kProject:
        return RowOperatorPtr(new baseline::RowProjectOperator(
            std::move(children[0]), node.exprs, node.names));
      case PlanKind::kAggregate:
        return RowOperatorPtr(new baseline::RowHashAggregateOperator(
            std::move(children[0]), node.group_keys, node.key_names,
            node.aggregates));
      case PlanKind::kJoin:
        if (legacy_join_ == BaselineJoinImpl::kSortMerge) {
          return RowOperatorPtr(new baseline::RowSortMergeJoinOperator(
              std::move(children[0]), std::move(children[1]), node.left_keys,
              node.right_keys, node.join_type, node.residual));
        }
        return RowOperatorPtr(new baseline::RowShuffledHashJoinOperator(
            std::move(children[0]), std::move(children[1]), node.left_keys,
            node.right_keys, node.join_type, node.residual));
      case PlanKind::kSort:
        return RowOperatorPtr(new baseline::RowSortOperator(
            std::move(children[0]), node.sort_keys));
      case PlanKind::kLimit:
        return RowOperatorPtr(new baseline::RowLimitOperator(
            std::move(children[0]), node.limit));
    }
    return Status::Internal("bad plan kind");
  }

  ExecContext ctx_;
  const SupportFn& supported_;
  BaselineJoinImpl legacy_join_;
  ConversionResult* result_;
};

}  // namespace

Result<ConversionResult> ConvertPlan(const PlanPtr& plan, ExecContext ctx,
                                     const SupportFn& supported,
                                     BaselineJoinImpl legacy_join) {
  ConversionResult result;
  Converter converter(ctx, supported, legacy_join, &result);
  PHOTON_ASSIGN_OR_RETURN(Piece root, converter.Convert(plan));
  if (root.is_photon) {
    // Whole plan ran in Photon: a single transition hands rows to the
    // consumer, like Spark's final column-to-row pivot.
    result.transitions++;
    result.root = baseline::RowOperatorPtr(
        new TransitionOperator(std::move(root.photon)));
  } else {
    result.root = std::move(root.legacy);
  }
  return result;
}

}  // namespace plan
}  // namespace photon
