#ifndef PHOTON_PLAN_CONVERTER_H_
#define PHOTON_PLAN_CONVERTER_H_

#include <functional>

#include "plan/logical_plan.h"
#include "plan/transition.h"

namespace photon {
namespace plan {

/// Decides whether a node may execute in Photon. The default accepts
/// everything; tests and the partial-rollout demo restrict it to exercise
/// fallback (§3.5).
using SupportFn = std::function<bool(const PlanNode&)>;

/// Result of converting a legacy plan into a mixed Photon/legacy physical
/// plan. The root is always a row operator (the legacy engine's interface,
/// as in DBR where the consumer of a query is row-oriented).
struct ConversionResult {
  baseline::RowOperatorPtr root;
  int photon_nodes = 0;
  int legacy_nodes = 0;
  int transitions = 0;
  int adapters = 0;
};

/// The §5.1 conversion rule: walk the plan bottom-up starting at the
/// scans, mapping each supported node to a Photon operator. At the first
/// unsupported node, insert a transition (columnar -> row pivot) and run
/// that node — and everything above it — in the legacy engine. Nodes are
/// never converted starting mid-plan (that could multiply pivots; §5.2
/// explains why DBR is conservative here). Each Photon scan leaf gets an
/// adapter node that forwards columnar pointers across the simulated
/// JNI boundary.
Result<ConversionResult> ConvertPlan(
    const PlanPtr& plan, ExecContext ctx = {},
    const SupportFn& supported = [](const PlanNode&) { return true; },
    BaselineJoinImpl legacy_join = BaselineJoinImpl::kSortMerge);

}  // namespace plan
}  // namespace photon

#endif  // PHOTON_PLAN_CONVERTER_H_
