#include "plan/table_stats.h"

#include <unordered_set>

namespace photon {
namespace plan {

TableStatsPtr ComputeTableStats(const Table& table) {
  auto stats = std::make_shared<TableStats>();
  stats->row_count = table.num_rows();
  int num_cols = table.schema().num_fields();
  stats->columns.resize(num_cols);
  std::vector<std::unordered_set<uint64_t>> distinct(num_cols);
  for (int b = 0; b < table.num_batches(); b++) {
    const ColumnBatch& batch = table.batch(b);
    for (int c = 0; c < num_cols; c++) {
      ColumnStats& cs = stats->columns[c];
      const ColumnVector& col = *batch.column(c);
      for (int i = 0; i < batch.num_active(); i++) {
        int row = batch.ActiveRow(i);
        if (col.IsNull(row)) {
          cs.null_count++;
          continue;
        }
        Value v = col.GetValue(row);
        distinct[c].insert(v.HashCode());
        if (!cs.has_min_max) {
          cs.min = v;
          cs.max = v;
          cs.has_min_max = true;
        } else {
          if (v.Compare(cs.min) < 0) cs.min = v;
          if (v.Compare(cs.max) > 0) cs.max = v;
        }
      }
    }
  }
  for (int c = 0; c < num_cols; c++) {
    stats->columns[c].ndv = static_cast<double>(distinct[c].size());
  }
  return stats;
}

TableStatsPtr StatsFromSnapshot(const DeltaSnapshot& snapshot,
                                const std::vector<int>& columns) {
  auto stats = std::make_shared<TableStats>();
  stats->row_count = snapshot.num_rows();
  std::vector<int> cols = columns;
  if (cols.empty()) {
    for (int c = 0; c < snapshot.schema.num_fields(); c++) cols.push_back(c);
  }
  stats->columns.resize(cols.size());
  std::vector<NdvSketch> sketches(cols.size());
  std::vector<bool> any_sketch(cols.size(), false);
  for (const DeltaFileEntry& file : snapshot.files) {
    for (size_t out_c = 0; out_c < cols.size(); out_c++) {
      int c = cols[out_c];
      if (c < 0 || c >= static_cast<int>(file.column_stats.size())) continue;
      const ColumnChunkMeta& s = file.column_stats[c];
      ColumnStats& cs = stats->columns[out_c];
      cs.null_count += s.null_count;
      if (!s.ndv.empty()) {
        sketches[out_c].Merge(s.ndv);
        any_sketch[out_c] = true;
      }
      if (s.has_min_max) {
        if (!cs.has_min_max) {
          cs.min = s.min;
          cs.max = s.max;
          cs.has_min_max = true;
        } else {
          if (s.min.Compare(cs.min) < 0) cs.min = s.min;
          if (s.max.Compare(cs.max) > 0) cs.max = s.max;
        }
      }
    }
  }
  for (size_t out_c = 0; out_c < cols.size(); out_c++) {
    ColumnStats& cs = stats->columns[out_c];
    if (any_sketch[out_c]) {
      cs.ndv = sketches[out_c].Estimate();
    } else if (cs.null_count >= stats->row_count) {
      cs.ndv = 0;  // provably all-null (or empty table)
    }
  }
  return stats;
}

}  // namespace plan
}  // namespace photon
