#include "plan/stage_planner.h"

namespace photon {
namespace plan {

bool IsPipelineBreaker(PlanKind kind) {
  switch (kind) {
    case PlanKind::kAggregate:
    case PlanKind::kSort:
    case PlanKind::kLimit:
      return true;
    default:
      return false;
  }
}

FragmentCut CutFragment(const PlanPtr& root) {
  FragmentCut cut;
  PlanPtr node = root;
  while (true) {
    switch (node->kind) {
      case PlanKind::kScan:
        cut.leaf = node;
        cut.leaf_kind = FragmentLeaf::kTable;
        return cut;
      case PlanKind::kDeltaScan:
        cut.leaf = node;
        cut.leaf_kind = FragmentLeaf::kDeltaFiles;
        return cut;
      case PlanKind::kFilter:
      case PlanKind::kProject:
        cut.nodes.push_back(node.get());
        node = node->children[0];
        break;
      case PlanKind::kJoin:
        // The probe side (children[0]) streams through the fragment; the
        // build side is materialized separately and shared by every task.
        cut.nodes.push_back(node.get());
        node = node->children[0];
        break;
      case PlanKind::kAggregate:
      case PlanKind::kSort:
      case PlanKind::kLimit:
        cut.leaf = node;
        cut.leaf_kind = FragmentLeaf::kStage;
        return cut;
    }
  }
}

}  // namespace plan
}  // namespace photon
