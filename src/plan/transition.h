#ifndef PHOTON_PLAN_TRANSITION_H_
#define PHOTON_PLAN_TRANSITION_H_

#include "baseline/row_operator.h"
#include "ops/operator.h"

namespace photon {

/// The "transition node" of §5.2: sits on top of a Photon subtree and
/// pivots its column batches into rows for the legacy row-wise engine.
/// Since Spark's own columnar scans also need one column-to-row pivot,
/// adding a single transition above a Photon plan does not regress versus
/// the pure legacy plan.
class TransitionOperator : public baseline::RowOperator {
 public:
  explicit TransitionOperator(OperatorPtr child)
      : RowOperator(child->output_schema()), child_(std::move(child)) {}

  Status Open() override {
    row_ = 0;
    current_ = nullptr;
    rows_emitted_ = 0;
    return child_->Open();
  }

  Result<bool> NextImpl(baseline::Row* row) override {
    while (true) {
      if (current_ != nullptr && row_ < current_->num_active()) {
        int r = current_->ActiveRow(row_++);
        row->clear();
        for (int c = 0; c < current_->num_columns(); c++) {
          row->push_back(current_->column(c)->GetValue(r));
        }
        rows_emitted_++;
        return true;
      }
      PHOTON_ASSIGN_OR_RETURN(current_, child_->GetNext());
      if (current_ == nullptr) return false;
      row_ = 0;
    }
  }

  void Close() override { child_->Close(); }
  std::string name() const override { return "Transition"; }

  Operator* photon_child() { return child_.get(); }
  int64_t rows_emitted() const { return rows_emitted_; }

 private:
  OperatorPtr child_;
  ColumnBatch* current_ = nullptr;
  int row_ = 0;
  int64_t rows_emitted_ = 0;
};

/// The "adapter node" of §5.2: the leaf of every Photon plan, passing
/// pointers to columnar scan data into Photon without copying. In this
/// single-process reproduction the adapter wraps any columnar Operator and
/// forwards batches through a simulated foreign-function boundary: one
/// indirect call per batch whose cost is comparable to a C++ virtual call
/// (~23 ns in the paper's measurement, §5.2). The call counter feeds the
/// §6.3 overhead analysis.
class AdapterOperator : public Operator {
 public:
  explicit AdapterOperator(OperatorPtr child)
      : Operator(child->output_schema()), child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }

  Result<ColumnBatch*> GetNextImpl() override {
    // One boundary crossing per batch: the paper amortizes the JNI call by
    // batching exactly like this.
    boundary_calls_++;
    return child_->GetNext();
  }

  void Close() override { child_->Close(); }
  std::string name() const override { return "PhotonAdapter"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

  int64_t boundary_calls() const { return boundary_calls_; }

 private:
  OperatorPtr child_;
  int64_t boundary_calls_ = 0;
};

}  // namespace photon

#endif  // PHOTON_PLAN_TRANSITION_H_
