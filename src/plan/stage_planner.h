#ifndef PHOTON_PLAN_STAGE_PLANNER_H_
#define PHOTON_PLAN_STAGE_PLANNER_H_

#include <vector>

#include "plan/logical_plan.h"

namespace photon {
namespace plan {

/// True for plan nodes that must materialize (all of) their input before
/// producing output. The driver breaks jobs into stages at these nodes —
/// the miniature analogue of the exchange boundaries where DBR cuts stages
/// (§2.2): everything between two breakers streams through one pipeline.
bool IsPipelineBreaker(PlanKind kind);

/// What the leaf of a fragment reads, i.e. what its morsels range over.
enum class FragmentLeaf : uint8_t {
  kTable,       // kScan: morsels are table batch ranges
  kDeltaFiles,  // kDeltaScan: morsels are ranges of the pruned file list
  kStage,       // a pipeline breaker: the driver materializes its output
                // as a prior stage, then scans it as table batch ranges
};

/// A maximal streaming fragment of a logical plan: the chain of
/// morsel-parallelizable operators from a scan (or staged input) up to the
/// fragment root, stopping below any pipeline breaker. Joins stay inside
/// the fragment on their probe side — the build side becomes a separate
/// stage the driver materializes once and shares across all morsel tasks
/// (broadcast-build, partition-parallel-probe, §2.2).
struct FragmentCut {
  /// Interior nodes, root first (kFilter / kProject / kJoin). The driver
  /// instantiates one operator chain per morsel by walking this
  /// back-to-front (leaf to root).
  std::vector<const PlanNode*> nodes;
  /// The fragment's source: a kScan / kDeltaScan node, or (kStage) the
  /// breaker subplan whose output must be materialized first.
  PlanPtr leaf;
  FragmentLeaf leaf_kind = FragmentLeaf::kTable;
};

/// Cuts the maximal fragment rooted at `root` (root itself may be the
/// leaf, leaving `nodes` empty).
FragmentCut CutFragment(const PlanPtr& root);

}  // namespace plan
}  // namespace photon

#endif  // PHOTON_PLAN_STAGE_PLANNER_H_
