#include "plan/logical_plan.h"

#include "baseline/row_agg.h"
#include "baseline/row_join.h"
#include "baseline/row_ops.h"
#include "baseline/row_sort.h"
#include "ops/file_scan.h"
#include "ops/filter.h"
#include "ops/limit.h"
#include "ops/project.h"
#include "ops/scan.h"
#include "plan/transition.h"

namespace photon {
namespace plan {
namespace {

Schema AggSchema(const std::vector<ExprPtr>& keys,
                 const std::vector<std::string>& key_names,
                 const std::vector<AggregateSpec>& aggs) {
  Schema schema;
  for (size_t i = 0; i < keys.size(); i++) {
    schema.AddField(Field(key_names[i], keys[i]->type()));
  }
  for (const AggregateSpec& spec : aggs) {
    DataType arg_type =
        spec.arg != nullptr ? spec.arg->type() : DataType::Int64();
    Result<DataType> result = AggResultType(spec.kind, arg_type);
    PHOTON_CHECK(result.ok());
    schema.AddField(Field(spec.name, *result));
  }
  return schema;
}

}  // namespace

PlanPtr Scan(const Table* table) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kScan;
  node->table = table;
  node->output_schema = table->schema();
  return node;
}

PlanPtr DeltaScan(ObjectStore* store, DeltaSnapshot snapshot,
                  std::vector<int> columns, ExprPtr predicate,
                  io::IoOptions io) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kDeltaScan;
  node->store = store;
  node->output_schema =
      FileScanOperator::Project(snapshot.schema, columns);
  node->snapshot = std::move(snapshot);
  node->scan_columns = std::move(columns);
  node->scan_predicate = std::move(predicate);
  node->scan_io = io;
  return node;
}

PlanPtr Filter(PlanPtr child, ExprPtr predicate) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kFilter;
  node->output_schema = child->output_schema;
  node->children.push_back(std::move(child));
  node->predicate = std::move(predicate);
  return node;
}

PlanPtr Project(PlanPtr child, std::vector<ExprPtr> exprs,
                std::vector<std::string> names) {
  PHOTON_CHECK(exprs.size() == names.size());
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kProject;
  for (size_t i = 0; i < exprs.size(); i++) {
    node->output_schema.AddField(Field(names[i], exprs[i]->type()));
  }
  node->children.push_back(std::move(child));
  node->exprs = std::move(exprs);
  node->names = std::move(names);
  return node;
}

PlanPtr Aggregate(PlanPtr child, std::vector<ExprPtr> keys,
                  std::vector<std::string> key_names,
                  std::vector<AggregateSpec> aggs) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kAggregate;
  node->output_schema = AggSchema(keys, key_names, aggs);
  node->children.push_back(std::move(child));
  node->group_keys = std::move(keys);
  node->key_names = std::move(key_names);
  node->aggregates = std::move(aggs);
  return node;
}

PlanPtr Join(PlanPtr probe, PlanPtr build, JoinType type,
             std::vector<ExprPtr> probe_keys,
             std::vector<ExprPtr> build_keys, ExprPtr residual) {
  PHOTON_CHECK(probe_keys.size() == build_keys.size());
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kJoin;
  node->join_type = type;
  node->output_schema = baseline::JoinOutputSchema(
      probe->output_schema, build->output_schema, type);
  node->children.push_back(std::move(probe));
  node->children.push_back(std::move(build));
  node->left_keys = std::move(probe_keys);
  node->right_keys = std::move(build_keys);
  node->residual = std::move(residual);
  return node;
}

PlanPtr Sort(PlanPtr child, std::vector<SortKey> keys) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kSort;
  node->output_schema = child->output_schema;
  node->children.push_back(std::move(child));
  node->sort_keys = std::move(keys);
  return node;
}

PlanPtr Limit(PlanPtr child, int64_t n) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kLimit;
  node->output_schema = child->output_schema;
  node->children.push_back(std::move(child));
  node->limit = n;
  return node;
}

int ColIndex(const PlanPtr& plan, const std::string& name) {
  int idx = plan->output_schema.FieldIndex(name);
  PHOTON_CHECK(idx >= 0);
  return idx;
}

ExprPtr ColOf(const PlanPtr& plan, const std::string& name) {
  int idx = ColIndex(plan, name);
  return std::make_shared<ColumnRefExpr>(
      idx, plan->output_schema.field(idx).type, name);
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(indent * 2, ' ');
  std::string out = pad;
  switch (kind) {
    case PlanKind::kScan:
      out += "Scan";
      break;
    case PlanKind::kDeltaScan:
      out += "DeltaScan(files=" + std::to_string(snapshot.files.size()) + ")";
      break;
    case PlanKind::kFilter:
      out += "Filter(" + predicate->ToString() + ")";
      break;
    case PlanKind::kProject:
      out += "Project";
      break;
    case PlanKind::kAggregate:
      out += "Aggregate(keys=" + std::to_string(group_keys.size()) +
             ", aggs=" + std::to_string(aggregates.size()) + ")";
      break;
    case PlanKind::kJoin: {
      switch (join_type) {
        case JoinType::kInner:
          out += "Join(inner";
          break;
        case JoinType::kLeftOuter:
          out += "Join(left-outer";
          break;
        case JoinType::kLeftSemi:
          out += "Join(left-semi";
          break;
        case JoinType::kLeftAnti:
          out += "Join(left-anti";
          break;
      }
      if (residual != nullptr) out += ", residual=" + residual->ToString();
      out += ")";
      break;
    }
    case PlanKind::kSort:
      out += "Sort";
      break;
    case PlanKind::kLimit:
      out += "Limit(" + std::to_string(limit) + ")";
      break;
  }
  out += "\n";
  for (const PlanPtr& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

Result<OperatorPtr> CompilePhoton(const PlanPtr& plan, ExecContext ctx) {
  switch (plan->kind) {
    case PlanKind::kScan:
      return OperatorPtr(new InMemoryScanOperator(plan->table));
    case PlanKind::kDeltaScan:
      return OperatorPtr(new DeltaScanOperator(plan->store, plan->snapshot,
                                               plan->scan_columns,
                                               plan->scan_predicate,
                                               plan->scan_io));
    case PlanKind::kFilter: {
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr child,
                              CompilePhoton(plan->children[0], ctx));
      return OperatorPtr(
          new FilterOperator(std::move(child), plan->predicate));
    }
    case PlanKind::kProject: {
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr child,
                              CompilePhoton(plan->children[0], ctx));
      return OperatorPtr(
          new ProjectOperator(std::move(child), plan->exprs, plan->names));
    }
    case PlanKind::kAggregate: {
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr child,
                              CompilePhoton(plan->children[0], ctx));
      return OperatorPtr(new HashAggregateOperator(
          std::move(child), plan->group_keys, plan->key_names,
          plan->aggregates, ctx));
    }
    case PlanKind::kJoin: {
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr probe,
                              CompilePhoton(plan->children[0], ctx));
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr build,
                              CompilePhoton(plan->children[1], ctx));
      return OperatorPtr(new HashJoinOperator(
          std::move(build), std::move(probe), plan->right_keys,
          plan->left_keys, plan->join_type, ctx, plan->residual));
    }
    case PlanKind::kSort: {
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr child,
                              CompilePhoton(plan->children[0], ctx));
      return OperatorPtr(
          new SortOperator(std::move(child), plan->sort_keys, ctx));
    }
    case PlanKind::kLimit: {
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr child,
                              CompilePhoton(plan->children[0], ctx));
      return OperatorPtr(new LimitOperator(std::move(child), plan->limit));
    }
  }
  return Status::Internal("bad plan kind");
}

Result<baseline::RowOperatorPtr> CompileBaseline(
    const PlanPtr& plan, BaselineJoinImpl join_impl) {
  using baseline::RowOperatorPtr;
  switch (plan->kind) {
    case PlanKind::kScan:
      return RowOperatorPtr(new baseline::RowScanOperator(plan->table));
    case PlanKind::kDeltaScan: {
      // Spark's scan also produces columnar data and pivots to rows (§5.2):
      // the baseline reads through the columnar scan wrapped in a
      // transition node.
      OperatorPtr scan(new DeltaScanOperator(plan->store, plan->snapshot,
                                             plan->scan_columns,
                                             plan->scan_predicate,
                                             plan->scan_io));
      return RowOperatorPtr(new TransitionOperator(std::move(scan)));
    }
    case PlanKind::kFilter: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              CompileBaseline(plan->children[0], join_impl));
      return RowOperatorPtr(
          new baseline::RowFilterOperator(std::move(child), plan->predicate));
    }
    case PlanKind::kProject: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              CompileBaseline(plan->children[0], join_impl));
      return RowOperatorPtr(new baseline::RowProjectOperator(
          std::move(child), plan->exprs, plan->names));
    }
    case PlanKind::kAggregate: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              CompileBaseline(plan->children[0], join_impl));
      return RowOperatorPtr(new baseline::RowHashAggregateOperator(
          std::move(child), plan->group_keys, plan->key_names,
          plan->aggregates));
    }
    case PlanKind::kJoin: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr left,
                              CompileBaseline(plan->children[0], join_impl));
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr right,
                              CompileBaseline(plan->children[1], join_impl));
      if (join_impl == BaselineJoinImpl::kSortMerge) {
        return RowOperatorPtr(new baseline::RowSortMergeJoinOperator(
            std::move(left), std::move(right), plan->left_keys,
            plan->right_keys, plan->join_type, plan->residual));
      }
      return RowOperatorPtr(new baseline::RowShuffledHashJoinOperator(
          std::move(left), std::move(right), plan->left_keys,
          plan->right_keys, plan->join_type, plan->residual));
    }
    case PlanKind::kSort: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              CompileBaseline(plan->children[0], join_impl));
      return RowOperatorPtr(
          new baseline::RowSortOperator(std::move(child), plan->sort_keys));
    }
    case PlanKind::kLimit: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              CompileBaseline(plan->children[0], join_impl));
      return RowOperatorPtr(
          new baseline::RowLimitOperator(std::move(child), plan->limit));
    }
  }
  return Status::Internal("bad plan kind");
}

}  // namespace plan
}  // namespace photon
