#include "plan/logical_plan.h"

#include "baseline/row_agg.h"
#include "baseline/row_join.h"
#include "baseline/row_ops.h"
#include "baseline/row_sort.h"
#include "expr/fusion.h"
#include "expr/program.h"
#include "ops/file_scan.h"
#include "ops/filter.h"
#include "ops/fused_filter_project.h"
#include "ops/limit.h"
#include "ops/project.h"
#include "ops/scan.h"
#include "plan/transition.h"

namespace photon {
namespace plan {
namespace {

Schema AggSchema(const std::vector<ExprPtr>& keys,
                 const std::vector<std::string>& key_names,
                 const std::vector<AggregateSpec>& aggs) {
  Schema schema;
  for (size_t i = 0; i < keys.size(); i++) {
    schema.AddField(Field(key_names[i], keys[i]->type()));
  }
  for (const AggregateSpec& spec : aggs) {
    DataType arg_type =
        spec.arg != nullptr ? spec.arg->type() : DataType::Int64();
    Result<DataType> result = AggResultType(spec.kind, arg_type);
    PHOTON_CHECK(result.ok());
    schema.AddField(Field(spec.name, *result));
  }
  return schema;
}

bool IsFusable(PlanKind kind) {
  return kind == PlanKind::kFilter || kind == PlanKind::kProject;
}

/// Depth-checks every expression hanging off one plan node (not its
/// children — CompilePhoton/CompileBaseline recurse per node, so each node
/// is checked exactly once on the way down). Gates all the recursive
/// walkers behind it: canonicalization, program flattening, tree Evaluate.
Status CheckNodeExprDepths(const PlanNode& node) {
  std::vector<const ExprPtr*> exprs;
  if (node.predicate != nullptr) exprs.push_back(&node.predicate);
  if (node.scan_predicate != nullptr) exprs.push_back(&node.scan_predicate);
  if (node.residual != nullptr) exprs.push_back(&node.residual);
  for (const ExprPtr& e : node.exprs) exprs.push_back(&e);
  for (const ExprPtr& e : node.group_keys) exprs.push_back(&e);
  for (const ExprPtr& e : node.left_keys) exprs.push_back(&e);
  for (const ExprPtr& e : node.right_keys) exprs.push_back(&e);
  for (const AggregateSpec& spec : node.aggregates) {
    if (spec.arg != nullptr) exprs.push_back(&spec.arg);
  }
  for (const SortKey& k : node.sort_keys) exprs.push_back(&k.expr);
  for (const ExprPtr* e : exprs) {
    PHOTON_RETURN_NOT_OK(CheckExpressionDepth(**e));
  }
  return Status::OK();
}

FusedStage StageOf(const PlanNode& node) {
  FusedStage stage;
  stage.is_filter = node.kind == PlanKind::kFilter;
  if (stage.is_filter) {
    stage.predicate = node.predicate;
  } else {
    stage.exprs = node.exprs;
    stage.names = node.names;
  }
  return stage;
}

}  // namespace

PlanPtr Scan(const Table* table) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kScan;
  node->table = table;
  node->output_schema = table->schema();
  return node;
}

PlanPtr DeltaScan(ObjectStore* store, DeltaSnapshot snapshot,
                  std::vector<int> columns, ExprPtr predicate,
                  io::IoOptions io) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kDeltaScan;
  node->store = store;
  node->output_schema =
      FileScanOperator::Project(snapshot.schema, columns);
  node->snapshot = std::move(snapshot);
  node->scan_columns = std::move(columns);
  node->scan_predicate = std::move(predicate);
  node->scan_io = io;
  // Planning-time stats come straight from the log's zone maps and NDV
  // sketches — no data-file reads.
  node->stats = StatsFromSnapshot(node->snapshot, node->scan_columns);
  return node;
}

PlanPtr Filter(PlanPtr child, ExprPtr predicate) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kFilter;
  node->output_schema = child->output_schema;
  node->children.push_back(std::move(child));
  node->predicate = std::move(predicate);
  return node;
}

PlanPtr Project(PlanPtr child, std::vector<ExprPtr> exprs,
                std::vector<std::string> names) {
  PHOTON_CHECK(exprs.size() == names.size());
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kProject;
  for (size_t i = 0; i < exprs.size(); i++) {
    node->output_schema.AddField(Field(names[i], exprs[i]->type()));
  }
  node->children.push_back(std::move(child));
  node->exprs = std::move(exprs);
  node->names = std::move(names);
  return node;
}

PlanPtr Aggregate(PlanPtr child, std::vector<ExprPtr> keys,
                  std::vector<std::string> key_names,
                  std::vector<AggregateSpec> aggs) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kAggregate;
  node->output_schema = AggSchema(keys, key_names, aggs);
  node->children.push_back(std::move(child));
  node->group_keys = std::move(keys);
  node->key_names = std::move(key_names);
  node->aggregates = std::move(aggs);
  return node;
}

PlanPtr Join(PlanPtr probe, PlanPtr build, JoinType type,
             std::vector<ExprPtr> probe_keys,
             std::vector<ExprPtr> build_keys, ExprPtr residual) {
  PHOTON_CHECK(probe_keys.size() == build_keys.size());
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kJoin;
  node->join_type = type;
  node->output_schema = baseline::JoinOutputSchema(
      probe->output_schema, build->output_schema, type);
  node->children.push_back(std::move(probe));
  node->children.push_back(std::move(build));
  node->left_keys = std::move(probe_keys);
  node->right_keys = std::move(build_keys);
  node->residual = std::move(residual);
  return node;
}

PlanPtr Sort(PlanPtr child, std::vector<SortKey> keys) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kSort;
  node->output_schema = child->output_schema;
  node->children.push_back(std::move(child));
  node->sort_keys = std::move(keys);
  return node;
}

PlanPtr Limit(PlanPtr child, int64_t n) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kLimit;
  node->output_schema = child->output_schema;
  node->children.push_back(std::move(child));
  node->limit = n;
  return node;
}

int ColIndex(const PlanPtr& plan, const std::string& name) {
  int idx = plan->output_schema.FieldIndex(name);
  PHOTON_CHECK(idx >= 0);
  return idx;
}

ExprPtr ColOf(const PlanPtr& plan, const std::string& name) {
  int idx = ColIndex(plan, name);
  return std::make_shared<ColumnRefExpr>(
      idx, plan->output_schema.field(idx).type, name);
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(indent * 2, ' ');
  std::string out = pad;
  switch (kind) {
    case PlanKind::kScan:
      out += "Scan";
      break;
    case PlanKind::kDeltaScan:
      out += "DeltaScan(files=" + std::to_string(snapshot.files.size()) + ")";
      break;
    case PlanKind::kFilter:
      out += "Filter(" + predicate->ToString() + ")";
      break;
    case PlanKind::kProject:
      out += "Project";
      break;
    case PlanKind::kAggregate:
      out += "Aggregate(keys=" + std::to_string(group_keys.size()) +
             ", aggs=" + std::to_string(aggregates.size()) + ")";
      break;
    case PlanKind::kJoin: {
      switch (join_type) {
        case JoinType::kInner:
          out += "Join(inner";
          break;
        case JoinType::kLeftOuter:
          out += "Join(left-outer";
          break;
        case JoinType::kLeftSemi:
          out += "Join(left-semi";
          break;
        case JoinType::kLeftAnti:
          out += "Join(left-anti";
          break;
      }
      if (residual != nullptr) out += ", residual=" + residual->ToString();
      out += ")";
      break;
    }
    case PlanKind::kSort:
      out += "Sort";
      break;
    case PlanKind::kLimit:
      out += "Limit(" + std::to_string(limit) + ")";
      break;
  }
  out += "\n";
  for (const PlanPtr& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

AggPreProject PlanAggPreProject(const PlanNode& agg) {
  AggPreProject out;
  PHOTON_CHECK(agg.kind == PlanKind::kAggregate);
  auto is_trivial = [](const ExprPtr& e) {
    return e == nullptr ||
           dynamic_cast<const ColumnRefExpr*>(e.get()) != nullptr ||
           dynamic_cast<const LiteralExpr*>(e.get()) != nullptr;
  };
  bool any = false;
  for (const AggregateSpec& spec : agg.aggregates) {
    if (!is_trivial(spec.arg)) {
      any = true;
      break;
    }
  }
  if (!any) return out;

  // One project slot per distinct key/argument expression; duplicates
  // (canonical form, column refs by index) share a slot, so e.g. Q1's
  // repeated price*(1-disc) is evaluated once per row.
  std::vector<ExprPtr> slots;
  std::vector<std::string> slot_names;
  std::vector<std::string> slot_keys;
  auto slot_of = [&](const ExprPtr& e) -> ExprPtr {
    std::string key = ExprCanonKey(*e);
    for (size_t i = 0; i < slot_keys.size(); i++) {
      if (slot_keys[i] == key) {
        return std::make_shared<ColumnRefExpr>(static_cast<int>(i),
                                               slots[i]->type(),
                                               slot_names[i]);
      }
    }
    int idx = static_cast<int>(slots.size());
    slots.push_back(e);
    slot_keys.push_back(std::move(key));
    slot_names.push_back("_p" + std::to_string(idx));
    return std::make_shared<ColumnRefExpr>(idx, e->type(), slot_names[idx]);
  };

  out.keys.reserve(agg.group_keys.size());
  for (const ExprPtr& k : agg.group_keys) out.keys.push_back(slot_of(k));
  out.aggregates = agg.aggregates;
  for (AggregateSpec& spec : out.aggregates) {
    // Literal arguments reference no input; keep them in the spec.
    if (spec.arg == nullptr ||
        dynamic_cast<const LiteralExpr*>(spec.arg.get()) != nullptr) {
      continue;
    }
    spec.arg = slot_of(spec.arg);
  }
  out.input = Project(agg.children[0], std::move(slots),
                      std::move(slot_names));
  out.fired = true;
  return out;
}

Result<OperatorPtr> CompilePhoton(const PlanPtr& plan, ExecContext ctx) {
  PHOTON_RETURN_NOT_OK(CheckNodeExprDepths(*plan));
  switch (plan->kind) {
    case PlanKind::kScan:
      return OperatorPtr(new InMemoryScanOperator(plan->table));
    case PlanKind::kDeltaScan:
      return OperatorPtr(new DeltaScanOperator(plan->store, plan->snapshot,
                                               plan->scan_columns,
                                               plan->scan_predicate,
                                               plan->scan_io));
    case PlanKind::kFilter:
    case PlanKind::kProject: {
      if (ctx.expr_policy != ExprPolicy::kTreeOnly) {
        // Fusion pass: collapse the maximal run of filter/project nodes
        // ending here into one FusedUnit (DESIGN.md §12). `cur` walks to
        // the first non-fusable descendant; stages are fed bottom-up.
        const PlanPtr* cur = &plan;
        std::vector<const PlanNode*> run;
        while (IsFusable((*cur)->kind)) {
          run.push_back(cur->get());
          cur = &(*cur)->children[0];
        }
        std::vector<FusedStage> stages;
        stages.reserve(run.size());
        for (auto it = run.rbegin(); it != run.rend(); ++it) {
          stages.push_back(StageOf(**it));
        }
        Result<std::shared_ptr<const FusedUnit>> unit =
            FusedUnit::Compile(stages, (*cur)->output_schema);
        if (unit.ok()) {
          PHOTON_ASSIGN_OR_RETURN(OperatorPtr child, CompilePhoton(*cur, ctx));
          return OperatorPtr(new FusedFilterProjectOperator(
              std::move(child), std::move(*unit), ctx.expr_policy));
        }
        // Unsupported expression somewhere in the run: fall through to the
        // per-node operators (sub-runs below still get their own chance).
      }
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr child,
                              CompilePhoton(plan->children[0], ctx));
      if (plan->kind == PlanKind::kFilter) {
        return OperatorPtr(
            new FilterOperator(std::move(child), plan->predicate));
      }
      return OperatorPtr(
          new ProjectOperator(std::move(child), plan->exprs, plan->names));
    }
    case PlanKind::kAggregate: {
      AggPreProject pre;
      if (ctx.expr_policy != ExprPolicy::kTreeOnly) {
        pre = PlanAggPreProject(*plan);
      }
      const PlanPtr& input = pre.fired ? pre.input : plan->children[0];
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr child, CompilePhoton(input, ctx));
      return OperatorPtr(new HashAggregateOperator(
          std::move(child), pre.fired ? pre.keys : plan->group_keys,
          plan->key_names, pre.fired ? pre.aggregates : plan->aggregates,
          ctx));
    }
    case PlanKind::kJoin: {
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr probe,
                              CompilePhoton(plan->children[0], ctx));
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr build,
                              CompilePhoton(plan->children[1], ctx));
      return OperatorPtr(new HashJoinOperator(
          std::move(build), std::move(probe), plan->right_keys,
          plan->left_keys, plan->join_type, ctx, plan->residual));
    }
    case PlanKind::kSort: {
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr child,
                              CompilePhoton(plan->children[0], ctx));
      return OperatorPtr(
          new SortOperator(std::move(child), plan->sort_keys, ctx));
    }
    case PlanKind::kLimit: {
      PHOTON_ASSIGN_OR_RETURN(OperatorPtr child,
                              CompilePhoton(plan->children[0], ctx));
      return OperatorPtr(new LimitOperator(std::move(child), plan->limit));
    }
  }
  return Status::Internal("bad plan kind");
}

Result<baseline::RowOperatorPtr> CompileBaseline(
    const PlanPtr& plan, BaselineJoinImpl join_impl) {
  using baseline::RowOperatorPtr;
  PHOTON_RETURN_NOT_OK(CheckNodeExprDepths(*plan));
  switch (plan->kind) {
    case PlanKind::kScan:
      return RowOperatorPtr(new baseline::RowScanOperator(plan->table));
    case PlanKind::kDeltaScan: {
      // Spark's scan also produces columnar data and pivots to rows (§5.2):
      // the baseline reads through the columnar scan wrapped in a
      // transition node.
      OperatorPtr scan(new DeltaScanOperator(plan->store, plan->snapshot,
                                             plan->scan_columns,
                                             plan->scan_predicate,
                                             plan->scan_io));
      return RowOperatorPtr(new TransitionOperator(std::move(scan)));
    }
    case PlanKind::kFilter: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              CompileBaseline(plan->children[0], join_impl));
      return RowOperatorPtr(
          new baseline::RowFilterOperator(std::move(child), plan->predicate));
    }
    case PlanKind::kProject: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              CompileBaseline(plan->children[0], join_impl));
      return RowOperatorPtr(new baseline::RowProjectOperator(
          std::move(child), plan->exprs, plan->names));
    }
    case PlanKind::kAggregate: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              CompileBaseline(plan->children[0], join_impl));
      return RowOperatorPtr(new baseline::RowHashAggregateOperator(
          std::move(child), plan->group_keys, plan->key_names,
          plan->aggregates));
    }
    case PlanKind::kJoin: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr left,
                              CompileBaseline(plan->children[0], join_impl));
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr right,
                              CompileBaseline(plan->children[1], join_impl));
      if (join_impl == BaselineJoinImpl::kSortMerge) {
        return RowOperatorPtr(new baseline::RowSortMergeJoinOperator(
            std::move(left), std::move(right), plan->left_keys,
            plan->right_keys, plan->join_type, plan->residual));
      }
      return RowOperatorPtr(new baseline::RowShuffledHashJoinOperator(
          std::move(left), std::move(right), plan->left_keys,
          plan->right_keys, plan->join_type, plan->residual));
    }
    case PlanKind::kSort: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              CompileBaseline(plan->children[0], join_impl));
      return RowOperatorPtr(
          new baseline::RowSortOperator(std::move(child), plan->sort_keys));
    }
    case PlanKind::kLimit: {
      PHOTON_ASSIGN_OR_RETURN(RowOperatorPtr child,
                              CompileBaseline(plan->children[0], join_impl));
      return RowOperatorPtr(
          new baseline::RowLimitOperator(std::move(child), plan->limit));
    }
  }
  return Status::Internal("bad plan kind");
}

}  // namespace plan
}  // namespace photon
