#ifndef PHOTON_PLAN_LOGICAL_PLAN_H_
#define PHOTON_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/row_operator.h"
#include "expr/expr.h"
#include "ops/hash_aggregate.h"
#include "ops/hash_join.h"
#include "ops/sort.h"
#include "plan/table_stats.h"
#include "storage/delta.h"
#include "vector/table.h"

namespace photon {
namespace plan {

/// Engine-neutral logical operator kinds. A logical plan compiles to either
/// engine (CompilePhoton / CompileBaseline), which is how the repository
/// reproduces the paper's "identical logical plans during execution" setup
/// for every head-to-head experiment (§6.2).
enum class PlanKind : uint8_t {
  kScan,       // in-memory table
  kDeltaScan,  // Delta table snapshot with pruning
  kFilter,
  kProject,
  kAggregate,
  kJoin,
  kSort,
  kLimit,
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// One logical plan node. Field usage depends on `kind`; unused fields stay
/// default-initialized. Kept as a plain struct (a la Spark's TreeNode) so
/// the converter can pattern-match cheaply.
struct PlanNode {
  PlanKind kind;
  std::vector<PlanPtr> children;
  Schema output_schema;

  // kScan
  const Table* table = nullptr;

  // kDeltaScan
  ObjectStore* store = nullptr;
  DeltaSnapshot snapshot;
  std::vector<int> scan_columns;   // projection pushdown (empty = all)
  ExprPtr scan_predicate;          // pushdown predicate for skipping
  io::IoOptions scan_io;           // block cache / prefetch wiring (src/io)

  // kFilter
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;

  // kAggregate
  std::vector<ExprPtr> group_keys;
  std::vector<std::string> key_names;
  std::vector<AggregateSpec> aggregates;

  // kJoin: children[0] = probe/left (streamed), children[1] = build/right.
  JoinType join_type = JoinType::kInner;
  std::vector<ExprPtr> left_keys;
  std::vector<ExprPtr> right_keys;
  ExprPtr residual;  // extra non-equi condition over [left cols, right cols]

  // kSort
  std::vector<SortKey> sort_keys;

  // kLimit
  int64_t limit = 0;

  /// Optional statistics for scan leaves, over output_schema's columns.
  /// The DeltaScan builder fills this from the snapshot's zone maps + NDV
  /// sketches; in-memory Scan leaves get it from the catalog path (plangen,
  /// tests) via ComputeTableStats. Row counts alone are derivable without
  /// it (table / snapshot row counts); this adds NDV and min/max.
  TableStatsPtr stats;

  std::string ToString(int indent = 0) const;
};

// Construction helpers (each computes the node's output schema).
PlanPtr Scan(const Table* table);
PlanPtr DeltaScan(ObjectStore* store, DeltaSnapshot snapshot,
                  std::vector<int> columns = {}, ExprPtr predicate = nullptr,
                  io::IoOptions io = {});
PlanPtr Filter(PlanPtr child, ExprPtr predicate);
PlanPtr Project(PlanPtr child, std::vector<ExprPtr> exprs,
                std::vector<std::string> names);
PlanPtr Aggregate(PlanPtr child, std::vector<ExprPtr> keys,
                  std::vector<std::string> key_names,
                  std::vector<AggregateSpec> aggs);
PlanPtr Join(PlanPtr probe, PlanPtr build, JoinType type,
             std::vector<ExprPtr> probe_keys, std::vector<ExprPtr> build_keys,
             ExprPtr residual = nullptr);
PlanPtr Sort(PlanPtr child, std::vector<SortKey> keys);
PlanPtr Limit(PlanPtr child, int64_t n);

/// Convenience: column reference into a plan's output schema by name.
ExprPtr ColOf(const PlanPtr& plan, const std::string& name);
int ColIndex(const PlanPtr& plan, const std::string& name);

/// Compiles to a Photon physical operator tree.
Result<OperatorPtr> CompilePhoton(const PlanPtr& plan, ExecContext ctx = {});

/// Result of the aggregate pre-projection rewrite (DESIGN.md §12): when an
/// aggregate computes non-trivial argument expressions (e.g. Q1's
/// price*(1-disc) terms), those move into a Project below the aggregate —
/// where they fuse with the scan-side filter chain and share subexpressions
/// — and the aggregate consumes plain column references.
struct AggPreProject {
  bool fired = false;
  PlanPtr input;  // project over the aggregate's child (set iff fired)
  std::vector<ExprPtr> keys;
  std::vector<AggregateSpec> aggregates;
};

/// Plans the rewrite for `agg` (must be kAggregate). Fires only when at
/// least one aggregate argument is a non-trivial expression; plans whose
/// keys and arguments are all column refs / literals are left untouched,
/// so their physical shape (and profile tree) is unchanged.
AggPreProject PlanAggPreProject(const PlanNode& agg);

/// Which baseline join implementation to use (Figure 4 compares both).
enum class BaselineJoinImpl : uint8_t { kSortMerge, kShuffledHash };

/// Compiles to a baseline row operator tree.
Result<baseline::RowOperatorPtr> CompileBaseline(
    const PlanPtr& plan,
    BaselineJoinImpl join_impl = BaselineJoinImpl::kSortMerge);

}  // namespace plan
}  // namespace photon

#endif  // PHOTON_PLAN_LOGICAL_PLAN_H_
