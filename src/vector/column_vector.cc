#include "vector/column_vector.h"

#include "common/string_util.h"

namespace photon {

bool ColumnVector::ComputeHasNulls(const int32_t* pos_list, int num_rows,
                                   bool all_active) {
  if (has_nulls_ != TriState::kUnknown) {
    return has_nulls_ == TriState::kYes;
  }
  const uint8_t* PHOTON_RESTRICT n = nulls();
  uint8_t acc = 0;
  if (all_active) {
    for (int i = 0; i < num_rows; i++) acc |= n[i];
  } else {
    for (int i = 0; i < num_rows; i++) acc |= n[pos_list[i]];
  }
  has_nulls_ = acc ? TriState::kYes : TriState::kNo;
  return acc != 0;
}

bool ColumnVector::ComputeAllAscii(const int32_t* pos_list, int num_rows,
                                   bool all_active) {
  PHOTON_DCHECK(type_.is_string());
  if (all_ascii_ != TriState::kUnknown) {
    return all_ascii_ == TriState::kYes;
  }
  const StringRef* strs = data<StringRef>();
  const uint8_t* n = nulls();
  bool ascii = true;
  for (int i = 0; i < num_rows && ascii; i++) {
    int row = all_active ? i : pos_list[i];
    if (n[row]) continue;
    ascii = IsAscii(strs[row].data, strs[row].len);
  }
  all_ascii_ = ascii ? TriState::kYes : TriState::kNo;
  return ascii;
}

Value ColumnVector::GetValue(int row) const {
  if (IsNull(row)) return Value::Null();
  switch (type_.id()) {
    case TypeId::kBoolean:
      return Value::Boolean(data<uint8_t>()[row] != 0);
    case TypeId::kInt32:
      return Value::Int32(data<int32_t>()[row]);
    case TypeId::kInt64:
      return Value::Int64(data<int64_t>()[row]);
    case TypeId::kFloat64:
      return Value::Float64(data<double>()[row]);
    case TypeId::kDate32:
      return Value::Date32(data<int32_t>()[row]);
    case TypeId::kTimestamp:
      return Value::Timestamp(data<int64_t>()[row]);
    case TypeId::kString: {
      StringRef s = GetString(row);
      return Value::String(std::string(s.data, s.len));
    }
    case TypeId::kDecimal128:
      return Value::Decimal(Decimal128(data<int128_t>()[row]));
  }
  return Value::Null();
}

void ColumnVector::SetValue(int row, const Value& v) {
  if (v.is_null()) {
    SetNull(row);
    return;
  }
  SetNotNull(row);
  switch (type_.id()) {
    case TypeId::kBoolean:
      data<uint8_t>()[row] = v.boolean() ? 1 : 0;
      break;
    case TypeId::kInt32:
    case TypeId::kDate32:
      data<int32_t>()[row] = v.i32();
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      data<int64_t>()[row] = v.i64();
      break;
    case TypeId::kFloat64:
      data<double>()[row] = v.f64();
      break;
    case TypeId::kString:
      SetString(row, v.str());
      break;
    case TypeId::kDecimal128:
      data<int128_t>()[row] = v.decimal().value();
      break;
  }
}

}  // namespace photon
