#ifndef PHOTON_VECTOR_VAR_LEN_POOL_H_
#define PHOTON_VECTOR_VAR_LEN_POOL_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "types/data_type.h"
#include "vector/buffer.h"

namespace photon {

/// Append-only arena for variable-length (string) data (§4.5). Freed
/// wholesale before each new batch is processed; individual strings are
/// never freed. Chunked so appends never invalidate previously returned
/// pointers.
class VarLenPool {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit VarLenPool(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  /// Copies `len` bytes into the arena and returns a stable ref.
  StringRef AddString(const char* data, int32_t len) {
    char* dst = AllocateBytes(len);
    if (len > 0) std::memcpy(dst, data, len);
    return StringRef(dst, len);
  }
  StringRef AddString(const StringRef& s) {
    return AddString(s.data, s.len);
  }

  /// Reserves `len` writable bytes (caller fills them in).
  char* AllocateBytes(int32_t len) {
    if (len == 0) {
      static char kEmpty = 0;
      return &kEmpty;
    }
    if (current_ == nullptr ||
        used_ + static_cast<size_t>(len) > current_->capacity()) {
      NewChunk(static_cast<size_t>(len));
    }
    char* out = reinterpret_cast<char*>(current_->data()) + used_;
    used_ += static_cast<size_t>(len);
    total_bytes_ += static_cast<size_t>(len);
    return out;
  }

  /// Drops all strings; chunk memory of the first chunk is retained so the
  /// per-batch steady state does not reallocate.
  void Reset() {
    if (chunks_.size() > 1) {
      chunks_.resize(1);
    }
    current_ = chunks_.empty() ? nullptr : chunks_[0].get();
    used_ = 0;
    total_bytes_ = 0;
  }

  size_t total_bytes() const { return total_bytes_; }

 private:
  void NewChunk(size_t min_bytes) {
    size_t bytes = chunk_bytes_;
    while (bytes < min_bytes) bytes *= 2;
    chunks_.push_back(std::make_unique<Buffer>(bytes));
    current_ = chunks_.back().get();
    used_ = 0;
  }

  size_t chunk_bytes_;
  std::vector<std::unique_ptr<Buffer>> chunks_;
  Buffer* current_ = nullptr;
  size_t used_ = 0;
  size_t total_bytes_ = 0;
};

}  // namespace photon

#endif  // PHOTON_VECTOR_VAR_LEN_POOL_H_
