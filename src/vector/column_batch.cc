#include "vector/column_batch.h"

#include <sstream>

namespace photon {

std::string ColumnBatch::ToString() const {
  std::ostringstream out;
  out << "batch[" << num_active_ << "/" << num_rows_ << " active]\n";
  for (int i = 0; i < num_active_ && i < 20; i++) {
    int row = ActiveRow(i);
    out << "  ";
    for (int c = 0; c < num_columns(); c++) {
      if (c > 0) out << ", ";
      out << columns_[c]->GetValue(row).ToString(schema_.field(c).type);
    }
    out << "\n";
  }
  if (num_active_ > 20) out << "  ... (" << num_active_ - 20 << " more)\n";
  return out.str();
}

namespace {

template <typename T>
void GatherFixed(const ColumnVector& src, const int32_t* pos, int n,
                 ColumnVector* dst) {
  const T* PHOTON_RESTRICT in = src.data<T>();
  T* PHOTON_RESTRICT out = dst->data<T>();
  for (int i = 0; i < n; i++) out[i] = in[pos[i]];
}

}  // namespace

std::unique_ptr<ColumnBatch> CompactBatch(const ColumnBatch& src) {
  auto dst = std::make_unique<ColumnBatch>(src.schema(), src.capacity());
  int n = src.num_active();
  const int32_t* pos = src.pos_list();
  // Materialize the active positions even if the source is all-active, so
  // the gather kernels have a single shape.
  std::vector<int32_t> identity;
  if (src.all_active()) {
    identity.resize(n);
    for (int i = 0; i < n; i++) identity[i] = i;
    pos = identity.data();
  }

  for (int c = 0; c < src.num_columns(); c++) {
    const ColumnVector& in = *src.column(c);
    ColumnVector* out = dst->column(c);
    const uint8_t* in_nulls = in.nulls();
    uint8_t* out_nulls = out->nulls();
    for (int i = 0; i < n; i++) out_nulls[i] = in_nulls[pos[i]];

    switch (in.type().id()) {
      case TypeId::kBoolean:
        GatherFixed<uint8_t>(in, pos, n, out);
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        GatherFixed<int32_t>(in, pos, n, out);
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        GatherFixed<int64_t>(in, pos, n, out);
        break;
      case TypeId::kFloat64:
        GatherFixed<double>(in, pos, n, out);
        break;
      case TypeId::kDecimal128:
        GatherFixed<int128_t>(in, pos, n, out);
        break;
      case TypeId::kString: {
        const StringRef* in_strs = in.data<StringRef>();
        for (int i = 0; i < n; i++) {
          if (!out_nulls[i]) {
            out->SetString(i, in_strs[pos[i]].data, in_strs[pos[i]].len);
          } else {
            out->SetStringRef(i, StringRef());
          }
        }
        break;
      }
    }
    // Compaction preserves NULL-ness and ASCII-ness of the active set.
    out->set_has_nulls(in.has_nulls());
    out->set_all_ascii(in.all_ascii());
  }
  dst->set_num_rows(n);
  dst->SetAllActive();
  return dst;
}

void CopyRow(const ColumnBatch& src, int src_row, ColumnBatch* dst,
             int dst_row) {
  for (int c = 0; c < src.num_columns(); c++) {
    const ColumnVector& in = *src.column(c);
    ColumnVector* out = dst->column(c);
    if (in.IsNull(src_row)) {
      out->SetNull(dst_row);
      continue;
    }
    out->SetNotNull(dst_row);
    switch (in.type().id()) {
      case TypeId::kBoolean:
        out->data<uint8_t>()[dst_row] = in.data<uint8_t>()[src_row];
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        out->data<int32_t>()[dst_row] = in.data<int32_t>()[src_row];
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        out->data<int64_t>()[dst_row] = in.data<int64_t>()[src_row];
        break;
      case TypeId::kFloat64:
        out->data<double>()[dst_row] = in.data<double>()[src_row];
        break;
      case TypeId::kDecimal128:
        out->data<int128_t>()[dst_row] = in.data<int128_t>()[src_row];
        break;
      case TypeId::kString: {
        StringRef s = in.GetString(src_row);
        out->SetString(dst_row, s.data, s.len);
        break;
      }
    }
  }
}

}  // namespace photon
