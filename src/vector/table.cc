#include "vector/table.h"

namespace photon {

std::vector<Value> Table::GetRow(int64_t row) const {
  for (const auto& b : batches_) {
    if (row < b->num_active()) {
      std::vector<Value> out;
      out.reserve(b->num_columns());
      int r = b->ActiveRow(static_cast<int>(row));
      for (int c = 0; c < b->num_columns(); c++) {
        out.push_back(b->column(c)->GetValue(r));
      }
      return out;
    }
    row -= b->num_active();
  }
  PHOTON_CHECK(false);
  return {};
}

std::vector<std::vector<Value>> Table::ToRows() const {
  std::vector<std::vector<Value>> out;
  out.reserve(static_cast<size_t>(num_rows()));
  for (const auto& b : batches_) {
    for (int i = 0; i < b->num_active(); i++) {
      int r = b->ActiveRow(i);
      std::vector<Value> row;
      row.reserve(b->num_columns());
      for (int c = 0; c < b->num_columns(); c++) {
        row.push_back(b->column(c)->GetValue(r));
      }
      out.push_back(std::move(row));
    }
  }
  return out;
}

void TableBuilder::AppendRow(const std::vector<Value>& row) {
  PHOTON_CHECK(static_cast<int>(row.size()) == table_.schema().num_fields());
  if (current_ == nullptr) {
    current_ = std::make_unique<ColumnBatch>(table_.schema(), batch_size_);
    current_rows_ = 0;
  }
  for (size_t c = 0; c < row.size(); c++) {
    current_->column(static_cast<int>(c))
        ->SetValue(current_rows_, row[c]);
  }
  current_rows_++;
  if (current_rows_ == batch_size_) SealBatch();
}

void TableBuilder::SealBatch() {
  if (current_ == nullptr) return;
  current_->set_num_rows(current_rows_);
  current_->SetAllActive();
  table_.AppendBatch(std::move(current_));
  current_ = nullptr;
  current_rows_ = 0;
}

Table TableBuilder::Finish() {
  SealBatch();
  return std::move(table_);
}

}  // namespace photon
