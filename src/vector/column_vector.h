#ifndef PHOTON_VECTOR_COLUMN_VECTOR_H_
#define PHOTON_VECTOR_COLUMN_VECTOR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/macros.h"
#include "types/data_type.h"
#include "types/value.h"
#include "vector/buffer.h"
#include "vector/var_len_pool.h"

namespace photon {

/// Tri-state batch-level metadata used for adaptive kernel dispatch (§4.6).
enum class TriState : uint8_t { kUnknown = 0, kYes = 1, kNo = 2 };

/// A single column holding one batch worth of values (§4.1): a contiguous
/// values buffer, a byte vector marking NULL-ness (1 = NULL), and
/// batch-level metadata such as whether any NULLs are present and whether
/// all string values are ASCII.
///
/// Fixed-width types store raw primitives; strings store StringRef entries
/// whose bytes live in the vector's VarLenPool (or external stable memory).
class ColumnVector {
 public:
  ColumnVector(DataType type, int capacity)
      : type_(type),
        capacity_(capacity),
        values_(static_cast<size_t>(capacity) * type.byte_width()),
        nulls_(static_cast<size_t>(capacity)) {
    nulls_.ZeroFill();
    if (type.is_var_len()) var_pool_ = std::make_unique<VarLenPool>();
  }

  ColumnVector(const ColumnVector&) = delete;
  ColumnVector& operator=(const ColumnVector&) = delete;

  const DataType& type() const { return type_; }
  int capacity() const { return capacity_; }

  /// Raw typed access to the values buffer.
  template <typename T>
  T* data() {
    return values_.as<T>();
  }
  template <typename T>
  const T* data() const {
    return values_.as<T>();
  }

  uint8_t* nulls() { return nulls_.as<uint8_t>(); }
  const uint8_t* nulls() const { return nulls_.as<uint8_t>(); }

  bool IsNull(int row) const { return nulls()[row] != 0; }
  void SetNull(int row) {
    nulls()[row] = 1;
    has_nulls_ = TriState::kYes;
  }
  void SetNotNull(int row) { nulls()[row] = 0; }

  /// Batch-level metadata ------------------------------------------------

  /// Whether any active row is NULL. kUnknown forces the conservative
  /// kernel; producers that know better set kNo to unlock the fast path.
  TriState has_nulls() const { return has_nulls_; }
  void set_has_nulls(TriState v) { has_nulls_ = v; }

  /// Whether all active string values are pure ASCII.
  TriState all_ascii() const { return all_ascii_; }
  void set_all_ascii(TriState v) { all_ascii_ = v; }

  /// Scans the null bytes of the given active rows and caches the result.
  /// This is the "discover batch properties at runtime" step of §4.6.
  bool ComputeHasNulls(const int32_t* pos_list, int num_rows,
                       bool all_active);

  /// Scans active string values for non-ASCII bytes and caches the result.
  bool ComputeAllAscii(const int32_t* pos_list, int num_rows,
                       bool all_active);

  void ResetMetadata() {
    has_nulls_ = TriState::kUnknown;
    all_ascii_ = TriState::kUnknown;
  }

  /// Variable-length storage ---------------------------------------------

  VarLenPool* var_pool() {
    PHOTON_DCHECK(var_pool_ != nullptr);
    return var_pool_.get();
  }

  /// Copies a string into the pool and stores the ref at `row`.
  void SetString(int row, const char* s, int32_t len) {
    data<StringRef>()[row] = var_pool_->AddString(s, len);
  }
  void SetString(int row, const std::string& s) {
    SetString(row, s.data(), static_cast<int32_t>(s.size()));
  }
  /// Stores a ref without copying; caller guarantees the bytes outlive the
  /// vector (used by zero-copy scans and dictionary-backed data).
  void SetStringRef(int row, StringRef ref) { data<StringRef>()[row] = ref; }

  StringRef GetString(int row) const { return data<StringRef>()[row]; }

  /// Boxed access for tests, debugging, and the transition node.
  Value GetValue(int row) const;
  void SetValue(int row, const Value& v);

 private:
  DataType type_;
  int capacity_;
  Buffer values_;
  Buffer nulls_;
  std::unique_ptr<VarLenPool> var_pool_;
  TriState has_nulls_ = TriState::kUnknown;
  TriState all_ascii_ = TriState::kUnknown;
};

}  // namespace photon

#endif  // PHOTON_VECTOR_COLUMN_VECTOR_H_
