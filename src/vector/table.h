#ifndef PHOTON_VECTOR_TABLE_H_
#define PHOTON_VECTOR_TABLE_H_

#include <memory>
#include <vector>

#include "types/value.h"
#include "vector/column_batch.h"

namespace photon {

/// An in-memory table: a schema plus a sequence of dense (all-active)
/// column batches. Used as scan input for micro-benchmarks ("we read from
/// an in-memory table to isolate the effects of Photon's execution
/// improvements", §6.1), as test fixtures, and as the materialized output
/// of queries.
class Table {
 public:
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  const Schema& schema() const { return schema_; }
  int num_batches() const { return static_cast<int>(batches_.size()); }
  const ColumnBatch& batch(int i) const { return *batches_[i]; }
  ColumnBatch* mutable_batch(int i) { return batches_[i].get(); }

  int64_t num_rows() const {
    int64_t n = 0;
    for (const auto& b : batches_) n += b->num_active();
    return n;
  }

  void AppendBatch(std::unique_ptr<ColumnBatch> batch) {
    batches_.push_back(std::move(batch));
  }

  /// Boxed row access across batch boundaries (test/debug convenience).
  std::vector<Value> GetRow(int64_t row) const;

  /// Flattens into a single vector of rows for oracle comparisons.
  std::vector<std::vector<Value>> ToRows() const;

 private:
  Schema schema_;
  std::vector<std::unique_ptr<ColumnBatch>> batches_;
};

/// Builds a table one boxed row at a time; batches are sealed at capacity.
/// Intended for fixtures and generators, not hot paths.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema, int batch_size = kDefaultBatchSize)
      : table_(schema), batch_size_(batch_size) {}

  void AppendRow(const std::vector<Value>& row);
  Table Finish();

 private:
  void SealBatch();

  Table table_;
  int batch_size_;
  std::unique_ptr<ColumnBatch> current_;
  int current_rows_ = 0;
};

}  // namespace photon

#endif  // PHOTON_VECTOR_TABLE_H_
