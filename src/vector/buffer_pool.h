#ifndef PHOTON_VECTOR_BUFFER_POOL_H_
#define PHOTON_VECTOR_BUFFER_POOL_H_

#include <cstdint>
#include <vector>

#include "vector/buffer.h"

namespace photon {

/// Most-recently-used buffer cache for transient per-batch allocations
/// (§4.5). Because the operator tree is fixed during execution, the number
/// of vector allocations per input batch is fixed, so a small MRU cache
/// keeps hot memory in use across batches and avoids OS-level allocation on
/// the per-batch path.
///
/// Buffers are bucketed by power-of-two size class; Release pushes onto the
/// class's stack, Allocate pops the most recently released buffer.
class BufferPool {
 public:
  BufferPool() : free_lists_(kNumClasses) {}

  /// Returns a buffer of at least `size` bytes, reusing a cached one if the
  /// size class has any. Contents are unspecified.
  Buffer Allocate(size_t size) {
    int cls = SizeClass(size);
    auto& list = free_lists_[cls];
    if (!list.empty()) {
      Buffer buf = std::move(list.back());
      list.pop_back();
      hits_++;
      cached_bytes_ -= buf.capacity();
      return buf;
    }
    misses_++;
    return Buffer(ClassBytes(cls));
  }

  /// Returns a buffer to the pool for reuse (MRU order).
  void Release(Buffer buf) {
    if (buf.empty()) return;
    int cls = SizeClass(buf.capacity());
    // Only cache buffers that exactly fit their class so Allocate's
    // guarantee (capacity >= class size) holds.
    if (buf.capacity() < ClassBytes(cls)) return;
    cached_bytes_ += buf.capacity();
    free_lists_[cls].push_back(std::move(buf));
    TrimIfNeeded();
  }

  void Clear() {
    for (auto& list : free_lists_) list.clear();
    cached_bytes_ = 0;
  }

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  size_t cached_bytes() const { return cached_bytes_; }

  /// Caps cached memory; least-recently-used buffers are dropped first.
  void set_max_cached_bytes(size_t bytes) {
    max_cached_bytes_ = bytes;
    TrimIfNeeded();
  }

 private:
  static constexpr int kMinClassLog2 = 6;   // 64 B
  static constexpr int kMaxClassLog2 = 30;  // 1 GiB
  static constexpr int kNumClasses = kMaxClassLog2 - kMinClassLog2 + 1;

  static int SizeClass(size_t size) {
    int log2 = kMinClassLog2;
    while ((size_t{1} << log2) < size && log2 < kMaxClassLog2) log2++;
    return log2 - kMinClassLog2;
  }
  static size_t ClassBytes(int cls) {
    return size_t{1} << (cls + kMinClassLog2);
  }

  void TrimIfNeeded() {
    // Evict from the front (least recently released) of the largest lists.
    while (cached_bytes_ > max_cached_bytes_) {
      for (int cls = kNumClasses - 1; cls >= 0; cls--) {
        if (!free_lists_[cls].empty()) {
          cached_bytes_ -= free_lists_[cls].front().capacity();
          free_lists_[cls].erase(free_lists_[cls].begin());
          break;
        }
      }
      if (cached_bytes_ == 0) break;
    }
  }

  std::vector<std::vector<Buffer>> free_lists_;
  size_t cached_bytes_ = 0;
  size_t max_cached_bytes_ = 256 * 1024 * 1024;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace photon

#endif  // PHOTON_VECTOR_BUFFER_POOL_H_
