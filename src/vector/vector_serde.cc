#include "vector/vector_serde.h"

#include <cstdlib>

namespace photon {
namespace {

// 256-entry nibble table: 0xFF marks non-hex bytes. Keeps the per-block
// UUID detection + encoding passes cheap enough that adaptivity wins
// (Table 1's runtime benefit depends on this path being near-memcpy speed).
struct HexLut {
  uint8_t v[256];
  constexpr HexLut() : v() {
    for (int i = 0; i < 256; i++) v[i] = 0xFF;
    for (int i = 0; i < 10; i++) v['0' + i] = static_cast<uint8_t>(i);
    for (int i = 0; i < 6; i++) {
      v['a' + i] = static_cast<uint8_t>(10 + i);
      v['A' + i] = static_cast<uint8_t>(10 + i);
    }
  }
};
constexpr HexLut kHexLut;

uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

bool ParseInt64(const char* s, int32_t len, int64_t* out) {
  if (len == 0 || len > 20) return false;
  int i = 0;
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    i = 1;
    if (len == 1) return false;
  }
  uint64_t mag = 0;
  for (; i < len; i++) {
    if (s[i] < '0' || s[i] > '9') return false;
    uint64_t next = mag * 10 + static_cast<uint64_t>(s[i] - '0');
    if (next < mag) return false;  // overflow
    mag = next;
  }
  if (!neg && mag > static_cast<uint64_t>(INT64_MAX)) return false;
  if (neg && mag > static_cast<uint64_t>(INT64_MAX) + 1) return false;
  *out = neg ? -static_cast<int64_t>(mag) : static_cast<int64_t>(mag);
  return true;
}

}  // namespace

bool ParseUuid(const char* s, int32_t len, uint8_t out[16]) {
  if (len != 36) return false;
  if (s[8] != '-' || s[13] != '-' || s[18] != '-' || s[23] != '-') {
    return false;
  }
  // Hex byte positions of the canonical 8-4-4-4-12 layout, unrolled into a
  // branchless accumulate-and-check loop.
  static constexpr int kPos[16] = {0,  2,  4,  6,  9,  11, 14, 16,
                                   19, 21, 24, 26, 28, 30, 32, 34};
  uint8_t bad = 0;
  for (int b = 0; b < 16; b++) {
    uint8_t hi = kHexLut.v[static_cast<uint8_t>(s[kPos[b]])];
    uint8_t lo = kHexLut.v[static_cast<uint8_t>(s[kPos[b] + 1])];
    bad |= hi | lo;
    out[b] = static_cast<uint8_t>((hi << 4) | lo);
  }
  return (bad & 0x80) == 0;  // any 0xFF nibble sets the high bit
}

void FormatUuid(const uint8_t in[16], char out[36]) {
  static const char* kHex = "0123456789abcdef";
  int pos = 0;
  for (int i = 0; i < 16; i++) {
    if (i == 4 || i == 6 || i == 8 || i == 10) out[pos++] = '-';
    out[pos++] = kHex[in[i] >> 4];
    out[pos++] = kHex[in[i] & 0xF];
  }
}

bool DetectUuidColumn(const ColumnBatch& batch, int col) {
  const ColumnVector& cv = *batch.column(col);
  if (!cv.type().is_string()) return false;
  uint8_t tmp[16];
  bool saw_value = false;
  for (int i = 0; i < batch.num_active(); i++) {
    int row = batch.ActiveRow(i);
    if (cv.IsNull(row)) continue;
    StringRef s = cv.GetString(row);
    if (!ParseUuid(s.data, s.len, tmp)) return false;
    saw_value = true;
  }
  return saw_value;
}

bool DetectIntStringColumn(const ColumnBatch& batch, int col) {
  const ColumnVector& cv = *batch.column(col);
  if (!cv.type().is_string()) return false;
  int64_t tmp;
  bool saw_value = false;
  for (int i = 0; i < batch.num_active(); i++) {
    int row = batch.ActiveRow(i);
    if (cv.IsNull(row)) continue;
    StringRef s = cv.GetString(row);
    if (!ParseInt64(s.data, s.len, &tmp)) return false;
    saw_value = true;
  }
  return saw_value;
}

std::vector<ColumnEncoding> ChooseAdaptiveEncodings(
    const ColumnBatch& batch) {
  std::vector<ColumnEncoding> out(batch.num_columns(),
                                  ColumnEncoding::kPlain);
  for (int c = 0; c < batch.num_columns(); c++) {
    if (!batch.column(c)->type().is_string()) continue;
    if (DetectUuidColumn(batch, c)) {
      out[c] = ColumnEncoding::kUuid128;
    } else if (DetectIntStringColumn(batch, c)) {
      out[c] = ColumnEncoding::kIntString;
    }
  }
  return out;
}

void SerializeBatch(const ColumnBatch& batch,
                    const std::vector<ColumnEncoding>& encodings,
                    BinaryWriter* out) {
  int n = batch.num_active();
  out->WriteVarU64(static_cast<uint64_t>(n));
  for (int c = 0; c < batch.num_columns(); c++) {
    const ColumnVector& cv = *batch.column(c);
    ColumnEncoding enc =
        encodings.empty() ? ColumnEncoding::kPlain : encodings[c];
    out->WriteU8(static_cast<uint8_t>(enc));

    // Null bytes for active rows, densely.
    for (int i = 0; i < n; i++) {
      out->WriteU8(cv.IsNull(batch.ActiveRow(i)) ? 1 : 0);
    }

    switch (cv.type().id()) {
      case TypeId::kBoolean: {
        for (int i = 0; i < n; i++) {
          out->WriteU8(cv.data<uint8_t>()[batch.ActiveRow(i)]);
        }
        break;
      }
      case TypeId::kInt32:
      case TypeId::kDate32: {
        for (int i = 0; i < n; i++) {
          out->WriteI32(cv.data<int32_t>()[batch.ActiveRow(i)]);
        }
        break;
      }
      case TypeId::kInt64:
      case TypeId::kTimestamp: {
        for (int i = 0; i < n; i++) {
          out->WriteI64(cv.data<int64_t>()[batch.ActiveRow(i)]);
        }
        break;
      }
      case TypeId::kFloat64: {
        for (int i = 0; i < n; i++) {
          out->WriteF64(cv.data<double>()[batch.ActiveRow(i)]);
        }
        break;
      }
      case TypeId::kDecimal128: {
        for (int i = 0; i < n; i++) {
          int128_t v = cv.data<int128_t>()[batch.ActiveRow(i)];
          out->WriteU64(static_cast<uint64_t>(static_cast<uint128_t>(v)));
          out->WriteU64(
              static_cast<uint64_t>(static_cast<uint128_t>(v) >> 64));
        }
        break;
      }
      case TypeId::kString: {
        for (int i = 0; i < n; i++) {
          int row = batch.ActiveRow(i);
          if (cv.IsNull(row)) {
            if (enc == ColumnEncoding::kPlain) out->WriteVarU64(0);
            // Adaptive encodings skip NULL payloads entirely.
            continue;
          }
          StringRef s = cv.GetString(row);
          switch (enc) {
            case ColumnEncoding::kPlain:
              out->WriteVarU64(static_cast<uint64_t>(s.len));
              out->Append(s.data, s.len);
              break;
            case ColumnEncoding::kUuid128: {
              uint8_t bin[16];
              bool ok = ParseUuid(s.data, s.len, bin);
              PHOTON_CHECK(ok);
              out->Append(bin, 16);
              break;
            }
            case ColumnEncoding::kIntString: {
              int64_t v;
              bool ok = ParseInt64(s.data, s.len, &v);
              PHOTON_CHECK(ok);
              out->WriteVarU64(ZigZagEncode(v));
              break;
            }
          }
        }
        break;
      }
    }
  }
}

Result<std::unique_ptr<ColumnBatch>> DeserializeBatch(const Schema& schema,
                                                      BinaryReader* in) {
  uint64_t n64 = 0;
  PHOTON_RETURN_NOT_OK(in->ReadVarU64(&n64));
  int n = static_cast<int>(n64);
  int capacity = n > kDefaultBatchSize ? n : kDefaultBatchSize;
  auto batch = std::make_unique<ColumnBatch>(schema, capacity);

  for (int c = 0; c < schema.num_fields(); c++) {
    ColumnVector* cv = batch->column(c);
    uint8_t enc_byte = 0;
    PHOTON_RETURN_NOT_OK(in->ReadU8(&enc_byte));
    ColumnEncoding enc = static_cast<ColumnEncoding>(enc_byte);

    bool any_null = false;
    for (int i = 0; i < n; i++) {
      uint8_t is_null = 0;
      PHOTON_RETURN_NOT_OK(in->ReadU8(&is_null));
      cv->nulls()[i] = is_null;
      any_null |= (is_null != 0);
    }
    cv->set_has_nulls(any_null ? TriState::kYes : TriState::kNo);

    switch (cv->type().id()) {
      case TypeId::kBoolean: {
        for (int i = 0; i < n; i++) {
          PHOTON_RETURN_NOT_OK(in->ReadU8(&cv->data<uint8_t>()[i]));
        }
        break;
      }
      case TypeId::kInt32:
      case TypeId::kDate32: {
        for (int i = 0; i < n; i++) {
          PHOTON_RETURN_NOT_OK(in->ReadI32(&cv->data<int32_t>()[i]));
        }
        break;
      }
      case TypeId::kInt64:
      case TypeId::kTimestamp: {
        for (int i = 0; i < n; i++) {
          PHOTON_RETURN_NOT_OK(in->ReadI64(&cv->data<int64_t>()[i]));
        }
        break;
      }
      case TypeId::kFloat64: {
        for (int i = 0; i < n; i++) {
          PHOTON_RETURN_NOT_OK(in->ReadF64(&cv->data<double>()[i]));
        }
        break;
      }
      case TypeId::kDecimal128: {
        for (int i = 0; i < n; i++) {
          uint64_t lo = 0, hi = 0;
          PHOTON_RETURN_NOT_OK(in->ReadU64(&lo));
          PHOTON_RETURN_NOT_OK(in->ReadU64(&hi));
          cv->data<int128_t>()[i] = static_cast<int128_t>(
              (static_cast<uint128_t>(hi) << 64) | lo);
        }
        break;
      }
      case TypeId::kString: {
        for (int i = 0; i < n; i++) {
          if (cv->nulls()[i]) {
            if (enc == ColumnEncoding::kPlain) {
              uint64_t skip = 0;
              PHOTON_RETURN_NOT_OK(in->ReadVarU64(&skip));
            }
            cv->SetStringRef(i, StringRef());
            continue;
          }
          switch (enc) {
            case ColumnEncoding::kPlain: {
              uint64_t len = 0;
              PHOTON_RETURN_NOT_OK(in->ReadVarU64(&len));
              const uint8_t* span = nullptr;
              PHOTON_RETURN_NOT_OK(in->ReadSpan(len, &span));
              cv->SetString(i, reinterpret_cast<const char*>(span),
                            static_cast<int32_t>(len));
              break;
            }
            case ColumnEncoding::kUuid128: {
              const uint8_t* span = nullptr;
              PHOTON_RETURN_NOT_OK(in->ReadSpan(16, &span));
              char* dst = cv->var_pool()->AllocateBytes(36);
              FormatUuid(span, dst);
              cv->SetStringRef(i, StringRef(dst, 36));
              break;
            }
            case ColumnEncoding::kIntString: {
              uint64_t zz = 0;
              PHOTON_RETURN_NOT_OK(in->ReadVarU64(&zz));
              char buf[24];
              int len = std::snprintf(buf, sizeof(buf), "%lld",
                                      static_cast<long long>(ZigZagDecode(zz)));
              cv->SetString(i, buf, len);
              break;
            }
            default:
              return Status::IoError("unknown column encoding");
          }
        }
        break;
      }
    }
  }
  batch->set_num_rows(n);
  batch->SetAllActive();
  return batch;
}

}  // namespace photon
