#ifndef PHOTON_VECTOR_COLUMN_BATCH_H_
#define PHOTON_VECTOR_COLUMN_BATCH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "types/data_type.h"
#include "vector/column_vector.h"

namespace photon {

/// Default number of rows per batch. Sized so a handful of columns fit in L2
/// while still amortizing per-batch dispatch overhead.
constexpr int kDefaultBatchSize = 2048;

/// A collection of column vectors plus a *position list* designating which
/// row indices are active (§4.1, Figure 2). Filters deactivate rows by
/// shrinking the position list; data at inactive indices may still be valid
/// and must never be overwritten (§4.3).
class ColumnBatch {
 public:
  ColumnBatch(Schema schema, int capacity)
      : schema_(std::move(schema)), capacity_(capacity) {
    owned_.reserve(schema_.num_fields());
    for (int i = 0; i < schema_.num_fields(); i++) {
      owned_.push_back(
          std::make_unique<ColumnVector>(schema_.field(i).type, capacity));
      columns_.push_back(owned_.back().get());
    }
    pos_list_.resize(capacity);
  }

  /// Creates a batch whose columns are *views*: raw pointers installed later
  /// via SetColumnView. Used by Project, which returns expression results
  /// without copying them (the vectors stay owned by its EvalContext).
  static std::unique_ptr<ColumnBatch> MakeView(Schema schema, int capacity) {
    auto batch =
        std::unique_ptr<ColumnBatch>(new ColumnBatch(capacity));
    batch->schema_ = std::move(schema);
    batch->columns_.assign(batch->schema_.num_fields(), nullptr);
    return batch;
  }

  /// Points column `i` at an externally owned vector (view batches only).
  void SetColumnView(int i, ColumnVector* vec) {
    PHOTON_DCHECK(owned_.empty());
    columns_[i] = vec;
  }

  ColumnBatch(const ColumnBatch&) = delete;
  ColumnBatch& operator=(const ColumnBatch&) = delete;

  const Schema& schema() const { return schema_; }
  int capacity() const { return capacity_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  ColumnVector* column(int i) { return columns_[i]; }
  const ColumnVector* column(int i) const { return columns_[i]; }

  /// Rows physically populated in the vectors (active or not).
  int num_rows() const { return num_rows_; }
  void set_num_rows(int n) {
    PHOTON_DCHECK(n <= capacity_);
    num_rows_ = n;
    if (all_active_) num_active_ = n;
  }

  /// Active-row interface -------------------------------------------------

  /// Number of rows that survive all filters applied so far.
  int num_active() const { return num_active_; }
  /// True when the position list is the identity [0, num_rows).
  bool all_active() const { return all_active_; }

  const int32_t* pos_list() const { return pos_list_.data(); }
  int32_t* mutable_pos_list() { return pos_list_.data(); }

  /// Row index of the i-th active row.
  int32_t ActiveRow(int i) const {
    return all_active_ ? i : pos_list_[i];
  }

  /// Marks all populated rows active (identity position list).
  void SetAllActive() {
    all_active_ = true;
    num_active_ = num_rows_;
  }

  /// Installs an explicit position list of length n (ascending row indices,
  /// a subset of the previous active set).
  void SetActiveRows(int n) {
    PHOTON_DCHECK(n <= capacity_);
    all_active_ = false;
    num_active_ = n;
  }

  /// Fraction of populated rows still active; drives adaptive compaction.
  double Sparsity() const {
    return num_rows_ == 0
               ? 1.0
               : static_cast<double>(num_active_) / num_rows_;
  }

  /// Resets to an empty, all-active batch and clears metadata; var-len
  /// arenas are reset for reuse (§4.5). Owned columns only.
  void Reset() {
    num_rows_ = 0;
    num_active_ = 0;
    all_active_ = true;
    for (auto& col : owned_) {
      col->ResetMetadata();
      if (col->type().is_var_len()) col->var_pool()->Reset();
    }
  }

  std::string ToString() const;

 private:
  explicit ColumnBatch(int capacity) : capacity_(capacity) {
    pos_list_.resize(capacity);
  }

  Schema schema_;
  int capacity_;
  int num_rows_ = 0;
  std::vector<ColumnVector*> columns_;
  std::vector<std::unique_ptr<ColumnVector>> owned_;
  std::vector<int32_t> pos_list_;
  int num_active_ = 0;
  bool all_active_ = true;
};

/// Copies the active rows of `src` densely into a fresh batch whose position
/// list is the identity. This is the adaptive batch compaction of §4.6 used
/// before hash table probes on sparse batches; string bytes are copied so
/// the result owns its data.
std::unique_ptr<ColumnBatch> CompactBatch(const ColumnBatch& src);

/// Copies row `src_row` of every column in `src` to `dst_row` in `dst`
/// (schemas must match). Strings are deep-copied into dst's pools.
void CopyRow(const ColumnBatch& src, int src_row, ColumnBatch* dst,
             int dst_row);

}  // namespace photon

#endif  // PHOTON_VECTOR_COLUMN_BATCH_H_
