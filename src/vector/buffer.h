#ifndef PHOTON_VECTOR_BUFFER_H_
#define PHOTON_VECTOR_BUFFER_H_

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/macros.h"

namespace photon {

/// A cache-line-aligned, owned memory region. Buffers back column vector
/// values and null bytes. Move-only.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(size_t capacity) { Reset(capacity); }

  Buffer(Buffer&& other) noexcept
      : data_(other.data_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.capacity_ = 0;
    }
    return *this;
  }
  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;

  ~Buffer() { Free(); }

  /// (Re)allocates to at least `capacity` bytes; contents are discarded.
  void Reset(size_t capacity) {
    Free();
    if (capacity == 0) return;
    // Round up to the 64-byte alignment unit required by aligned_alloc.
    size_t rounded = (capacity + 63) & ~size_t{63};
    data_ = static_cast<uint8_t*>(std::aligned_alloc(64, rounded));
    PHOTON_CHECK(data_ != nullptr);
    capacity_ = rounded;
  }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return data_ == nullptr; }

  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data_);
  }

  void ZeroFill() {
    if (data_ != nullptr) std::memset(data_, 0, capacity_);
  }

 private:
  void Free() {
    if (data_ != nullptr) std::free(data_);
    data_ = nullptr;
    capacity_ = 0;
  }

  uint8_t* data_ = nullptr;
  size_t capacity_ = 0;
};

}  // namespace photon

#endif  // PHOTON_VECTOR_BUFFER_H_
