#ifndef PHOTON_VECTOR_VECTOR_SERDE_H_
#define PHOTON_VECTOR_VECTOR_SERDE_H_

#include <memory>
#include <vector>

#include "common/byte_buffer.h"
#include "common/result.h"
#include "vector/column_batch.h"

namespace photon {

/// Per-column encoding used when serializing batches for shuffle and spill.
/// kPlain is always valid; the others are the paper's adaptive shuffle
/// encodings (§4.6, Table 1), chosen at runtime after inspecting the batch.
enum class ColumnEncoding : uint8_t {
  kPlain = 0,
  /// 36-char canonical UUID strings stored as 16-byte binary.
  kUuid128 = 1,
  /// Decimal-integer strings stored as zigzag varints.
  kIntString = 2,
};

/// Returns true iff every non-NULL active string in the column is a
/// canonical 36-character UUID (8-4-4-4-12 lowercase/uppercase hex).
bool DetectUuidColumn(const ColumnBatch& batch, int col);

/// Returns true iff every non-NULL active string parses as an int64.
bool DetectIntStringColumn(const ColumnBatch& batch, int col);

/// Parses a canonical UUID string into 16 bytes; false if malformed.
bool ParseUuid(const char* s, int32_t len, uint8_t out[16]);
/// Formats 16 bytes as the canonical lowercase 36-char UUID string.
void FormatUuid(const uint8_t in[16], char out[36]);

/// Serializes the *active* rows of a batch densely. `encodings` may be empty
/// (all plain) or give one encoding per column.
void SerializeBatch(const ColumnBatch& batch,
                    const std::vector<ColumnEncoding>& encodings,
                    BinaryWriter* out);

/// Reads one batch previously written by SerializeBatch.
Result<std::unique_ptr<ColumnBatch>> DeserializeBatch(const Schema& schema,
                                                      BinaryReader* in);

/// Picks per-column encodings adaptively by inspecting string columns
/// (the runtime adaptivity of Table 1). Non-string columns get kPlain.
std::vector<ColumnEncoding> ChooseAdaptiveEncodings(const ColumnBatch& batch);

}  // namespace photon

#endif  // PHOTON_VECTOR_VECTOR_SERDE_H_
