#ifndef PHOTON_SERVICE_ADMISSION_H_
#define PHOTON_SERVICE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"

namespace photon {
namespace service {

/// Admission policy knobs. The memory budget is the sum of the *declared*
/// reservations of running queries, not live MemoryManager usage: admission
/// decides before a query runs, on what it promised to need, so a burst of
/// submissions queues instead of driving the memory manager into timeout
/// OOMs (ISSUE: "never spurious-OOM").
struct AdmissionOptions {
  /// Maximum queries in the running state; further admits queue.
  int max_running = 4;
  /// Cap on summed declared memory of running queries. A single query
  /// declaring more than this is rejected outright (it could never run).
  int64_t memory_budget_bytes = 256LL << 20;
};

/// FIFO-with-priority admission control for the query service.
///
/// Queued queries are ordered by (priority desc, arrival order); only the
/// *head* of that order is ever admitted. No bypass: a small query behind
/// a large head waits until the head fits, which is what makes arrival
/// order a progress guarantee — every queued query's position only
/// improves (within its priority band), so equal-priority queries cannot
/// starve each other. Higher-priority arrivals do step in front of lower
/// bands; a saturating high-priority stream starving a low-priority tenant
/// is the configured policy, not a bug.
///
/// Admit() blocks on the caller's (per-session control) thread and polls
/// the query's cancellation token, so a queued query can be cancelled or
/// deadline out without ever running.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until this query is admitted (OK), its token is cancelled /
  /// past deadline (Cancelled / DeadlineExceeded), or `memory_bytes`
  /// exceeds the whole budget (InvalidArgument, immediately — queueing
  /// a query that can never fit would wedge the queue behind it).
  /// `control` may be null (uncancellable wait).
  /// Every OK return must be paired with one Release(memory_bytes).
  Status Admit(int64_t memory_bytes, int priority, QueryControl* control);

  /// Returns an admitted query's slot and declared memory to the pool and
  /// wakes the queue head.
  void Release(int64_t memory_bytes);

  int64_t running() const;
  int64_t queued() const;
  /// Declared bytes of currently running queries.
  int64_t reserved_bytes() const;
  int64_t admitted_total() const;
  int64_t rejected_total() const;
  /// Total admissions that had to queue (did not get in on first check).
  int64_t waited_total() const;

  const AdmissionOptions& options() const { return options_; }

 private:
  struct Waiter {
    int priority = 0;
    int64_t seq = 0;
  };

  /// True iff `w` is the queue head: no queued waiter has higher priority,
  /// nor the same priority with an earlier arrival. Caller holds mu_.
  bool IsHeadLocked(const Waiter& w) const;

  const AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Waiter> queue_;
  int64_t next_seq_ = 0;
  int running_ = 0;
  int64_t reserved_bytes_ = 0;
  int64_t admitted_total_ = 0;
  int64_t rejected_total_ = 0;
  int64_t waited_total_ = 0;
};

}  // namespace service
}  // namespace photon

#endif  // PHOTON_SERVICE_ADMISSION_H_
