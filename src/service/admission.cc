#include "service/admission.h"

#include <algorithm>
#include <chrono>

#include "common/macros.h"

namespace photon {
namespace service {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  PHOTON_CHECK(options_.max_running > 0);
  PHOTON_CHECK(options_.memory_budget_bytes > 0);
}

bool AdmissionController::IsHeadLocked(const Waiter& w) const {
  for (const Waiter& other : queue_) {
    if (other.priority > w.priority) return false;
    if (other.priority == w.priority && other.seq < w.seq) return false;
  }
  return true;
}

Status AdmissionController::Admit(int64_t memory_bytes, int priority,
                                  QueryControl* control) {
  PHOTON_CHECK(memory_bytes >= 0);
  std::unique_lock<std::mutex> lock(mu_);
  if (memory_bytes > options_.memory_budget_bytes) {
    rejected_total_++;
    return Status::InvalidArgument(
        "query declares more memory than the service budget");
  }

  Waiter self;
  self.priority = priority;
  self.seq = next_seq_++;
  queue_.push_back(self);
  bool waited = false;

  auto erase_self = [&] {
    for (size_t i = 0; i < queue_.size(); i++) {
      if (queue_[i].seq != self.seq) continue;
      queue_.erase(queue_.begin() + i);
      return;
    }
    PHOTON_CHECK(false);  // waiter vanished from the queue
  };

  while (true) {
    if (control != nullptr) {
      Status alive = control->Check();
      if (!alive.ok()) {
        erase_self();
        // A cancelled head unblocks whoever was queued behind it.
        cv_.notify_all();
        return alive;
      }
    }
    if (IsHeadLocked(self) && running_ < options_.max_running &&
        reserved_bytes_ + memory_bytes <= options_.memory_budget_bytes) {
      erase_self();
      running_++;
      reserved_bytes_ += memory_bytes;
      admitted_total_++;
      if (waited) waited_total_++;
      // Successors may fit alongside us (multiple running slots).
      cv_.notify_all();
      return Status::OK();
    }
    waited = true;
    // Bounded wait so cancellation/deadline of a *queued* query is seen
    // promptly even though Cancel() doesn't know about this cv. Admission
    // is far off the data path; a 5ms poll is noise here.
    cv_.wait_for(lock, std::chrono::milliseconds(5));
  }
}

void AdmissionController::Release(int64_t memory_bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PHOTON_CHECK(running_ > 0);
    running_--;
    reserved_bytes_ -= memory_bytes;
    PHOTON_CHECK(reserved_bytes_ >= 0);
  }
  cv_.notify_all();
}

int64_t AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int64_t AdmissionController::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(queue_.size());
}

int64_t AdmissionController::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_bytes_;
}

int64_t AdmissionController::admitted_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_total_;
}

int64_t AdmissionController::rejected_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_total_;
}

int64_t AdmissionController::waited_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waited_total_;
}

}  // namespace service
}  // namespace photon
