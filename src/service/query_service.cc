#include "service/query_service.h"

#include "common/macros.h"
#include "exec/driver.h"
#include "ops/operator.h"
#include "storage/object_store.h"

namespace photon {
namespace service {
namespace {

/// Process-wide: session ids name spill prefixes in the (shared) default
/// object store, so they must be unique across every QueryService alive
/// in the process, not just within one.
std::atomic<int64_t> g_next_session_id{1};

AdmissionOptions MakeAdmissionOptions(const ServiceOptions& o) {
  AdmissionOptions a;
  a.max_running = o.max_concurrent_queries;
  a.memory_budget_bytes = o.admission_budget_bytes >= 0
                              ? o.admission_budget_bytes
                              : o.memory_limit_bytes;
  return a;
}

}  // namespace

const char* SessionStateName(SessionState s) {
  switch (s) {
    case SessionState::kQueued:
      return "queued";
    case SessionState::kRunning:
      return "running";
    case SessionState::kSucceeded:
      return "succeeded";
    case SessionState::kFailed:
      return "failed";
    case SessionState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// QuerySession
// ---------------------------------------------------------------------------

QuerySession::QuerySession(int64_t id, plan::PlanPtr plan, WriteFn write_fn,
                           SessionOptions options)
    : id_(id),
      plan_(std::move(plan)),
      write_fn_(std::move(write_fn)),
      options_(std::move(options)),
      spill_prefix_("service/q" + std::to_string(id)) {}

QuerySession::~QuerySession() { JoinThread(); }

SessionState QuerySession::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

Status QuerySession::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return state_ != SessionState::kQueued &&
           state_ != SessionState::kRunning;
  });
  return status_;
}

const Table& QuerySession::table() const {
  std::lock_guard<std::mutex> lock(mu_);
  PHOTON_CHECK(state_ == SessionState::kSucceeded);
  return table_;
}

void QuerySession::Finish(SessionState state, Status status, Table table) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = state;
    status_ = std::move(status);
    table_ = std::move(table);
  }
  cv_.notify_all();
}

void QuerySession::JoinThread() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (thread_.joinable()) thread_.join();
}

// ---------------------------------------------------------------------------
// QueryService
// ---------------------------------------------------------------------------

QueryService::QueryService(ServiceOptions options)
    : options_(options),
      scheduler_(options.worker_threads),
      io_pool_(options.io_threads >= 0 ? options.io_threads
                                       : std::max(2, options.worker_threads)),
      memory_manager_(options.memory_limit_bytes),
      admission_(MakeAdmissionOptions(options)) {
  if (options_.default_reserve_timeout_ms >= 0) {
    memory_manager_.set_reserve_timeout_ms(options_.default_reserve_timeout_ms);
  }
}

QueryService::~QueryService() { Drain(); }

std::shared_ptr<QuerySession> QueryService::Submit(plan::PlanPtr plan,
                                                   SessionOptions options) {
  PHOTON_CHECK(plan != nullptr);
  return Launch(std::move(plan), WriteFn(), std::move(options));
}

std::shared_ptr<QuerySession> QueryService::SubmitWrite(
    WriteFn fn, SessionOptions options) {
  PHOTON_CHECK(fn != nullptr);
  return Launch(nullptr, std::move(fn), std::move(options));
}

std::shared_ptr<QuerySession> QueryService::Launch(plan::PlanPtr plan,
                                                   WriteFn write_fn,
                                                   SessionOptions options) {
  int64_t id = g_next_session_id.fetch_add(1, std::memory_order_relaxed);
  // Bare new: the constructor is private to QuerySession's friends.
  std::shared_ptr<QuerySession> session(new QuerySession(
      id, std::move(plan), std::move(write_fn), std::move(options)));
  // Deadline starts at submission so queue time counts against it: a
  // deadline is a promise to the caller, and the caller doesn't care
  // whether the time went to queueing or running.
  if (session->options_.deadline_ms >= 0) {
    session->control_.SetDeadlineAfterMs(session->options_.deadline_ms);
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.push_back(session);
  }
  session->thread_ = std::thread([this, session] { RunSession(session); });
  return session;
}

void QueryService::RunSession(const std::shared_ptr<QuerySession>& session) {
  // ---- Admission (kQueued) -------------------------------------------
  Status admitted = admission_.Admit(session->options_.memory_bytes,
                                     session->options_.priority,
                                     &session->control_);
  if (!admitted.ok()) {
    bool is_cancel = admitted.IsCancelled() || admitted.IsDeadlineExceeded();
    (is_cancel ? cancelled_ : failed_).fetch_add(1, std::memory_order_relaxed);
    session->Finish(
        is_cancel ? SessionState::kCancelled : SessionState::kFailed,
        std::move(admitted), Table(Schema()));
    return;
  }

  // ---- Execution (kRunning) ------------------------------------------
  {
    std::lock_guard<std::mutex> lock(session->mu_);
    session->state_ = SessionState::kRunning;
  }
  int64_t slot = scheduler_.RegisterQuery();
  {
    exec::Driver driver(&scheduler_, slot, &io_pool_);
    ExecContext ctx;
    ctx.memory_manager = &memory_manager_;
    ctx.spill_prefix = session->spill_prefix_;
    ctx.control = &session->control_;
    ctx.reserve_timeout_ms = session->options_.reserve_timeout_ms >= 0
                                 ? session->options_.reserve_timeout_ms
                                 : options_.default_reserve_timeout_ms;
    ctx.optimizer = session->options_.optimizer;
    Result<Table> out =
        session->write_fn_
            ? session->write_fn_(&driver, ctx)
            : driver.Run(session->plan_, ctx, nullptr, &session->profile_);
    session->profile_.query = session->options_.name.empty()
                                  ? "q" + std::to_string(session->id_)
                                  : session->options_.name;

    // ---- Teardown: runs on every exit path, success or not ------------
    // By here the driver has joined all its task futures and unwound its
    // operator chains (destructors released reservations, shuffle guards
    // deleted blocks); what's left is this session's spill artifacts.
    ObjectStore::Default().DeletePrefix(session->spill_prefix_ + "/");

    if (out.ok()) {
      succeeded_.fetch_add(1, std::memory_order_relaxed);
      session->Finish(SessionState::kSucceeded, Status::OK(),
                      std::move(*out));
    } else {
      Status st = out.status();
      bool is_cancel = st.IsCancelled() || st.IsDeadlineExceeded();
      (is_cancel ? cancelled_ : failed_)
          .fetch_add(1, std::memory_order_relaxed);
      session->Finish(
          is_cancel ? SessionState::kCancelled : SessionState::kFailed,
          std::move(st), Table(Schema()));
    }
  }
  scheduler_.UnregisterQuery(slot);
  admission_.Release(session->options_.memory_bytes);
}

void QueryService::Drain() {
  // Snapshot under the lock, join outside it (Submit may race with Drain;
  // sessions appended after the snapshot are the caller's to wait on).
  std::vector<std::shared_ptr<QuerySession>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions = sessions_;
  }
  for (auto& s : sessions) s->JoinThread();
}

QueryService::Stats QueryService::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.succeeded = succeeded_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.tasks_executed = scheduler_.tasks_executed();
  return s;
}

}  // namespace service
}  // namespace photon
