#ifndef PHOTON_SERVICE_QUERY_SERVICE_H_
#define PHOTON_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "exec/task_scheduler.h"
#include "exec/thread_pool.h"
#include "memory/memory_manager.h"
#include "obs/profile.h"
#include "plan/logical_plan.h"
#include "service/admission.h"
#include "vector/table.h"

namespace photon {
namespace exec {
class Driver;
}  // namespace exec

namespace service {

/// Sizing and limits for one QueryService instance. Both pool sizes are
/// explicit (no hardware-concurrency guessing): `worker_threads` is the
/// shared morsel-execution pool every query draws from, `io_threads` the
/// shared scan read-ahead pool (`< 0` = max(2, worker_threads), enough to
/// double-buffer every worker — override when scans dominate).
struct ServiceOptions {
  int worker_threads = 4;
  int io_threads = -1;
  /// Unified MemoryManager pool shared by all sessions (§5.3).
  int64_t memory_limit_bytes = 256LL << 20;
  /// Admission: cap on concurrently *running* queries.
  int max_concurrent_queries = 4;
  /// Admission: cap on summed declared memory of running queries.
  /// `< 0` = memory_limit_bytes. Declared totals at or below the real
  /// memory limit are what make admission OOM-free: the running set can
  /// always spill-or-wait its way to its declared bytes.
  int64_t admission_budget_bytes = -1;
  /// Default per-query MemoryManager reserve timeout (ExecContext
  /// override); `< 0` = the manager's process-wide default.
  int64_t default_reserve_timeout_ms = -1;
};

/// Per-submission knobs.
struct SessionOptions {
  /// Label for the query profile; empty = "q<session id>".
  std::string name;
  /// Admission priority: higher admits first (FIFO within a band).
  int priority = 0;
  /// Declared memory for admission control. Not a hard per-query cap —
  /// enforcement stays with the MemoryManager — but the unit the service
  /// packs running queries by.
  int64_t memory_bytes = 64LL << 20;
  /// Wall-clock deadline measured from Submit(), so time spent queued in
  /// admission counts against it; `< 0` = none.
  int64_t deadline_ms = -1;
  /// Per-query reserve timeout; `< 0` = the service default.
  int64_t reserve_timeout_ms = -1;
  /// Run the cost-based optimizer (src/opt) over the submitted plan before
  /// stage planning.
  OptimizerPolicy optimizer = OptimizerPolicy::kOff;
};

/// Body of a write-transaction session (SubmitWrite): runs on the
/// session's control thread with a service-mode driver (morsel tasks on
/// the shared scheduler) and the session's ExecContext — so DML inherits
/// admission, the shared memory pool, and cancellation exactly like a
/// read query. The body owns its transactional cleanup: on error or
/// cancellation it must release any data files it staged before
/// returning (the dml executors do). Returns a result table (e.g. a DML
/// summary row) published as the session's table().
using WriteFn =
    std::function<Result<Table>(exec::Driver* driver, const ExecContext&)>;

/// Lifecycle of one submitted query.
enum class SessionState {
  kQueued,     // waiting in admission
  kRunning,    // executing on the shared scheduler
  kSucceeded,  // result table available
  kFailed,     // execution error or admission rejection
  kCancelled,  // Cancel() or deadline, before or during execution
};

const char* SessionStateName(SessionState s);

/// One submitted query: handle to its state, cancellation token, result
/// and profile. Created only by QueryService::Submit(); thread-safe.
class QuerySession {
 public:
  ~QuerySession();

  QuerySession(const QuerySession&) = delete;
  QuerySession& operator=(const QuerySession&) = delete;

  /// Service-unique (process-wide) id; also names the spill prefix.
  int64_t id() const { return id_; }

  SessionState state() const;

  /// Requests cooperative cancellation: the query stops at its next
  /// cancellation point (morsel claim, batch pull, stage barrier, blocked
  /// memory reservation, admission wait) and releases its resources.
  /// Returns immediately; Wait() observes the terminal state.
  void Cancel() { control_.Cancel(); }

  /// Blocks until the session is terminal. Returns the final status: OK
  /// (kSucceeded), Cancelled/DeadlineExceeded (kCancelled), or the
  /// execution/admission error (kFailed).
  Status Wait();

  /// Result table; valid only in kSucceeded.
  const Table& table() const;

  /// Query profile (root = plan root); populated for sessions that began
  /// executing, empty otherwise.
  const obs::QueryProfile& profile() const { return profile_; }

  QueryControl* control() { return &control_; }

 private:
  friend class QueryService;
  QuerySession(int64_t id, plan::PlanPtr plan, WriteFn write_fn,
               SessionOptions options);

  void Finish(SessionState state, Status status, Table table);
  /// Joins the session thread (idempotent). Called by the service's
  /// Drain()/destructor and by ~QuerySession.
  void JoinThread();

  const int64_t id_;
  /// Exactly one of plan_ / write_fn_ is set.
  const plan::PlanPtr plan_;
  const WriteFn write_fn_;
  const SessionOptions options_;
  const std::string spill_prefix_;
  QueryControl control_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  SessionState state_ = SessionState::kQueued;
  Status status_;
  Table table_{Schema()};
  obs::QueryProfile profile_;

  std::mutex join_mu_;
  std::thread thread_;
};

/// Multi-tenant query service: N concurrent sessions over one worker
/// pool, one IO pool, one memory manager and one object store.
///
///   Submit(plan) ──► session control thread:
///     admission (FIFO-with-priority, memory-declared)   [kQueued]
///     ──► Driver on the shared TaskScheduler            [kRunning]
///         (one task per morsel, round-robin across sessions)
///     ──► result / profile, spill prefix deleted,
///         admission slot released        [kSucceeded|kFailed|kCancelled]
///
/// Stage barriers block only the session's control thread; scheduler
/// workers run pure morsel tasks, so a saturated service cannot deadlock
/// on barriers, and cancellation unwinds through the driver's normal
/// error path (operator destructors release memory, shuffle guards delete
/// blocks) before the terminal state is published.
class QueryService {
 public:
  explicit QueryService(ServiceOptions options = {});
  /// Joins every session thread (queries in flight run to completion —
  /// call Cancel() on sessions first for fast shutdown).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits a query; never blocks on admission (that happens on the
  /// session's own control thread). The returned session is also retained
  /// by the service until destruction.
  std::shared_ptr<QuerySession> Submit(plan::PlanPtr plan,
                                       SessionOptions options = {});

  /// Submits a write transaction (DML, compaction): `fn` runs on the
  /// session's control thread after admission, with a service-mode driver
  /// and the session's ExecContext (memory, cancellation, optimizer
  /// policy). Writers queue, cancel, and share workers exactly like
  /// queries; a cancelled writer's staged files are released by the DML
  /// executors' own unwind before the terminal state is published.
  std::shared_ptr<QuerySession> SubmitWrite(WriteFn fn,
                                            SessionOptions options = {});

  /// Blocks until every session submitted so far is terminal.
  void Drain();

  /// Service-level counters (terminal-state totals are post-Drain exact).
  struct Stats {
    int64_t submitted = 0;
    int64_t succeeded = 0;
    int64_t failed = 0;
    int64_t cancelled = 0;
    int64_t tasks_executed = 0;  // scheduler-level morsel tasks
  };
  Stats stats() const;

  MemoryManager* memory_manager() { return &memory_manager_; }
  AdmissionController& admission() { return admission_; }
  exec::TaskScheduler& scheduler() { return scheduler_; }
  const ServiceOptions& options() const { return options_; }

 private:
  std::shared_ptr<QuerySession> Launch(plan::PlanPtr plan, WriteFn write_fn,
                                       SessionOptions options);
  void RunSession(const std::shared_ptr<QuerySession>& session);

  const ServiceOptions options_;
  exec::TaskScheduler scheduler_;
  ThreadPool io_pool_;
  MemoryManager memory_manager_;
  AdmissionController admission_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<QuerySession>> sessions_;
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> succeeded_{0};
  std::atomic<int64_t> failed_{0};
  std::atomic<int64_t> cancelled_{0};
};

}  // namespace service
}  // namespace photon

#endif  // PHOTON_SERVICE_QUERY_SERVICE_H_
