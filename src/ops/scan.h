#ifndef PHOTON_OPS_SCAN_H_
#define PHOTON_OPS_SCAN_H_

#include "ops/operator.h"
#include "vector/table.h"

namespace photon {

/// Scans an in-memory Table, yielding one batch per stored batch. Values
/// and null bytes are copied into a reusable scan-owned batch (string bytes
/// are shared zero-copy: the source table outlives the query), so
/// downstream filters may freely rewrite the position list without
/// corrupting the table.
class InMemoryScanOperator : public Operator {
 public:
  explicit InMemoryScanOperator(const Table* table)
      : Operator(table->schema()), table_(table) {}

  Status Open() override {
    next_batch_ = 0;
    return Status::OK();
  }

  Result<ColumnBatch*> GetNextImpl() override;

  std::string name() const override { return "PhotonScan"; }

 private:
  const Table* table_;
  int next_batch_ = 0;
  std::unique_ptr<ColumnBatch> out_;
};

/// Copies batch contents (values, nulls, activity) from src into dst;
/// string payload bytes are shared, not copied. dst must have the same
/// schema and at least the same capacity.
void CopyBatchShallow(const ColumnBatch& src, ColumnBatch* dst);

}  // namespace photon

#endif  // PHOTON_OPS_SCAN_H_
