#include "ops/operator.h"

#include "vector/table.h"

namespace photon {

Result<Table> CollectAll(Operator* root, QueryControl* control) {
  PHOTON_RETURN_NOT_OK(root->Open());
  Table out(root->output_schema());
  while (true) {
    if (control != nullptr) {
      Status alive = control->Check();
      if (!alive.ok()) {
        // Unwind through Close so operators cancel prefetches, drop pins,
        // and release reservations exactly as on any other error.
        root->Close();
        return alive;
      }
    }
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, root->GetNext());
    if (batch == nullptr) break;
    out.AppendBatch(CompactBatch(*batch));
  }
  root->Close();
  PublishTreeMetrics(root);
  return out;
}

void PublishTreeMetrics(Operator* root) {
  root->PublishMetrics();
  for (Operator* child : root->children()) {
    PublishTreeMetrics(child);
  }
}

void CollectTreeMetrics(Operator* root, obs::MetricSnapshot* out) {
  root->PublishMetrics();
  out->MergeResourceFrom(root->op_metrics());
  for (Operator* child : root->children()) {
    CollectTreeMetrics(child, out);
  }
}

namespace {

void ExplainNode(Operator* op, int depth, std::string* out) {
  int64_t child_ns = 0;
  for (Operator* child : op->children()) child_ns += child->metrics().time_ns;
  const OperatorMetrics& m = op->metrics();
  char line[256];
  std::snprintf(line, sizeof(line),
                "%*s%s: rows=%lld batches=%lld self_time=%.2fms%s%s\n",
                depth * 2, "", op->name().c_str(),
                static_cast<long long>(m.rows_out),
                static_cast<long long>(m.batches_out),
                (m.time_ns - child_ns) / 1e6,
                m.spill_count > 0 ? " SPILLED" : "",
                m.peak_memory > 0 ? " (has build memory)" : "");
  *out += line;
  for (Operator* child : op->children()) {
    ExplainNode(child, depth + 1, out);
  }
}

}  // namespace

std::string ExplainAnalyze(Operator* root) {
  std::string out;
  ExplainNode(root, 0, &out);
  return out;
}

}  // namespace photon
