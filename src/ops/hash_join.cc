#include "ops/hash_join.h"

#include <cstring>

namespace photon {
namespace {

constexpr double kCompactionSparsityThreshold = 0.5;

/// Payload layout: per build column, an 8-aligned slot of 1 null byte
/// followed by the value (packed after the null byte).
int ComputePayloadLayout(const Schema& build_schema,
                         std::vector<int>* offsets) {
  int offset = 0;
  for (const Field& f : build_schema.fields()) {
    offset = (offset + 7) & ~7;
    offsets->push_back(offset);
    offset += 1 + f.type.byte_width();
  }
  return offset;
}

void WriteBuildPayload(JoinBuildState* state, const ColumnBatch& batch,
                       int row, uint8_t* entry) {
  uint8_t* payload = state->table->payload(entry);
  for (int c = 0; c < state->build_schema.num_fields(); c++) {
    uint8_t* slot = payload + state->payload_offsets[c];
    const ColumnVector& col = *batch.column(c);
    if (col.IsNull(row)) {
      *slot = 1;
      continue;
    }
    *slot = 0;
    uint8_t* value = slot + 1;
    switch (col.type().id()) {
      case TypeId::kBoolean:
        *value = col.data<uint8_t>()[row];
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        std::memcpy(value, &col.data<int32_t>()[row], 4);
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        std::memcpy(value, &col.data<int64_t>()[row], 8);
        break;
      case TypeId::kFloat64:
        std::memcpy(value, &col.data<double>()[row], 8);
        break;
      case TypeId::kDecimal128:
        std::memcpy(value, &col.data<int128_t>()[row], 16);
        break;
      case TypeId::kString: {
        StringRef s = col.data<StringRef>()[row];
        StringRef owned = state->table->string_arena()->AddString(s);
        std::memcpy(value, &owned, sizeof(owned));
        break;
      }
    }
  }
}

/// Drains `build_child` (already open) into `state`'s table, reserving
/// memory on `state` as it grows.
Status BuildInto(JoinBuildState* state, Operator* build_child,
                 const std::vector<ExprPtr>& build_keys,
                 const ExecContext& exec_ctx) {
  std::vector<uint64_t> hashes;
  std::vector<uint8_t*> entries;
  std::unique_ptr<bool[]> inserted;
  int inserted_capacity = 0;
  EvalContext ctx;

  while (true) {
    ctx.ResetPerBatch();
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, build_child->GetNext());
    if (batch == nullptr) break;
    int n = batch->num_active();
    if (n == 0) continue;

    // Reservation phase before growing the table (§5.3).
    if (exec_ctx.memory_manager != nullptr) {
      int64_t estimate =
          static_cast<int64_t>(n) * (state->payload_bytes + 96);
      PHOTON_RETURN_NOT_OK(exec_ctx.memory_manager->Reserve(state, estimate));
      state->reserved_for_data += estimate;
    }

    std::vector<const ColumnVector*> key_vecs;
    for (const ExprPtr& k : build_keys) {
      PHOTON_ASSIGN_OR_RETURN(ColumnVector * v, k->Evaluate(batch, &ctx));
      key_vecs.push_back(v);
    }
    hashes.resize(n);
    entries.resize(n);
    if (inserted_capacity < n) {
      inserted = std::make_unique<bool[]>(n);
      inserted_capacity = n;
    }
    VectorizedHashTable::HashKeys(key_vecs, *batch, hashes.data());
    PHOTON_RETURN_NOT_OK(state->table->LookupOrInsert(
        key_vecs, *batch, hashes.data(), entries.data(), inserted.get()));
    for (int i = 0; i < n; i++) {
      if (entries[i] == nullptr) continue;  // NULL join key: never matches
      int row = batch->ActiveRow(i);
      uint8_t* target = inserted[i] ? entries[i]
                                    : state->table->InsertChained(entries[i]);
      WriteBuildPayload(state, *batch, row, target);
      state->build_rows++;
    }
  }
  return Status::OK();
}

}  // namespace

JoinBuildState::~JoinBuildState() {
  if (memory_manager != nullptr) {
    memory_manager->Release(this, reserved_bytes());
    if (registered) memory_manager->UnregisterConsumer(this);
  }
}

Schema HashJoinOperator::MakeOutputSchema(const Schema& build,
                                          const Schema& probe,
                                          JoinType join_type) {
  if (join_type == JoinType::kLeftSemi || join_type == JoinType::kLeftAnti) {
    return probe;
  }
  Schema schema = probe;
  for (const Field& f : build.fields()) {
    Field field = f;
    if (join_type == JoinType::kLeftOuter) field.nullable = true;
    schema.AddField(field);
  }
  return schema;
}

HashJoinOperator::HashJoinOperator(OperatorPtr build, OperatorPtr probe,
                                   std::vector<ExprPtr> build_keys,
                                   std::vector<ExprPtr> probe_keys,
                                   JoinType join_type, ExecContext exec_ctx,
                                   ExprPtr residual,
                                   bool adaptive_compaction)
    : Operator(MakeOutputSchema(build->output_schema(), probe->output_schema(),
                                join_type)),
      build_(std::move(build)),
      probe_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)),
      join_type_(join_type),
      exec_ctx_(exec_ctx),
      residual_(std::move(residual)),
      adaptive_compaction_(adaptive_compaction),
      state_(std::make_shared<JoinBuildState>()) {
  PHOTON_CHECK(build_keys_.size() == probe_keys_.size());
  state_->build_schema = build_->output_schema();
  state_->payload_bytes =
      ComputePayloadLayout(state_->build_schema, &state_->payload_offsets);
}

HashJoinOperator::HashJoinOperator(JoinBuildPtr build, OperatorPtr probe,
                                   std::vector<ExprPtr> probe_keys,
                                   JoinType join_type, ExecContext exec_ctx,
                                   ExprPtr residual, bool adaptive_compaction)
    : Operator(MakeOutputSchema(build->build_schema, probe->output_schema(),
                                join_type)),
      probe_(std::move(probe)),
      probe_keys_(std::move(probe_keys)),
      join_type_(join_type),
      exec_ctx_(exec_ctx),
      residual_(std::move(residual)),
      adaptive_compaction_(adaptive_compaction),
      state_(std::move(build)),
      built_(true) {
  PHOTON_CHECK(state_ != nullptr && state_->table != nullptr);
  PHOTON_CHECK(static_cast<int>(probe_keys_.size()) ==
               state_->table->num_keys());
}

HashJoinOperator::~HashJoinOperator() = default;

Result<JoinBuildPtr> HashJoinOperator::BuildShared(
    Operator* build_child, const std::vector<ExprPtr>& build_keys,
    const ExecContext& exec_ctx) {
  auto state = std::make_shared<JoinBuildState>();
  state->build_schema = build_child->output_schema();
  state->payload_bytes =
      ComputePayloadLayout(state->build_schema, &state->payload_offsets);
  std::vector<DataType> key_types;
  for (const ExprPtr& k : build_keys) key_types.push_back(k->type());
  state->table = std::make_unique<VectorizedHashTable>(
      key_types, state->payload_bytes, /*match_null_keys=*/false);
  if (exec_ctx.memory_manager != nullptr) {
    state->memory_manager = exec_ctx.memory_manager;
    BindConsumerToContext(state.get(), exec_ctx);
    exec_ctx.memory_manager->RegisterConsumer(state.get());
    state->registered = true;
  }
  PHOTON_RETURN_NOT_OK(build_child->Open());
  Status build_status = BuildInto(state.get(), build_child, build_keys,
                                  exec_ctx);
  build_child->Close();
  PHOTON_RETURN_NOT_OK(build_status);
  return state;
}

Status HashJoinOperator::Open() {
  if (build_ != nullptr) {
    PHOTON_RETURN_NOT_OK(build_->Open());
    std::vector<DataType> key_types;
    for (const ExprPtr& k : build_keys_) key_types.push_back(k->type());
    state_->table = std::make_unique<VectorizedHashTable>(
        key_types, state_->payload_bytes, /*match_null_keys=*/false);
    if (exec_ctx_.memory_manager != nullptr) {
      state_->memory_manager = exec_ctx_.memory_manager;
      BindConsumerToContext(state_.get(), exec_ctx_);
      exec_ctx_.memory_manager->RegisterConsumer(state_.get());
      state_->registered = true;
    }
    built_ = false;
  }
  PHOTON_RETURN_NOT_OK(probe_->Open());
  probe_batch_ = nullptr;
  probe_idx_ = 0;
  chain_entry_ = nullptr;
  chain_open_ = false;
  chain_matched_ = false;
  accum_.reset();
  accum_rows_ = 0;
  accum_in_flight_ = false;
  pending_dense_ = nullptr;
  accum_source_ = nullptr;
  accum_source_pos_ = 0;
  return Status::OK();
}

Status HashJoinOperator::BuildPhase() {
  PHOTON_RETURN_NOT_OK(BuildInto(state_.get(), build_.get(), build_keys_,
                                 exec_ctx_));
  built_ = true;
  stats_.SetMax(obs::Metric::kPeakReservedBytes,
                state_->table->memory_bytes());
  return Status::OK();
}

void HashJoinOperator::EmitProbeColumns(const ColumnBatch& batch, int row,
                                        int out_row) {
  for (int c = 0; c < batch.num_columns(); c++) {
    const ColumnVector& in = *batch.column(c);
    ColumnVector* out = out_->column(c);
    if (in.IsNull(row)) {
      out->SetNull(out_row);
      continue;
    }
    out->SetNotNull(out_row);
    switch (in.type().id()) {
      case TypeId::kBoolean:
        out->data<uint8_t>()[out_row] = in.data<uint8_t>()[row];
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        out->data<int32_t>()[out_row] = in.data<int32_t>()[row];
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        out->data<int64_t>()[out_row] = in.data<int64_t>()[row];
        break;
      case TypeId::kFloat64:
        out->data<double>()[out_row] = in.data<double>()[row];
        break;
      case TypeId::kDecimal128:
        out->data<int128_t>()[out_row] = in.data<int128_t>()[row];
        break;
      case TypeId::kString: {
        StringRef s = in.data<StringRef>()[row];
        out->SetString(out_row, s.data, s.len);
        break;
      }
    }
  }
}

void HashJoinOperator::EmitBuildColumns(const uint8_t* entry, int out_row) {
  int base = probe_->output_schema().num_fields();
  for (int c = 0; c < state_->build_schema.num_fields(); c++) {
    ColumnVector* out = out_->column(base + c);
    if (entry == nullptr) {
      out->SetNull(out_row);
      continue;
    }
    const uint8_t* slot =
        state_->table->payload(entry) + state_->payload_offsets[c];
    if (*slot) {
      out->SetNull(out_row);
      continue;
    }
    out->SetNotNull(out_row);
    const uint8_t* value = slot + 1;
    switch (state_->build_schema.field(c).type.id()) {
      case TypeId::kBoolean:
        out->data<uint8_t>()[out_row] = *value;
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        std::memcpy(&out->data<int32_t>()[out_row], value, 4);
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        std::memcpy(&out->data<int64_t>()[out_row], value, 8);
        break;
      case TypeId::kFloat64:
        std::memcpy(&out->data<double>()[out_row], value, 8);
        break;
      case TypeId::kDecimal128:
        std::memcpy(&out->data<int128_t>()[out_row], value, 16);
        break;
      case TypeId::kString: {
        StringRef s;
        std::memcpy(&s, value, sizeof(s));
        out->SetString(out_row, s.data, s.len);
        break;
      }
    }
  }
}

Result<bool> HashJoinOperator::ResidualMatches(const ColumnBatch& batch,
                                               int probe_row,
                                               const uint8_t* entry) {
  if (residual_ == nullptr) return true;
  // Boxed combined row: probe columns then build columns.
  std::vector<Value> row;
  row.reserve(batch.num_columns() + state_->build_schema.num_fields());
  for (int c = 0; c < batch.num_columns(); c++) {
    row.push_back(batch.column(c)->GetValue(probe_row));
  }
  for (int c = 0; c < state_->build_schema.num_fields(); c++) {
    const uint8_t* slot =
        state_->table->payload(entry) + state_->payload_offsets[c];
    if (*slot) {
      row.push_back(Value::Null());
      continue;
    }
    const uint8_t* value = slot + 1;
    switch (state_->build_schema.field(c).type.id()) {
      case TypeId::kBoolean:
        row.push_back(Value::Boolean(*value != 0));
        break;
      case TypeId::kInt32: {
        int32_t v;
        std::memcpy(&v, value, 4);
        row.push_back(Value::Int32(v));
        break;
      }
      case TypeId::kDate32: {
        int32_t v;
        std::memcpy(&v, value, 4);
        row.push_back(Value::Date32(v));
        break;
      }
      case TypeId::kInt64: {
        int64_t v;
        std::memcpy(&v, value, 8);
        row.push_back(Value::Int64(v));
        break;
      }
      case TypeId::kTimestamp: {
        int64_t v;
        std::memcpy(&v, value, 8);
        row.push_back(Value::Timestamp(v));
        break;
      }
      case TypeId::kFloat64: {
        double v;
        std::memcpy(&v, value, 8);
        row.push_back(Value::Float64(v));
        break;
      }
      case TypeId::kDecimal128: {
        int128_t v;
        std::memcpy(&v, value, 16);
        row.push_back(Value::Decimal(Decimal128(v)));
        break;
      }
      case TypeId::kString: {
        StringRef s;
        std::memcpy(&s, value, sizeof(s));
        row.push_back(Value::String(std::string(s.data, s.len)));
        break;
      }
    }
  }
  PHOTON_ASSIGN_OR_RETURN(Value v, residual_->EvaluateRow(row));
  return !v.is_null() && v.boolean();
}

Status HashJoinOperator::ProbeBatch(ColumnBatch* batch) {
  int n = batch->num_active();
  std::vector<const ColumnVector*> key_vecs;
  for (const ExprPtr& k : probe_keys_) {
    PHOTON_ASSIGN_OR_RETURN(ColumnVector * v, k->Evaluate(batch, &ctx_));
    key_vecs.push_back(v);
  }
  hashes_.resize(n);
  match_heads_.resize(n);
  VectorizedHashTable::HashKeys(key_vecs, *batch, hashes_.data());
  // Const probe with caller-owned scratch: the table may be shared with
  // other tasks probing concurrently.
  const VectorizedHashTable& table = *state_->table;
  table.Lookup(key_vecs, *batch, hashes_.data(), match_heads_.data(),
               &probe_scratch_);
  probe_batch_ = batch;
  probe_idx_ = 0;
  chain_entry_ = nullptr;
  return Status::OK();
}

/// Copies active rows of `accum_source_` (from `accum_source_pos_`) into
/// the compaction buffer until it fills or the source is drained.
void HashJoinOperator::DrainSparseSource() {
  int n = accum_source_->num_active();
  while (accum_source_pos_ < n && accum_rows_ < accum_->capacity()) {
    CopyRow(*accum_source_, accum_source_->ActiveRow(accum_source_pos_),
            accum_.get(), accum_rows_);
    accum_source_pos_++;
    accum_rows_++;
  }
  if (accum_source_pos_ >= n) accum_source_ = nullptr;
}

Result<ColumnBatch*> HashJoinOperator::ProbeNextBatch() {
  // Adaptive compaction (§4.6, Figure 9): sparse probe batches (most rows
  // deactivated by upstream filters) are coalesced into one dense batch
  // before probing. Dense batches keep the hash-table loads saturating the
  // memory system and amortize per-batch interpretation overhead in the
  // operators downstream of the join — sparse batches incur high memory
  // latency without saturating bandwidth, and can even lose to the
  // row-at-a-time engine.
  if (accum_ == nullptr && adaptive_compaction_) {
    accum_ = std::make_unique<ColumnBatch>(probe_->output_schema(),
                                           exec_ctx_.batch_size);
  }
  if (accum_in_flight_) {
    // The previously probed compaction buffer is fully emitted: recycle it.
    accum_->Reset();
    accum_rows_ = 0;
    accum_in_flight_ = false;
  }

  auto probe_accum = [&]() -> Result<ColumnBatch*> {
    accum_->set_num_rows(accum_rows_);
    accum_->SetAllActive();
    accum_in_flight_ = true;
    compacted_batches_++;
    PHOTON_RETURN_NOT_OK(ProbeBatch(accum_.get()));
    return accum_.get();
  };

  while (true) {
    if (pending_dense_ != nullptr && accum_rows_ == 0) {
      ColumnBatch* batch = pending_dense_;
      pending_dense_ = nullptr;
      ctx_.ResetPerBatch();
      PHOTON_RETURN_NOT_OK(ProbeBatch(batch));
      return batch;
    }
    if (accum_source_ != nullptr) {
      DrainSparseSource();
      if (accum_rows_ == accum_->capacity()) return probe_accum();
    }

    ctx_.ResetPerBatch();
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, probe_->GetNext());
    if (batch == nullptr) {
      if (accum_rows_ > 0) return probe_accum();
      return nullptr;
    }
    if (batch->num_active() == 0) continue;

    bool sparse = adaptive_compaction_ && !batch->all_active() &&
                  batch->Sparsity() < kCompactionSparsityThreshold;
    if (!sparse) {
      if (accum_rows_ > 0) {
        // Flush the accumulated rows first; probe this batch afterwards.
        pending_dense_ = batch;
        return probe_accum();
      }
      PHOTON_RETURN_NOT_OK(ProbeBatch(batch));
      return batch;
    }
    accum_source_ = batch;
    accum_source_pos_ = 0;
    DrainSparseSource();
    if (accum_rows_ == accum_->capacity()) return probe_accum();
  }
}

Result<ColumnBatch*> HashJoinOperator::EmitMatches() {
  // Semi/anti: narrow the probe batch's position list in place.
  if (join_type_ == JoinType::kLeftSemi || join_type_ == JoinType::kLeftAnti) {
    ColumnBatch* batch = probe_batch_;
    int n = batch->num_active();
    int32_t* pos = batch->mutable_pos_list();
    int out = 0;
    for (int i = 0; i < n; i++) {
      int row = batch->ActiveRow(i);
      bool matched = false;
      for (const uint8_t* e = match_heads_[i]; e != nullptr;
           e = VectorizedHashTable::next(e)) {
        PHOTON_ASSIGN_OR_RETURN(bool ok, ResidualMatches(*batch, row, e));
        if (ok) {
          matched = true;
          break;
        }
      }
      bool keep = join_type_ == JoinType::kLeftSemi ? matched : !matched;
      if (keep) pos[out++] = row;
    }
    batch->SetActiveRows(out);
    probe_batch_ = nullptr;  // fully consumed
    return out > 0 ? batch : nullptr;
  }

  // Inner / left outer: gather matching pairs into the output batch.
  if (out_ == nullptr) {
    out_ = std::make_unique<ColumnBatch>(output_schema_,
                                         exec_ctx_.batch_size);
  }
  out_->Reset();
  int out_row = 0;
  int n = probe_batch_->num_active();
  while (probe_idx_ < n && out_row < out_->capacity()) {
    int row = probe_batch_->ActiveRow(probe_idx_);
    if (!chain_open_) {
      // Starting this probe row.
      chain_entry_ = match_heads_[probe_idx_];
      chain_open_ = true;
      chain_matched_ = false;
    }
    while (chain_entry_ != nullptr && out_row < out_->capacity()) {
      // Left outer evaluates the residual per candidate pair (like
      // semi/anti): only passing pairs are matches, and a probe row whose
      // candidates all fail is NULL-padded below. Inner instead defers to
      // the vectorized FilterBatch over the emitted batch.
      if (residual_ != nullptr && join_type_ == JoinType::kLeftOuter) {
        PHOTON_ASSIGN_OR_RETURN(
            bool ok, ResidualMatches(*probe_batch_, row, chain_entry_));
        if (!ok) {
          chain_entry_ = VectorizedHashTable::next(chain_entry_);
          continue;
        }
      }
      EmitProbeColumns(*probe_batch_, row, out_row);
      EmitBuildColumns(chain_entry_, out_row);
      out_row++;
      chain_matched_ = true;
      chain_entry_ = VectorizedHashTable::next(chain_entry_);
    }
    if (chain_entry_ != nullptr) break;  // output batch full mid-chain
    if (join_type_ == JoinType::kLeftOuter && !chain_matched_) {
      if (out_row >= out_->capacity()) break;  // NULL-pad in the next batch
      EmitProbeColumns(*probe_batch_, row, out_row);
      EmitBuildColumns(nullptr, out_row);
      out_row++;
    }
    chain_open_ = false;
    probe_idx_++;
  }
  if (probe_idx_ >= n) probe_batch_ = nullptr;  // batch exhausted
  if (out_row == 0) return nullptr;
  out_->set_num_rows(out_row);
  out_->SetAllActive();
  if (residual_ != nullptr && join_type_ == JoinType::kInner) {
    ctx_.ResetPerBatch();
    PHOTON_ASSIGN_OR_RETURN(int active,
                            FilterBatch(*residual_, out_.get(), &ctx_));
    if (active == 0) return nullptr;
  }
  return out_.get();
}

Result<ColumnBatch*> HashJoinOperator::GetNextImpl() {
  if (!built_) {
    PHOTON_RETURN_NOT_OK(BuildPhase());
  }
  while (true) {
    if (probe_batch_ == nullptr) {
      PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, ProbeNextBatch());
      if (batch == nullptr) return nullptr;
    }
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * out, EmitMatches());
    if (out != nullptr) return out;
  }
}

void HashJoinOperator::Close() {
  if (build_ != nullptr) build_->Close();
  probe_->Close();
  if (build_ != nullptr && state_->memory_manager != nullptr &&
      state_->reserved_bytes() > 0) {
    // Private build: release eagerly; a shared build's reservation is
    // released when the last prober drops its reference.
    state_->memory_manager->Release(state_.get(), state_->reserved_bytes());
    state_->reserved_for_data = 0;
  }
}

void HashJoinOperator::PublishMetricsImpl() {
  if (state_ == nullptr) return;
  int64_t peak = state_->peak_reserved_bytes();
  if (state_->table != nullptr && state_->table->memory_bytes() > peak) {
    peak = state_->table->memory_bytes();
  }
  stats_.SetMax(obs::Metric::kPeakReservedBytes, peak);
  if (build_ != nullptr) {
    // Private build: this operator did the reserving. (A shared build's
    // waits would be double-counted if every prober published them.)
    stats_.Add(obs::Metric::kReserveWaitNs, state_->reserve_wait_ns());
    stats_.Add(obs::Metric::kReserveWaits, state_->reserve_waits());
  }
}

}  // namespace photon
