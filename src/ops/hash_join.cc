#include "ops/hash_join.h"

#include <cstring>

namespace photon {
namespace {

constexpr double kCompactionSparsityThreshold = 0.5;

}  // namespace

Schema HashJoinOperator::MakeOutputSchema(const Operator& build,
                                          const Operator& probe,
                                          JoinType join_type) {
  if (join_type == JoinType::kLeftSemi || join_type == JoinType::kLeftAnti) {
    return probe.output_schema();
  }
  Schema schema = probe.output_schema();
  for (const Field& f : build.output_schema().fields()) {
    Field field = f;
    if (join_type == JoinType::kLeftOuter) field.nullable = true;
    schema.AddField(field);
  }
  return schema;
}

HashJoinOperator::HashJoinOperator(OperatorPtr build, OperatorPtr probe,
                                   std::vector<ExprPtr> build_keys,
                                   std::vector<ExprPtr> probe_keys,
                                   JoinType join_type, ExecContext exec_ctx,
                                   ExprPtr residual,
                                   bool adaptive_compaction)
    : Operator(MakeOutputSchema(*build, *probe, join_type)),
      MemoryConsumer("PhotonHashJoin"),
      build_(std::move(build)),
      probe_(std::move(probe)),
      build_keys_(std::move(build_keys)),
      probe_keys_(std::move(probe_keys)),
      join_type_(join_type),
      exec_ctx_(exec_ctx),
      residual_(std::move(residual)),
      adaptive_compaction_(adaptive_compaction) {
  PHOTON_CHECK(build_keys_.size() == probe_keys_.size());
  build_schema_ = build_->output_schema();
  // Payload layout: per build column, an 8-aligned slot of 1 null byte
  // followed by the value (packed after the null byte).
  int offset = 0;
  for (const Field& f : build_schema_.fields()) {
    offset = (offset + 7) & ~7;
    payload_offsets_.push_back(offset);
    offset += 1 + f.type.byte_width();
  }
  payload_bytes_ = offset;
}

HashJoinOperator::~HashJoinOperator() {
  if (exec_ctx_.memory_manager != nullptr) {
    exec_ctx_.memory_manager->Release(this, reserved_bytes());
    exec_ctx_.memory_manager->UnregisterConsumer(this);
  }
}

Status HashJoinOperator::Open() {
  PHOTON_RETURN_NOT_OK(build_->Open());
  PHOTON_RETURN_NOT_OK(probe_->Open());
  std::vector<DataType> key_types;
  for (const ExprPtr& k : build_keys_) key_types.push_back(k->type());
  table_ = std::make_unique<VectorizedHashTable>(key_types, payload_bytes_,
                                                 /*match_null_keys=*/false);
  if (exec_ctx_.memory_manager != nullptr) {
    exec_ctx_.memory_manager->RegisterConsumer(this);
  }
  built_ = false;
  probe_batch_ = nullptr;
  probe_idx_ = 0;
  chain_entry_ = nullptr;
  accum_.reset();
  accum_rows_ = 0;
  accum_in_flight_ = false;
  pending_dense_ = nullptr;
  accum_source_ = nullptr;
  accum_source_pos_ = 0;
  return Status::OK();
}

void HashJoinOperator::WriteBuildPayload(const ColumnBatch& batch, int row,
                                         uint8_t* entry) {
  uint8_t* payload = table_->payload(entry);
  for (int c = 0; c < build_schema_.num_fields(); c++) {
    uint8_t* slot = payload + payload_offsets_[c];
    const ColumnVector& col = *batch.column(c);
    if (col.IsNull(row)) {
      *slot = 1;
      continue;
    }
    *slot = 0;
    uint8_t* value = slot + 1;
    switch (col.type().id()) {
      case TypeId::kBoolean:
        *value = col.data<uint8_t>()[row];
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        std::memcpy(value, &col.data<int32_t>()[row], 4);
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        std::memcpy(value, &col.data<int64_t>()[row], 8);
        break;
      case TypeId::kFloat64:
        std::memcpy(value, &col.data<double>()[row], 8);
        break;
      case TypeId::kDecimal128:
        std::memcpy(value, &col.data<int128_t>()[row], 16);
        break;
      case TypeId::kString: {
        StringRef s = col.data<StringRef>()[row];
        StringRef owned = table_->string_arena()->AddString(s);
        std::memcpy(value, &owned, sizeof(owned));
        break;
      }
    }
  }
}

Status HashJoinOperator::BuildPhase() {
  std::vector<uint64_t> hashes;
  std::vector<uint8_t*> entries;
  std::unique_ptr<bool[]> inserted;
  int inserted_capacity = 0;
  EvalContext ctx;

  while (true) {
    ctx.ResetPerBatch();
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, build_->GetNext());
    if (batch == nullptr) break;
    int n = batch->num_active();
    if (n == 0) continue;

    // Reservation phase before growing the table (§5.3).
    if (exec_ctx_.memory_manager != nullptr) {
      int64_t estimate = static_cast<int64_t>(n) * (payload_bytes_ + 96);
      PHOTON_RETURN_NOT_OK(exec_ctx_.memory_manager->Reserve(this, estimate));
      reserved_for_data_ += estimate;
    }

    std::vector<const ColumnVector*> key_vecs;
    for (const ExprPtr& k : build_keys_) {
      PHOTON_ASSIGN_OR_RETURN(ColumnVector * v, k->Evaluate(batch, &ctx));
      key_vecs.push_back(v);
    }
    hashes.resize(n);
    entries.resize(n);
    if (inserted_capacity < n) {
      inserted = std::make_unique<bool[]>(n);
      inserted_capacity = n;
    }
    VectorizedHashTable::HashKeys(key_vecs, *batch, hashes.data());
    PHOTON_RETURN_NOT_OK(table_->LookupOrInsert(
        key_vecs, *batch, hashes.data(), entries.data(), inserted.get()));
    for (int i = 0; i < n; i++) {
      if (entries[i] == nullptr) continue;  // NULL join key: never matches
      int row = batch->ActiveRow(i);
      uint8_t* target =
          inserted[i] ? entries[i] : table_->InsertChained(entries[i]);
      WriteBuildPayload(*batch, row, target);
      build_rows_++;
    }
  }
  built_ = true;
  metrics_.peak_memory = table_->memory_bytes();
  return Status::OK();
}

void HashJoinOperator::EmitProbeColumns(const ColumnBatch& batch, int row,
                                        int out_row) {
  for (int c = 0; c < batch.num_columns(); c++) {
    const ColumnVector& in = *batch.column(c);
    ColumnVector* out = out_->column(c);
    if (in.IsNull(row)) {
      out->SetNull(out_row);
      continue;
    }
    out->SetNotNull(out_row);
    switch (in.type().id()) {
      case TypeId::kBoolean:
        out->data<uint8_t>()[out_row] = in.data<uint8_t>()[row];
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        out->data<int32_t>()[out_row] = in.data<int32_t>()[row];
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        out->data<int64_t>()[out_row] = in.data<int64_t>()[row];
        break;
      case TypeId::kFloat64:
        out->data<double>()[out_row] = in.data<double>()[row];
        break;
      case TypeId::kDecimal128:
        out->data<int128_t>()[out_row] = in.data<int128_t>()[row];
        break;
      case TypeId::kString: {
        StringRef s = in.data<StringRef>()[row];
        out->SetString(out_row, s.data, s.len);
        break;
      }
    }
  }
}

void HashJoinOperator::EmitBuildColumns(const uint8_t* entry, int out_row) {
  int base = probe_->output_schema().num_fields();
  for (int c = 0; c < build_schema_.num_fields(); c++) {
    ColumnVector* out = out_->column(base + c);
    if (entry == nullptr) {
      out->SetNull(out_row);
      continue;
    }
    const uint8_t* slot = table_->payload(entry) + payload_offsets_[c];
    if (*slot) {
      out->SetNull(out_row);
      continue;
    }
    out->SetNotNull(out_row);
    const uint8_t* value = slot + 1;
    switch (build_schema_.field(c).type.id()) {
      case TypeId::kBoolean:
        out->data<uint8_t>()[out_row] = *value;
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        std::memcpy(&out->data<int32_t>()[out_row], value, 4);
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        std::memcpy(&out->data<int64_t>()[out_row], value, 8);
        break;
      case TypeId::kFloat64:
        std::memcpy(&out->data<double>()[out_row], value, 8);
        break;
      case TypeId::kDecimal128:
        std::memcpy(&out->data<int128_t>()[out_row], value, 16);
        break;
      case TypeId::kString: {
        StringRef s;
        std::memcpy(&s, value, sizeof(s));
        out->SetString(out_row, s.data, s.len);
        break;
      }
    }
  }
}

Result<bool> HashJoinOperator::ResidualMatches(const ColumnBatch& batch,
                                               int probe_row,
                                               const uint8_t* entry) {
  if (residual_ == nullptr) return true;
  // Boxed combined row: probe columns then build columns.
  std::vector<Value> row;
  row.reserve(batch.num_columns() + build_schema_.num_fields());
  for (int c = 0; c < batch.num_columns(); c++) {
    row.push_back(batch.column(c)->GetValue(probe_row));
  }
  for (int c = 0; c < build_schema_.num_fields(); c++) {
    const uint8_t* slot = table_->payload(entry) + payload_offsets_[c];
    if (*slot) {
      row.push_back(Value::Null());
      continue;
    }
    const uint8_t* value = slot + 1;
    switch (build_schema_.field(c).type.id()) {
      case TypeId::kBoolean:
        row.push_back(Value::Boolean(*value != 0));
        break;
      case TypeId::kInt32: {
        int32_t v;
        std::memcpy(&v, value, 4);
        row.push_back(Value::Int32(v));
        break;
      }
      case TypeId::kDate32: {
        int32_t v;
        std::memcpy(&v, value, 4);
        row.push_back(Value::Date32(v));
        break;
      }
      case TypeId::kInt64: {
        int64_t v;
        std::memcpy(&v, value, 8);
        row.push_back(Value::Int64(v));
        break;
      }
      case TypeId::kTimestamp: {
        int64_t v;
        std::memcpy(&v, value, 8);
        row.push_back(Value::Timestamp(v));
        break;
      }
      case TypeId::kFloat64: {
        double v;
        std::memcpy(&v, value, 8);
        row.push_back(Value::Float64(v));
        break;
      }
      case TypeId::kDecimal128: {
        int128_t v;
        std::memcpy(&v, value, 16);
        row.push_back(Value::Decimal(Decimal128(v)));
        break;
      }
      case TypeId::kString: {
        StringRef s;
        std::memcpy(&s, value, sizeof(s));
        row.push_back(Value::String(std::string(s.data, s.len)));
        break;
      }
    }
  }
  PHOTON_ASSIGN_OR_RETURN(Value v, residual_->EvaluateRow(row));
  return !v.is_null() && v.boolean();
}

Status HashJoinOperator::ProbeBatch(ColumnBatch* batch) {
  int n = batch->num_active();
  std::vector<const ColumnVector*> key_vecs;
  for (const ExprPtr& k : probe_keys_) {
    PHOTON_ASSIGN_OR_RETURN(ColumnVector * v, k->Evaluate(batch, &ctx_));
    key_vecs.push_back(v);
  }
  hashes_.resize(n);
  match_heads_.resize(n);
  VectorizedHashTable::HashKeys(key_vecs, *batch, hashes_.data());
  table_->Lookup(key_vecs, *batch, hashes_.data(), match_heads_.data());
  probe_batch_ = batch;
  probe_idx_ = 0;
  chain_entry_ = nullptr;
  return Status::OK();
}

/// Copies active rows of `accum_source_` (from `accum_source_pos_`) into
/// the compaction buffer until it fills or the source is drained.
void HashJoinOperator::DrainSparseSource() {
  int n = accum_source_->num_active();
  while (accum_source_pos_ < n && accum_rows_ < accum_->capacity()) {
    CopyRow(*accum_source_, accum_source_->ActiveRow(accum_source_pos_),
            accum_.get(), accum_rows_);
    accum_source_pos_++;
    accum_rows_++;
  }
  if (accum_source_pos_ >= n) accum_source_ = nullptr;
}

Result<ColumnBatch*> HashJoinOperator::ProbeNextBatch() {
  // Adaptive compaction (§4.6, Figure 9): sparse probe batches (most rows
  // deactivated by upstream filters) are coalesced into one dense batch
  // before probing. Dense batches keep the hash-table loads saturating the
  // memory system and amortize per-batch interpretation overhead in the
  // operators downstream of the join — sparse batches incur high memory
  // latency without saturating bandwidth, and can even lose to the
  // row-at-a-time engine.
  if (accum_ == nullptr && adaptive_compaction_) {
    accum_ = std::make_unique<ColumnBatch>(probe_->output_schema(),
                                           exec_ctx_.batch_size);
  }
  if (accum_in_flight_) {
    // The previously probed compaction buffer is fully emitted: recycle it.
    accum_->Reset();
    accum_rows_ = 0;
    accum_in_flight_ = false;
  }

  auto probe_accum = [&]() -> Result<ColumnBatch*> {
    accum_->set_num_rows(accum_rows_);
    accum_->SetAllActive();
    accum_in_flight_ = true;
    compacted_batches_++;
    PHOTON_RETURN_NOT_OK(ProbeBatch(accum_.get()));
    return accum_.get();
  };

  while (true) {
    if (pending_dense_ != nullptr && accum_rows_ == 0) {
      ColumnBatch* batch = pending_dense_;
      pending_dense_ = nullptr;
      ctx_.ResetPerBatch();
      PHOTON_RETURN_NOT_OK(ProbeBatch(batch));
      return batch;
    }
    if (accum_source_ != nullptr) {
      DrainSparseSource();
      if (accum_rows_ == accum_->capacity()) return probe_accum();
    }

    ctx_.ResetPerBatch();
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, probe_->GetNext());
    if (batch == nullptr) {
      if (accum_rows_ > 0) return probe_accum();
      return nullptr;
    }
    if (batch->num_active() == 0) continue;

    bool sparse = adaptive_compaction_ && !batch->all_active() &&
                  batch->Sparsity() < kCompactionSparsityThreshold;
    if (!sparse) {
      if (accum_rows_ > 0) {
        // Flush the accumulated rows first; probe this batch afterwards.
        pending_dense_ = batch;
        return probe_accum();
      }
      PHOTON_RETURN_NOT_OK(ProbeBatch(batch));
      return batch;
    }
    accum_source_ = batch;
    accum_source_pos_ = 0;
    DrainSparseSource();
    if (accum_rows_ == accum_->capacity()) return probe_accum();
  }
}

Result<ColumnBatch*> HashJoinOperator::EmitMatches() {
  // Semi/anti: narrow the probe batch's position list in place.
  if (join_type_ == JoinType::kLeftSemi || join_type_ == JoinType::kLeftAnti) {
    ColumnBatch* batch = probe_batch_;
    int n = batch->num_active();
    int32_t* pos = batch->mutable_pos_list();
    int out = 0;
    for (int i = 0; i < n; i++) {
      int row = batch->ActiveRow(i);
      bool matched = false;
      for (const uint8_t* e = match_heads_[i]; e != nullptr;
           e = VectorizedHashTable::next(e)) {
        PHOTON_ASSIGN_OR_RETURN(bool ok, ResidualMatches(*batch, row, e));
        if (ok) {
          matched = true;
          break;
        }
      }
      bool keep = join_type_ == JoinType::kLeftSemi ? matched : !matched;
      if (keep) pos[out++] = row;
    }
    batch->SetActiveRows(out);
    probe_batch_ = nullptr;  // fully consumed
    return out > 0 ? batch : nullptr;
  }

  // Inner / left outer: gather matching pairs into the output batch.
  if (out_ == nullptr) {
    out_ = std::make_unique<ColumnBatch>(output_schema_,
                                         exec_ctx_.batch_size);
  }
  out_->Reset();
  int out_row = 0;
  int n = probe_batch_->num_active();
  while (probe_idx_ < n && out_row < out_->capacity()) {
    int row = probe_batch_->ActiveRow(probe_idx_);
    if (chain_entry_ == nullptr) {
      // Starting this probe row.
      chain_entry_ = match_heads_[probe_idx_];
      if (chain_entry_ == nullptr) {
        if (join_type_ == JoinType::kLeftOuter) {
          EmitProbeColumns(*probe_batch_, row, out_row);
          EmitBuildColumns(nullptr, out_row);
          out_row++;
        }
        probe_idx_++;
        continue;
      }
    }
    while (chain_entry_ != nullptr && out_row < out_->capacity()) {
      EmitProbeColumns(*probe_batch_, row, out_row);
      EmitBuildColumns(chain_entry_, out_row);
      out_row++;
      chain_entry_ = VectorizedHashTable::next(chain_entry_);
    }
    if (chain_entry_ == nullptr) probe_idx_++;
  }
  if (probe_idx_ >= n) probe_batch_ = nullptr;  // batch exhausted
  if (out_row == 0) return nullptr;
  out_->set_num_rows(out_row);
  out_->SetAllActive();
  if (residual_ != nullptr && join_type_ == JoinType::kInner) {
    ctx_.ResetPerBatch();
    PHOTON_ASSIGN_OR_RETURN(int active,
                            FilterBatch(*residual_, out_.get(), &ctx_));
    if (active == 0) return nullptr;
  }
  return out_.get();
}

Result<ColumnBatch*> HashJoinOperator::GetNextImpl() {
  if (!built_) {
    PHOTON_RETURN_NOT_OK(BuildPhase());
  }
  while (true) {
    if (probe_batch_ == nullptr) {
      PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, ProbeNextBatch());
      if (batch == nullptr) return nullptr;
    }
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * out, EmitMatches());
    if (out != nullptr) return out;
  }
}

void HashJoinOperator::Close() {
  build_->Close();
  probe_->Close();
  if (exec_ctx_.memory_manager != nullptr && reserved_bytes() > 0) {
    exec_ctx_.memory_manager->Release(this, reserved_bytes());
    reserved_for_data_ = 0;
  }
}

}  // namespace photon
