#ifndef PHOTON_OPS_SHUFFLE_H_
#define PHOTON_OPS_SHUFFLE_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "ops/operator.h"
#include "storage/compress.h"
#include "storage/object_store.h"

namespace photon {

/// Options controlling Photon shuffle writes.
struct ShuffleOptions {
  int num_partitions = 4;
  /// Distinguishes block names when several map tasks write the same
  /// shuffle id concurrently (the stage/task model of §2.2).
  int writer_id = 0;
  /// Adaptive shuffle encodings (§4.6, Table 1): inspect string columns per
  /// block and switch UUID columns to 128-bit binary, integer-like strings
  /// to varints.
  bool adaptive_encoding = true;
  Codec codec = Codec::kLz;
};

/// Hash-partitions its input and writes per-partition blocks (serialized,
/// optionally adaptively encoded, compressed column batches) to the object
/// store under "shuffle/<id>/p<k>/". Photon shuffle files use Photon's own
/// serialization format, so a Photon shuffle write must be read by a Photon
/// shuffle read (§5.2).
///
/// This operator is a sink: GetNext drains the child, writes all blocks,
/// and returns end-of-stream. The paired ShuffleReadOperator streams one
/// partition (or all) back.
class ShuffleWriteOperator : public Operator {
 public:
  ShuffleWriteOperator(OperatorPtr child, std::vector<ExprPtr> partition_keys,
                       std::string shuffle_id, ShuffleOptions options = {},
                       ExecContext exec_ctx = {});

  Status Open() override;
  Result<ColumnBatch*> GetNextImpl() override;
  void Close() override { child_->Close(); }
  std::string name() const override { return "PhotonShuffleWrite"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

  int64_t bytes_written() const { return bytes_written_; }
  int64_t blocks_written() const { return blocks_written_; }

 private:
  Status PartitionBatch(ColumnBatch* batch);
  Status FlushPartition(int p);

  OperatorPtr child_;
  std::vector<ExprPtr> partition_keys_;
  std::string shuffle_id_;
  ShuffleOptions options_;
  ExecContext exec_ctx_;

  std::vector<std::unique_ptr<ColumnBatch>> staging_;
  std::vector<int> staging_rows_;
  std::vector<int> block_seq_;
  std::vector<uint64_t> hashes_;
  EvalContext ctx_;
  int64_t bytes_written_ = 0;
  int64_t blocks_written_ = 0;
  bool done_ = false;
};

/// Reads one partition (or all partitions) of a shuffle previously written
/// by ShuffleWriteOperator.
class ShuffleReadOperator : public Operator {
 public:
  ShuffleReadOperator(Schema schema, std::string shuffle_id,
                      int partition = -1 /* -1 = all */);

  Status Open() override;
  Result<ColumnBatch*> GetNextImpl() override;
  std::string name() const override { return "PhotonShuffleRead"; }

 private:
  std::string shuffle_id_;
  int partition_;
  std::vector<std::string> block_keys_;
  size_t next_block_ = 0;
  std::unique_ptr<ColumnBatch> current_;
};

/// Total bytes currently stored for a shuffle id (post-compression).
int64_t ShuffleDataBytes(const std::string& shuffle_id);
/// Removes all blocks of a shuffle id.
void DeleteShuffle(const std::string& shuffle_id);

}  // namespace photon

#endif  // PHOTON_OPS_SHUFFLE_H_
