#ifndef PHOTON_OPS_OPERATOR_H_
#define PHOTON_OPS_OPERATOR_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/eval_context.h"
#include "memory/memory_manager.h"
#include "vector/column_batch.h"

namespace photon {

class Table;

/// Per-operator runtime metrics. Maintaining abstraction boundaries between
/// operators is what makes these cheap to collect — the paper calls this
/// out as a core advantage of vectorized-interpreted execution over code
/// generation (§3.3 "Observability is easier").
struct OperatorMetrics {
  int64_t batches_out = 0;
  int64_t rows_out = 0;
  int64_t time_ns = 0;      // wall time inside this operator's GetNext
  int64_t peak_memory = 0;  // bytes, large persistent allocations only
  int64_t spill_count = 0;
  int64_t spilled_bytes = 0;
};

/// Shared per-task execution state.
struct ExecContext {
  /// Unified memory manager (may be shared with other tasks and with the
  /// baseline engine, mirroring §5.3). Null = unlimited, no spilling.
  MemoryManager* memory_manager = nullptr;
  /// Directory-like prefix for spill artifacts (object-store keys).
  std::string spill_prefix = "spill";
  int batch_size = kDefaultBatchSize;
  /// Memory task group for consumers created under this context (see
  /// MemoryConsumer::task_group). The parallel driver assigns each task a
  /// distinct group so cross-thread spills cannot race.
  int64_t task_group = 0;
};

/// Photon physical operator. Pull model: parents call GetNext() to receive
/// column batches; nullptr signals end-of-stream (the paper's
/// HasNext()/GetNext() pair collapsed into one call). A returned batch is
/// owned by the operator and valid until its next GetNext() call.
class Operator {
 public:
  explicit Operator(Schema output_schema)
      : output_schema_(std::move(output_schema)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const Schema& output_schema() const { return output_schema_; }

  virtual Status Open() = 0;

  /// Pulls the next batch; nullptr at end-of-stream. Wraps the virtual
  /// implementation with metric accounting.
  Result<ColumnBatch*> GetNext() {
    auto start = std::chrono::steady_clock::now();
    Result<ColumnBatch*> result = GetNextImpl();
    auto end = std::chrono::steady_clock::now();
    metrics_.time_ns +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count();
    if (result.ok() && *result != nullptr) {
      metrics_.batches_out++;
      metrics_.rows_out += (*result)->num_active();
    }
    return result;
  }

  virtual void Close() {}
  virtual std::string name() const = 0;

  /// Child operators, for plan-wide metric collection and explain output.
  virtual std::vector<Operator*> children() { return {}; }

  const OperatorMetrics& metrics() const { return metrics_; }

 protected:
  virtual Result<ColumnBatch*> GetNextImpl() = 0;

  Schema output_schema_;
  OperatorMetrics metrics_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains an operator tree into an in-memory table (test/bench helper).
Result<Table> CollectAll(Operator* root);

/// Renders the operator tree with per-operator metrics — the live-metrics
/// observability §3.3 credits to keeping operator boundaries intact
/// ("each operator can thus maintain its own set of metrics"). Self time
/// is wall time inside the operator minus its children's.
std::string ExplainAnalyze(Operator* root);

}  // namespace photon

#endif  // PHOTON_OPS_OPERATOR_H_
