#ifndef PHOTON_OPS_OPERATOR_H_
#define PHOTON_OPS_OPERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "expr/eval_context.h"
#include "memory/memory_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vector/column_batch.h"

namespace photon {

class Table;

/// Legacy per-operator metrics view, now a snapshot of the operator's
/// obs::MetricSet (see op_metrics()). Maintaining abstraction boundaries
/// between operators is what makes these cheap to collect — the paper
/// calls this out as a core advantage of vectorized-interpreted execution
/// over code generation (§3.3 "Observability is easier").
struct OperatorMetrics {
  int64_t batches_out = 0;
  int64_t rows_out = 0;
  int64_t time_ns = 0;      // wall time inside this operator's GetNext
  int64_t peak_memory = 0;  // bytes, large persistent allocations only
  int64_t spill_count = 0;
  int64_t spilled_bytes = 0;
};

/// Whether the driver runs the cost-based optimizer (src/opt) over logical
/// plans before stage planning. Off by default so hand-built plans execute
/// exactly as written; the differ runs both settings as differential modes.
enum class OptimizerPolicy : uint8_t { kOff, kOn };

/// Shared per-task execution state.
struct ExecContext {
  /// Unified memory manager (may be shared with other tasks and with the
  /// baseline engine, mirroring §5.3). Null = unlimited, no spilling.
  MemoryManager* memory_manager = nullptr;
  /// Directory-like prefix for spill artifacts (object-store keys).
  std::string spill_prefix = "spill";
  int batch_size = kDefaultBatchSize;
  /// Memory task group for consumers created under this context (see
  /// MemoryConsumer::task_group). The parallel driver assigns each task a
  /// distinct group so cross-thread spills cannot race.
  int64_t task_group = 0;
  /// Owning query's cancellation/deadline token (null = uncancellable).
  /// Polled by the driver at morsel claims, batch pulls, and stage
  /// barriers, and by blocked memory reservations.
  QueryControl* control = nullptr;
  /// Per-query MemoryManager::Reserve timeout; negative = the manager's
  /// process-wide default. Threaded onto every consumer this context's
  /// operators register (see MemoryConsumer::reserve_timeout_ms).
  int64_t reserve_timeout_ms = -1;
  /// Expression-execution tier for filter→project chains (fused
  /// interpreter / compiled kernels / interpreted tree). Forced modes are
  /// used by the differ and benches; kTreeOnly also disables the fusion
  /// planner passes entirely.
  ExprPolicy expr_policy = ExprPolicy::kAdaptive;
  /// Cost-based plan optimization (filter/projection pushdown, join
  /// reordering, build-side selection). Applied by the Driver entry points,
  /// so it covers hand-built plans, SQL, the query service, and benches.
  OptimizerPolicy optimizer = OptimizerPolicy::kOff;
};

/// Copies the context's per-query memory policy (task group, reserve
/// timeout, cancellation token) onto a consumer. Operators call this
/// before registering any consumer they create under an ExecContext.
inline void BindConsumerToContext(MemoryConsumer* consumer,
                                  const ExecContext& ctx) {
  consumer->set_task_group(ctx.task_group);
  consumer->set_reserve_timeout_ms(ctx.reserve_timeout_ms);
  consumer->set_control(ctx.control);
}

/// Photon physical operator. Pull model: parents call GetNext() to receive
/// column batches; nullptr signals end-of-stream (the paper's
/// HasNext()/GetNext() pair collapsed into one call). A returned batch is
/// owned by the operator and valid until its next GetNext() call.
///
/// Every operator owns an obs::MetricSet shard. Under the morsel-parallel
/// driver each task instantiates its own operator chain, so the shard is
/// task-local by construction — updates are relaxed atomic adds with no
/// cross-thread contention, merged into the query profile at stage
/// barriers (the §5.2 metrics-integration model).
class Operator {
 public:
  explicit Operator(Schema output_schema)
      : output_schema_(std::move(output_schema)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const Schema& output_schema() const { return output_schema_; }

  virtual Status Open() = 0;

  /// Pulls the next batch; nullptr at end-of-stream. Wraps the virtual
  /// implementation with metric accounting (and a span when tracing).
  Result<ColumnBatch*> GetNext() {
    int64_t start = obs::WallNowNs();
    Result<ColumnBatch*> result = GetNextImpl();
    int64_t dur = obs::WallNowNs() - start;
    stats_.Add(obs::Metric::kWallNs, dur);
    if (result.ok() && *result != nullptr) {
      stats_.Add(obs::Metric::kBatches, 1);
      stats_.Add(obs::Metric::kRowsOut, (*result)->num_active());
      stats_.Add(obs::Metric::kBatchRows, (*result)->num_rows());
    }
    if (obs::Tracer::enabled()) {
      if (trace_name_ == nullptr) {
        trace_name_ = obs::Tracer::InternName(name());
      }
      obs::Tracer::Record(trace_name_, -1, start, dur);
    }
    return result;
  }

  virtual void Close() {}
  virtual std::string name() const = 0;

  /// Child operators, for plan-wide metric collection and explain output.
  virtual std::vector<Operator*> children() { return {}; }

  /// Flushes metrics held in operator-private state (IO stats, memory
  /// peaks) into the metric set. Idempotent; called by the driver before
  /// harvesting and by CollectAll after Close.
  void PublishMetrics() {
    if (published_) return;
    published_ = true;
    PublishMetricsImpl();
  }

  /// This operator's metric shard (the full obs vocabulary).
  const obs::MetricSet& op_metrics() const { return stats_; }

  /// Legacy snapshot view kept for existing tests and ExplainAnalyze.
  OperatorMetrics metrics() const {
    OperatorMetrics m;
    m.batches_out = stats_.Value(obs::Metric::kBatches);
    m.rows_out = stats_.Value(obs::Metric::kRowsOut);
    m.time_ns = stats_.Value(obs::Metric::kWallNs);
    m.peak_memory = stats_.Value(obs::Metric::kPeakReservedBytes);
    m.spill_count = stats_.Value(obs::Metric::kSpillCount);
    m.spilled_bytes = stats_.Value(obs::Metric::kSpillBytes);
    return m;
  }

 protected:
  virtual Result<ColumnBatch*> GetNextImpl() = 0;
  virtual void PublishMetricsImpl() {}

  Schema output_schema_;
  obs::MetricSet stats_;

 private:
  const char* trace_name_ = nullptr;
  bool published_ = false;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Drains an operator tree into an in-memory table (test/bench helper).
/// With a non-null `control` the drain loop is a cancellation point: it
/// checks the token before every batch pull, so a cancelled or
/// deadline-expired query stops between batches (mid-scan, mid-probe)
/// without waiting for the operator to finish its input.
Result<Table> CollectAll(Operator* root, QueryControl* control = nullptr);

/// Calls PublishMetrics on every operator in the tree.
void PublishTreeMetrics(Operator* root);

/// Publishes and folds the tree's resource metrics (IO, memory, spill)
/// into `out`, plus nothing else — flow metrics stay per-operator.
void CollectTreeMetrics(Operator* root, obs::MetricSnapshot* out);

/// Renders the operator tree with per-operator metrics — the live-metrics
/// observability §3.3 credits to keeping operator boundaries intact
/// ("each operator can thus maintain its own set of metrics"). Self time
/// is wall time inside the operator minus its children's.
std::string ExplainAnalyze(Operator* root);

}  // namespace photon

#endif  // PHOTON_OPS_OPERATOR_H_
