#include "ops/project.h"

#include <cstring>

namespace photon {

Schema ProjectOperator::MakeSchema(const std::vector<ExprPtr>& exprs,
                                   const std::vector<std::string>& names) {
  PHOTON_CHECK(exprs.size() == names.size());
  Schema schema;
  for (size_t i = 0; i < exprs.size(); i++) {
    schema.AddField(Field(names[i], exprs[i]->type()));
  }
  return schema;
}

ProjectOperator::ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                                 std::vector<std::string> names)
    : Operator(MakeSchema(exprs, names)),
      child_(std::move(child)),
      exprs_(std::move(exprs)) {}

Result<ColumnBatch*> ProjectOperator::GetNextImpl() {
  ctx_.ResetPerBatch();  // invalidates the previously returned view
  PHOTON_ASSIGN_OR_RETURN(ColumnBatch * in, child_->GetNext());
  if (in == nullptr) return nullptr;

  if (view_ == nullptr || view_->capacity() < in->capacity()) {
    view_ = ColumnBatch::MakeView(output_schema_, in->capacity());
  }
  for (size_t i = 0; i < exprs_.size(); i++) {
    PHOTON_ASSIGN_OR_RETURN(ColumnVector * v, exprs_[i]->Evaluate(in, &ctx_));
    view_->SetColumnView(static_cast<int>(i), v);
  }
  view_->set_num_rows(in->num_rows());
  if (in->all_active()) {
    view_->SetAllActive();
  } else {
    std::memcpy(view_->mutable_pos_list(), in->pos_list(),
                static_cast<size_t>(in->num_active()) * sizeof(int32_t));
    view_->SetActiveRows(in->num_active());
  }
  return view_.get();
}

}  // namespace photon
