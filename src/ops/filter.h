#ifndef PHOTON_OPS_FILTER_H_
#define PHOTON_OPS_FILTER_H_

#include "expr/expr.h"
#include "ops/operator.h"

namespace photon {

/// Filters batches by rewriting their position lists in place (§4.3): rows
/// whose predicate evaluates to false or NULL become inactive. Batches left
/// with no active rows are skipped, not emitted.
class FilterOperator : public Operator {
 public:
  FilterOperator(OperatorPtr child, ExprPtr predicate)
      : Operator(child->output_schema()),
        child_(std::move(child)),
        predicate_(std::move(predicate)) {}

  Status Open() override { return child_->Open(); }

  Result<ColumnBatch*> GetNextImpl() override {
    while (true) {
      ctx_.ResetPerBatch();
      PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, child_->GetNext());
      if (batch == nullptr) return nullptr;
      PHOTON_ASSIGN_OR_RETURN(int active,
                              FilterBatch(*predicate_, batch, &ctx_));
      if (active > 0) return batch;
    }
  }

  void Close() override { child_->Close(); }
  std::string name() const override { return "PhotonFilter"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

 private:
  void PublishMetricsImpl() override {
    stats_.Add(obs::Metric::kScratchPoolHits, ctx_.pool_hits());
    stats_.Add(obs::Metric::kScratchPoolMisses, ctx_.pool_misses());
  }

  OperatorPtr child_;
  ExprPtr predicate_;
  EvalContext ctx_;
};

}  // namespace photon

#endif  // PHOTON_OPS_FILTER_H_
