#ifndef PHOTON_OPS_PROJECT_H_
#define PHOTON_OPS_PROJECT_H_

#include <string>
#include <vector>

#include "expr/expr.h"
#include "ops/operator.h"

namespace photon {

/// Evaluates a list of expressions per batch and emits a *view* batch whose
/// columns point at the expression results (no copies; the vectors live in
/// the operator's EvalContext until the next GetNext). Inherits the child's
/// active set.
class ProjectOperator : public Operator {
 public:
  ProjectOperator(OperatorPtr child, std::vector<ExprPtr> exprs,
                  std::vector<std::string> names);

  Status Open() override { return child_->Open(); }
  Result<ColumnBatch*> GetNextImpl() override;
  void Close() override { child_->Close(); }
  std::string name() const override { return "PhotonProject"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

  static Schema MakeSchema(const std::vector<ExprPtr>& exprs,
                           const std::vector<std::string>& names);

 private:
  void PublishMetricsImpl() override {
    stats_.Add(obs::Metric::kScratchPoolHits, ctx_.pool_hits());
    stats_.Add(obs::Metric::kScratchPoolMisses, ctx_.pool_misses());
  }

  OperatorPtr child_;
  std::vector<ExprPtr> exprs_;
  EvalContext ctx_;
  std::unique_ptr<ColumnBatch> view_;
};

}  // namespace photon

#endif  // PHOTON_OPS_PROJECT_H_
