#include "ops/sort.h"

#include "expr/kernels.h"

#include <algorithm>
#include <cstring>

#include "vector/vector_serde.h"

namespace photon {

int CompareVectorCells(const ColumnVector& a, int row_a,
                       const ColumnVector& b, int row_b) {
  switch (a.type().id()) {
    case TypeId::kBoolean: {
      int av = a.data<uint8_t>()[row_a], bv = b.data<uint8_t>()[row_b];
      return av - bv;
    }
    case TypeId::kInt32:
    case TypeId::kDate32: {
      int32_t av = a.data<int32_t>()[row_a], bv = b.data<int32_t>()[row_b];
      return av < bv ? -1 : (av > bv ? 1 : 0);
    }
    case TypeId::kInt64:
    case TypeId::kTimestamp: {
      int64_t av = a.data<int64_t>()[row_a], bv = b.data<int64_t>()[row_b];
      return av < bv ? -1 : (av > bv ? 1 : 0);
    }
    case TypeId::kFloat64: {
      double av = a.data<double>()[row_a], bv = b.data<double>()[row_b];
      return av < bv ? -1 : (av > bv ? 1 : 0);
    }
    case TypeId::kDecimal128: {
      int128_t av = a.data<int128_t>()[row_a],
               bv = b.data<int128_t>()[row_b];
      return av < bv ? -1 : (av > bv ? 1 : 0);
    }
    case TypeId::kString: {
      StringRef av = a.data<StringRef>()[row_a];
      StringRef bv = b.data<StringRef>()[row_b];
      int min_len = std::min(av.len, bv.len);
      int c = min_len == 0 ? 0 : std::memcmp(av.data, bv.data, min_len);
      return c != 0 ? c : av.len - bv.len;
    }
  }
  return 0;
}

namespace {

/// Streaming cursor over one sorted run: walks the run's batches in order,
/// evaluating the sort keys vectorized once per batch (into the cursor's
/// private EvalContext, so many cursors can be alive at once).
struct RunCursor {
  Table* table = nullptr;
  int batch_idx = -1;
  int pos = 0;  // index into the current batch's active set
  ColumnBatch* batch = nullptr;
  std::vector<ColumnVector*> key_vecs;
  EvalContext ctx;

  /// Moves to the next row; returns false when the run is exhausted.
  Result<bool> Advance(const std::vector<SortKey>& keys) {
    if (batch != nullptr && pos + 1 < batch->num_active()) {
      pos++;
      return true;
    }
    while (++batch_idx < table->num_batches()) {
      batch = table->mutable_batch(batch_idx);
      if (batch->num_active() == 0) continue;
      pos = 0;
      ctx.ResetPerBatch();
      key_vecs.clear();
      for (const SortKey& key : keys) {
        PHOTON_ASSIGN_OR_RETURN(ColumnVector * v,
                                key.expr->Evaluate(batch, &ctx));
        key_vecs.push_back(v);
      }
      return true;
    }
    batch = nullptr;
    return false;
  }

  int row() const { return batch->ActiveRow(pos); }
};

/// SortOperator::Compare semantics over two run cursors: NULL placement is
/// absolute, value order flips with direction, 0 on full tie.
int CompareCursors(const RunCursor& a, const RunCursor& b,
                   const std::vector<SortKey>& keys) {
  for (size_t k = 0; k < keys.size(); k++) {
    const ColumnVector& ka = *a.key_vecs[k];
    const ColumnVector& kb = *b.key_vecs[k];
    int row_a = a.row(), row_b = b.row();
    bool a_null = ka.IsNull(row_a), b_null = kb.IsNull(row_b);
    if (a_null || b_null) {
      if (a_null && b_null) continue;
      int c = a_null ? -1 : 1;
      return keys[k].nulls_first ? c : -c;
    }
    int c = CompareVectorCells(ka, row_a, kb, row_b);
    if (c != 0) return keys[k].ascending ? c : -c;
  }
  return 0;
}

}  // namespace

Result<Table> MergeSortedRuns(const std::vector<Table*>& runs,
                              const std::vector<SortKey>& keys,
                              const Schema& schema, int batch_size) {
  Table out(schema);
  std::vector<std::unique_ptr<RunCursor>> cursors;
  for (Table* run : runs) {
    auto cursor = std::make_unique<RunCursor>();
    cursor->table = run;
    PHOTON_ASSIGN_OR_RETURN(bool alive, cursor->Advance(keys));
    if (alive) cursors.push_back(std::move(cursor));
  }

  std::unique_ptr<ColumnBatch> chunk;
  int chunk_rows = 0;
  while (!cursors.empty()) {
    if (chunk == nullptr) {
      chunk = std::make_unique<ColumnBatch>(schema, batch_size);
      chunk_rows = 0;
    }
    // Linear-scan minimum; strict < keeps the lowest-index run on ties.
    size_t best = 0;
    for (size_t i = 1; i < cursors.size(); i++) {
      if (CompareCursors(*cursors[i], *cursors[best], keys) < 0) best = i;
    }
    CopyRow(*cursors[best]->batch, cursors[best]->row(), chunk.get(),
            chunk_rows);
    chunk_rows++;
    if (chunk_rows == batch_size) {
      chunk->set_num_rows(chunk_rows);
      chunk->SetAllActive();
      out.AppendBatch(std::move(chunk));
    }
    PHOTON_ASSIGN_OR_RETURN(bool alive, cursors[best]->Advance(keys));
    if (!alive) cursors.erase(cursors.begin() + best);
  }
  if (chunk != nullptr && chunk_rows > 0) {
    chunk->set_num_rows(chunk_rows);
    chunk->SetAllActive();
    out.AppendBatch(std::move(chunk));
  }
  return out;
}

SortOperator::SortOperator(OperatorPtr child, std::vector<SortKey> keys,
                           ExecContext exec_ctx)
    : Operator(child->output_schema()),
      MemoryConsumer("PhotonSort"),
      child_(std::move(child)),
      keys_(std::move(keys)),
      exec_ctx_(exec_ctx) {
  for (size_t k = 0; k < keys_.size(); k++) {
    key_schema_.AddField(
        Field("sk" + std::to_string(k), keys_[k].expr->type()));
  }
}

SortOperator::~SortOperator() {
  if (exec_ctx_.memory_manager != nullptr) {
    exec_ctx_.memory_manager->Release(this, reserved_bytes());
    exec_ctx_.memory_manager->UnregisterConsumer(this);
  }
}

Status SortOperator::Open() {
  PHOTON_RETURN_NOT_OK(child_->Open());
  if (exec_ctx_.memory_manager != nullptr) {
    BindConsumerToContext(this, exec_ctx_);
    exec_ctx_.memory_manager->RegisterConsumer(this);
  }
  input_consumed_ = false;
  sorted_ = false;
  emit_pos_ = 0;
  return Status::OK();
}

int64_t SortOperator::CurrentMemoryBytes() const {
  // Rough but monotone: batch footprints + index array.
  int64_t bytes = static_cast<int64_t>(indices_.capacity() * sizeof(RowRef));
  for (const auto& b : data_) {
    for (int c = 0; c < b->num_columns(); c++) {
      bytes += static_cast<int64_t>(b->capacity()) *
               b->column(c)->type().byte_width();
    }
  }
  return bytes;
}

Status SortOperator::ConsumeInput() {
  while (true) {
    ctx_.ResetPerBatch();
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, child_->GetNext());
    if (batch == nullptr) break;
    if (batch->num_active() == 0) continue;

    if (exec_ctx_.memory_manager != nullptr) {
      int64_t estimate = 0;
      for (const Field& f : output_schema_.fields()) {
        estimate += static_cast<int64_t>(batch->num_active()) *
                    (f.type.byte_width() + 24);
      }
      PHOTON_RETURN_NOT_OK(exec_ctx_.memory_manager->Reserve(this, estimate));
      reserved_for_data_ += estimate;
    }

    // Materialize the batch densely, and its key columns alongside.
    std::unique_ptr<ColumnBatch> stored = CompactBatch(*batch);
    auto key_batch = std::make_unique<ColumnBatch>(
        key_schema_, std::max(stored->num_rows(), 1));
    {
      // Evaluate keys against the *stored* batch so key rows align with it.
      std::vector<int32_t> rows(stored->num_rows());
      for (int i = 0; i < stored->num_rows(); i++) rows[i] = i;
      for (size_t k = 0; k < keys_.size(); k++) {
        PHOTON_ASSIGN_OR_RETURN(
            ColumnVector * kv, keys_[k].expr->Evaluate(stored.get(), &ctx_));
        CopyValuesAtPositions(*kv, rows.data(), stored->num_rows(),
                              key_batch->column(static_cast<int>(k)));
      }
      key_batch->set_num_rows(stored->num_rows());
      key_batch->SetAllActive();
    }

    int32_t batch_idx = static_cast<int32_t>(data_.size());
    for (int i = 0; i < stored->num_rows(); i++) {
      indices_.push_back(RowRef{batch_idx, i});
    }
    data_.push_back(std::move(stored));
    key_data_.push_back(std::move(key_batch));
  }
  input_consumed_ = true;

  if (spill_seq_ > 0 && !indices_.empty()) {
    // Spill the remainder so output is a pure merge of sorted runs.
    Spill(INT64_MAX);
  }
  if (spill_seq_ == 0) {
    SortIndices();
  }
  return Status::OK();
}

int SortOperator::Compare(const RowRef& a, const RowRef& b) const {
  for (size_t k = 0; k < keys_.size(); k++) {
    const ColumnVector& ka = *key_data_[a.batch]->column(static_cast<int>(k));
    const ColumnVector& kb = *key_data_[b.batch]->column(static_cast<int>(k));
    // NULL placement is absolute (nulls_first refers to output order) and
    // is NOT flipped by descending direction.
    bool a_null = ka.IsNull(a.row), b_null = kb.IsNull(b.row);
    if (a_null || b_null) {
      if (a_null && b_null) continue;
      int c = a_null ? -1 : 1;
      return keys_[k].nulls_first ? c : -c;
    }
    int c = CompareVectorCells(ka, a.row, kb, b.row);
    if (c != 0) return keys_[k].ascending ? c : -c;
  }
  return 0;
}

void SortOperator::SortIndices() {
  std::stable_sort(indices_.begin(), indices_.end(),
                   [this](const RowRef& a, const RowRef& b) {
                     return Compare(a, b) < 0;
                   });
  sorted_ = true;
  emit_pos_ = 0;
}

Status SortOperator::FlushRun() {
  if (indices_.empty()) return Status::OK();
  SortIndices();
  // Serialize the sorted rows in chunks.
  std::vector<std::string> chunk_keys;
  ColumnBatch chunk(output_schema_, exec_ctx_.batch_size);
  size_t pos = 0;
  int blk = 0;
  while (pos < indices_.size()) {
    chunk.Reset();
    int count = static_cast<int>(
        std::min<size_t>(exec_ctx_.batch_size, indices_.size() - pos));
    for (int i = 0; i < count; i++) {
      const RowRef& ref = indices_[pos + i];
      CopyRow(*data_[ref.batch], ref.row, &chunk, i);
    }
    chunk.set_num_rows(count);
    chunk.SetAllActive();
    BinaryWriter writer;
    SerializeBatch(chunk, {}, &writer);
    std::string key = exec_ctx_.spill_prefix + "/sort-run" +
                      std::to_string(spill_seq_) + "-blk" +
                      std::to_string(blk++);
    PHOTON_RETURN_NOT_OK(ObjectStore::Default().Put(key, writer.ToString()));
    stats_.Add(obs::Metric::kSpillBytes,
               static_cast<int64_t>(writer.size()));
    chunk_keys.push_back(key);
    pos += count;
  }
  run_keys_.push_back(std::move(chunk_keys));
  spill_seq_++;
  stats_.Add(obs::Metric::kSpillCount, 1);

  data_.clear();
  key_data_.clear();
  indices_.clear();
  sorted_ = false;
  return Status::OK();
}

int64_t SortOperator::Spill(int64_t /*requested*/) {
  if (indices_.empty()) return 0;
  Status st = FlushRun();
  PHOTON_CHECK(st.ok());
  int64_t freed = reserved_for_data_;
  if (exec_ctx_.memory_manager != nullptr && freed > 0) {
    exec_ctx_.memory_manager->Release(this, freed);
  }
  reserved_for_data_ = 0;
  return freed;
}

Result<ColumnBatch*> SortOperator::EmitInMemory() {
  if (emit_pos_ >= indices_.size()) return nullptr;
  if (out_ == nullptr) {
    out_ = std::make_unique<ColumnBatch>(output_schema_,
                                         exec_ctx_.batch_size);
  }
  out_->Reset();
  int count = static_cast<int>(
      std::min<size_t>(exec_ctx_.batch_size, indices_.size() - emit_pos_));
  for (int i = 0; i < count; i++) {
    const RowRef& ref = indices_[emit_pos_ + i];
    CopyRow(*data_[ref.batch], ref.row, out_.get(), i);
  }
  emit_pos_ += count;
  out_->set_num_rows(count);
  out_->SetAllActive();
  return out_.get();
}

// ---------------------------------------------------------------------------
// Spilled-run merge
// ---------------------------------------------------------------------------

SortOperator::SpilledRun::SpilledRun(Schema schema,
                                     std::vector<std::string> keys)
    : schema_(std::move(schema)), keys_(std::move(keys)) {}

Result<bool> SortOperator::SpilledRun::Advance() {
  if (batch_ != nullptr && row_ + 1 < batch_->num_rows()) {
    row_++;
    return true;
  }
  while (next_key_ < keys_.size()) {
    PHOTON_ASSIGN_OR_RETURN(std::string bytes,
                            ObjectStore::Default().Get(keys_[next_key_++]));
    BinaryReader reader(bytes);
    PHOTON_ASSIGN_OR_RETURN(batch_, DeserializeBatch(schema_, &reader));
    if (batch_->num_rows() > 0) {
      row_ = 0;
      return true;
    }
  }
  batch_ = nullptr;
  return false;
}

Result<ColumnBatch*> SortOperator::EmitMerged() {
  if (!merge_initialized_) {
    merge_initialized_ = true;
    for (auto& keys : run_keys_) {
      merge_runs_.push_back(
          std::make_unique<SpilledRun>(output_schema_, keys));
    }
    // Prime all runs; drop empty ones.
    std::vector<std::unique_ptr<SpilledRun>> alive;
    for (auto& run : merge_runs_) {
      PHOTON_ASSIGN_OR_RETURN(bool ok, run->Advance());
      if (ok) alive.push_back(std::move(run));
    }
    merge_runs_ = std::move(alive);
    // Evaluated key cache per run: recompute lazily below via EvaluateRow
    // on boxed rows is too slow, so compare on evaluated key expressions
    // applied to single rows. For merge simplicity we compare with boxed
    // rows (runs are cold data read back from storage).
  }
  if (merge_runs_.empty()) return nullptr;

  if (out_ == nullptr) {
    out_ = std::make_unique<ColumnBatch>(output_schema_,
                                         exec_ctx_.batch_size);
  }
  out_->Reset();
  int out_row = 0;

  auto run_less = [&](size_t i, size_t j) -> int {
    // Compare current rows of runs i, j by evaluating key expressions on
    // boxed rows (cold path).
    std::vector<Value> row_i, row_j;
    const ColumnBatch* bi = merge_runs_[i]->current_batch();
    const ColumnBatch* bj = merge_runs_[j]->current_batch();
    for (int c = 0; c < bi->num_columns(); c++) {
      row_i.push_back(bi->column(c)->GetValue(merge_runs_[i]->current_row()));
      row_j.push_back(bj->column(c)->GetValue(merge_runs_[j]->current_row()));
    }
    for (const SortKey& key : keys_) {
      Result<Value> vi = key.expr->EvaluateRow(row_i);
      Result<Value> vj = key.expr->EvaluateRow(row_j);
      PHOTON_CHECK(vi.ok() && vj.ok());
      const Value& a = *vi;
      const Value& b = *vj;
      if (a.is_null() || b.is_null()) {
        if (a.is_null() && b.is_null()) continue;
        int c = a.is_null() ? -1 : 1;
        if (c != 0) return key.nulls_first ? c : -c;
        continue;
      }
      int c = a.Compare(b);
      if (c != 0) return key.ascending ? c : -c;
    }
    return 0;
  };

  while (out_row < out_->capacity() && !merge_runs_.empty()) {
    // Linear scan for the minimum run (run count is small).
    size_t best = 0;
    for (size_t i = 1; i < merge_runs_.size(); i++) {
      if (run_less(i, best) < 0) best = i;
    }
    CopyRow(*merge_runs_[best]->current_batch(),
            merge_runs_[best]->current_row(), out_.get(), out_row);
    out_row++;
    PHOTON_ASSIGN_OR_RETURN(bool ok, merge_runs_[best]->Advance());
    if (!ok) merge_runs_.erase(merge_runs_.begin() + best);
  }
  if (out_row == 0) return nullptr;
  out_->set_num_rows(out_row);
  out_->SetAllActive();
  return out_.get();
}

Result<ColumnBatch*> SortOperator::GetNextImpl() {
  if (!input_consumed_) {
    PHOTON_RETURN_NOT_OK(ConsumeInput());
  }
  if (spill_seq_ == 0) {
    return EmitInMemory();
  }
  return EmitMerged();
}

void SortOperator::Close() {
  child_->Close();
  for (auto& keys : run_keys_) {
    for (const std::string& key : keys) {
      (void)ObjectStore::Default().Delete(key);
    }
  }
  run_keys_.clear();
  if (exec_ctx_.memory_manager != nullptr && reserved_bytes() > 0) {
    exec_ctx_.memory_manager->Release(this, reserved_bytes());
    reserved_for_data_ = 0;
  }
}

void SortOperator::PublishMetricsImpl() {
  stats_.SetMax(obs::Metric::kPeakReservedBytes, peak_reserved_bytes());
  stats_.Add(obs::Metric::kReserveWaitNs, reserve_wait_ns());
  stats_.Add(obs::Metric::kReserveWaits, reserve_waits());
}

}  // namespace photon
