#ifndef PHOTON_OPS_SORT_H_
#define PHOTON_OPS_SORT_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "ops/operator.h"
#include "storage/object_store.h"
#include "vector/table.h"

namespace photon {

/// One sort key: expression + direction + null placement.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;
  bool nulls_first = true;
};

/// Total-order comparison of two non-NULL vector cells. Returns <0, 0, >0.
/// NULL placement is handled by callers (it must not flip with direction).
int CompareVectorCells(const ColumnVector& a, int row_a,
                       const ColumnVector& b, int row_b);

/// K-way merges independently sorted runs into one totally ordered table.
/// Key evaluation is vectorized (once per run batch); comparison semantics
/// match SortOperator exactly, and ties resolve to the lowest-index run,
/// so the merge is deterministic for a fixed run decomposition (the
/// parallel driver's per-morsel sort runs). Runs are mutable only because
/// expression evaluation takes non-const batches; their data is not
/// modified.
Result<Table> MergeSortedRuns(const std::vector<Table*>& runs,
                              const std::vector<SortKey>& keys,
                              const Schema& schema, int batch_size);

/// Vectorized sort: materializes the input (keys evaluated once per batch
/// into side-car key batches), sorts an index array with a typed
/// comparator, and emits gathered output batches.
///
/// Participates in unified memory management (§5.3): when asked to spill,
/// the accumulated rows are sorted and written out as a run; at output
/// time, in-memory and spilled runs are k-way merged.
class SortOperator : public Operator, public MemoryConsumer {
 public:
  SortOperator(OperatorPtr child, std::vector<SortKey> keys,
               ExecContext exec_ctx = {});
  ~SortOperator() override;

  Status Open() override;
  Result<ColumnBatch*> GetNextImpl() override;
  void Close() override;
  std::string name() const override { return "PhotonSort"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

  int64_t Spill(int64_t requested) override;

 protected:
  void PublishMetricsImpl() override;

 private:
  struct RowRef {
    int32_t batch;
    int32_t row;
  };

  /// A sequential reader over one spilled sorted run.
  class SpilledRun {
   public:
    SpilledRun(Schema schema, std::vector<std::string> keys);
    /// Batch-aligned current row, or false at end.
    Result<bool> Advance();
    const ColumnBatch* current_batch() const { return batch_.get(); }
    int current_row() const { return row_; }

   private:
    Schema schema_;
    std::vector<std::string> keys_;
    size_t next_key_ = 0;
    std::unique_ptr<ColumnBatch> batch_;
    int row_ = -1;
  };

  Status ConsumeInput();
  void SortIndices();
  int Compare(const RowRef& a, const RowRef& b) const;
  /// Serializes the sorted in-memory rows as one run; clears them.
  Status FlushRun();
  Result<ColumnBatch*> EmitInMemory();
  Result<ColumnBatch*> EmitMerged();
  int64_t CurrentMemoryBytes() const;

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  ExecContext exec_ctx_;

  // Materialized input + evaluated key columns, batch-aligned.
  std::vector<std::unique_ptr<ColumnBatch>> data_;
  std::vector<std::unique_ptr<ColumnBatch>> key_data_;
  std::vector<RowRef> indices_;
  bool sorted_ = false;
  size_t emit_pos_ = 0;
  int64_t reserved_for_data_ = 0;
  bool input_consumed_ = false;

  // Spilled runs (object-store key lists), sorted individually.
  std::vector<std::vector<std::string>> run_keys_;
  int spill_seq_ = 0;
  // Merge state.
  std::vector<std::unique_ptr<SpilledRun>> merge_runs_;
  std::vector<std::unique_ptr<ColumnBatch>> merge_key_batches_;
  bool merge_initialized_ = false;

  std::unique_ptr<ColumnBatch> out_;
  EvalContext ctx_;
  Schema key_schema_;
};

}  // namespace photon

#endif  // PHOTON_OPS_SORT_H_
