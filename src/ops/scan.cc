#include "ops/scan.h"

#include <cstring>

namespace photon {

void CopyBatchShallow(const ColumnBatch& src, ColumnBatch* dst) {
  PHOTON_CHECK(dst->capacity() >= src.num_rows());
  int n = src.num_rows();
  for (int c = 0; c < src.num_columns(); c++) {
    const ColumnVector& in = *src.column(c);
    ColumnVector* out = dst->column(c);
    std::memcpy(out->nulls(), in.nulls(), n);
    std::memcpy(out->data<uint8_t>(), in.data<uint8_t>(),
                static_cast<size_t>(n) * in.type().byte_width());
    out->set_has_nulls(in.has_nulls());
    out->set_all_ascii(in.all_ascii());
  }
  dst->set_num_rows(n);
  if (src.all_active()) {
    dst->SetAllActive();
  } else {
    std::memcpy(dst->mutable_pos_list(), src.pos_list(),
                static_cast<size_t>(src.num_active()) * sizeof(int32_t));
    dst->SetActiveRows(src.num_active());
  }
}

Result<ColumnBatch*> InMemoryScanOperator::GetNextImpl() {
  if (next_batch_ >= table_->num_batches()) return nullptr;
  const ColumnBatch& src = table_->batch(next_batch_++);
  if (out_ == nullptr || out_->capacity() < src.num_rows()) {
    out_ = std::make_unique<ColumnBatch>(table_->schema(),
                                         std::max(src.capacity(),
                                                  kDefaultBatchSize));
  }
  CopyBatchShallow(src, out_.get());
  return out_.get();
}

}  // namespace photon
