#include "ops/fused_filter_project.h"

#include <cstring>

namespace photon {

Result<ColumnBatch*> FusedFilterProjectOperator::GetNextImpl() {
  while (true) {
    ctx_.ResetPerBatch();  // invalidates the previously returned view
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * in, child_->GetNext());
    if (in == nullptr) return nullptr;

    PHOTON_ASSIGN_OR_RETURN(int active, state_.Eval(in, &ctx_));
    if (unit_->has_predicates() && active == 0) continue;
    if (!unit_->has_projection()) return in;

    if (view_ == nullptr || view_->capacity() < in->capacity()) {
      view_ = ColumnBatch::MakeView(output_schema_, in->capacity());
    }
    for (size_t i = 0; i < unit_->outputs().size(); i++) {
      view_->SetColumnView(static_cast<int>(i), state_.Output(i, in));
    }
    view_->set_num_rows(in->num_rows());
    if (in->all_active()) {
      view_->SetAllActive();
    } else {
      std::memcpy(view_->mutable_pos_list(), in->pos_list(),
                  static_cast<size_t>(in->num_active()) * sizeof(int32_t));
      view_->SetActiveRows(in->num_active());
    }
    return view_.get();
  }
}

void FusedFilterProjectOperator::PublishMetricsImpl() {
  stats_.Add(obs::Metric::kExprFusedBatches, state_.fused_batches());
  stats_.Add(obs::Metric::kExprCompiledBatches, state_.compiled_batches());
  stats_.Add(obs::Metric::kExprTierSwitches, state_.tier_switches());
  stats_.Add(obs::Metric::kScratchPoolHits, ctx_.pool_hits());
  stats_.Add(obs::Metric::kScratchPoolMisses, ctx_.pool_misses());
}

}  // namespace photon
