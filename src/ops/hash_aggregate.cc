#include "ops/hash_aggregate.h"

#include <cstring>

namespace photon {
namespace {

// Spill-file key/value serialization helpers.
void WriteKeySlot(const DataType& type, const VectorizedHashTable& table,
                  const uint8_t* entry, int k, BinaryWriter* out) {
  if (table.KeyIsNull(entry, k)) {
    out->WriteU8(1);
    return;
  }
  out->WriteU8(0);
  const uint8_t* slot = table.key_slot(entry, k);
  switch (type.id()) {
    case TypeId::kBoolean:
      out->WriteU8(*slot);
      break;
    case TypeId::kInt32:
    case TypeId::kDate32:
      out->Append(slot, 4);
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
    case TypeId::kFloat64:
      out->Append(slot, 8);
      break;
    case TypeId::kDecimal128:
      out->Append(slot, 16);
      break;
    case TypeId::kString: {
      StringRef s;
      std::memcpy(&s, slot, sizeof(s));
      out->WriteString(std::string_view(s.data, s.len));
      break;
    }
  }
}

Status ReadKeyIntoVector(const DataType& type, BinaryReader* in,
                         ColumnVector* vec, int row) {
  uint8_t is_null = 0;
  PHOTON_RETURN_NOT_OK(in->ReadU8(&is_null));
  if (is_null) {
    vec->SetNull(row);
    return Status::OK();
  }
  vec->SetNotNull(row);
  switch (type.id()) {
    case TypeId::kBoolean:
      return in->ReadU8(&vec->data<uint8_t>()[row]);
    case TypeId::kInt32:
    case TypeId::kDate32:
      return in->ReadI32(&vec->data<int32_t>()[row]);
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      return in->ReadI64(&vec->data<int64_t>()[row]);
    case TypeId::kFloat64:
      return in->ReadF64(&vec->data<double>()[row]);
    case TypeId::kDecimal128:
      return in->ReadRaw(&vec->data<int128_t>()[row], 16);
    case TypeId::kString: {
      std::string s;
      PHOTON_RETURN_NOT_OK(in->ReadString(&s));
      vec->SetString(row, s);
      return Status::OK();
    }
  }
  return Status::Internal("bad key type");
}

/// Writes a hash table key column into an output vector (typed, no boxing).
void EmitKeyColumn(const VectorizedHashTable& table,
                   const std::vector<uint8_t*>& entries, size_t begin,
                   int count, int k, ColumnVector* out) {
  const DataType& type = table.key_type(k);
  for (int i = 0; i < count; i++) {
    const uint8_t* entry = entries[begin + i];
    if (table.KeyIsNull(entry, k)) {
      out->SetNull(i);
      continue;
    }
    out->SetNotNull(i);
    const uint8_t* slot = table.key_slot(entry, k);
    switch (type.id()) {
      case TypeId::kBoolean:
        out->data<uint8_t>()[i] = *slot;
        break;
      case TypeId::kInt32:
      case TypeId::kDate32:
        std::memcpy(&out->data<int32_t>()[i], slot, 4);
        break;
      case TypeId::kInt64:
      case TypeId::kTimestamp:
        std::memcpy(&out->data<int64_t>()[i], slot, 8);
        break;
      case TypeId::kFloat64:
        std::memcpy(&out->data<double>()[i], slot, 8);
        break;
      case TypeId::kDecimal128:
        std::memcpy(&out->data<int128_t>()[i], slot, 16);
        break;
      case TypeId::kString: {
        StringRef s;
        std::memcpy(&s, slot, sizeof(s));
        out->SetString(i, s.data, s.len);
        break;
      }
    }
  }
}

}  // namespace

Schema HashAggregateOperator::MakeOutputSchema(
    const std::vector<ExprPtr>& keys,
    const std::vector<std::string>& key_names,
    const std::vector<AggregateSpec>& aggs) {
  PHOTON_CHECK(keys.size() == key_names.size());
  Schema schema;
  for (size_t i = 0; i < keys.size(); i++) {
    schema.AddField(Field(key_names[i], keys[i]->type()));
  }
  for (const AggregateSpec& spec : aggs) {
    DataType arg_type =
        spec.arg != nullptr ? spec.arg->type() : DataType::Int64();
    Result<DataType> result = AggResultType(spec.kind, arg_type);
    PHOTON_CHECK(result.ok());
    schema.AddField(Field(spec.name, *result));
  }
  return schema;
}

Schema HashAggregateOperator::PartialOutputSchema() {
  Schema schema;
  schema.AddField(Field("agg_state", DataType::String()));
  return schema;
}

HashAggregateOperator::HashAggregateOperator(
    OperatorPtr child, std::vector<ExprPtr> keys,
    std::vector<std::string> key_names, std::vector<AggregateSpec> aggs,
    ExecContext exec_ctx, AggMode mode)
    : Operator(mode == AggMode::kPartial ? PartialOutputSchema()
                                         : MakeOutputSchema(keys, key_names,
                                                            aggs)),
      MemoryConsumer("PhotonHashAggregate"),
      child_(std::move(child)),
      keys_(std::move(keys)),
      specs_(std::move(aggs)),
      exec_ctx_(exec_ctx),
      mode_(mode) {
  scalar_mode_ = keys_.empty();
  int offset = 0;
  for (const AggregateSpec& spec : specs_) {
    DataType arg_type =
        spec.arg != nullptr ? spec.arg->type() : DataType::Int64();
    Result<std::unique_ptr<AggregateFunction>> fn =
        MakeAggregateFunction(spec.kind, arg_type);
    PHOTON_CHECK(fn.ok());
    aggs_.push_back(std::move(fn).ValueOrDie());
    // 16-align each state: decimal sums embed __int128.
    offset = (offset + 15) & ~15;
    agg_state_offsets_.push_back(offset);
    offset += aggs_.back()->state_bytes();
  }
  payload_bytes_ = offset;
  spill_keys_.resize(kSpillPartitions);
}

HashAggregateOperator::~HashAggregateOperator() {
  if (exec_ctx_.memory_manager != nullptr) {
    exec_ctx_.memory_manager->Release(this, reserved_bytes());
    exec_ctx_.memory_manager->UnregisterConsumer(this);
  }
}

Status HashAggregateOperator::Open() {
  PHOTON_RETURN_NOT_OK(child_->Open());
  arena_ = std::make_unique<VarLenPool>();
  for (auto& agg : aggs_) agg->set_arena(arena_.get());
  if (scalar_mode_) {
    scalar_state_.assign(payload_bytes_, 0);
    for (size_t j = 0; j < aggs_.size(); j++) {
      aggs_[j]->Init(scalar_state_.data() + agg_state_offsets_[j]);
    }
  } else {
    std::vector<DataType> key_types;
    for (const ExprPtr& k : keys_) key_types.push_back(k->type());
    table_ = std::make_unique<VectorizedHashTable>(
        key_types, payload_bytes_, /*match_null_keys=*/true);
  }
  if (exec_ctx_.memory_manager != nullptr) {
    BindConsumerToContext(this, exec_ctx_);
    exec_ctx_.memory_manager->RegisterConsumer(this);
  }
  input_consumed_ = false;
  scalar_emitted_ = false;
  emit_pos_ = 0;
  partial_spill_stream_.clear();
  partial_spill_pos_ = 0;
  partial_prepared_ = false;
  return Status::OK();
}

int64_t HashAggregateOperator::CurrentMemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(arena_->total_bytes());
  if (table_ != nullptr) bytes += table_->memory_bytes();
  return bytes;
}

Status HashAggregateOperator::ReserveForDelta() {
  if (exec_ctx_.memory_manager == nullptr) return Status::OK();
  int64_t actual = CurrentMemoryBytes();
  if (actual > reserved_for_data_) {
    int64_t delta = actual - reserved_for_data_;
    PHOTON_RETURN_NOT_OK(exec_ctx_.memory_manager->Reserve(this, delta));
    reserved_for_data_ += delta;
  }
  return Status::OK();
}

Status HashAggregateOperator::ProcessBatch(ColumnBatch* batch) {
  int n = batch->num_active();
  if (n == 0) return Status::OK();
  // Recycle expression scratch from the previous batch (§4.5).
  ctx_.ResetPerBatch();
  EvalContext& ctx = ctx_;

  // Evaluate aggregate arguments first (they see the same active set).
  std::vector<const ColumnVector*> arg_vecs(specs_.size(), nullptr);
  for (size_t j = 0; j < specs_.size(); j++) {
    if (specs_[j].arg != nullptr) {
      PHOTON_ASSIGN_OR_RETURN(ColumnVector * v,
                              specs_[j].arg->Evaluate(batch, &ctx));
      arg_vecs[j] = v;
    }
  }

  if (scalar_mode_) {
    entries_.assign(n, scalar_state_.data());
    std::vector<uint8_t*> states(n);
    for (size_t j = 0; j < aggs_.size(); j++) {
      for (int i = 0; i < n; i++) {
        states[i] = scalar_state_.data() + agg_state_offsets_[j];
      }
      aggs_[j]->Update(arg_vecs[j], *batch, states.data());
    }
    return Status::OK();
  }

  // Reservation phase (§5.3): acquire memory for this batch's worst-case
  // growth before touching the table; spilling can only happen here.
  if (exec_ctx_.memory_manager != nullptr) {
    int64_t estimate = static_cast<int64_t>(n) * (payload_bytes_ + 96);
    PHOTON_RETURN_NOT_OK(exec_ctx_.memory_manager->Reserve(this, estimate));
    reserved_for_data_ += estimate;
  }

  // Allocation phase: evaluate keys, probe/insert, update states.
  std::vector<const ColumnVector*> key_vecs;
  for (const ExprPtr& k : keys_) {
    PHOTON_ASSIGN_OR_RETURN(ColumnVector * v, k->Evaluate(batch, &ctx));
    key_vecs.push_back(v);
  }
  hashes_.resize(n);
  entries_.resize(n);
  if (inserted_capacity_ < n) {
    inserted_ = std::make_unique<bool[]>(n);
    inserted_capacity_ = n;
  }

  VectorizedHashTable::HashKeys(key_vecs, *batch, hashes_.data());
  PHOTON_RETURN_NOT_OK(table_->LookupOrInsert(
      key_vecs, *batch, hashes_.data(), entries_.data(), inserted_.get()));

  for (int i = 0; i < n; i++) {
    if (inserted_[i]) {
      uint8_t* payload = table_->payload(entries_[i]);
      for (size_t j = 0; j < aggs_.size(); j++) {
        aggs_[j]->Init(payload + agg_state_offsets_[j]);
      }
    }
  }

  std::vector<uint8_t*> states(n);
  for (size_t j = 0; j < aggs_.size(); j++) {
    for (int i = 0; i < n; i++) {
      states[i] = entries_[i] == nullptr
                      ? nullptr
                      : table_->payload(entries_[i]) + agg_state_offsets_[j];
    }
    aggs_[j]->Update(arg_vecs[j], *batch, states.data());
  }

  // True memory usage may exceed the estimate (large strings): top up.
  return ReserveForDelta();
}

Status HashAggregateOperator::ConsumeInput() {
  while (true) {
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, child_->GetNext());
    if (batch == nullptr) break;
    if (mode_ == AggMode::kFinalMerge) {
      PHOTON_RETURN_NOT_OK(MergeBlobBatch(batch));
    } else {
      PHOTON_RETURN_NOT_OK(ProcessBatch(batch));
    }
  }
  input_consumed_ = true;

  if (!scalar_mode_ && spill_seq_ > 0 && table_->num_entries() > 0) {
    // Some groups already went to disk: the in-memory remainder must be
    // spilled too so each partition can be merged exactly once.
    Spill(INT64_MAX);
  }
  if (!scalar_mode_ && spill_seq_ == 0) {
    emit_entries_.clear();
    table_->ForEachEntry(
        [&](uint8_t* entry) { emit_entries_.push_back(entry); });
    emit_pos_ = 0;
  }
  return Status::OK();
}

void HashAggregateOperator::SerializeEntry(const uint8_t* entry,
                                           BinaryWriter* out) const {
  for (size_t k = 0; k < keys_.size(); k++) {
    WriteKeySlot(keys_[k]->type(), *table_, entry, static_cast<int>(k), out);
  }
  const uint8_t* payload = table_->payload(entry);
  for (size_t j = 0; j < aggs_.size(); j++) {
    aggs_[j]->Serialize(payload + agg_state_offsets_[j], out);
  }
}

int64_t HashAggregateOperator::Spill(int64_t /*requested*/) {
  if (scalar_mode_ || table_ == nullptr || table_->num_entries() == 0) {
    return 0;
  }
  std::vector<BinaryWriter> writers(kSpillPartitions);
  table_->ForEachEntry([&](uint8_t* entry) {
    int p = static_cast<int>(VectorizedHashTable::entry_hash(entry) %
                             kSpillPartitions);
    SerializeEntry(entry, &writers[p]);
  });
  int64_t written = 0;
  for (int p = 0; p < kSpillPartitions; p++) {
    if (writers[p].size() == 0) continue;
    std::string key = exec_ctx_.spill_prefix + "/agg-p" + std::to_string(p) +
                      "-" + std::to_string(spill_seq_);
    written += static_cast<int64_t>(writers[p].size());
    Status st = ObjectStore::Default().Put(key, writers[p].ToString());
    PHOTON_CHECK(st.ok());
    spill_keys_[p].push_back(key);
  }
  spill_seq_++;
  stats_.Add(obs::Metric::kSpillCount, 1);
  stats_.Add(obs::Metric::kSpillBytes, written);

  table_->Clear();
  arena_->Reset();
  int64_t freed = reserved_for_data_;
  if (exec_ctx_.memory_manager != nullptr && freed > 0) {
    exec_ctx_.memory_manager->Release(this, freed);
  }
  reserved_for_data_ = 0;
  return freed;
}

Status HashAggregateOperator::MergeBlobBatch(ColumnBatch* batch) {
  int n = batch->num_active();
  if (n == 0) return Status::OK();
  PHOTON_CHECK(batch->num_columns() == 1 &&
               batch->column(0)->type().id() == TypeId::kString);
  const StringRef* blobs = batch->column(0)->data<StringRef>();
  for (int i = 0; i < n; i++) {
    int row = batch->ActiveRow(i);
    if (batch->column(0)->IsNull(row)) continue;
    StringRef blob = blobs[row];
    std::string_view bytes(blob.data, static_cast<size_t>(blob.len));
    if (scalar_mode_) {
      // Scalar blobs carry the agg states back-to-back (no keys).
      BinaryReader reader(bytes);
      std::vector<uint8_t> temp_state;
      for (size_t j = 0; j < aggs_.size(); j++) {
        temp_state.assign(aggs_[j]->state_bytes(), 0);
        aggs_[j]->Init(temp_state.data());
        PHOTON_RETURN_NOT_OK(
            aggs_[j]->Deserialize(&reader, temp_state.data()));
        aggs_[j]->Merge(scalar_state_.data() + agg_state_offsets_[j],
                        temp_state.data());
      }
    } else {
      PHOTON_RETURN_NOT_OK(MergeSpillBlock(bytes));
      PHOTON_RETURN_NOT_OK(ReserveForDelta());
    }
  }
  return Status::OK();
}

Status HashAggregateOperator::MergeSpillBlock(std::string_view bytes) {
  BinaryReader reader(bytes);
  // One-row staging batch used to re-probe the table with deserialized keys.
  Schema key_schema;
  for (size_t k = 0; k < keys_.size(); k++) {
    key_schema.AddField(Field("k" + std::to_string(k), keys_[k]->type()));
  }
  ColumnBatch staging(key_schema, 1);
  std::vector<const ColumnVector*> key_vecs;
  for (int k = 0; k < key_schema.num_fields(); k++) {
    key_vecs.push_back(staging.column(k));
  }
  std::vector<uint8_t> temp_state;
  uint64_t hash = 0;
  uint8_t* entry = nullptr;
  bool inserted = false;

  while (reader.remaining() > 0) {
    staging.Reset();
    for (int k = 0; k < key_schema.num_fields(); k++) {
      PHOTON_RETURN_NOT_OK(ReadKeyIntoVector(
          keys_[k]->type(), &reader, staging.column(k), 0));
    }
    staging.set_num_rows(1);
    staging.SetAllActive();
    VectorizedHashTable::HashKeys(key_vecs, staging, &hash);
    PHOTON_RETURN_NOT_OK(table_->LookupOrInsert(key_vecs, staging, &hash,
                                                &entry, &inserted));
    uint8_t* payload = table_->payload(entry);
    for (size_t j = 0; j < aggs_.size(); j++) {
      uint8_t* dst = payload + agg_state_offsets_[j];
      if (inserted) {
        aggs_[j]->Init(dst);
      }
      temp_state.assign(aggs_[j]->state_bytes(), 0);
      aggs_[j]->Init(temp_state.data());
      PHOTON_RETURN_NOT_OK(aggs_[j]->Deserialize(&reader, temp_state.data()));
      aggs_[j]->Merge(dst, temp_state.data());
    }
  }
  return Status::OK();
}

Result<bool> HashAggregateOperator::LoadNextSpillPartition() {
  while (++current_spill_partition_ < kSpillPartitions) {
    if (spill_keys_[current_spill_partition_].empty()) continue;
    table_->Clear();
    arena_->Reset();
    for (const std::string& key :
         spill_keys_[current_spill_partition_]) {
      PHOTON_ASSIGN_OR_RETURN(std::string bytes,
                              ObjectStore::Default().Get(key));
      PHOTON_RETURN_NOT_OK(MergeSpillBlock(bytes));
    }
    emit_entries_.clear();
    table_->ForEachEntry(
        [&](uint8_t* entry) { emit_entries_.push_back(entry); });
    emit_pos_ = 0;
    if (!emit_entries_.empty()) return true;
  }
  return false;
}

ColumnBatch* HashAggregateOperator::EmitFromTable() {
  if (emit_pos_ >= emit_entries_.size()) return nullptr;
  int count = static_cast<int>(
      std::min<size_t>(exec_ctx_.batch_size, emit_entries_.size() - emit_pos_));
  if (out_ == nullptr) {
    out_ = std::make_unique<ColumnBatch>(output_schema_,
                                         exec_ctx_.batch_size);
  }
  out_->Reset();
  for (size_t k = 0; k < keys_.size(); k++) {
    EmitKeyColumn(*table_, emit_entries_, emit_pos_, count,
                  static_cast<int>(k), out_->column(static_cast<int>(k)));
  }
  for (size_t j = 0; j < aggs_.size(); j++) {
    ColumnVector* out_col =
        out_->column(static_cast<int>(keys_.size() + j));
    for (int i = 0; i < count; i++) {
      const uint8_t* payload = table_->payload(emit_entries_[emit_pos_ + i]);
      aggs_[j]->Finalize(payload + agg_state_offsets_[j], out_col, i);
    }
  }
  emit_pos_ += count;
  out_->set_num_rows(count);
  out_->SetAllActive();
  return out_.get();
}

Result<ColumnBatch*> HashAggregateOperator::EmitPartial() {
  // Each output row is one blob of serialized (key, state) entries — the
  // same wire format as the spill files, so spilled partial state is
  // streamed out raw without being re-merged in memory.
  constexpr int kEntriesPerBlob = 512;
  if (out_ == nullptr) {
    out_ = std::make_unique<ColumnBatch>(output_schema_,
                                         exec_ctx_.batch_size);
  }
  if (!partial_prepared_) {
    partial_prepared_ = true;
    if (!scalar_mode_ && spill_seq_ > 0) {
      for (const auto& keys : spill_keys_) {
        for (const std::string& key : keys) {
          partial_spill_stream_.push_back(key);
        }
      }
    }
  }
  out_->Reset();
  ColumnVector* col = out_->column(0);
  int out_row = 0;
  while (out_row < out_->capacity()) {
    if (scalar_mode_) {
      if (scalar_emitted_) break;
      scalar_emitted_ = true;
      BinaryWriter writer;
      for (size_t j = 0; j < aggs_.size(); j++) {
        aggs_[j]->Serialize(scalar_state_.data() + agg_state_offsets_[j],
                            &writer);
      }
      col->SetNotNull(out_row);
      col->SetString(out_row, writer.ToString());
      out_row++;
      break;
    }
    if (spill_seq_ > 0) {
      if (partial_spill_pos_ >= partial_spill_stream_.size()) break;
      PHOTON_ASSIGN_OR_RETURN(
          std::string bytes,
          ObjectStore::Default().Get(
              partial_spill_stream_[partial_spill_pos_++]));
      col->SetNotNull(out_row);
      col->SetString(out_row, bytes);
      out_row++;
      continue;
    }
    if (emit_pos_ >= emit_entries_.size()) break;
    int count = static_cast<int>(std::min<size_t>(
        kEntriesPerBlob, emit_entries_.size() - emit_pos_));
    BinaryWriter writer;
    for (int i = 0; i < count; i++) {
      SerializeEntry(emit_entries_[emit_pos_ + i], &writer);
    }
    emit_pos_ += count;
    col->SetNotNull(out_row);
    col->SetString(out_row, writer.ToString());
    out_row++;
  }
  if (out_row == 0) return nullptr;
  out_->set_num_rows(out_row);
  out_->SetAllActive();
  return out_.get();
}

Result<ColumnBatch*> HashAggregateOperator::GetNextImpl() {
  if (!input_consumed_) {
    PHOTON_RETURN_NOT_OK(ConsumeInput());
  }

  if (mode_ == AggMode::kPartial) {
    return EmitPartial();
  }

  if (scalar_mode_) {
    if (scalar_emitted_) return nullptr;
    scalar_emitted_ = true;
    if (out_ == nullptr) {
      out_ = std::make_unique<ColumnBatch>(output_schema_, 1);
    }
    out_->Reset();
    for (size_t j = 0; j < aggs_.size(); j++) {
      aggs_[j]->Finalize(scalar_state_.data() + agg_state_offsets_[j],
                         out_->column(static_cast<int>(j)), 0);
    }
    out_->set_num_rows(1);
    out_->SetAllActive();
    return out_.get();
  }

  while (true) {
    ColumnBatch* batch = EmitFromTable();
    if (batch != nullptr) return batch;
    if (spill_seq_ == 0) return nullptr;
    PHOTON_ASSIGN_OR_RETURN(bool more, LoadNextSpillPartition());
    if (!more) return nullptr;
  }
}

void HashAggregateOperator::Close() {
  child_->Close();
  for (auto& keys : spill_keys_) {
    for (const std::string& key : keys) {
      (void)ObjectStore::Default().Delete(key);
    }
    keys.clear();
  }
  if (exec_ctx_.memory_manager != nullptr && reserved_bytes() > 0) {
    exec_ctx_.memory_manager->Release(this, reserved_bytes());
    reserved_for_data_ = 0;
  }
}

void HashAggregateOperator::PublishMetricsImpl() {
  stats_.SetMax(obs::Metric::kPeakReservedBytes, peak_reserved_bytes());
  stats_.Add(obs::Metric::kReserveWaitNs, reserve_wait_ns());
  stats_.Add(obs::Metric::kReserveWaits, reserve_waits());
}

}  // namespace photon
