#ifndef PHOTON_OPS_FILE_SCAN_H_
#define PHOTON_OPS_FILE_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "io/caching_store.h"
#include "io/prefetcher.h"
#include "ops/operator.h"
#include "storage/delta.h"
#include "storage/format.h"

namespace photon {

/// Scans columnar files from the object store, one row group per batch,
/// with column projection and min/max predicate skipping at both file and
/// row-group granularity. An optional residual predicate is applied to
/// surviving batches (scan-level filtering).
///
/// IO path (src/io): file bytes are fetched through a CachingStore, so a
/// shared BlockCache turns repeated (warm) scans into memory reads, and —
/// when an executor thread pool is supplied — an async Prefetcher keeps
/// the next files in flight while the current one is decoded, overlapping
/// simulated object-store latency with compute (the paper's NVMe cache +
/// async IO scan path, §2).
class FileScanOperator : public Operator {
 public:
  /// `columns` selects fields by index into the file schema (empty = all).
  FileScanOperator(ObjectStore* store, std::vector<std::string> file_keys,
                   Schema file_schema, std::vector<int> columns = {},
                   ExprPtr predicate = nullptr, io::IoOptions io = {});

  Status Open() override;
  Result<ColumnBatch*> GetNextImpl() override;
  void Close() override;
  std::string name() const override { return "PhotonFileScan"; }

  static Schema Project(const Schema& schema, const std::vector<int>& cols);

 protected:
  /// Folds cache/prefetch state into the metric set (kCacheHits,
  /// kPrefetchWaitNs); bytes/files/row-group counters are recorded
  /// directly in GetNextImpl. All scan IO stats live in op_metrics() —
  /// there are no special-cased accessors.
  void PublishMetricsImpl() override;

 private:
  /// Remaps a predicate over the file schema to the projected schema, or
  /// nullptr when the predicate references unprojected columns.
  std::vector<std::string> file_keys_;
  Schema file_schema_;
  std::vector<int> columns_;
  ExprPtr predicate_;
  std::unique_ptr<io::CachingStore> io_;
  std::unique_ptr<io::Prefetcher> prefetcher_;

  size_t next_file_ = 0;
  std::unique_ptr<FileReader> reader_;
  int next_row_group_ = 0;
  std::unique_ptr<ColumnBatch> current_;
  EvalContext ctx_;
};

/// Stats-based file pruning for a Delta snapshot (data skipping, §2.1):
/// returns the object-store keys of files whose min/max stats may match
/// `predicate` (over the projected schema). Used by DeltaScanOperator and
/// by the parallel driver's morsel planner, which splits the surviving
/// file list across tasks.
std::vector<std::string> PruneDeltaFiles(const DeltaSnapshot& snapshot,
                                         const std::vector<int>& columns,
                                         const ExprPtr& predicate,
                                         const Schema& projected_schema,
                                         int64_t* files_pruned);

/// Scans a Delta table snapshot: prunes files by stats, then chains
/// FileScan over the survivors. This is the "Lakehouse read path":
/// Delta log -> file pruning -> columnar scan -> Photon batches.
class DeltaScanOperator : public Operator {
 public:
  DeltaScanOperator(ObjectStore* store, DeltaSnapshot snapshot,
                    std::vector<int> columns = {},
                    ExprPtr predicate = nullptr, io::IoOptions io = {});

  Status Open() override;
  Result<ColumnBatch*> GetNextImpl() override;
  void Close() override;
  std::string name() const override { return "PhotonDeltaScan"; }
  std::vector<Operator*> children() override { return {inner_.get()}; }

  int64_t files_pruned() const { return files_pruned_; }

 private:
  std::unique_ptr<FileScanOperator> inner_;
  int64_t files_pruned_ = 0;
};

}  // namespace photon

#endif  // PHOTON_OPS_FILE_SCAN_H_
