#ifndef PHOTON_OPS_FILE_SCAN_H_
#define PHOTON_OPS_FILE_SCAN_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "ops/operator.h"
#include "storage/delta.h"
#include "storage/format.h"

namespace photon {

/// Scans columnar files from the object store, one row group per batch,
/// with column projection and min/max predicate skipping at both file and
/// row-group granularity. An optional residual predicate is applied to
/// surviving batches (scan-level filtering).
class FileScanOperator : public Operator {
 public:
  /// `columns` selects fields by index into the file schema (empty = all).
  FileScanOperator(ObjectStore* store, std::vector<std::string> file_keys,
                   Schema file_schema, std::vector<int> columns = {},
                   ExprPtr predicate = nullptr);

  Status Open() override;
  Result<ColumnBatch*> GetNextImpl() override;
  std::string name() const override { return "PhotonFileScan"; }

  int64_t row_groups_skipped() const { return row_groups_skipped_; }
  int64_t files_read() const { return files_read_; }

  static Schema Project(const Schema& schema, const std::vector<int>& cols);

 private:
  /// Remaps a predicate over the file schema to the projected schema, or
  /// nullptr when the predicate references unprojected columns.
  ObjectStore* store_;
  std::vector<std::string> file_keys_;
  Schema file_schema_;
  std::vector<int> columns_;
  ExprPtr predicate_;

  size_t next_file_ = 0;
  std::unique_ptr<FileReader> reader_;
  int next_row_group_ = 0;
  std::unique_ptr<ColumnBatch> current_;
  EvalContext ctx_;
  int64_t row_groups_skipped_ = 0;
  int64_t files_read_ = 0;
};

/// Scans a Delta table snapshot: prunes files by stats, then chains
/// FileScan over the survivors. This is the "Lakehouse read path":
/// Delta log -> file pruning -> columnar scan -> Photon batches.
class DeltaScanOperator : public Operator {
 public:
  DeltaScanOperator(ObjectStore* store, DeltaSnapshot snapshot,
                    std::vector<int> columns = {},
                    ExprPtr predicate = nullptr);

  Status Open() override;
  Result<ColumnBatch*> GetNextImpl() override;
  std::string name() const override { return "PhotonDeltaScan"; }

  int64_t files_pruned() const { return files_pruned_; }

 private:
  std::unique_ptr<FileScanOperator> inner_;
  int64_t files_pruned_ = 0;
};

}  // namespace photon

#endif  // PHOTON_OPS_FILE_SCAN_H_
