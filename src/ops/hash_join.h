#ifndef PHOTON_OPS_HASH_JOIN_H_
#define PHOTON_OPS_HASH_JOIN_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "ht/vectorized_hash_table.h"
#include "ops/operator.h"

namespace photon {

enum class JoinType : uint8_t {
  kInner,
  kLeftOuter,  // probe side is the left/outer side
  kLeftSemi,
  kLeftAnti,
};

/// Vectorized hash join (§4.4, Figure 4). The build side is materialized
/// into the vectorized hash table (entries are rows: keys + packed build
/// columns); the probe side streams through the three-step batched lookup.
///
/// Adaptive probe-side batch compaction (§4.6, Figure 9): when a probe
/// batch arrives sparse (most rows filtered out upstream), Photon compacts
/// it into a dense batch before probing so the bucket loads saturate memory
/// parallelism instead of paying per-miss latency on a mostly-idle batch.
///
/// Semi/anti joins return the probe batch itself with its position list
/// narrowed to (non-)matching rows — no output copying at all. An optional
/// `residual` predicate supports non-equi conditions:
///   - inner: evaluated vectorized over emitted output batches;
///   - semi/anti: evaluated per candidate (probe row, build row) pair.
class HashJoinOperator : public Operator, public MemoryConsumer {
 public:
  HashJoinOperator(OperatorPtr build, OperatorPtr probe,
                   std::vector<ExprPtr> build_keys,
                   std::vector<ExprPtr> probe_keys, JoinType join_type,
                   ExecContext exec_ctx = {}, ExprPtr residual = nullptr,
                   bool adaptive_compaction = true);
  ~HashJoinOperator() override;

  Status Open() override;
  Result<ColumnBatch*> GetNextImpl() override;
  void Close() override;
  std::string name() const override { return "PhotonHashJoin"; }
  std::vector<Operator*> children() override {
    return {probe_.get(), build_.get()};
  }

  /// Joins cannot release memory mid-build; other consumers spill on their
  /// behalf (§5.3's cross-operator spilling).
  int64_t Spill(int64_t) override { return 0; }

  int64_t build_rows() const { return build_rows_; }
  int64_t compacted_batches() const { return compacted_batches_; }

 private:
  static Schema MakeOutputSchema(const Operator& build, const Operator& probe,
                                 JoinType join_type);

  Status BuildPhase();
  void WriteBuildPayload(const ColumnBatch& batch, int row, uint8_t* entry);
  /// Copies build columns of `entry` into output columns at out_row (or
  /// NULLs when entry == nullptr, for left outer).
  void EmitBuildColumns(const uint8_t* entry, int out_row);
  void EmitProbeColumns(const ColumnBatch& batch, int row, int out_row);
  Status ProbeBatch(ColumnBatch* batch);
  void DrainSparseSource();
  Result<ColumnBatch*> ProbeNextBatch();
  Result<ColumnBatch*> EmitMatches();
  /// Boxed row of probe row + build entry columns, for residual eval.
  Result<bool> ResidualMatches(const ColumnBatch& batch, int probe_row,
                               const uint8_t* entry);

  OperatorPtr build_;
  OperatorPtr probe_;
  std::vector<ExprPtr> build_keys_;
  std::vector<ExprPtr> probe_keys_;
  JoinType join_type_;
  ExecContext exec_ctx_;
  ExprPtr residual_;
  bool adaptive_compaction_;

  std::unique_ptr<VectorizedHashTable> table_;
  std::vector<int> payload_offsets_;
  int payload_bytes_ = 0;
  Schema build_schema_;
  int64_t build_rows_ = 0;
  int64_t reserved_for_data_ = 0;
  bool built_ = false;
  int64_t compacted_batches_ = 0;

  // Probe iteration state.
  ColumnBatch* probe_batch_ = nullptr;  // current (possibly compacted)
  // Compaction buffer: sparse batches coalesce here until dense.
  std::unique_ptr<ColumnBatch> accum_;
  int accum_rows_ = 0;
  bool accum_in_flight_ = false;
  ColumnBatch* pending_dense_ = nullptr;   // dense batch waiting behind accum
  ColumnBatch* accum_source_ = nullptr;    // sparse batch partially consumed
  int accum_source_pos_ = 0;
  std::vector<uint64_t> hashes_;
  std::vector<uint8_t*> match_heads_;
  int probe_idx_ = 0;              // index into probe batch's active set
  const uint8_t* chain_entry_ = nullptr;

  std::unique_ptr<ColumnBatch> out_;
  EvalContext ctx_;
};

}  // namespace photon

#endif  // PHOTON_OPS_HASH_JOIN_H_
