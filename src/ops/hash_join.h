#ifndef PHOTON_OPS_HASH_JOIN_H_
#define PHOTON_OPS_HASH_JOIN_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "ht/vectorized_hash_table.h"
#include "ops/operator.h"

namespace photon {

enum class JoinType : uint8_t {
  kInner,
  kLeftOuter,  // probe side is the left/outer side
  kLeftSemi,
  kLeftAnti,
};

/// The materialized build side of a hash join: the vectorized hash table
/// plus the payload layout used to pack build columns into entries. Built
/// once (BuildShared / the join's own build phase) and then immutable, so
/// any number of probe tasks can share it concurrently — the paper's
/// broadcast-build, partition-parallel-probe shape (§2.2).
///
/// It is the MemoryConsumer for the build memory; joins cannot release
/// memory mid-build, so Spill() is a no-op and other consumers spill on
/// the join's behalf (§5.3).
struct JoinBuildState : public MemoryConsumer {
  JoinBuildState() : MemoryConsumer("PhotonJoinBuild") {}
  ~JoinBuildState() override;

  int64_t Spill(int64_t) override { return 0; }

  std::unique_ptr<VectorizedHashTable> table;
  std::vector<int> payload_offsets;
  int payload_bytes = 0;
  Schema build_schema;
  int64_t build_rows = 0;
  int64_t reserved_for_data = 0;
  /// Manager the state is registered with (null = none); the destructor
  /// releases the build reservation and unregisters.
  MemoryManager* memory_manager = nullptr;
  bool registered = false;
};

using JoinBuildPtr = std::shared_ptr<JoinBuildState>;

/// Vectorized hash join (§4.4, Figure 4). The build side is materialized
/// into the vectorized hash table (entries are rows: keys + packed build
/// columns); the probe side streams through the three-step batched lookup.
///
/// Adaptive probe-side batch compaction (§4.6, Figure 9): when a probe
/// batch arrives sparse (most rows filtered out upstream), Photon compacts
/// it into a dense batch before probing so the bucket loads saturate memory
/// parallelism instead of paying per-miss latency on a mostly-idle batch.
///
/// Semi/anti joins return the probe batch itself with its position list
/// narrowed to (non-)matching rows — no output copying at all. An optional
/// `residual` predicate supports non-equi conditions:
///   - inner: evaluated vectorized over emitted output batches;
///   - semi/anti: evaluated per candidate (probe row, build row) pair;
///   - left outer: evaluated per candidate pair, and a probe row whose
///     candidates all fail the residual is emitted NULL-padded (it is an
///     unmatched row under the full join condition).
class HashJoinOperator : public Operator {
 public:
  /// Self-building join: drains `build` into a private hash table on the
  /// first GetNext(), then probes.
  HashJoinOperator(OperatorPtr build, OperatorPtr probe,
                   std::vector<ExprPtr> build_keys,
                   std::vector<ExprPtr> probe_keys, JoinType join_type,
                   ExecContext exec_ctx = {}, ExprPtr residual = nullptr,
                   bool adaptive_compaction = true);

  /// Probe-only join over a pre-built shared table (parallel driver: many
  /// morsel tasks probing one build). The shared state must outlive all
  /// probers and is treated as read-only.
  HashJoinOperator(JoinBuildPtr build, OperatorPtr probe,
                   std::vector<ExprPtr> probe_keys, JoinType join_type,
                   ExecContext exec_ctx = {}, ExprPtr residual = nullptr,
                   bool adaptive_compaction = true);
  ~HashJoinOperator() override;

  /// Builds a shareable join-build state by draining `build_child`
  /// (Open()..Close() included). Reservations go to the returned state
  /// under `exec_ctx`'s memory manager and task group.
  static Result<JoinBuildPtr> BuildShared(Operator* build_child,
                                          const std::vector<ExprPtr>& build_keys,
                                          const ExecContext& exec_ctx);

  Status Open() override;
  Result<ColumnBatch*> GetNextImpl() override;
  void Close() override;
  std::string name() const override { return "PhotonHashJoin"; }
  std::vector<Operator*> children() override {
    if (build_ == nullptr) return {probe_.get()};
    return {probe_.get(), build_.get()};
  }

  int64_t build_rows() const { return state_->build_rows; }
  int64_t compacted_batches() const { return compacted_batches_; }

  static Schema MakeOutputSchema(const Schema& build, const Schema& probe,
                                 JoinType join_type);

 protected:
  void PublishMetricsImpl() override;

 private:
  Status BuildPhase();
  /// Copies build columns of `entry` into output columns at out_row (or
  /// NULLs when entry == nullptr, for left outer).
  void EmitBuildColumns(const uint8_t* entry, int out_row);
  void EmitProbeColumns(const ColumnBatch& batch, int row, int out_row);
  Status ProbeBatch(ColumnBatch* batch);
  void DrainSparseSource();
  Result<ColumnBatch*> ProbeNextBatch();
  Result<ColumnBatch*> EmitMatches();
  /// Boxed row of probe row + build entry columns, for residual eval.
  Result<bool> ResidualMatches(const ColumnBatch& batch, int probe_row,
                               const uint8_t* entry);

  OperatorPtr build_;  // null when probing a shared build
  OperatorPtr probe_;
  std::vector<ExprPtr> build_keys_;
  std::vector<ExprPtr> probe_keys_;
  JoinType join_type_;
  ExecContext exec_ctx_;
  ExprPtr residual_;
  bool adaptive_compaction_;

  JoinBuildPtr state_;  // private when build_ != null, else shared
  bool built_ = false;
  int64_t compacted_batches_ = 0;

  // Probe iteration state.
  ColumnBatch* probe_batch_ = nullptr;  // current (possibly compacted)
  // Compaction buffer: sparse batches coalesce here until dense.
  std::unique_ptr<ColumnBatch> accum_;
  int accum_rows_ = 0;
  bool accum_in_flight_ = false;
  ColumnBatch* pending_dense_ = nullptr;   // dense batch waiting behind accum
  ColumnBatch* accum_source_ = nullptr;    // sparse batch partially consumed
  int accum_source_pos_ = 0;
  std::vector<uint64_t> hashes_;
  std::vector<uint8_t*> match_heads_;
  VectorizedHashTable::ProbeScratch probe_scratch_;
  int probe_idx_ = 0;              // index into probe batch's active set
  const uint8_t* chain_entry_ = nullptr;
  bool chain_open_ = false;     // chain for current probe row initialized
  bool chain_matched_ = false;  // left outer: some candidate pair emitted

  std::unique_ptr<ColumnBatch> out_;
  EvalContext ctx_;
};

}  // namespace photon

#endif  // PHOTON_OPS_HASH_JOIN_H_
