#include "ops/file_scan.h"

namespace photon {

Schema FileScanOperator::Project(const Schema& schema,
                                 const std::vector<int>& cols) {
  if (cols.empty()) return schema;
  Schema out;
  for (int c : cols) out.AddField(schema.field(c));
  return out;
}

FileScanOperator::FileScanOperator(ObjectStore* store,
                                   std::vector<std::string> file_keys,
                                   Schema file_schema,
                                   std::vector<int> columns,
                                   ExprPtr predicate, io::IoOptions io)
    : Operator(Project(file_schema, columns)),
      file_keys_(std::move(file_keys)),
      file_schema_(std::move(file_schema)),
      columns_(std::move(columns)),
      predicate_(std::move(predicate)),
      io_(std::make_unique<io::CachingStore>(store, io)) {
  if (io.prefetch_pool != nullptr) {
    io::Prefetcher::Options popts;
    popts.depth = io.prefetch_depth;
    prefetcher_ = std::make_unique<io::Prefetcher>(io_.get(),
                                                   io.prefetch_pool, popts);
  }
}

Status FileScanOperator::Open() {
  next_file_ = 0;
  reader_ = nullptr;
  next_row_group_ = 0;
  // Warm the pipeline before the first GetNext touches the store.
  if (prefetcher_ != nullptr) prefetcher_->ScheduleAhead(file_keys_, 0);
  return Status::OK();
}

void FileScanOperator::Close() {
  // A scan abandoned early (LIMIT, error) must not leave read-aheads
  // running on the shared pool.
  if (prefetcher_ != nullptr) prefetcher_->Cancel();
}

void FileScanOperator::PublishMetricsImpl() {
  stats_.Add(obs::Metric::kCacheHits, io_->stats().hits);
  if (prefetcher_ != nullptr) {
    stats_.Add(obs::Metric::kPrefetchWaitNs, prefetcher_->stats().wait_ns);
  }
}

Result<ColumnBatch*> FileScanOperator::GetNextImpl() {
  while (true) {
    if (reader_ == nullptr) {
      if (next_file_ >= file_keys_.size()) return nullptr;
      const std::string& key = file_keys_[next_file_];
      std::shared_ptr<const std::string> bytes;
      if (prefetcher_ != nullptr) {
        // Keep the window ahead of us full, then consume the current key.
        prefetcher_->ScheduleAhead(file_keys_, next_file_ + 1);
        PHOTON_ASSIGN_OR_RETURN(bytes, prefetcher_->Fetch(key));
      } else {
        PHOTON_ASSIGN_OR_RETURN(bytes, io_->Get(key));
      }
      stats_.Add(obs::Metric::kBytesRead,
                 static_cast<int64_t>(bytes->size()));
      PHOTON_ASSIGN_OR_RETURN(reader_, FileReader::Open(std::move(bytes)));
      next_file_++;
      next_row_group_ = 0;
      stats_.Add(obs::Metric::kFilesRead, 1);
    }
    if (next_row_group_ >= reader_->num_row_groups()) {
      reader_ = nullptr;
      continue;
    }
    int rg = next_row_group_++;
    // Row-group skipping: the predicate is expressed over the *projected*
    // schema; map its column indices back to file stats.
    if (predicate_ != nullptr) {
      const RowGroupMeta& meta = reader_->meta().row_groups[rg];
      std::vector<ColumnChunkMeta> projected_stats;
      if (columns_.empty()) {
        projected_stats = meta.columns;
      } else {
        for (int c : columns_) projected_stats.push_back(meta.columns[c]);
      }
      if (!StatsMayMatch(*predicate_, output_schema_, projected_stats)) {
        stats_.Add(obs::Metric::kRowGroupsSkipped, 1);
        continue;
      }
    }
    PHOTON_ASSIGN_OR_RETURN(current_, reader_->ReadRowGroup(rg, columns_));
    if (predicate_ != nullptr) {
      ctx_.ResetPerBatch();
      PHOTON_ASSIGN_OR_RETURN(int active,
                              FilterBatch(*predicate_, current_.get(), &ctx_));
      if (active == 0) continue;
    }
    if (current_->num_active() == 0) continue;
    return current_.get();
  }
}

std::vector<std::string> PruneDeltaFiles(const DeltaSnapshot& snapshot,
                                         const std::vector<int>& columns,
                                         const ExprPtr& predicate,
                                         const Schema& projected_schema,
                                         int64_t* files_pruned) {
  // File pruning by snapshot-level stats (data skipping, §2.1): note the
  // predicate here is over the *projected* schema; only prune when the
  // projection is identity or the predicate maps cleanly.
  std::vector<std::string> keys;
  for (const DeltaFileEntry& f : snapshot.files) {
    if (predicate != nullptr) {
      std::vector<ColumnChunkMeta> projected_stats;
      if (columns.empty()) {
        projected_stats = f.column_stats;
      } else {
        for (int c : columns) projected_stats.push_back(f.column_stats[c]);
      }
      if (!StatsMayMatch(*predicate, projected_schema, projected_stats)) {
        if (files_pruned != nullptr) (*files_pruned)++;
        continue;
      }
    }
    keys.push_back(f.key);
  }
  return keys;
}

DeltaScanOperator::DeltaScanOperator(ObjectStore* store,
                                     DeltaSnapshot snapshot,
                                     std::vector<int> columns,
                                     ExprPtr predicate, io::IoOptions io)
    : Operator(FileScanOperator::Project(snapshot.schema, columns)) {
  std::vector<std::string> keys = PruneDeltaFiles(
      snapshot, columns, predicate, output_schema_, &files_pruned_);
  inner_ = std::make_unique<FileScanOperator>(
      store, std::move(keys), snapshot.schema, std::move(columns),
      std::move(predicate), io);
  stats_.Add(obs::Metric::kFilesPruned, files_pruned_);
}

Status DeltaScanOperator::Open() { return inner_->Open(); }

void DeltaScanOperator::Close() { inner_->Close(); }

Result<ColumnBatch*> DeltaScanOperator::GetNextImpl() {
  return inner_->GetNext();
}

}  // namespace photon
