#ifndef PHOTON_OPS_LIMIT_H_
#define PHOTON_OPS_LIMIT_H_

#include "ops/operator.h"

namespace photon {

/// Emits at most `limit` active rows, truncating the final batch's position
/// list.
class LimitOperator : public Operator {
 public:
  LimitOperator(OperatorPtr child, int64_t limit)
      : Operator(child->output_schema()),
        child_(std::move(child)),
        limit_(limit) {}

  Status Open() override {
    remaining_ = limit_;
    return child_->Open();
  }

  Result<ColumnBatch*> GetNextImpl() override {
    if (remaining_ <= 0) return nullptr;
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, child_->GetNext());
    if (batch == nullptr) return nullptr;
    if (batch->num_active() > remaining_) {
      // Truncate: if the batch was all-active, materialize the prefix as an
      // explicit position list.
      int keep = static_cast<int>(remaining_);
      if (batch->all_active()) {
        int32_t* pos = batch->mutable_pos_list();
        for (int i = 0; i < keep; i++) pos[i] = i;
      }
      batch->SetActiveRows(keep);
    }
    remaining_ -= batch->num_active();
    return batch;
  }

  void Close() override { child_->Close(); }
  std::string name() const override { return "PhotonLimit"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t remaining_ = 0;
};

}  // namespace photon

#endif  // PHOTON_OPS_LIMIT_H_
