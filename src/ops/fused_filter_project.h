#ifndef PHOTON_OPS_FUSED_FILTER_PROJECT_H_
#define PHOTON_OPS_FUSED_FILTER_PROJECT_H_

#include <memory>
#include <string>

#include "expr/fusion.h"
#include "ops/operator.h"

namespace photon {

/// Executes a fused filter→project chain (DESIGN.md §12) as one operator:
/// the conjuncts rewrite the batch's position list in place, then the
/// projection programs evaluate over the surviving rows only, and a view
/// batch points at the results — one batch hand-off and one EvalContext for
/// a chain that previously cost one of each per plan node. Batches left
/// with no active rows are skipped, like FilterOperator.
class FusedFilterProjectOperator : public Operator {
 public:
  FusedFilterProjectOperator(OperatorPtr child,
                             std::shared_ptr<const FusedUnit> unit,
                             ExprPolicy policy)
      : Operator(unit->has_projection() ? unit->output_schema()
                                        : child->output_schema()),
        child_(std::move(child)),
        unit_(std::move(unit)),
        state_(unit_, policy) {}

  Status Open() override { return child_->Open(); }
  Result<ColumnBatch*> GetNextImpl() override;
  void Close() override { child_->Close(); }
  std::string name() const override { return "PhotonFusedFilterProject"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

 private:
  void PublishMetricsImpl() override;

  OperatorPtr child_;
  std::shared_ptr<const FusedUnit> unit_;
  FusedUnitState state_;
  EvalContext ctx_;
  std::unique_ptr<ColumnBatch> view_;
};

}  // namespace photon

#endif  // PHOTON_OPS_FUSED_FILTER_PROJECT_H_
