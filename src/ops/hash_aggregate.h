#ifndef PHOTON_OPS_HASH_AGGREGATE_H_
#define PHOTON_OPS_HASH_AGGREGATE_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/agg_function.h"
#include "expr/expr.h"
#include "ht/vectorized_hash_table.h"
#include "ops/operator.h"
#include "storage/object_store.h"

namespace photon {

/// One aggregate in a grouping aggregation: kind + argument expression
/// (arg may be null for count(*)) + output column name.
struct AggregateSpec {
  AggKind kind;
  ExprPtr arg;
  std::string name;
};

/// Execution mode for a grouping aggregation under parallel execution
/// (paper §4: per-task hash tables + a reduce that merges their states).
///   kComplete   — classic single-pass aggregate: raw input in, final
///                 values out.
///   kPartial    — per-task half: raw input in, serialized (key, state)
///                 blobs out (one String column, same wire format as the
///                 spill files), exact for every aggregate kind.
///   kFinalMerge — merge half: blob rows in (from any number of partial
///                 tasks), final values out.
enum class AggMode : uint8_t { kComplete, kPartial, kFinalMerge };

/// Vectorized grouping aggregation over the vectorized hash table (§4.4,
/// Figure 5). Group keys and aggregate arguments are arbitrary
/// expressions; aggregate state lives in the hash table entry payload, with
/// variable-size state in a shared arena.
///
/// Memory is acquired in two phases per input batch (§5.3): a reservation
/// phase that may trigger spilling (of this operator or any other memory
/// consumer), then an allocation phase that cannot fail. When asked to
/// spill, the operator hash-partitions its current entries to the object
/// store and continues with an empty table; spilled partitions are merged
/// one at a time during output.
class HashAggregateOperator : public Operator, public MemoryConsumer {
 public:
  HashAggregateOperator(OperatorPtr child, std::vector<ExprPtr> keys,
                        std::vector<std::string> key_names,
                        std::vector<AggregateSpec> aggs,
                        ExecContext exec_ctx = {},
                        AggMode mode = AggMode::kComplete);
  ~HashAggregateOperator() override;

  /// Output schema of a kPartial aggregate: one String blob column.
  static Schema PartialOutputSchema();

  Status Open() override;
  Result<ColumnBatch*> GetNextImpl() override;
  void Close() override;
  std::string name() const override { return "PhotonHashAggregate"; }
  std::vector<Operator*> children() override { return {child_.get()}; }

  /// MemoryConsumer: partitions and serializes all current entries to the
  /// object store, clears the table, returns the bytes released.
  int64_t Spill(int64_t requested) override;

  int64_t num_groups() const {
    return table_ == nullptr ? 0 : table_->num_entries();
  }

 protected:
  void PublishMetricsImpl() override;

 private:
  static constexpr int kSpillPartitions = 16;

  static Schema MakeOutputSchema(const std::vector<ExprPtr>& keys,
                                 const std::vector<std::string>& key_names,
                                 const std::vector<AggregateSpec>& aggs);

  Status ConsumeInput();
  Status ProcessBatch(ColumnBatch* batch);
  /// kFinalMerge input path: merges every blob row of `batch`.
  Status MergeBlobBatch(ColumnBatch* batch);
  /// Emits up to batch_size groups from the in-memory table.
  ColumnBatch* EmitFromTable();
  /// kPartial output path: serializes groups (or streams spill blocks)
  /// into blob rows.
  Result<ColumnBatch*> EmitPartial();
  /// Loads the next spilled partition into a fresh table (merging).
  Result<bool> LoadNextSpillPartition();
  void SerializeEntry(const uint8_t* entry, BinaryWriter* out) const;
  Status MergeSpillBlock(std::string_view bytes);
  int64_t CurrentMemoryBytes() const;
  Status ReserveForDelta();

  OperatorPtr child_;
  std::vector<ExprPtr> keys_;
  std::vector<AggregateSpec> specs_;
  std::vector<std::unique_ptr<AggregateFunction>> aggs_;
  std::vector<int> agg_state_offsets_;
  int payload_bytes_ = 0;
  ExecContext exec_ctx_;
  AggMode mode_ = AggMode::kComplete;

  std::unique_ptr<VectorizedHashTable> table_;
  std::unique_ptr<VarLenPool> arena_;
  // Scalar (no GROUP BY) state.
  std::vector<uint8_t> scalar_state_;
  bool scalar_mode_ = false;

  // Phase tracking.
  bool input_consumed_ = false;
  bool scalar_emitted_ = false;
  std::vector<uint8_t*> emit_entries_;
  size_t emit_pos_ = 0;
  std::unique_ptr<ColumnBatch> out_;

  // Spill bookkeeping.
  std::vector<std::vector<std::string>> spill_keys_;  // per partition
  int spill_seq_ = 0;
  int current_spill_partition_ = -1;
  int64_t reserved_for_data_ = 0;

  // kPartial emission state: spilled blocks are streamed out raw (they
  // already hold serialized entries in the blob wire format).
  std::vector<std::string> partial_spill_stream_;
  size_t partial_spill_pos_ = 0;
  bool partial_prepared_ = false;

  // Scratch.
  EvalContext ctx_;
  std::vector<uint64_t> hashes_;
  std::vector<uint8_t*> entries_;
  std::unique_ptr<bool[]> inserted_;
  int inserted_capacity_ = 0;
};

}  // namespace photon

#endif  // PHOTON_OPS_HASH_AGGREGATE_H_
