#include "ops/shuffle.h"

#include "ht/vectorized_hash_table.h"
#include "vector/vector_serde.h"

namespace photon {

ShuffleWriteOperator::ShuffleWriteOperator(OperatorPtr child,
                                           std::vector<ExprPtr> partition_keys,
                                           std::string shuffle_id,
                                           ShuffleOptions options,
                                           ExecContext exec_ctx)
    : Operator(child->output_schema()),
      child_(std::move(child)),
      partition_keys_(std::move(partition_keys)),
      shuffle_id_(std::move(shuffle_id)),
      options_(options),
      exec_ctx_(exec_ctx) {
  PHOTON_CHECK(!partition_keys_.empty());
  PHOTON_CHECK(options_.num_partitions > 0);
}

Status ShuffleWriteOperator::Open() {
  PHOTON_RETURN_NOT_OK(child_->Open());
  staging_.clear();
  staging_rows_.assign(options_.num_partitions, 0);
  block_seq_.assign(options_.num_partitions, 0);
  for (int p = 0; p < options_.num_partitions; p++) {
    staging_.push_back(std::make_unique<ColumnBatch>(
        output_schema_, exec_ctx_.batch_size));
  }
  done_ = false;
  return Status::OK();
}

Status ShuffleWriteOperator::FlushPartition(int p) {
  if (staging_rows_[p] == 0) return Status::OK();
  ColumnBatch* batch = staging_[p].get();
  batch->set_num_rows(staging_rows_[p]);
  batch->SetAllActive();

  // Runtime adaptivity (Table 1): pick per-column encodings by inspecting
  // this block's data.
  std::vector<ColumnEncoding> encodings;
  if (options_.adaptive_encoding) {
    encodings = ChooseAdaptiveEncodings(*batch);
  }
  BinaryWriter writer;
  SerializeBatch(*batch, encodings, &writer);
  std::string compressed =
      Compress(std::string_view(reinterpret_cast<const char*>(
                                    writer.data().data()),
                                writer.size()),
               options_.codec);
  std::string key = "shuffle/" + shuffle_id_ + "/p" + std::to_string(p) +
                    "/w" + std::to_string(options_.writer_id) + "-blk" +
                    std::to_string(block_seq_[p]++);
  bytes_written_ += static_cast<int64_t>(compressed.size());
  blocks_written_++;
  PHOTON_RETURN_NOT_OK(ObjectStore::Default().Put(key, std::move(compressed)));

  batch->Reset();
  staging_rows_[p] = 0;
  return Status::OK();
}

Status ShuffleWriteOperator::PartitionBatch(ColumnBatch* batch) {
  int n = batch->num_active();
  std::vector<const ColumnVector*> key_vecs;
  for (const ExprPtr& k : partition_keys_) {
    PHOTON_ASSIGN_OR_RETURN(ColumnVector * v, k->Evaluate(batch, &ctx_));
    key_vecs.push_back(v);
  }
  hashes_.resize(n);
  VectorizedHashTable::HashKeys(key_vecs, *batch, hashes_.data());

  for (int i = 0; i < n; i++) {
    int row = batch->ActiveRow(i);
    int p = static_cast<int>(hashes_[i] %
                             static_cast<uint64_t>(options_.num_partitions));
    CopyRow(*batch, row, staging_[p].get(), staging_rows_[p]);
    staging_rows_[p]++;
    if (staging_rows_[p] == staging_[p]->capacity()) {
      PHOTON_RETURN_NOT_OK(FlushPartition(p));
    }
  }
  return Status::OK();
}

Result<ColumnBatch*> ShuffleWriteOperator::GetNextImpl() {
  if (done_) return nullptr;
  while (true) {
    ctx_.ResetPerBatch();
    PHOTON_ASSIGN_OR_RETURN(ColumnBatch * batch, child_->GetNext());
    if (batch == nullptr) break;
    PHOTON_RETURN_NOT_OK(PartitionBatch(batch));
  }
  for (int p = 0; p < options_.num_partitions; p++) {
    PHOTON_RETURN_NOT_OK(FlushPartition(p));
  }
  done_ = true;
  return nullptr;
}

ShuffleReadOperator::ShuffleReadOperator(Schema schema,
                                         std::string shuffle_id,
                                         int partition)
    : Operator(std::move(schema)),
      shuffle_id_(std::move(shuffle_id)),
      partition_(partition) {}

Status ShuffleReadOperator::Open() {
  std::string prefix = "shuffle/" + shuffle_id_ + "/";
  if (partition_ >= 0) prefix += "p" + std::to_string(partition_) + "/";
  block_keys_ = ObjectStore::Default().List(prefix);
  next_block_ = 0;
  return Status::OK();
}

Result<ColumnBatch*> ShuffleReadOperator::GetNextImpl() {
  while (next_block_ < block_keys_.size()) {
    PHOTON_ASSIGN_OR_RETURN(std::string frame,
                            ObjectStore::Default().Get(
                                block_keys_[next_block_++]));
    PHOTON_ASSIGN_OR_RETURN(std::string bytes, Decompress(frame));
    BinaryReader reader(bytes);
    PHOTON_ASSIGN_OR_RETURN(current_,
                            DeserializeBatch(output_schema_, &reader));
    if (current_->num_rows() > 0) return current_.get();
  }
  return nullptr;
}

int64_t ShuffleDataBytes(const std::string& shuffle_id) {
  int64_t total = 0;
  for (const std::string& key :
       ObjectStore::Default().List("shuffle/" + shuffle_id + "/")) {
    Result<std::string> blob = ObjectStore::Default().Get(key);
    if (blob.ok()) total += static_cast<int64_t>(blob->size());
  }
  return total;
}

void DeleteShuffle(const std::string& shuffle_id) {
  ObjectStore::Default().DeletePrefix("shuffle/" + shuffle_id + "/");
}

}  // namespace photon
