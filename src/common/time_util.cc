#include "common/time_util.h"

#include <cstdio>

namespace photon {

// Howard Hinnant's days/civil algorithms (public domain).
CivilDate DaysToCivil(int32_t z) {
  int64_t zz = z + 719468LL;
  int64_t era = (zz >= 0 ? zz : zz - 146096) / 146097;
  int64_t doe = zz - era * 146097;
  int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  int64_t y = yoe + era * 400;
  int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  int64_t mp = (5 * doy + 2) / 153;
  int64_t d = doy - (153 * mp + 2) / 5 + 1;
  int64_t m = mp < 10 ? mp + 3 : mp - 9;
  return CivilDate{static_cast<int32_t>(m <= 2 ? y + 1 : y),
                   static_cast<int32_t>(m), static_cast<int32_t>(d)};
}

int32_t CivilToDays(int32_t y, int32_t m, int32_t d) {
  int64_t yy = y - (m <= 2 ? 1 : 0);
  int64_t era = (yy >= 0 ? yy : yy - 399) / 400;
  int64_t yoe = yy - era * 400;
  int64_t doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int32_t>(era * 146097 + doe - 719468);
}

bool ParseDate(const std::string& s, int32_t* days_out) {
  int y, m, d;
  if (std::sscanf(s.c_str(), "%d-%d-%d", &y, &m, &d) != 3) return false;
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  *days_out = CivilToDays(y, m, d);
  return true;
}

std::string FormatDate(int32_t days) {
  CivilDate c = DaysToCivil(days);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

int32_t ExtractYear(int32_t days) { return DaysToCivil(days).year; }
int32_t ExtractMonth(int32_t days) { return DaysToCivil(days).month; }
int32_t ExtractDay(int32_t days) { return DaysToCivil(days).day; }

namespace {

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}

}  // namespace

int32_t AddMonths(int32_t days, int32_t months) {
  CivilDate c = DaysToCivil(days);
  int64_t total = static_cast<int64_t>(c.year) * 12 + (c.month - 1) + months;
  int32_t year = static_cast<int32_t>(total / 12);
  int32_t month = static_cast<int32_t>(total % 12);
  if (month < 0) {
    month += 12;
    year -= 1;
  }
  month += 1;
  int32_t day = c.day;
  int32_t dim = DaysInMonth(year, month);
  if (day > dim) day = dim;
  return CivilToDays(year, month, day);
}

}  // namespace photon
