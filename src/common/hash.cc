#include "common/hash.h"

namespace photon {
namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ULL;

PHOTON_ALWAYS_INLINE uint64_t Load64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

PHOTON_ALWAYS_INLINE uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

PHOTON_ALWAYS_INLINE uint64_t Rotl(uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

}  // namespace

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* end = p + len;
  uint64_t h = seed + kPrime3 + len;

  while (p + 8 <= end) {
    uint64_t k = Load64(p);
    h ^= Rotl(k * kPrime1, 31) * kPrime2;
    h = Rotl(h, 27) * kPrime1 + kPrime2;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Load32(p)) * kPrime1;
    h = Rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= static_cast<uint64_t>(*p) * kPrime3;
    h = Rotl(h, 11) * kPrime1;
    p++;
  }
  return HashMix64(h);
}

}  // namespace photon
