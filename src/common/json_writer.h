#ifndef PHOTON_COMMON_JSON_WRITER_H_
#define PHOTON_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

namespace photon {

/// Minimal JSON emitter shared by bench result output and the query-profile
/// exporter: nested objects/arrays built through explicit Begin/End calls.
/// Keys and string values are caller-controlled identifiers, so only quotes
/// and backslashes are escaped.
class JsonWriter {
 public:
  void BeginObject() { Prefix(); out_ += '{'; first_ = true; }
  void BeginObject(const std::string& key) {
    Key(key);
    out_ += '{';
    first_ = true;
  }
  void EndObject() { out_ += '}'; first_ = false; }
  void BeginArray(const std::string& key) {
    Key(key);
    out_ += '[';
    first_ = true;
  }
  void EndArray() { out_ += ']'; first_ = false; }
  void Field(const std::string& key, int64_t v) {
    Key(key);
    out_ += std::to_string(v);
  }
  void Field(const std::string& key, int v) { Field(key, int64_t{v}); }
  void Field(const std::string& key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    Key(key);
    out_ += buf;
  }
  void Field(const std::string& key, const std::string& v) {
    Key(key);
    out_ += '"';
    for (char c : v) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
    out_ += '"';
  }
  /// Embeds pre-serialized JSON (e.g. a QueryProfile) as the value of `key`.
  void Raw(const std::string& key, const std::string& json) {
    Key(key);
    out_ += json;
  }

  const std::string& str() const { return out_; }

  bool WriteTo(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << out_ << "\n";
    return static_cast<bool>(f);
  }

 private:
  void Prefix() {
    if (!first_ && !out_.empty()) out_ += ',';
    first_ = false;
  }
  void Key(const std::string& key) {
    Prefix();
    out_ += '"' + key + "\":";
  }
  std::string out_;
  bool first_ = true;
};

}  // namespace photon

#endif  // PHOTON_COMMON_JSON_WRITER_H_
