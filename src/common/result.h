#ifndef PHOTON_COMMON_RESULT_H_
#define PHOTON_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/macros.h"
#include "common/status.h"

namespace photon {

/// Holds either a value of type T or an error Status. Modeled after
/// arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit
  // conversions so functions can `return value;` or `return status;`.
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {
    PHOTON_CHECK(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  T& ValueOrDie() & {
    PHOTON_CHECK(ok());
    return std::get<T>(repr_);
  }
  const T& ValueOrDie() const& {
    PHOTON_CHECK(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    PHOTON_CHECK(ok());
    return std::move(std::get<T>(repr_));
  }

  T& operator*() & { return ValueOrDie(); }
  const T& operator*() const& { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace photon

#endif  // PHOTON_COMMON_RESULT_H_
