#include "common/unicode.h"

namespace photon {

int Utf8Decode(const char* s, int64_t len, uint32_t* codepoint) {
  if (len <= 0) return 0;
  uint8_t b0 = static_cast<uint8_t>(s[0]);
  if (b0 < 0x80) {
    *codepoint = b0;
    return 1;
  }
  if ((b0 & 0xE0) == 0xC0) {
    if (len < 2 || (static_cast<uint8_t>(s[1]) & 0xC0) != 0x80) return 0;
    *codepoint = ((b0 & 0x1Fu) << 6) | (static_cast<uint8_t>(s[1]) & 0x3Fu);
    return *codepoint >= 0x80 ? 2 : 0;
  }
  if ((b0 & 0xF0) == 0xE0) {
    if (len < 3 || (static_cast<uint8_t>(s[1]) & 0xC0) != 0x80 ||
        (static_cast<uint8_t>(s[2]) & 0xC0) != 0x80) {
      return 0;
    }
    *codepoint = ((b0 & 0x0Fu) << 12) |
                 ((static_cast<uint8_t>(s[1]) & 0x3Fu) << 6) |
                 (static_cast<uint8_t>(s[2]) & 0x3Fu);
    return *codepoint >= 0x800 ? 3 : 0;
  }
  if ((b0 & 0xF8) == 0xF0) {
    if (len < 4 || (static_cast<uint8_t>(s[1]) & 0xC0) != 0x80 ||
        (static_cast<uint8_t>(s[2]) & 0xC0) != 0x80 ||
        (static_cast<uint8_t>(s[3]) & 0xC0) != 0x80) {
      return 0;
    }
    *codepoint = ((b0 & 0x07u) << 18) |
                 ((static_cast<uint8_t>(s[1]) & 0x3Fu) << 12) |
                 ((static_cast<uint8_t>(s[2]) & 0x3Fu) << 6) |
                 (static_cast<uint8_t>(s[3]) & 0x3Fu);
    return (*codepoint >= 0x10000 && *codepoint <= 0x10FFFF) ? 4 : 0;
  }
  return 0;
}

int Utf8Encode(uint32_t cp, char* out) {
  if (cp < 0x80) {
    out[0] = static_cast<char>(cp);
    return 1;
  }
  if (cp < 0x800) {
    out[0] = static_cast<char>(0xC0 | (cp >> 6));
    out[1] = static_cast<char>(0x80 | (cp & 0x3F));
    return 2;
  }
  if (cp < 0x10000) {
    out[0] = static_cast<char>(0xE0 | (cp >> 12));
    out[1] = static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out[2] = static_cast<char>(0x80 | (cp & 0x3F));
    return 3;
  }
  out[0] = static_cast<char>(0xF0 | (cp >> 18));
  out[1] = static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
  out[2] = static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
  out[3] = static_cast<char>(0x80 | (cp & 0x3F));
  return 4;
}

uint32_t UnicodeToUpper(uint32_t cp) {
  // ASCII.
  if (cp >= 'a' && cp <= 'z') return cp - 32;
  // Latin-1 Supplement (ÿ maps above the block; sharp-s has no single-cp
  // uppercase in this simple mapping).
  if (cp >= 0xE0 && cp <= 0xFE && cp != 0xF7) return cp - 32;
  if (cp == 0xFF) return 0x178;
  // Latin Extended-A: mostly even/odd pairs.
  if (cp >= 0x100 && cp <= 0x177 && (cp & 1)) return cp - 1;
  if (cp >= 0x179 && cp <= 0x17E && !(cp & 1)) return cp - 1;
  // Greek.
  if (cp >= 0x3B1 && cp <= 0x3C1) return cp - 32;   // alpha..rho
  if (cp == 0x3C2) return 0x3A3;                    // final sigma
  if (cp >= 0x3C3 && cp <= 0x3CB) return cp - 32;   // sigma..upsilon diaer.
  // Cyrillic.
  if (cp >= 0x430 && cp <= 0x44F) return cp - 32;
  if (cp >= 0x450 && cp <= 0x45F) return cp - 80;
  return cp;
}

uint32_t UnicodeToLower(uint32_t cp) {
  if (cp >= 'A' && cp <= 'Z') return cp + 32;
  if (cp >= 0xC0 && cp <= 0xDE && cp != 0xD7) return cp + 32;
  if (cp == 0x178) return 0xFF;
  if (cp >= 0x100 && cp <= 0x176 && !(cp & 1)) return cp + 1;
  if (cp >= 0x179 && cp <= 0x17D && (cp & 1)) return cp + 1;
  if (cp >= 0x391 && cp <= 0x3A1) return cp + 32;
  if (cp >= 0x3A3 && cp <= 0x3AB) return cp + 32;
  if (cp >= 0x410 && cp <= 0x42F) return cp + 32;
  if (cp >= 0x400 && cp <= 0x40F) return cp + 80;
  return cp;
}

namespace {

template <uint32_t (*MapFn)(uint32_t)>
std::string MapCase(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  const char* p = s.data();
  int64_t remaining = static_cast<int64_t>(s.size());
  char enc[4];
  while (remaining > 0) {
    uint32_t cp;
    int n = Utf8Decode(p, remaining, &cp);
    if (n == 0) {
      out.push_back(*p);  // Copy invalid byte through unchanged.
      p++;
      remaining--;
      continue;
    }
    int m = Utf8Encode(MapFn(cp), enc);
    out.append(enc, m);
    p += n;
    remaining -= n;
  }
  return out;
}

}  // namespace

std::string Utf8ToUpper(std::string_view s) {
  return MapCase<UnicodeToUpper>(s);
}

std::string Utf8ToLower(std::string_view s) {
  return MapCase<UnicodeToLower>(s);
}

int64_t Utf8Length(std::string_view s) {
  int64_t count = 0;
  const char* p = s.data();
  int64_t remaining = static_cast<int64_t>(s.size());
  while (remaining > 0) {
    uint32_t cp;
    int n = Utf8Decode(p, remaining, &cp);
    if (n == 0) n = 1;
    p += n;
    remaining -= n;
    count++;
  }
  return count;
}

int64_t Utf8OffsetOfCodepoint(std::string_view s, int64_t n) {
  const char* p = s.data();
  int64_t remaining = static_cast<int64_t>(s.size());
  int64_t offset = 0;
  while (remaining > 0 && n > 0) {
    uint32_t cp;
    int k = Utf8Decode(p, remaining, &cp);
    if (k == 0) k = 1;
    p += k;
    remaining -= k;
    offset += k;
    n--;
  }
  return offset;
}

}  // namespace photon
