#ifndef PHOTON_COMMON_CANCELLATION_H_
#define PHOTON_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace photon {

/// Cooperative cancellation + deadline token for one query. The service
/// layer allocates one per session; the driver threads it through
/// ExecContext into every task, which polls Check() at morsel claims,
/// batch pulls, and stage barriers, and the MemoryManager polls it while
/// a reservation is blocked on backpressure. All members are atomics, so
/// Cancel() may be called from any thread (including while tasks run).
///
/// Cancellation is cooperative, never preemptive: a cancelled task
/// surfaces kCancelled from its next checkpoint and unwinds through the
/// normal error path, so RAII (consumer registrations, shuffle guards,
/// prefetch cancellation) releases memory, spill blocks, and cache pins
/// exactly as on any other failure.
class QueryControl {
 public:
  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  /// Requests cancellation; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Absolute steady-clock deadline in ns; Check() fails once passed.
  void set_deadline_ns(int64_t deadline_ns) {
    deadline_ns_.store(deadline_ns, std::memory_order_release);
  }
  /// Convenience: deadline `ms` from now (0 or negative = no deadline).
  void SetDeadlineAfterMs(int64_t ms) {
    if (ms > 0) set_deadline_ns(SteadyNowNs() + ms * 1000000);
  }
  int64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_acquire);
  }

  /// Test hook: self-cancel after `n` more Check() calls. Pinning the
  /// cancellation to a checkpoint count makes "cancel mid-scan /
  /// mid-build / mid-spill" deterministic instead of a timing race.
  void CancelAfterChecks(int64_t n) {
    checks_until_cancel_.store(n, std::memory_order_release);
  }

  /// The cancellation checkpoint. OK while the query may keep running;
  /// kCancelled after Cancel(); kDeadlineExceeded once the deadline has
  /// passed (which also latches the cancelled flag, so every observer —
  /// including ones that only look at cancelled() — stops promptly).
  Status Check() {
    int64_t remaining =
        checks_until_cancel_.load(std::memory_order_relaxed);
    if (remaining >= 0 &&
        checks_until_cancel_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      Cancel();
    }
    if (cancelled()) {
      return deadline_hit_.load(std::memory_order_acquire)
                 ? Status::DeadlineExceeded("query deadline exceeded")
                 : Status::Cancelled("query cancelled");
    }
    int64_t deadline = deadline_ns();
    if (deadline != kNoDeadline && SteadyNowNs() >= deadline) {
      deadline_hit_.store(true, std::memory_order_release);
      Cancel();
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

  static int64_t SteadyNowNs() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> deadline_hit_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
  /// < 0 disables the test hook.
  std::atomic<int64_t> checks_until_cancel_{-1};
};

}  // namespace photon

#endif  // PHOTON_COMMON_CANCELLATION_H_
