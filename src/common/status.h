#ifndef PHOTON_COMMON_STATUS_H_
#define PHOTON_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace photon {

/// Error categories surfaced by the engine. Mirrors the small set of error
/// classes a query engine needs to distinguish operationally.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfMemory = 2,
  kIoError = 3,
  kNotImplemented = 4,
  kInternal = 5,
  kKeyError = 6,
  kCancelled = 7,
  kDeadlineExceeded = 8,
  /// An optimistic commit lost to a conflicting concurrent transaction
  /// (Delta log read-set validation failed). Retryable by re-reading the
  /// table and re-deriving the write — never by blindly re-putting.
  kCommitConflict = 9,
};

/// A cheap, movable success-or-error value. OK status carries no allocation.
class Status {
 public:
  Status() = default;

  Status(StatusCode code, std::string msg)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(msg)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_)
                            : nullptr) {}
  Status& operator=(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status CommitConflict(std::string msg) {
    return Status(StatusCode::kCommitConflict, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->msg : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfMemory() const { return code() == StatusCode::kOutOfMemory; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsCommitConflict() const {
    return code() == StatusCode::kCommitConflict;
  }

  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

}  // namespace photon

#endif  // PHOTON_COMMON_STATUS_H_
