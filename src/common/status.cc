#include "common/status.h"

namespace photon {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kKeyError:
      return "KeyError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCommitConflict:
      return "CommitConflict";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace photon
