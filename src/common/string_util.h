#ifndef PHOTON_COMMON_STRING_UTIL_H_
#define PHOTON_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace photon {

/// Returns true iff every byte of [data, data+len) is ASCII (< 0x80).
/// Uses a SIMD (SSE2) inner loop on x86-64; this is the "custom SIMD ASCII
/// check kernel" from Figure 6 of the paper.
bool IsAscii(const char* data, int64_t len);

/// Scalar reference implementation of the ASCII check (used by tests and the
/// no-SIMD ablation benchmark).
bool IsAsciiScalar(const char* data, int64_t len);

/// Byte-wise ASCII upper-casing: dst may alias src. Only bytes in 'a'..'z'
/// change; valid only when the input is known-ASCII.
void AsciiToUpper(const char* src, char* dst, int64_t len);
void AsciiToLower(const char* src, char* dst, int64_t len);

std::vector<std::string> SplitString(std::string_view s, char sep);
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// SQL LIKE pattern match with '%' and '_' wildcards (no escape support).
bool SqlLikeMatch(std::string_view value, std::string_view pattern);

/// Formats a byte count with binary units ("1.5 MiB").
std::string FormatBytes(uint64_t bytes);

}  // namespace photon

#endif  // PHOTON_COMMON_STRING_UTIL_H_
