#ifndef PHOTON_COMMON_RNG_H_
#define PHOTON_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace photon {

/// Deterministic 64-bit RNG (splitmix64 core). Used by the TPC-H generator,
/// fuzz tests, and synthetic workloads so every run is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Next() % static_cast<uint64_t>(
                                                  hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

  /// Random lowercase ASCII string of the given length.
  std::string NextAsciiString(int len) {
    std::string s(len, 'a');
    for (int i = 0; i < len; i++) {
      s[i] = static_cast<char>('a' + (Next() % 26));
    }
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace photon

#endif  // PHOTON_COMMON_RNG_H_
