#include "common/string_util.h"

#include <cstdio>

#if defined(__x86_64__)
#include <emmintrin.h>
#endif

namespace photon {

bool IsAsciiScalar(const char* data, int64_t len) {
  uint8_t acc = 0;
  for (int64_t i = 0; i < len; i++) {
    acc |= static_cast<uint8_t>(data[i]);
  }
  return (acc & 0x80) == 0;
}

bool IsAscii(const char* data, int64_t len) {
#if defined(__x86_64__)
  const char* p = data;
  const char* end = data + len;
  __m128i acc = _mm_setzero_si128();
  while (p + 16 <= end) {
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    acc = _mm_or_si128(acc, v);
    p += 16;
  }
  // movemask picks up the high bit of each accumulated byte.
  if (_mm_movemask_epi8(acc) != 0) return false;
  return IsAsciiScalar(p, end - p);
#else
  return IsAsciiScalar(data, len);
#endif
}

void AsciiToUpper(const char* src, char* dst, int64_t len) {
  // Branch-free byte loop; auto-vectorizes under -O2.
  for (int64_t i = 0; i < len; i++) {
    uint8_t c = static_cast<uint8_t>(src[i]);
    uint8_t is_lower = static_cast<uint8_t>(c - 'a') <= ('z' - 'a') ? 1 : 0;
    dst[i] = static_cast<char>(c - (is_lower << 5));
  }
}

void AsciiToLower(const char* src, char* dst, int64_t len) {
  for (int64_t i = 0; i < len; i++) {
    uint8_t c = static_cast<uint8_t>(src[i]);
    uint8_t is_upper = static_cast<uint8_t>(c - 'A') <= ('Z' - 'A') ? 1 : 0;
    dst[i] = static_cast<char>(c + (is_upper << 5));
  }
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); i++) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

namespace {

bool LikeMatchImpl(const char* v, const char* vend, const char* p,
                   const char* pend) {
  // Iterative matcher with single-star backtracking, the classic glob
  // algorithm adapted to SQL's '%' / '_' wildcards.
  const char* star_p = nullptr;
  const char* star_v = nullptr;
  while (v < vend) {
    if (p < pend && (*p == '_' || *p == *v)) {
      p++;
      v++;
    } else if (p < pend && *p == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != nullptr) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pend && *p == '%') p++;
  return p == pend;
}

}  // namespace

bool SqlLikeMatch(std::string_view value, std::string_view pattern) {
  return LikeMatchImpl(value.data(), value.data() + value.size(),
                       pattern.data(), pattern.data() + pattern.size());
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    unit++;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  return buf;
}

}  // namespace photon
