#ifndef PHOTON_COMMON_UNICODE_H_
#define PHOTON_COMMON_UNICODE_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace photon {

/// Minimal UTF-8 / Unicode support standing in for the ICU library the paper
/// uses on its generic (non-ASCII-specialized) string paths. The case
/// mapping table covers ASCII, Latin-1 Supplement, Latin Extended-A, Greek,
/// and Cyrillic — enough for the workloads the engine is exercised with.

/// Decodes one UTF-8 codepoint starting at `s` (length `len` remaining).
/// Returns the number of bytes consumed (1..4) and stores the codepoint, or
/// returns 0 on invalid input.
int Utf8Decode(const char* s, int64_t len, uint32_t* codepoint);

/// Encodes `codepoint` into `out` (room for 4 bytes); returns bytes written.
int Utf8Encode(uint32_t codepoint, char* out);

/// Uppercase mapping for a single codepoint (identity when unmapped).
uint32_t UnicodeToUpper(uint32_t codepoint);
/// Lowercase mapping for a single codepoint (identity when unmapped).
uint32_t UnicodeToLower(uint32_t codepoint);

/// Uppercases a UTF-8 string codepoint-by-codepoint via the mapping table.
/// This is the deliberately generic "ICU-style" path benchmarked as the
/// non-adaptive baseline in Figure 6. Invalid bytes are copied through.
std::string Utf8ToUpper(std::string_view s);
std::string Utf8ToLower(std::string_view s);

/// Number of codepoints in a UTF-8 string (invalid bytes count as 1 each).
int64_t Utf8Length(std::string_view s);

/// Byte offset of the `n`-th codepoint (clamped to the string length).
int64_t Utf8OffsetOfCodepoint(std::string_view s, int64_t n);

}  // namespace photon

#endif  // PHOTON_COMMON_UNICODE_H_
