#ifndef PHOTON_COMMON_TIME_UTIL_H_
#define PHOTON_COMMON_TIME_UTIL_H_

#include <cstdint>
#include <string>

namespace photon {

/// Civil-date helpers for the Date32 (days since 1970-01-01) and Timestamp
/// (microseconds since epoch, UTC) types. The engine evaluates all temporal
/// expressions in UTC; both engines (Photon and the baseline) share this
/// code so their semantics cannot diverge (§5.6 of the paper discusses the
/// hazards of mismatched time libraries).

struct CivilDate {
  int32_t year;
  int32_t month;  // 1..12
  int32_t day;    // 1..31
};

/// Days since epoch -> civil date (proleptic Gregorian).
CivilDate DaysToCivil(int32_t days_since_epoch);

/// Civil date -> days since epoch.
int32_t CivilToDays(int32_t year, int32_t month, int32_t day);

/// Parses "YYYY-MM-DD"; returns false on malformed input.
bool ParseDate(const std::string& s, int32_t* days_out);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string FormatDate(int32_t days_since_epoch);

/// Extractors used by SQL EXTRACT / year() / month() etc.
int32_t ExtractYear(int32_t days_since_epoch);
int32_t ExtractMonth(int32_t days_since_epoch);
int32_t ExtractDay(int32_t days_since_epoch);

/// Adds n months, clamping the day-of-month (SQL add_months semantics).
int32_t AddMonths(int32_t days_since_epoch, int32_t months);

constexpr int64_t kMicrosPerDay = 86400LL * 1000 * 1000;

}  // namespace photon

#endif  // PHOTON_COMMON_TIME_UTIL_H_
