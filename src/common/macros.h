#ifndef PHOTON_COMMON_MACROS_H_
#define PHOTON_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Restrict-qualified pointer, used on kernel inputs to aid auto-vectorization
// (see §4.2 of the Photon paper).
#define PHOTON_RESTRICT __restrict__

#define PHOTON_ALWAYS_INLINE inline __attribute__((always_inline))
#define PHOTON_NOINLINE __attribute__((noinline))

#define PHOTON_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define PHOTON_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))

// Fatal invariant check, enabled in all build types. Engine-internal
// invariants use this; user-visible errors flow through Status instead.
#define PHOTON_CHECK(cond)                                                  \
  do {                                                                      \
    if (PHOTON_PREDICT_FALSE(!(cond))) {                                    \
      ::std::fprintf(stderr, "PHOTON_CHECK failed at %s:%d: %s\n",          \
                     __FILE__, __LINE__, #cond);                            \
      ::std::abort();                                                       \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define PHOTON_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define PHOTON_DCHECK(cond) PHOTON_CHECK(cond)
#endif

// Propagates a non-OK Status out of the current function.
#define PHOTON_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::photon::Status _st = (expr);                 \
    if (PHOTON_PREDICT_FALSE(!_st.ok())) return _st; \
  } while (0)

#define PHOTON_CONCAT_IMPL(a, b) a##b
#define PHOTON_CONCAT(a, b) PHOTON_CONCAT_IMPL(a, b)

// Evaluates an expression returning Result<T>; on success binds the value to
// `lhs`, otherwise returns the error Status.
#define PHOTON_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto PHOTON_CONCAT(_res_, __LINE__) = (expr);                   \
  if (PHOTON_PREDICT_FALSE(!PHOTON_CONCAT(_res_, __LINE__).ok())) \
    return PHOTON_CONCAT(_res_, __LINE__).status();               \
  lhs = std::move(PHOTON_CONCAT(_res_, __LINE__)).ValueOrDie()

#endif  // PHOTON_COMMON_MACROS_H_
