#ifndef PHOTON_COMMON_BYTE_BUFFER_H_
#define PHOTON_COMMON_BYTE_BUFFER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace photon {

/// Append-only binary writer used by file-format, shuffle, and spill
/// serialization paths.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI32(int32_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }
  void WriteF64(double v) { Append(&v, sizeof(v)); }

  /// Unsigned LEB128 varint.
  void WriteVarU64(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  void WriteString(std::string_view s) {
    WriteVarU64(s.size());
    Append(s.data(), s.size());
  }

  void Append(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  const std::vector<uint8_t>& data() const { return buf_; }
  size_t size() const { return buf_.size(); }

  std::string ToString() const {
    return std::string(reinterpret_cast<const char*>(buf_.data()),
                       buf_.size());
  }

  /// Overwrites 4 bytes at `offset` (for back-patching section lengths).
  void PatchU32(size_t offset, uint32_t v) {
    PHOTON_CHECK(offset + 4 <= buf_.size());
    std::memcpy(buf_.data() + offset, &v, 4);
  }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked binary reader over a borrowed byte span.
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data)), len_(len) {}
  explicit BinaryReader(std::string_view s)
      : BinaryReader(s.data(), s.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return len_ - pos_; }
  void Seek(size_t pos) {
    PHOTON_CHECK(pos <= len_);
    pos_ = pos;
  }

  Status ReadU8(uint8_t* out) { return ReadRaw(out, 1); }
  Status ReadU32(uint32_t* out) { return ReadRaw(out, 4); }
  Status ReadU64(uint64_t* out) { return ReadRaw(out, 8); }
  Status ReadI32(int32_t* out) { return ReadRaw(out, 4); }
  Status ReadI64(int64_t* out) { return ReadRaw(out, 8); }
  Status ReadF64(double* out) { return ReadRaw(out, 8); }

  Status ReadVarU64(uint64_t* out) {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= len_) return Status::IoError("varint truncated");
      uint8_t b = data_[pos_++];
      v |= static_cast<uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) break;
      shift += 7;
      if (shift >= 64) return Status::IoError("varint overflow");
    }
    *out = v;
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    uint64_t n;
    PHOTON_RETURN_NOT_OK(ReadVarU64(&n));
    if (n > remaining()) return Status::IoError("string truncated");
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  /// Returns a borrowed view of the next `len` bytes and advances.
  Status ReadSpan(size_t len, const uint8_t** out) {
    if (len > remaining()) return Status::IoError("span truncated");
    *out = data_ + pos_;
    pos_ += len;
    return Status::OK();
  }

  Status ReadRaw(void* out, size_t len) {
    if (len > remaining()) return Status::IoError("read past end of buffer");
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace photon

#endif  // PHOTON_COMMON_BYTE_BUFFER_H_
