#ifndef PHOTON_COMMON_LOGGING_H_
#define PHOTON_COMMON_LOGGING_H_

#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace photon {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal thread-safe logger writing to stderr. The engine logs sparingly;
/// per-operator runtime metrics flow through the metrics system instead.
class Logger {
 public:
  static Logger& Instance() {
    static Logger logger;
    return logger;
  }

  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  void Log(LogLevel level, const std::string& msg) {
    if (static_cast<int>(level) < static_cast<int>(min_level_)) return;
    static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    std::lock_guard<std::mutex> lock(mu_);
    std::fprintf(stderr, "[photon %s] %s\n",
                 kNames[static_cast<int>(level)], msg.c_str());
  }

 private:
  Logger() = default;
  LogLevel min_level_ = LogLevel::kWarn;
  std::mutex mu_;
};

namespace internal_logging {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Instance().Log(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace photon

#define PHOTON_LOG(level) \
  ::photon::internal_logging::LogMessage(::photon::LogLevel::level)

#endif  // PHOTON_COMMON_LOGGING_H_
