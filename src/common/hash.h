#ifndef PHOTON_COMMON_HASH_H_
#define PHOTON_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/macros.h"

namespace photon {

/// Hashing primitives used by the vectorized hash table, shuffle
/// partitioning, and dictionary encoding. Scalar fixed-width hashing uses a
/// finalizer-strength multiply-xor mix so a batch hash loop auto-vectorizes.

PHOTON_ALWAYS_INLINE uint64_t HashMix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

PHOTON_ALWAYS_INLINE uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // boost::hash_combine-style mixing on 64 bits.
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4));
}

/// xxhash64-inspired byte-string hash (not the exact algorithm; we only need
/// speed and quality, not cross-system compatibility).
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

}  // namespace photon

#endif  // PHOTON_COMMON_HASH_H_
