#include <cmath>
#include <cstdio>
#include <limits>

#include "common/time_util.h"
#include "expr/expr.h"
#include "expr/kernels.h"

namespace photon {
namespace {

// Saturating float -> integer conversion with Java semantics (NaN -> 0,
// out-of-range clamps). §5.6 of the paper calls out Java/C++ divergence on
// exactly this cast; both engines here share this one implementation so
// they cannot disagree.
template <typename T>
T SaturatingFromDouble(double v) {
  if (std::isnan(v)) return 0;
  if (v >= static_cast<double>(std::numeric_limits<T>::max())) {
    return std::numeric_limits<T>::max();
  }
  if (v <= static_cast<double>(std::numeric_limits<T>::min())) {
    return std::numeric_limits<T>::min();
  }
  return static_cast<T>(v);
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Scalar cast shared by both engines; NULL on failure (Spark non-ANSI).
Result<Value> CastValue(const Value& v, const DataType& from,
                        const DataType& to) {
  if (v.is_null()) return Value::Null();
  if (from == to) return v;

  switch (to.id()) {
    case TypeId::kInt32: {
      switch (from.id()) {
        case TypeId::kInt64:
          return Value::Int32(static_cast<int32_t>(v.i64()));
        case TypeId::kFloat64:
          return Value::Int32(SaturatingFromDouble<int32_t>(v.f64()));
        case TypeId::kBoolean:
          return Value::Int32(v.boolean() ? 1 : 0);
        case TypeId::kString: {
          try {
            size_t pos;
            long long r = std::stoll(v.str(), &pos);
            if (pos != v.str().size()) return Value::Null();
            if (r > INT32_MAX || r < INT32_MIN) return Value::Null();
            return Value::Int32(static_cast<int32_t>(r));
          } catch (...) {
            return Value::Null();
          }
        }
        case TypeId::kDecimal128: {
          Decimal128 d;
          if (!v.decimal().Rescale(from.scale(), 0, &d)) return Value::Null();
          return Value::Int32(static_cast<int32_t>(d.value()));
        }
        default:
          return Status::NotImplemented("cast to int32 from " +
                                        from.ToString());
      }
    }
    case TypeId::kInt64: {
      switch (from.id()) {
        case TypeId::kInt32:
          return Value::Int64(v.i32());
        case TypeId::kFloat64:
          return Value::Int64(SaturatingFromDouble<int64_t>(v.f64()));
        case TypeId::kBoolean:
          return Value::Int64(v.boolean() ? 1 : 0);
        case TypeId::kString: {
          try {
            size_t pos;
            long long r = std::stoll(v.str(), &pos);
            if (pos != v.str().size()) return Value::Null();
            return Value::Int64(r);
          } catch (...) {
            return Value::Null();
          }
        }
        case TypeId::kDecimal128: {
          Decimal128 d;
          if (!v.decimal().Rescale(from.scale(), 0, &d)) return Value::Null();
          return Value::Int64(static_cast<int64_t>(d.value()));
        }
        default:
          return Status::NotImplemented("cast to int64 from " +
                                        from.ToString());
      }
    }
    case TypeId::kFloat64: {
      switch (from.id()) {
        case TypeId::kInt32:
          return Value::Float64(v.i32());
        case TypeId::kInt64:
          return Value::Float64(static_cast<double>(v.i64()));
        case TypeId::kBoolean:
          return Value::Float64(v.boolean() ? 1.0 : 0.0);
        case TypeId::kString: {
          try {
            size_t pos;
            double r = std::stod(v.str(), &pos);
            if (pos != v.str().size()) return Value::Null();
            return Value::Float64(r);
          } catch (...) {
            return Value::Null();
          }
        }
        case TypeId::kDecimal128:
          return Value::Float64(v.decimal().ToDouble(from.scale()));
        default:
          return Status::NotImplemented("cast to float64 from " +
                                        from.ToString());
      }
    }
    case TypeId::kDecimal128: {
      switch (from.id()) {
        case TypeId::kInt32: {
          Decimal128 d = Decimal128::FromInt64(v.i32());
          Decimal128 out;
          if (!d.Rescale(0, to.scale(), &out)) return Value::Null();
          return Value::Decimal(out);
        }
        case TypeId::kInt64: {
          Decimal128 d = Decimal128::FromInt64(v.i64());
          Decimal128 out;
          if (!d.Rescale(0, to.scale(), &out)) return Value::Null();
          return Value::Decimal(out);
        }
        case TypeId::kDecimal128: {
          Decimal128 out;
          if (!v.decimal().Rescale(from.scale(), to.scale(), &out)) {
            return Value::Null();
          }
          if (out.Precision() > to.precision()) return Value::Null();
          return Value::Decimal(out);
        }
        case TypeId::kString: {
          Decimal128 out;
          if (!Decimal128::FromString(v.str(), to.scale(), &out)) {
            return Value::Null();
          }
          return Value::Decimal(out);
        }
        case TypeId::kFloat64: {
          double scaled = v.f64();
          for (int i = 0; i < to.scale(); i++) scaled *= 10.0;
          if (std::isnan(scaled) || std::fabs(scaled) > 1e38) {
            return Value::Null();
          }
          return Value::Decimal(
              Decimal128(static_cast<int128_t>(std::llround(scaled))));
        }
        default:
          return Status::NotImplemented("cast to decimal from " +
                                        from.ToString());
      }
    }
    case TypeId::kString: {
      switch (from.id()) {
        case TypeId::kInt32:
          return Value::String(std::to_string(v.i32()));
        case TypeId::kInt64:
          return Value::String(std::to_string(v.i64()));
        case TypeId::kFloat64:
          return Value::String(FormatDouble(v.f64()));
        case TypeId::kBoolean:
          return Value::String(v.boolean() ? "true" : "false");
        case TypeId::kDate32:
          return Value::String(FormatDate(v.i32()));
        case TypeId::kDecimal128:
          return Value::String(v.decimal().ToString(from.scale()));
        default:
          return Status::NotImplemented("cast to string from " +
                                        from.ToString());
      }
    }
    case TypeId::kDate32: {
      if (from.id() == TypeId::kString) {
        int32_t days;
        if (!ParseDate(v.str(), &days)) return Value::Null();
        return Value::Date32(days);
      }
      return Status::NotImplemented("cast to date from " + from.ToString());
    }
    case TypeId::kBoolean: {
      switch (from.id()) {
        case TypeId::kInt32:
          return Value::Boolean(v.i32() != 0);
        case TypeId::kInt64:
          return Value::Boolean(v.i64() != 0);
        case TypeId::kString: {
          if (v.str() == "true") return Value::Boolean(true);
          if (v.str() == "false") return Value::Boolean(false);
          return Value::Null();
        }
        default:
          return Status::NotImplemented("cast to bool from " +
                                        from.ToString());
      }
    }
    default:
      return Status::NotImplemented("cast to " + to.ToString());
  }
}

}  // namespace

CastExpr::CastExpr(ExprPtr child, DataType to)
    : Expr(to), child_(std::move(child)) {}

Result<ColumnVector*> CastExpr::Evaluate(ColumnBatch* batch,
                                         EvalContext* ctx) const {
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * in, child_->Evaluate(batch, ctx));
  ColumnVector* out = ctx->NewVector(type(), batch->capacity());
  const DataType& from = child_->type();
  const DataType& to = type();
  int n = batch->num_active();
  const int32_t* pos = batch->pos_list();
  bool all = batch->all_active();
  bool has_nulls = in->ComputeHasNulls(pos, n, all);

  // Vectorized fast paths for the numerically hot casts.
  auto fast = [&]<typename From, typename To>() {
    DispatchBatchShape(has_nulls, all, [&](auto nulls_c, auto active_c) {
      constexpr bool kHasNulls = decltype(nulls_c)::value;
      constexpr bool kAllActive = decltype(active_c)::value;
      const From* PHOTON_RESTRICT iv = in->data<From>();
      const uint8_t* PHOTON_RESTRICT inl = in->nulls();
      To* PHOTON_RESTRICT ov = out->data<To>();
      uint8_t* PHOTON_RESTRICT on = out->nulls();
      for (int i = 0; i < n; i++) {
        int row = kAllActive ? i : pos[i];
        if constexpr (kHasNulls) {
          if (inl[row]) {
            on[row] = 1;
            continue;
          }
        }
        ov[row] = static_cast<To>(iv[row]);
      }
    });
  };

  if (from.id() == TypeId::kInt32 && to.id() == TypeId::kInt64) {
    fast.operator()<int32_t, int64_t>();
    return out;
  }
  if (from.id() == TypeId::kInt32 && to.id() == TypeId::kFloat64) {
    fast.operator()<int32_t, double>();
    return out;
  }
  if (from.id() == TypeId::kInt64 && to.id() == TypeId::kFloat64) {
    fast.operator()<int64_t, double>();
    return out;
  }
  if (from.id() == TypeId::kInt64 && to.id() == TypeId::kInt32) {
    fast.operator()<int64_t, int32_t>();
    return out;
  }
  if ((from.id() == TypeId::kInt32 || from.id() == TypeId::kInt64) &&
      to.is_decimal()) {
    // int -> decimal: widen then shift to target scale.
    int128_t mult = Decimal128::PowerOfTen(to.scale());
    DispatchBatchShape(has_nulls, all, [&](auto nulls_c, auto active_c) {
      constexpr bool kHasNulls = decltype(nulls_c)::value;
      constexpr bool kAllActive = decltype(active_c)::value;
      const uint8_t* PHOTON_RESTRICT inl = in->nulls();
      int128_t* PHOTON_RESTRICT ov = out->data<int128_t>();
      uint8_t* PHOTON_RESTRICT on = out->nulls();
      for (int i = 0; i < n; i++) {
        int row = kAllActive ? i : pos[i];
        if constexpr (kHasNulls) {
          if (inl[row]) {
            on[row] = 1;
            continue;
          }
        }
        int64_t v = from.id() == TypeId::kInt32
                        ? in->data<int32_t>()[row]
                        : in->data<int64_t>()[row];
        ov[row] = static_cast<int128_t>(v) * mult;
      }
    });
    return out;
  }
  if (from.is_decimal() && to.id() == TypeId::kFloat64) {
    // Must round identically to Decimal128::ToDouble (the row path).
    double divisor =
        static_cast<double>(Decimal128::PowerOfTen(from.scale()));
    const int128_t* iv = in->data<int128_t>();
    double* ov = out->data<double>();
    uint8_t* on = out->nulls();
    const uint8_t* inl = in->nulls();
    for (int i = 0; i < n; i++) {
      int row = batch->ActiveRow(i);
      if (inl[row]) {
        on[row] = 1;
        continue;
      }
      ov[row] = static_cast<double>(iv[row]) / divisor;
    }
    return out;
  }

  // Generic (boxed) path for everything else; cold in practice.
  for (int i = 0; i < n; i++) {
    int row = batch->ActiveRow(i);
    PHOTON_ASSIGN_OR_RETURN(Value v,
                            CastValue(in->GetValue(row), from, to));
    out->SetValue(row, v);
  }
  return out;
}

Result<Value> CastExpr::EvaluateRow(const std::vector<Value>& row) const {
  PHOTON_ASSIGN_OR_RETURN(Value v, child_->EvaluateRow(row));
  return CastValue(v, child_->type(), type());
}

std::string CastExpr::ToString() const {
  return "CAST(" + child_->ToString() + " AS " + type().ToString() + ")";
}

}  // namespace photon
