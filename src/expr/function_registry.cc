#include "expr/function_registry.h"

#include "expr/expr.h"

namespace photon {

FunctionRegistry& FunctionRegistry::Instance() {
  static FunctionRegistry* registry = new FunctionRegistry();
  return *registry;
}

FunctionRegistry::FunctionRegistry() {
  internal_registry::RegisterStringFunctions(this);
  internal_registry::RegisterStringFunctions2(this);
  internal_registry::RegisterMathFunctions(this);
  internal_registry::RegisterDateTimeFunctions(this);
  internal_registry::RegisterMiscFunctions(this);
}

void FunctionRegistry::Register(const std::string& name, FunctionImpl impl) {
  functions_[name] = std::move(impl);
}

const FunctionImpl* FunctionRegistry::Lookup(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::FunctionNames() const {
  std::vector<std::string> out;
  out.reserve(functions_.size());
  for (const auto& [name, impl] : functions_) out.push_back(name);
  return out;
}

// ---------------------------------------------------------------------------
// CallExpr
// ---------------------------------------------------------------------------

CallExpr::CallExpr(std::string name, std::vector<ExprPtr> args,
                   DataType result)
    : Expr(result), name_(std::move(name)), args_(std::move(args)) {
  PHOTON_CHECK(FunctionRegistry::Instance().IsSupported(name_));
}

Result<ColumnVector*> CallExpr::Evaluate(ColumnBatch* batch,
                                         EvalContext* ctx) const {
  const FunctionImpl* fn = FunctionRegistry::Instance().Lookup(name_);
  std::vector<const ColumnVector*> arg_vecs;
  arg_vecs.reserve(args_.size());
  for (const ExprPtr& arg : args_) {
    PHOTON_ASSIGN_OR_RETURN(ColumnVector * v, arg->Evaluate(batch, ctx));
    arg_vecs.push_back(v);
  }
  ColumnVector* out = ctx->NewVector(type(), batch->capacity());
  PHOTON_RETURN_NOT_OK(fn->eval_batch(arg_vecs, batch, out));
  return out;
}

Result<Value> CallExpr::EvaluateRow(const std::vector<Value>& row) const {
  const FunctionImpl* fn = FunctionRegistry::Instance().Lookup(name_);
  std::vector<Value> arg_vals;
  std::vector<DataType> arg_types;
  arg_vals.reserve(args_.size());
  for (const ExprPtr& arg : args_) {
    PHOTON_ASSIGN_OR_RETURN(Value v, arg->EvaluateRow(row));
    arg_vals.push_back(std::move(v));
    arg_types.push_back(arg->type());
  }
  return fn->eval_row(arg_vals, arg_types, type());
}

std::string CallExpr::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); i++) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  return out + ")";
}

}  // namespace photon
