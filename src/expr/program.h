#ifndef PHOTON_EXPR_PROGRAM_H_
#define PHOTON_EXPR_PROGRAM_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace photon {

/// The fused interpreter tier (DESIGN.md §12): an expression tree (or a
/// forest sharing subexpressions) flattened into a postfix program of
/// register-addressed instructions. One ProgramState::Run pass walks the
/// instruction list over the batch's single position list; every
/// intermediate lands in a register slot backed by the EvalContext scratch
/// pool, so a filter→project chain evaluates with no per-operator batch
/// hand-off and no tree-walking dispatch between nodes.
///
/// Execution reuses the *same* `Expr::Evaluate` kernels as the interpreted
/// tree: each instruction holds a shallow clone of its original node whose
/// children are register references. Tier parity on overflow/NULL edges is
/// therefore structural, not best-effort — both tiers run byte-identical
/// kernel code, in the same order, on the same operands. The compiled tier
/// overlays selected instructions with template-instantiated steps
/// (fusion.cc) and is validated against the other two by differ mode 6.

/// One instruction. `node` is the original expression node; `args` are the
/// registers holding its children's results (in children() order).
struct ExprInstr {
  enum class Kind : uint8_t {
    kLoadCol,  // materialize an input column reference
    kLoadLit,  // materialize a literal (cached, filled once per capacity)
    kNode,     // re-run the node's Evaluate over register operands
    kTree,     // evaluate the original subtree as-is (CaseWhen, Call, ...)
  };
  Kind kind;
  ExprPtr node;
  std::vector<int> args;
};

/// An immutable compiled program, shared across all tasks executing the
/// same plan. Built once at plan-compile time; per-task mutable state lives
/// in ProgramState.
class ExprProgram {
 public:
  /// A compiled-tier replacement for one instruction: given the batch and
  /// the register file, produce this instruction's result vector.
  using CompiledStepFn = std::function<Result<ColumnVector*>(
      ColumnBatch*, EvalContext*, ColumnVector* const*)>;

  /// Flattens `roots` into one program with common subexpressions
  /// evaluated once (canonical-key CSE) and literal-only subtrees folded
  /// to precomputed literals.
  static ExprProgram Compile(const std::vector<ExprPtr>& roots);

  const std::vector<ExprInstr>& instrs() const { return instrs_; }
  const std::vector<int>& root_regs() const { return root_regs_; }

  /// How many times register `reg` is consumed (as an operand or a root).
  int num_uses(int reg) const { return num_uses_[reg]; }
  bool is_root(int reg) const { return is_root_[reg]; }

  /// Compiled-tier overlay --------------------------------------------------

  void SetCompiledStep(size_t i, CompiledStepFn fn) {
    if (!compiled_steps_[i]) num_compiled_steps_++;
    compiled_steps_[i] = std::move(fn);
  }
  const CompiledStepFn& compiled_step(size_t i) const {
    return compiled_steps_[i];
  }
  /// Marks an instruction whose result is consumed only by a fused
  /// compiled step (e.g. the inner node of a two-op fused kernel): the
  /// compiled tier skips it entirely.
  void MarkSkipWhenCompiled(size_t i) { skip_when_compiled_[i] = 1; }
  bool skip_when_compiled(size_t i) const {
    return skip_when_compiled_[i] != 0;
  }
  int num_compiled_steps() const { return num_compiled_steps_; }

 private:
  friend class ProgramBuilder;

  std::vector<ExprInstr> instrs_;
  std::vector<int> root_regs_;
  std::vector<int> num_uses_;
  std::vector<uint8_t> is_root_;
  std::vector<CompiledStepFn> compiled_steps_;
  std::vector<uint8_t> skip_when_compiled_;
  int num_compiled_steps_ = 0;
};

/// Per-task execution state for one ExprProgram: the register file, the
/// per-instruction shallow clones (original node classes over RegRef
/// children), and the cached literal vectors. Not thread-safe; each
/// operator instance owns its own.
class ProgramState {
 public:
  explicit ProgramState(const ExprProgram& program);
  ProgramState(ProgramState&&) = default;

  /// Evaluates every instruction over the batch's active rows. With
  /// `use_compiled`, instructions carrying a compiled step run it instead
  /// of the interpreter (and skip-marked instructions are elided).
  Status Run(ColumnBatch* batch, EvalContext* ctx, bool use_compiled);

  ColumnVector* reg(int r) const { return regs_[r]; }

 private:
  void EnsureLiterals(int capacity);

  const ExprProgram& program_;
  // Sized once in the constructor and never reallocated: the shallow
  // clones hold ColumnVector** slots pointing into it.
  std::vector<ColumnVector*> regs_;
  std::vector<ExprPtr> shallow_;
  std::vector<std::unique_ptr<ColumnVector>> literals_;
  int literal_capacity_ = 0;
};

/// Reconstructs a node of the same class as `node` over new children (in
/// children() order). Returns null for kinds the rewriter does not know.
ExprPtr RebuildWithChildren(const Expr& node, std::vector<ExprPtr> kids);

/// Structural canonical key for CSE and projection dedup. Two expressions
/// with equal keys compute the same value on every row (column identity is
/// by index, never by display name). Expressions of unknown kinds get a
/// pointer-unique key, i.e. they never dedupe.
std::string ExprCanonKey(const Expr& e);

/// Plan-compile-time constant folding: if `e` is a literal-only subtree of
/// known deterministic kinds, evaluate it once and return the resulting
/// LiteralExpr; otherwise (or if evaluation errors) return `e` unchanged.
ExprPtr TryFoldConst(const ExprPtr& e);

/// Deepest nesting the recursive expression machinery (canonicalization,
/// program flattening, tree evaluation) accepts. Comfortably above anything
/// a real query produces, comfortably below stack exhaustion.
inline constexpr int kMaxExprDepth = 256;

/// Rejects expressions nested deeper than `limit` with InvalidArgument.
/// Walks with an explicit stack so the check itself cannot overflow; called
/// once per plan node at compile time so the recursive walkers behind it
/// never see a pathological tree.
Status CheckExpressionDepth(const Expr& e, int limit = kMaxExprDepth);

}  // namespace photon

#endif  // PHOTON_EXPR_PROGRAM_H_
