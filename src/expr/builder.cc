#include "expr/builder.h"

#include <algorithm>

#include "common/time_util.h"
#include "expr/function_registry.h"

namespace photon {
namespace eb {
namespace {

bool IsIntType(const DataType& t) {
  return t.id() == TypeId::kInt32 || t.id() == TypeId::kInt64;
}

DataType IntAsDecimal(const DataType& t) {
  return t.id() == TypeId::kInt32 ? DataType::Decimal(10, 0)
                                  : DataType::Decimal(20, 0);
}

/// Spark-compatible decimal result type derivation.
DataType DecimalResultType(ArithOp op, const DataType& a, const DataType& b) {
  int p1 = a.precision(), s1 = a.scale();
  int p2 = b.precision(), s2 = b.scale();
  int p = 0, s = 0;
  switch (op) {
    case ArithOp::kAdd:
    case ArithOp::kSub:
      s = std::max(s1, s2);
      p = std::max(p1 - s1, p2 - s2) + s + 1;
      break;
    case ArithOp::kMul:
      s = s1 + s2;
      p = p1 + p2 + 1;
      break;
    case ArithOp::kDiv:
      s = std::max(6, s1 + p2 + 1);
      p = p1 - s1 + s2 + s;
      break;
    case ArithOp::kMod:
      s = std::max(s1, s2);
      p = std::min(p1 - s1, p2 - s2) + s;
      break;
  }
  if (p > 38) {
    // Shrink scale to fit, but keep at least 6 fractional digits
    // (Spark's "allow precision loss" mode).
    int overflow = p - 38;
    s = std::max(std::min(s, 6), s - overflow);
    p = 38;
  }
  if (s > p) s = p;
  return DataType::Decimal(p, std::max(0, s));
}

std::pair<ExprPtr, ExprPtr> Promote(ExprPtr a, ExprPtr b) {
  DataType common = CommonType(a->type(), b->type());
  if (a->type() != common) a = Cast(std::move(a), common);
  if (b->type() != common) b = Cast(std::move(b), common);
  return {std::move(a), std::move(b)};
}

ExprPtr MakeArith(ArithOp op, ExprPtr a, ExprPtr b) {
  // Decimal arithmetic keeps distinct operand scales; only the TypeId must
  // match, with ints widened to decimal when mixed.
  if (a->type().is_decimal() || b->type().is_decimal()) {
    if (IsIntType(a->type())) a = Cast(std::move(a), IntAsDecimal(a->type()));
    if (IsIntType(b->type())) b = Cast(std::move(b), IntAsDecimal(b->type()));
    if (a->type().id() == TypeId::kFloat64 ||
        b->type().id() == TypeId::kFloat64) {
      // decimal op double -> double (Spark behavior).
      if (a->type().is_decimal()) a = Cast(std::move(a), DataType::Float64());
      if (b->type().is_decimal()) b = Cast(std::move(b), DataType::Float64());
      return std::make_shared<ArithmeticExpr>(op, a, b, DataType::Float64());
    }
    DataType result = DecimalResultType(op, a->type(), b->type());
    return std::make_shared<ArithmeticExpr>(op, a, b, result);
  }
  auto [pa, pb] = Promote(std::move(a), std::move(b));
  DataType result = pa->type();
  return std::make_shared<ArithmeticExpr>(op, pa, pb, result);
}

ExprPtr MakeCmp(CmpOp op, ExprPtr a, ExprPtr b) {
  if (a->type().id() != b->type().id()) {
    // Convenience: string literal compared against a date column parses as
    // a date (common in benchmark queries).
    auto promote_str_date = [](ExprPtr& x, ExprPtr& y) {
      if (x->type().id() == TypeId::kDate32 && y->type().is_string()) {
        y = Cast(std::move(y), DataType::Date32());
        return true;
      }
      return false;
    };
    if (!promote_str_date(a, b) && !promote_str_date(b, a)) {
      if (a->type().is_decimal() || b->type().is_decimal()) {
        if (IsIntType(a->type())) {
          a = Cast(std::move(a), IntAsDecimal(a->type()));
        }
        if (IsIntType(b->type())) {
          b = Cast(std::move(b), IntAsDecimal(b->type()));
        }
        if (a->type().id() == TypeId::kFloat64) {
          b = Cast(std::move(b), DataType::Float64());
        }
        if (b->type().id() == TypeId::kFloat64) {
          a = Cast(std::move(a), DataType::Float64());
        }
      } else {
        auto [pa, pb] = Promote(std::move(a), std::move(b));
        a = std::move(pa);
        b = std::move(pb);
      }
    }
  }
  return std::make_shared<ComparisonExpr>(op, std::move(a), std::move(b));
}

}  // namespace

ExprPtr Col(int index, DataType type, std::string name) {
  return std::make_shared<ColumnRefExpr>(index, type, std::move(name));
}

ExprPtr Lit(bool v) {
  return std::make_shared<LiteralExpr>(Value::Boolean(v),
                                       DataType::Boolean());
}
ExprPtr Lit(int32_t v) {
  return std::make_shared<LiteralExpr>(Value::Int32(v), DataType::Int32());
}
ExprPtr Lit(int64_t v) {
  return std::make_shared<LiteralExpr>(Value::Int64(v), DataType::Int64());
}
ExprPtr Lit(double v) {
  return std::make_shared<LiteralExpr>(Value::Float64(v),
                                       DataType::Float64());
}
ExprPtr Lit(const char* v) { return Lit(std::string(v)); }
ExprPtr Lit(std::string v) {
  return std::make_shared<LiteralExpr>(Value::String(std::move(v)),
                                       DataType::String());
}
ExprPtr DateLit(const std::string& iso_date) {
  int32_t days = 0;
  PHOTON_CHECK(ParseDate(iso_date, &days));
  return std::make_shared<LiteralExpr>(Value::Date32(days),
                                       DataType::Date32());
}
ExprPtr DecimalLit(const std::string& text, int precision, int scale) {
  Decimal128 d;
  PHOTON_CHECK(Decimal128::FromString(text, scale, &d));
  return std::make_shared<LiteralExpr>(Value::Decimal(d),
                                       DataType::Decimal(precision, scale));
}
ExprPtr NullLit(DataType type) {
  return std::make_shared<LiteralExpr>(Value::Null(), type);
}

DataType CommonType(const DataType& a, const DataType& b) {
  if (a == b) return a;
  PHOTON_CHECK(a.id() != TypeId::kString || b.id() != TypeId::kString);
  auto rank = [](const DataType& t) {
    switch (t.id()) {
      case TypeId::kInt32:
        return 1;
      case TypeId::kInt64:
        return 2;
      case TypeId::kFloat64:
        return 3;
      default:
        return -1;
    }
  };
  int ra = rank(a), rb = rank(b);
  PHOTON_CHECK(ra > 0 && rb > 0);
  return ra >= rb ? a : b;
}

ExprPtr Cast(ExprPtr e, DataType to) {
  if (e->type() == to) return e;
  return std::make_shared<CastExpr>(std::move(e), to);
}

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return MakeArith(ArithOp::kAdd, std::move(a), std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return MakeArith(ArithOp::kSub, std::move(a), std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return MakeArith(ArithOp::kMul, std::move(a), std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return MakeArith(ArithOp::kDiv, std::move(a), std::move(b));
}
ExprPtr Mod(ExprPtr a, ExprPtr b) {
  return MakeArith(ArithOp::kMod, std::move(a), std::move(b));
}

ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return MakeCmp(CmpOp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return MakeCmp(CmpOp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return MakeCmp(CmpOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return MakeCmp(CmpOp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return MakeCmp(CmpOp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return MakeCmp(CmpOp::kGe, std::move(a), std::move(b));
}

ExprPtr And(ExprPtr a, ExprPtr b) {
  return std::make_shared<BooleanExpr>(BoolOp::kAnd, std::move(a),
                                       std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return std::make_shared<BooleanExpr>(BoolOp::kOr, std::move(a),
                                       std::move(b));
}
ExprPtr Not(ExprPtr a) { return std::make_shared<NotExpr>(std::move(a)); }
ExprPtr IsNull(ExprPtr a) {
  return std::make_shared<IsNullExpr>(std::move(a), false);
}
ExprPtr IsNotNull(ExprPtr a) {
  return std::make_shared<IsNullExpr>(std::move(a), true);
}

ExprPtr Between(ExprPtr v, ExprPtr lo, ExprPtr hi) {
  // Align operand types (and decimal scales) so the fused kernel can
  // compare raw values.
  if (v->type().is_decimal() || lo->type().is_decimal() ||
      hi->type().is_decimal()) {
    int scale = 0, precision = 38;
    for (const ExprPtr& e : {v, lo, hi}) {
      if (e->type().is_decimal()) scale = std::max(scale, e->type().scale());
    }
    DataType target = DataType::Decimal(precision, scale);
    v = Cast(std::move(v), target);
    lo = Cast(std::move(lo), target);
    hi = Cast(std::move(hi), target);
  } else if (v->type().id() == TypeId::kDate32) {
    if (lo->type().is_string()) lo = Cast(std::move(lo), DataType::Date32());
    if (hi->type().is_string()) hi = Cast(std::move(hi), DataType::Date32());
  } else if (!v->type().is_string()) {
    DataType common = CommonType(CommonType(v->type(), lo->type()),
                                 hi->type());
    v = Cast(std::move(v), common);
    lo = Cast(std::move(lo), common);
    hi = Cast(std::move(hi), common);
  }
  return std::make_shared<BetweenExpr>(std::move(v), std::move(lo),
                                       std::move(hi));
}

ExprPtr In(ExprPtr v, std::vector<Value> list) {
  return std::make_shared<InListExpr>(std::move(v), std::move(list));
}

ExprPtr CaseWhen(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                 ExprPtr else_expr) {
  PHOTON_CHECK(!branches.empty());
  DataType result = branches[0].second->type();
  return std::make_shared<CaseWhenExpr>(std::move(branches),
                                        std::move(else_expr), result);
}

ExprPtr If(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr) {
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  branches.emplace_back(std::move(cond), std::move(then_expr));
  return CaseWhen(std::move(branches), std::move(else_expr));
}

ExprPtr Call(const std::string& name, std::vector<ExprPtr> args) {
  const FunctionImpl* fn = FunctionRegistry::Instance().Lookup(name);
  PHOTON_CHECK(fn != nullptr);
  std::vector<DataType> arg_types;
  arg_types.reserve(args.size());
  for (const ExprPtr& a : args) arg_types.push_back(a->type());
  Result<DataType> result = fn->bind(arg_types);
  PHOTON_CHECK(result.ok());
  return std::make_shared<CallExpr>(name, std::move(args),
                                    *std::move(result));
}

ExprPtr Like(ExprPtr value, const std::string& pattern) {
  return Call("like", {std::move(value), Lit(pattern)});
}

}  // namespace eb
}  // namespace photon
