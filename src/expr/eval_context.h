#ifndef PHOTON_EXPR_EVAL_CONTEXT_H_
#define PHOTON_EXPR_EVAL_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vector/column_vector.h"

namespace photon {

/// Which expression-execution tier filter→project chains run on.
/// `kAdaptive` is the production default: start on the fused interpreter,
/// and use per-batch timing feedback to flip between it and the compiled
/// kernels where the plan has them. The forced modes exist for the
/// differential fuzzer (every tier must agree bit-for-bit) and for
/// benchmarking tiers against each other; `kTreeOnly` disables fusion
/// entirely and is byte-identical to the pre-fusion engine.
enum class ExprPolicy : uint8_t {
  kAdaptive,
  kTreeOnly,
  kFusedOnly,
  kCompiledOnly,
};

/// Per-task expression evaluation context. Owns the scratch vectors kernels
/// write into and recycles them across batches (§4.5): because the operator
/// tree is fixed, each input batch needs the same set of vector
/// allocations, so after the first batch every NewVector call is a cache
/// hit.
class EvalContext {
 public:
  EvalContext() = default;
  EvalContext(const EvalContext&) = delete;
  EvalContext& operator=(const EvalContext&) = delete;

  /// Returns a scratch vector valid until the next ResetPerBatch call.
  ColumnVector* NewVector(const DataType& type, int capacity) {
    uint64_t key = VectorKey(type, capacity);
    auto it = free_lists_.find(key);
    if (it != free_lists_.end() && !it->second.empty()) {
      std::unique_ptr<ColumnVector> vec = std::move(it->second.back());
      it->second.pop_back();
      vec->ResetMetadata();
      if (vec->type().is_var_len()) vec->var_pool()->Reset();
      pool_hits_++;
      in_use_.emplace_back(key, std::move(vec));
      return in_use_.back().second.get();
    }
    pool_misses_++;
    in_use_.emplace_back(key,
                         std::make_unique<ColumnVector>(type, capacity));
    // Scratch vectors start all-valid; kernels set nulls where needed.
    in_use_.back().second->nulls();  // ensure allocated
    return in_use_.back().second.get();
  }

  /// Recycles all scratch vectors handed out since the last reset. Any
  /// ColumnVector* previously returned is invalidated.
  void ResetPerBatch() {
    for (auto& [key, vec] : in_use_) {
      // Null bytes must be clean for the next user: kernels only write
      // nulls at active rows, so stale 1s at other rows would leak.
      std::memset(vec->nulls(), 0, vec->capacity());
      free_lists_[key].push_back(std::move(vec));
    }
    in_use_.clear();
  }

  int64_t pool_hits() const { return pool_hits_; }
  int64_t pool_misses() const { return pool_misses_; }

 private:
  static uint64_t VectorKey(const DataType& type, int capacity) {
    return (static_cast<uint64_t>(type.id()) << 56) |
           (static_cast<uint64_t>(type.precision() & 0xFF) << 48) |
           (static_cast<uint64_t>(type.scale() & 0xFF) << 40) |
           static_cast<uint64_t>(static_cast<uint32_t>(capacity));
  }

  std::unordered_map<uint64_t, std::vector<std::unique_ptr<ColumnVector>>>
      free_lists_;
  std::vector<std::pair<uint64_t, std::unique_ptr<ColumnVector>>> in_use_;
  int64_t pool_hits_ = 0;
  int64_t pool_misses_ = 0;
};

}  // namespace photon

#endif  // PHOTON_EXPR_EVAL_CONTEXT_H_
