#include "common/time_util.h"
#include "expr/function_registry.h"
#include "expr/kernels.h"

namespace photon {
namespace internal_registry {
namespace {

/// Registers a date32 -> int32 extractor with the standard adaptive kernel.
void RegisterDateExtractor(FunctionRegistry* registry,
                           const std::string& name, int32_t (*fn)(int32_t)) {
  registry->Register(
      name,
      FunctionImpl{
          [name](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 1 || args[0].id() != TypeId::kDate32) {
              return Status::InvalidArgument(name + "(date)");
            }
            return DataType::Int32();
          },
          [fn](const std::vector<const ColumnVector*>& args,
               ColumnBatch* batch, ColumnVector* out) {
            int n = batch->num_active();
            const int32_t* pos = batch->pos_list();
            bool all = batch->all_active();
            bool has_nulls = const_cast<ColumnVector*>(args[0])
                                 ->ComputeHasNulls(pos, n, all);
            DispatchBatchShape(
                has_nulls, all, [&](auto nulls_c, auto active_c) {
                  constexpr bool kHasNulls = decltype(nulls_c)::value;
                  constexpr bool kAllActive = decltype(active_c)::value;
                  const int32_t* PHOTON_RESTRICT in =
                      args[0]->data<int32_t>();
                  const uint8_t* PHOTON_RESTRICT in_nulls = args[0]->nulls();
                  int32_t* PHOTON_RESTRICT ov = out->data<int32_t>();
                  uint8_t* PHOTON_RESTRICT on = out->nulls();
                  for (int i = 0; i < n; i++) {
                    int row = kAllActive ? i : pos[i];
                    if constexpr (kHasNulls) {
                      if (in_nulls[row]) {
                        on[row] = 1;
                        continue;
                      }
                    }
                    ov[row] = fn(in[row]);
                  }
                });
            return Status::OK();
          },
          [fn](const std::vector<Value>& args, const std::vector<DataType>&,
               const DataType&) -> Result<Value> {
            if (args[0].is_null()) return Value::Null();
            return Value::Int32(fn(args[0].i32()));
          }});
}

/// Registers (date, int) -> date arithmetic.
void RegisterDateShift(FunctionRegistry* registry, const std::string& name,
                       int32_t (*fn)(int32_t, int32_t)) {
  registry->Register(
      name,
      FunctionImpl{
          [name](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 2 || args[0].id() != TypeId::kDate32 ||
                args[1].id() != TypeId::kInt32) {
              return Status::InvalidArgument(name + "(date, int)");
            }
            return DataType::Date32();
          },
          [fn](const std::vector<const ColumnVector*>& args,
               ColumnBatch* batch, ColumnVector* out) {
            int n = batch->num_active();
            const int32_t* a = args[0]->data<int32_t>();
            const int32_t* b = args[1]->data<int32_t>();
            int32_t* ov = out->data<int32_t>();
            uint8_t* on = out->nulls();
            for (int i = 0; i < n; i++) {
              int r = batch->ActiveRow(i);
              if (args[0]->IsNull(r) || args[1]->IsNull(r)) {
                on[r] = 1;
                continue;
              }
              ov[r] = fn(a[r], b[r]);
            }
            return Status::OK();
          },
          [fn](const std::vector<Value>& args, const std::vector<DataType>&,
               const DataType&) -> Result<Value> {
            if (args[0].is_null() || args[1].is_null()) return Value::Null();
            return Value::Date32(fn(args[0].i32(), args[1].i32()));
          }});
}

}  // namespace

void RegisterDateTimeFunctions(FunctionRegistry* registry) {
  RegisterDateExtractor(registry, "year", ExtractYear);
  RegisterDateExtractor(registry, "month", ExtractMonth);
  RegisterDateExtractor(registry, "day", ExtractDay);

  RegisterDateShift(registry, "date_add",
                    [](int32_t d, int32_t n) { return d + n; });
  RegisterDateShift(registry, "date_sub",
                    [](int32_t d, int32_t n) { return d - n; });
  RegisterDateShift(registry, "add_months", AddMonths);

  registry->Register(
      "datediff",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 2 || args[0].id() != TypeId::kDate32 ||
                args[1].id() != TypeId::kDate32) {
              return Status::InvalidArgument("datediff(date, date)");
            }
            return DataType::Int32();
          },
          [](const std::vector<const ColumnVector*>& args, ColumnBatch* batch,
             ColumnVector* out) {
            int n = batch->num_active();
            const int32_t* a = args[0]->data<int32_t>();
            const int32_t* b = args[1]->data<int32_t>();
            int32_t* ov = out->data<int32_t>();
            uint8_t* on = out->nulls();
            for (int i = 0; i < n; i++) {
              int r = batch->ActiveRow(i);
              if (args[0]->IsNull(r) || args[1]->IsNull(r)) {
                on[r] = 1;
                continue;
              }
              ov[r] = a[r] - b[r];
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            if (args[0].is_null() || args[1].is_null()) return Value::Null();
            return Value::Int32(args[0].i32() - args[1].i32());
          }});

  registry->Register(
      "to_date",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 1 || !args[0].is_string()) {
              return Status::InvalidArgument("to_date(string)");
            }
            return DataType::Date32();
          },
          [](const std::vector<const ColumnVector*>& args, ColumnBatch* batch,
             ColumnVector* out) {
            int n = batch->num_active();
            const StringRef* sv = args[0]->data<StringRef>();
            int32_t* ov = out->data<int32_t>();
            uint8_t* on = out->nulls();
            for (int i = 0; i < n; i++) {
              int r = batch->ActiveRow(i);
              if (args[0]->IsNull(r)) {
                on[r] = 1;
                continue;
              }
              int32_t days;
              if (ParseDate(std::string(sv[r].data, sv[r].len), &days)) {
                ov[r] = days;
              } else {
                on[r] = 1;  // malformed -> NULL (Spark non-ANSI)
              }
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            if (args[0].is_null()) return Value::Null();
            int32_t days;
            if (!ParseDate(args[0].str(), &days)) return Value::Null();
            return Value::Date32(days);
          }});

  registry->Register(
      "date_format",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 1 || args[0].id() != TypeId::kDate32) {
              return Status::InvalidArgument("date_format(date)");
            }
            return DataType::String();
          },
          [](const std::vector<const ColumnVector*>& args, ColumnBatch* batch,
             ColumnVector* out) {
            int n = batch->num_active();
            const int32_t* dv = args[0]->data<int32_t>();
            uint8_t* on = out->nulls();
            for (int i = 0; i < n; i++) {
              int r = batch->ActiveRow(i);
              if (args[0]->IsNull(r)) {
                on[r] = 1;
                continue;
              }
              out->SetString(r, FormatDate(dv[r]));
            }
            out->set_all_ascii(TriState::kYes);
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            if (args[0].is_null()) return Value::Null();
            return Value::String(FormatDate(args[0].i32()));
          }});
}

}  // namespace internal_registry
}  // namespace photon
