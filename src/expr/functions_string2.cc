#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/string_util.h"
#include "common/unicode.h"
#include "expr/function_registry.h"

namespace photon {
namespace internal_registry {
namespace {

/// Registers a (string, ...) -> string function given a scalar
/// implementation over string_views; handles NULL propagation and both
/// evaluators. Arguments beyond the first may be int32 or string.
struct ArgSpec {
  bool is_string;
};

template <typename ScalarFn>
void RegisterGeneric(FunctionRegistry* registry, const std::string& name,
                     std::vector<ArgSpec> extra_args, DataType result_type,
                     ScalarFn fn) {
  FunctionImpl impl;
  impl.bind = [name, extra_args,
               result_type](const std::vector<DataType>& args)
      -> Result<DataType> {
    if (args.size() != extra_args.size() + 1 || !args[0].is_string()) {
      return Status::InvalidArgument(name + ": bad arguments");
    }
    for (size_t i = 0; i < extra_args.size(); i++) {
      bool want_string = extra_args[i].is_string;
      if (want_string != args[i + 1].is_string() ||
          (!want_string && args[i + 1].id() != TypeId::kInt32)) {
        return Status::InvalidArgument(name + ": bad argument types");
      }
    }
    return result_type;
  };
  impl.eval_row = [fn](const std::vector<Value>& args,
                       const std::vector<DataType>&,
                       const DataType&) -> Result<Value> {
    for (const Value& v : args) {
      if (v.is_null()) return Value::Null();
    }
    return fn(args);
  };
  impl.eval_batch = [fn](const std::vector<const ColumnVector*>& args,
                         ColumnBatch* batch, ColumnVector* out) -> Status {
    int n = batch->num_active();
    uint8_t* on = out->nulls();
    std::vector<Value> boxed(args.size());
    for (int i = 0; i < n; i++) {
      int row = batch->ActiveRow(i);
      bool any_null = false;
      for (const ColumnVector* a : args) any_null |= a->IsNull(row);
      if (any_null) {
        on[row] = 1;
        continue;
      }
      for (size_t a = 0; a < args.size(); a++) {
        boxed[a] = args[a]->GetValue(row);
      }
      Result<Value> v = fn(boxed);
      PHOTON_RETURN_NOT_OK(v.status());
      out->SetValue(row, *v);
    }
    return Status::OK();
  };
  registry->Register(name, std::move(impl));
}

}  // namespace

/// Second wave of string/misc functions, registered through a generic
/// (boxed) evaluator: breadth over per-function kernels. The hot functions
/// (upper/lower/substr/like/...) keep their dedicated vectorized kernels in
/// functions_string.cc; everything here is long-tail.
void RegisterStringFunctions2(FunctionRegistry* registry) {
  RegisterGeneric(
      registry, "left", {{false}}, DataType::String(),
      [](const std::vector<Value>& a) -> Result<Value> {
        std::string_view s = a[0].str();
        int64_t n = std::max<int64_t>(0, a[1].i32());
        int64_t b = Utf8OffsetOfCodepoint(s, n);
        return Value::String(std::string(s.substr(0, b)));
      });
  RegisterGeneric(
      registry, "right", {{false}}, DataType::String(),
      [](const std::vector<Value>& a) -> Result<Value> {
        std::string_view s = a[0].str();
        int64_t len = Utf8Length(s);
        int64_t n = std::min<int64_t>(len, std::max<int64_t>(0, a[1].i32()));
        int64_t b = Utf8OffsetOfCodepoint(s, len - n);
        return Value::String(std::string(s.substr(b)));
      });
  RegisterGeneric(
      registry, "instr", {{true}}, DataType::Int32(),
      [](const std::vector<Value>& a) -> Result<Value> {
        // 1-based codepoint position of the first occurrence; 0 if absent.
        std::string_view s = a[0].str();
        std::string_view needle = a[1].str();
        size_t pos = s.find(needle);
        if (pos == std::string_view::npos) return Value::Int32(0);
        return Value::Int32(
            static_cast<int32_t>(Utf8Length(s.substr(0, pos))) + 1);
      });
  RegisterGeneric(
      registry, "split_part", {{true}, {false}}, DataType::String(),
      [](const std::vector<Value>& a) -> Result<Value> {
        std::string_view s = a[0].str();
        const std::string& sep = a[1].str();
        int32_t part = a[2].i32();
        if (sep.empty() || part < 1) return Value::String("");
        size_t start = 0;
        for (int32_t k = 1;; k++) {
          size_t end = s.find(sep, start);
          if (k == part) {
            return Value::String(std::string(
                s.substr(start, end == std::string_view::npos
                                    ? std::string_view::npos
                                    : end - start)));
          }
          if (end == std::string_view::npos) return Value::String("");
          start = end + sep.size();
        }
      });
  RegisterGeneric(
      registry, "initcap", {}, DataType::String(),
      [](const std::vector<Value>& a) -> Result<Value> {
        // Word-initial uppercase, rest lowercase (ASCII word model).
        std::string out = Utf8ToLower(a[0].str());
        bool at_word_start = true;
        for (size_t i = 0; i < out.size(); i++) {
          unsigned char c = static_cast<unsigned char>(out[i]);
          if (c < 0x80) {
            if (at_word_start && c >= 'a' && c <= 'z') {
              out[i] = static_cast<char>(c - 32);
            }
            at_word_start = !std::isalnum(c);
          } else {
            at_word_start = false;
          }
        }
        return Value::String(std::move(out));
      });
  RegisterGeneric(
      registry, "translate", {{true}, {true}}, DataType::String(),
      [](const std::vector<Value>& a) -> Result<Value> {
        // Byte-level translate (ASCII semantics, like Spark on ASCII).
        const std::string& from = a[1].str();
        const std::string& to = a[2].str();
        std::string out;
        for (char c : a[0].str()) {
          size_t idx = from.find(c);
          if (idx == std::string::npos) {
            out.push_back(c);
          } else if (idx < to.size()) {
            out.push_back(to[idx]);
          }  // else: dropped
        }
        return Value::String(std::move(out));
      });
  // chr is int -> string; register it directly.
  {
    FunctionImpl impl;
    impl.bind = [](const std::vector<DataType>& args) -> Result<DataType> {
      if (args.size() != 1 || args[0].id() != TypeId::kInt32) {
        return Status::InvalidArgument("chr(int)");
      }
      return DataType::String();
    };
    auto scalar = [](int32_t cp) -> Value {
      if (cp <= 0) return Value::String("");
      char buf[4];
      int n = Utf8Encode(static_cast<uint32_t>(cp) & 0x10FFFF, buf);
      return Value::String(std::string(buf, n));
    };
    impl.eval_row = [scalar](const std::vector<Value>& args,
                             const std::vector<DataType>&,
                             const DataType&) -> Result<Value> {
      if (args[0].is_null()) return Value::Null();
      return scalar(args[0].i32());
    };
    impl.eval_batch = [scalar](const std::vector<const ColumnVector*>& args,
                               ColumnBatch* batch,
                               ColumnVector* out) -> Status {
      int n = batch->num_active();
      uint8_t* on = out->nulls();
      for (int i = 0; i < n; i++) {
        int row = batch->ActiveRow(i);
        if (args[0]->IsNull(row)) {
          on[row] = 1;
          continue;
        }
        out->SetValue(row, scalar(args[0]->data<int32_t>()[row]));
      }
      return Status::OK();
    };
    registry->Register("chr", std::move(impl));
  }
  RegisterGeneric(
      registry, "concat_ws", {{true}, {true}}, DataType::String(),
      [](const std::vector<Value>& a) -> Result<Value> {
        return Value::String(a[1].str() + a[0].str() + a[2].str());
      });
  RegisterGeneric(
      registry, "md5ish", {}, DataType::String(),
      [](const std::vector<Value>& a) -> Result<Value> {
        // Stand-in content hash (not cryptographic): stable hex digest.
        uint64_t h1 = HashBytes(a[0].str().data(), a[0].str().size(), 1);
        uint64_t h2 = HashBytes(a[0].str().data(), a[0].str().size(), 2);
        char buf[33];
        std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                      static_cast<unsigned long long>(h1),
                      static_cast<unsigned long long>(h2));
        return Value::String(buf);
      });
  RegisterGeneric(
      registry, "soundex_len", {}, DataType::Int32(),
      [](const std::vector<Value>& a) -> Result<Value> {
        // Count of ASCII consonants; a cheap phonetic-weight stand-in.
        int32_t n = 0;
        for (char c : a[0].str()) {
          char l = static_cast<char>(std::tolower(
              static_cast<unsigned char>(c)));
          if (l >= 'a' && l <= 'z' && l != 'a' && l != 'e' && l != 'i' &&
              l != 'o' && l != 'u') {
            n++;
          }
        }
        return Value::Int32(n);
      });
}

}  // namespace internal_registry
}  // namespace photon
