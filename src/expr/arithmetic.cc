#include <algorithm>
#include <cmath>

#include "expr/expr.h"
#include "expr/kernels.h"
#include "expr/scalar_ops.h"
#include "types/big_decimal.h"

namespace photon {
namespace {

template <typename T, template <typename> class Op>
void RunBinary(ColumnBatch* batch, const ColumnVector& a,
               const ColumnVector& b, ColumnVector* out, bool has_nulls) {
  int n = batch->num_active();
  const int32_t* pos = batch->pos_list();
  DispatchBatchShape(
      has_nulls, batch->all_active(), [&](auto nulls_c, auto active_c) {
        BinaryKernel<T, T, Op<T>, decltype(nulls_c)::value,
                     decltype(active_c)::value>(
            pos, n, a.data<T>(), a.nulls(), b.data<T>(), b.nulls(),
            out->data<T>(), out->nulls());
      });
}

// Decimal kernels: operand scales may differ; the multipliers are loop
// constants so these stay tight.
struct DecimalScaleInfo {
  int128_t a_mult;
  int128_t b_mult;
  int128_t div_shift_mult;  // for division
};

template <bool kHasNulls, bool kAllRowsActive>
void DecimalAddSubKernel(const int32_t* PHOTON_RESTRICT pos, int n,
                         const int128_t* PHOTON_RESTRICT a,
                         const uint8_t* PHOTON_RESTRICT an,
                         const int128_t* PHOTON_RESTRICT b,
                         const uint8_t* PHOTON_RESTRICT bn,
                         int128_t a_mult, int128_t b_mult, bool subtract,
                         int128_t* PHOTON_RESTRICT out,
                         uint8_t* PHOTON_RESTRICT on) {
  for (int i = 0; i < n; i++) {
    int row = kAllRowsActive ? i : pos[i];
    if constexpr (kHasNulls) {
      if (an[row] | bn[row]) {
        on[row] = 1;
        continue;
      }
    }
    int128_t bv = b[row] * b_mult;
    out[row] = a[row] * a_mult + (subtract ? -bv : bv);
  }
}

template <bool kHasNulls, bool kAllRowsActive>
void DecimalMulKernel(const int32_t* PHOTON_RESTRICT pos, int n,
                      const int128_t* PHOTON_RESTRICT a,
                      const uint8_t* PHOTON_RESTRICT an,
                      const int128_t* PHOTON_RESTRICT b,
                      const uint8_t* PHOTON_RESTRICT bn,
                      int128_t* PHOTON_RESTRICT out,
                      uint8_t* PHOTON_RESTRICT on) {
  for (int i = 0; i < n; i++) {
    int row = kAllRowsActive ? i : pos[i];
    if constexpr (kHasNulls) {
      if (an[row] | bn[row]) {
        on[row] = 1;
        continue;
      }
    }
    out[row] = a[row] * b[row];
  }
}

template <bool kHasNulls, bool kAllRowsActive>
void DecimalDivKernel(const int32_t* PHOTON_RESTRICT pos, int n,
                      const int128_t* PHOTON_RESTRICT a,
                      const uint8_t* PHOTON_RESTRICT an,
                      const int128_t* PHOTON_RESTRICT b,
                      const uint8_t* PHOTON_RESTRICT bn, int128_t shift_mult,
                      int128_t* PHOTON_RESTRICT out,
                      uint8_t* PHOTON_RESTRICT on) {
  for (int i = 0; i < n; i++) {
    int row = kAllRowsActive ? i : pos[i];
    if constexpr (kHasNulls) {
      if (an[row] | bn[row]) {
        on[row] = 1;
        continue;
      }
    }
    if (b[row] == 0) {
      on[row] = 1;
      continue;
    }
    int128_t scaled = a[row] * shift_mult;
    int128_t q = scaled / b[row];
    int128_t r = scaled % b[row];
    int128_t abs_r = r < 0 ? -r : r;
    int128_t abs_d = b[row] < 0 ? -b[row] : b[row];
    if (2 * abs_r >= abs_d) q += ((scaled < 0) != (b[row] < 0)) ? -1 : 1;
    out[row] = q;
  }
}

}  // namespace

bool DecimalArithIsIrregular(ArithOp op, const DataType& left,
                             const DataType& right, const DataType& result) {
  int s1 = left.scale();
  int s2 = right.scale();
  int p1 = left.precision();
  int p2 = right.precision();
  int sr = result.scale();
  return (op == ArithOp::kMul && (sr != s1 + s2 || p1 + p2 + 1 > 38)) ||
         ((op == ArithOp::kAdd || op == ArithOp::kSub) &&
          (sr < std::max(s1, s2) ||
           std::max(p1 - s1, p2 - s2) + std::max(s1, s2) + 1 > 38)) ||
         (op == ArithOp::kDiv &&
          (sr - s1 + s2 < 0 || p1 + (sr - s1 + s2) > 38));
}

ArithmeticExpr::ArithmeticExpr(ArithOp op, ExprPtr left, ExprPtr right,
                               DataType result)
    : Expr(result), op_(op), left_(std::move(left)), right_(std::move(right)) {
  PHOTON_CHECK(left_->type().id() == right_->type().id());
  PHOTON_CHECK(left_->type().id() == result.id());
}

Result<ColumnVector*> ArithmeticExpr::Evaluate(ColumnBatch* batch,
                                               EvalContext* ctx) const {
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * a, left_->Evaluate(batch, ctx));
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * b, right_->Evaluate(batch, ctx));
  ColumnVector* out = ctx->NewVector(type(), batch->capacity());
  int n = batch->num_active();
  const int32_t* pos = batch->pos_list();
  bool all = batch->all_active();
  // Runtime adaptivity (§4.6): discover NULL presence per batch and pick
  // the specialized kernel.
  bool has_nulls = a->ComputeHasNulls(pos, n, all) ||
                   b->ComputeHasNulls(pos, n, all);

  switch (type().id()) {
    case TypeId::kInt32: {
      switch (op_) {
        case ArithOp::kAdd:
          RunBinary<int32_t, AddOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kSub:
          RunBinary<int32_t, SubOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kMul:
          RunBinary<int32_t, MulOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kDiv:
          RunBinary<int32_t, DivOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kMod:
          RunBinary<int32_t, ModOp>(batch, *a, *b, out, has_nulls);
          break;
      }
      break;
    }
    case TypeId::kInt64: {
      switch (op_) {
        case ArithOp::kAdd:
          RunBinary<int64_t, AddOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kSub:
          RunBinary<int64_t, SubOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kMul:
          RunBinary<int64_t, MulOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kDiv:
          RunBinary<int64_t, DivOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kMod:
          RunBinary<int64_t, ModOp>(batch, *a, *b, out, has_nulls);
          break;
      }
      break;
    }
    case TypeId::kFloat64: {
      switch (op_) {
        case ArithOp::kAdd:
          RunBinary<double, AddOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kSub:
          RunBinary<double, SubOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kMul:
          RunBinary<double, MulOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kDiv:
          RunBinary<double, DivOp>(batch, *a, *b, out, has_nulls);
          break;
        case ArithOp::kMod:
          RunBinary<double, ModOp>(batch, *a, *b, out, has_nulls);
          break;
      }
      break;
    }
    case TypeId::kDecimal128: {
      int s1 = left_->type().scale();
      int s2 = right_->type().scale();
      int sr = type().scale();
      // Precision capping (38 digits) can shrink the result scale below
      // the natural one (e.g. mul at s1+s2, add at max(s1,s2)). The fast
      // kernels assume the natural scale; the capped cases must rescale
      // with the same rounding as the row interpreter's BigDecimal path,
      // so route them through it (cold: only plans near 38 digits).
      //
      // Capping also means the result may not fit 38 digits even at the
      // natural scale (e.g. Decimal(38,2) + Decimal(38,2), or a mul whose
      // natural precision exceeded 38 with a small combined scale). The
      // fast kernels would silently wrap the int128; the row interpreter's
      // BigDecimal path returns NULL on overflow. Route every capped case
      // through the checked path so both engines agree: overflow -> NULL
      // (Spark's non-ANSI decimal behavior).
      bool irregular =
          DecimalArithIsIrregular(op_, left_->type(), right_->type(), type());
      if (irregular) {
        int n_rows = batch->num_active();
        const int128_t* av = a->data<int128_t>();
        const int128_t* bv = b->data<int128_t>();
        const uint8_t* an = a->nulls();
        const uint8_t* bn = b->nulls();
        int128_t* ov = out->data<int128_t>();
        uint8_t* on = out->nulls();
        for (int i = 0; i < n_rows; i++) {
          int row = batch->ActiveRow(i);
          if (an[row] | bn[row]) {
            on[row] = 1;
            continue;
          }
          BigDecimal ba = BigDecimal::FromDecimal128(Decimal128(av[row]), s1);
          BigDecimal bb = BigDecimal::FromDecimal128(Decimal128(bv[row]), s2);
          BigDecimal br;
          switch (op_) {
            case ArithOp::kAdd:
              br = ba.Add(bb).SetScale(sr);
              break;
            case ArithOp::kSub:
              br = ba.Subtract(bb).SetScale(sr);
              break;
            case ArithOp::kMul:
              br = ba.Multiply(bb).SetScale(sr);
              break;
            case ArithOp::kDiv:
              if (bb.is_zero()) {
                on[row] = 1;
                continue;
              }
              br = ba.Divide(bb, sr);
              break;
            case ArithOp::kMod:
              PHOTON_CHECK(false);
          }
          Decimal128 result;
          if (!br.ToDecimal128(sr, &result)) {
            on[row] = 1;  // overflow -> NULL, same as the row path
            continue;
          }
          ov[row] = result.value();
        }
        out->set_has_nulls(TriState::kUnknown);
        return out;
      }
      DispatchBatchShape(has_nulls, all, [&](auto nulls_c, auto active_c) {
        constexpr bool kN = decltype(nulls_c)::value;
        constexpr bool kA = decltype(active_c)::value;
        switch (op_) {
          case ArithOp::kAdd:
          case ArithOp::kSub:
            DecimalAddSubKernel<kN, kA>(
                pos, n, a->data<int128_t>(), a->nulls(), b->data<int128_t>(),
                b->nulls(), Decimal128::PowerOfTen(sr - s1),
                Decimal128::PowerOfTen(sr - s2), op_ == ArithOp::kSub,
                out->data<int128_t>(), out->nulls());
            break;
          case ArithOp::kMul:
            // sr == s1 + s2 by construction: the raw product is the result.
            DecimalMulKernel<kN, kA>(pos, n, a->data<int128_t>(), a->nulls(),
                                     b->data<int128_t>(), b->nulls(),
                                     out->data<int128_t>(), out->nulls());
            break;
          case ArithOp::kDiv:
            DecimalDivKernel<kN, kA>(
                pos, n, a->data<int128_t>(), a->nulls(), b->data<int128_t>(),
                b->nulls(), Decimal128::PowerOfTen(sr - s1 + s2),
                out->data<int128_t>(), out->nulls());
            break;
          case ArithOp::kMod:
            PHOTON_CHECK(false);  // decimal mod unsupported
        }
      });
      break;
    }
    default:
      return Status::Internal("arithmetic on unsupported type " +
                              type().ToString());
  }
  out->set_has_nulls(has_nulls ? TriState::kYes : TriState::kUnknown);
  return out;
}

Result<Value> ArithmeticExpr::EvaluateRow(const std::vector<Value>& row) const {
  PHOTON_ASSIGN_OR_RETURN(Value a, left_->EvaluateRow(row));
  PHOTON_ASSIGN_OR_RETURN(Value b, right_->EvaluateRow(row));
  if (a.is_null() || b.is_null()) return Value::Null();

  switch (type().id()) {
    case TypeId::kInt32: {
      int32_t r;
      bool ok = true;
      switch (op_) {
        case ArithOp::kAdd:
          ok = AddOp<int32_t>::Apply(a.i32(), b.i32(), &r);
          break;
        case ArithOp::kSub:
          ok = SubOp<int32_t>::Apply(a.i32(), b.i32(), &r);
          break;
        case ArithOp::kMul:
          ok = MulOp<int32_t>::Apply(a.i32(), b.i32(), &r);
          break;
        case ArithOp::kDiv:
          ok = DivOp<int32_t>::Apply(a.i32(), b.i32(), &r);
          break;
        case ArithOp::kMod:
          ok = ModOp<int32_t>::Apply(a.i32(), b.i32(), &r);
          break;
      }
      return ok ? Value::Int32(r) : Value::Null();
    }
    case TypeId::kInt64: {
      int64_t r;
      bool ok = true;
      switch (op_) {
        case ArithOp::kAdd:
          ok = AddOp<int64_t>::Apply(a.i64(), b.i64(), &r);
          break;
        case ArithOp::kSub:
          ok = SubOp<int64_t>::Apply(a.i64(), b.i64(), &r);
          break;
        case ArithOp::kMul:
          ok = MulOp<int64_t>::Apply(a.i64(), b.i64(), &r);
          break;
        case ArithOp::kDiv:
          ok = DivOp<int64_t>::Apply(a.i64(), b.i64(), &r);
          break;
        case ArithOp::kMod:
          ok = ModOp<int64_t>::Apply(a.i64(), b.i64(), &r);
          break;
      }
      return ok ? Value::Int64(r) : Value::Null();
    }
    case TypeId::kFloat64: {
      double r;
      bool ok = true;
      switch (op_) {
        case ArithOp::kAdd:
          ok = AddOp<double>::Apply(a.f64(), b.f64(), &r);
          break;
        case ArithOp::kSub:
          ok = SubOp<double>::Apply(a.f64(), b.f64(), &r);
          break;
        case ArithOp::kMul:
          ok = MulOp<double>::Apply(a.f64(), b.f64(), &r);
          break;
        case ArithOp::kDiv:
          ok = DivOp<double>::Apply(a.f64(), b.f64(), &r);
          break;
        case ArithOp::kMod:
          ok = ModOp<double>::Apply(a.f64(), b.f64(), &r);
          break;
      }
      return ok ? Value::Float64(r) : Value::Null();
    }
    case TypeId::kDecimal128: {
      int s1 = left_->type().scale();
      int s2 = right_->type().scale();
      int sr = type().scale();
      // The baseline engine mimics the JVM engine's decimal behavior (and
      // cost): precision above 18 digits goes through arbitrary-precision
      // BigDecimal, exactly like Spark falling back from compact Long
      // decimals to java.math.BigDecimal (§6.2's Q1 discussion).
      if (type().precision() > 18) {
        BigDecimal ba = BigDecimal::FromDecimal128(a.decimal(), s1);
        BigDecimal bb = BigDecimal::FromDecimal128(b.decimal(), s2);
        BigDecimal br;
        switch (op_) {
          case ArithOp::kAdd:
            br = ba.Add(bb).SetScale(sr);
            break;
          case ArithOp::kSub:
            br = ba.Subtract(bb).SetScale(sr);
            break;
          case ArithOp::kMul:
            br = ba.Multiply(bb).SetScale(sr);
            break;
          case ArithOp::kDiv:
            if (bb.is_zero()) return Value::Null();
            br = ba.Divide(bb, sr);
            break;
          case ArithOp::kMod:
            return Status::NotImplemented("decimal mod");
        }
        Decimal128 out;
        if (!br.ToDecimal128(sr, &out)) return Value::Null();  // overflow
        return Value::Decimal(out);
      }
      // Low-precision fast path (Spark's compact Long decimal).
      Decimal128 da = a.decimal(), db = b.decimal();
      switch (op_) {
        case ArithOp::kAdd:
        case ArithOp::kSub: {
          int128_t av = da.value() * Decimal128::PowerOfTen(sr - s1);
          int128_t bv = db.value() * Decimal128::PowerOfTen(sr - s2);
          return Value::Decimal(
              Decimal128(op_ == ArithOp::kSub ? av - bv : av + bv));
        }
        case ArithOp::kMul:
          return Value::Decimal(Decimal128(da.value() * db.value()));
        case ArithOp::kDiv: {
          if (db.value() == 0) return Value::Null();
          Decimal128 q;
          Decimal128::Divide(da, db, sr - s1 + s2, &q);
          return Value::Decimal(q);
        }
        case ArithOp::kMod:
          return Status::NotImplemented("decimal mod");
      }
      return Value::Null();
    }
    default:
      return Status::Internal("arithmetic on unsupported type");
  }
}

std::string ArithmeticExpr::ToString() const {
  static const char* kOps[] = {"+", "-", "*", "/", "%"};
  return "(" + left_->ToString() + " " + kOps[static_cast<int>(op_)] + " " +
         right_->ToString() + ")";
}

}  // namespace photon
