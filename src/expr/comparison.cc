#include <algorithm>
#include <cstring>

#include "expr/expr.h"
#include "expr/kernels.h"

namespace photon {
namespace {

template <typename T>
PHOTON_ALWAYS_INLINE int CompareScalar(T a, T b) {
  return a < b ? -1 : (a > b ? 1 : 0);
}

PHOTON_ALWAYS_INLINE int CompareString(const StringRef& a,
                                       const StringRef& b) {
  int min_len = std::min(a.len, b.len);
  int cmp = min_len == 0 ? 0 : std::memcmp(a.data, b.data, min_len);
  if (cmp != 0) return cmp;
  return a.len - b.len;
}

PHOTON_ALWAYS_INLINE bool CmpResult(CmpOp op, int cmp) {
  switch (op) {
    case CmpOp::kEq:
      return cmp == 0;
    case CmpOp::kNe:
      return cmp != 0;
    case CmpOp::kLt:
      return cmp < 0;
    case CmpOp::kLe:
      return cmp <= 0;
    case CmpOp::kGt:
      return cmp > 0;
    case CmpOp::kGe:
      return cmp >= 0;
  }
  return false;
}

// Fixed-width comparison kernel specialized on the operator so the inner
// loop is a single branchless compare.
template <typename T, CmpOp kOp, bool kHasNulls, bool kAllRowsActive>
void CompareKernel(const int32_t* PHOTON_RESTRICT pos, int n,
                   const T* PHOTON_RESTRICT a,
                   const uint8_t* PHOTON_RESTRICT an,
                   const T* PHOTON_RESTRICT b,
                   const uint8_t* PHOTON_RESTRICT bn,
                   uint8_t* PHOTON_RESTRICT out,
                   uint8_t* PHOTON_RESTRICT on) {
  for (int i = 0; i < n; i++) {
    int row = kAllRowsActive ? i : pos[i];
    if constexpr (kHasNulls) {
      if (an[row] | bn[row]) {
        on[row] = 1;
        continue;
      }
    }
    bool r;
    if constexpr (kOp == CmpOp::kEq) {
      r = a[row] == b[row];
    } else if constexpr (kOp == CmpOp::kNe) {
      r = a[row] != b[row];
    } else if constexpr (kOp == CmpOp::kLt) {
      r = a[row] < b[row];
    } else if constexpr (kOp == CmpOp::kLe) {
      r = a[row] <= b[row];
    } else if constexpr (kOp == CmpOp::kGt) {
      r = a[row] > b[row];
    } else {
      r = a[row] >= b[row];
    }
    out[row] = r ? 1 : 0;
  }
}

template <typename T>
void RunCompare(CmpOp op, ColumnBatch* batch, const ColumnVector& a,
                const ColumnVector& b, ColumnVector* out, bool has_nulls) {
  int n = batch->num_active();
  const int32_t* pos = batch->pos_list();
  DispatchBatchShape(
      has_nulls, batch->all_active(), [&](auto nulls_c, auto active_c) {
        constexpr bool kN = decltype(nulls_c)::value;
        constexpr bool kA = decltype(active_c)::value;
        switch (op) {
          case CmpOp::kEq:
            CompareKernel<T, CmpOp::kEq, kN, kA>(pos, n, a.data<T>(),
                                                 a.nulls(), b.data<T>(),
                                                 b.nulls(), out->data<uint8_t>(),
                                                 out->nulls());
            break;
          case CmpOp::kNe:
            CompareKernel<T, CmpOp::kNe, kN, kA>(pos, n, a.data<T>(),
                                                 a.nulls(), b.data<T>(),
                                                 b.nulls(), out->data<uint8_t>(),
                                                 out->nulls());
            break;
          case CmpOp::kLt:
            CompareKernel<T, CmpOp::kLt, kN, kA>(pos, n, a.data<T>(),
                                                 a.nulls(), b.data<T>(),
                                                 b.nulls(), out->data<uint8_t>(),
                                                 out->nulls());
            break;
          case CmpOp::kLe:
            CompareKernel<T, CmpOp::kLe, kN, kA>(pos, n, a.data<T>(),
                                                 a.nulls(), b.data<T>(),
                                                 b.nulls(), out->data<uint8_t>(),
                                                 out->nulls());
            break;
          case CmpOp::kGt:
            CompareKernel<T, CmpOp::kGt, kN, kA>(pos, n, a.data<T>(),
                                                 a.nulls(), b.data<T>(),
                                                 b.nulls(), out->data<uint8_t>(),
                                                 out->nulls());
            break;
          case CmpOp::kGe:
            CompareKernel<T, CmpOp::kGe, kN, kA>(pos, n, a.data<T>(),
                                                 a.nulls(), b.data<T>(),
                                                 b.nulls(), out->data<uint8_t>(),
                                                 out->nulls());
            break;
        }
      });
}

// Decimal comparison with scale alignment.
void RunCompareDecimal(CmpOp op, ColumnBatch* batch, const ColumnVector& a,
                       int sa, const ColumnVector& b, int sb,
                       ColumnVector* out, bool has_nulls) {
  int n = batch->num_active();
  int s = std::max(sa, sb);
  int128_t am = Decimal128::PowerOfTen(s - sa);
  int128_t bm = Decimal128::PowerOfTen(s - sb);
  const int128_t* av = a.data<int128_t>();
  const int128_t* bv = b.data<int128_t>();
  const uint8_t* an = a.nulls();
  const uint8_t* bn = b.nulls();
  uint8_t* ov = out->data<uint8_t>();
  uint8_t* on = out->nulls();
  for (int i = 0; i < n; i++) {
    int row = batch->ActiveRow(i);
    if (has_nulls && (an[row] | bn[row])) {
      on[row] = 1;
      continue;
    }
    int cmp = CompareScalar(av[row] * am, bv[row] * bm);
    ov[row] = CmpResult(op, cmp) ? 1 : 0;
  }
}

void RunCompareString(CmpOp op, ColumnBatch* batch, const ColumnVector& a,
                      const ColumnVector& b, ColumnVector* out,
                      bool has_nulls) {
  int n = batch->num_active();
  const StringRef* av = a.data<StringRef>();
  const StringRef* bv = b.data<StringRef>();
  const uint8_t* an = a.nulls();
  const uint8_t* bn = b.nulls();
  uint8_t* ov = out->data<uint8_t>();
  uint8_t* on = out->nulls();
  for (int i = 0; i < n; i++) {
    int row = batch->ActiveRow(i);
    if (has_nulls && (an[row] | bn[row])) {
      on[row] = 1;
      continue;
    }
    ov[row] = CmpResult(op, CompareString(av[row], bv[row])) ? 1 : 0;
  }
}

}  // namespace

ComparisonExpr::ComparisonExpr(CmpOp op, ExprPtr left, ExprPtr right)
    : Expr(DataType::Boolean()),
      op_(op),
      left_(std::move(left)),
      right_(std::move(right)) {
  PHOTON_CHECK(left_->type().id() == right_->type().id());
}

Result<ColumnVector*> ComparisonExpr::Evaluate(ColumnBatch* batch,
                                               EvalContext* ctx) const {
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * a, left_->Evaluate(batch, ctx));
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * b, right_->Evaluate(batch, ctx));
  ColumnVector* out = ctx->NewVector(DataType::Boolean(), batch->capacity());
  int n = batch->num_active();
  const int32_t* pos = batch->pos_list();
  bool all = batch->all_active();
  bool has_nulls =
      a->ComputeHasNulls(pos, n, all) || b->ComputeHasNulls(pos, n, all);

  switch (left_->type().id()) {
    case TypeId::kBoolean:
      RunCompare<uint8_t>(op_, batch, *a, *b, out, has_nulls);
      break;
    case TypeId::kInt32:
    case TypeId::kDate32:
      RunCompare<int32_t>(op_, batch, *a, *b, out, has_nulls);
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      RunCompare<int64_t>(op_, batch, *a, *b, out, has_nulls);
      break;
    case TypeId::kFloat64:
      RunCompare<double>(op_, batch, *a, *b, out, has_nulls);
      break;
    case TypeId::kDecimal128:
      RunCompareDecimal(op_, batch, *a, left_->type().scale(), *b,
                        right_->type().scale(), out, has_nulls);
      break;
    case TypeId::kString:
      RunCompareString(op_, batch, *a, *b, out, has_nulls);
      break;
  }
  out->set_has_nulls(has_nulls ? TriState::kYes : TriState::kNo);
  return out;
}

Result<Value> ComparisonExpr::EvaluateRow(const std::vector<Value>& row) const {
  PHOTON_ASSIGN_OR_RETURN(Value a, left_->EvaluateRow(row));
  PHOTON_ASSIGN_OR_RETURN(Value b, right_->EvaluateRow(row));
  if (a.is_null() || b.is_null()) return Value::Null();
  int cmp;
  if (left_->type().is_decimal()) {
    int s = std::max(left_->type().scale(), right_->type().scale());
    int128_t av = a.decimal().value() *
                  Decimal128::PowerOfTen(s - left_->type().scale());
    int128_t bv = b.decimal().value() *
                  Decimal128::PowerOfTen(s - right_->type().scale());
    cmp = CompareScalar(av, bv);
  } else {
    cmp = a.Compare(b);
  }
  return Value::Boolean(CmpResult(op_, cmp));
}

std::string ComparisonExpr::ToString() const {
  static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
  return "(" + left_->ToString() + " " + kOps[static_cast<int>(op_)] + " " +
         right_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// BetweenExpr: fused col >= lo AND col <= hi (§3.3)
// ---------------------------------------------------------------------------

BetweenExpr::BetweenExpr(ExprPtr value, ExprPtr lo, ExprPtr hi)
    : Expr(DataType::Boolean()),
      value_(std::move(value)),
      lo_(std::move(lo)),
      hi_(std::move(hi)) {
  PHOTON_CHECK(value_->type().id() == lo_->type().id());
  PHOTON_CHECK(value_->type().id() == hi_->type().id());
  // Decimal BETWEEN requires aligned scales (the builder rescales).
  if (value_->type().is_decimal()) {
    PHOTON_CHECK(value_->type().scale() == lo_->type().scale());
    PHOTON_CHECK(value_->type().scale() == hi_->type().scale());
  }
}

namespace {

template <typename T, bool kHasNulls, bool kAllRowsActive>
void BetweenKernel(const int32_t* PHOTON_RESTRICT pos, int n,
                   const T* PHOTON_RESTRICT v,
                   const uint8_t* PHOTON_RESTRICT vn,
                   const T* PHOTON_RESTRICT lo,
                   const uint8_t* PHOTON_RESTRICT lon,
                   const T* PHOTON_RESTRICT hi,
                   const uint8_t* PHOTON_RESTRICT hin,
                   uint8_t* PHOTON_RESTRICT out,
                   uint8_t* PHOTON_RESTRICT on) {
  for (int i = 0; i < n; i++) {
    int row = kAllRowsActive ? i : pos[i];
    if constexpr (kHasNulls) {
      // SQL BETWEEN is (v >= lo AND v <= hi); the fused NULL logic matches
      // the conjunction's three-valued truth table.
      bool v_null = vn[row], lo_null = lon[row], hi_null = hin[row];
      bool ge = !v_null && !lo_null && v[row] >= lo[row];
      bool le = !v_null && !hi_null && v[row] <= hi[row];
      bool ge_false = !v_null && !lo_null && !(v[row] >= lo[row]);
      bool le_false = !v_null && !hi_null && !(v[row] <= hi[row]);
      if (ge_false || le_false) {
        out[row] = 0;
      } else if (v_null || lo_null || hi_null) {
        on[row] = 1;
      } else {
        out[row] = (ge && le) ? 1 : 0;
      }
      continue;
    }
    out[row] = (v[row] >= lo[row] && v[row] <= hi[row]) ? 1 : 0;
  }
}

template <typename T>
void RunBetween(ColumnBatch* batch, const ColumnVector& v,
                const ColumnVector& lo, const ColumnVector& hi,
                ColumnVector* out, bool has_nulls) {
  int n = batch->num_active();
  const int32_t* pos = batch->pos_list();
  DispatchBatchShape(
      has_nulls, batch->all_active(), [&](auto nulls_c, auto active_c) {
        BetweenKernel<T, decltype(nulls_c)::value, decltype(active_c)::value>(
            pos, n, v.data<T>(), v.nulls(), lo.data<T>(), lo.nulls(),
            hi.data<T>(), hi.nulls(), out->data<uint8_t>(), out->nulls());
      });
}

}  // namespace

Result<ColumnVector*> BetweenExpr::Evaluate(ColumnBatch* batch,
                                            EvalContext* ctx) const {
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * v, value_->Evaluate(batch, ctx));
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * lo, lo_->Evaluate(batch, ctx));
  PHOTON_ASSIGN_OR_RETURN(ColumnVector * hi, hi_->Evaluate(batch, ctx));
  ColumnVector* out = ctx->NewVector(DataType::Boolean(), batch->capacity());
  int n = batch->num_active();
  const int32_t* pos = batch->pos_list();
  bool all = batch->all_active();
  bool has_nulls = v->ComputeHasNulls(pos, n, all) ||
                   lo->ComputeHasNulls(pos, n, all) ||
                   hi->ComputeHasNulls(pos, n, all);

  switch (value_->type().id()) {
    case TypeId::kInt32:
    case TypeId::kDate32:
      RunBetween<int32_t>(batch, *v, *lo, *hi, out, has_nulls);
      break;
    case TypeId::kInt64:
    case TypeId::kTimestamp:
      RunBetween<int64_t>(batch, *v, *lo, *hi, out, has_nulls);
      break;
    case TypeId::kFloat64:
      RunBetween<double>(batch, *v, *lo, *hi, out, has_nulls);
      break;
    case TypeId::kDecimal128:
      RunBetween<int128_t>(batch, *v, *lo, *hi, out, has_nulls);
      break;
    case TypeId::kString: {
      const StringRef* vv = v->data<StringRef>();
      const StringRef* lv = lo->data<StringRef>();
      const StringRef* hv = hi->data<StringRef>();
      const uint8_t* vn = v->nulls();
      const uint8_t* ln = lo->nulls();
      const uint8_t* hn = hi->nulls();
      uint8_t* ov = out->data<uint8_t>();
      uint8_t* on = out->nulls();
      for (int i = 0; i < n; i++) {
        int row = batch->ActiveRow(i);
        if (vn[row] | ln[row] | hn[row]) {
          on[row] = 1;
          continue;
        }
        ov[row] = (CompareString(vv[row], lv[row]) >= 0 &&
                   CompareString(vv[row], hv[row]) <= 0)
                      ? 1
                      : 0;
      }
      break;
    }
    default:
      return Status::Internal("BETWEEN on unsupported type");
  }
  out->set_has_nulls(has_nulls ? TriState::kYes : TriState::kNo);
  return out;
}

Result<Value> BetweenExpr::EvaluateRow(const std::vector<Value>& row) const {
  PHOTON_ASSIGN_OR_RETURN(Value v, value_->EvaluateRow(row));
  PHOTON_ASSIGN_OR_RETURN(Value lo, lo_->EvaluateRow(row));
  PHOTON_ASSIGN_OR_RETURN(Value hi, hi_->EvaluateRow(row));
  bool v_null = v.is_null(), lo_null = lo.is_null(), hi_null = hi.is_null();
  bool ge_false = !v_null && !lo_null && v.Compare(lo) < 0;
  bool le_false = !v_null && !hi_null && v.Compare(hi) > 0;
  if (ge_false || le_false) return Value::Boolean(false);
  if (v_null || lo_null || hi_null) return Value::Null();
  return Value::Boolean(true);
}

std::string BetweenExpr::ToString() const {
  return value_->ToString() + " BETWEEN " + lo_->ToString() + " AND " +
         hi_->ToString();
}

}  // namespace photon
