#ifndef PHOTON_EXPR_BUILDER_H_
#define PHOTON_EXPR_BUILDER_H_

#include <string>
#include <vector>

#include "expr/expr.h"

namespace photon {
/// Convenience constructors for expression trees. These perform the type
/// checking, implicit-cast insertion, and decimal precision/scale
/// derivation that a SQL analyzer would, so operators and tests can build
/// typed plans tersely. All functions PHOTON_CHECK on type errors: plans
/// are built by trusted code, not end users.
namespace eb {

ExprPtr Col(int index, DataType type, std::string name = "");

ExprPtr Lit(bool v);
ExprPtr Lit(int32_t v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);
ExprPtr Lit(std::string v);
/// Date literal from "YYYY-MM-DD".
ExprPtr DateLit(const std::string& iso_date);
/// Decimal literal, e.g. DecimalLit("12.34", 12, 2).
ExprPtr DecimalLit(const std::string& text, int precision, int scale);
ExprPtr NullLit(DataType type);

/// Numeric promotion: returns the common type two operands are cast to
/// before arithmetic/comparison (int32 < int64 < float64; ints widen to
/// decimal when paired with one).
DataType CommonType(const DataType& a, const DataType& b);

ExprPtr Cast(ExprPtr e, DataType to);

ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);
ExprPtr Mod(ExprPtr a, ExprPtr b);

ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);

ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);
ExprPtr IsNull(ExprPtr a);
ExprPtr IsNotNull(ExprPtr a);

ExprPtr Between(ExprPtr v, ExprPtr lo, ExprPtr hi);
ExprPtr In(ExprPtr v, std::vector<Value> list);

/// CASE WHEN c1 THEN t1 [WHEN ...] ELSE e END; else may be nullptr.
ExprPtr CaseWhen(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                 ExprPtr else_expr);
/// if(cond, then, else) — sugar over CaseWhen.
ExprPtr If(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr);

/// Named scalar function call; binds the result type via the registry.
ExprPtr Call(const std::string& name, std::vector<ExprPtr> args);

/// like(value, pattern-literal).
ExprPtr Like(ExprPtr value, const std::string& pattern);

}  // namespace eb
}  // namespace photon

#endif  // PHOTON_EXPR_BUILDER_H_
