#ifndef PHOTON_EXPR_FUSION_H_
#define PHOTON_EXPR_FUSION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "expr/program.h"

namespace photon {

/// One node of a filter→project chain, in bottom-up (execution) order.
struct FusedStage {
  bool is_filter = false;
  ExprPtr predicate;               // filter stages
  std::vector<ExprPtr> exprs;      // project stages
  std::vector<std::string> names;  // project stages
};

/// The immutable plan-time form of a fused filter→project chain
/// (DESIGN.md §12). Project stages are rewritten into expressions over the
/// *input* schema (column substitution), so the whole chain evaluates in
/// one pass over one position list with no intermediate view batches.
/// Filters are split into conjuncts (Kleene-safe for AND) so the cheapest,
/// most selective predicates can shrink the position list before the
/// expensive ones run.
///
/// Compiled-tier specializations are attached here at plan time: per-
/// conjunct position-list-direct terms (column-vs-literal comparisons and
/// BETWEEN) and per-instruction template-instantiated arithmetic steps for
/// the hot int64/float64/decimal combinations, including two-op fused
/// kernels. All of them reuse the scalar_ops.h semantics, and differ mode
/// 6 checks every tier against the row-oracle baseline.
///
/// A FusedUnit is shared (const) across all tasks of a plan; per-task
/// mutable state lives in FusedUnitState.
class FusedUnit {
 public:
  /// A compiled filter term: applies one conjunct directly to the batch's
  /// position list and returns the new active count.
  using CompiledTermFn = std::function<int(ColumnBatch*)>;

  struct Conjunct {
    ExprPtr expr;
    ExprProgram program;  // single-root program for the conjunct
    CompiledTermFn term;  // null when not specializable
  };

  /// Where output column i comes from after Eval.
  struct Output {
    int input_col = -1;  // >= 0: passthrough of an input batch column
    int root = -1;       // else: index into projection().root_regs()
  };

  /// Fails (falls back to the per-node operators) when a stage contains an
  /// expression kind the rewriter does not know how to substitute into.
  static Result<std::shared_ptr<const FusedUnit>> Compile(
      const std::vector<FusedStage>& stages, const Schema& input_schema);

  const std::vector<Conjunct>& conjuncts() const { return conjuncts_; }
  /// Some conjunct folded to constant false/NULL: the unit emits no rows.
  bool always_false() const { return always_false_; }
  bool has_predicates() const {
    return !conjuncts_.empty() || always_false_;
  }
  bool has_projection() const { return has_projection_; }
  const ExprProgram& projection() const { return projection_; }
  const std::vector<Output>& outputs() const { return outputs_; }
  const Schema& output_schema() const { return output_schema_; }
  /// Compiled terms + compiled steps across all programs. Zero disables
  /// the compiled tier (adaptive selection stays on the fused interpreter).
  int num_compiled() const { return num_compiled_; }

 private:
  FusedUnit() = default;

  std::vector<Conjunct> conjuncts_;
  bool always_false_ = false;
  bool has_projection_ = false;
  ExprProgram projection_;
  std::vector<Output> outputs_;
  Schema output_schema_;
  int num_compiled_ = 0;
};

/// Per-operator-instance execution state: program register files, the
/// adaptive conjunct order (selectivity EWMAs), and the fused-vs-compiled
/// tier choice (per-row timing EWMAs, re-probed periodically — the paper's
/// §4.4 batch-level adaptivity generalized to execution strategy). Timing
/// only ever affects *which* tier runs, never what it computes, so results
/// are bit-identical across tier histories.
class FusedUnitState {
 public:
  FusedUnitState(std::shared_ptr<const FusedUnit> unit, ExprPolicy policy);

  /// Applies the conjuncts to the batch's position list, then evaluates
  /// the projection. Returns the surviving active-row count.
  Result<int> Eval(ColumnBatch* batch, EvalContext* ctx);

  /// Result vector for output column i; valid after Eval until the
  /// context's next ResetPerBatch.
  ColumnVector* Output(size_t i, ColumnBatch* batch) const;

  int64_t fused_batches() const { return fused_batches_; }
  int64_t compiled_batches() const { return compiled_batches_; }
  int64_t tier_switches() const { return tier_switches_; }

 private:
  bool PickCompiled();
  void ReorderConjuncts();

  std::shared_ptr<const FusedUnit> unit_;
  ExprPolicy policy_;
  std::vector<ProgramState> conjunct_states_;
  std::unique_ptr<ProgramState> projection_state_;
  std::vector<size_t> order_;  // conjunct evaluation order
  std::vector<double> sel_;    // per-conjunct selectivity EWMA (-1 unknown)
  double fused_ns_row_ = -1.0;
  double compiled_ns_row_ = -1.0;
  bool prefer_compiled_ = true;
  int64_t batches_ = 0;
  int64_t fused_batches_ = 0;
  int64_t compiled_batches_ = 0;
  int64_t tier_switches_ = 0;
};

}  // namespace photon

#endif  // PHOTON_EXPR_FUSION_H_
