#ifndef PHOTON_EXPR_KERNELS_H_
#define PHOTON_EXPR_KERNELS_H_

#include <type_traits>
#include <utility>

#include "common/macros.h"
#include "types/data_type.h"
#include "vector/column_batch.h"

namespace photon {

/// C++ value type backing each TypeId in column vectors.
template <TypeId kId>
struct PhysicalType;
template <>
struct PhysicalType<TypeId::kBoolean> {
  using type = uint8_t;
};
template <>
struct PhysicalType<TypeId::kInt32> {
  using type = int32_t;
};
template <>
struct PhysicalType<TypeId::kInt64> {
  using type = int64_t;
};
template <>
struct PhysicalType<TypeId::kFloat64> {
  using type = double;
};
template <>
struct PhysicalType<TypeId::kDate32> {
  using type = int32_t;
};
template <>
struct PhysicalType<TypeId::kTimestamp> {
  using type = int64_t;
};
template <>
struct PhysicalType<TypeId::kString> {
  using type = StringRef;
};
template <>
struct PhysicalType<TypeId::kDecimal128> {
  using type = int128_t;
};

/// Runtime dispatch over the two batch-shape template parameters every
/// Photon kernel adapts to (§4.6): NULL presence and row activity. The
/// callable is invoked with two std::bool_constant values, so the kernel
/// body sees compile-time constants and dead branches compile away
/// (Listing 2 of the paper).
template <typename Fn>
void DispatchBatchShape(bool has_nulls, bool all_active, Fn&& fn) {
  using T = std::true_type;
  using F = std::false_type;
  if (has_nulls) {
    if (all_active) {
      fn(T{}, T{});
    } else {
      fn(T{}, F{});
    }
  } else {
    if (all_active) {
      fn(F{}, T{});
    } else {
      fn(F{}, F{});
    }
  }
}

/// Generic binary kernel: out[row] = Op(a[row], b[row]) over active rows.
/// Op::Apply returns false to signal a NULL result (e.g. division by zero).
/// Inactive rows are never touched (§4.3).
template <typename T, typename R, typename Op, bool kHasNulls,
          bool kAllRowsActive>
void BinaryKernel(const int32_t* PHOTON_RESTRICT pos_list, int num_rows,
                  const T* PHOTON_RESTRICT a,
                  const uint8_t* PHOTON_RESTRICT a_nulls,
                  const T* PHOTON_RESTRICT b,
                  const uint8_t* PHOTON_RESTRICT b_nulls,
                  R* PHOTON_RESTRICT out,
                  uint8_t* PHOTON_RESTRICT out_nulls) {
  for (int i = 0; i < num_rows; i++) {
    // Branch compiles away: condition is a compile-time constant.
    int row = kAllRowsActive ? i : pos_list[i];
    if constexpr (kHasNulls) {
      uint8_t is_null = a_nulls[row] | b_nulls[row];
      if (is_null) {
        out_nulls[row] = 1;
        continue;
      }
    }
    if (!Op::Apply(a[row], b[row], &out[row])) out_nulls[row] = 1;
  }
}

/// Generic unary kernel; same conventions as BinaryKernel.
template <typename T, typename R, typename Op, bool kHasNulls,
          bool kAllRowsActive>
void UnaryKernel(const int32_t* PHOTON_RESTRICT pos_list, int num_rows,
                 const T* PHOTON_RESTRICT in,
                 const uint8_t* PHOTON_RESTRICT in_nulls,
                 R* PHOTON_RESTRICT out,
                 uint8_t* PHOTON_RESTRICT out_nulls) {
  for (int i = 0; i < num_rows; i++) {
    int row = kAllRowsActive ? i : pos_list[i];
    if constexpr (kHasNulls) {
      if (in_nulls[row]) {
        out_nulls[row] = 1;
        continue;
      }
    }
    if (!Op::Apply(in[row], &out[row])) out_nulls[row] = 1;
  }
}

/// Copies values and null bytes of `src` to `dst` at the given row indices
/// (both vectors are batch-aligned). Strings are deep-copied into dst.
void CopyValuesAtPositions(const ColumnVector& src, const int32_t* rows,
                           int n, ColumnVector* dst);

/// Saves a batch's active-set (position list + counters) and restores it on
/// destruction. Used by CASE WHEN and conditional evaluation, which
/// temporarily narrow the active set per branch (§4.3).
class ScopedActiveSet {
 public:
  explicit ScopedActiveSet(ColumnBatch* batch)
      : batch_(batch),
        saved_num_active_(batch->num_active()),
        saved_all_active_(batch->all_active()) {
    if (!saved_all_active_) {
      saved_pos_.assign(batch->pos_list(),
                        batch->pos_list() + saved_num_active_);
    }
  }
  ~ScopedActiveSet() {
    if (saved_all_active_) {
      batch_->SetAllActive();
    } else {
      std::memcpy(batch_->mutable_pos_list(), saved_pos_.data(),
                  saved_pos_.size() * sizeof(int32_t));
      batch_->SetActiveRows(saved_num_active_);
    }
  }
  ScopedActiveSet(const ScopedActiveSet&) = delete;
  ScopedActiveSet& operator=(const ScopedActiveSet&) = delete;

  /// Installs an explicit active set for the scope's duration.
  void Install(const int32_t* rows, int n) {
    std::memcpy(batch_->mutable_pos_list(), rows, n * sizeof(int32_t));
    batch_->SetActiveRows(n);
  }

 private:
  ColumnBatch* batch_;
  int saved_num_active_;
  bool saved_all_active_;
  std::vector<int32_t> saved_pos_;
};

}  // namespace photon

#endif  // PHOTON_EXPR_KERNELS_H_
