#include <algorithm>
#include <cstring>
#include <limits>

#include "common/string_util.h"
#include "common/unicode.h"
#include "expr/function_registry.h"
#include "expr/kernels.h"

namespace photon {
namespace internal_registry {
namespace {

Result<DataType> BindStrToStr(const std::vector<DataType>& args) {
  if (args.size() != 1 || !args[0].is_string()) {
    return Status::InvalidArgument("expected (string)");
  }
  return DataType::String();
}

/// Runs `fn(row, StringRef)` over all active non-NULL rows of a one-string-
/// argument function, handling NULL propagation.
template <typename Fn>
void ForEachActiveString(const ColumnVector& arg, ColumnBatch* batch,
                         ColumnVector* out, Fn&& fn) {
  int n = batch->num_active();
  const StringRef* vals = arg.data<StringRef>();
  const uint8_t* nulls = arg.nulls();
  uint8_t* out_nulls = out->nulls();
  for (int i = 0; i < n; i++) {
    int row = batch->ActiveRow(i);
    if (nulls[row]) {
      out_nulls[row] = 1;
      continue;
    }
    fn(row, vals[row]);
  }
}

// ---------------------------------------------------------------------------
// upper / lower: the paper's flagship adaptive expression (Figure 6).
// ---------------------------------------------------------------------------

enum class CaseDir { kUpper, kLower };

/// ASCII fast path: byte-wise case mapping, auto-vectorized. Valid only
/// when the batch-level ASCII metadata says every string is ASCII.
template <CaseDir kDir>
void CaseMapAsciiKernel(const ColumnVector& arg, ColumnBatch* batch,
                        ColumnVector* out) {
  ForEachActiveString(arg, batch, out, [&](int row, StringRef s) {
    char* dst = out->var_pool()->AllocateBytes(s.len);
    if constexpr (kDir == CaseDir::kUpper) {
      AsciiToUpper(s.data, dst, s.len);
    } else {
      AsciiToLower(s.data, dst, s.len);
    }
    out->SetStringRef(row, StringRef(dst, s.len));
  });
  out->set_all_ascii(TriState::kYes);
}

/// Generic path: per-codepoint table mapping (the "ICU library" stand-in,
/// §6.1). Deliberately allocation-heavy, mirroring a generic Unicode lib.
template <CaseDir kDir>
void CaseMapGenericKernel(const ColumnVector& arg, ColumnBatch* batch,
                          ColumnVector* out) {
  ForEachActiveString(arg, batch, out, [&](int row, StringRef s) {
    std::string mapped = kDir == CaseDir::kUpper
                             ? Utf8ToUpper(std::string_view(s.data, s.len))
                             : Utf8ToLower(std::string_view(s.data, s.len));
    out->SetString(row, mapped);
  });
}

template <CaseDir kDir, bool kAdaptive>
Status CaseMapEval(const std::vector<const ColumnVector*>& args,
                   ColumnBatch* batch, ColumnVector* out) {
  const ColumnVector& arg = *args[0];
  if (kAdaptive &&
      const_cast<ColumnVector&>(arg).ComputeAllAscii(
          batch->pos_list(), batch->num_active(), batch->all_active())) {
    CaseMapAsciiKernel<kDir>(arg, batch, out);
  } else {
    CaseMapGenericKernel<kDir>(arg, batch, out);
  }
  return Status::OK();
}

// Row-at-a-time implementations used by the baseline engine. Like DBR
// (§6.1), the baseline also special-cases ASCII — but per row, with a boxed
// string allocation per value, not per batch with SIMD.
Result<Value> UpperEvalRow(const std::vector<Value>& args,
                           const std::vector<DataType>&, const DataType&) {
  if (args[0].is_null()) return Value::Null();
  const std::string& s = args[0].str();
  if (IsAsciiScalar(s.data(), static_cast<int64_t>(s.size()))) {
    std::string out(s.size(), 0);
    AsciiToUpper(s.data(), out.data(), static_cast<int64_t>(s.size()));
    return Value::String(std::move(out));
  }
  return Value::String(Utf8ToUpper(s));
}

Result<Value> LowerEvalRow(const std::vector<Value>& args,
                           const std::vector<DataType>&, const DataType&) {
  if (args[0].is_null()) return Value::Null();
  const std::string& s = args[0].str();
  if (IsAsciiScalar(s.data(), static_cast<int64_t>(s.size()))) {
    std::string out(s.size(), 0);
    AsciiToLower(s.data(), out.data(), static_cast<int64_t>(s.size()));
    return Value::String(std::move(out));
  }
  return Value::String(Utf8ToLower(s));
}

// ---------------------------------------------------------------------------

std::string SubstrImpl(std::string_view s, int64_t start, int64_t len) {
  // Spark's UTF8String.substringSQL: 1-based; 0 behaves like 1; negative
  // counts from the end. The end index is computed from the *unclamped*
  // start, so substring('abc', -5, 2) is "" (window [-5,-3) lies before the
  // string), not "ab". len == INT32_MAX (Integer.MAX_VALUE) means
  // "to end of string"; other start+len sums wrap in 32-bit like Java.
  if (len <= 0) return "";
  int64_t char_len = Utf8Length(s);
  int64_t begin = start > 0   ? start - 1
                  : start < 0 ? char_len + start
                              : 0;
  int64_t end;
  if (len == std::numeric_limits<int32_t>::max()) {
    end = char_len;
  } else {
    end = static_cast<int32_t>(static_cast<uint32_t>(begin) +
                               static_cast<uint32_t>(len));
  }
  int64_t lo = std::max<int64_t>(begin, 0);
  int64_t hi = std::min(end, char_len);
  if (hi <= lo) return "";
  int64_t b0 = Utf8OffsetOfCodepoint(s, lo);
  int64_t b1 = Utf8OffsetOfCodepoint(s, hi);
  return std::string(s.substr(b0, b1 - b0));
}

std::string TrimImpl(std::string_view s, bool left, bool right) {
  size_t b = 0, e = s.size();
  if (left) {
    while (b < e && s[b] == ' ') b++;
  }
  if (right) {
    while (e > b && s[e - 1] == ' ') e--;
  }
  return std::string(s.substr(b, e - b));
}

std::string ReplaceImpl(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  while (pos < s.size()) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(s.substr(pos));
      break;
    }
    out.append(s.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
  return out;
}

std::string ReverseImpl(std::string_view s) {
  // Reverse by codepoint so UTF-8 stays valid.
  std::vector<std::pair<int64_t, int>> cps;  // (offset, bytes)
  const char* p = s.data();
  int64_t remaining = static_cast<int64_t>(s.size());
  int64_t off = 0;
  while (remaining > 0) {
    uint32_t cp;
    int k = Utf8Decode(p, remaining, &cp);
    if (k == 0) k = 1;
    cps.emplace_back(off, k);
    p += k;
    off += k;
    remaining -= k;
  }
  std::string out;
  out.reserve(s.size());
  for (auto it = cps.rbegin(); it != cps.rend(); ++it) {
    out.append(s.substr(it->first, it->second));
  }
  return out;
}

std::string PadImpl(std::string_view s, int64_t target_len,
                    std::string_view pad, bool left) {
  int64_t char_len = Utf8Length(s);
  if (target_len <= char_len) {
    int64_t b = Utf8OffsetOfCodepoint(s, target_len);
    return std::string(s.substr(0, b));
  }
  if (pad.empty()) return std::string(s);
  std::string padding;
  int64_t needed = target_len - char_len;
  while (Utf8Length(padding) < needed) padding.append(pad);
  int64_t b = Utf8OffsetOfCodepoint(padding, needed);
  padding.resize(b);
  return left ? padding + std::string(s) : std::string(s) + padding;
}

}  // namespace

void RegisterStringFunctions(FunctionRegistry* registry) {
  // upper/lower with adaptive ASCII fast path (§4.6, Figure 6).
  registry->Register(
      "upper", FunctionImpl{BindStrToStr,
                            CaseMapEval<CaseDir::kUpper, /*kAdaptive=*/true>,
                            UpperEvalRow});
  registry->Register(
      "lower", FunctionImpl{BindStrToStr,
                            CaseMapEval<CaseDir::kLower, /*kAdaptive=*/true>,
                            LowerEvalRow});
  // Non-adaptive variants: always take the generic codepoint path. These
  // exist for the Figure 6 ablation ("Photon without ASCII specialization").
  registry->Register(
      "upper_generic",
      FunctionImpl{BindStrToStr,
                   CaseMapEval<CaseDir::kUpper, /*kAdaptive=*/false>,
                   UpperEvalRow});
  registry->Register(
      "lower_generic",
      FunctionImpl{BindStrToStr,
                   CaseMapEval<CaseDir::kLower, /*kAdaptive=*/false>,
                   LowerEvalRow});

  registry->Register(
      "length",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 1 || !args[0].is_string()) {
              return Status::InvalidArgument("length(string)");
            }
            return DataType::Int32();
          },
          [](const std::vector<const ColumnVector*>& args,
             ColumnBatch* batch, ColumnVector* out) {
            int32_t* ov = out->data<int32_t>();
            ForEachActiveString(*args[0], batch, out,
                                [&](int row, StringRef s) {
                                  ov[row] = static_cast<int32_t>(Utf8Length(
                                      std::string_view(s.data, s.len)));
                                });
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            if (args[0].is_null()) return Value::Null();
            return Value::Int32(
                static_cast<int32_t>(Utf8Length(args[0].str())));
          }});

  registry->Register(
      "octet_length",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 1 || !args[0].is_string()) {
              return Status::InvalidArgument("octet_length(string)");
            }
            return DataType::Int32();
          },
          [](const std::vector<const ColumnVector*>& args,
             ColumnBatch* batch, ColumnVector* out) {
            int32_t* ov = out->data<int32_t>();
            ForEachActiveString(*args[0], batch, out,
                                [&](int row, StringRef s) { ov[row] = s.len; });
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            if (args[0].is_null()) return Value::Null();
            return Value::Int32(static_cast<int32_t>(args[0].str().size()));
          }});

  registry->Register(
      "substr",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() < 2 || args.size() > 3 || !args[0].is_string() ||
                args[1].id() != TypeId::kInt32 ||
                (args.size() == 3 && args[2].id() != TypeId::kInt32)) {
              return Status::InvalidArgument("substr(string, int[, int])");
            }
            return DataType::String();
          },
          [](const std::vector<const ColumnVector*>& args,
             ColumnBatch* batch, ColumnVector* out) {
            int n = batch->num_active();
            const StringRef* sv = args[0]->data<StringRef>();
            const int32_t* startv = args[1]->data<int32_t>();
            const int32_t* lenv =
                args.size() == 3 ? args[2]->data<int32_t>() : nullptr;
            uint8_t* on = out->nulls();
            for (int i = 0; i < n; i++) {
              int row = batch->ActiveRow(i);
              bool any_null = args[0]->IsNull(row) || args[1]->IsNull(row) ||
                              (lenv != nullptr && args[2]->IsNull(row));
              if (any_null) {
                on[row] = 1;
                continue;
              }
              std::string r = SubstrImpl(
                  std::string_view(sv[row].data, sv[row].len), startv[row],
                  lenv != nullptr ? lenv[row] : INT32_MAX);
              out->SetString(row, r);
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            for (const Value& v : args) {
              if (v.is_null()) return Value::Null();
            }
            return Value::String(SubstrImpl(
                args[0].str(), args[1].i32(),
                args.size() == 3 ? args[2].i32() : INT32_MAX));
          }});

  registry->Register(
      "concat",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.empty()) {
              return Status::InvalidArgument("concat needs args");
            }
            for (const DataType& t : args) {
              if (!t.is_string()) {
                return Status::InvalidArgument("concat(string...)");
              }
            }
            return DataType::String();
          },
          [](const std::vector<const ColumnVector*>& args,
             ColumnBatch* batch, ColumnVector* out) {
            int n = batch->num_active();
            uint8_t* on = out->nulls();
            std::string scratch;
            for (int i = 0; i < n; i++) {
              int row = batch->ActiveRow(i);
              bool any_null = false;
              for (const ColumnVector* a : args) any_null |= a->IsNull(row);
              if (any_null) {
                on[row] = 1;
                continue;
              }
              scratch.clear();
              for (const ColumnVector* a : args) {
                StringRef s = a->GetString(row);
                scratch.append(s.data, s.len);
              }
              out->SetString(row, scratch);
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            std::string r;
            for (const Value& v : args) {
              if (v.is_null()) return Value::Null();
              r += v.str();
            }
            return Value::String(std::move(r));
          }});

  registry->Register(
      "like",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 2 || !args[0].is_string() ||
                !args[1].is_string()) {
              return Status::InvalidArgument("like(string, string)");
            }
            return DataType::Boolean();
          },
          [](const std::vector<const ColumnVector*>& args,
             ColumnBatch* batch, ColumnVector* out) {
            int n = batch->num_active();
            const StringRef* sv = args[0]->data<StringRef>();
            const StringRef* pv = args[1]->data<StringRef>();
            uint8_t* ov = out->data<uint8_t>();
            uint8_t* on = out->nulls();
            for (int i = 0; i < n; i++) {
              int row = batch->ActiveRow(i);
              if (args[0]->IsNull(row) || args[1]->IsNull(row)) {
                on[row] = 1;
                continue;
              }
              ov[row] = SqlLikeMatch(
                            std::string_view(sv[row].data, sv[row].len),
                            std::string_view(pv[row].data, pv[row].len))
                            ? 1
                            : 0;
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            if (args[0].is_null() || args[1].is_null()) return Value::Null();
            return Value::Boolean(SqlLikeMatch(args[0].str(), args[1].str()));
          }});

  // Simple one-string-in/one-string-out helpers.
  auto register_str1 = [&](const std::string& name,
                           std::string (*fn)(std::string_view)) {
    registry->Register(
        name,
        FunctionImpl{
            BindStrToStr,
            [fn](const std::vector<const ColumnVector*>& args,
                 ColumnBatch* batch, ColumnVector* out) {
              ForEachActiveString(*args[0], batch, out,
                                  [&](int row, StringRef s) {
                                    out->SetString(
                                        row,
                                        fn(std::string_view(s.data, s.len)));
                                  });
              return Status::OK();
            },
            [fn](const std::vector<Value>& args, const std::vector<DataType>&,
                 const DataType&) -> Result<Value> {
              if (args[0].is_null()) return Value::Null();
              return Value::String(fn(args[0].str()));
            }});
  };
  register_str1("trim", [](std::string_view s) {
    return TrimImpl(s, true, true);
  });
  register_str1("ltrim", [](std::string_view s) {
    return TrimImpl(s, true, false);
  });
  register_str1("rtrim", [](std::string_view s) {
    return TrimImpl(s, false, true);
  });
  register_str1("reverse", [](std::string_view s) { return ReverseImpl(s); });

  // Two-string predicates.
  auto register_str2_pred = [&](const std::string& name,
                                bool (*fn)(std::string_view,
                                           std::string_view)) {
    registry->Register(
        name,
        FunctionImpl{
            [](const std::vector<DataType>& args) -> Result<DataType> {
              if (args.size() != 2 || !args[0].is_string() ||
                  !args[1].is_string()) {
                return Status::InvalidArgument("(string, string)");
              }
              return DataType::Boolean();
            },
            [fn](const std::vector<const ColumnVector*>& args,
                 ColumnBatch* batch, ColumnVector* out) {
              int n = batch->num_active();
              const StringRef* av = args[0]->data<StringRef>();
              const StringRef* bv = args[1]->data<StringRef>();
              uint8_t* ov = out->data<uint8_t>();
              uint8_t* on = out->nulls();
              for (int i = 0; i < n; i++) {
                int row = batch->ActiveRow(i);
                if (args[0]->IsNull(row) || args[1]->IsNull(row)) {
                  on[row] = 1;
                  continue;
                }
                ov[row] = fn(std::string_view(av[row].data, av[row].len),
                             std::string_view(bv[row].data, bv[row].len))
                              ? 1
                              : 0;
              }
              return Status::OK();
            },
            [fn](const std::vector<Value>& args, const std::vector<DataType>&,
                 const DataType&) -> Result<Value> {
              if (args[0].is_null() || args[1].is_null()) {
                return Value::Null();
              }
              return Value::Boolean(fn(args[0].str(), args[1].str()));
            }});
  };
  register_str2_pred("starts_with", [](std::string_view s,
                                       std::string_view p) {
    return StartsWith(s, p);
  });
  register_str2_pred("ends_with", [](std::string_view s, std::string_view p) {
    return EndsWith(s, p);
  });
  register_str2_pred("contains", [](std::string_view s, std::string_view p) {
    return s.find(p) != std::string_view::npos;
  });

  registry->Register(
      "replace",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 3 || !args[0].is_string() ||
                !args[1].is_string() || !args[2].is_string()) {
              return Status::InvalidArgument("replace(str, from, to)");
            }
            return DataType::String();
          },
          [](const std::vector<const ColumnVector*>& args,
             ColumnBatch* batch, ColumnVector* out) {
            int n = batch->num_active();
            uint8_t* on = out->nulls();
            for (int i = 0; i < n; i++) {
              int row = batch->ActiveRow(i);
              if (args[0]->IsNull(row) || args[1]->IsNull(row) ||
                  args[2]->IsNull(row)) {
                on[row] = 1;
                continue;
              }
              StringRef s = args[0]->GetString(row);
              StringRef f = args[1]->GetString(row);
              StringRef t = args[2]->GetString(row);
              out->SetString(
                  row, ReplaceImpl(std::string_view(s.data, s.len),
                                   std::string_view(f.data, f.len),
                                   std::string_view(t.data, t.len)));
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            for (const Value& v : args) {
              if (v.is_null()) return Value::Null();
            }
            return Value::String(
                ReplaceImpl(args[0].str(), args[1].str(), args[2].str()));
          }});

  auto register_pad = [&](const std::string& name, bool left) {
    registry->Register(
        name,
        FunctionImpl{
            [](const std::vector<DataType>& args) -> Result<DataType> {
              if (args.size() != 3 || !args[0].is_string() ||
                  args[1].id() != TypeId::kInt32 || !args[2].is_string()) {
                return Status::InvalidArgument("pad(str, int, str)");
              }
              return DataType::String();
            },
            [left](const std::vector<const ColumnVector*>& args,
                   ColumnBatch* batch, ColumnVector* out) {
              int n = batch->num_active();
              uint8_t* on = out->nulls();
              for (int i = 0; i < n; i++) {
                int row = batch->ActiveRow(i);
                if (args[0]->IsNull(row) || args[1]->IsNull(row) ||
                    args[2]->IsNull(row)) {
                  on[row] = 1;
                  continue;
                }
                StringRef s = args[0]->GetString(row);
                StringRef p = args[2]->GetString(row);
                out->SetString(
                    row, PadImpl(std::string_view(s.data, s.len),
                                 args[1]->data<int32_t>()[row],
                                 std::string_view(p.data, p.len), left));
              }
              return Status::OK();
            },
            [left](const std::vector<Value>& args,
                   const std::vector<DataType>&,
                   const DataType&) -> Result<Value> {
              for (const Value& v : args) {
                if (v.is_null()) return Value::Null();
              }
              return Value::String(
                  PadImpl(args[0].str(), args[1].i32(), args[2].str(), left));
            }});
  };
  register_pad("lpad", true);
  register_pad("rpad", false);

  registry->Register(
      "repeat",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 2 || !args[0].is_string() ||
                args[1].id() != TypeId::kInt32) {
              return Status::InvalidArgument("repeat(str, int)");
            }
            return DataType::String();
          },
          [](const std::vector<const ColumnVector*>& args,
             ColumnBatch* batch, ColumnVector* out) {
            int n = batch->num_active();
            uint8_t* on = out->nulls();
            std::string scratch;
            for (int i = 0; i < n; i++) {
              int row = batch->ActiveRow(i);
              if (args[0]->IsNull(row) || args[1]->IsNull(row)) {
                on[row] = 1;
                continue;
              }
              StringRef s = args[0]->GetString(row);
              int32_t times = args[1]->data<int32_t>()[row];
              scratch.clear();
              for (int32_t k = 0; k < times; k++) scratch.append(s.data, s.len);
              out->SetString(row, scratch);
            }
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            if (args[0].is_null() || args[1].is_null()) return Value::Null();
            std::string r;
            for (int32_t k = 0; k < args[1].i32(); k++) r += args[0].str();
            return Value::String(std::move(r));
          }});

  registry->Register(
      "ascii",
      FunctionImpl{
          [](const std::vector<DataType>& args) -> Result<DataType> {
            if (args.size() != 1 || !args[0].is_string()) {
              return Status::InvalidArgument("ascii(string)");
            }
            return DataType::Int32();
          },
          [](const std::vector<const ColumnVector*>& args,
             ColumnBatch* batch, ColumnVector* out) {
            int32_t* ov = out->data<int32_t>();
            ForEachActiveString(
                *args[0], batch, out, [&](int row, StringRef s) {
                  ov[row] =
                      s.len == 0 ? 0 : static_cast<uint8_t>(s.data[0]);
                });
            return Status::OK();
          },
          [](const std::vector<Value>& args, const std::vector<DataType>&,
             const DataType&) -> Result<Value> {
            if (args[0].is_null()) return Value::Null();
            const std::string& s = args[0].str();
            return Value::Int32(s.empty() ? 0
                                          : static_cast<uint8_t>(s[0]));
          }});
}

}  // namespace internal_registry
}  // namespace photon
